package main

import (
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
)

// demoOracles are the analytic stand-ins the serve subcommand offers as
// wire tenants: the same three workload shapes the fleet example uses.
var demoOracles = map[string]func(x []float64) []float64{
	"potential": func(x []float64) []float64 {
		r := 0.6 + 0.5*(x[0]+1)
		ir6 := math.Pow(r, -6)
		return []float64{ir6*ir6 - ir6 + 0.1*x[1]}
	},
	"tissue": func(x []float64) []float64 {
		return []float64{math.Exp(-2*math.Abs(x[0])) * math.Cos(3*x[1])}
	},
	"epi": func(x []float64) []float64 {
		r0 := 1 + 1.5*(x[0]+1)
		return []float64{math.Tanh(r0-1) * (0.5 + 0.4*x[1])}
	},
}

// runServe is the `learnhpc serve` subcommand: pretrain one surrogate
// per requested tenant, put the fleet on a TCP wire, expose the
// health/readiness/stats endpoints, and drain cleanly on SIGINT/SIGTERM.
func runServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "wire listen address")
	health := fs.String("health", "127.0.0.1:9091", "health/stats HTTP address (empty disables)")
	tenants := fs.String("tenants", "potential,tissue,epi", "comma-separated demo tenants to register")
	maxBatch := fs.Int("max-batch", 64, "per-tenant coalescer batch bound")
	brownP99 := fs.Duration("brownout-p99", 0, "p99 latency SLO that arms the brownout controller (0 = off)")
	brownShed := fs.Float64("brownout-shed", 0, "tolerated admission-shed fraction before brownout (0 = off)")
	regDir := fs.String("registry", "", "artifact registry directory: warm-start tenants from it and persist every published generation (empty disables)")
	rollback := fs.Float64("rollback-factor", 0, "drift ratio that auto-rolls a tenant shard back one registry generation (0 = off; needs -registry)")
	fs.Parse(args)

	var reg *repro.Registry
	if *regDir != "" {
		var err error
		if reg, err = repro.OpenRegistry(repro.RegistryConfig{Dir: *regDir}); err != nil {
			fmt.Fprintf(os.Stderr, "learnhpc serve: registry: %v\n", err)
			os.Exit(1)
		}
		defer reg.Close()
	}

	fl := repro.NewFleet(repro.FleetConfig{
		Coalescer: repro.CoalescerConfig{MaxBatch: *maxBatch},
		Brownout: repro.BrownoutConfig{
			P99SLO:      *brownP99,
			MaxShedRate: *brownShed,
		},
	})
	defer fl.Close()
	rng := repro.NewRand(7)
	for _, name := range strings.Split(*tenants, ",") {
		name = strings.TrimSpace(name)
		f, ok := demoOracles[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "learnhpc serve: unknown tenant %q (have: potential, tissue, epi)\n", name)
			os.Exit(2)
		}
		oracle := repro.OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) { return f(x), nil }}
		fac := repro.NewNNSurrogateFactory(2, 1, []int{32}, 0.1, rng, func(s *repro.NNSurrogate) {
			s.Epochs = 120
			s.MCPasses = 8
		})
		scfg := repro.ShardedConfig{
			Router:          repro.HashRouter{Shards: 2},
			MinTrainSamples: 40,
			UQThreshold:     10, // serve from the surrogate; this is a wire demo
		}
		if *rollback > 0 {
			// The drift watch compares each shard's residual EWMA against
			// its publish-time baseline; the wrapper must track it.
			scfg.DriftFactor = *rollback / 2
		}
		w := repro.NewShardedWrapper(oracle, fac, scfg)
		if err := fl.Register(name, w); err != nil {
			fmt.Fprintf(os.Stderr, "learnhpc serve: register %s: %v\n", name, err)
			os.Exit(1)
		}
		warmed := 0
		if reg != nil {
			var err error
			warmed, err = fl.BindRegistry(name, repro.FleetRegistryConfig{
				Registry:       reg,
				RollbackFactor: *rollback,
				OnError: func(err error) {
					fmt.Fprintf(os.Stderr, "learnhpc serve: %v\n", err)
				},
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "learnhpc serve: bind registry %s: %v\n", name, err)
				os.Exit(1)
			}
		}
		if warmed == w.NumShards() {
			// Every shard restored a durable generation: serve immediately,
			// zero retraining.
			fmt.Printf("tenant %-10s warm-started from registry (%d shards)\n", name, warmed)
			continue
		}
		design := repro.NewMatrix(160, 2)
		for i := 0; i < design.Rows; i++ {
			design.Set(i, 0, rng.Range(-1, 1))
			design.Set(i, 1, rng.Range(-1, 1))
		}
		if err := w.Pretrain(design); err != nil {
			fmt.Fprintf(os.Stderr, "learnhpc serve: pretrain %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("tenant %-10s pretrained and registered\n", name)
	}

	srv := repro.NewWireServer(repro.WireServerConfig{Fleet: fl})
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	fmt.Printf("wire: serving %v on %s\n", fl.Tenants(), *addr)

	if *health != "" {
		go func() {
			h := &repro.WireHealth{Fleet: fl, Server: srv}
			if err := http.ListenAndServe(*health, h); err != nil {
				fmt.Fprintf(os.Stderr, "learnhpc serve: health endpoint: %v\n", err)
			}
		}()
		fmt.Printf("http: /healthz /readyz /statsz on %s\n", *health)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		// Flip /readyz to not-ready first so load balancers stop routing
		// here, give them a beat to notice, then close the listeners.
		fmt.Printf("\n%v: draining (in-flight requests get their responses)\n", s)
		srv.BeginDrain()
		time.Sleep(200 * time.Millisecond)
		srv.Close()
		st := srv.Stats()
		fmt.Printf("served %d requests over %d connections (%d proto errors)\n",
			st.Requests, st.Conns, st.ProtoErrors)
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "learnhpc serve: %v\n", err)
		os.Exit(1)
	}
}

// runLoadtest is the `learnhpc loadtest` subcommand: the open-loop QPS
// generator with an HDR-style latency histogram, pointed at any
// learnhpc-serve (or embedded WireServer) address.
func runLoadtest(args []string) {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "wire server address")
	tenants := fs.String("tenants", "potential,tissue,epi", "comma-separated tenants to spread load across")
	in := fs.Int("in", 2, "tenant input dimensionality")
	qps := fs.Float64("qps", 0, "target aggregate arrival rate (0 = closed loop)")
	dur := fs.Duration("dur", 5*time.Second, "load duration")
	conns := fs.Int("conns", 4, "connections to spread workers over")
	workers := fs.Int("workers", 64, "in-flight window (bounds queueing)")
	deadline := fs.Duration("deadline", 0, "per-request deadline (0 = none)")
	seed := fs.Uint64("seed", 1, "input randomization seed")
	fs.Parse(args)

	var names []string
	for _, t := range strings.Split(*tenants, ",") {
		if t = strings.TrimSpace(t); t != "" {
			names = append(names, t)
		}
	}
	rep, err := repro.RunWireLoad(repro.WireLoadConfig{
		Addr:     *addr,
		Tenants:  names,
		In:       *in,
		QPS:      *qps,
		Duration: *dur,
		Conns:    *conns,
		Workers:  *workers,
		Deadline: *deadline,
		Seed:     *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "learnhpc loadtest: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(rep.String())
	if rep.Errors > 0 || rep.Unknown > 0 {
		os.Exit(1)
	}
}
