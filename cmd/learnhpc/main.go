// Command learnhpc regenerates the reproduction's experiment tables
// (E1–E10, see DESIGN.md §4 and EXPERIMENTS.md).
//
// Usage:
//
//	learnhpc [-scale=small|full] all
//	learnhpc [-scale=small|full] e1 e4 e10
//	learnhpc serve -addr 127.0.0.1:9090 -health 127.0.0.1:9091
//	learnhpc loadtest -addr 127.0.0.1:9090 -qps 50000 -dur 10s
//
// Small scale finishes in seconds per experiment; full scale is the
// documented reproduction configuration. The serve subcommand puts a
// demo fleet on the TCP wire protocol (with /healthz, /readyz and
// /statsz endpoints); loadtest drives an open-loop QPS stream against
// any wire address and prints the latency histogram.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

type runner struct {
	name string
	desc string
	run  func(experiments.Scale) (fmt.Stringer, error)
}

func wrap[T fmt.Stringer](f func(experiments.Scale) (T, error)) func(experiments.Scale) (fmt.Stringer, error) {
	return func(s experiments.Scale) (fmt.Stringer, error) { return f(s) }
}

func main() {
	// The wire subcommands take their own flag sets; dispatch before the
	// experiment driver's flags claim the command line.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			runServe(os.Args[2:])
			return
		case "loadtest":
			runLoadtest(os.Args[2:])
			return
		case "worker":
			runWorker(os.Args[2:])
			return
		case "route":
			runRoute(os.Args[2:])
			return
		}
	}
	scaleFlag := flag.String("scale", "small", "experiment scale: small or full")
	flag.Usage = usage
	flag.Parse()

	var scale experiments.Scale
	switch *scaleFlag {
	case "small":
		scale = experiments.Small
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "learnhpc: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	runners := []runner{
		{"e1", "effective speedup formula sweep (§III-D)", wrap(experiments.E1EffectiveSpeedup)},
		{"e2", "nano-confinement density surrogate (§II-C1)", wrap(experiments.E2NanoSurrogate)},
		{"e3", "MLautotuning of the MD timestep (§III-D)", wrap(experiments.E3Autotune)},
		{"e4", "DEFSI vs EpiFast-like vs persistence (§II-A)", wrap(experiments.E4DEFSI)},
		{"e5", "NN potential vs ab-initio stand-in (§II-C2)", wrap(experiments.E5NNPotential)},
		{"e6", "active learning sample efficiency (§II-C2)", wrap(experiments.E6ActiveLearning)},
		{"e7", "MC-dropout UQ calibration (§III-B)", wrap(experiments.E7DropoutUQ)},
		{"e8", "solvent-kernel surrogate speedup (§II-C2)", wrap(experiments.E8SolventSurrogate)},
		{"e10a", "four parallel computation models (§III-A)", wrap(experiments.E10ParallelModels)},
		{"e10b", "heterogeneous task scheduling (§III-E)", wrap(experiments.E10Scheduler)},
		{"e9", "tissue transport short-circuit (§II-B)", wrap(experiments.E9TissueShortCircuit)},
		{"e11", "multi-tenant serving fleet: potential+tissue+epi behind one dispatch plane", wrap(experiments.E11FleetServing)},
	}
	// Keep display order e1..e11.
	order := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10a", "e10b", "e11"}
	byName := map[string]runner{}
	for _, r := range runners {
		byName[r.name] = r
	}

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	var selected []string
	if len(args) == 1 && args[0] == "all" {
		selected = order
	} else {
		for _, a := range args {
			name := strings.ToLower(a)
			if name == "e10" {
				selected = append(selected, "e10a", "e10b")
				continue
			}
			if _, ok := byName[name]; !ok {
				fmt.Fprintf(os.Stderr, "learnhpc: unknown experiment %q\n", a)
				os.Exit(2)
			}
			selected = append(selected, name)
		}
	}

	failures := 0
	for _, name := range selected {
		r := byName[name]
		fmt.Printf("== %s: %s (scale=%s)\n", r.name, r.desc, *scaleFlag)
		t0 := time.Now()
		res, err := r.run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "learnhpc: %s failed: %v\n", r.name, err)
			failures++
			continue
		}
		fmt.Print(res.String())
		fmt.Printf("   [%.1fs]\n\n", time.Since(t0).Seconds())
	}
	if failures > 0 {
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `learnhpc — Learning Everywhere reproduction experiment driver

usage: learnhpc [-scale=small|full] all
       learnhpc [-scale=small|full] e1 [e2 ...]

experiments:
  e1    effective speedup formula sweep (paper §III-D)
  e2    nano-confinement density surrogate, D=5 (paper §II-C1, §III-D)
  e3    MLautotuning of the MD timestep, D=6 (paper §III-D, ref [9])
  e4    DEFSI two-branch forecasting vs baselines (paper §II-A)
  e5    NN potential vs expensive reference oracle (paper §II-C2)
  e6    active-learning sample efficiency (paper §II-C2)
  e7    MC-dropout uncertainty calibration (paper §III-B)
  e8    learned solvent-kernel speedup (paper §II-C2)
  e9    tissue advection-diffusion short-circuit (paper §I, §II-B)
  e10   parallel computation models + heterogeneous scheduling (§III-A, §III-E)
  e11   multi-tenant serving fleet: one dispatch plane for every surrogate (§I)

wire subcommands (their own flags; see learnhpc <cmd> -h):
  serve     put a demo fleet on the TCP wire with health endpoints
  loadtest  open-loop QPS generator + latency histogram against a wire address
  worker    empty wire server that serves tenants a router places on it
  route     dispatch tier: consistent-hash placement + zero-copy forwarding
            over a set of workers, with mirrored-artifact warm failover
`)
	flag.PrintDefaults()
}
