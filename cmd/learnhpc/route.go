package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro"
)

// demoWrapper builds the sharded surrogate stack every routed demo
// tenant serves from; the tenant name picks its analytic oracle.
func demoWrapper(name string, seed uint64) (*repro.ShardedWrapper, error) {
	f, ok := demoOracles[name]
	if !ok {
		return nil, fmt.Errorf("unknown tenant %q (have: potential, tissue, epi)", name)
	}
	rng := repro.NewRand(seed)
	oracle := repro.OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) { return f(x), nil }}
	fac := repro.NewNNSurrogateFactory(2, 1, []int{32}, 0.1, rng, func(s *repro.NNSurrogate) {
		s.Epochs = 120
		s.MCPasses = 8
	})
	return repro.NewShardedWrapper(oracle, fac, repro.ShardedConfig{
		Router:          repro.HashRouter{Shards: 2},
		MinTrainSamples: 40,
		UQThreshold:     10, // serve from the surrogate; this is a wire demo
	}), nil
}

// runWorker is the `learnhpc worker` subcommand: a wire server that
// starts empty and serves whatever tenants a router places on it. A
// placement push either warm-starts the tenant from artifact bytes
// shipped over the wire (zero retraining) or constructs and pretrains it
// cold; every generation the worker publishes lands in its local
// registry, where routers mirror it for the next failover.
func runWorker(args []string) {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9191", "wire listen address")
	regDir := fs.String("registry", "", "local artifact registry directory (required: placements replay through it)")
	seed := fs.Uint64("seed", 11, "surrogate initialization seed")
	fs.Parse(args)
	if *regDir == "" {
		fmt.Fprintln(os.Stderr, "learnhpc worker: -registry is required")
		os.Exit(2)
	}

	reg, err := repro.OpenRegistry(repro.RegistryConfig{Dir: *regDir})
	if err != nil {
		fmt.Fprintf(os.Stderr, "learnhpc worker: registry: %v\n", err)
		os.Exit(1)
	}
	defer reg.Close()
	fl := repro.NewFleet(repro.FleetConfig{})
	defer fl.Close()

	hooks := &repro.RouterWorkerHooks{
		Fleet:    fl,
		Registry: reg,
		Seed:     *seed,
		Make: func(tenant string) (*repro.ShardedWrapper, error) {
			return demoWrapper(tenant, *seed)
		},
		Pretrain: func(tenant string, w *repro.ShardedWrapper) error {
			rng := repro.NewRand(*seed ^ 0xbeef)
			design := repro.NewMatrix(160, 2)
			for i := 0; i < design.Rows; i++ {
				design.Set(i, 0, rng.Range(-1, 1))
				design.Set(i, 1, rng.Range(-1, 1))
			}
			return w.Pretrain(design)
		},
		Logf: func(format string, a ...any) { fmt.Printf(format+"\n", a...) },
	}
	srv := repro.NewWireServer(repro.WireServerConfig{Fleet: fl, Artifacts: hooks, Install: hooks})
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	fmt.Printf("worker: serving on %s (registry %s), awaiting placements\n", *addr, *regDir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("\n%v: draining\n", s)
		srv.BeginDrain()
		time.Sleep(200 * time.Millisecond)
		srv.Close()
		st := srv.Stats()
		fmt.Printf("served %d requests over %d connections; tenants at exit: %v\n",
			st.Requests, st.Conns, fl.Tenants())
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "learnhpc worker: %v\n", err)
		os.Exit(1)
	}
}

// runRoute is the `learnhpc route` subcommand: the dispatch tier over a
// set of learnhpc-worker processes. Tenants place by consistent hashing,
// queries splice through without row decoding, and the router's mirror
// registry keeps every tenant's latest generation on hand so killing a
// worker fails its tenants over warm.
func runRoute(args []string) {
	fs := flag.NewFlagSet("route", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "frontend wire listen address")
	workersFlag := fs.String("workers", "127.0.0.1:9191,127.0.0.1:9192", "comma-separated worker wire addresses")
	tenants := fs.String("tenants", "potential,tissue,epi", "tenants to provision across the workers")
	mirrorDir := fs.String("mirror", "", "mirror registry directory (empty disables warm failover)")
	fs.Parse(args)

	var workers []string
	for _, a := range strings.Split(*workersFlag, ",") {
		if a = strings.TrimSpace(a); a != "" {
			workers = append(workers, a)
		}
	}
	cfg := repro.WireRouterConfig{
		Workers: workers,
		Logf:    func(format string, a ...any) { fmt.Printf(format+"\n", a...) },
	}
	for _, t := range strings.Split(*tenants, ",") {
		if t = strings.TrimSpace(t); t != "" {
			cfg.Tenants = append(cfg.Tenants, t)
		}
	}
	if *mirrorDir != "" {
		mirror, err := repro.OpenRegistry(repro.RegistryConfig{Dir: *mirrorDir})
		if err != nil {
			fmt.Fprintf(os.Stderr, "learnhpc route: mirror registry: %v\n", err)
			os.Exit(1)
		}
		defer mirror.Close()
		cfg.Registry = mirror
	}

	rt, err := repro.NewWireRouter(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "learnhpc route: %v\n", err)
		os.Exit(1)
	}
	errc := make(chan error, 1)
	go func() { errc <- rt.ListenAndServe(*addr) }()
	fmt.Printf("route: frontend on %s over workers %v\n", *addr, workers)

	// Periodic placement report: watch tenants rehash live when a worker
	// dies or comes back.
	ticker := time.NewTicker(2 * time.Second)
	defer ticker.Stop()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case <-ticker.C:
			pl := rt.Placements()
			names := make([]string, 0, len(pl))
			for n := range pl {
				names = append(names, n)
			}
			sort.Strings(names)
			var b strings.Builder
			for i, n := range names {
				if i > 0 {
					b.WriteString("  ")
				}
				fmt.Fprintf(&b, "%s→%s", n, pl[n])
			}
			st := rt.Stats()
			fmt.Printf("route: %s | live=%d frames=%d retries=%d warm=%d cold=%d\n",
				b.String(), st.WorkersLive, st.Frames, st.Retries, st.WarmStarts, st.ColdStarts)
		case s := <-sig:
			fmt.Printf("\n%v: closing\n", s)
			rt.Close()
			st := rt.Stats()
			fmt.Printf("forwarded %d frames in %d bursts; %d rehashes, %d moves (%d warm, %d cold), %d retries\n",
				st.Frames, st.Bursts, st.Rehashes, st.Moves, st.WarmStarts, st.ColdStarts, st.Retries)
			return
		case err := <-errc:
			fmt.Fprintf(os.Stderr, "learnhpc route: %v\n", err)
			os.Exit(1)
		}
	}
}
