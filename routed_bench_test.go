package repro

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/netserve"
	"repro/internal/router"
	"repro/internal/serve"
	"repro/internal/xrand"
)

// BenchmarkRoutedQPS is BenchmarkWireQPS with the dispatch tier in the
// middle: the same 4 tenants and 16 clients per tenant, but every query
// crosses two loopback TCP hops — client → router → worker — with the
// router splicing raw frames between them (consistent-hash placement, id
// patching, burst forwarding; no row ever decoded in the middle). The
// acceptance bar (gated by bench_diff in CI) is 0 allocs/op in steady
// state and ≥0.7× BenchmarkWireQPS tenants=4 throughput: the extra hop
// must cost one more framing+syscall layer, not allocations or lost
// coalescing.
//
// Both workers serve every tenant, so placement is pure ring choice
// (on-demand, no artifact pushes) and the benchmark measures the
// forwarding plane alone.
func BenchmarkRoutedQPS(b *testing.B) {
	const clientsPerTenant = 16
	const tenants = 4
	names := make([]string, tenants)
	for t := 0; t < tenants; t++ {
		names[t] = fmt.Sprintf("t%d", t)
	}

	workerAddrs := make([]string, 2)
	for w := range workerAddrs {
		fl := fleet.New(fleet.Config{Coalescer: serve.Config{MaxBatch: 64}})
		defer fl.Close()
		for _, name := range names {
			if err := fl.Register(name, benchWrapper(b)); err != nil {
				b.Fatal(err)
			}
		}
		srv := netserve.NewServer(netserve.Config{Fleet: fl, FlushSpins: 8})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go srv.Serve(ln)
		defer srv.Close()
		workerAddrs[w] = ln.Addr().String()
	}

	rt, err := router.New(router.Config{Workers: workerAddrs})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go rt.Serve(ln)

	clients := clientsPerTenant * tenants
	conns := make([]*netserve.Client, tenants)
	for i := range conns {
		cl, err := netserve.Dial(ln.Addr().String(), netserve.ClientConfig{FlushSpins: 8})
		if err != nil {
			b.Fatal(err)
		}
		conns[i] = cl
		defer cl.Close()
	}

	// Warm every pool on all three processes (client pending, router
	// frame + remap, worker reqCtx) before counting allocations.
	var warm sync.WaitGroup
	for i := 0; i < clients; i++ {
		warm.Add(1)
		go func(cl *netserve.Client, name string) {
			defer warm.Done()
			y := make([]float64, 1)
			std := make([]float64, 1)
			for j := 0; j < 64; j++ {
				if _, err := cl.QueryInto(name, []float64{0.1, 0.2}, y, std, time.Time{}); err != nil {
					b.Error(err)
					return
				}
			}
		}(conns[i%tenants], names[i%tenants])
	}
	warm.Wait()

	per := b.N / clients
	if per == 0 {
		per = 1
	}
	b.SetParallelism(1)
	b.ReportAllocs()
	b.ResetTimer()
	hists := make([]netserve.Hist, clients)
	var wg sync.WaitGroup
	for t := 0; t < tenants; t++ {
		for c := 0; c < clientsPerTenant; c++ {
			wg.Add(1)
			go func(cl *netserve.Client, name string, seed uint64, h *netserve.Hist) {
				defer wg.Done()
				rng := xrand.New(seed)
				x := make([]float64, 2)
				y := make([]float64, 1)
				std := make([]float64, 1)
				for i := 0; i < per; i++ {
					x[0] = rng.Range(-2, 2)
					x[1] = rng.Range(-1, 1)
					sample := i&7 == 0
					var t0 time.Time
					if sample {
						t0 = time.Now()
					}
					if _, err := cl.QueryInto(name, x, y, std, time.Time{}); err != nil {
						b.Error(err)
						return
					}
					if sample {
						h.RecordSince(t0)
					}
				}
			}(conns[t], names[t], uint64(0xd0e0+31*t+c), &hists[t*clientsPerTenant+c])
		}
	}
	wg.Wait()
	b.StopTimer()
	var lat netserve.Hist
	for i := range hists {
		lat.Merge(&hists[i])
	}
	qps := float64(per*clients) / b.Elapsed().Seconds()
	b.ReportMetric(qps, "queries/s")
	st := rt.Stats()
	if st.Frames > 0 {
		b.ReportMetric(float64(st.Frames)/float64(st.Bursts), "frames/burst")
	}
	b.ReportMetric(float64(lat.Percentile(0.50).Nanoseconds()), "p50-ns")
	b.ReportMetric(float64(lat.Percentile(0.99).Nanoseconds()), "p99-ns")
}
