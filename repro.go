// Package repro is the public facade of the Learning Everywhere
// reproduction (Fox et al., IPPS 2019): pervasive machine learning for
// effective high-performance computation. It re-exports the core
// MLaroundHPC framework — simulation Oracles, UQ-gated Surrogates, the
// effective-performance ledger, active learning, autotuning and MLControl
// — while the simulation substrates live in internal packages and are
// exercised through the examples, the cmd/learnhpc experiment driver and
// the top-level benchmarks.
//
// Quick start:
//
//	oracle := core.OracleFunc{In: 2, Out: 1, F: mySimulation}
//	sur := repro.NewNNSurrogate(2, 1, []int{30, 48}, 0.1, rng)
//	w := repro.NewWrapper(oracle, sur, repro.WrapperConfig{UQThreshold: 0.05})
//	y, src, uq, err := w.Query(x) // simulation first, surrogate once trusted
//	res, err := w.QueryBatch(xs)  // amortized batched serving, concurrency-safe
//	fmt.Println(w.Ledger().EffectiveSpeedup(1))
//
// For serving under heavy traffic, NewShardedWrapper partitions the input
// space and double-buffers each shard's surrogate so background refits
// never stall readers, fanning oracle fallbacks over a worker pool:
//
//	fac := repro.NewNNSurrogateFactory(2, 1, []int{30, 48}, 0.1, rng, nil)
//	sw := repro.NewShardedWrapper(oracle, fac, repro.ShardedConfig{
//		Shards: 8, UQThreshold: 0.05, RetrainEvery: 200, OracleWorkers: 8,
//	})
//	sw.StartAutoRefit(30 * time.Second) // timer-driven background refresh
//
// High-QPS streams of independent single-point queries go through Serve:
// an adaptive micro-batch coalescer gathers concurrent Query calls into
// fused batches (dual trigger: batch size or an arrival-rate-tuned
// deadline) so each point costs what a batched row costs:
//
//	h := repro.Serve(sw, repro.CoalescerConfig{})
//	defer h.Close()
//	res, err := h.Query(x) // concurrent callers coalesce automatically
//
// A process serving many surrogates — the paper's "learning everywhere"
// shape, with an ML model at every layer of the workload — consolidates
// them behind one Fleet: a named-tenant registry of per-model coalescers
// over shared dispatch machinery, with bounded per-tenant admission,
// graceful Register/Deregister lifecycle, panic containment and
// per-tenant serving stats. The steady-state fleet query path
// (QueryInto) is allocation-free:
//
//	fl := repro.NewFleet(repro.FleetConfig{})
//	defer fl.Close()
//	fl.Register("potential", potWrapper)
//	fl.Register("tissue", tissueWrapper)
//	res, err := fl.Query("potential", x)
//	for name, st := range fl.Stats() { fmt.Println(name, st.QPS, st.P99) }
//
// Batch-driving callers (simulation sweeps) reuse one result slice with
// QueryBatchInto, which serves the whole batch through the surrogate's
// compiled batch program at zero steady-state allocations; Retention
// bounds the training window so refits stay O(window) on long-running
// servers:
//
//	cfg.Retention = repro.Retention{Policy: repro.RetainWindow, MaxSamples: 4096}
//	res := make([]repro.BatchResult, xs.Rows)
//	for { err := w.QueryBatchInto(xs, res); ... } // 0 allocs/iteration
package repro

import (
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/netserve"
	"repro/internal/registry"
	"repro/internal/router"
	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Core framework types, re-exported.
type (
	// Oracle is a simulation: the expensive ground truth.
	Oracle = core.Oracle
	// OracleFunc adapts a function into an Oracle.
	OracleFunc = core.OracleFunc
	// Surrogate is a trainable, uncertainty-aware stand-in for an Oracle.
	Surrogate = core.Surrogate
	// BatchSurrogate amortizes one network pass over a query batch.
	BatchSurrogate = core.BatchSurrogate
	// BatchSurrogateInto additionally writes batched UQ predictions into
	// caller-owned matrices (the allocation-free serving form).
	BatchSurrogateInto = core.BatchSurrogateInto
	// BatchPredictor is the optional deterministic batched point-predict
	// capability the drift tracker's bulk paths prefer.
	BatchPredictor = core.BatchPredictor
	// BatchResult is one row's answer from Wrapper.QueryBatch.
	BatchResult = core.BatchResult
	// NNSurrogate is the reference MC-dropout MLP surrogate.
	NNSurrogate = core.NNSurrogate
	// Wrapper is the MLaroundHPC runtime (UQ-gated surrogate-or-simulate).
	Wrapper = core.Wrapper
	// WrapperConfig tunes the wrapper.
	WrapperConfig = core.WrapperConfig
	// ShardedWrapper is the stall-free serving runtime: input-space
	// shards, double-buffered surrogates published by atomic swap, and
	// bounded parallel oracle fan-out.
	ShardedWrapper = core.ShardedWrapper
	// ShardedConfig tunes the sharded wrapper.
	ShardedConfig = core.ShardedConfig
	// Router assigns input points to shards.
	Router = core.Router
	// HashRouter partitions by a (optionally quantized) coordinate hash.
	HashRouter = core.HashRouter
	// KDRouter buckets along one input dimension by cut points.
	KDRouter = core.KDRouter
	// SurrogateFactory builds fresh surrogates for double-buffered refits.
	SurrogateFactory = core.SurrogateFactory
	// ShardStatus is one shard's serving-staleness report.
	ShardStatus = core.ShardStatus
	// Retention bounds the retained training window so refits stay
	// O(window) on long-running servers (zero value retains everything).
	Retention = core.Retention
	// RetentionPolicy selects how samples beyond the window are retired.
	RetentionPolicy = core.RetentionPolicy
	// Coalescer is the adaptive micro-batch serving front-end: concurrent
	// Query calls gather into fused batches for a Backend's QueryBatch.
	Coalescer = serve.Coalescer
	// CoalescerConfig tunes the coalescer (zero value = defaults).
	CoalescerConfig = serve.Config
	// CoalescedResult is one coalesced query's answer.
	CoalescedResult = serve.Result
	// ServeBackend is the engine a Coalescer (and a Fleet tenant) drives;
	// both Wrapper and ShardedWrapper implement it, including the
	// zero-alloc QueryBatchInto dispatch form.
	ServeBackend = serve.Backend
	// BatchPool recycles coalescer batch state; a fleet's tenants share one.
	BatchPool = serve.BatchPool
	// Fleet is the multi-tenant serving registry: many named surrogate
	// backends behind per-tenant coalescers with shared dispatch
	// machinery, bounded admission and per-tenant stats.
	Fleet = fleet.Fleet
	// FleetConfig tunes a Fleet (zero value = defaults).
	FleetConfig = fleet.Config
	// TenantStats is one fleet tenant's serving snapshot.
	TenantStats = fleet.TenantStats
	// Ledger is the effective-performance accounting record.
	Ledger = core.Ledger
	// Source tells which path answered a query.
	Source = core.Source
	// ActiveLearner drives pool-based active learning.
	ActiveLearner = core.ActiveLearner
	// Autotuner implements MLautotuning.
	Autotuner = core.Autotuner
	// Controller implements MLControl acquisition.
	Controller = core.Controller
	// Interface enumerates the paper's six ML↔HPC interaction modes.
	Interface = core.Interface
	// Rand is the reproducible splittable RNG used throughout.
	Rand = xrand.Rand
	// Matrix is the dense row-major matrix batches and training sets use
	// (re-exported so facade consumers can build QueryBatch/Train inputs).
	Matrix = tensor.Matrix
)

// Query sources.
const (
	FromSimulation = core.FromSimulation
	FromSurrogate  = core.FromSurrogate
)

// Training-set retention policies.
const (
	// RetainAll keeps every sample (the unbounded default).
	RetainAll = core.RetainAll
	// RetainWindow keeps the most recent MaxSamples samples.
	RetainWindow = core.RetainWindow
	// RetainReservoir keeps a uniform sample of the entire history.
	RetainReservoir = core.RetainReservoir
)

// The paper's taxonomy (§I).
const (
	HPCrunsML           = core.HPCrunsML
	SimulationTrainedML = core.SimulationTrainedML
	MLautotuning        = core.MLautotuning
	MLafterHPC          = core.MLafterHPC
	MLaroundHPC         = core.MLaroundHPC
	MLControl           = core.MLControl
)

// NewRand returns a deterministic splittable generator.
func NewRand(seed uint64) *Rand { return xrand.New(seed) }

// NewMatrix allocates a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix { return tensor.NewMatrix(rows, cols) }

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix { return tensor.FromRows(rows) }

// NewNNSurrogate builds the reference surrogate for an in→out mapping with
// the given hidden widths and dropout rate.
func NewNNSurrogate(in, out int, hidden []int, dropout float64, rng *Rand) *NNSurrogate {
	return core.NewNNSurrogate(in, out, hidden, dropout, rng)
}

// NewWrapper wraps an oracle with a UQ-gated surrogate.
func NewWrapper(oracle Oracle, surrogate Surrogate, cfg WrapperConfig) *Wrapper {
	return core.NewWrapper(oracle, surrogate, cfg)
}

// NewShardedWrapper wraps an oracle with sharded, double-buffered
// surrogates: retraining never stalls serving (see ShardedWrapper).
func NewShardedWrapper(oracle Oracle, factory SurrogateFactory, cfg ShardedConfig) *ShardedWrapper {
	return core.NewShardedWrapper(oracle, factory, cfg)
}

// NewNNSurrogateFactory returns a factory of independently seeded
// reference NN surrogates for use with NewShardedWrapper.
func NewNNSurrogateFactory(in, out int, hidden []int, dropout float64, rng *Rand, configure func(*NNSurrogate)) SurrogateFactory {
	return core.NewNNSurrogateFactory(in, out, hidden, dropout, rng, configure)
}

// Serve wraps a serving backend (Wrapper or ShardedWrapper) in an
// adaptive micro-batch Coalescer: many concurrent single-point Query
// calls are gathered into fused batches, so each point pays the batched
// per-row cost instead of the full per-call dispatch cost. Close the
// returned handle to drain gracefully.
func Serve(backend ServeBackend, cfg CoalescerConfig) *Coalescer {
	return serve.NewCoalescer(backend, cfg)
}

// NewFleet builds an empty multi-tenant serving fleet: Register named
// backends (Wrapper or ShardedWrapper) and query them by name; every
// tenant's coalescer draws on one shared batch pool, admission is
// bounded per tenant, and Close drains every tenant gracefully.
func NewFleet(cfg FleetConfig) *Fleet { return fleet.New(cfg) }

// KDCutsFromSamples returns ascending equal-mass cut points along
// dimension dim of the sample distribution, ready to feed a KDRouter —
// the auto-tuned alternative to hand-placed shard cuts.
func KDCutsFromSamples(samples *Matrix, dim, shards int) []float64 {
	return core.KDCutsFromSamples(samples, dim, shards)
}

// ErrServeClosed is returned by Coalescer.Query after Close.
var ErrServeClosed = serve.ErrClosed

// Fleet lifecycle and admission errors, re-exported.
var (
	// ErrFleetClosed is returned by fleet calls after Fleet.Close.
	ErrFleetClosed = fleet.ErrClosed
	// ErrUnknownTenant is returned for names no tenant currently holds.
	ErrUnknownTenant = fleet.ErrUnknownTenant
	// ErrDuplicateTenant is returned when registering an existing name.
	ErrDuplicateTenant = fleet.ErrDuplicateTenant
	// ErrTenantOverloaded is returned when a tenant's bounded in-flight
	// admission window is full. Sheds carry a *TenantOverloadedError, so
	// match with errors.Is (the sentinel compares by identity only).
	ErrTenantOverloaded = fleet.ErrOverloaded
)

// TenantOverloadedError is the typed admission-shed error: errors.As
// recovers which tenant shed the query; errors.Is matches it against
// ErrTenantOverloaded.
type TenantOverloadedError = fleet.OverloadedError

// Wire serving, re-exported from internal/netserve: a TCP server/client
// pair speaking a length-prefixed binary protocol whose server decodes
// straight into pooled buffers feeding the fleet's per-tenant coalescers,
// so micro-batches gather across connections. The steady-state path is
// allocation-free on both ends (Client.QueryInto with reused buffers).
type (
	// WireServer serves a Fleet over TCP.
	WireServer = netserve.Server
	// WireServerConfig tunes a WireServer (Fleet is required).
	WireServerConfig = netserve.Config
	// WireServerStats is the server-wide wire counter snapshot.
	WireServerStats = netserve.Stats
	// WireClient is one multiplexed client connection; any number of
	// goroutines may query it concurrently.
	WireClient = netserve.Client
	// WireClientConfig tunes a WireClient.
	WireClientConfig = netserve.ClientConfig
	// WireResult is one wire query's answer.
	WireResult = netserve.WireResult
	// WireRemoteError transports a server-side serving error's message.
	WireRemoteError = netserve.RemoteError
	// WireHealth is the HTTP health/readiness/stats handler of a served
	// fleet (GET /healthz, /readyz, /statsz).
	WireHealth = netserve.Health
	// WireLoadConfig drives RunWireLoad.
	WireLoadConfig = netserve.LoadConfig
	// WireLoadReport is RunWireLoad's outcome, including an HDR-style
	// latency histogram measured from scheduled (not sent) time.
	WireLoadReport = netserve.LoadReport
	// LatencyHist is the log-linear latency histogram the wire loadtest
	// and benchmarks record into.
	LatencyHist = netserve.Hist
	// WireResilientClient is the failure-hardened wire client: a pool of
	// multiplexed connections with automatic reconnect, deadline-aware
	// retries, optional hedging and per-tenant circuit breaking.
	WireResilientClient = netserve.ResilientClient
	// WireResilientConfig tunes a WireResilientClient.
	WireResilientConfig = netserve.ResilientConfig
	// WireBreakerConfig tunes the per-tenant circuit breakers.
	WireBreakerConfig = netserve.BreakerConfig
	// WireResilientStats snapshots a resilient client's failure counters.
	WireResilientStats = netserve.ResilientStats
	// WireCircuitOpenError names the tenant an open breaker shed; match
	// with errors.Is against ErrWireCircuitOpen.
	WireCircuitOpenError = netserve.CircuitOpenError
	// BrownoutConfig tunes the fleet's brownout controller (set it on
	// FleetConfig.Brownout): graceful fidelity degradation — prefer the
	// quantized program, then cap MC-dropout passes, then single-pass
	// UQ-off — for tenants breaching their latency or shed-rate SLOs.
	BrownoutConfig = fleet.BrownoutConfig
)

// Brownout ladder levels, as reported by TenantStats.BrownoutLevel.
const (
	// BrownoutOff serves at full fidelity.
	BrownoutOff = core.BrownoutOff
	// BrownoutPreferQuant serves surrogate lookups from the int8
	// quantized program when one is compiled.
	BrownoutPreferQuant = core.BrownoutPreferQuant
	// BrownoutReducedMC caps MC-dropout uncertainty passes.
	BrownoutReducedMC = core.BrownoutReducedMC
	// BrownoutNoUQ serves single-pass with the UQ gate disabled.
	BrownoutNoUQ = core.BrownoutNoUQ
)

// Wire status errors, re-exported. A WireClient maps every non-OK
// response status to one of these sentinels (or a *WireRemoteError).
var (
	// ErrWireRetry is an admission shed crossing the wire: back off and
	// retry (the wire form of ErrTenantOverloaded).
	ErrWireRetry = netserve.ErrRetry
	// ErrWireExpired reports a request whose deadline passed before the
	// server admitted it.
	ErrWireExpired = netserve.ErrExpired
	// ErrWireUnknownTenant is the wire form of ErrUnknownTenant.
	ErrWireUnknownTenant = netserve.ErrUnknownTenant
	// ErrWireClientClosed is returned once a WireClient is closed.
	ErrWireClientClosed = netserve.ErrClientClosed
	// ErrWireServerClosed is returned by WireServer.Serve after Close.
	ErrWireServerClosed = netserve.ErrServerClosed
	// ErrWireConnLost is the transport-failure sentinel: the connection
	// died under an in-flight query, fate unknown. A WireResilientClient
	// retries these on another connection.
	ErrWireConnLost = netserve.ErrConnLost
	// ErrWireNoConn is returned while every pooled connection of a
	// WireResilientClient is down and reconnecting.
	ErrWireNoConn = netserve.ErrNoConn
	// ErrWireCircuitOpen matches queries shed by an open per-tenant
	// circuit breaker (the concrete error is a *WireCircuitOpenError).
	ErrWireCircuitOpen = netserve.ErrCircuitOpen
)

// NewWireServer builds a TCP wire server over cfg.Fleet; run Serve (or
// ListenAndServe) in a goroutine and Close to drain.
func NewWireServer(cfg WireServerConfig) *WireServer { return netserve.NewServer(cfg) }

// DialWire connects a multiplexed wire client to a WireServer.
func DialWire(addr string, cfg WireClientConfig) (*WireClient, error) {
	return netserve.Dial(addr, cfg)
}

// DialWireResilient builds a failure-hardened wire client pool against a
// WireServer. Connections that fail to dial repair in the background;
// only a fully failed pool returns an error.
func DialWireResilient(addr string, cfg WireResilientConfig) (*WireResilientClient, error) {
	return netserve.DialResilient(addr, cfg)
}

// RunWireLoad drives an open- or closed-loop loadtest against a wire
// server and returns the merged report.
func RunWireLoad(cfg WireLoadConfig) (*WireLoadReport, error) { return netserve.RunLoad(cfg) }

// Crash-safe artifact registry, re-exported from internal/registry: a
// versioned on-disk store of surrogate artifacts with atomic
// torn-write-proof publishes, checksum-verified zero-copy (mmap) opens,
// quarantine of corrupt generations, and rollback. Bind a fleet tenant
// with Fleet.BindRegistry to warm-start it from its newest durable
// generation (zero retraining), persist every generation it publishes,
// and auto-roll-back drift regressions.
type (
	// Registry is the crash-safe versioned artifact store.
	Registry = registry.Registry
	// RegistryConfig configures OpenRegistry (Dir is required).
	RegistryConfig = registry.Config
	// RegistryStats snapshots publish/rollback/quarantine/open counters.
	RegistryStats = registry.Stats
	// RegistryHandle is one opened artifact generation.
	RegistryHandle = registry.Handle
	// FleetRegistryConfig binds one fleet tenant to a Registry (see
	// Fleet.BindRegistry).
	FleetRegistryConfig = fleet.RegistryConfig
)

// Registry errors, re-exported.
var (
	// ErrRegistryNotFound reports a name with no servable generation.
	ErrRegistryNotFound = registry.ErrNotFound
	// ErrRegistryNoPredecessor reports a rollback with nowhere to go.
	ErrRegistryNoPredecessor = registry.ErrNoPredecessor
)

// OpenRegistry opens (creating if needed) a crash-safe artifact registry
// rooted at cfg.Dir.
func OpenRegistry(cfg RegistryConfig) (*Registry, error) { return registry.Open(cfg) }

// RegistryShardKey names the artifact under which tenant's shard si is
// published ("tenant/shard-si") — the key scheme Fleet.BindRegistry and
// the dispatch tier's artifact mirror agree on.
func RegistryShardKey(tenant string, si int) string { return registry.ShardKey(tenant, si) }

// Multi-process dispatch tier, re-exported from internal/router: a
// wire-compatible frontend that places tenants across N worker processes
// by consistent hashing and splices raw frames between client and owner
// without ever decoding a row. Worker death rehashes only the dead
// worker's tenants, answers their in-flight requests with explicit Retry
// frames, and warm-starts the new owners from the router's mirrored
// artifact registry — failover without retraining.
type (
	// WireRouter is the dispatch-tier frontend (see NewWireRouter).
	WireRouter = router.Router
	// WireRouterConfig configures NewWireRouter (Workers is required).
	WireRouterConfig = router.Config
	// WireRouterStats snapshots the router's forwarding/placement counters.
	WireRouterStats = router.Stats
	// RouterWorkerHooks is the worker-process side: wire it into a
	// WireServerConfig's Artifacts and Install hooks so the worker serves
	// registry fetches and accepts placement pushes.
	RouterWorkerHooks = router.WorkerHooks
	// FleetPlacement records how a routed tenant landed on this process
	// (cold vs warm-started, and from which registry generation).
	FleetPlacement = fleet.Placement
)

// NewWireRouter builds the dispatch tier over cfg.Workers and dials them.
func NewWireRouter(cfg WireRouterConfig) (*WireRouter, error) { return router.New(cfg) }

// EffectiveSpeedup evaluates the paper's §III-D formula.
func EffectiveSpeedup(tseq, ttrain, tlearn, tlookup, nlookup, ntrain float64) float64 {
	return core.EffectiveSpeedup(tseq, ttrain, tlearn, tlookup, nlookup, ntrain)
}
