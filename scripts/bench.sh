#!/usr/bin/env bash
# bench.sh — run the top-level hot-path benchmarks and snapshot them as
# BENCH_<n>.json (name -> ns/op, allocs/op, B/op) so successive PRs have
# a perf trajectory to compare against.
#
# Usage: scripts/bench.sh [output.json]
#   Default output: BENCH_<n>.json with n = first unused index.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-}"
if [[ -z "$out" ]]; then
  n=1
  while [[ -e "BENCH_${n}.json" ]]; do n=$((n + 1)); done
  out="BENCH_${n}.json"
fi

benches='BenchmarkTrainEpoch$|BenchmarkDenseForwardBackward|BenchmarkQueryBatch$|BenchmarkQueryLoop|BenchmarkQueryDuringRetrain|BenchmarkOracleFanout|BenchmarkCompiledForward|BenchmarkCompiledBatch|BenchmarkDeepUQ|BenchmarkMatMulParallelSlope|BenchmarkCoalescedQPS|BenchmarkFleetQPS'
raw=$(go test -run=NONE -bench="$benches" -benchtime=1s -count=1 .)
echo "$raw"

# The machine shape is recorded alongside the numbers: the matmul fan-out
# slope (BenchmarkMatMulParallelSlope) is only meaningful relative to the
# core count it ran on, so snapshots from a 1-core container and a real
# multi-core box are distinguishable.
gomaxprocs="${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 1)}"

echo "$raw" | awk -v out="$out" -v gomaxprocs="$gomaxprocs" '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""; p50 = ""; p99 = ""
    for (i = 2; i < NF; i++) {
      if ($(i + 1) == "ns/op") ns = $i
      if ($(i + 1) == "B/op") bytes = $i
      if ($(i + 1) == "allocs/op") allocs = $i
      if ($(i + 1) == "p50-ns") p50 = $i
      if ($(i + 1) == "p99-ns") p99 = $i
    }
    if (ns != "") {
      entry = sprintf("  \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s",
        name, ns, bytes == "" ? "null" : bytes, allocs == "" ? "null" : allocs)
      if (p50 != "") entry = entry sprintf(", \"p50_ns\": %s, \"p99_ns\": %s", p50, p99)
      entries[++n] = entry "}"
    }
  }
  END {
    printf "{\n" > out
    printf "  \"_meta\": {\"gomaxprocs\": %s},\n", gomaxprocs > out
    for (i = 1; i <= n; i++) printf "%s%s\n", entries[i], (i < n ? "," : "") > out
    printf "}\n" > out
  }
'
echo "wrote $out"
