#!/usr/bin/env bash
# bench.sh — run the top-level hot-path benchmarks and snapshot them as
# BENCH_<n>.json (name -> ns/op, allocs/op, B/op) so successive PRs have
# a perf trajectory to compare against.
#
# Usage: scripts/bench.sh [output.json]
#   Default output: BENCH_<n>.json with n = first unused index.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-}"
if [[ -z "$out" ]]; then
  n=1
  while [[ -e "BENCH_${n}.json" ]]; do n=$((n + 1)); done
  out="BENCH_${n}.json"
fi

benches='BenchmarkTrainEpoch$|BenchmarkDenseForwardBackward|BenchmarkQueryBatch$|BenchmarkQueryLoop|BenchmarkQueryDuringRetrain|BenchmarkOracleFanout|BenchmarkCompiledForward|BenchmarkCompiledBatch|BenchmarkQuantizedForward|BenchmarkQuantizedQueryBatch|BenchmarkDeepUQ|BenchmarkMatMulParallelSlope|BenchmarkCoalescedQPS|BenchmarkFleetQPS|BenchmarkWireQPS|BenchmarkResilientQPS|BenchmarkRoutedQPS|BenchmarkRegistryColdStart'
raw=$(go test -run=NONE -bench="$benches" -benchtime=1s -count=1 .)
echo "$raw"

# The machine shape is recorded alongside the numbers: the matmul fan-out
# slope (BenchmarkMatMulParallelSlope) is only meaningful relative to the
# core count it ran on, so snapshots from a 1-core container and a real
# multi-core box are distinguishable. _meta gets the online CPU count and
# the full slope sweep so a reader can retune tensor.ParallelFlopThreshold
# (see README "Retuning the matmul fan-out threshold") without re-running.
cpus="$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 1)"
gomaxprocs="${GOMAXPROCS:-$cpus}"

echo "$raw" | awk -v out="$out" -v gomaxprocs="$gomaxprocs" -v cpus="$cpus" '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""; p50 = ""; p99 = ""
    for (i = 2; i < NF; i++) {
      if ($(i + 1) == "ns/op") ns = $i
      if ($(i + 1) == "B/op") bytes = $i
      if ($(i + 1) == "allocs/op") allocs = $i
      if ($(i + 1) == "p50-ns") p50 = $i
      if ($(i + 1) == "p99-ns") p99 = $i
    }
    if (ns != "") {
      if (name ~ /^BenchmarkMatMulParallelSlope\//) {
        sub(/^BenchmarkMatMulParallelSlope\//, "", name)
        slopes[++m] = sprintf("\"%s\": %s", name, ns)
        next
      }
      entry = sprintf("  \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s",
        name, ns, bytes == "" ? "null" : bytes, allocs == "" ? "null" : allocs)
      if (p50 != "") entry = entry sprintf(", \"p50_ns\": %s, \"p99_ns\": %s", p50, p99)
      entries[++n] = entry "}"
    }
  }
  END {
    slope = ""
    for (i = 1; i <= m; i++) slope = slope (i > 1 ? ", " : "") slopes[i]
    printf "{\n" > out
    printf "  \"_meta\": {\"gomaxprocs\": %s, \"cpus\": %s, \"parallel_slope_ns\": {%s}},\n", gomaxprocs, cpus, slope > out
    for (i = 1; i <= n; i++) printf "%s%s\n", entries[i], (i < n ? "," : "") > out
    printf "}\n" > out
  }
'
echo "wrote $out"
