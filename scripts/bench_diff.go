// bench_diff compares the last two BENCH_<n>.json snapshots written by
// scripts/bench.sh and exits nonzero when any benchmark present in both
// regressed by more than the tolerance in ns/op — the CI trip-wire behind
// the repo's perf trajectory.
//
// Usage:
//
//	go run ./scripts/bench_diff.go [-tol 15] [-dir .] [-require a,b:allocs=0] [old.json new.json]
//
// With no positional arguments it discovers the two highest-numbered
// BENCH_<n>.json files in -dir and compares them in order. -require
// lists benchmark-name substrings that must each match at least one
// entry of the NEW snapshot — the gate for "this PR's headline
// benchmarks are actually recorded", so a perf claim cannot silently
// drop out of the trajectory. A requirement may carry an allocs
// constraint, "substr:allocs=N": every matching entry must then report
// exactly N allocs/op, which is how zero-allocation contracts (the
// compiled-batch serving path) are enforced in CI rather than just
// claimed in a commit message. It may instead carry a speedup
// constraint, "substr:faster=REF@RATIO": every matching entry must run
// at least RATIO× faster than the exactly-named REF benchmark of the
// same snapshot (ref ns/op ÷ entry ns/op ≥ RATIO), which is how
// relative perf claims (the int8 quantized forward versus the float
// compiled forward) are enforced. -ignore exempts name substrings from the
// ns/op tolerance (still printed, marked "noise"): it exists for
// deliberately stalling negative baselines — e.g. the locked wrapper
// under retrain, whose ns/op is bimodal run to run depending on how many
// queries land inside a refit window — where a "regression" carries no
// signal about the code. Entries whose name starts with "_" (snapshot
// metadata such as _meta.gomaxprocs) are ignored everywhere.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type benchEntry struct {
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
	P50Ns       *float64 `json:"p50_ns"`
	P99Ns       *float64 `json:"p99_ns"`
}

func loadSnapshot(path string) (map[string]benchEntry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap map[string]benchEntry
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return snap, nil
}

// lastTwoSnapshots returns the two highest-n BENCH_<n>.json paths in dir,
// oldest first.
func lastTwoSnapshots(dir string) (older, newer string, err error) {
	re := regexp.MustCompile(`^BENCH_(\d+)\.json$`)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", "", err
	}
	var ns []int
	for _, e := range entries {
		if m := re.FindStringSubmatch(e.Name()); m != nil {
			n, _ := strconv.Atoi(m[1])
			ns = append(ns, n)
		}
	}
	if len(ns) < 2 {
		return "", "", fmt.Errorf("need at least two BENCH_<n>.json snapshots in %s, found %d", dir, len(ns))
	}
	sort.Ints(ns)
	older = filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", ns[len(ns)-2]))
	newer = filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", ns[len(ns)-1]))
	return older, newer, nil
}

func main() {
	tol := flag.Float64("tol", 15, "max allowed ns/op regression, percent")
	dir := flag.String("dir", ".", "directory holding BENCH_<n>.json snapshots")
	require := flag.String("require", "", "comma-separated benchmark-name substrings that must be present in the new snapshot")
	ignore := flag.String("ignore", "", "comma-separated benchmark-name substrings exempt from the ns/op tolerance (deliberately stalling baselines whose run-to-run variance carries no signal); still printed")
	flag.Parse()
	var ignores []string
	for _, s := range strings.Split(*ignore, ",") {
		if s = strings.TrimSpace(s); s != "" {
			ignores = append(ignores, s)
		}
	}

	var oldPath, newPath string
	switch flag.NArg() {
	case 0:
		var err error
		oldPath, newPath, err = lastTwoSnapshots(*dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench_diff:", err)
			os.Exit(2)
		}
	case 2:
		oldPath, newPath = flag.Arg(0), flag.Arg(1)
	default:
		fmt.Fprintln(os.Stderr, "usage: bench_diff [-tol pct] [-dir path] [old.json new.json]")
		os.Exit(2)
	}

	oldSnap, err := loadSnapshot(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_diff:", err)
		os.Exit(2)
	}
	newSnap, err := loadSnapshot(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_diff:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(newSnap))
	for name := range newSnap {
		if strings.HasPrefix(name, "_") {
			continue // snapshot metadata, not a benchmark
		}
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Printf("bench_diff: %s -> %s (tolerance %.0f%%)\n", oldPath, newPath, *tol)
	regressions := 0
	for _, name := range names {
		nw := newSnap[name]
		od, ok := oldSnap[name]
		if !ok {
			fmt.Printf("  NEW   %-50s %12.0f ns/op\n", name, nw.NsPerOp)
			continue
		}
		if od.NsPerOp <= 0 {
			continue
		}
		deltaPct := 100 * (nw.NsPerOp - od.NsPerOp) / od.NsPerOp
		status := "ok"
		if deltaPct > *tol {
			status = "REGRESSION"
			for _, ig := range ignores {
				if strings.Contains(name, ig) {
					status = "noise"
					break
				}
			}
			if status == "REGRESSION" {
				regressions++
			}
		}
		fmt.Printf("  %-5s %-50s %12.0f -> %-12.0f ns/op  %+6.1f%%\n",
			status, name, od.NsPerOp, nw.NsPerOp, deltaPct)
	}
	for name := range oldSnap {
		if strings.HasPrefix(name, "_") {
			continue
		}
		if _, ok := newSnap[name]; !ok {
			fmt.Printf("  GONE  %s\n", name)
		}
	}
	if *require != "" {
		failed := 0
		for _, want := range strings.Split(*require, ",") {
			want = strings.TrimSpace(want)
			if want == "" {
				continue
			}
			// "substr", "substr:allocs=N" or "substr:faster=REF@RATIO".
			substr, wantAllocs := want, -1.0
			fasterRef, fasterRatio := "", 0.0
			if cut := strings.Index(want, ":"); cut >= 0 {
				substr = want[:cut]
				cons := want[cut+1:]
				switch {
				case strings.HasPrefix(cons, "allocs="):
					v, err := strconv.ParseFloat(strings.TrimPrefix(cons, "allocs="), 64)
					if err != nil {
						fmt.Fprintf(os.Stderr, "bench_diff: bad allocs constraint in %q: %v\n", want, err)
						failed++
						continue
					}
					wantAllocs = v
				case strings.HasPrefix(cons, "faster="):
					spec := strings.TrimPrefix(cons, "faster=")
					at := strings.LastIndex(spec, "@")
					if at < 0 {
						fmt.Fprintf(os.Stderr, "bench_diff: faster constraint in %q wants REF@RATIO\n", want)
						failed++
						continue
					}
					v, err := strconv.ParseFloat(spec[at+1:], 64)
					if err != nil || v <= 0 {
						fmt.Fprintf(os.Stderr, "bench_diff: bad faster ratio in %q: %v\n", want, err)
						failed++
						continue
					}
					fasterRef, fasterRatio = spec[:at], v
				default:
					fmt.Fprintf(os.Stderr, "bench_diff: unknown constraint %q in requirement %q\n", cons, want)
					failed++
					continue
				}
			}
			found := false
			for name, entry := range newSnap {
				if strings.HasPrefix(name, "_") || !strings.Contains(name, substr) {
					continue
				}
				found = true
				if wantAllocs >= 0 {
					if entry.AllocsPerOp == nil {
						fmt.Fprintf(os.Stderr, "bench_diff: %s matches %q but reports no allocs/op\n", name, want)
						failed++
					} else if *entry.AllocsPerOp != wantAllocs {
						fmt.Fprintf(os.Stderr, "bench_diff: %s reports %g allocs/op, requirement %q wants %g\n",
							name, *entry.AllocsPerOp, want, wantAllocs)
						failed++
					}
				}
				if fasterRef != "" {
					ref, ok := newSnap[fasterRef]
					if !ok || ref.NsPerOp <= 0 {
						fmt.Fprintf(os.Stderr, "bench_diff: requirement %q: reference benchmark %q missing from %s\n",
							want, fasterRef, newPath)
						failed++
					} else if speedup := ref.NsPerOp / entry.NsPerOp; speedup < fasterRatio {
						fmt.Fprintf(os.Stderr, "bench_diff: %s is %.2fx faster than %s, requirement %q wants %.2fx\n",
							name, speedup, fasterRef, want, fasterRatio)
						failed++
					}
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "bench_diff: required benchmark %q missing from %s\n", want, newPath)
				failed++
			}
		}
		if failed > 0 {
			os.Exit(1)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "bench_diff: %d benchmark(s) regressed more than %.0f%% in ns/op\n", regressions, *tol)
		os.Exit(1)
	}
	fmt.Println("bench_diff: no ns/op regressions beyond tolerance")
}
