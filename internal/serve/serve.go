// Package serve implements the adaptive micro-batch request coalescer:
// the serving front-end that makes many concurrent single-point queries
// as cheap per point as one large batch. Concurrent Query calls are
// gathered into micro-batches with a dual trigger — a batch fills to
// MaxBatch, or the gather stalls (no new arrivals) with MaxDelay as the
// hard cap — and each batch runs once through the backend's amortized
// QueryBatchInto path, fanning results back to the blocked callers.
//
// Gathering is driven by the batch's first caller (the leader), which is
// blocked waiting for its own answer anyway: instead of sleeping on an
// OS timer (whose ~millisecond firing granularity would dwarf the
// microsecond gather windows), the leader yields its processor in a
// spin-and-recheck loop and dispatches as soon as arrivals stall. An
// EWMA of the observed arrival rate classifies sparse traffic, which
// bypasses gathering entirely — a lone query is dispatched immediately
// rather than taxed with a pointless wait.
//
// All per-batch state — the input matrix, the result rows, the dispatch
// bookkeeping — is recycled through a BatchPool, so the steady-state
// query path performs zero heap allocations (QueryInto) and coalescers
// of a multi-tenant fleet can share one pool instead of each warming a
// private one.
//
// This is the per-request → stream-oriented execution bridge the paper's
// serving story needs: the UQ-gated surrogate answers millions of
// independent lookups, and without coalescing every one of them pays the
// full per-pass dispatch cost that batching amortizes away.
package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/tensor"
)

// Backend is the serving engine a Coalescer (and a fleet of them) drives.
// Both core.Wrapper and core.ShardedWrapper satisfy it natively; the
// sharded backend additionally groups each micro-batch's rows by shard so
// every shard sees one fused batch per dispatch.
type Backend interface {
	// QueryBatch answers every row of xs; row results must remain valid
	// after the call returns.
	QueryBatch(xs *tensor.Matrix) ([]core.BatchResult, error)
	// QueryBatchInto is the buffer-reusing form: results land in res
	// (len == xs.Rows), overwriting each row's Y/Std in place when their
	// capacity suffices, so a steady-state dispatch loop reusing one res
	// slice performs zero heap allocations. Every row must be written
	// (a batch-level error may accompany valid rows, mirroring
	// core.Wrapper's retrain-failure contract).
	QueryBatchInto(xs *tensor.Matrix, res []core.BatchResult) error
	// Dims returns the input and output dimensionality.
	Dims() (in, out int)
}

// Config tunes a Coalescer. The zero value selects the defaults.
type Config struct {
	// MaxBatch dispatches a batch as soon as it gathers this many
	// requests (default 64).
	MaxBatch int
	// MaxDelay caps how long a batch may gather before dispatching
	// whatever has arrived (default 200µs). It also anchors the sparse
	// cutoff: when the arrival-rate estimate says even MaxDelay could
	// not fill a batch, queries dispatch immediately instead of waiting.
	MaxDelay time.Duration
	// StallSpins is how many consecutive leader yields without a new
	// arrival count as a stalled gather (default 4). Smaller dispatches
	// sooner at lower concurrency; larger rides out scheduling jitter.
	StallSpins int
	// EWMAAlpha is the smoothing factor of the arrival-interval estimate
	// in (0, 1]; larger adapts faster (default 0.2).
	EWMAAlpha float64
	// Pool supplies the recycled batch/dispatch state. Coalescers sharing
	// one pool (the per-tenant instances of a fleet) amortize their gather
	// buffers across tenants; nil gives the coalescer a private pool.
	Pool *BatchPool
}

func (c *Config) fill() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 200 * time.Microsecond
	}
	if c.StallSpins <= 0 {
		c.StallSpins = 4
	}
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = 0.2
	}
	if c.Pool == nil {
		c.Pool = NewBatchPool()
	}
}

// Result is one coalesced query's answer.
type Result struct {
	Y   []float64
	Src core.Source
	Std []float64 // non-nil only for surrogate answers
	// Batch is how many coalesced queries were served by the same backend
	// dispatch as this one (1 for a solo bypass). A response writer
	// sitting behind the coalescer can use it as a flush hint: when
	// Batch > 1, this answer's batch peers completed at the same instant
	// and their responses are (or are about to be) in flight, so holding
	// a buffered flush briefly lets one writev-style flush carry them all.
	Batch int
}

// Stats is a snapshot of coalescing effectiveness.
type Stats struct {
	Queries int64 // queries accepted
	Batches int64 // micro-batches dispatched
}

// MeanBatch returns the mean dispatched batch size.
func (s Stats) MeanBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Queries) / float64(s.Batches)
}

// ErrClosed is returned by Query after Close.
var ErrClosed = errors.New("serve: coalescer closed")

// errRowNotServed marks a pooled result row the backend never wrote.
// Rows are pre-stamped with it before every dispatch, so a backend that
// violates the QueryBatchInto every-row-written contract (e.g. by
// erroring out early) surfaces this error instead of leaking a previous
// batch's recycled answer to an unrelated caller.
var errRowNotServed = errors.New("serve: backend did not serve this row")

// batch is one forming/in-flight micro-batch. The struct, its input
// matrix and its result rows are pooled; the done channel — minted
// lazily, only once a second caller joins — is the sole per-batch
// allocation left, amortized over every gathered query and absent
// entirely from single-caller dispatches. A batch cannot return to the
// pool before every caller has consumed its row (the refs count), so a
// leader still spinning on a batch pointer always observes its own
// incarnation.
type batch struct {
	xs       *tensor.Matrix
	n        int
	done     chan struct{} // non-nil once a second caller joins; closed when res/err/panicked are final
	res      []core.BatchResult
	err      error
	panicked any
	refs     atomic.Int32 // callers yet to consume; last one recycles
}

// BatchPool recycles batch/dispatch state across coalescer instances.
// Batches are dimension-agnostic buffers (the input matrix is reshaped on
// lease, result-row capacities regrow on demand), so coalescers fronting
// backends of different shapes — the per-tenant instances of a fleet —
// can draw from one shared pool instead of each warming a private one.
// The zero value is NOT ready; use NewBatchPool.
type BatchPool struct {
	pool sync.Pool // *batch
}

// NewBatchPool builds an empty shared pool.
func NewBatchPool() *BatchPool { return &BatchPool{} }

// lease takes a recycled batch (or mints one) ready for filling with
// in-dimensional rows.
func (p *BatchPool) lease(in int) *batch {
	b, _ := p.pool.Get().(*batch)
	if b == nil {
		b = &batch{xs: tensor.NewMatrix(0, in)}
	}
	b.xs.Reshape(0, in)
	b.n = 0
	b.done = nil
	b.err, b.panicked = nil, nil
	return b
}

// put recycles b after its last caller released it.
func (p *BatchPool) put(b *batch) { p.pool.Put(b) }

// Coalescer gathers concurrent Query calls into micro-batches for a
// Backend. All methods are safe for concurrent use. Close drains
// gracefully: the forming batch is dispatched, in-flight batches finish,
// and subsequent queries fail with ErrClosed.
type Coalescer struct {
	backend Backend
	in, out int
	cfg     Config

	active atomic.Int64 // Query calls in flight (the observable concurrency)

	mu         sync.Mutex
	cur        *batch // forming batch, nil when none
	closed     bool
	lastDetach time.Time
	ewmaNs     float64 // smoothed per-query arrival-interval estimate
	nQueries   int64
	nBatches   int64

	inflight sync.WaitGroup // dispatched batches not yet completed
	pool     *BatchPool
}

// NewCoalescer builds a coalescer over backend.
func NewCoalescer(backend Backend, cfg Config) *Coalescer {
	cfg.fill()
	in, out := backend.Dims()
	return &Coalescer{backend: backend, in: in, out: out, cfg: cfg, pool: cfg.Pool}
}

// Query submits one input point and blocks until its micro-batch has been
// served, returning the same answer a direct backend QueryBatch row would
// produce. The returned Y/Std slices are caller-owned. Per-row oracle
// failures surface as the returned error; a panic in the backend
// propagates to exactly the callers of the affected batch.
func (c *Coalescer) Query(x []float64) (Result, error) {
	return c.query(x, nil, nil)
}

// QueryInto is the allocation-free form of Query: the answer is copied
// into y (and, for surrogate answers, std), which must each hold at least
// the backend's output dimensionality; the returned Result's Y/Std alias
// them. A steady-state caller reusing its buffers performs zero heap
// allocations per query once the batch pool is warm.
func (c *Coalescer) QueryInto(x, y, std []float64) (Result, error) {
	if len(y) < c.out || len(std) < c.out {
		return Result{}, fmt.Errorf("serve: result buffers hold %d/%d values, backend yields %d", len(y), len(std), c.out)
	}
	return c.query(x, y, std)
}

// query is the shared body of Query/QueryInto; nil y selects caller-owned
// copies.
func (c *Coalescer) query(x, y, std []float64) (Result, error) {
	if len(x) != c.in {
		return Result{}, fmt.Errorf("serve: query has %d dims, backend wants %d", len(x), c.in)
	}
	c.active.Add(1)
	defer c.active.Add(-1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Result{}, ErrClosed
	}
	c.nQueries++
	b := c.cur
	leader := false
	if b == nil {
		if c.active.Load() == 1 && !c.denseLocked() {
			// Nobody else is in flight AND the arrival-rate estimate says
			// no peer is imminent: dispatch solo, immediately — sparse
			// traffic is never taxed with a wait. Under dense traffic the
			// instantaneous concurrency is an unreliable signal (on few
			// cores a fast backend drains every caller before the next is
			// scheduled, so active hovers at 1 at hundreds of kQPS); the
			// EWMA sees through that, and the gather path below costs a
			// misclassified lone caller only a few yields before its
			// stall/all-joined triggers fire.
			b = c.pool.lease(c.in)
			b.xs.AppendRow(x)
			b.n = 1
			c.registerDispatchLocked(b)
			c.mu.Unlock()
			c.run(b)
			return c.collect(b, 0, y, std)
		}
		b = c.pool.lease(c.in)
		c.cur = b
		leader = true
	} else if b.done == nil {
		// Second caller: the batch now has waiters beyond its eventual
		// dispatcher, so it needs a completion broadcast. Minting the
		// channel here (not at lease) keeps single-caller batches — the
		// whole of a one-goroutine dense stream — allocation-free.
		b.done = make(chan struct{})
	}
	idx := b.n
	b.xs.AppendRow(x)
	b.n++
	full := b.n >= c.cfg.MaxBatch
	if full {
		c.detachLocked()
	}
	done := b.done
	c.mu.Unlock()

	if full {
		// Size trigger: the filling caller runs the batch inline — no
		// goroutine hop on the hot path — and its results are final when
		// run returns; no need to wait on done.
		c.run(b)
	} else if leader {
		dispatched, ch := c.lead(b)
		if !dispatched {
			// Another caller (size trigger) or Close dispatched the
			// batch; ch was captured under the lock and is non-nil
			// whenever someone other than this leader runs the batch.
			<-ch
		}
	} else {
		<-done
	}
	return c.collect(b, idx, y, std)
}

// collect extracts caller idx's answer from a completed batch and retires
// the caller's claim on it. Pooled result rows never escape: the row is
// copied — into fresh caller-owned slices (nil y) or into the caller's
// reused buffers — before the batch can recycle. A batch-level backend
// error (e.g. a failed retrain inside core.Wrapper.QueryBatchInto) does
// not discard row results that were already computed: mirroring the
// direct QueryBatch contract, each caller receives its row's answer (when
// one exists) alongside the error, with the row's own error taking
// precedence.
func (c *Coalescer) collect(b *batch, idx int, y, std []float64) (Result, error) {
	if pv := b.panicked; pv != nil {
		c.release(b)
		panic(pv)
	}
	r := &b.res[idx]
	if r.Err == errRowNotServed {
		// The backend never wrote this row (contract violation or an
		// early error return): expose the batch error, never the
		// recycled row's stale contents.
		err := b.err
		if err == nil {
			err = errRowNotServed
		}
		c.release(b)
		return Result{}, err
	}
	var out Result
	out.Src = r.Src
	out.Batch = b.n
	if r.Y != nil {
		if y != nil {
			out.Y = y[:len(r.Y)]
			copy(out.Y, r.Y)
			if r.Std != nil {
				out.Std = std[:len(r.Std)]
				copy(out.Std, r.Std)
			}
		} else {
			buf := make([]float64, len(r.Y)+len(r.Std))
			// Cap Y so an appending caller can never grow into Std.
			out.Y = buf[:len(r.Y):len(r.Y)]
			copy(out.Y, r.Y)
			if r.Std != nil {
				out.Std = buf[len(r.Y):]
				copy(out.Std, r.Std)
			}
		}
	}
	err := r.Err
	if err == nil {
		err = b.err
	}
	c.release(b)
	return out, err
}

// lead is the gather loop run by a batch's first caller, who is blocked
// on the batch anyway and so donates its wait to arrival detection: it
// yields the processor, letting other ready callers join, and dispatches
// when every in-flight caller has joined, when the batch stops growing
// for StallSpins consecutive yields, or when the EWMA-tuned deadline
// (the estimated time for a full batch to arrive, capped at MaxDelay)
// elapses. If another caller dispatches the batch first (size trigger or
// Close), the leader reports dispatched=false along with the batch's
// completion channel (captured under the lock; guaranteed non-nil, since
// every foreign dispatch path mints it first).
func (c *Coalescer) lead(b *batch) (dispatched bool, done chan struct{}) {
	stall := 0
	lastN := 0
	var start time.Time
	var deadline time.Duration
	for spins := 0; ; spins++ {
		runtime.Gosched()
		c.mu.Lock()
		if c.cur != b {
			// Dispatched by a size trigger or flushed by Close.
			done = b.done
			c.mu.Unlock()
			return false, done
		}
		if b.n == lastN {
			stall++
		} else {
			stall = 0
			lastN = b.n
		}
		// Everyone currently in flight has joined: waiting longer can
		// only add latency. (New arrivals would start the next batch.)
		expire := int64(b.n) >= c.active.Load() || stall >= c.cfg.StallSpins
		if !expire && spins%32 == 31 {
			// Growth is steady but slow: enforce the adaptive deadline
			// with a coarse (every-32-yields) clock check.
			now := time.Now()
			if start.IsZero() {
				start = now
				deadline = c.adaptiveDeadlineLocked()
			} else if now.Sub(start) >= deadline {
				expire = true
			}
		}
		if expire {
			c.detachLocked()
			c.mu.Unlock()
			c.run(b)
			return true, nil
		}
		c.mu.Unlock()
	}
}

// denseLocked reports whether the arrival-interval estimate classifies
// the stream as dense: another query is expected within a small fraction
// of the gather budget, so leading a batch is worth a short wait even
// when no peer is observably in flight right now. Cold starts (no
// estimate yet) read as sparse. Callers hold c.mu.
func (c *Coalescer) denseLocked() bool {
	return c.ewmaNs > 0 && time.Duration(4*c.ewmaNs) <= c.cfg.MaxDelay
}

// adaptiveDeadlineLocked is the EWMA-tuned gather deadline: the
// estimated time for a full batch to arrive at the observed rate, capped
// at MaxDelay — slow arrival streams are never held for longer than
// their own cadence justifies. Callers hold c.mu.
func (c *Coalescer) adaptiveDeadlineLocked() time.Duration {
	if c.ewmaNs == 0 {
		return c.cfg.MaxDelay
	}
	fill := time.Duration(c.ewmaNs * float64(c.cfg.MaxBatch-1))
	if fill > c.cfg.MaxDelay {
		return c.cfg.MaxDelay
	}
	return fill
}

// registerDispatchLocked accounts one batch dispatch: claims the caller
// refs, folds the gather interval into the arrival-rate EWMA (one clock
// read per batch, not per query) and registers the in-flight work.
// Callers hold c.mu.
func (c *Coalescer) registerDispatchLocked(b *batch) {
	b.refs.Store(int32(b.n))
	c.nBatches++
	c.inflight.Add(1)
	now := time.Now()
	if !c.lastDetach.IsZero() && b.n > 0 {
		per := float64(now.Sub(c.lastDetach)) / float64(b.n)
		if c.ewmaNs == 0 {
			c.ewmaNs = per
		} else {
			c.ewmaNs += c.cfg.EWMAAlpha * (per - c.ewmaNs)
		}
	}
	c.lastDetach = now
}

// detachLocked removes the forming batch from the gather slot and
// registers its dispatch; the caller then runs it. Callers hold c.mu.
func (c *Coalescer) detachLocked() {
	b := c.cur
	c.cur = nil
	c.registerDispatchLocked(b)
}

// run executes one dispatched batch on the backend through the pooled
// result rows and wakes its callers. A backend panic is captured and
// re-thrown in every caller of this batch (and only this batch).
func (c *Coalescer) run(b *batch) {
	defer func() {
		if pv := recover(); pv != nil {
			b.panicked = pv
		}
		if b.done != nil {
			close(b.done)
		}
		c.inflight.Done()
	}()
	if cap(b.res) < b.n {
		// Grow preserving the recycled rows' Y/Std capacities.
		b.res = append(b.res[:cap(b.res)], make([]core.BatchResult, b.n-cap(b.res))...)
	}
	b.res = b.res[:b.n]
	for i := range b.res {
		b.res[i].Err = errRowNotServed
	}
	b.err = c.backend.QueryBatchInto(b.xs, b.res)
}

// release retires one caller's claim on b, recycling it after the last.
func (c *Coalescer) release(b *batch) {
	if b.refs.Add(-1) == 0 {
		c.pool.put(b)
	}
}

// releaseN retires k claims at once (a burst waiter's rows).
func (c *Coalescer) releaseN(b *batch, k int) {
	if b.refs.Add(int32(-k)) == 0 {
		c.pool.put(b)
	}
}

// QueryRows submits a contiguous burst of rows as a single waiter: all
// rows join the forming micro-batch together under one lock hold, the
// caller blocks once for the whole burst, and each row's answer is
// delivered through the callback in row order. This is the wire server's
// enqueue path — a network read that drains N frames hands them over with
// one channel hop and one park/wake instead of N, which is what keeps
// loopback serving within arm's reach of in-process dispatch.
//
// The callback's Result.Y/Std alias pooled batch storage and are valid
// only for the duration of that callback invocation; copy (or encode)
// before returning. Rows beyond MaxBatch split into consecutive batches,
// every chunk but the last dispatching inline. A backend panic
// propagates to the caller after the affected rows' claims are retired,
// exactly like Query; rows in chunks before the panicking one will
// already have been delivered.
func (c *Coalescer) QueryRows(rows [][]float64, each func(i int, res Result, err error)) error {
	n := len(rows)
	if n == 0 {
		return nil
	}
	for _, x := range rows {
		if len(x) != c.in {
			return fmt.Errorf("serve: burst row has %d dims, backend wants %d", len(x), c.in)
		}
	}
	c.active.Add(1)
	defer c.active.Add(-1)
	i := 0
	for i < n {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return ErrClosed
		}
		b := c.cur
		leader, solo := false, false
		if b == nil {
			b = c.pool.lease(c.in)
			if c.active.Load() == 1 && !c.denseLocked() {
				// No other waiter in flight and none imminent: the burst
				// already IS a batch — dispatch it whole, immediately,
				// with no gather wait and no completion broadcast.
				solo = true
			} else {
				c.cur = b
				leader = true
			}
		} else if b.done == nil {
			b.done = make(chan struct{})
		}
		start := b.n
		for i < n && b.n < c.cfg.MaxBatch {
			b.xs.AppendRow(rows[i])
			b.n++
			i++
		}
		k := b.n - start
		c.nQueries += int64(k)
		base := i - k
		if solo {
			c.registerDispatchLocked(b)
			c.mu.Unlock()
			c.run(b)
			c.deliver(b, start, k, base, each)
			continue
		}
		full := b.n >= c.cfg.MaxBatch
		if full {
			c.detachLocked()
		}
		done := b.done
		c.mu.Unlock()
		if full {
			c.run(b)
		} else if leader {
			dispatched, ch := c.lead(b)
			if !dispatched {
				<-ch
			}
		} else {
			<-done
		}
		c.deliver(b, start, k, base, each)
	}
	return nil
}

// deliver fans a completed batch's rows [start, start+k) back through a
// burst waiter's callback as rows base..base+k-1, then retires the
// waiter's k claims. Result slices alias pooled rows — valid only inside
// the callback. A batch panic is re-thrown after the claims are retired.
func (c *Coalescer) deliver(b *batch, start, k, base int, each func(i int, res Result, err error)) {
	if pv := b.panicked; pv != nil {
		c.releaseN(b, k)
		panic(pv)
	}
	for j := 0; j < k; j++ {
		r := &b.res[start+j]
		var res Result
		err := r.Err
		if err == errRowNotServed {
			err = b.err
			if err == nil {
				err = errRowNotServed
			}
		} else {
			res.Src = r.Src
			res.Batch = b.n
			res.Y = r.Y
			res.Std = r.Std
			if err == nil {
				err = b.err
			}
		}
		each(base+j, res, err)
	}
	c.releaseN(b, k)
}

// Stats returns a snapshot of coalescing effectiveness.
func (c *Coalescer) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Queries: c.nQueries, Batches: c.nBatches}
}

// Close drains the coalescer: the forming batch (if any) is dispatched
// immediately, all in-flight batches run to completion, and every later
// Query fails with ErrClosed. Close is idempotent and safe to call
// concurrently with Query — including while queries are mid-gather, the
// contract Fleet.Deregister relies on: a flushed batch's callers (its
// spinning leader among them) are all served before Close returns.
func (c *Coalescer) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.inflight.Wait()
		return nil
	}
	c.closed = true
	b := c.cur
	if b != nil {
		if b.done == nil {
			// A single-caller batch skips the completion channel because
			// its only caller normally dispatches it; flushing it from
			// here means that caller (the spinning leader) must instead
			// be woken, so mint the channel before detaching. The leader
			// reads b.done under c.mu only after observing cur != b, so
			// it always sees this write.
			b.done = make(chan struct{})
		}
		c.detachLocked()
	}
	c.mu.Unlock()
	if b != nil {
		c.run(b)
	}
	c.inflight.Wait()
	return nil
}
