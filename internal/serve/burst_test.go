package serve

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

// TestCoalescerQueryRowsCorrectness submits multi-row bursts while plain
// Query callers run alongside: every row must come back to its own index
// with its own answer, and chunking at MaxBatch must stay transparent.
func TestCoalescerQueryRowsCorrectness(t *testing.T) {
	fb := newFakeBackend()
	fb.delay = 50 * time.Microsecond
	c := NewCoalescer(fb, Config{MaxBatch: 4})
	defer c.Close()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				rows := make([][]float64, 10) // > MaxBatch: forces chunking
				for i := range rows {
					rows[i] = []float64{float64(g), float64(round*10 + i)}
				}
				got := make([]bool, len(rows))
				err := c.QueryRows(rows, func(i int, res Result, err error) {
					if err != nil {
						t.Errorf("row %d: %v", i, err)
						return
					}
					if got[i] {
						t.Errorf("row %d delivered twice", i)
					}
					got[i] = true
					want := rows[i][0] + 2*rows[i][1]
					if math.Abs(res.Y[0]-want) > 1e-12 {
						t.Errorf("row %d: got %v want %v", i, res.Y[0], want)
					}
					if res.Batch < 1 {
						t.Errorf("row %d: batch %d", i, res.Batch)
					}
				})
				if err != nil {
					t.Error(err)
					return
				}
				for i, ok := range got {
					if !ok {
						t.Errorf("row %d never delivered", i)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	st := c.Stats()
	if st.Queries != 4*20*10 {
		t.Fatalf("queries = %d, want %d", st.Queries, 4*20*10)
	}
}

// TestCoalescerQueryRowsRowErrors checks a poisoned row inside a burst
// fails only itself; its burst-mates get their answers.
func TestCoalescerQueryRowsRowErrors(t *testing.T) {
	fb := newFakeBackend()
	fb.failAt = 99
	c := NewCoalescer(fb, Config{MaxBatch: 8})
	defer c.Close()

	rows := [][]float64{{1, 1}, {99, 0}, {2, 2}}
	errs := make([]error, len(rows))
	ys := make([]float64, len(rows))
	if err := c.QueryRows(rows, func(i int, res Result, err error) {
		errs[i] = err
		if err == nil {
			ys[i] = res.Y[0]
		}
	}); err != nil {
		t.Fatal(err)
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("healthy rows failed: %v / %v", errs[0], errs[2])
	}
	if errs[1] == nil {
		t.Fatal("poisoned row did not fail")
	}
	if ys[0] != 3 || ys[2] != 6 {
		t.Fatalf("healthy answers corrupted: %v %v", ys[0], ys[2])
	}
}

// TestCoalescerQueryRowsPanic checks a backend panic re-surfaces as a
// panic from QueryRows (the fleet layer converts it to an error), after
// the batch's claims are retired so the pool is not poisoned.
func TestCoalescerQueryRowsPanic(t *testing.T) {
	fb := newFakeBackend()
	fb.panicAt = 7
	c := NewCoalescer(fb, Config{MaxBatch: 8})
	defer c.Close()

	func() {
		defer func() {
			if recover() == nil {
				t.Error("QueryRows did not re-panic")
			}
		}()
		c.QueryRows([][]float64{{7, 0}}, func(int, Result, error) {
			t.Error("callback ran for a panicked batch")
		})
	}()

	// The coalescer must still serve afterwards.
	r, err := c.Query([]float64{1, 1})
	if err != nil || r.Y[0] != 3 {
		t.Fatalf("post-panic query: %v %v", r, err)
	}
}

// TestCoalescerQueryRowsValidation checks bad geometry and closed
// coalescers reject the whole burst before any callback runs.
func TestCoalescerQueryRowsValidation(t *testing.T) {
	c := NewCoalescer(newFakeBackend(), Config{MaxBatch: 8})
	boom := func(int, Result, error) { t.Error("callback ran") }
	if err := c.QueryRows([][]float64{{1, 2}, {1, 2, 3}}, boom); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if err := c.QueryRows(nil, boom); err != nil {
		t.Fatalf("empty burst: %v", err)
	}
	c.Close()
	if err := c.QueryRows([][]float64{{1, 2}}, boom); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed coalescer returned %v", err)
	}
}
