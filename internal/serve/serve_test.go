package serve

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/raceflag"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// fakeBackend is a deterministic Backend: y = x0 + 2*x1, with optional
// per-row failure/panic triggers keyed off the input value, an optional
// fixed delay (to create caller overlap) and an optional block channel
// (to hold batches in flight).
type fakeBackend struct {
	in, out   int
	delay     time.Duration
	batches   atomic.Int64
	failAt    float64       // rows with x0 == failAt get a row error
	panicAt   float64       // a batch containing x0 == panicAt panics
	block     chan struct{} // blocks the FIRST batch after blockUsed reset
	blockUsed atomic.Bool
}

func newFakeBackend() *fakeBackend { return &fakeBackend{in: 2, out: 1} }

func (f *fakeBackend) Dims() (int, int) { return f.in, f.out }

func (f *fakeBackend) QueryBatch(xs *tensor.Matrix) ([]core.BatchResult, error) {
	res := make([]core.BatchResult, xs.Rows)
	return res, f.QueryBatchInto(xs, res)
}

func (f *fakeBackend) QueryBatchInto(xs *tensor.Matrix, res []core.BatchResult) error {
	f.batches.Add(1)
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	if f.block != nil && f.blockUsed.CompareAndSwap(false, true) {
		<-f.block
	}
	for i := 0; i < xs.Rows; i++ {
		row := xs.Row(i)
		if f.panicAt != 0 && row[0] == f.panicAt {
			panic("fake backend exploded")
		}
		if f.failAt != 0 && row[0] == f.failAt {
			res[i] = core.BatchResult{Src: core.FromSimulation, Err: errors.New("row failed")}
			continue
		}
		res[i] = core.BatchResult{Y: []float64{row[0] + 2*row[1]}, Src: core.FromSurrogate}
	}
	return nil
}

// TestCoalescerCorrectness checks every concurrent caller gets exactly
// its own answer back, and that overlapping load actually coalesces
// (run under -race). The backend delay guarantees callers overlap, so
// the adaptive gather has concurrency to harvest.
func TestCoalescerCorrectness(t *testing.T) {
	fb := newFakeBackend()
	fb.delay = 100 * time.Microsecond
	c := NewCoalescer(fb, Config{MaxBatch: 8})
	defer c.Close()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := xrand.New(seed)
			for i := 0; i < 50; i++ {
				x := []float64{rng.Range(-1, 1), rng.Range(-1, 1)}
				r, err := c.Query(x)
				if err != nil {
					t.Error(err)
					return
				}
				want := x[0] + 2*x[1]
				if math.Abs(r.Y[0]-want) > 1e-15 {
					t.Errorf("got %g want %g", r.Y[0], want)
					return
				}
			}
		}(uint64(g + 1))
	}
	wg.Wait()
	st := c.Stats()
	if st.Queries != 800 {
		t.Fatalf("stats counted %d queries, want 800", st.Queries)
	}
	if st.MeanBatch() <= 1 {
		t.Fatalf("mean batch %.2f: overlapping load did not coalesce at all", st.MeanBatch())
	}
}

// TestCoalescerLoneQueryNoWait pins the sparse-traffic contract: a query
// with no concurrent company dispatches immediately as a batch of 1 —
// it is never taxed with a gather wait.
func TestCoalescerLoneQueryNoWait(t *testing.T) {
	fb := newFakeBackend()
	c := NewCoalescer(fb, Config{MaxBatch: 64, MaxDelay: time.Hour})
	defer c.Close()
	t0 := time.Now()
	r, err := c.Query([]float64{0.5, 0.25})
	dt := time.Since(t0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Y[0] != 1.0 {
		t.Fatalf("got %g want 1.0", r.Y[0])
	}
	if got := c.Stats().Batches; got != 1 {
		t.Fatalf("dispatched %d batches, want 1", got)
	}
	// Generous bound: the point is that the hour-long MaxDelay (and any
	// timer machinery) never entered the picture.
	if dt > time.Second {
		t.Fatalf("lone query took %v; sparse bypass dead", dt)
	}
}

// TestCoalescerDenseClassification pins the sparse/dense cutoff the solo
// bypass consults: cold starts and slow arrival streams read as sparse
// (dispatch solo, no wait); arrival intervals well inside the gather
// budget read as dense (lead a gather even when active == 1, so
// invisible concurrency on few cores still coalesces).
func TestCoalescerDenseClassification(t *testing.T) {
	c := NewCoalescer(newFakeBackend(), Config{MaxDelay: 200 * time.Microsecond})
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.denseLocked() {
		t.Fatal("cold start classified dense; first queries must bypass solo")
	}
	c.ewmaNs = float64(5 * time.Microsecond) // 4x estimate well under MaxDelay
	if !c.denseLocked() {
		t.Fatal("5µs arrival interval classified sparse under a 200µs budget")
	}
	c.ewmaNs = float64(time.Millisecond) // even one peer would outwait the budget
	if c.denseLocked() {
		t.Fatal("1ms arrival interval classified dense under a 200µs budget")
	}
}

// TestCoalescerSizeTrigger checks a full batch dispatches without
// waiting out any deadline: concurrent queries against a blocked-forming
// batch complete promptly even with an hour-long MaxDelay.
func TestCoalescerSizeTrigger(t *testing.T) {
	fb := newFakeBackend()
	fb.delay = 50 * time.Microsecond
	c := NewCoalescer(fb, Config{MaxBatch: 4, MaxDelay: time.Hour})
	defer c.Close()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Query([]float64{float64(i), 0}); err != nil {
				t.Error(err)
			}
		}(g)
	}
	waited := make(chan struct{})
	go func() { wg.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(10 * time.Second):
		t.Fatal("queries stuck behind an hour-long deadline; size/stall triggers dead")
	}
}

// TestCoalescerRowErrors checks per-row oracle failures land on exactly
// the failing caller.
func TestCoalescerRowErrors(t *testing.T) {
	fb := newFakeBackend()
	fb.failAt = 7
	fb.delay = 20 * time.Microsecond
	c := NewCoalescer(fb, Config{MaxBatch: 4})
	defer c.Close()
	var wg sync.WaitGroup
	var failures atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			x0 := float64(i)
			if i%4 == 3 {
				x0 = 7 // the poisoned row
			}
			_, err := c.Query([]float64{x0, 1})
			if x0 == 7 {
				if err == nil {
					t.Error("poisoned row returned no error")
				} else {
					failures.Add(1)
				}
			} else if err != nil {
				t.Errorf("healthy row got error %v", err)
			}
		}(g)
	}
	wg.Wait()
	if failures.Load() != 2 {
		t.Fatalf("%d callers saw the row error, want 2", failures.Load())
	}
}

// blockerQuery parks one in-flight query inside the backend so that
// subsequent queries see standing concurrency and gather instead of
// dispatching solo. Returns a channel yielding the blocker's error.
func blockerQuery(c *Coalescer, fb *fakeBackend) <-chan error {
	fb.block = make(chan struct{})
	fb.blockUsed.Store(false)
	res := make(chan error, 1)
	go func() {
		_, err := c.Query([]float64{1, 1})
		res <- err
	}()
	for fb.batches.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	return res
}

// TestCoalescerPanicPropagation checks a backend panic reaches exactly
// the callers of the affected batch: they re-panic with the original
// value, other batches are untouched, and the coalescer keeps serving.
func TestCoalescerPanicPropagation(t *testing.T) {
	fb := newFakeBackend()
	fb.panicAt = 9
	// Stall/deadline triggers effectively disabled: batch membership is
	// decided purely by the size trigger, deterministically.
	c := NewCoalescer(fb, Config{MaxBatch: 3, MaxDelay: time.Hour, StallSpins: 1 << 30})
	defer c.Close()

	// A blocked lone query keeps the concurrency up so the poisoned trio
	// gathers into one batch.
	blockerRes := blockerQuery(c, fb)

	var panics atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if pv := recover(); pv != nil {
					if pv != "fake backend exploded" {
						t.Errorf("unexpected panic value %v", pv)
					}
					panics.Add(1)
				}
			}()
			x0 := float64(i)
			if i == 0 {
				x0 = 9 // poison the batch
			}
			c.Query([]float64{x0, 0})
		}(g)
	}
	wg.Wait()
	if panics.Load() != 3 {
		t.Fatalf("%d callers panicked, want all 3 of the poisoned batch", panics.Load())
	}
	// The blocker's batch is untouched by its sibling's panic.
	close(fb.block)
	if err := <-blockerRes; err != nil {
		t.Fatalf("blocker caught its neighbour's panic: %v", err)
	}
	// The coalescer must still serve after a poisoned batch.
	r, err := c.Query([]float64{1, 1})
	if err != nil || r.Y[0] != 3 {
		t.Fatalf("serving broken after panic: %v %v", r, err)
	}
}

// TestCoalescerCloseDuringInflight checks graceful drain: Close while
// batches are executing waits for them, their callers get real results,
// and later queries fail with ErrClosed.
func TestCoalescerCloseDuringInflight(t *testing.T) {
	fb := newFakeBackend()
	c := NewCoalescer(fb, Config{MaxBatch: 2})
	blockerRes := blockerQuery(c, fb)

	closed := make(chan struct{})
	go func() { c.Close(); close(closed) }()
	select {
	case <-closed:
		t.Fatal("Close returned while a batch was still executing")
	case <-time.After(20 * time.Millisecond):
	}
	close(fb.block) // let the in-flight batch finish
	<-closed
	if err := <-blockerRes; err != nil {
		t.Fatalf("in-flight caller got %v, want its result", err)
	}
	if _, err := c.Query([]float64{0, 0}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close query returned %v, want ErrClosed", err)
	}
}

// TestCoalescerCloseFlushesFormingBatch checks Close dispatches a batch
// still gathering (its leader pinned down by disabled stall/deadline
// triggers) instead of stranding its callers.
func TestCoalescerCloseFlushesFormingBatch(t *testing.T) {
	fb := newFakeBackend()
	c := NewCoalescer(fb, Config{MaxBatch: 64, MaxDelay: time.Hour, StallSpins: 1 << 30})
	blockerRes := blockerQuery(c, fb)

	// This query gathers (the blocker keeps active > 1) and can only
	// leave via Close: the batch never fills, the leader never stalls.
	res := make(chan error, 1)
	go func() {
		_, err := c.Query([]float64{2, 1})
		res <- err
	}()
	for c.Stats().Queries < 2 {
		time.Sleep(time.Millisecond)
	}
	closed := make(chan struct{})
	go func() { c.Close(); close(closed) }()
	time.Sleep(10 * time.Millisecond)
	close(fb.block) // release the blocker and the flushed batch
	select {
	case err := <-res:
		if err != nil {
			t.Fatalf("flushed caller got %v, want result", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close stranded the forming batch's caller")
	}
	<-closed
	if err := <-blockerRes; err != nil {
		t.Fatal(err)
	}
}

// TestCoalescerDimsMismatch checks malformed queries fail fast without
// joining a batch.
func TestCoalescerDimsMismatch(t *testing.T) {
	c := NewCoalescer(newFakeBackend(), Config{})
	defer c.Close()
	if _, err := c.Query([]float64{1, 2, 3}); err == nil {
		t.Fatal("3-dim query accepted by 2-dim backend")
	}
	if got := c.Stats().Queries; got != 0 {
		t.Fatalf("malformed query counted: %d", got)
	}
}

// TestCoalescerAgainstWrapper is the integration check: coalesced
// queries through a real UQ-gated Wrapper return well-formed surrogate
// answers under concurrent load.
func TestCoalescerAgainstWrapper(t *testing.T) {
	rng := xrand.New(0xc0a1)
	oracle := core.OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		return []float64{x[0]*x[0] + 0.5*x[1]}, nil
	}}
	sur := core.NewNNSurrogate(2, 1, []int{16}, 0.1, rng)
	sur.Epochs = 60
	sur.MCPasses = 8
	w := core.NewWrapper(oracle, sur, core.WrapperConfig{MinTrainSamples: 10, UQThreshold: 10})
	design := tensor.NewMatrix(60, 2)
	for i := 0; i < design.Rows; i++ {
		design.Set(i, 0, rng.Range(-1, 1))
		design.Set(i, 1, rng.Range(-1, 1))
	}
	if err := w.Pretrain(design); err != nil {
		t.Fatal(err)
	}
	c := NewCoalescer(w, Config{MaxBatch: 8})
	defer c.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			crng := xrand.New(seed)
			for i := 0; i < 50; i++ {
				x := []float64{crng.Range(-1, 1), crng.Range(-1, 1)}
				r, err := c.Query(x)
				if err != nil {
					t.Error(err)
					return
				}
				if r.Src != core.FromSurrogate {
					t.Errorf("UQThreshold 10 query fell back to simulation")
					return
				}
				if len(r.Y) != 1 || len(r.Std) != 1 {
					t.Errorf("malformed result %+v", r)
					return
				}
			}
		}(uint64(1000 + g))
	}
	wg.Wait()
	if got := c.Stats().Queries; got != 400 {
		t.Fatalf("stats counted %d queries, want 400", got)
	}
}

// TestCoalescerBatchWiderThanCompiledWidth is the regression test for
// micro-batches exceeding the surrogate's compiled batch width: the
// backend must split them across fused chunks (never degrade to
// per-query fallback) and every caller must still receive its own exact
// answer. The surrogate is deterministic (no dropout), so each result can
// be checked against a direct single-point prediction.
func TestCoalescerBatchWiderThanCompiledWidth(t *testing.T) {
	rng := xrand.New(0xc0a3)
	oracle := core.OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		return []float64{x[0]*x[0] - x[1]}, nil
	}}
	sur := core.NewNNSurrogate(2, 1, []int{16}, 0, rng)
	sur.Epochs = 40
	sur.MCPasses = 4
	sur.MaxBatch = 8 // compiled width far below the coalescer's MaxBatch
	w := core.NewWrapper(oracle, sur, core.WrapperConfig{MinTrainSamples: 10, UQThreshold: 100})
	design := tensor.NewMatrix(40, 2)
	for i := 0; i < design.Rows; i++ {
		design.Set(i, 0, rng.Range(-1, 1))
		design.Set(i, 1, rng.Range(-1, 1))
	}
	if err := w.Pretrain(design); err != nil {
		t.Fatal(err)
	}
	rec := &widthRecordingBackend{
		inner:    w,
		block:    make(chan struct{}),
		sawFirst: make(chan struct{}),
	}
	c := NewCoalescer(rec, Config{MaxBatch: 64, StallSpins: 512, MaxDelay: 50 * time.Millisecond})
	defer c.Close()

	// A blocker query holds the first batch in flight, so the following 16
	// queries all pile into one forming micro-batch — twice the compiled
	// width — before the leader dispatches it.
	blockerDone := make(chan error, 1)
	go func() {
		_, err := c.Query([]float64{0.1, 0.2})
		blockerDone <- err
	}()
	<-rec.sawFirst

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			crng := xrand.New(seed)
			x := []float64{crng.Range(-1, 1), crng.Range(-1, 1)}
			r, err := c.Query(x)
			if err != nil {
				t.Error(err)
				return
			}
			if r.Src != core.FromSurrogate {
				t.Error("query fell back to simulation under a wide-open UQ gate")
				return
			}
			want := sur.Predict(x)
			if math.Abs(r.Y[0]-want[0]) > 1e-12 {
				t.Errorf("coalesced answer %g differs from direct prediction %g", r.Y[0], want[0])
			}
		}(uint64(3000 + g))
	}
	wg.Wait()
	close(rec.block)
	if err := <-blockerDone; err != nil {
		t.Fatal(err)
	}
	// The dispatches must actually have exceeded the compiled width, or
	// this test proved nothing about chunk splitting.
	if mx := rec.maxRows.Load(); mx <= 8 {
		t.Fatalf("widest dispatched batch was %d rows; need > 8 to exercise the chunked path", mx)
	}
	if got := c.Stats().Queries; got != 17 {
		t.Fatalf("stats counted %d queries, want 17", got)
	}
}

// widthRecordingBackend forwards to an inner Backend, recording the
// widest batch it was asked to serve. The first batch it receives parks
// on the block channel (after signalling sawFirst), holding its caller in
// flight so later queries must gather instead of dispatching solo.
type widthRecordingBackend struct {
	inner    Backend
	maxRows  atomic.Int64
	first    atomic.Bool
	block    chan struct{}
	sawFirst chan struct{}
}

func (b *widthRecordingBackend) Dims() (int, int) { return b.inner.Dims() }

func (b *widthRecordingBackend) QueryBatch(xs *tensor.Matrix) ([]core.BatchResult, error) {
	res := make([]core.BatchResult, xs.Rows)
	return res, b.QueryBatchInto(xs, res)
}

func (b *widthRecordingBackend) QueryBatchInto(xs *tensor.Matrix, res []core.BatchResult) error {
	for {
		old := b.maxRows.Load()
		if int64(xs.Rows) <= old || b.maxRows.CompareAndSwap(old, int64(xs.Rows)) {
			break
		}
	}
	if b.first.CompareAndSwap(false, true) {
		close(b.sawFirst)
		<-b.block
	}
	return b.inner.QueryBatchInto(xs, res)
}

// TestCoalescerSlowOracleCoalesces drives a wrapper whose every query
// falls back to a slow oracle: callers pile up behind the in-flight
// batch, so the gather must harvest that concurrency into real batches.
func TestCoalescerSlowOracleCoalesces(t *testing.T) {
	rng := xrand.New(0xc0a2)
	oracle := core.OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		time.Sleep(100 * time.Microsecond)
		return []float64{x[0] - x[1]}, nil
	}}
	sur := core.NewNNSurrogate(2, 1, []int{8}, 0.1, rng)
	w := core.NewWrapper(oracle, sur, core.WrapperConfig{
		MinTrainSamples: 1 << 30, // never trains: every row runs the oracle
		OracleWorkers:   8,
	})
	c := NewCoalescer(w, Config{MaxBatch: 16})
	defer c.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			crng := xrand.New(seed)
			for i := 0; i < 25; i++ {
				x := []float64{crng.Range(-1, 1), crng.Range(-1, 1)}
				r, err := c.Query(x)
				if err != nil {
					t.Error(err)
					return
				}
				if math.Abs(r.Y[0]-(x[0]-x[1])) > 1e-12 {
					t.Errorf("oracle row corrupted: %g want %g", r.Y[0], x[0]-x[1])
					return
				}
			}
		}(uint64(2000 + g))
	}
	wg.Wait()
	if mb := c.Stats().MeanBatch(); mb <= 1 {
		t.Fatalf("slow-oracle mean batch %.2f, want coalescing > 1", mb)
	}
}

// TestCoalescerQueryInto checks the allocation-free form: answers are
// copied into the caller's buffers (which the Result aliases), row errors
// still surface per caller, and undersized buffers are rejected up front.
func TestCoalescerQueryInto(t *testing.T) {
	fb := newFakeBackend()
	fb.failAt = 7.0
	c := NewCoalescer(fb, Config{MaxBatch: 8})
	defer c.Close()

	y := make([]float64, 1)
	std := make([]float64, 1)
	r, err := c.QueryInto([]float64{0.5, 0.25}, y, std)
	if err != nil {
		t.Fatal(err)
	}
	if r.Y[0] != 1.0 || y[0] != 1.0 {
		t.Fatalf("QueryInto copied %g into y=%g, want 1.0 in both", r.Y[0], y[0])
	}
	if &r.Y[0] != &y[0] {
		t.Fatal("Result.Y does not alias the caller's buffer")
	}
	if _, err := c.QueryInto([]float64{7.0, 0}, y, std); err == nil {
		t.Fatal("row error did not surface through QueryInto")
	}
	if _, err := c.QueryInto([]float64{0, 0}, nil, std); err == nil {
		t.Fatal("undersized y buffer accepted")
	}
}

// TestCoalescerQueryIntoZeroAlloc pins the steady-state zero-allocation
// contract of the fleet query path: a warmed single-caller loop through
// QueryInto — whether classified sparse (solo bypass) or dense
// (single-caller gather, whose batch never mints a done channel) —
// performs no heap allocations.
func TestCoalescerQueryIntoZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("sync.Pool drops Puts under -race; alloc counts are meaningless")
	}
	fb := newZeroAllocBackend()
	c := NewCoalescer(fb, Config{MaxBatch: 8})
	defer c.Close()
	x := []float64{0.25, 0.5}
	y := make([]float64, 1)
	std := make([]float64, 1)
	for i := 0; i < 256; i++ { // warm pool, EWMA and result capacities
		if _, err := c.QueryInto(x, y, std); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(512, func() {
		if _, err := c.QueryInto(x, y, std); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state QueryInto allocates %.2f/op, want 0", allocs)
	}
}

// zeroAllocBackend answers y = x0 - x1 writing into the pooled result
// rows without allocating once its row capacities are warm.
type zeroAllocBackend struct{}

func newZeroAllocBackend() *zeroAllocBackend { return &zeroAllocBackend{} }

func (z *zeroAllocBackend) Dims() (int, int) { return 2, 1 }

func (z *zeroAllocBackend) QueryBatch(xs *tensor.Matrix) ([]core.BatchResult, error) {
	res := make([]core.BatchResult, xs.Rows)
	return res, z.QueryBatchInto(xs, res)
}

func (z *zeroAllocBackend) QueryBatchInto(xs *tensor.Matrix, res []core.BatchResult) error {
	for i := 0; i < xs.Rows; i++ {
		row := xs.Row(i)
		res[i].Y = append(res[i].Y[:0], row[0]-row[1])
		res[i].Std = append(res[i].Std[:0], 0.01)
		res[i].Src = core.FromSurrogate
		res[i].Err = nil
	}
	return nil
}

// TestCoalescerSharedPool runs two coalescers of different backend shapes
// over one shared BatchPool under concurrent load (run with -race): the
// recycled batches are reshaped per lease, so tenants never observe each
// other's rows.
func TestCoalescerSharedPool(t *testing.T) {
	pool := NewBatchPool()
	fb2 := newFakeBackend() // 2-in: y = x0 + 2*x1
	fb2.delay = 20 * time.Microsecond
	wide := &wideBackend{} // 3-in, 2-out
	c2 := NewCoalescer(fb2, Config{MaxBatch: 8, Pool: pool})
	defer c2.Close()
	c3 := NewCoalescer(wide, Config{MaxBatch: 8, Pool: pool})
	defer c3.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := xrand.New(seed)
			for i := 0; i < 100; i++ {
				if seed%2 == 0 {
					x := []float64{rng.Range(-1, 1), rng.Range(-1, 1)}
					r, err := c2.Query(x)
					if err != nil {
						t.Error(err)
						return
					}
					if math.Abs(r.Y[0]-(x[0]+2*x[1])) > 1e-15 {
						t.Errorf("2d tenant: got %g want %g", r.Y[0], x[0]+2*x[1])
						return
					}
				} else {
					x := []float64{rng.Range(-1, 1), rng.Range(-1, 1), rng.Range(-1, 1)}
					r, err := c3.Query(x)
					if err != nil {
						t.Error(err)
						return
					}
					if len(r.Y) != 2 || math.Abs(r.Y[0]-(x[0]+x[1]+x[2])) > 1e-15 || math.Abs(r.Y[1]-x[0]*x[1]) > 1e-15 {
						t.Errorf("3d tenant: corrupted row %v for %v", r.Y, x)
						return
					}
				}
			}
		}(uint64(100 + g))
	}
	wg.Wait()
}

// wideBackend is a 3-in 2-out deterministic backend: y = (sum, x0*x1).
type wideBackend struct{}

func (w *wideBackend) Dims() (int, int) { return 3, 2 }

func (w *wideBackend) QueryBatch(xs *tensor.Matrix) ([]core.BatchResult, error) {
	res := make([]core.BatchResult, xs.Rows)
	return res, w.QueryBatchInto(xs, res)
}

func (w *wideBackend) QueryBatchInto(xs *tensor.Matrix, res []core.BatchResult) error {
	for i := 0; i < xs.Rows; i++ {
		row := xs.Row(i)
		res[i] = core.BatchResult{
			Y:   []float64{row[0] + row[1] + row[2], row[0] * row[1]},
			Src: core.FromSurrogate,
		}
	}
	return nil
}

// misbehavingBackend violates the QueryBatchInto every-row-written
// contract: it errors out without touching res.
type misbehavingBackend struct{ healthy fakeBackend }

func (m *misbehavingBackend) Dims() (int, int) { return 2, 1 }

func (m *misbehavingBackend) QueryBatch(xs *tensor.Matrix) ([]core.BatchResult, error) {
	res := make([]core.BatchResult, xs.Rows)
	return res, m.QueryBatchInto(xs, res)
}

func (m *misbehavingBackend) QueryBatchInto(xs *tensor.Matrix, res []core.BatchResult) error {
	if xs.Row(0)[0] < 0 {
		return errors.New("backend bailed before writing any row")
	}
	return m.healthy.QueryBatchInto(xs, res)
}

// TestCoalescerStaleRowGuard pins the pooled-row safety net: a backend
// that errors without writing its rows must surface an error — never a
// previous batch's recycled answer.
func TestCoalescerStaleRowGuard(t *testing.T) {
	c := NewCoalescer(&misbehavingBackend{}, Config{MaxBatch: 8})
	defer c.Close()
	// Warm the pool with healthy queries so recycled rows hold real
	// (stale) answers.
	for i := 0; i < 32; i++ {
		if _, err := c.Query([]float64{1, 1}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 32; i++ {
		r, err := c.Query([]float64{-1, 1}) // triggers the early error
		if err == nil {
			t.Fatalf("contract-violating backend returned no error (Y=%v)", r.Y)
		}
		if r.Y != nil {
			t.Fatalf("stale pooled row leaked to the caller: %v", r.Y)
		}
	}
}
