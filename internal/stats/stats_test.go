package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEq(m, 5, 1e-12) {
		t.Fatalf("mean %g want 5", m)
	}
	if v := Variance(xs); !almostEq(v, 32.0/7.0, 1e-12) {
		t.Fatalf("variance %g want %g", v, 32.0/7.0)
	}
}

func TestMeanEmptyNaN(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Fatal("Variance of one sample should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("min/max wrong: %g %g", Min(xs), Max(xs))
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-0.5, 1}, {1.5, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%g) = %g want %g", c.q, got, c.want)
		}
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.3); !almostEq(got, 3, 1e-12) {
		t.Fatalf("interpolated quantile %g want 3", got)
	}
}

func TestMedianUnsorted(t *testing.T) {
	if m := Median([]float64{9, 1, 5}); m != 5 {
		t.Fatalf("median %g want 5", m)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := xrand.New(1)
	xs := make([]float64, 500)
	var w Welford
	for i := range xs {
		xs[i] = rng.Normal(2, 3)
		w.Add(xs[i])
	}
	if !almostEq(w.Mean(), Mean(xs), 1e-9) {
		t.Fatalf("welford mean %g batch %g", w.Mean(), Mean(xs))
	}
	if !almostEq(w.Variance(), Variance(xs), 1e-9) {
		t.Fatalf("welford var %g batch %g", w.Variance(), Variance(xs))
	}
	if w.Min() != Min(xs) || w.Max() != Max(xs) {
		t.Fatal("welford min/max mismatch")
	}
}

func TestWelfordMerge(t *testing.T) {
	rng := xrand.New(2)
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = rng.Float64() * 10
	}
	var whole, left, right Welford
	for i, x := range xs {
		whole.Add(x)
		if i < 150 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(&right)
	if left.N() != whole.N() {
		t.Fatalf("merged n %d want %d", left.N(), whole.N())
	}
	if !almostEq(left.Mean(), whole.Mean(), 1e-9) || !almostEq(left.Variance(), whole.Variance(), 1e-9) {
		t.Fatal("merged moments mismatch")
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(3)
	a.Merge(&b) // no-op
	if a.N() != 2 || a.Mean() != 2 {
		t.Fatal("merge with empty changed accumulator")
	}
	b.Merge(&a)
	if b.N() != 2 || b.Mean() != 2 {
		t.Fatal("merge into empty failed")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, x := range []float64{-1, 0, 0.5, 5, 9.999, 10, 11} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under/over = %d/%d want 1/2", h.Under, h.Over)
	}
	if h.Total() != 4 {
		t.Fatalf("total %d want 4", h.Total())
	}
	if h.Counts[0] != 2 || h.Counts[5] != 1 || h.Counts[9] != 1 {
		t.Fatalf("bin counts wrong: %v", h.Counts)
	}
	if c := h.BinCenter(0); !almostEq(c, 0.5, 1e-12) {
		t.Fatalf("bin center %g want 0.5", c)
	}
}

func TestHistogramDensityNormalizes(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	rng := xrand.New(3)
	for i := 0; i < 10000; i++ {
		h.Add(rng.Float64())
	}
	sum := 0.0
	for i := range h.Counts {
		sum += h.Density(i) * 0.25
	}
	if !almostEq(sum, 1, 1e-9) {
		t.Fatalf("density integrates to %g", sum)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram did not panic")
		}
	}()
	NewHistogram(1, 0, 5)
}

func TestAutocorrelationIID(t *testing.T) {
	rng := xrand.New(4)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	acf := Autocorrelation(xs, 10)
	if !almostEq(acf[0], 1, 1e-12) {
		t.Fatalf("acf[0] = %g want 1", acf[0])
	}
	for lag := 1; lag <= 10; lag++ {
		if math.Abs(acf[lag]) > 0.05 {
			t.Fatalf("iid acf[%d] = %g, want ~0", lag, acf[lag])
		}
	}
}

func TestAutocorrelationAR1(t *testing.T) {
	// AR(1) with phi=0.8 has acf[k] ~ 0.8^k and tau ~ (1+phi)/(1-phi) = 9.
	rng := xrand.New(5)
	const phi = 0.8
	xs := make([]float64, 200000)
	x := 0.0
	for i := range xs {
		x = phi*x + rng.NormFloat64()
		xs[i] = x
	}
	acf := Autocorrelation(xs, 5)
	if !almostEq(acf[1], phi, 0.05) {
		t.Fatalf("AR1 acf[1] = %g want ~%g", acf[1], phi)
	}
	tau := IntegratedAutocorrTime(xs)
	if tau < 6 || tau > 12 {
		t.Fatalf("AR1 tau = %g want ~9", tau)
	}
}

func TestIntegratedAutocorrTimeIID(t *testing.T) {
	rng := xrand.New(6)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	tau := IntegratedAutocorrTime(xs)
	if tau < 0.5 || tau > 2 {
		t.Fatalf("iid tau = %g want ~1", tau)
	}
}

func TestBlockAverage(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7}
	blocks := BlockAverage(xs, 2)
	want := []float64{1.5, 3.5, 5.5}
	if len(blocks) != len(want) {
		t.Fatalf("got %d blocks want %d", len(blocks), len(want))
	}
	for i := range want {
		if !almostEq(blocks[i], want[i], 1e-12) {
			t.Fatalf("block %d = %g want %g", i, blocks[i], want[i])
		}
	}
}

func TestBlockAveragePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero block size did not panic")
		}
	}()
	BlockAverage([]float64{1}, 0)
}

func TestStandardErrorBlockedCorrelated(t *testing.T) {
	// For correlated data, blocked SE at large block size should exceed the
	// naive i.i.d. SE (which underestimates for positively correlated data).
	rng := xrand.New(7)
	const phi = 0.9
	xs := make([]float64, 100000)
	x := 0.0
	for i := range xs {
		x = phi*x + rng.NormFloat64()
		xs[i] = x
	}
	naive := StdDev(xs) / math.Sqrt(float64(len(xs)))
	blocked := StandardErrorBlocked(xs, 1000)
	if blocked <= naive {
		t.Fatalf("blocked SE %g should exceed naive %g for AR(1)", blocked, naive)
	}
}

func TestRegressionMetricsPerfect(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	if MAE(y, y) != 0 || RMSE(y, y) != 0 {
		t.Fatal("perfect prediction should have zero error")
	}
	if r2 := R2(y, y); r2 != 1 {
		t.Fatalf("perfect R2 = %g", r2)
	}
}

func TestR2MeanPredictorIsZero(t *testing.T) {
	target := []float64{1, 2, 3, 4, 5}
	m := Mean(target)
	pred := []float64{m, m, m, m, m}
	if r2 := R2(pred, target); !almostEq(r2, 0, 1e-12) {
		t.Fatalf("mean-predictor R2 = %g want 0", r2)
	}
}

func TestMAERMSEKnown(t *testing.T) {
	pred := []float64{1, 2, 3}
	target := []float64{2, 2, 5}
	if mae := MAE(pred, target); !almostEq(mae, 1, 1e-12) {
		t.Fatalf("MAE %g want 1", mae)
	}
	if rmse := RMSE(pred, target); !almostEq(rmse, math.Sqrt(5.0/3.0), 1e-12) {
		t.Fatalf("RMSE %g", rmse)
	}
}

func TestMAPESkipsSmallTargets(t *testing.T) {
	pred := []float64{1.1, 5, 100}
	target := []float64{1, 0, 100}
	got := MAPE(pred, target, 1e-9)
	if !almostEq(got, 5, 1e-9) { // only entries 0 (10%) and 2 (0%) count -> 5%
		t.Fatalf("MAPE %g want 5", got)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if p := Pearson(xs, ys); !almostEq(p, 1, 1e-12) {
		t.Fatalf("Pearson %g want 1", p)
	}
	neg := []float64{8, 6, 4, 2}
	if p := Pearson(xs, neg); !almostEq(p, -1, 1e-12) {
		t.Fatalf("Pearson %g want -1", p)
	}
}

func TestCoverage(t *testing.T) {
	target := []float64{1, 2, 3, 4}
	lo := []float64{0, 2, 4, 0}
	hi := []float64{2, 2, 5, 3}
	if c := Coverage(target, lo, hi); !almostEq(c, 0.5, 1e-12) {
		t.Fatalf("coverage %g want 0.5", c)
	}
}

func TestMeanIntervalWidth(t *testing.T) {
	lo := []float64{0, 1}
	hi := []float64{2, 5}
	if w := MeanIntervalWidth(lo, hi); !almostEq(w, 3, 1e-12) {
		t.Fatalf("width %g want 3", w)
	}
}

func TestBootstrapCIContainsTruth(t *testing.T) {
	rng := xrand.New(8)
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = rng.Normal(10, 2)
	}
	lo, hi := BootstrapCI(xs, Mean, 500, 0.95, rng)
	if lo > 10 || hi < 10 {
		t.Fatalf("bootstrap 95%% CI [%g,%g] misses true mean 10", lo, hi)
	}
	if hi-lo > 1 {
		t.Fatalf("bootstrap CI suspiciously wide: [%g,%g]", lo, hi)
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if !almostEq(xs[i], want[i], 1e-12) {
			t.Fatalf("linspace[%d] = %g want %g", i, xs[i], want[i])
		}
	}
	if got := Linspace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Linspace n=1 got %v", got)
	}
	if Linspace(0, 1, 0) != nil {
		t.Fatal("Linspace n=0 should be nil")
	}
}

func TestArgmaxArgmin(t *testing.T) {
	xs := []float64{3, 9, -2, 9}
	if Argmax(xs) != 1 {
		t.Fatalf("argmax %d want 1 (first max)", Argmax(xs))
	}
	if Argmin(xs) != 2 {
		t.Fatalf("argmin %d want 2", Argmin(xs))
	}
	if Argmax(nil) != -1 || Argmin(nil) != -1 {
		t.Fatal("empty arg* should be -1")
	}
}

// Property: variance is invariant under shift, scales with square of factor.
func TestVariancePropertiesQuick(t *testing.T) {
	rng := xrand.New(9)
	if err := quick.Check(func(shiftRaw, scaleRaw uint8) bool {
		shift := float64(shiftRaw) - 128
		scale := 1 + float64(scaleRaw)/32
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		v := Variance(xs)
		shifted := make([]float64, len(xs))
		scaled := make([]float64, len(xs))
		for i := range xs {
			shifted[i] = xs[i] + shift
			scaled[i] = xs[i] * scale
		}
		return almostEq(Variance(shifted), v, 1e-6*math.Max(1, math.Abs(v))) &&
			almostEq(Variance(scaled), v*scale*scale, 1e-6*math.Max(1, v*scale*scale))
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: RMSE >= MAE always (Jensen).
func TestRMSEGeqMAEQuick(t *testing.T) {
	rng := xrand.New(10)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%32) + 2
		pred := make([]float64, n)
		target := make([]float64, n)
		for i := 0; i < n; i++ {
			pred[i] = rng.NormFloat64()
			target[i] = rng.NormFloat64()
		}
		return RMSE(pred, target) >= MAE(pred, target)-1e-12
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsPanicOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	MAE([]float64{1}, []float64{1, 2})
}
