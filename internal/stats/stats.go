// Package stats provides the statistical machinery the Learning Everywhere
// experiments rely on: streaming moments, quantiles and histograms for
// simulation observables, autocorrelation and block analysis for deciding
// when simulation samples are statistically independent (paper §III-D,
// "block at a timescale ... greater than the autocorrelation time d_c"),
// regression metrics for surrogate accuracy, and bootstrap confidence
// intervals and interval-coverage checks for UQ validation (paper §III-B).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by estimators that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (n-1 denominator).
// It returns NaN for fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-th quantile (0<=q<=1) of xs using linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Welford is a numerically stable streaming accumulator for mean and
// variance. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations folded in.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean, or NaN when empty.
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the unbiased running variance, or NaN for n<2.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the running standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation seen; NaN when empty.
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.min
}

// Max returns the largest observation seen; NaN when empty.
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.max
}

// Merge combines another accumulator into this one (parallel reduction).
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	mean := w.mean + delta*float64(o.n)/float64(n)
	m2 := w.m2 + o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n, w.mean, w.m2 = n, mean, m2
}

// Histogram is a fixed-range uniform-bin histogram.
type Histogram struct {
	Lo, Hi   float64
	Counts   []int
	Under    int // observations below Lo
	Over     int // observations at or above Hi
	binWidth float64
}

// NewHistogram builds a histogram over [lo, hi) with the given bin count.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins), binWidth: (hi - lo) / float64(bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / h.binWidth)
		if i >= len(h.Counts) { // float edge case at upper bound
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of in-range observations.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.binWidth
}

// Density returns the normalized probability density in bin i.
func (h *Histogram) Density(i int) float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	return float64(h.Counts[i]) / (float64(t) * h.binWidth)
}

// Autocorrelation returns the normalized autocorrelation function of xs up
// to maxLag (inclusive). acf[0] == 1 for non-degenerate input.
func Autocorrelation(xs []float64, maxLag int) []float64 {
	n := len(xs)
	if maxLag >= n {
		maxLag = n - 1
	}
	if maxLag < 0 {
		return nil
	}
	m := Mean(xs)
	denom := 0.0
	for _, x := range xs {
		d := x - m
		denom += d * d
	}
	acf := make([]float64, maxLag+1)
	if denom == 0 {
		acf[0] = 1
		return acf
	}
	for lag := 0; lag <= maxLag; lag++ {
		num := 0.0
		for i := 0; i+lag < n; i++ {
			num += (xs[i] - m) * (xs[i+lag] - m)
		}
		acf[lag] = num / denom
	}
	return acf
}

// IntegratedAutocorrTime estimates the integrated autocorrelation time
// tau = 1 + 2*sum(acf) using the initial-positive-sequence truncation:
// the sum stops at the first non-positive acf value. For i.i.d. data it
// returns ~1. The paper uses this timescale (d_c) to decide the blocking
// interval between training samples (§III-D).
func IntegratedAutocorrTime(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	denom := 0.0
	for _, x := range xs {
		d := x - m
		denom += d * d
	}
	if denom == 0 {
		return 1
	}
	// Compute acf lag by lag and stop at the first non-positive value;
	// this keeps the estimator O(n * tau) instead of O(n^2).
	tau := 1.0
	for lag := 1; lag <= n/2; lag++ {
		num := 0.0
		for i := 0; i+lag < n; i++ {
			num += (xs[i] - m) * (xs[i+lag] - m)
		}
		rho := num / denom
		if rho <= 0 {
			break
		}
		tau += 2 * rho
	}
	return tau
}

// BlockAverage splits xs into contiguous blocks of the given size
// (discarding any remainder) and returns the per-block means. Block
// averaging at sizes beyond the autocorrelation time yields approximately
// independent samples; the paper's MLautotuning exemplar blocks 10M-step
// runs every 1M steps for exactly this reason.
func BlockAverage(xs []float64, blockSize int) []float64 {
	if blockSize <= 0 {
		panic("stats: non-positive block size")
	}
	nBlocks := len(xs) / blockSize
	out := make([]float64, 0, nBlocks)
	for b := 0; b < nBlocks; b++ {
		out = append(out, Mean(xs[b*blockSize:(b+1)*blockSize]))
	}
	return out
}

// StandardErrorBlocked estimates the standard error of the mean of a
// correlated series by block averaging: SE = std(blockMeans)/sqrt(nBlocks).
func StandardErrorBlocked(xs []float64, blockSize int) float64 {
	blocks := BlockAverage(xs, blockSize)
	if len(blocks) < 2 {
		return math.NaN()
	}
	return StdDev(blocks) / math.Sqrt(float64(len(blocks)))
}

// MAE returns the mean absolute error between predictions and targets.
func MAE(pred, target []float64) float64 {
	mustSameLen(pred, target)
	if len(pred) == 0 {
		return math.NaN()
	}
	s := 0.0
	for i := range pred {
		s += math.Abs(pred[i] - target[i])
	}
	return s / float64(len(pred))
}

// RMSE returns the root mean squared error between predictions and targets.
func RMSE(pred, target []float64) float64 {
	mustSameLen(pred, target)
	if len(pred) == 0 {
		return math.NaN()
	}
	s := 0.0
	for i := range pred {
		d := pred[i] - target[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// MAPE returns the mean absolute percentage error (in percent), skipping
// entries whose target magnitude is below eps to avoid division blow-ups.
func MAPE(pred, target []float64, eps float64) float64 {
	mustSameLen(pred, target)
	s, n := 0.0, 0
	for i := range pred {
		if math.Abs(target[i]) < eps {
			continue
		}
		s += math.Abs((pred[i] - target[i]) / target[i])
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return 100 * s / float64(n)
}

// R2 returns the coefficient of determination of pred against target.
// A perfect predictor scores 1; predicting the target mean scores 0.
func R2(pred, target []float64) float64 {
	mustSameLen(pred, target)
	if len(pred) == 0 {
		return math.NaN()
	}
	m := Mean(target)
	ssRes, ssTot := 0.0, 0.0
	for i := range pred {
		d := target[i] - pred[i]
		ssRes += d * d
		e := target[i] - m
		ssTot += e * e
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return math.Inf(-1)
	}
	return 1 - ssRes/ssTot
}

// Pearson returns the Pearson correlation coefficient of two series.
func Pearson(xs, ys []float64) float64 {
	mustSameLen(xs, ys)
	if len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	num, dx, dy := 0.0, 0.0, 0.0
	for i := range xs {
		a, b := xs[i]-mx, ys[i]-my
		num += a * b
		dx += a * a
		dy += b * b
	}
	if dx == 0 || dy == 0 {
		return math.NaN()
	}
	return num / math.Sqrt(dx*dy)
}

// Coverage returns the fraction of targets that fall inside their
// prediction interval [lo[i], hi[i]]. It is the empirical check used to
// validate dropout-based UQ (§III-B): a (1-alpha) interval should cover
// roughly (1-alpha) of held-out targets.
func Coverage(target, lo, hi []float64) float64 {
	mustSameLen(target, lo)
	mustSameLen(target, hi)
	if len(target) == 0 {
		return math.NaN()
	}
	in := 0
	for i := range target {
		if target[i] >= lo[i] && target[i] <= hi[i] {
			in++
		}
	}
	return float64(in) / float64(len(target))
}

// MeanIntervalWidth returns the average width hi-lo of prediction intervals.
func MeanIntervalWidth(lo, hi []float64) float64 {
	mustSameLen(lo, hi)
	if len(lo) == 0 {
		return math.NaN()
	}
	s := 0.0
	for i := range lo {
		s += hi[i] - lo[i]
	}
	return s / float64(len(lo))
}

// RandSource is the subset of xrand.Rand the bootstrap needs; declared
// locally to keep stats free of internal dependencies.
type RandSource interface {
	Intn(n int) int
}

// BootstrapCI returns a percentile bootstrap confidence interval for the
// statistic f over xs using the given number of resamples and confidence
// level (e.g. 0.95).
func BootstrapCI(xs []float64, f func([]float64) float64, resamples int, level float64, rng RandSource) (lo, hi float64) {
	if len(xs) == 0 || resamples <= 0 {
		return math.NaN(), math.NaN()
	}
	estimates := make([]float64, resamples)
	buf := make([]float64, len(xs))
	for r := 0; r < resamples; r++ {
		for i := range buf {
			buf[i] = xs[rng.Intn(len(xs))]
		}
		estimates[r] = f(buf)
	}
	alpha := (1 - level) / 2
	return Quantile(estimates, alpha), Quantile(estimates, 1-alpha)
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

// Argmax returns the index of the largest element; -1 for empty input.
func Argmax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// Argmin returns the index of the smallest element; -1 for empty input.
func Argmin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

func mustSameLen(a, b []float64) {
	if len(a) != len(b) {
		panic("stats: length mismatch")
	}
}
