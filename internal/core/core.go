// Package core implements the paper's primary contribution: the Learning
// Everywhere / MLaroundHPC framework. It defines the Oracle (a simulation)
// and Surrogate (a learned stand-in) abstractions, the UQ-gated Wrapper
// that routes queries to the surrogate when the prediction is trustworthy
// and falls back to simulation otherwise — feeding every fallback run back
// into the training set ("no run is wasted", §II-C1) — and the effective
// performance accounting of §III-D.
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Oracle is a (typically expensive) simulation: the ground-truth map from
// input parameters to result features. MD codes, SEIR simulators and
// tissue models all present this face to the framework.
type Oracle interface {
	// Dims returns the input and output dimensionality.
	Dims() (in, out int)
	// Run executes the simulation for one input point.
	Run(x []float64) ([]float64, error)
}

// OracleFunc adapts a plain function into an Oracle.
type OracleFunc struct {
	In, Out int
	F       func(x []float64) ([]float64, error)
}

// Dims implements Oracle.
func (o OracleFunc) Dims() (int, int) { return o.In, o.Out }

// Run implements Oracle.
func (o OracleFunc) Run(x []float64) ([]float64, error) { return o.F(x) }

// Surrogate is a trainable approximation of an Oracle with uncertainty
// quantification (§III-B: "one must learn not just the result of a
// simulation but also the uncertainty of the prediction").
type Surrogate interface {
	// Train (re)fits the surrogate on the given samples.
	Train(x, y *tensor.Matrix) error
	// Predict returns the point prediction for one input.
	Predict(x []float64) []float64
	// PredictWithUQ returns the predictive mean and a per-output
	// uncertainty (standard deviation) in target units.
	PredictWithUQ(x []float64) (mean, std []float64)
	// Trained reports whether Train has succeeded at least once.
	Trained() bool
}

// BatchSurrogate is a Surrogate that can amortize one network pass across
// a whole batch of queries — the serving-side analogue of minibatched
// training. Wrapper.QueryBatch uses it when available.
type BatchSurrogate interface {
	Surrogate
	// PredictBatchWithUQ returns per-row predictive means and stds (target
	// units) for every row of x. The returned matrices are caller-owned.
	PredictBatchWithUQ(x *tensor.Matrix) (mean, std *tensor.Matrix)
}

// BatchSurrogateInto is a BatchSurrogate that can write its batched UQ
// predictions into caller-owned matrices — the allocation-free form the
// wrappers' zero-alloc batch serving loop (QueryBatchInto) prefers.
type BatchSurrogateInto interface {
	BatchSurrogate
	// PredictBatchWithUQInto writes per-row predictive means and stds
	// (target units) into mean/std, reshaping both to x.Rows x out. Both
	// must be non-nil.
	PredictBatchWithUQInto(x, mean, std *tensor.Matrix)
}

// QuantCapable is the optional Surrogate face the wrappers' quantization
// knob drives: enabling it asks the surrogate to derive an int8 program
// on every (re)fit. A surrogate that cannot quantize simply doesn't
// implement this and the knob is a no-op.
type QuantCapable interface {
	// SetQuantize toggles quantized program compilation on future Trains.
	SetQuantize(on bool)
}

// QuantServing is the optional Surrogate face the wrappers' quantized
// serving path uses. The contract mirrors the paper's bet: approximate
// answers are fine exactly when UQ says the decision is clear-cut, so a
// quantized lookup must expose how large its approximation error can be
// (QuantGateBound) and flag inputs outside its calibrated envelope (the
// ok return) so the caller can re-decide on the retained float program.
type QuantServing interface {
	// QuantizedReady reports whether a quantized program is compiled and
	// calibrated (false e.g. for architectures that cannot quantize —
	// callers then serve the float path as usual).
	QuantizedReady() bool
	// QuantGateBound returns the guardrail half-width in target units:
	// a UQ decision landing within this distance of its threshold could
	// be flipped by the quantization delta.
	QuantGateBound() float64
	// PredictWithUQQuant is PredictWithUQ on the quantized program.
	// ok=false means the input left the calibrated envelope and the
	// result should not be trusted against the error bound.
	PredictWithUQQuant(x []float64) (mean, std []float64, ok bool)
}

// BatchQuantServing is QuantServing for the zero-alloc batch loop.
type BatchQuantServing interface {
	QuantServing
	// PredictBatchWithUQQuantInto is PredictBatchWithUQInto on the
	// quantized program; ok (len x.Rows) receives per-row envelope
	// verdicts.
	PredictBatchWithUQQuantInto(x, mean, std *tensor.Matrix, ok []bool)
}

// Brownout ladder levels. A wrapper serving under fleet brownout control
// steps down this ladder one level at a time: each level trades a little
// answer fidelity for a lot of compute headroom, and every level is
// reversible — stepping back to BrownoutOff restores the configured
// serving mode exactly.
const (
	// BrownoutOff is full fidelity: the configured serving mode.
	BrownoutOff = 0
	// BrownoutPreferQuant serves UQ lookups through the int8 quantized
	// program whenever one is compiled, even if the wrapper was not
	// configured Quantized. Surrogates without a quantized program are
	// unaffected.
	BrownoutPreferQuant = 1
	// BrownoutReducedMC additionally caps MC-dropout UQ at
	// brownoutMCPasses stochastic passes (down from the surrogate's
	// configured count) for surrogates that implement MCTunable.
	BrownoutReducedMC = 2
	// BrownoutNoUQ serves a single stochastic pass: the MC-dropout std
	// degenerates to zero, so the UQ gate always accepts and no oracle
	// fallback runs — the cheapest answer the wrapper can produce while
	// still answering.
	BrownoutNoUQ = 3
)

// brownoutMCPasses is the capped MC-dropout pass count at BrownoutReducedMC.
const brownoutMCPasses = 4

// MCTunable is the optional Surrogate face a brownout controller uses to
// cap MC-dropout passes without retraining. NNSurrogate implements it.
type MCTunable interface {
	// SetMCPassCap bounds UQ prediction to at most n stochastic passes
	// (0 removes the cap). Safe to call concurrently with serving.
	SetMCPassCap(n int)
}

// applyMCCap translates a brownout level into a surrogate's MC pass cap:
// uncapped below BrownoutReducedMC, brownoutMCPasses at it, and a single
// pass at BrownoutNoUQ (the single pass's zero variance is what turns
// the UQ gate off). Surrogates without MCTunable are left alone.
func applyMCCap(sur Surrogate, level int) {
	mt, ok := sur.(MCTunable)
	if !ok {
		return
	}
	switch {
	case level >= BrownoutNoUQ:
		mt.SetMCPassCap(1)
	case level >= BrownoutReducedMC:
		mt.SetMCPassCap(brownoutMCPasses)
	default:
		mt.SetMCPassCap(0)
	}
}

// clampBrownout bounds a requested level to the ladder.
func clampBrownout(level int) int {
	if level < BrownoutOff {
		return BrownoutOff
	}
	if level > BrownoutNoUQ {
		return BrownoutNoUQ
	}
	return level
}

// quantBand returns the quantized-serving guardrail half-width for a
// brownout level: the surrogate's calibrated bound normally, negative
// (guardrail off, envelope check still applies) at BrownoutNoUQ — there
// the gate is vacuous, so a float re-run of boundary decisions would
// throw away exactly the compute the brownout is trying to save.
func quantBand(qs QuantServing, level int32) float64 {
	if level >= BrownoutNoUQ {
		return -1
	}
	return qs.QuantGateBound()
}

// NNSurrogate is the reference Surrogate: a dropout MLP trained on
// standardized features/targets, with MC-dropout UQ.
type NNSurrogate struct {
	// Hidden lists hidden-layer widths (e.g. 30, 48 per §III-D).
	Hidden []int
	// Dropout is the dropout probability powering MC-dropout UQ.
	Dropout float64
	// MCPasses is the number of stochastic forward passes for UQ.
	MCPasses int
	// MaxBatch is the compiled batch-program chunk width: the largest row
	// count one fused batch pass serves. Wider batches are split
	// internally, so any batch size works; this only tunes the pooled
	// scratch footprint versus per-pass amortization. 0 selects
	// nn.DefaultMaxBatch.
	MaxBatch int
	// Train hyperparameters.
	Epochs    int
	BatchSize int
	LR        float64
	// Quantize asks Train to additionally derive an int8 quantized
	// program from the compiled float program, calibrated against a
	// held-out slice of the training window. The float program is always
	// retained — it is both the refit baseline and the guardrail
	// fallback the quantized serving path re-runs boundary decisions on.
	Quantize bool

	rng       *xrand.Rand
	inDim     int
	outDim    int
	net       *nn.Network
	compiled  *nn.Compiled      // fused inference program, rebuilt by Train
	qcompiled *nn.QuantCompiled // int8 program (Quantize mode), rebuilt by Train
	qgate     float64           // quant guardrail half-width, target units
	xScaler   *nn.Scaler
	yScaler   *nn.Scaler
	trained   bool

	inPool    sync.Pool // *[]float64 scaled-input staging, len inDim
	stagePool sync.Pool // *tensor.Matrix scaled-batch staging

	// mcCap bounds UQ passes under brownout (0 = uncapped); atomic so a
	// controller can move it while serving threads are mid-predict.
	mcCap atomic.Int32
}

// SetMCPassCap implements MCTunable: bound UQ prediction to at most n
// stochastic passes (0 removes the cap).
func (s *NNSurrogate) SetMCPassCap(n int) { s.mcCap.Store(int32(n)) }

// passes is the effective MC-dropout pass count: MCPasses bounded by the
// brownout cap when one is set.
func (s *NNSurrogate) passes() int {
	p := s.MCPasses
	if c := int(s.mcCap.Load()); c > 0 && c < p {
		p = c
	}
	return p
}

// getIn leases a pooled scaled-input buffer; putIn returns it.
func (s *NNSurrogate) getIn() *[]float64 {
	if p, ok := s.inPool.Get().(*[]float64); ok {
		return p
	}
	buf := make([]float64, s.inDim)
	return &buf
}

func (s *NNSurrogate) putIn(p *[]float64) { s.inPool.Put(p) }

// batchWidth returns the compiled batch chunk width.
func (s *NNSurrogate) batchWidth() int {
	if s.MaxBatch > 0 {
		return s.MaxBatch
	}
	return nn.DefaultMaxBatch
}

// getStage leases a pooled staging matrix holding the standardized copy
// of x; putStage returns it.
func (s *NNSurrogate) getStage(x *tensor.Matrix) *tensor.Matrix {
	m, ok := s.stagePool.Get().(*tensor.Matrix)
	if !ok {
		m = tensor.NewMatrix(x.Rows, x.Cols)
	}
	return s.xScaler.TransformInto(m, x)
}

func (s *NNSurrogate) putStage(m *tensor.Matrix) { s.stagePool.Put(m) }

// unscaleRows maps standardized mean rows (and, when std is non-nil,
// predictive std rows) back to target units in place.
func (s *NNSurrogate) unscaleRows(mean, std *tensor.Matrix) {
	for i := 0; i < mean.Rows; i++ {
		mrow := mean.Row(i)
		for j := range mrow {
			mrow[j] = mrow[j]*s.yScaler.Std[j] + s.yScaler.Mean[j]
		}
		if std != nil {
			srow := std.Row(i)
			for j := range srow {
				srow[j] = s.yScaler.InverseScale(j, srow[j])
			}
		}
	}
}

// NewNNSurrogate builds an untrained surrogate for an in→out mapping.
func NewNNSurrogate(in, out int, hidden []int, dropout float64, rng *xrand.Rand) *NNSurrogate {
	return &NNSurrogate{
		Hidden: hidden, Dropout: dropout, MCPasses: 30,
		Epochs: 200, BatchSize: 32, LR: 1e-2,
		rng: rng, inDim: in, outDim: out,
	}
}

// Train implements Surrogate; it refits from a fresh initialization so the
// surrogate reflects exactly the data provided.
func (s *NNSurrogate) Train(x, y *tensor.Matrix) error {
	if x.Rows == 0 {
		return errors.New("core: cannot train surrogate on empty dataset")
	}
	if x.Cols != s.inDim || y.Cols != s.outDim {
		return fmt.Errorf("core: surrogate expects %d→%d, got %d→%d", s.inDim, s.outDim, x.Cols, y.Cols)
	}
	s.xScaler = nn.FitScaler(x)
	s.yScaler = nn.FitScaler(y)
	xs := s.xScaler.Transform(x)
	ys := s.yScaler.Transform(y)
	widths := append([]int{s.inDim}, append(append([]int(nil), s.Hidden...), s.outDim)...)
	s.net = nn.NewMLP(s.rng.Split(), nn.Tanh, s.Dropout, widths...)
	_, err := s.net.Fit(xs, ys, nn.TrainConfig{
		Epochs: s.Epochs, BatchSize: s.BatchSize,
		Optimizer: nn.NewAdam(s.LR), Seed: s.rng.Uint64(),
	})
	if err != nil {
		return fmt.Errorf("core: surrogate training: %w", err)
	}
	// Compile the fused inference program — single-point serving runs it
	// instead of the interpreted layer graph, and the batch entry points
	// run its chunked batch form (nil means an uncompilable architecture;
	// the flexible path below then serves).
	s.compiled = s.net.CompileBatch(s.batchWidth())
	s.qcompiled = nil
	s.qgate = 0
	if s.Quantize && s.compiled != nil {
		// Calibrate against a held-out tail of the training window: the
		// most recent quarter (capped at 256 rows) fixes the input
		// envelope and measures the realistic quantization error that
		// sizes the serving guardrail band.
		n := xs.Rows / 4
		if n < 1 {
			n = 1
		}
		if n > 256 {
			n = 256
		}
		calib := xs.SliceRows(xs.Rows-n, xs.Rows)
		s.qcompiled = s.compiled.Quantize(calib)
		if s.qcompiled != nil {
			g := 0.0
			for j := 0; j < s.outDim; j++ {
				if b := s.yScaler.InverseScale(j, s.qcompiled.GateBound()); b > g {
					g = b
				}
			}
			s.qgate = g
		}
	}
	s.trained = true
	return nil
}

// SetQuantize implements QuantCapable: the next Train derives (or stops
// deriving) the int8 program.
func (s *NNSurrogate) SetQuantize(on bool) { s.Quantize = on }

// QuantizedReady implements QuantServing.
func (s *NNSurrogate) QuantizedReady() bool { return s.trained && s.qcompiled != nil }

// QuantGateBound implements QuantServing: the guardrail half-width in
// target units, min(guaranteed bound, 8× calibrated error) mapped
// through the target scaler.
func (s *NNSurrogate) QuantGateBound() float64 { return s.qgate }

// QuantErrorBound returns the guaranteed worst-case |quantized − float|
// output delta in target units for in-envelope inputs (0 when no
// quantized program is compiled).
func (s *NNSurrogate) QuantErrorBound() float64 {
	if s.qcompiled == nil {
		return 0
	}
	b := 0.0
	for j := 0; j < s.outDim; j++ {
		if v := s.yScaler.InverseScale(j, s.qcompiled.ErrorBound()); v > b {
			b = v
		}
	}
	return b
}

// PredictWithUQQuant implements QuantServing: PredictWithUQ served from
// the int8 program. When no quantized program is available it degrades
// to the float path (ok=true — the float answer is exact). Allocation
// profile matches PredictWithUQ: one result allocation per call.
func (s *NNSurrogate) PredictWithUQQuant(x []float64) (mean, std []float64, ok bool) {
	s.mustBeTrained()
	q := s.qcompiled
	if q == nil {
		mean, std = s.PredictWithUQ(x)
		return mean, std, true
	}
	res := make([]float64, 2*s.outDim)
	mean, std = res[:s.outDim:s.outDim], res[s.outDim:]
	in := s.getIn()
	s.xScaler.TransformVecInto(*in, x)
	_, _, ok = q.PredictMC(*in, s.passes(), mean, std)
	s.putIn(in)
	for j := 0; j < s.outDim; j++ {
		mean[j] = mean[j]*s.yScaler.Std[j] + s.yScaler.Mean[j]
		std[j] = s.yScaler.InverseScale(j, std[j])
	}
	return mean, std, ok
}

// PredictBatchWithUQQuantInto implements BatchQuantServing: the batched
// MC-dropout pass on the int8 program, with per-row envelope verdicts
// in ok. A warmed call with caller-provided buffers allocates nothing.
func (s *NNSurrogate) PredictBatchWithUQQuantInto(x, mean, std *tensor.Matrix, ok []bool) {
	s.mustBeTrained()
	q := s.qcompiled
	if q == nil {
		s.PredictBatchWithUQInto(x, mean, std)
		for i := range ok {
			ok[i] = true
		}
		return
	}
	xs := s.getStage(x)
	q.PredictMCBatch(xs, s.passes(), mean, std, ok)
	s.putStage(xs)
	s.unscaleRows(mean, std)
}

// Predict implements Surrogate. When the network compiled, the forward
// pass runs the fused program with a pooled input staging buffer: the
// only allocation left is the returned result vector.
func (s *NNSurrogate) Predict(x []float64) []float64 {
	s.mustBeTrained()
	out := make([]float64, s.outDim)
	if c := s.compiled; c != nil {
		in := s.getIn()
		s.xScaler.TransformVecInto(*in, x)
		c.Predict(*in, out)
		s.putIn(in)
	} else {
		copy(out, s.net.Predict(s.xScaler.TransformVec(x)))
	}
	for j := range out {
		out[j] = out[j]*s.yScaler.Std[j] + s.yScaler.Mean[j]
	}
	return out
}

// PredictWithUQ implements Surrogate using MC dropout; with Dropout == 0
// the std is identically zero (a deterministic surrogate claims perfect
// confidence, which is why the wrapper requires Dropout > 0 to gate).
// On the compiled path the MC passes run allocation-free; mean and std
// share one backing array, so a served query costs a single allocation.
func (s *NNSurrogate) PredictWithUQ(x []float64) (mean, std []float64) {
	s.mustBeTrained()
	res := make([]float64, 2*s.outDim)
	// Cap the mean slice so an appending caller can never grow into std.
	mean, std = res[:s.outDim:s.outDim], res[s.outDim:]
	if c := s.compiled; c != nil {
		in := s.getIn()
		s.xScaler.TransformVecInto(*in, x)
		c.PredictMC(*in, s.passes(), mean, std)
		s.putIn(in)
	} else {
		m, sd := s.net.PredictMC(s.xScaler.TransformVec(x), s.passes())
		copy(mean, m)
		copy(std, sd)
	}
	for j := 0; j < s.outDim; j++ {
		mean[j] = mean[j]*s.yScaler.Std[j] + s.yScaler.Mean[j]
		std[j] = s.yScaler.InverseScale(j, std[j])
	}
	return mean, std
}

// PredictBatch returns point predictions (original units) for every row
// of x. On the compiled path the whole batch runs through the fused
// batch program (split into MaxBatch-row chunks internally); only the
// returned matrix is allocated.
func (s *NNSurrogate) PredictBatch(x *tensor.Matrix) *tensor.Matrix {
	s.mustBeTrained()
	var out *tensor.Matrix
	if c := s.compiled; c != nil {
		xs := s.getStage(x)
		out = c.PredictBatch(xs, tensor.NewMatrix(x.Rows, s.outDim))
		s.putStage(xs)
	} else {
		out = s.net.PredictBatch(s.xScaler.Transform(x))
	}
	s.unscaleRows(out, nil)
	return out
}

// PredictBatchWithUQ implements BatchSurrogate using batched MC dropout.
// The returned matrices are caller-owned; hot loops that manage their own
// buffers use PredictBatchWithUQInto.
func (s *NNSurrogate) PredictBatchWithUQ(x *tensor.Matrix) (mean, std *tensor.Matrix) {
	mean = tensor.NewMatrix(x.Rows, s.outDim)
	std = tensor.NewMatrix(x.Rows, s.outDim)
	s.PredictBatchWithUQInto(x, mean, std)
	return mean, std
}

// PredictBatchWithUQInto implements BatchSurrogateInto. On the compiled
// path the MCPasses stochastic evaluations run pass-stacked — every pass
// of a chunk shares one tall fused matmul per dense stage instead of
// replaying the suffix per pass — and a warmed call with caller-provided
// matrices performs zero heap allocations, for any batch width.
func (s *NNSurrogate) PredictBatchWithUQInto(x, mean, std *tensor.Matrix) {
	s.mustBeTrained()
	if c := s.compiled; c != nil {
		xs := s.getStage(x)
		c.PredictMCBatch(xs, s.passes(), mean, std)
		s.putStage(xs)
	} else {
		m, sd := s.net.PredictMCBatch(s.xScaler.Transform(x), s.passes())
		mean.Reshape(x.Rows, s.outDim)
		std.Reshape(x.Rows, s.outDim)
		copy(mean.Data, m.Data)
		copy(std.Data, sd.Data)
	}
	s.unscaleRows(mean, std)
}

// Trained implements Surrogate.
func (s *NNSurrogate) Trained() bool { return s.trained }

func (s *NNSurrogate) mustBeTrained() {
	if !s.trained {
		panic("core: surrogate used before training")
	}
}

// Source identifies which path answered a Wrapper query.
type Source int

// Query answer provenance.
const (
	FromSimulation Source = iota
	FromSurrogate
)

// String returns the source name.
func (s Source) String() string {
	if s == FromSurrogate {
		return "surrogate"
	}
	return "simulation"
}

// WrapperConfig tunes the MLaroundHPC wrapper.
type WrapperConfig struct {
	// MinTrainSamples is how many oracle runs to collect before the first
	// surrogate fit.
	MinTrainSamples int
	// RetrainEvery triggers a refit after this many new oracle runs
	// post-training ("with new simulation runs, the ML layer gets better
	// at making predictions", §II-C1 outcome 3). 0 disables refits.
	RetrainEvery int
	// UQThreshold is the maximum acceptable predictive std (target units,
	// per output) for a surrogate answer to be served.
	UQThreshold float64
	// OracleWorkers bounds the worker pool QueryBatch fans rejected rows
	// out over (0 or 1 keeps the sequential fallback). Oracles must
	// tolerate concurrent Run calls — the same contract concurrent
	// wrapper use already imposes.
	OracleWorkers int
	// Retention bounds the retained training window (sliding window or
	// reservoir sampling) so long-running servers keep refits O(window)
	// instead of O(total history). The zero value retains everything.
	// A bounded window is raised to at least MinTrainSamples.
	Retention Retention
	// Quantized serves surrogate lookups from the int8 quantized program
	// when the surrogate provides one (NNSurrogate with bounded hidden
	// activations). Lookups whose UQ decision lands within the
	// surrogate's QuantGateBound of UQThreshold — where the quantization
	// delta could flip accept into reject or vice versa — and lookups
	// whose input left the calibrated envelope are transparently re-run
	// on the retained float program and counted (QuantStats), so the
	// speedup never silently degrades the gate. The knob also calls
	// SetQuantize(true) on QuantCapable surrogates at construction.
	Quantized bool
}

// Wrapper is the MLaroundHPC runtime: it answers Query calls from the
// learned surrogate when the UQ gate passes and from the simulation
// otherwise, accumulating every simulation result as training data and
// keeping the effective-performance ledger.
//
// Wrapper is safe for concurrent use: surrogate lookups run in parallel
// under a read lock, while training-set appends and surrogate refits take
// the write lock. The Oracle must itself tolerate concurrent Run calls
// when the wrapper is queried from multiple goroutines (oracle runs
// execute outside the wrapper locks so slow simulations never block
// surrogate serving).
type Wrapper struct {
	oracle    Oracle
	surrogate Surrogate
	cfg       WrapperConfig

	mu            sync.RWMutex // surrogate state, xs/ys, newSinceTrain
	xs, ys        *tensor.Matrix
	retain        retainer
	newSinceTrain int

	scratch sync.Pool // *batchScratch for QueryBatchInto

	quantQueries   atomic.Uint64 // lookups served through the quantized program
	quantFallbacks atomic.Uint64 // of those, re-runs on the float program

	// brownout is the current degradation ladder level (BrownoutOff..
	// BrownoutNoUQ), moved by SetBrownoutLevel.
	brownout atomic.Int32

	// publishHook, when set, observes every successful (re)train — the
	// registry-persistence seam.
	publishHook atomic.Pointer[PublishHook]

	ledgerBox // ledger lock is always acquired after mu
}

// PublishHook observes a freshly trained surrogate the moment it starts
// serving: shard is the owning shard index (always 0 for the unsharded
// Wrapper), sur the model now published, residBase its publish-time
// in-sample residual (the drift baseline; 0 when drift tracking is
// off). Hooks run synchronously on the training path — after the swap,
// never blocking readers — and must not call back into the wrapper.
type PublishHook func(shard int, sur Surrogate, residBase float64)

// SetPublishHook installs (or, with nil, removes) the publish observer.
// Safe for concurrent use with serving and training.
func (w *Wrapper) SetPublishHook(h PublishHook) {
	if h == nil {
		w.publishHook.Store(nil)
		return
	}
	w.publishHook.Store(&h)
}

// notifyPublish fires the publish hook for a model that just started
// serving.
func (w *Wrapper) notifyPublish(sur Surrogate, residBase float64) {
	if hp := w.publishHook.Load(); hp != nil {
		(*hp)(0, sur, residBase)
	}
}

// WarmStart installs a pre-trained surrogate (typically decoded from a
// registry artifact) as the serving model, but only while the wrapper
// has never trained one of its own — a live model always outranks a
// restored one. The training data window, retrain schedule, and future
// refits are untouched: the wrapper's next Train replaces the warm
// model exactly as it would any other. Returns whether the model was
// installed.
func (w *Wrapper) WarmStart(sur Surrogate) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.surrogate.Trained() {
		return false
	}
	applyMCCap(sur, int(w.brownout.Load()))
	w.surrogate = sur
	return true
}

// SetBrownoutLevel moves the wrapper to an absolute brownout ladder
// level (BrownoutOff through BrownoutNoUQ, clamped). A fleet brownout
// controller steps it one level at a time; operators may jump. Safe for
// concurrent use with serving — queries in flight finish on whichever
// level they started.
func (w *Wrapper) SetBrownoutLevel(level int) {
	level = clampBrownout(level)
	w.brownout.Store(int32(level))
	applyMCCap(w.surrogate, level)
}

// BrownoutLevel reports the current brownout ladder level.
func (w *Wrapper) BrownoutLevel() int { return int(w.brownout.Load()) }

// quantPreferred reports whether UQ lookups should try the quantized
// program: configured Quantized, or browned out to BrownoutPreferQuant
// or deeper.
func (w *Wrapper) quantPreferred() bool {
	return w.cfg.Quantized || w.brownout.Load() >= BrownoutPreferQuant
}

// batchScratch pools the per-call working state of one QueryBatchInto:
// the miss index list and the surrogate's mean/std staging, so a warmed
// steady-state batch query performs zero heap allocations.
type batchScratch struct {
	miss      []int
	mean, std *tensor.Matrix
	oks       []bool // per-row quantization envelope verdicts
}

// okBuf returns the scratch ok slice sized to rows, growing on demand.
func (sc *batchScratch) okBuf(rows int) []bool {
	if cap(sc.oks) < rows {
		sc.oks = make([]bool, rows)
	}
	sc.oks = sc.oks[:rows]
	return sc.oks
}

// mats returns the scratch mean/std matrices reshaped to rows x out,
// minting them on first use.
func (sc *batchScratch) mats(rows, out int) (mean, std *tensor.Matrix) {
	if sc.mean == nil {
		sc.mean = tensor.NewMatrix(rows, out)
		sc.std = tensor.NewMatrix(rows, out)
	} else {
		sc.mean.Reshape(rows, out)
		sc.std.Reshape(rows, out)
	}
	return sc.mean, sc.std
}

// NewWrapper constructs a wrapper. The surrogate must provide non-trivial
// UQ (e.g. MC dropout) for the gate to be meaningful.
func NewWrapper(oracle Oracle, surrogate Surrogate, cfg WrapperConfig) *Wrapper {
	if cfg.MinTrainSamples <= 0 {
		cfg.MinTrainSamples = 50
	}
	cfg.Retention = clampRetention(cfg.Retention, cfg.MinTrainSamples)
	if cfg.Quantized {
		if qc, ok := surrogate.(QuantCapable); ok {
			qc.SetQuantize(true)
		}
	}
	in, out := oracle.Dims()
	return &Wrapper{
		oracle: oracle, surrogate: surrogate, cfg: cfg,
		xs: tensor.NewMatrix(0, in), ys: tensor.NewMatrix(0, out),
		retain: newRetainer(cfg.Retention, 0xd5a75eed),
	}
}

// Dims returns the input and output dimensionality served by the wrapper.
func (w *Wrapper) Dims() (in, out int) { return w.oracle.Dims() }

// TrainingSetSize returns the number of accumulated oracle samples.
func (w *Wrapper) TrainingSetSize() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.xs.Rows
}

// Query answers one input point, reporting which path served it and, for
// surrogate answers, the predictive uncertainty. Safe for concurrent use.
func (w *Wrapper) Query(x []float64) (y []float64, src Source, std []float64, err error) {
	if mean, sd, ok := w.tryLookup(x); ok {
		return mean, FromSurrogate, sd, nil
	}
	t0 := time.Now()
	y, err = w.oracle.Run(x)
	dt := time.Since(t0)
	if err != nil {
		w.recordFailedRun(dt)
		return nil, FromSimulation, nil, fmt.Errorf("core: oracle: %w", err)
	}
	w.recordSimulation(dt)
	if err := w.absorbSample(x, y); err != nil {
		return nil, FromSimulation, nil, err
	}
	return y, FromSimulation, nil, nil
}

// absorbSample feeds one oracle result into the training set and
// triggers a refit when due, with the same panic-safe locking as
// absorbMisses.
func (w *Wrapper) absorbSample(x, y []float64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.addSampleLocked(x, y)
	return w.maybeTrainLocked()
}

// tryLookup serves x from the surrogate under the read lock when the UQ
// gate passes. Concurrent lookups proceed in parallel; only training
// excludes them.
func (w *Wrapper) tryLookup(x []float64) (mean, sd []float64, ok bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if !w.surrogate.Trained() {
		return nil, nil, false
	}
	t0 := time.Now()
	if w.quantPreferred() {
		if qs, isQ := w.surrogate.(QuantServing); isQ && qs.QuantizedReady() {
			mean, sd = w.quantLookup(qs, x)
			dt := time.Since(t0)
			if maxOf(sd) <= w.cfg.UQThreshold {
				w.recordLookup(dt)
				return mean, sd, true
			}
			w.recordRejectedLookup(dt)
			return nil, nil, false
		}
	}
	mean, sd = w.surrogate.PredictWithUQ(x)
	dt := time.Since(t0)
	if maxOf(sd) <= w.cfg.UQThreshold {
		w.recordLookup(dt)
		return mean, sd, true
	}
	// Gate failed: the lookup time is charged as overhead.
	w.recordRejectedLookup(dt)
	return nil, nil, false
}

// quantLookup serves one UQ lookup from the quantized program with the
// float-fallback guardrail; see quantLookupOne.
func (w *Wrapper) quantLookup(qs QuantServing, x []float64) (mean, sd []float64) {
	band := quantBand(qs, w.brownout.Load())
	return quantLookupOne(qs, w.surrogate, x, w.cfg.UQThreshold, band, &w.quantQueries, &w.quantFallbacks)
}

// quantLookupOne serves one UQ lookup from a quantized program with the
// float-fallback guardrail: when the input clipped against the
// calibrated envelope, or the gating std lands within band of the
// threshold (the quantization delta could flip the accept/reject
// decision), the query re-runs on the retained float program and that
// answer decides. A negative band disables the boundary re-run (the
// envelope check still applies). Both wrappers share this loop.
func quantLookupOne(qs QuantServing, sur Surrogate, x []float64, threshold, band float64, queries, fallbacks *atomic.Uint64) (mean, sd []float64) {
	mean, sd, inRange := qs.PredictWithUQQuant(x)
	queries.Add(1)
	if !inRange || math.Abs(maxOf(sd)-threshold) <= band {
		fallbacks.Add(1)
		mean, sd = sur.PredictWithUQ(x)
	}
	return mean, sd
}

// quantGuardBatch applies the guardrail to a quantized batch answer:
// rows whose input clipped (ok=false) or whose gating std lands within
// band of the threshold are re-run on the float program, overwriting
// their mean/std rows in place, so the subsequent gate loop decides on
// exact numbers. xs rows align with answer rows.
func quantGuardBatch(sur Surrogate, xs *tensor.Matrix, mean, std *tensor.Matrix, oks []bool, threshold, band float64, fallbacks *atomic.Uint64) {
	for k := 0; k < mean.Rows; k++ {
		sd := std.Row(k)
		if !oks[k] || math.Abs(maxOf(sd)-threshold) <= band {
			fallbacks.Add(1)
			fm, fsd := sur.PredictWithUQ(xs.Row(k))
			copy(mean.Row(k), fm)
			copy(sd, fsd)
		}
	}
}

// QuantStats reports how many surrogate lookups were served through the
// quantized program and how many of those fell back to a float re-run
// (boundary decisions plus out-of-envelope inputs). Zero/zero unless
// the wrapper runs with Quantized set and a quant-capable surrogate.
func (w *Wrapper) QuantStats() (queries, fallbacks uint64) {
	return w.quantQueries.Load(), w.quantFallbacks.Load()
}

// BatchResult is the answer to one row of a QueryBatch call.
type BatchResult struct {
	Y   []float64
	Src Source
	Std []float64 // non-nil only for surrogate answers
	Err error     // per-row oracle failure
}

// QueryBatch answers every row of xs, serving all UQ-passing rows from
// one amortized batched surrogate pass and falling back to the oracle
// (plus training-set accumulation) for the rest. Per-row oracle failures
// are reported in the row's Err; a surrogate retraining failure is
// returned as the batch-level error. The returned results are
// caller-owned. Safe for concurrent use alongside Query and other
// QueryBatch calls.
func (w *Wrapper) QueryBatch(xs *tensor.Matrix) ([]BatchResult, error) {
	if xs.Rows == 0 {
		return nil, nil
	}
	res := make([]BatchResult, xs.Rows)
	return res, w.QueryBatchInto(xs, res)
}

// QueryBatchInto is the buffer-reusing form of QueryBatch: results land
// in res (len == xs.Rows), and each surrogate-served row's Y/Std slices
// are overwritten in place when their capacity suffices. A steady-state
// loop that reuses one res across calls therefore performs zero heap
// allocations end to end — the shape simulation sweeps and other
// batch-driving callers want. Rows answered by the oracle receive
// oracle-owned slices as in QueryBatch.
func (w *Wrapper) QueryBatchInto(xs *tensor.Matrix, res []BatchResult) error {
	if xs.Rows == 0 {
		return nil
	}
	if len(res) != xs.Rows {
		return fmt.Errorf("core: res has %d entries for a %d-row batch", len(res), xs.Rows)
	}
	sc := w.getScratch()
	miss := w.lookupBatch(xs, res, sc)
	if len(miss) == 0 {
		w.putScratch(sc)
		return nil
	}
	// Oracle fallback outside the locks, fanned out over the bounded
	// worker pool when configured.
	oracleFanout(w.oracle, xs, miss, res, w.cfg.OracleWorkers, w.record)
	err := w.absorbMisses(xs, miss, res)
	w.putScratch(sc)
	return err
}

// absorbMisses feeds successful oracle fallbacks into the training set
// and triggers a refit when due. The deferred unlock keeps the wrapper
// usable even if a user-supplied Surrogate.Train panics.
func (w *Wrapper) absorbMisses(xs *tensor.Matrix, miss []int, res []BatchResult) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, i := range miss {
		if res[i].Err == nil {
			w.addSampleLocked(xs.Row(i), res[i].Y)
		}
	}
	return w.maybeTrainLocked()
}

func (w *Wrapper) getScratch() *batchScratch {
	if sc, ok := w.scratch.Get().(*batchScratch); ok {
		return sc
	}
	return &batchScratch{}
}

func (w *Wrapper) putScratch(sc *batchScratch) { w.scratch.Put(sc) }

// setRow stores one surrogate answer in res[i], reusing the row's Y/Std
// capacity so steady-state batch loops never reallocate.
func setRow(res []BatchResult, i int, mean, sd []float64) {
	res[i].Y = append(res[i].Y[:0], mean...)
	res[i].Std = append(res[i].Std[:0], sd...)
	res[i].Src = FromSurrogate
	res[i].Err = nil
}

// gateBatchRows applies the UQ gate to every row of a batched surrogate
// answer: passing rows are stored in res (into the caller's reused
// buffers when reuse is set, aliasing the surrogate's matrices
// otherwise) and failing rows are appended to miss. idx maps answer rows
// to res indices (nil = identity, for unpartitioned batches). This is
// the single gate loop shared by both wrappers' batch paths.
func gateBatchRows(res []BatchResult, miss, idx []int, mean, std *tensor.Matrix, threshold float64, reuse bool) (newMiss []int, served, rejected int) {
	for k := 0; k < mean.Rows; k++ {
		i := k
		if idx != nil {
			i = idx[k]
		}
		sd := std.Row(k)
		if maxOf(sd) <= threshold {
			if reuse {
				setRow(res, i, mean.Row(k), sd)
			} else {
				res[i] = BatchResult{Y: mean.Row(k), Src: FromSurrogate, Std: sd}
			}
			served++
		} else {
			miss = append(miss, i)
			rejected++
		}
	}
	return miss, served, rejected
}

// lookupBatch fills res with surrogate answers for the rows that pass
// the UQ gate under the read lock and returns the indices (backed by
// sc.miss) that must fall back to the oracle.
func (w *Wrapper) lookupBatch(xs *tensor.Matrix, res []BatchResult, sc *batchScratch) []int {
	miss := sc.miss[:0]
	w.mu.RLock()
	defer w.mu.RUnlock()
	if w.quantPreferred() && w.surrogate.Trained() {
		if bq, isBQ := w.surrogate.(BatchQuantServing); isBQ && bq.QuantizedReady() {
			// Quantized batch path: one int8 MC pass over the batch, then
			// the guardrail re-runs boundary/out-of-envelope rows on the
			// float program before the shared gate loop decides.
			_, out := w.Dims()
			mean, std := sc.mats(xs.Rows, out)
			oks := sc.okBuf(xs.Rows)
			t0 := time.Now()
			bq.PredictBatchWithUQQuantInto(xs, mean, std, oks)
			w.quantQueries.Add(uint64(xs.Rows))
			quantGuardBatch(w.surrogate, xs, mean, std, oks, w.cfg.UQThreshold, quantBand(bq, w.brownout.Load()), &w.quantFallbacks)
			per := time.Since(t0) / time.Duration(xs.Rows)
			var served, rejected int
			miss, served, rejected = gateBatchRows(res, miss, nil, mean, std, w.cfg.UQThreshold, true)
			w.recordBatchLookups(per, served, rejected)
			sc.miss = miss
			return miss
		}
	}
	bsi, isInto := w.surrogate.(BatchSurrogateInto)
	bs, isBatch := w.surrogate.(BatchSurrogate)
	switch {
	case w.surrogate.Trained() && isInto:
		// Allocation-free batch path: the surrogate writes into pooled
		// scratch and passing rows are copied into the caller's reusable
		// result slices.
		_, out := w.Dims()
		mean, std := sc.mats(xs.Rows, out)
		t0 := time.Now()
		bsi.PredictBatchWithUQInto(xs, mean, std)
		per := time.Since(t0) / time.Duration(xs.Rows)
		var served, rejected int
		miss, served, rejected = gateBatchRows(res, miss, nil, mean, std, w.cfg.UQThreshold, true)
		w.recordBatchLookups(per, served, rejected)
	case w.surrogate.Trained() && isBatch:
		t0 := time.Now()
		mean, std := bs.PredictBatchWithUQ(xs)
		per := time.Since(t0) / time.Duration(xs.Rows)
		var served, rejected int
		miss, served, rejected = gateBatchRows(res, miss, nil, mean, std, w.cfg.UQThreshold, false)
		w.recordBatchLookups(per, served, rejected)
	case w.surrogate.Trained():
		// Non-batch surrogate: per-row lookups, still under one read lock.
		for i := 0; i < xs.Rows; i++ {
			t0 := time.Now()
			mean, sd := w.surrogate.PredictWithUQ(xs.Row(i))
			dt := time.Since(t0)
			if maxOf(sd) <= w.cfg.UQThreshold {
				res[i] = BatchResult{Y: mean, Src: FromSurrogate, Std: sd}
				w.recordLookup(dt)
			} else {
				miss = append(miss, i)
				w.recordRejectedLookup(dt)
			}
		}
	default:
		for i := 0; i < xs.Rows; i++ {
			miss = append(miss, i)
		}
	}
	sc.miss = miss
	return miss
}

// addSampleLocked feeds one oracle result through the retention policy;
// callers hold w.mu.
func (w *Wrapper) addSampleLocked(x, y []float64) {
	w.retain.add(w.xs, w.ys, x, y)
	w.newSinceTrain++
}

// maybeTrainLocked refits the surrogate when due; callers hold w.mu.
func (w *Wrapper) maybeTrainLocked() error {
	shouldTrain := false
	if !w.surrogate.Trained() {
		shouldTrain = w.xs.Rows >= w.cfg.MinTrainSamples
	} else if w.cfg.RetrainEvery > 0 {
		shouldTrain = w.newSinceTrain >= w.cfg.RetrainEvery
	}
	if !shouldTrain {
		return nil
	}
	t0 := time.Now()
	if err := w.surrogate.Train(w.xs, w.ys); err != nil {
		return err
	}
	dt := time.Since(t0)
	rows := w.xs.Rows
	w.record(func(l *Ledger) { l.RecordTraining(dt, rows) })
	w.newSinceTrain = 0
	if w.publishHook.Load() != nil {
		w.notifyPublish(w.surrogate, driftBaseline(w.surrogate, w.xs, w.ys))
	}
	return nil
}

// Pretrain runs the oracle on the provided design points (through the
// bounded worker pool when OracleWorkers is set, aborting early on the
// first failure) and fits the surrogate once, charging the ledger
// accordingly. It is the batch alternative to the online Query path ("one
// runs the Ntrain simulations, followed by the learning, and then all the
// Nlookup inferences", §III-D).
func (w *Wrapper) Pretrain(design *tensor.Matrix) error {
	res, ferr := pretrainFanout(w.oracle, design, w.cfg.OracleWorkers, w.record)
	w.mu.Lock()
	defer w.mu.Unlock()
	// Keep every successful sample — "no run is wasted" — even when the
	// campaign aborted on a failure.
	for i, r := range res {
		if r.Err == nil && r.Y != nil {
			w.addSampleLocked(design.Row(i), r.Y)
		}
	}
	if ferr != nil {
		return ferr
	}
	t0 := time.Now()
	if err := w.surrogate.Train(w.xs, w.ys); err != nil {
		return err
	}
	dt := time.Since(t0)
	rows := w.xs.Rows
	w.record(func(l *Ledger) { l.RecordTraining(dt, rows) })
	w.newSinceTrain = 0
	if w.publishHook.Load() != nil {
		w.notifyPublish(w.surrogate, driftBaseline(w.surrogate, w.xs, w.ys))
	}
	return nil
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}
