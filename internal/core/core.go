// Package core implements the paper's primary contribution: the Learning
// Everywhere / MLaroundHPC framework. It defines the Oracle (a simulation)
// and Surrogate (a learned stand-in) abstractions, the UQ-gated Wrapper
// that routes queries to the surrogate when the prediction is trustworthy
// and falls back to simulation otherwise — feeding every fallback run back
// into the training set ("no run is wasted", §II-C1) — and the effective
// performance accounting of §III-D.
package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Oracle is a (typically expensive) simulation: the ground-truth map from
// input parameters to result features. MD codes, SEIR simulators and
// tissue models all present this face to the framework.
type Oracle interface {
	// Dims returns the input and output dimensionality.
	Dims() (in, out int)
	// Run executes the simulation for one input point.
	Run(x []float64) ([]float64, error)
}

// OracleFunc adapts a plain function into an Oracle.
type OracleFunc struct {
	In, Out int
	F       func(x []float64) ([]float64, error)
}

// Dims implements Oracle.
func (o OracleFunc) Dims() (int, int) { return o.In, o.Out }

// Run implements Oracle.
func (o OracleFunc) Run(x []float64) ([]float64, error) { return o.F(x) }

// Surrogate is a trainable approximation of an Oracle with uncertainty
// quantification (§III-B: "one must learn not just the result of a
// simulation but also the uncertainty of the prediction").
type Surrogate interface {
	// Train (re)fits the surrogate on the given samples.
	Train(x, y *tensor.Matrix) error
	// Predict returns the point prediction for one input.
	Predict(x []float64) []float64
	// PredictWithUQ returns the predictive mean and a per-output
	// uncertainty (standard deviation) in target units.
	PredictWithUQ(x []float64) (mean, std []float64)
	// Trained reports whether Train has succeeded at least once.
	Trained() bool
}

// NNSurrogate is the reference Surrogate: a dropout MLP trained on
// standardized features/targets, with MC-dropout UQ.
type NNSurrogate struct {
	// Hidden lists hidden-layer widths (e.g. 30, 48 per §III-D).
	Hidden []int
	// Dropout is the dropout probability powering MC-dropout UQ.
	Dropout float64
	// MCPasses is the number of stochastic forward passes for UQ.
	MCPasses int
	// Train hyperparameters.
	Epochs    int
	BatchSize int
	LR        float64

	rng     *xrand.Rand
	inDim   int
	outDim  int
	net     *nn.Network
	xScaler *nn.Scaler
	yScaler *nn.Scaler
	trained bool
}

// NewNNSurrogate builds an untrained surrogate for an in→out mapping.
func NewNNSurrogate(in, out int, hidden []int, dropout float64, rng *xrand.Rand) *NNSurrogate {
	return &NNSurrogate{
		Hidden: hidden, Dropout: dropout, MCPasses: 30,
		Epochs: 200, BatchSize: 32, LR: 1e-2,
		rng: rng, inDim: in, outDim: out,
	}
}

// Train implements Surrogate; it refits from a fresh initialization so the
// surrogate reflects exactly the data provided.
func (s *NNSurrogate) Train(x, y *tensor.Matrix) error {
	if x.Rows == 0 {
		return errors.New("core: cannot train surrogate on empty dataset")
	}
	if x.Cols != s.inDim || y.Cols != s.outDim {
		return fmt.Errorf("core: surrogate expects %d→%d, got %d→%d", s.inDim, s.outDim, x.Cols, y.Cols)
	}
	s.xScaler = nn.FitScaler(x)
	s.yScaler = nn.FitScaler(y)
	xs := s.xScaler.Transform(x)
	ys := s.yScaler.Transform(y)
	widths := append([]int{s.inDim}, append(append([]int(nil), s.Hidden...), s.outDim)...)
	s.net = nn.NewMLP(s.rng.Split(), nn.Tanh, s.Dropout, widths...)
	_, err := s.net.Fit(xs, ys, nn.TrainConfig{
		Epochs: s.Epochs, BatchSize: s.BatchSize,
		Optimizer: nn.NewAdam(s.LR), Seed: s.rng.Uint64(),
	})
	if err != nil {
		return fmt.Errorf("core: surrogate training: %w", err)
	}
	s.trained = true
	return nil
}

// Predict implements Surrogate.
func (s *NNSurrogate) Predict(x []float64) []float64 {
	s.mustBeTrained()
	z := s.net.Predict(s.xScaler.TransformVec(x))
	return s.yScaler.Inverse(z)
}

// PredictWithUQ implements Surrogate using MC dropout; with Dropout == 0
// the std is identically zero (a deterministic surrogate claims perfect
// confidence, which is why the wrapper requires Dropout > 0 to gate).
func (s *NNSurrogate) PredictWithUQ(x []float64) (mean, std []float64) {
	s.mustBeTrained()
	m, sd := s.net.PredictMC(s.xScaler.TransformVec(x), s.MCPasses)
	mean = s.yScaler.Inverse(m)
	std = make([]float64, len(sd))
	for j := range sd {
		std[j] = s.yScaler.InverseScale(j, sd[j])
	}
	return mean, std
}

// Trained implements Surrogate.
func (s *NNSurrogate) Trained() bool { return s.trained }

func (s *NNSurrogate) mustBeTrained() {
	if !s.trained {
		panic("core: surrogate used before training")
	}
}

// Source identifies which path answered a Wrapper query.
type Source int

// Query answer provenance.
const (
	FromSimulation Source = iota
	FromSurrogate
)

// String returns the source name.
func (s Source) String() string {
	if s == FromSurrogate {
		return "surrogate"
	}
	return "simulation"
}

// WrapperConfig tunes the MLaroundHPC wrapper.
type WrapperConfig struct {
	// MinTrainSamples is how many oracle runs to collect before the first
	// surrogate fit.
	MinTrainSamples int
	// RetrainEvery triggers a refit after this many new oracle runs
	// post-training ("with new simulation runs, the ML layer gets better
	// at making predictions", §II-C1 outcome 3). 0 disables refits.
	RetrainEvery int
	// UQThreshold is the maximum acceptable predictive std (target units,
	// per output) for a surrogate answer to be served.
	UQThreshold float64
}

// Wrapper is the MLaroundHPC runtime: it answers Query calls from the
// learned surrogate when the UQ gate passes and from the simulation
// otherwise, accumulating every simulation result as training data and
// keeping the effective-performance ledger.
type Wrapper struct {
	oracle    Oracle
	surrogate Surrogate
	cfg       WrapperConfig

	xs, ys        *tensor.Matrix
	newSinceTrain int
	ledger        Ledger
}

// NewWrapper constructs a wrapper. The surrogate must provide non-trivial
// UQ (e.g. MC dropout) for the gate to be meaningful.
func NewWrapper(oracle Oracle, surrogate Surrogate, cfg WrapperConfig) *Wrapper {
	if cfg.MinTrainSamples <= 0 {
		cfg.MinTrainSamples = 50
	}
	in, out := oracle.Dims()
	return &Wrapper{
		oracle: oracle, surrogate: surrogate, cfg: cfg,
		xs: tensor.NewMatrix(0, in), ys: tensor.NewMatrix(0, out),
	}
}

// Ledger returns a copy of the effective-performance ledger.
func (w *Wrapper) Ledger() Ledger { return w.ledger }

// TrainingSetSize returns the number of accumulated oracle samples.
func (w *Wrapper) TrainingSetSize() int { return w.xs.Rows }

// Query answers one input point, reporting which path served it and, for
// surrogate answers, the predictive uncertainty.
func (w *Wrapper) Query(x []float64) (y []float64, src Source, std []float64, err error) {
	if w.surrogate.Trained() {
		t0 := time.Now()
		mean, sd := w.surrogate.PredictWithUQ(x)
		dt := time.Since(t0)
		if maxOf(sd) <= w.cfg.UQThreshold {
			w.ledger.RecordLookup(dt)
			return mean, FromSurrogate, sd, nil
		}
		// Gate failed: fall through to simulation; the lookup time is
		// charged as overhead.
		w.ledger.RecordRejectedLookup(dt)
	}
	t0 := time.Now()
	y, err = w.oracle.Run(x)
	dt := time.Since(t0)
	if err != nil {
		w.ledger.RecordFailedRun(dt)
		return nil, FromSimulation, nil, fmt.Errorf("core: oracle: %w", err)
	}
	w.ledger.RecordSimulation(dt)
	w.addSample(x, y)
	if err := w.maybeTrain(); err != nil {
		return nil, FromSimulation, nil, err
	}
	return y, FromSimulation, nil, nil
}

func (w *Wrapper) addSample(x, y []float64) {
	w.xs.Data = append(w.xs.Data, x...)
	w.xs.Rows++
	w.ys.Data = append(w.ys.Data, y...)
	w.ys.Rows++
	w.newSinceTrain++
}

func (w *Wrapper) maybeTrain() error {
	shouldTrain := false
	if !w.surrogate.Trained() {
		shouldTrain = w.xs.Rows >= w.cfg.MinTrainSamples
	} else if w.cfg.RetrainEvery > 0 {
		shouldTrain = w.newSinceTrain >= w.cfg.RetrainEvery
	}
	if !shouldTrain {
		return nil
	}
	t0 := time.Now()
	if err := w.surrogate.Train(w.xs, w.ys); err != nil {
		return err
	}
	w.ledger.RecordTraining(time.Since(t0), w.xs.Rows)
	w.newSinceTrain = 0
	return nil
}

// Pretrain runs the oracle on the provided design points and fits the
// surrogate once, charging the ledger accordingly. It is the batch
// alternative to the online Query path ("one runs the Ntrain simulations,
// followed by the learning, and then all the Nlookup inferences", §III-D).
func (w *Wrapper) Pretrain(design *tensor.Matrix) error {
	for i := 0; i < design.Rows; i++ {
		x := design.Row(i)
		t0 := time.Now()
		y, err := w.oracle.Run(x)
		dt := time.Since(t0)
		if err != nil {
			w.ledger.RecordFailedRun(dt)
			return fmt.Errorf("core: pretrain point %d: %w", i, err)
		}
		w.ledger.RecordSimulation(dt)
		w.addSample(x, y)
	}
	t0 := time.Now()
	if err := w.surrogate.Train(w.xs, w.ys); err != nil {
		return err
	}
	w.ledger.RecordTraining(time.Since(t0), w.xs.Rows)
	w.newSinceTrain = 0
	return nil
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}
