package core

import (
	"math"
	"testing"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// fillRow returns an n-wide row whose first element tags the sample's
// birth index, so retention tests can identify which samples survived.
func fillRow(idx, n int) []float64 {
	row := make([]float64, n)
	row[0] = float64(idx)
	return row
}

// TestRetainerWindowKeepsRecent checks the sliding-window policy: the
// store stays within MaxSamples plus the amortization slack and always
// holds a contiguous run of the most recent samples.
func TestRetainerWindowKeepsRecent(t *testing.T) {
	const max = 20
	r := newRetainer(Retention{Policy: RetainWindow, MaxSamples: max}, 1)
	xs := tensor.NewMatrix(0, 2)
	ys := tensor.NewMatrix(0, 1)
	for i := 0; i < 500; i++ {
		r.add(xs, ys, fillRow(i, 2), fillRow(i, 1))
		if xs.Rows > max+max/4 {
			t.Fatalf("after %d adds the window holds %d rows, want <= %d", i+1, xs.Rows, max+max/4)
		}
		if ys.Rows != xs.Rows {
			t.Fatal("xs and ys row counts diverged")
		}
	}
	if xs.Rows < max {
		t.Fatalf("window shrank below MaxSamples: %d rows", xs.Rows)
	}
	// The retained tags must be the last xs.Rows indices in order.
	first := 500 - xs.Rows
	for i := 0; i < xs.Rows; i++ {
		if got := int(xs.At(i, 0)); got != first+i {
			t.Fatalf("row %d holds sample %d, want %d (window lost recency order)", i, got, first+i)
		}
		if int(ys.At(i, 0)) != first+i {
			t.Fatal("ys row disagrees with its paired xs row")
		}
	}
}

// TestRetainerReservoirBoundedAndCovering checks reservoir sampling: the
// store never exceeds MaxSamples, pairs stay aligned, and the survivors
// cover the whole history rather than only its tail.
func TestRetainerReservoirBoundedAndCovering(t *testing.T) {
	const max, total = 50, 2000
	r := newRetainer(Retention{Policy: RetainReservoir, MaxSamples: max}, 7)
	xs := tensor.NewMatrix(0, 1)
	ys := tensor.NewMatrix(0, 1)
	for i := 0; i < total; i++ {
		r.add(xs, ys, fillRow(i, 1), fillRow(i, 1))
		if xs.Rows > max {
			t.Fatalf("reservoir grew to %d rows, want <= %d", xs.Rows, max)
		}
	}
	if xs.Rows != max {
		t.Fatalf("reservoir holds %d rows after %d adds, want %d", xs.Rows, total, max)
	}
	old := 0
	for i := 0; i < max; i++ {
		if xs.At(i, 0) != ys.At(i, 0) {
			t.Fatal("reservoir replacement desynchronized xs and ys")
		}
		if xs.At(i, 0) < total/2 {
			old++
		}
	}
	// A uniform sample keeps ~50% old samples; a window would keep none.
	if old == 0 {
		t.Fatal("reservoir retained no samples from the first half of the history")
	}
}

// TestWrapperRetentionBoundsTrainingSet runs a wrapper whose UQ gate
// always fails (so every query feeds the training set) and checks the
// window stays bounded while refits keep succeeding.
func TestWrapperRetentionBoundsTrainingSet(t *testing.T) {
	rng := xrand.New(0x7e7a1)
	oracle := OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		return []float64{x[0] + x[1]}, nil
	}}
	sur := NewNNSurrogate(2, 1, []int{8}, 0.1, rng)
	sur.Epochs = 5
	sur.MCPasses = 4
	const window = 30
	w := NewWrapper(oracle, sur, WrapperConfig{
		MinTrainSamples: 10, RetrainEvery: 25, UQThreshold: -1, // gate never passes
		Retention: Retention{Policy: RetainWindow, MaxSamples: window},
	})
	for i := 0; i < 300; i++ {
		x := []float64{rng.Range(-1, 1), rng.Range(-1, 1)}
		if _, src, _, err := w.Query(x); err != nil || src != FromSimulation {
			t.Fatalf("query %d: src=%v err=%v", i, src, err)
		}
		if n := w.TrainingSetSize(); n > window+window/4 {
			t.Fatalf("training set grew to %d rows, want <= %d", n, window+window/4)
		}
	}
	if !sur.Trained() {
		t.Fatal("surrogate never trained under the bounded window")
	}
	if w.Ledger().NTrainingRuns < 2 {
		t.Fatal("refits did not keep firing under retention")
	}
}

// TestShardedRetentionBoundsShards ingests a long stream into a sharded
// wrapper with a reservoir and checks every shard stays bounded.
func TestShardedRetentionBoundsShards(t *testing.T) {
	rng := xrand.New(0x7e7a2)
	oracle := OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		return []float64{x[0] * x[1]}, nil
	}}
	factory := NewNNSurrogateFactory(2, 1, []int{8}, 0.1, rng, func(s *NNSurrogate) {
		s.Epochs = 5
		s.MCPasses = 4
	})
	const window = 25
	w := NewShardedWrapper(oracle, factory, ShardedConfig{
		Shards: 3, MinTrainSamples: 10, UQThreshold: 100,
		Retention: Retention{Policy: RetainReservoir, MaxSamples: window},
	})
	xs := tensor.NewMatrix(600, 2)
	ys := tensor.NewMatrix(600, 1)
	for i := 0; i < xs.Rows; i++ {
		a, b := rng.Range(-1, 1), rng.Range(-1, 1)
		xs.Set(i, 0, a)
		xs.Set(i, 1, b)
		ys.Set(i, 0, a*b)
	}
	if err := w.Ingest(xs, ys); err != nil {
		t.Fatal(err)
	}
	for si, n := range w.ShardSizes() {
		if n > window {
			t.Fatalf("shard %d holds %d samples, want <= %d", si, n, window)
		}
	}
	if err := w.TrainAll(); err != nil {
		t.Fatal(err)
	}
	if err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	// The bounded shards must still serve.
	y, src, _, err := w.Query([]float64{0.2, 0.4})
	if err != nil || src != FromSurrogate {
		t.Fatalf("post-retention query src=%v err=%v", src, err)
	}
	if math.IsNaN(y[0]) {
		t.Fatal("NaN prediction from retention-trained shard")
	}
}

// TestRetentionClampedToMinTrain checks that a window smaller than
// MinTrainSamples is raised so the first fit stays reachable.
func TestRetentionClampedToMinTrain(t *testing.T) {
	rng := xrand.New(0x7e7a3)
	oracle := OracleFunc{In: 1, Out: 1, F: func(x []float64) ([]float64, error) {
		return []float64{2 * x[0]}, nil
	}}
	sur := NewNNSurrogate(1, 1, []int{4}, 0.1, rng)
	sur.Epochs = 5
	w := NewWrapper(oracle, sur, WrapperConfig{
		MinTrainSamples: 20, UQThreshold: 100,
		Retention: Retention{Policy: RetainWindow, MaxSamples: 5}, // below MinTrainSamples
	})
	for i := 0; i < 40; i++ {
		if _, _, _, err := w.Query([]float64{rng.Range(-1, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if !sur.Trained() {
		t.Fatal("first fit never fired: retention window was not clamped to MinTrainSamples")
	}
}
