package core

import (
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// This file implements bounded training-set retention. The MLaroundHPC
// loop accumulates every oracle fallback as training data ("no run is
// wasted"), which on a long-running server grows without bound: refits
// become O(total history) and eventually dominate the maintenance cost
// that sustained serving must keep bounded. A Retention policy caps the
// retained window so every refit stays O(window), trading history either
// for recency (sliding window) or for a uniform sample of everything ever
// seen (reservoir sampling).

// RetentionPolicy selects how samples beyond the window are retired.
type RetentionPolicy int

const (
	// RetainAll keeps every sample: the unbounded historical behaviour and
	// the zero value.
	RetainAll RetentionPolicy = iota
	// RetainWindow keeps (amortized) the most recent MaxSamples samples:
	// the right policy when the oracle drifts or traffic moves, since
	// refits then track the live distribution.
	RetainWindow
	// RetainReservoir keeps a uniform random sample of MaxSamples drawn
	// from the entire history (Vitter's Algorithm R): the right policy for
	// a stationary oracle, where coverage of the whole input space matters
	// more than recency.
	RetainReservoir
)

// String returns the policy name.
func (p RetentionPolicy) String() string {
	switch p {
	case RetainWindow:
		return "window"
	case RetainReservoir:
		return "reservoir"
	default:
		return "all"
	}
}

// Retention bounds the training window of a Wrapper or of each
// ShardedWrapper shard. The zero value retains everything.
type Retention struct {
	// Policy selects the retirement strategy; RetainAll ignores MaxSamples.
	Policy RetentionPolicy
	// MaxSamples is the retained window size. The serving wrappers raise
	// it to at least their MinTrainSamples so the first-fit gate stays
	// reachable. RetainWindow keeps up to 25% slack above it (dropping the
	// oldest rows in amortized batches rather than memmoving per sample);
	// RetainReservoir holds it exactly once full.
	MaxSamples int
}

// bounded reports whether the policy actually caps the window.
func (r Retention) bounded() bool {
	return r.Policy != RetainAll && r.MaxSamples > 0
}

// retainer applies one Retention policy to a paired (xs, ys) sample
// store. Callers hold whatever lock guards the store.
type retainer struct {
	cfg  Retention
	rng  *xrand.Rand // reservoir replacement stream (nil otherwise)
	seen int         // samples ever offered (reservoir index base)
}

// newRetainer builds a retainer; seed drives the reservoir stream.
func newRetainer(cfg Retention, seed uint64) retainer {
	if !cfg.bounded() {
		cfg = Retention{}
	}
	r := retainer{cfg: cfg}
	if cfg.Policy == RetainReservoir {
		r.rng = xrand.New(seed)
	}
	return r
}

// add offers one (x, y) sample to the store under the configured policy.
func (r *retainer) add(xs, ys *tensor.Matrix, x, y []float64) {
	r.seen++
	switch r.cfg.Policy {
	case RetainWindow:
		xs.AppendRow(x)
		ys.AppendRow(y)
		// Amortized trim: let the window overshoot by 25% and drop the
		// oldest overhang in one memmove, so the per-sample cost stays O(1)
		// while refits stay O(MaxSamples).
		slack := r.cfg.MaxSamples / 4
		if slack < 1 {
			slack = 1
		}
		if drop := xs.Rows - r.cfg.MaxSamples; drop >= slack {
			dropOldestRows(xs, drop)
			dropOldestRows(ys, drop)
		}
	case RetainReservoir:
		if xs.Rows < r.cfg.MaxSamples {
			xs.AppendRow(x)
			ys.AppendRow(y)
			return
		}
		// Algorithm R: the i-th sample ever seen replaces a uniformly
		// random slot with probability MaxSamples/i, keeping the reservoir
		// a uniform sample of the full history.
		if j := r.rng.Intn(r.seen); j < r.cfg.MaxSamples {
			copy(xs.Row(j), x)
			copy(ys.Row(j), y)
		}
	default:
		xs.AppendRow(x)
		ys.AppendRow(y)
	}
}

// dropOldestRows removes the first n rows of m in place.
func dropOldestRows(m *tensor.Matrix, n int) {
	copy(m.Data, m.Data[n*m.Cols:])
	m.Rows -= n
	m.Data = m.Data[:m.Rows*m.Cols]
}

// clampRetention raises a bounded window to at least minTrain so the
// first-fit gate (xs.Rows >= MinTrainSamples) stays reachable.
func clampRetention(r Retention, minTrain int) Retention {
	if r.bounded() && r.MaxSamples < minTrain {
		r.MaxSamples = minTrain
	}
	return r
}
