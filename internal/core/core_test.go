package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// toyOracle is a cheap 2->1 analytic "simulation" with an optional
// artificial failure region and call counting.
type toyOracle struct {
	calls    int
	failWhen func(x []float64) bool
}

func (o *toyOracle) Dims() (int, int) { return 2, 1 }

func (o *toyOracle) Run(x []float64) ([]float64, error) {
	o.calls++
	if o.failWhen != nil && o.failWhen(x) {
		return nil, errors.New("synthetic failure")
	}
	return []float64{math.Sin(x[0]) + 0.5*x[1]}, nil
}

func newTestSurrogate(rng *xrand.Rand) *NNSurrogate {
	s := NewNNSurrogate(2, 1, []int{24}, 0.1, rng)
	s.Epochs = 150
	s.MCPasses = 20
	return s
}

func TestOracleFuncAdapter(t *testing.T) {
	o := OracleFunc{In: 1, Out: 2, F: func(x []float64) ([]float64, error) {
		return []float64{x[0], x[0] * 2}, nil
	}}
	in, out := o.Dims()
	if in != 1 || out != 2 {
		t.Fatal("dims wrong")
	}
	y, err := o.Run([]float64{3})
	if err != nil || y[1] != 6 {
		t.Fatalf("run got %v, %v", y, err)
	}
}

func TestNNSurrogateLearnsOracle(t *testing.T) {
	rng := xrand.New(1)
	oracle := &toyOracle{}
	const n = 300
	x := tensor.NewMatrix(n, 2)
	y := tensor.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.Range(-2, 2))
		x.Set(i, 1, rng.Range(-1, 1))
		out, _ := oracle.Run(x.Row(i))
		y.Set(i, 0, out[0])
	}
	s := newTestSurrogate(rng)
	if s.Trained() {
		t.Fatal("surrogate trained before Train")
	}
	if err := s.Train(x, y); err != nil {
		t.Fatal(err)
	}
	if !s.Trained() {
		t.Fatal("Trained() false after Train")
	}
	worst := 0.0
	for i := 0; i < 20; i++ {
		in := []float64{rng.Range(-2, 2), rng.Range(-1, 1)}
		truth, _ := oracle.Run(in)
		pred := s.Predict(in)
		if e := math.Abs(pred[0] - truth[0]); e > worst {
			worst = e
		}
	}
	if worst > 0.25 {
		t.Fatalf("surrogate worst error %g", worst)
	}
}

func TestNNSurrogateUQPositive(t *testing.T) {
	rng := xrand.New(2)
	x := tensor.NewMatrix(50, 2)
	y := tensor.NewMatrix(50, 1)
	for i := 0; i < 50; i++ {
		x.Set(i, 0, rng.Float64())
		x.Set(i, 1, rng.Float64())
		y.Set(i, 0, x.At(i, 0))
	}
	s := newTestSurrogate(rng)
	if err := s.Train(x, y); err != nil {
		t.Fatal(err)
	}
	_, std := s.PredictWithUQ([]float64{0.5, 0.5})
	if std[0] <= 0 {
		t.Fatal("MC-dropout surrogate should report positive uncertainty")
	}
}

func TestNNSurrogateTrainErrors(t *testing.T) {
	rng := xrand.New(3)
	s := newTestSurrogate(rng)
	if err := s.Train(tensor.NewMatrix(0, 2), tensor.NewMatrix(0, 1)); err == nil {
		t.Fatal("empty training set should error")
	}
	if err := s.Train(tensor.NewMatrix(5, 3), tensor.NewMatrix(5, 1)); err == nil {
		t.Fatal("dimension mismatch should error")
	}
}

func TestNNSurrogatePanicsUntrained(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Predict before Train did not panic")
		}
	}()
	newTestSurrogate(xrand.New(4)).Predict([]float64{0, 0})
}

func TestWrapperColdStartUsesSimulation(t *testing.T) {
	rng := xrand.New(5)
	oracle := &toyOracle{}
	w := NewWrapper(oracle, newTestSurrogate(rng), WrapperConfig{MinTrainSamples: 10, UQThreshold: 0.05})
	y, src, _, err := w.Query([]float64{0.3, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if src != FromSimulation {
		t.Fatal("cold wrapper should simulate")
	}
	want := math.Sin(0.3) + 0.2
	if math.Abs(y[0]-want) > 1e-12 {
		t.Fatalf("wrapper altered simulation answer: %g want %g", y[0], want)
	}
	if w.TrainingSetSize() != 1 {
		t.Fatalf("training set size %d want 1", w.TrainingSetSize())
	}
}

func TestWrapperShiftsToSurrogate(t *testing.T) {
	rng := xrand.New(6)
	oracle := &toyOracle{}
	w := NewWrapper(oracle, newTestSurrogate(rng), WrapperConfig{
		MinTrainSamples: 60, RetrainEvery: 0, UQThreshold: 0.2,
	})
	// Warm-up: 60 simulated queries trigger the first fit.
	for i := 0; i < 60; i++ {
		if _, _, _, err := w.Query([]float64{rng.Range(-2, 2), rng.Range(-1, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	surrogateHits := 0
	for i := 0; i < 50; i++ {
		_, src, _, err := w.Query([]float64{rng.Range(-2, 2), rng.Range(-1, 1)})
		if err != nil {
			t.Fatal(err)
		}
		if src == FromSurrogate {
			surrogateHits++
		}
	}
	if surrogateHits == 0 {
		t.Fatal("wrapper never served from surrogate after training")
	}
	led := w.Ledger()
	if led.NLookup != surrogateHits {
		t.Fatalf("ledger lookups %d != observed %d", led.NLookup, surrogateHits)
	}
	if led.NTrainingRuns < 1 {
		t.Fatal("ledger recorded no training runs")
	}
	if f := led.SurrogateFraction(); f <= 0 || f >= 1 {
		t.Fatalf("surrogate fraction %g not in (0,1)", f)
	}
}

func TestWrapperStrictGateAlwaysSimulates(t *testing.T) {
	rng := xrand.New(7)
	oracle := &toyOracle{}
	w := NewWrapper(oracle, newTestSurrogate(rng), WrapperConfig{
		MinTrainSamples: 30, UQThreshold: 0, // impossible gate
	})
	for i := 0; i < 40; i++ {
		_, src, _, err := w.Query([]float64{rng.Range(-1, 1), rng.Range(-1, 1)})
		if err != nil {
			t.Fatal(err)
		}
		if src == FromSurrogate {
			t.Fatal("zero-threshold gate must reject all surrogate answers")
		}
	}
	if w.Ledger().NRejected == 0 {
		t.Fatal("rejected lookups not recorded")
	}
}

func TestWrapperPropagatesOracleError(t *testing.T) {
	rng := xrand.New(8)
	oracle := &toyOracle{failWhen: func(x []float64) bool { return x[0] > 0 }}
	w := NewWrapper(oracle, newTestSurrogate(rng), WrapperConfig{MinTrainSamples: 100})
	if _, _, _, err := w.Query([]float64{1, 0}); err == nil {
		t.Fatal("oracle failure should propagate")
	}
	if w.Ledger().NFailed != 1 {
		t.Fatal("failed run not recorded")
	}
	if w.TrainingSetSize() != 0 {
		t.Fatal("failed run must not enter the training set")
	}
}

func TestWrapperPretrain(t *testing.T) {
	rng := xrand.New(9)
	oracle := &toyOracle{}
	w := NewWrapper(oracle, newTestSurrogate(rng), WrapperConfig{UQThreshold: 0.3})
	design := tensor.NewMatrix(80, 2)
	for i := 0; i < 80; i++ {
		design.Set(i, 0, rng.Range(-2, 2))
		design.Set(i, 1, rng.Range(-1, 1))
	}
	if err := w.Pretrain(design); err != nil {
		t.Fatal(err)
	}
	led := w.Ledger()
	if led.NTrain != 80 || led.NTrainingRuns != 1 {
		t.Fatalf("pretrain ledger: %+v", led)
	}
	_, src, std, err := w.Query([]float64{0.1, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if src == FromSurrogate && (len(std) != 1 || std[0] <= 0) {
		t.Fatal("surrogate answer missing UQ")
	}
}

func TestEffectiveSpeedupFormula(t *testing.T) {
	// Worked example: Tseq=100, Ttrain=100, Tlearn=1, Tlookup=0.01,
	// Ntrain=10, Nlookup=1000.
	s := EffectiveSpeedup(100, 100, 1, 0.01, 1000, 10)
	want := 100.0 * 1010 / (0.01*1000 + 101*10)
	if math.Abs(s-want) > 1e-9 {
		t.Fatalf("speedup %g want %g", s, want)
	}
}

func TestEffectiveSpeedupNoMLLimit(t *testing.T) {
	// Nlookup = 0 reduces to Tseq/Ttrain exactly (Tlearn=0).
	s := EffectiveSpeedup(100, 5, 0, 1, 0, 50)
	if math.Abs(s-20) > 1e-12 {
		t.Fatalf("no-ML limit %g want 20", s)
	}
	if SpeedupNoML(100, 5) != 20 {
		t.Fatal("SpeedupNoML wrong")
	}
}

func TestEffectiveSpeedupInfiniteLookupLimit(t *testing.T) {
	// As Nlookup/Ntrain -> inf the speedup approaches Tseq/Tlookup.
	limit := SpeedupInfiniteLookup(100, 0.001)
	s := EffectiveSpeedup(100, 100, 1, 0.001, 1e12, 1)
	if math.Abs(s-limit)/limit > 1e-3 {
		t.Fatalf("large-lookup speedup %g want ~%g", s, limit)
	}
}

func TestEffectiveSpeedupDegenerate(t *testing.T) {
	if !math.IsNaN(EffectiveSpeedup(1, 0, 0, 0, 0, 0)) {
		t.Fatal("zero denominator should be NaN")
	}
}

// Property: speedup is monotone non-decreasing in Nlookup when the lookup
// is cheaper than the simulation.
func TestSpeedupMonotoneQuick(t *testing.T) {
	if err := quick.Check(func(aRaw, bRaw uint8) bool {
		n1 := float64(aRaw) + 1
		n2 := n1 + float64(bRaw) + 1
		s1 := EffectiveSpeedup(100, 100, 1, 0.01, n1, 10)
		s2 := EffectiveSpeedup(100, 100, 1, 0.01, n2, 10)
		return s2 >= s1-1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: speedup is bounded above by Tseq/Tlookup.
func TestSpeedupBoundedQuick(t *testing.T) {
	if err := quick.Check(func(nlRaw, ntRaw uint8) bool {
		nl := float64(nlRaw) + 1
		nt := float64(ntRaw) + 1
		s := EffectiveSpeedup(100, 100, 1, 0.01, nl, nt)
		return s <= SpeedupInfiniteLookup(100, 0.01)+1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedupCurveMonotone(t *testing.T) {
	ratios := []float64{0.1, 1, 10, 100, 1000}
	curve := SpeedupCurve(100, 100, 1, 0.001, 100, ratios)
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Fatalf("speedup curve not monotone at %d: %v", i, curve)
		}
	}
}

func TestLedgerAccounting(t *testing.T) {
	var l Ledger
	l.RecordSimulation(100)
	l.RecordSimulation(200)
	l.RecordLookup(2)
	l.RecordLookup(4)
	l.RecordLookup(6)
	l.RecordTraining(1000, 2)
	l.RecordRejectedLookup(1)
	l.RecordFailedRun(5)
	if l.MeanSimTime() != 150 {
		t.Fatalf("mean sim time %v", l.MeanSimTime())
	}
	if l.MeanLookupTime() != 4 {
		t.Fatalf("mean lookup time %v", l.MeanLookupTime())
	}
	if l.MeanLearnTimePerSample() != 500 {
		t.Fatalf("mean learn time %v", l.MeanLearnTimePerSample())
	}
	if f := l.SurrogateFraction(); math.Abs(f-0.6) > 1e-12 {
		t.Fatalf("surrogate fraction %g want 0.6", f)
	}
	if s := l.String(); s == "" {
		t.Fatal("empty ledger string")
	}
	if es := l.EffectiveSpeedup(1); math.IsNaN(es) || es <= 0 {
		t.Fatalf("ledger effective speedup %g", es)
	}
}

func TestLedgerEmptySpeedupNaN(t *testing.T) {
	var l Ledger
	if !math.IsNaN(l.EffectiveSpeedup(1)) {
		t.Fatal("empty ledger speedup should be NaN")
	}
}

func TestTaxonomyCategories(t *testing.T) {
	wantML := map[Interface]Category{
		HPCrunsML:           HPCforML,
		SimulationTrainedML: HPCforML,
		MLautotuning:        MLforHPC,
		MLafterHPC:          MLforHPC,
		MLaroundHPC:         MLforHPC,
		MLControl:           MLforHPC,
	}
	all := AllInterfaces()
	if len(all) != 6 {
		t.Fatalf("%d interfaces want 6", len(all))
	}
	for _, i := range all {
		if i.Category() != wantML[i] {
			t.Fatalf("%v categorized as %v", i, i.Category())
		}
		if i.String() == "unknown" {
			t.Fatalf("interface %d has no name", int(i))
		}
	}
	if HPCforML.String() != "HPCforML" || MLforHPC.String() != "MLforHPC" {
		t.Fatal("category names wrong")
	}
	if Interface(99).String() != "unknown" {
		t.Fatal("out-of-range interface should be unknown")
	}
}
