package core

import (
	"sort"

	"repro/internal/tensor"
)

// KDCutsFromSamples returns ascending cut points along dimension dim that
// split the sample distribution into shards equal-mass buckets: the
// (i/shards)-quantiles of column dim for i = 1..shards-1, ready to feed a
// KDRouter. Static, hand-placed kd cuts balance load only when the query
// distribution is known up front; deriving them from the accumulated
// training distribution auto-tunes the partition to where traffic
// actually lands (the ROADMAP's shard-rebalancing item).
//
// The result is deterministic in the sample multiset (sorting is the only
// operation). Duplicate quantile values are collapsed so the cuts are
// strictly increasing — heavily repeated values can therefore yield fewer
// than shards-1 cuts (and a KDRouter with fewer shards) rather than
// unroutable empty buckets. Fewer than 2 shards, or an empty sample set,
// yields nil (a single-shard router needs no cuts).
func KDCutsFromSamples(samples *tensor.Matrix, dim, shards int) []float64 {
	if shards < 2 || samples.Rows == 0 {
		return nil
	}
	n := samples.Rows
	col := make([]float64, n)
	for i := 0; i < n; i++ {
		col[i] = samples.At(i, dim)
	}
	sort.Float64s(col)
	cuts := make([]float64, 0, shards-1)
	for i := 1; i < shards; i++ {
		c := col[i*n/shards]
		// Strictly increasing, and strictly above the column minimum: a
		// cut at or below the minimum can only produce an empty bucket
		// (KDRouter sends x < cut left, and nothing sits below the
		// minimum), so repeated low quantiles are collapsed away.
		if c > col[0] && (len(cuts) == 0 || c > cuts[len(cuts)-1]) {
			cuts = append(cuts, c)
		}
	}
	if len(cuts) == 0 {
		return nil
	}
	return cuts
}
