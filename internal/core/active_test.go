package core

import (
	"math"
	"testing"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// rastriginOracle is a 1->1 oracle with both smooth and wiggly regions so
// uncertainty sampling has something to find.
type rastriginOracle struct{ calls int }

func (o *rastriginOracle) Dims() (int, int) { return 1, 1 }

func (o *rastriginOracle) Run(x []float64) ([]float64, error) {
	o.calls++
	v := x[0]
	return []float64{v*v + 0.5*math.Sin(6*v)}, nil
}

func alSurrogate(rng *xrand.Rand) *NNSurrogate {
	s := NewNNSurrogate(1, 1, []int{16}, 0.1, rng)
	s.Epochs = 120
	s.MCPasses = 15
	return s
}

func makePoolAndTest(rng *xrand.Rand, o Oracle, nPool, nTest int) (pool, testX, testY *tensor.Matrix) {
	pool = tensor.NewMatrix(nPool, 1)
	for i := 0; i < nPool; i++ {
		pool.Set(i, 0, rng.Range(-2, 2))
	}
	testX = tensor.NewMatrix(nTest, 1)
	testY = tensor.NewMatrix(nTest, 1)
	for i := 0; i < nTest; i++ {
		testX.Set(i, 0, rng.Range(-2, 2))
		y, _ := o.Run(testX.Row(i))
		testY.Set(i, 0, y[0])
	}
	return pool, testX, testY
}

func TestActiveLearnerCurveImproves(t *testing.T) {
	rng := xrand.New(11)
	oracle := &rastriginOracle{}
	pool, testX, testY := makePoolAndTest(rng, oracle, 200, 40)
	al := NewActiveLearner(oracle, alSurrogate(rng), AcquireMaxUncertainty, rng.Split())
	al.InitialSamples = 15
	al.BatchSize = 15
	al.MaxSamples = 90
	curve, err := al.Run(pool, testX, testY)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) < 3 {
		t.Fatalf("curve too short: %d rounds", len(curve))
	}
	first, last := curve[0], curve[len(curve)-1]
	if last.Samples <= first.Samples {
		t.Fatal("samples did not grow")
	}
	if last.TestMAE >= first.TestMAE {
		t.Fatalf("AL did not improve: first MAE %g, last %g", first.TestMAE, last.TestMAE)
	}
}

func TestActiveLearnerRandomStrategy(t *testing.T) {
	rng := xrand.New(13)
	oracle := &rastriginOracle{}
	pool, testX, testY := makePoolAndTest(rng, oracle, 150, 30)
	al := NewActiveLearner(oracle, alSurrogate(rng), AcquireRandom, rng.Split())
	al.InitialSamples = 20
	al.BatchSize = 20
	al.MaxSamples = 60
	curve, err := al.Run(pool, testX, testY)
	if err != nil {
		t.Fatal(err)
	}
	if got := curve[len(curve)-1].Samples; got != 60 {
		t.Fatalf("final training size %d want 60", got)
	}
}

func TestActiveLearnerPoolExhaustion(t *testing.T) {
	rng := xrand.New(17)
	oracle := &rastriginOracle{}
	pool, testX, testY := makePoolAndTest(rng, oracle, 30, 10)
	al := NewActiveLearner(oracle, alSurrogate(rng), AcquireMaxUncertainty, rng.Split())
	al.InitialSamples = 10
	al.BatchSize = 10
	al.MaxSamples = 10000 // larger than pool: must stop at pool exhaustion
	curve, err := al.Run(pool, testX, testY)
	if err != nil {
		t.Fatal(err)
	}
	if got := curve[len(curve)-1].Samples; got != 30 {
		t.Fatalf("final size %d want full pool 30", got)
	}
}

func TestActiveLearnerPoolTooSmall(t *testing.T) {
	rng := xrand.New(19)
	oracle := &rastriginOracle{}
	al := NewActiveLearner(oracle, alSurrogate(rng), AcquireRandom, rng.Split())
	al.InitialSamples = 50
	if _, err := al.Run(tensor.NewMatrix(10, 1), nil, nil); err == nil {
		t.Fatal("undersized pool should error")
	}
}

func TestSamplesToReachMAE(t *testing.T) {
	curve := []ALRound{{10, 1.0}, {20, 0.5}, {30, 0.1}}
	if got := SamplesToReachMAE(curve, 0.5); got != 20 {
		t.Fatalf("got %d want 20", got)
	}
	if got := SamplesToReachMAE(curve, 0.01); got != -1 {
		t.Fatalf("unreachable target should be -1, got %d", got)
	}
}

func TestStrategyString(t *testing.T) {
	if AcquireRandom.String() != "random" || AcquireMaxUncertainty.String() != "max-uncertainty" {
		t.Fatal("strategy names wrong")
	}
}

func TestAutotunerSelectsLargestAcceptableControl(t *testing.T) {
	rng := xrand.New(23)
	// Ground truth: quality = 1 if dt <= 0.1*param else degrades linearly.
	quality := func(param, dt float64) float64 {
		limit := 0.1 * param
		if dt <= limit {
			return 1
		}
		return 1 - 5*(dt-limit)/limit
	}
	const n = 800
	x := tensor.NewMatrix(n, 2)
	y := tensor.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		p := rng.Range(1, 3)
		dt := rng.Range(0.01, 0.6)
		x.Set(i, 0, p)
		x.Set(i, 1, dt)
		y.Set(i, 0, quality(p, dt))
	}
	s := NewNNSurrogate(2, 1, []int{24, 24}, 0, rng)
	s.Epochs = 300
	tuner := NewAutotuner(s, 1, 1)
	if err := tuner.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	cands := tensor.NewMatrix(30, 1)
	for i := 0; i < 30; i++ {
		cands.Set(i, 0, 0.01+float64(i)*0.02)
	}
	ctl, err := tuner.Tune([]float64{2.0}, cands,
		func(q []float64) bool { return q[0] > 0.9 },
		func(c []float64) float64 { return c[0] })
	if err != nil {
		t.Fatal(err)
	}
	// True stability limit for param=2 is dt=0.2; accept generous slack for
	// a learned boundary.
	if ctl[0] < 0.1 || ctl[0] > 0.32 {
		t.Fatalf("tuned dt %g outside plausible band around 0.2", ctl[0])
	}
}

func TestAutotunerNoCandidatePasses(t *testing.T) {
	rng := xrand.New(29)
	s := NewNNSurrogate(1, 1, []int{8}, 0, rng)
	s.Epochs = 50
	x := tensor.NewMatrix(20, 1)
	y := tensor.NewMatrix(20, 1)
	for i := 0; i < 20; i++ {
		x.Set(i, 0, float64(i))
		y.Set(i, 0, 0) // quality always 0
	}
	tuner := NewAutotuner(s, 0, 1)
	if err := tuner.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	cands := tensor.NewMatrix(5, 1)
	_, err := tuner.Tune(nil, cands,
		func(q []float64) bool { return q[0] > 0.5 },
		func(c []float64) float64 { return c[0] })
	if err == nil {
		t.Fatal("expected error when no candidate passes")
	}
}

func TestAutotunerDimensionErrors(t *testing.T) {
	rng := xrand.New(31)
	s := NewNNSurrogate(3, 1, []int{4}, 0, rng)
	tuner := NewAutotuner(s, 2, 1)
	if err := tuner.Fit(tensor.NewMatrix(5, 2), tensor.NewMatrix(5, 1)); err == nil {
		t.Fatal("wrong feature count should error")
	}
}

func TestControllerPrefersHighObjective(t *testing.T) {
	rng := xrand.New(37)
	// Train surrogate on y = -(x-0.7)^2 so the controller should pick
	// candidates near 0.7.
	const n = 400
	x := tensor.NewMatrix(n, 1)
	y := tensor.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		v := rng.Float64()
		x.Set(i, 0, v)
		y.Set(i, 0, -(v-0.7)*(v-0.7))
	}
	s := NewNNSurrogate(1, 1, []int{16}, 0.05, rng)
	s.Epochs = 250
	if err := s.Train(x, y); err != nil {
		t.Fatal(err)
	}
	ctrl := &Controller{Surrogate: s, Kappa: 0, Objective: func(y []float64) float64 { return y[0] }}
	cands := tensor.NewMatrix(11, 1)
	for i := 0; i <= 10; i++ {
		cands.Set(i, 0, float64(i)/10)
	}
	best := ctrl.Next(cands)
	if got := cands.At(best, 0); math.Abs(got-0.7) > 0.2 {
		t.Fatalf("controller chose %g, want near 0.7", got)
	}
}

func TestControllerExplorationKappa(t *testing.T) {
	rng := xrand.New(41)
	const n = 100
	x := tensor.NewMatrix(n, 1)
	y := tensor.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		v := rng.Float64() * 0.5 // train only on [0, 0.5]
		x.Set(i, 0, v)
		y.Set(i, 0, 1)
	}
	s := NewNNSurrogate(1, 1, []int{16}, 0.2, rng)
	s.Epochs = 150
	if err := s.Train(x, y); err != nil {
		t.Fatal(err)
	}
	cands := tensor.FromRows([][]float64{{0.25}, {3.0}}) // in-dist vs far out
	explorer := &Controller{Surrogate: s, Kappa: 50, Objective: func(y []float64) float64 { return 0 }}
	if got := explorer.Next(cands); got != 1 {
		t.Fatalf("high-kappa controller should explore the uncertain point, chose %d", got)
	}
}
