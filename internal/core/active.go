package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// AcquisitionStrategy selects which pool points an active learner queries
// next.
type AcquisitionStrategy int

// Available acquisition strategies.
const (
	// AcquireRandom picks pool points uniformly (the baseline).
	AcquireRandom AcquisitionStrategy = iota
	// AcquireMaxUncertainty picks the points with the largest predictive
	// std — the paper's AL narrative ("iteratively adding training data
	// calculations for regions of chemical space where the current ML
	// model could not make good predictions", §II-C2).
	AcquireMaxUncertainty
)

// String returns the strategy name.
func (s AcquisitionStrategy) String() string {
	if s == AcquireMaxUncertainty {
		return "max-uncertainty"
	}
	return "random"
}

// ALRound records one active-learning iteration for learning curves.
type ALRound struct {
	Samples int     // cumulative training-set size after the round
	TestMAE float64 // mean MAE across outputs on the held-out test set
}

// ActiveLearner drives pool-based active learning around an Oracle.
type ActiveLearner struct {
	Oracle    Oracle
	Surrogate Surrogate
	Strategy  AcquisitionStrategy
	// InitialSamples seeds the first fit; BatchSize points are acquired
	// per round up to MaxSamples.
	InitialSamples int
	BatchSize      int
	MaxSamples     int
	rng            *xrand.Rand
}

// NewActiveLearner constructs an active learner with sane defaults.
func NewActiveLearner(o Oracle, s Surrogate, strat AcquisitionStrategy, rng *xrand.Rand) *ActiveLearner {
	return &ActiveLearner{
		Oracle: o, Surrogate: s, Strategy: strat,
		InitialSamples: 20, BatchSize: 10, MaxSamples: 200, rng: rng,
	}
}

// Run learns from the candidate pool, evaluating on (testX, testY) after
// each round, and returns the learning curve. Pool rows consumed by
// acquisition are not revisited.
func (a *ActiveLearner) Run(pool *tensor.Matrix, testX, testY *tensor.Matrix) ([]ALRound, error) {
	if pool.Rows < a.InitialSamples {
		return nil, fmt.Errorf("core: pool size %d < initial samples %d", pool.Rows, a.InitialSamples)
	}
	available := a.rng.Perm(pool.Rows)
	in, out := a.Oracle.Dims()
	trainX := tensor.NewMatrix(0, in)
	trainY := tensor.NewMatrix(0, out)

	acquire := func(idx []int) error {
		for _, id := range idx {
			x := pool.Row(id)
			y, err := a.Oracle.Run(x)
			if err != nil {
				return fmt.Errorf("core: AL oracle run: %w", err)
			}
			trainX.Data = append(trainX.Data, x...)
			trainX.Rows++
			trainY.Data = append(trainY.Data, y...)
			trainY.Rows++
		}
		return nil
	}

	// Seed round.
	if err := acquire(available[:a.InitialSamples]); err != nil {
		return nil, err
	}
	available = available[a.InitialSamples:]

	var curve []ALRound
	for {
		if err := a.Surrogate.Train(trainX, trainY); err != nil {
			return curve, err
		}
		curve = append(curve, ALRound{Samples: trainX.Rows, TestMAE: a.testMAE(testX, testY)})
		if trainX.Rows >= a.MaxSamples || len(available) == 0 {
			return curve, nil
		}
		batch := a.BatchSize
		if batch > len(available) {
			batch = len(available)
		}
		var chosen []int
		switch a.Strategy {
		case AcquireMaxUncertainty:
			type cand struct {
				pos int
				unc float64
			}
			cands := make([]cand, len(available))
			for i, id := range available {
				_, sd := a.Surrogate.PredictWithUQ(pool.Row(id))
				cands[i] = cand{pos: i, unc: maxOf(sd)}
			}
			sort.Slice(cands, func(i, j int) bool { return cands[i].unc > cands[j].unc })
			taken := map[int]bool{}
			for _, c := range cands[:batch] {
				chosen = append(chosen, available[c.pos])
				taken[c.pos] = true
			}
			var rest []int
			for i, id := range available {
				if !taken[i] {
					rest = append(rest, id)
				}
			}
			available = rest
		default: // AcquireRandom
			chosen = append(chosen, available[:batch]...)
			available = available[batch:]
		}
		if err := acquire(chosen); err != nil {
			return curve, err
		}
	}
}

func (a *ActiveLearner) testMAE(testX, testY *tensor.Matrix) float64 {
	if testX == nil || testX.Rows == 0 {
		return math.NaN()
	}
	total := 0.0
	for j := 0; j < testY.Cols; j++ {
		pred := make([]float64, testX.Rows)
		target := make([]float64, testX.Rows)
		for i := 0; i < testX.Rows; i++ {
			pred[i] = a.Surrogate.Predict(testX.Row(i))[j]
			target[i] = testY.At(i, j)
		}
		total += stats.MAE(pred, target)
	}
	return total / float64(testY.Cols)
}

// SamplesToReachMAE returns the training-set size at which the learning
// curve first reaches the target MAE, or -1 if it never does. Used to
// compare acquisition strategies (experiment E6: AL should need ~10% of
// the random baseline's data).
func SamplesToReachMAE(curve []ALRound, target float64) int {
	for _, r := range curve {
		if r.TestMAE <= target {
			return r.Samples
		}
	}
	return -1
}

// Autotuner implements MLautotuning (§I, §III-D / ref [9]): it learns the
// map from (simulation parameters ++ control parameters) to a quality
// score, then selects, for given simulation parameters, the control
// setting that maximizes an objective subject to predicted quality
// remaining acceptable — e.g. the largest stable timestep dt.
type Autotuner struct {
	Surrogate Surrogate
	nSim      int // leading simulation-parameter count
	nCtl      int // trailing control-parameter count
}

// NewAutotuner builds an autotuner whose surrogate consumes nSim
// simulation parameters followed by nCtl control parameters.
func NewAutotuner(s Surrogate, nSim, nCtl int) *Autotuner {
	return &Autotuner{Surrogate: s, nSim: nSim, nCtl: nCtl}
}

// Fit trains the quality model on rows of [simParams ++ ctlParams] → quality.
func (t *Autotuner) Fit(x, y *tensor.Matrix) error {
	if x.Cols != t.nSim+t.nCtl {
		return fmt.Errorf("core: autotuner expects %d features, got %d", t.nSim+t.nCtl, x.Cols)
	}
	return t.Surrogate.Train(x, y)
}

// Tune returns the candidate control setting with the highest objective
// among those whose predicted quality passes accept, or an error when no
// candidate passes. candidates rows are control-parameter vectors.
func (t *Autotuner) Tune(simParams []float64, candidates *tensor.Matrix,
	accept func(quality []float64) bool, objective func(ctl []float64) float64) ([]float64, error) {
	if len(simParams) != t.nSim {
		return nil, fmt.Errorf("core: expected %d sim params, got %d", t.nSim, len(simParams))
	}
	if candidates.Cols != t.nCtl {
		return nil, fmt.Errorf("core: expected %d control params, got %d", t.nCtl, candidates.Cols)
	}
	best := -1
	bestObj := math.Inf(-1)
	feat := make([]float64, t.nSim+t.nCtl)
	copy(feat, simParams)
	for i := 0; i < candidates.Rows; i++ {
		ctl := candidates.Row(i)
		copy(feat[t.nSim:], ctl)
		q := t.Surrogate.Predict(feat)
		if !accept(q) {
			continue
		}
		if obj := objective(ctl); obj > bestObj {
			bestObj = obj
			best = i
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("core: no candidate control setting passes the quality gate")
	}
	out := make([]float64, t.nCtl)
	copy(out, candidates.Row(best))
	return out, nil
}

// Controller implements MLControl (§I): objective-driven selection of the
// next experiment using the surrogate's mean and uncertainty in real time,
// via an upper-confidence-bound acquisition over a candidate set.
type Controller struct {
	Surrogate Surrogate
	// Kappa balances exploitation (0) against exploration.
	Kappa float64
	// Objective converts a predicted output vector into a scalar score to
	// maximize.
	Objective func(y []float64) float64
}

// Next returns the candidate row index maximizing
// Objective(mean) + Kappa·max(std): the surrogate's real-time prediction
// (§I: "the simulation surrogates are very valuable to allow real-time
// predictions") steering the campaign.
func (c *Controller) Next(candidates *tensor.Matrix) int {
	best, bestScore := -1, math.Inf(-1)
	for i := 0; i < candidates.Rows; i++ {
		mean, std := c.Surrogate.PredictWithUQ(candidates.Row(i))
		score := c.Objective(mean) + c.Kappa*maxOf(std)
		if score > bestScore {
			bestScore = score
			best = i
		}
	}
	return best
}
