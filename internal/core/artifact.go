package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/xrand"
)

// This file binds NNSurrogate to the nn artifact format: a trained
// surrogate serializes into one self-verifying blob — network weights,
// the compiled float program, the int8 quantized program, the fitted
// scalers, and every serving hyperparameter — and deserializes into a
// surrogate that predicts bit-identically without retraining,
// recompiling, or recalibrating. The registry stores these blobs; a
// warm-started process serves from them directly off an mmap.

// Dims reports the input/output dimensionality the surrogate maps —
// warm-start paths check it against the serving wrapper before
// installing a restored model.
func (s *NNSurrogate) Dims() (in, out int) { return s.inDim, s.outDim }

// surrogateMeta is the gob-encoded artifact meta section: everything an
// NNSurrogate needs beyond the nn payloads themselves.
type surrogateMeta struct {
	InDim, OutDim int
	Hidden        []int
	Dropout       float64
	MCPasses      int
	MaxBatch      int
	Epochs        int
	BatchSize     int
	LR            float64
	Quantize      bool
	QGate         float64
	XMean, XStd   []float64
	YMean, YStd   []float64
	// ResidBase is the drift baseline recorded at publish time (the
	// model's in-sample residual), carried alongside the model so a
	// warm-started wrapper resumes drift tracking where the publisher
	// left off instead of from zero.
	ResidBase float64
}

// EncodeArtifact serializes a trained surrogate into the checksummed nn
// artifact format. residBase is the drift baseline to carry with the
// model (0 when drift tracking is off). The returned blob round-trips
// through DecodeNNSurrogate into a surrogate whose Predict,
// PredictBatch, and quantized serving paths are bit-identical to this
// one's.
func (s *NNSurrogate) EncodeArtifact(residBase float64) ([]byte, error) {
	if !s.trained || s.net == nil {
		return nil, errors.New("core: cannot encode untrained surrogate")
	}
	meta := surrogateMeta{
		InDim: s.inDim, OutDim: s.outDim,
		Hidden: s.Hidden, Dropout: s.Dropout, MCPasses: s.MCPasses,
		MaxBatch: s.MaxBatch, Epochs: s.Epochs, BatchSize: s.BatchSize,
		LR: s.LR, Quantize: s.Quantize, QGate: s.qgate,
		XMean: s.xScaler.Mean, XStd: s.xScaler.Std,
		YMean: s.yScaler.Mean, YStd: s.yScaler.Std,
		ResidBase: residBase,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&meta); err != nil {
		return nil, fmt.Errorf("core: encode artifact meta: %w", err)
	}
	return nn.EncodeArtifact(&nn.Artifact{
		Meta:     buf.Bytes(),
		Net:      s.net,
		Compiled: s.compiled,
		Quant:    s.qcompiled,
	})
}

// DecodeNNSurrogate reconstructs a trained NNSurrogate from an artifact
// blob, returning it with the drift baseline recorded at encode time.
// The surrogate serves immediately — no retraining, recompilation, or
// recalibration — and its deterministic prediction paths are
// bit-identical to the encoder's. rng seeds the restored surrogate's
// MC-dropout stream (stochastic UQ passes need a live rng; the
// deterministic paths never touch it).
func DecodeNNSurrogate(data []byte, rng *xrand.Rand) (*NNSurrogate, float64, error) {
	art, err := nn.DecodeArtifact(data, rng.Split())
	if err != nil {
		return nil, 0, err
	}
	if art.Net == nil {
		return nil, 0, errors.New("core: artifact has no network section")
	}
	var meta surrogateMeta
	if err := gob.NewDecoder(bytes.NewReader(art.Meta)).Decode(&meta); err != nil {
		return nil, 0, fmt.Errorf("core: decode artifact meta: %w", err)
	}
	if in, out, ok := art.Net.Dims(); !ok || in != meta.InDim || out != meta.OutDim {
		return nil, 0, fmt.Errorf("core: artifact meta claims %d→%d, network is %d→%d", meta.InDim, meta.OutDim, in, out)
	}
	xsc, err := scalerFromMeta(meta.XMean, meta.XStd, meta.InDim, "input")
	if err != nil {
		return nil, 0, err
	}
	ysc, err := scalerFromMeta(meta.YMean, meta.YStd, meta.OutDim, "target")
	if err != nil {
		return nil, 0, err
	}
	s := &NNSurrogate{
		Hidden: meta.Hidden, Dropout: meta.Dropout, MCPasses: meta.MCPasses,
		MaxBatch: meta.MaxBatch, Epochs: meta.Epochs, BatchSize: meta.BatchSize,
		LR: meta.LR, Quantize: meta.Quantize,
		rng: rng, inDim: meta.InDim, outDim: meta.OutDim,
		net: art.Net, compiled: art.Compiled, qcompiled: art.Quant,
		qgate: meta.QGate, xScaler: xsc, yScaler: ysc,
		trained: true,
	}
	return s, meta.ResidBase, nil
}

// scalerFromMeta validates and rebuilds one fitted scaler from its meta
// vectors, fail-closed: a scaler with the wrong width, non-finite
// moments, or non-positive stds would silently corrupt every prediction
// the restored model serves.
func scalerFromMeta(mean, std []float64, dim int, which string) (*nn.Scaler, error) {
	if len(mean) != dim || len(std) != dim {
		return nil, fmt.Errorf("core: artifact %s scaler has %d/%d entries, want %d", which, len(mean), len(std), dim)
	}
	for j := 0; j < dim; j++ {
		if !isFinite(mean[j]) || !isFinite(std[j]) || std[j] <= 0 {
			return nil, fmt.Errorf("core: artifact %s scaler has invalid moments at dim %d", which, j)
		}
	}
	return &nn.Scaler{Mean: mean, Std: std}, nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
