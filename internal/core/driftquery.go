package core

import (
	"math"

	"repro/internal/tensor"
)

// This file extends drift tracking (ShardedConfig.DriftFactor) to the
// query path's UQ-rejected oracle fallbacks. A rejected lookup already
// computed the surrogate's prediction, and the fallback then computes
// the oracle's truth — their residual is a free drift observation. But
// the rejected stream is biased by construction: these are exactly the
// points the model is least certain about, so even a perfectly
// calibrated, undrifted model shows residuals far above its in-sample
// baseline there. Folding them in raw would trip the drift flag on
// every uncertain regime.
//
// The correction normalizes each rejected residual by what the model
// itself predicted it would be: a Gaussian predictive distribution with
// std σ expects |y − mean| = σ·√(2/π). A calibrated model's rejected
// residual therefore folds in at ≈ the baseline (drift ratio 1, no
// trip); a drifted model's residual exceeds its own predicted
// uncertainty and folds in proportionally above it.

// expectedAbsFactor is √(2/π): E|N(0,σ)| = σ·√(2/π).
var expectedAbsFactor = math.Sqrt(2 / math.Pi)

// correctedResid rescales a UQ-rejected fallback residual into baseline
// units. expAbs is the model's own expected absolute residual at the
// point (mean predicted σ times √(2/π)); base is the shard's
// publish-time baseline. When the model expects residuals above the
// baseline (the usual case for a rejected point), the observation is
// scaled down by exactly that inflation; a model whose uncertainty sits
// at or below the baseline needs no correction.
func correctedResid(resid, expAbs, base float64) float64 {
	b := flooredBase(base)
	if expAbs > b {
		return resid * b / expAbs
	}
	return resid
}

// observeFallbackResidual folds one UQ-rejected fallback into the drift
// EWMA: mean/sd are the rejected prediction from surp, y the oracle
// truth. The observation lands only while surp is still the published
// model — a residual measured against a superseded model must not
// contaminate its successor's fresh EWMA.
func (w *ShardedWrapper) observeFallbackResidual(s *shard, surp *Surrogate, mean, sd, y []float64) {
	resid := meanAbsDiff(mean, y)
	expAbs := meanOf(sd) * expectedAbsFactor
	s.mu.Lock()
	if s.active.Load() == surp {
		s.observeResidualLocked(correctedResid(resid, expAbs, s.residBase), w.cfg.DriftFactor, w.cfg.DriftAlpha)
	}
	s.mu.Unlock()
}

// foldFallbackResiduals is the batch-path counterpart: for the shard's
// successfully oracle-answered rows of one QueryBatchInto call, it
// recomputes the published model's predictions with UQ in one batched
// pass and folds the bias-corrected residuals into the drift EWMA. The
// (model, generation) pair is captured before the pass and re-checked
// under the shard lock, exactly like Ingest's bulk residuals, so a
// publish racing the computation discards it instead of polluting the
// new model's EWMA. The extra surrogate pass only covers rows that
// already paid for an oracle run.
func (w *ShardedWrapper) foldFallbackResiduals(s *shard, xs *tensor.Matrix, idx []int, res []BatchResult) {
	var rows []int
	for _, i := range idx {
		if res[i].Src == FromSimulation && res[i].Err == nil {
			rows = append(rows, i)
		}
	}
	if len(rows) == 0 {
		return
	}
	s.mu.Lock()
	surp := s.active.Load()
	gen := s.publishedGen
	s.mu.Unlock()
	if surp == nil {
		return
	}
	sur := *surp
	resids := make([]float64, len(rows))
	exps := make([]float64, len(rows))
	if bsi, ok := sur.(BatchSurrogateInto); ok {
		sub := tensor.GatherRowsInto(nil, xs, rows)
		mean := tensor.NewMatrix(len(rows), w.out)
		std := tensor.NewMatrix(len(rows), w.out)
		bsi.PredictBatchWithUQInto(sub, mean, std)
		for k, i := range rows {
			resids[k] = meanAbsDiff(mean.Row(k), res[i].Y)
			exps[k] = meanOf(std.Row(k)) * expectedAbsFactor
		}
	} else {
		for k, i := range rows {
			mean, sd := sur.PredictWithUQ(xs.Row(i))
			resids[k] = meanAbsDiff(mean, res[i].Y)
			exps[k] = meanOf(sd) * expectedAbsFactor
		}
	}
	s.mu.Lock()
	if s.publishedGen == gen {
		for k := range rows {
			s.observeResidualLocked(correctedResid(resids[k], exps[k], s.residBase), w.cfg.DriftFactor, w.cfg.DriftAlpha)
		}
	}
	s.mu.Unlock()
}

// meanOf is the arithmetic mean of xs (0 for an empty slice).
func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}
