package core

import (
	"math"
	"testing"

	"repro/internal/raceflag"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// batchServingWrapper builds a pretrained wrapper with a narrow compiled
// batch width so wide batches must chunk internally.
func batchServingWrapper(t testing.TB, maxBatch int, dropout float64) (*Wrapper, *NNSurrogate) {
	t.Helper()
	rng := xrand.New(0xbb17c)
	oracle := OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		return []float64{math.Sin(x[0]) + 0.5*x[1]}, nil
	}}
	sur := NewNNSurrogate(2, 1, []int{16}, dropout, rng)
	sur.Epochs = 50
	sur.MCPasses = 8
	sur.MaxBatch = maxBatch
	w := NewWrapper(oracle, sur, WrapperConfig{MinTrainSamples: 10, UQThreshold: 100})
	design := tensor.NewMatrix(40, 2)
	for i := 0; i < design.Rows; i++ {
		design.Set(i, 0, rng.Range(-1, 1))
		design.Set(i, 1, rng.Range(-1, 1))
	}
	if err := w.Pretrain(design); err != nil {
		t.Fatal(err)
	}
	return w, sur
}

// TestQueryBatchIntoZeroAlloc pins the tentpole serving contract: a
// steady-state QueryBatchInto loop that reuses one result slice performs
// zero heap allocations — surrogate staging, UQ scratch, miss list and
// per-row result buffers are all pooled or reused.
func TestQueryBatchIntoZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("sync.Pool drops items under -race; alloc counts through pooled paths are meaningless")
	}
	w, _ := batchServingWrapper(t, 64, 0.1)
	batch := tensor.NewMatrix(64, 2)
	rng := xrand.New(0xa5)
	for i := 0; i < batch.Rows; i++ {
		batch.Set(i, 0, rng.Range(-1, 1))
		batch.Set(i, 1, rng.Range(-1, 1))
	}
	res := make([]BatchResult, batch.Rows)
	if err := w.QueryBatchInto(batch, res); err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Src != FromSurrogate {
			t.Fatalf("row %d fell back to the oracle; alloc pin needs pure surrogate serving", i)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := w.QueryBatchInto(batch, res); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state QueryBatchInto allocates %g times per batch, want 0", allocs)
	}
}

// TestQueryBatchChunksWiderThanCompiledWidth checks that batches wider
// than the surrogate's compiled MaxBatch are split across fused chunks
// with identical results to single-row queries (deterministic surrogate:
// no dropout, so predictions are exactly reproducible).
func TestQueryBatchChunksWiderThanCompiledWidth(t *testing.T) {
	w, sur := batchServingWrapper(t, 8, 0) // width 8, deterministic
	rng := xrand.New(0xa6)
	batch := tensor.NewMatrix(30, 2) // 4 chunks: 8+8+8+6
	for i := 0; i < batch.Rows; i++ {
		batch.Set(i, 0, rng.Range(-1, 1))
		batch.Set(i, 1, rng.Range(-1, 1))
	}
	res, err := w.QueryBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if res[i].Src != FromSurrogate {
			t.Fatalf("row %d not surrogate-served", i)
		}
		want := sur.Predict(batch.Row(i))
		if math.Abs(res[i].Y[0]-want[0]) > 1e-12 {
			t.Fatalf("row %d: chunked batch %g vs single predict %g", i, res[i].Y[0], want[0])
		}
		if res[i].Std[0] != 0 {
			t.Fatalf("deterministic surrogate row %d std %g, want 0", i, res[i].Std[0])
		}
	}
}

// TestShardedQueryBatchIntoReusesBuffers drives the sharded wrapper's
// buffer-reusing batch path across chunk-splitting widths and checks the
// answers stay consistent with the direct QueryBatch results.
func TestShardedQueryBatchIntoReusesBuffers(t *testing.T) {
	rng := xrand.New(0xbb18)
	oracle := OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		return []float64{x[0] - x[1]}, nil
	}}
	factory := NewNNSurrogateFactory(2, 1, []int{12}, 0, rng, func(s *NNSurrogate) {
		s.Epochs = 30
		s.MCPasses = 4
		s.MaxBatch = 4 // far narrower than the batches served
	})
	w := NewShardedWrapper(oracle, factory, ShardedConfig{
		Shards: 2, MinTrainSamples: 10, UQThreshold: 100,
	})
	design := tensor.NewMatrix(64, 2)
	for i := 0; i < design.Rows; i++ {
		design.Set(i, 0, rng.Range(-1, 1))
		design.Set(i, 1, rng.Range(-1, 1))
	}
	if err := w.Pretrain(design); err != nil {
		t.Fatal(err)
	}
	batch := tensor.NewMatrix(30, 2)
	for i := 0; i < batch.Rows; i++ {
		batch.Set(i, 0, rng.Range(-1, 1))
		batch.Set(i, 1, rng.Range(-1, 1))
	}
	want, err := w.QueryBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	res := make([]BatchResult, batch.Rows)
	for trial := 0; trial < 3; trial++ { // reuse res across calls
		if err := w.QueryBatchInto(batch, res); err != nil {
			t.Fatal(err)
		}
		for i := range res {
			if res[i].Src != FromSurrogate {
				t.Fatalf("trial %d row %d not surrogate-served", trial, i)
			}
			if math.Abs(res[i].Y[0]-want[i].Y[0]) > 1e-12 {
				t.Fatalf("trial %d row %d: Into %g vs QueryBatch %g", trial, i, res[i].Y[0], want[i].Y[0])
			}
		}
	}
}
