package core

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// atomicOracle is a concurrency-safe analytic oracle.
type atomicOracle struct {
	calls atomic.Int64
}

func (o *atomicOracle) Dims() (int, int) { return 2, 1 }

func (o *atomicOracle) Run(x []float64) ([]float64, error) {
	o.calls.Add(1)
	return []float64{math.Sin(x[0]) + 0.5*x[1]}, nil
}

// pretrainedWrapper returns a wrapper whose surrogate has already fit the
// toy oracle over the query region.
func pretrainedWrapper(t *testing.T, rng *xrand.Rand, cfg WrapperConfig) (*Wrapper, *atomicOracle) {
	t.Helper()
	oracle := &atomicOracle{}
	sur := NewNNSurrogate(2, 1, []int{24}, 0.1, rng)
	sur.Epochs = 120
	sur.MCPasses = 10
	w := NewWrapper(oracle, sur, cfg)
	design := tensor.NewMatrix(120, 2)
	for i := 0; i < 120; i++ {
		design.Set(i, 0, rng.Range(-2, 2))
		design.Set(i, 1, rng.Range(-1, 1))
	}
	if err := w.Pretrain(design); err != nil {
		t.Fatal(err)
	}
	return w, oracle
}

// TestWrapperConcurrentQueries hammers Query and QueryBatch from many
// goroutines while retraining is enabled, locking in the concurrency
// contract: surrogate reads run in parallel under the read lock,
// train/addSample take the write lock. Run with -race.
func TestWrapperConcurrentQueries(t *testing.T) {
	rng := xrand.New(404)
	w, _ := pretrainedWrapper(t, rng, WrapperConfig{
		MinTrainSamples: 10, RetrainEvery: 40, UQThreshold: 0.5,
	})

	const goroutines = 8
	const iters = 25
	var surrogateHits atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			grng := xrand.New(seed)
			for it := 0; it < iters; it++ {
				if it%3 == 0 {
					batch := tensor.NewMatrix(8, 2)
					for i := 0; i < batch.Rows; i++ {
						// Mostly in-distribution rows, a few far outside
						// so the UQ gate forces oracle fallbacks and
						// concurrent retrains.
						scale := 1.0
						if grng.Float64() < 0.1 {
							scale = 50
						}
						batch.Set(i, 0, scale*grng.Range(-2, 2))
						batch.Set(i, 1, scale*grng.Range(-1, 1))
					}
					res, err := w.QueryBatch(batch)
					if err != nil {
						t.Error(err)
						return
					}
					for i, r := range res {
						if r.Err != nil {
							t.Errorf("row %d: %v", i, r.Err)
							return
						}
						if len(r.Y) != 1 {
							t.Errorf("row %d: bad output %v", i, r.Y)
							return
						}
						if r.Src == FromSurrogate {
							surrogateHits.Add(1)
						}
					}
				} else {
					x := []float64{grng.Range(-2, 2), grng.Range(-1, 1)}
					y, src, _, err := w.Query(x)
					if err != nil {
						t.Error(err)
						return
					}
					if len(y) != 1 {
						t.Errorf("bad output %v", y)
						return
					}
					if src == FromSurrogate {
						surrogateHits.Add(1)
					}
				}
			}
		}(uint64(500 + g))
	}
	wg.Wait()

	if surrogateHits.Load() == 0 {
		t.Fatal("no queries served by the surrogate under concurrency")
	}
	led := w.Ledger()
	if led.NLookup != int(surrogateHits.Load()) {
		t.Fatalf("ledger lookups %d != observed surrogate answers %d", led.NLookup, surrogateHits.Load())
	}
	if got := w.TrainingSetSize(); got != led.NTrain {
		t.Fatalf("training set size %d != ledger simulations %d", got, led.NTrain)
	}
}

// gateStub is a deterministic BatchSurrogate: rows with |x0| <= 2 pass
// the UQ gate (std 0), others are rejected (std 1). It lets the batch
// semantics test pin the wrapper's routing and accounting exactly.
type gateStub struct{ trained bool }

func (s *gateStub) Train(x, y *tensor.Matrix) error { s.trained = true; return nil }
func (s *gateStub) Trained() bool                   { return s.trained }

func (s *gateStub) Predict(x []float64) []float64 { return []float64{42} }

func (s *gateStub) PredictWithUQ(x []float64) (mean, std []float64) {
	sd := 0.0
	if math.Abs(x[0]) > 2 {
		sd = 1
	}
	return []float64{42}, []float64{sd}
}

func (s *gateStub) PredictBatchWithUQ(x *tensor.Matrix) (mean, std *tensor.Matrix) {
	mean = tensor.NewMatrix(x.Rows, 1)
	std = tensor.NewMatrix(x.Rows, 1)
	for i := 0; i < x.Rows; i++ {
		m, sd := s.PredictWithUQ(x.Row(i))
		mean.Set(i, 0, m[0])
		std.Set(i, 0, sd[0])
	}
	return mean, std
}

// TestQueryBatchMatchesQuerySemantics checks the batch path agrees with
// the scalar path on provenance and training-set accounting.
func TestQueryBatchMatchesQuerySemantics(t *testing.T) {
	rng := xrand.New(405)
	oracle := &atomicOracle{}
	w := NewWrapper(oracle, &gateStub{trained: true}, WrapperConfig{
		MinTrainSamples: 1, UQThreshold: 0.5,
	})

	batch := tensor.NewMatrix(16, 2)
	for i := 0; i < 8; i++ { // in-gate rows served by the surrogate
		batch.Set(i, 0, rng.Range(-1, 1))
		batch.Set(i, 1, rng.Range(-1, 1))
	}
	for i := 8; i < 16; i++ { // out-of-gate rows must simulate
		batch.Set(i, 0, rng.Range(80, 100))
		batch.Set(i, 1, rng.Range(80, 100))
	}
	res, err := w.QueryBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	sim := 0
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("row %d: %v", i, r.Err)
		}
		switch r.Src {
		case FromSurrogate:
			if i >= 8 {
				t.Fatalf("rejected row %d served by surrogate", i)
			}
			if len(r.Std) != 1 || r.Y[0] != 42 {
				t.Fatalf("surrogate row %d bad answer %+v", i, r)
			}
		case FromSimulation:
			sim++
			if i < 8 {
				t.Fatalf("in-gate row %d fell back to simulation", i)
			}
			truth := math.Sin(batch.At(i, 0)) + 0.5*batch.At(i, 1)
			if math.Abs(r.Y[0]-truth) > 1e-12 {
				t.Fatalf("simulated row %d altered: %g want %g", i, r.Y[0], truth)
			}
		}
	}
	if sim != 8 {
		t.Fatalf("%d simulated rows want 8", sim)
	}
	if got := oracle.calls.Load(); got != 8 {
		t.Fatalf("oracle ran %d times want 8", got)
	}
	if got := w.TrainingSetSize(); got != 8 {
		t.Fatalf("training set grew by %d want 8", got)
	}
	led := w.Ledger()
	if led.NLookup != 8 || led.NRejected != 8 || led.NTrain != 8 {
		t.Fatalf("ledger accounting wrong: %+v", led)
	}
}

// TestQueryBatchEmptyAndColdStart covers the degenerate paths.
func TestQueryBatchEmptyAndColdStart(t *testing.T) {
	rng := xrand.New(406)
	oracle := &atomicOracle{}
	sur := NewNNSurrogate(2, 1, []int{8}, 0.1, rng)
	w := NewWrapper(oracle, sur, WrapperConfig{MinTrainSamples: 1000, UQThreshold: 0.5})

	if res, err := w.QueryBatch(tensor.NewMatrix(0, 2)); err != nil || res != nil {
		t.Fatalf("empty batch: %v %v", res, err)
	}
	batch := tensor.NewMatrix(4, 2)
	res, err := w.QueryBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Src != FromSimulation || r.Err != nil {
			t.Fatalf("cold-start row %d should simulate: %+v", i, r)
		}
	}
	if oracle.calls.Load() != 4 {
		t.Fatalf("oracle calls %d want 4", oracle.calls.Load())
	}
}
