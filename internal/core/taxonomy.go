package core

// Interface enumerates the six links between machine learning and HPC the
// paper identifies (§I, "Different Interfaces of ML and HPC"). The first
// two belong to the HPCforML category, the remaining four to MLforHPC.
type Interface int

// The paper's six ML↔HPC interface modes.
const (
	// HPCrunsML: using HPC to execute ML with high performance.
	HPCrunsML Interface = iota
	// SimulationTrainedML: HPC simulations train ML algorithms which are
	// then used to understand experimental data or simulations.
	SimulationTrainedML
	// MLautotuning: ML configures (autotunes) ML or HPC simulations —
	// block sizes, mesh sizes, timesteps, database/system knobs.
	MLautotuning
	// MLafterHPC: ML analyzes the results of HPC, as in trajectory
	// analysis and structure identification in biomolecular simulations.
	MLafterHPC
	// MLaroundHPC: ML learns from simulations and produces learned
	// surrogates of them, improving HPC effective performance.
	MLaroundHPC
	// MLControl: simulations (with HPC) embedded in control of experiments
	// and objective-driven computational campaigns.
	MLControl
)

// Category is one of the paper's two broad ML/HPC interaction directions.
type Category int

// The two broad categories.
const (
	// HPCforML: using HPC to execute and enhance ML performance.
	HPCforML Category = iota
	// MLforHPC: using ML to enhance HPC applications and systems. The
	// paper (and this repository) focuses here.
	MLforHPC
)

// String returns the interface name as written in the paper.
func (i Interface) String() string {
	switch i {
	case HPCrunsML:
		return "HPCrunsML"
	case SimulationTrainedML:
		return "SimulationTrainedML"
	case MLautotuning:
		return "MLautotuning"
	case MLafterHPC:
		return "MLafterHPC"
	case MLaroundHPC:
		return "MLaroundHPC"
	case MLControl:
		return "MLControl"
	default:
		return "unknown"
	}
}

// Category returns which broad direction the interface belongs to.
func (i Interface) Category() Category {
	switch i {
	case HPCrunsML, SimulationTrainedML:
		return HPCforML
	default:
		return MLforHPC
	}
}

// String returns the category name.
func (c Category) String() string {
	if c == HPCforML {
		return "HPCforML"
	}
	return "MLforHPC"
}

// AllInterfaces lists the six modes in paper order.
func AllInterfaces() []Interface {
	return []Interface{HPCrunsML, SimulationTrainedML, MLautotuning, MLafterHPC, MLaroundHPC, MLControl}
}
