package core

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// genSur is a deterministic published-generation stub: both outputs carry
// the generation it was built with, so a reader can detect a torn swap as
// a mismatch between the two.
type genSur struct {
	gen     float64
	trained bool
}

func (g *genSur) Train(x, y *tensor.Matrix) error { g.trained = true; return nil }
func (g *genSur) Trained() bool                   { return g.trained }
func (g *genSur) Predict(x []float64) []float64   { return []float64{g.gen, g.gen} }
func (g *genSur) PredictWithUQ(x []float64) (mean, std []float64) {
	return []float64{g.gen, g.gen}, []float64{0, 0}
}

// gatedSur blocks inside Train until released, signalling entry — the
// deterministic stand-in for a slow refit.
type gatedSur struct {
	genSur
	started chan struct{}
	release chan struct{}
}

func (g *gatedSur) Train(x, y *tensor.Matrix) error {
	close(g.started)
	<-g.release
	g.trained = true
	return nil
}

func twoOutOracle() OracleFunc {
	return OracleFunc{In: 2, Out: 2, F: func(x []float64) ([]float64, error) {
		return []float64{x[0], x[0]}, nil
	}}
}

// TestShardedServesDuringRefit is the stall-free contract, proven without
// timing assumptions: while a shard's refit is blocked inside Train,
// queries keep being answered by the previously published model, and the
// new model takes over only after the refit completes.
func TestShardedServesDuringRefit(t *testing.T) {
	gated := &gatedSur{
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
	gated.gen = 1
	var calls atomic.Int64
	factory := func() Surrogate {
		if calls.Add(1) == 1 {
			return &genSur{gen: 0}
		}
		return gated
	}
	w := NewShardedWrapper(twoOutOracle(), factory, ShardedConfig{
		Shards: 1, UQThreshold: 1, MinTrainSamples: 1,
	})
	seed := tensor.FromRows([][]float64{{0.5, 0.5}})
	seedY := tensor.FromRows([][]float64{{0.5, 0.5}})
	if err := w.Ingest(seed, seedY); err != nil {
		t.Fatal(err)
	}
	if err := w.TrainAll(); err != nil {
		t.Fatal(err)
	}

	w.Refit() // background refit, blocked inside gated.Train
	<-gated.started
	for i := 0; i < 25; i++ {
		y, src, _, err := w.Query([]float64{0.1, 0.2})
		if err != nil {
			t.Fatal(err)
		}
		if src != FromSurrogate || y[0] != 0 || y[1] != 0 {
			t.Fatalf("query during refit got src=%v y=%v; want old generation 0", src, y)
		}
	}
	close(gated.release)
	if err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	y, src, _, err := w.Query([]float64{0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if src != FromSurrogate || y[0] != 1 {
		t.Fatalf("query after refit got src=%v y=%v; want new generation 1", src, y)
	}
}

// TestTrainAllWinsOverStaleRefit pins the generation-ordered publish: a
// background refit that snapshotted before a TrainAll but finishes after
// it must be discarded, not overwrite the newer model.
func TestTrainAllWinsOverStaleRefit(t *testing.T) {
	gated := &gatedSur{
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
	gated.gen = 1
	var calls atomic.Int64
	factory := func() Surrogate {
		if calls.Add(1) == 1 {
			return gated
		}
		return &genSur{gen: 2}
	}
	w := NewShardedWrapper(twoOutOracle(), factory, ShardedConfig{
		Shards: 1, UQThreshold: 1, MinTrainSamples: 1,
	})
	if err := w.Ingest(
		tensor.FromRows([][]float64{{0, 0}}),
		tensor.FromRows([][]float64{{0, 0}}),
	); err != nil {
		t.Fatal(err)
	}
	w.Refit() // snapshot generation 0, blocked inside gated.Train
	<-gated.started
	if err := w.TrainAll(); err != nil { // snapshot generation 1, publishes gen 2
		t.Fatal(err)
	}
	close(gated.release) // stale refit completes; its publish must lose
	if err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	y, src, _, err := w.Query([]float64{0.1, 0.1})
	if err != nil || src != FromSurrogate {
		t.Fatalf("query failed: %v %v", src, err)
	}
	if y[0] != 2 {
		t.Fatalf("stale refit overwrote newer model: serving generation %g want 2", y[0])
	}
}

// TestShardedSwapNeverTorn hammers lookups from many goroutines while a
// publisher swaps generations, asserting every reader observes a complete
// model: both outputs agree, and the generations seen are nondecreasing
// (single atomic pointer per shard). Run with -race.
func TestShardedSwapNeverTorn(t *testing.T) {
	var gen atomic.Int64
	factory := func() Surrogate {
		return &genSur{gen: float64(gen.Add(1))}
	}
	w := NewShardedWrapper(twoOutOracle(), factory, ShardedConfig{
		Shards: 1, UQThreshold: 1, MinTrainSamples: 1,
	})
	if err := w.Ingest(
		tensor.FromRows([][]float64{{0, 0}}),
		tensor.FromRows([][]float64{{0, 0}}),
	); err != nil {
		t.Fatal(err)
	}
	if err := w.TrainAll(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := 0.0
			for {
				select {
				case <-stop:
					return
				default:
				}
				y, src, _, err := w.Query([]float64{0.3, 0.7})
				if err != nil || src != FromSurrogate {
					t.Errorf("lookup failed mid-swap: src=%v err=%v", src, err)
					return
				}
				if y[0] != y[1] {
					t.Errorf("torn surrogate state observed: %v", y)
					return
				}
				if y[0] < last {
					t.Errorf("generation went backwards: %g after %g", y[0], last)
					return
				}
				last = y[0]
			}
		}()
	}
	for i := 0; i < 40; i++ {
		w.Refit()
		if err := w.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestRouters pins the routing contracts: determinism across instances,
// full-range coverage for the hash router, and kd-bucket boundaries.
func TestRouters(t *testing.T) {
	rng := xrand.New(77)
	h1 := HashRouter{Shards: 8}
	h2 := HashRouter{Shards: 8}
	hits := make([]int, 8)
	for i := 0; i < 512; i++ {
		x := []float64{rng.Range(-5, 5), rng.Range(-5, 5), rng.Range(-5, 5)}
		s := h1.Route(x)
		if s != h2.Route(x) {
			t.Fatal("hash routing differs across router instances")
		}
		if s < 0 || s >= 8 {
			t.Fatalf("hash route %d out of range", s)
		}
		hits[s]++
	}
	for s, n := range hits {
		if n == 0 {
			t.Fatalf("hash router never used shard %d over 512 points", s)
		}
	}
	// Quantized hashing co-locates near-identical points.
	q := HashRouter{Shards: 16, Quantum: 0.5}
	if q.Route([]float64{1.01, 2.02}) != q.Route([]float64{1.24, 2.24}) {
		t.Fatal("quantized hash split points inside one cell")
	}

	kd := KDRouter{Dim: 1, Cuts: []float64{-1, 0, 1}}
	if kd.NumShards() != 4 {
		t.Fatalf("kd shards %d want 4", kd.NumShards())
	}
	cases := map[float64]int{-5: 0, -1: 1, -0.5: 1, 0: 2, 0.99: 2, 1: 3, 7: 3}
	for v, want := range cases {
		if got := kd.Route([]float64{0, v}); got != want {
			t.Fatalf("kd route(%g) = %d want %d", v, got, want)
		}
	}
}

// TestShardedRoutingDeterministicForSeed checks the serving pipeline is
// reproducible: two identically seeded wrappers route identically and,
// after identical training, predict identically.
func TestShardedRoutingDeterministicForSeed(t *testing.T) {
	build := func() *ShardedWrapper {
		rng := xrand.New(1234)
		factory := NewNNSurrogateFactory(2, 1, []int{8}, 0.1, rng, func(s *NNSurrogate) {
			s.Epochs = 40
			s.MCPasses = 5
		})
		return NewShardedWrapper(OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
			return []float64{x[0] + x[1]}, nil
		}}, factory, ShardedConfig{Shards: 3, UQThreshold: 10, MinTrainSamples: 5})
	}
	a, b := build(), build()
	rng := xrand.New(55)
	xs := tensor.NewMatrix(60, 2)
	ys := tensor.NewMatrix(60, 1)
	for i := 0; i < 60; i++ {
		xs.Set(i, 0, rng.Range(-1, 1))
		xs.Set(i, 1, rng.Range(-1, 1))
		ys.Set(i, 0, xs.At(i, 0)+xs.At(i, 1))
	}
	for i := 0; i < xs.Rows; i++ {
		if a.Route(xs.Row(i)) != b.Route(xs.Row(i)) {
			t.Fatal("routing differs between identically configured wrappers")
		}
	}
	if err := a.Ingest(xs, ys); err != nil {
		t.Fatal(err)
	}
	if err := b.Ingest(xs, ys); err != nil {
		t.Fatal(err)
	}
	sa, sb := a.ShardSizes(), b.ShardSizes()
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("shard sizes diverge: %v vs %v", sa, sb)
		}
	}
	if err := a.TrainAll(); err != nil {
		t.Fatal(err)
	}
	if err := b.TrainAll(); err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.25, -0.4}
	ya, srcA, _, err := a.Query(probe)
	if err != nil {
		t.Fatal(err)
	}
	yb, srcB, _, err := b.Query(probe)
	if err != nil {
		t.Fatal(err)
	}
	if srcA != srcB || ya[0] != yb[0] {
		t.Fatalf("identically seeded wrappers disagree: %v/%v vs %v/%v", ya, srcA, yb, srcB)
	}
}

// shardGateStub serves rows with |x0| <= 2 (std 0) and rejects the rest
// (std 1), mirroring the single-wrapper batch-semantics stub.
type shardGateStub struct{ trained bool }

func (s *shardGateStub) Train(x, y *tensor.Matrix) error { s.trained = true; return nil }
func (s *shardGateStub) Trained() bool                   { return s.trained }
func (s *shardGateStub) Predict(x []float64) []float64   { return []float64{42} }
func (s *shardGateStub) PredictWithUQ(x []float64) (mean, std []float64) {
	sd := 0.0
	if math.Abs(x[0]) > 2 {
		sd = 1
	}
	return []float64{42}, []float64{sd}
}
func (s *shardGateStub) PredictBatchWithUQ(x *tensor.Matrix) (mean, std *tensor.Matrix) {
	mean = tensor.NewMatrix(x.Rows, 1)
	std = tensor.NewMatrix(x.Rows, 1)
	for i := 0; i < x.Rows; i++ {
		m, sd := s.PredictWithUQ(x.Row(i))
		mean.Set(i, 0, m[0])
		std.Set(i, 0, sd[0])
	}
	return mean, std
}

// TestShardedQueryBatchSemantics pins routing, provenance and accounting
// through the partitioned batch path with fan-out enabled.
func TestShardedQueryBatchSemantics(t *testing.T) {
	oracle := &atomicOracle{}
	w := NewShardedWrapper(oracle, func() Surrogate { return &shardGateStub{} }, ShardedConfig{
		Shards: 2, UQThreshold: 0.5, MinTrainSamples: 1, OracleWorkers: 4,
	})
	rng := xrand.New(91)
	seedX := tensor.NewMatrix(16, 2)
	seedY := tensor.NewMatrix(16, 1)
	for i := 0; i < 16; i++ {
		seedX.Set(i, 0, rng.Range(-2, 2))
		seedX.Set(i, 1, rng.Range(-1, 1))
		seedY.Set(i, 0, 1)
	}
	if err := w.Ingest(seedX, seedY); err != nil {
		t.Fatal(err)
	}
	for _, n := range w.ShardSizes() {
		if n == 0 {
			t.Fatal("seed corpus left a shard empty; pick different seed points")
		}
	}
	if err := w.TrainAll(); err != nil {
		t.Fatal(err)
	}
	before := w.TrainingSetSize()

	batch := tensor.NewMatrix(16, 2)
	for i := 0; i < 8; i++ { // in-gate rows
		batch.Set(i, 0, rng.Range(-1, 1))
		batch.Set(i, 1, rng.Range(-1, 1))
	}
	for i := 8; i < 16; i++ { // out-of-gate rows must simulate
		batch.Set(i, 0, rng.Range(80, 100))
		batch.Set(i, 1, rng.Range(80, 100))
	}
	res, err := w.QueryBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("row %d: %v", i, r.Err)
		}
		if i < 8 {
			if r.Src != FromSurrogate || r.Y[0] != 42 {
				t.Fatalf("in-gate row %d not served by surrogate: %+v", i, r)
			}
		} else {
			if r.Src != FromSimulation {
				t.Fatalf("out-of-gate row %d not simulated: %+v", i, r)
			}
			truth := math.Sin(batch.At(i, 0)) + 0.5*batch.At(i, 1)
			if math.Abs(r.Y[0]-truth) > 1e-12 {
				t.Fatalf("simulated row %d altered: %g want %g", i, r.Y[0], truth)
			}
		}
	}
	if got := oracle.calls.Load(); got != 8 {
		t.Fatalf("oracle ran %d times want 8", got)
	}
	if grew := w.TrainingSetSize() - before; grew != 8 {
		t.Fatalf("training set grew by %d want 8", grew)
	}
	led := w.Ledger()
	if led.NLookup != 8 || led.NRejected != 8 || led.NTrain != 8 {
		t.Fatalf("ledger accounting wrong: %+v", led)
	}
	if err := w.Wait(); err != nil {
		t.Fatal(err)
	}
}

// barrierOracle refuses to let any Run return until `need` calls are in
// flight simultaneously — a deterministic witness of real fan-out.
type barrierOracle struct {
	need    int64
	cur     atomic.Int64
	release chan struct{}
	once    sync.Once
}

func (o *barrierOracle) Dims() (int, int) { return 2, 1 }

func (o *barrierOracle) Run(x []float64) ([]float64, error) {
	if o.cur.Add(1) >= o.need {
		o.once.Do(func() { close(o.release) })
	}
	select {
	case <-o.release:
		return []float64{x[0]}, nil
	case <-time.After(10 * time.Second):
		return nil, errors.New("fan-out never reached target concurrency")
	}
}

// TestQueryBatchOracleFanout proves the rejected-row fallback really runs
// oracles concurrently: with 4 workers and 4 misses, all 4 calls must be
// in flight at once for any to complete.
func TestQueryBatchOracleFanout(t *testing.T) {
	oracle := &barrierOracle{need: 4, release: make(chan struct{})}
	rng := xrand.New(17)
	sur := NewNNSurrogate(2, 1, []int{4}, 0.1, rng)
	w := NewWrapper(oracle, sur, WrapperConfig{
		MinTrainSamples: 1 << 30, UQThreshold: 0.5, OracleWorkers: 4,
	})
	batch := tensor.NewMatrix(4, 2)
	for i := range batch.Data {
		batch.Data[i] = rng.Range(-1, 1)
	}
	res, err := w.QueryBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("row %d: %v", i, r.Err)
		}
		if r.Src != FromSimulation || r.Y[0] != batch.At(i, 0) {
			t.Fatalf("row %d wrong answer %+v", i, r)
		}
	}
}

// TestShardedEndToEnd exercises the full NN pipeline under concurrency:
// pretraining through the fan-out pool, concurrent Query/QueryBatch with
// background refits, and clean Wait. Run with -race.
func TestShardedEndToEnd(t *testing.T) {
	rng := xrand.New(404)
	oracle := &atomicOracle{}
	factory := NewNNSurrogateFactory(2, 1, []int{24}, 0.1, rng, func(s *NNSurrogate) {
		s.Epochs = 80
		s.MCPasses = 8
	})
	w := NewShardedWrapper(oracle, factory, ShardedConfig{
		Shards: 2, UQThreshold: 0.5, MinTrainSamples: 10,
		RetrainEvery: 25, OracleWorkers: 4,
	})
	design := tensor.NewMatrix(120, 2)
	for i := 0; i < 120; i++ {
		design.Set(i, 0, rng.Range(-2, 2))
		design.Set(i, 1, rng.Range(-1, 1))
	}
	if err := w.Pretrain(design); err != nil {
		t.Fatal(err)
	}
	if w.TrainingSetSize() != 120 {
		t.Fatalf("pretrain stored %d samples want 120", w.TrainingSetSize())
	}

	var surrogateHits atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			grng := xrand.New(seed)
			for it := 0; it < 20; it++ {
				if it%3 == 0 {
					batch := tensor.NewMatrix(8, 2)
					for i := 0; i < batch.Rows; i++ {
						scale := 1.0
						if grng.Float64() < 0.15 {
							scale = 50 // force fallbacks and background refits
						}
						batch.Set(i, 0, scale*grng.Range(-2, 2))
						batch.Set(i, 1, scale*grng.Range(-1, 1))
					}
					res, err := w.QueryBatch(batch)
					if err != nil {
						t.Error(err)
						return
					}
					for i, r := range res {
						if r.Err != nil || len(r.Y) != 1 {
							t.Errorf("row %d bad result %+v", i, r)
							return
						}
						if r.Src == FromSurrogate {
							surrogateHits.Add(1)
						}
					}
				} else {
					x := []float64{grng.Range(-2, 2), grng.Range(-1, 1)}
					y, src, _, err := w.Query(x)
					if err != nil || len(y) != 1 {
						t.Errorf("query failed: %v %v", y, err)
						return
					}
					if src == FromSurrogate {
						surrogateHits.Add(1)
					}
				}
			}
		}(uint64(700 + g))
	}
	wg.Wait()
	if err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	if surrogateHits.Load() == 0 {
		t.Fatal("no queries served by surrogates under concurrency")
	}
	led := w.Ledger()
	if led.NLookup != int(surrogateHits.Load()) {
		t.Fatalf("ledger lookups %d != observed surrogate answers %d", led.NLookup, surrogateHits.Load())
	}
	if got := w.TrainingSetSize(); got != led.NTrain {
		t.Fatalf("training set size %d != ledger simulations %d", got, led.NTrain)
	}
}

// TestShardedRefitFailureKeepsServing checks a failing background refit
// surfaces through Wait while the previous model keeps serving.
func TestShardedRefitFailureKeepsServing(t *testing.T) {
	var calls atomic.Int64
	trainErr := errors.New("synthetic divergence")
	factory := func() Surrogate {
		if calls.Add(1) == 1 {
			return &genSur{gen: 7}
		}
		return &failSur{err: trainErr}
	}
	w := NewShardedWrapper(twoOutOracle(), factory, ShardedConfig{
		Shards: 1, UQThreshold: 1, MinTrainSamples: 1,
	})
	if err := w.Ingest(
		tensor.FromRows([][]float64{{0, 0}}),
		tensor.FromRows([][]float64{{0, 0}}),
	); err != nil {
		t.Fatal(err)
	}
	if err := w.TrainAll(); err != nil {
		t.Fatal(err)
	}
	w.Refit()
	if err := w.Wait(); !errors.Is(err, trainErr) {
		t.Fatalf("Wait returned %v want %v", err, trainErr)
	}
	if err := w.Wait(); err != nil {
		t.Fatalf("second Wait should have cleared the error, got %v", err)
	}
	y, src, _, err := w.Query([]float64{0.1, 0.1})
	if err != nil || src != FromSurrogate || y[0] != 7 {
		t.Fatalf("failed refit disturbed serving: %v %v %v", y, src, err)
	}
}

// gateGenSur carries a generation and rejects |x0| > 2, so tests can
// steer rows between the surrogate and the oracle deterministically.
type gateGenSur struct {
	gen     float64
	trained bool
}

func (g *gateGenSur) Train(x, y *tensor.Matrix) error { g.trained = true; return nil }
func (g *gateGenSur) Trained() bool                   { return g.trained }
func (g *gateGenSur) Predict(x []float64) []float64   { return []float64{g.gen, g.gen} }
func (g *gateGenSur) PredictWithUQ(x []float64) (mean, std []float64) {
	sd := 0.0
	if math.Abs(x[0]) > 2 {
		sd = 1
	}
	return []float64{g.gen, g.gen}, []float64{sd, sd}
}

// TestShardedFailedRefitKeepsRetrainCredit locks in the failure-path
// accounting: a refit that errors gives back the RetrainEvery credit its
// snapshot absorbed, so the very next sample retries instead of waiting
// for a whole fresh window.
func TestShardedFailedRefitKeepsRetrainCredit(t *testing.T) {
	trainErr := errors.New("synthetic divergence")
	var calls atomic.Int64
	factory := func() Surrogate {
		switch calls.Add(1) {
		case 1:
			return &gateGenSur{gen: 1}
		case 2:
			return &failSur{err: trainErr}
		default:
			return &gateGenSur{gen: 2}
		}
	}
	w := NewShardedWrapper(twoOutOracle(), factory, ShardedConfig{
		Shards: 1, UQThreshold: 0.5, MinTrainSamples: 1, RetrainEvery: 2,
	})
	// First oracle query trips the first fit (generation 1).
	if _, _, _, err := w.Query([]float64{10, 0}); err != nil {
		t.Fatal(err)
	}
	if err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	// Two more rejected queries reach RetrainEvery and spawn the failing
	// refit; its credit must be restored.
	for i := 0; i < 2; i++ {
		if _, _, _, err := w.Query([]float64{10, 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Wait(); !errors.Is(err, trainErr) {
		t.Fatalf("Wait returned %v want %v", err, trainErr)
	}
	// With the credit restored, a single further sample must retry the
	// refit (which now succeeds and publishes generation 2).
	if _, _, _, err := w.Query([]float64{10, 0}); err != nil {
		t.Fatal(err)
	}
	if err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	y, src, _, err := w.Query([]float64{1, 0})
	if err != nil || src != FromSurrogate {
		t.Fatalf("in-gate query failed: %v %v", src, err)
	}
	if y[0] != 2 {
		t.Fatalf("served generation %g want 2 (failed refit must retry on next sample)", y[0])
	}
}

// TestPretrainAbortsEarlyKeepsSuccesses pins the pretrain fan-out cost
// profile: a deterministic failure stops the campaign instead of burning
// the remaining (expensive) runs, while samples already computed are kept
// ("no run is wasted").
func TestPretrainAbortsEarlyKeepsSuccesses(t *testing.T) {
	var calls atomic.Int64
	oracle := OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		if calls.Add(1) == 3 {
			return nil, errors.New("rig crashed")
		}
		return []float64{x[0]}, nil
	}}
	rng := xrand.New(33)
	sur := NewNNSurrogate(2, 1, []int{4}, 0.1, rng)
	w := NewWrapper(oracle, sur, WrapperConfig{MinTrainSamples: 1 << 30, UQThreshold: 1})
	design := tensor.NewMatrix(10, 2)
	for i := range design.Data {
		design.Data[i] = rng.Range(-1, 1)
	}
	err := w.Pretrain(design)
	if err == nil {
		t.Fatal("pretrain swallowed the oracle failure")
	}
	// Sequential fallback (OracleWorkers unset): exactly 3 runs happened —
	// the failure aborted the other 7.
	if got := calls.Load(); got != 3 {
		t.Fatalf("oracle ran %d times want 3 (early abort)", got)
	}
	if got := w.TrainingSetSize(); got != 2 {
		t.Fatalf("kept %d successful samples want 2", got)
	}
}

// failSur always fails to train.
type failSur struct{ err error }

func (f *failSur) Train(x, y *tensor.Matrix) error { return f.err }
func (f *failSur) Trained() bool                   { return false }
func (f *failSur) Predict(x []float64) []float64   { panic("untrained") }
func (f *failSur) PredictWithUQ(x []float64) (mean, std []float64) {
	panic("untrained")
}

// meanSur is a deterministic surrogate that learns the column means of
// its training targets and predicts them with zero claimed uncertainty —
// a fixed model whose residual against shifted data is exactly the shift.
type meanSur struct {
	mean    []float64
	trained bool
}

func (m *meanSur) Train(x, y *tensor.Matrix) error {
	m.mean = make([]float64, y.Cols)
	for i := 0; i < y.Rows; i++ {
		for j := 0; j < y.Cols; j++ {
			m.mean[j] += y.At(i, j)
		}
	}
	for j := range m.mean {
		m.mean[j] /= float64(y.Rows)
	}
	m.trained = true
	return nil
}

func (m *meanSur) Trained() bool                 { return m.trained }
func (m *meanSur) Predict(x []float64) []float64 { return append([]float64(nil), m.mean...) }

// PredictBatch implements BatchPredictor, so the drift tests exercise
// the batched residual path end to end.
func (m *meanSur) PredictBatch(x *tensor.Matrix) *tensor.Matrix {
	out := tensor.NewMatrix(x.Rows, len(m.mean))
	for i := 0; i < x.Rows; i++ {
		copy(out.Row(i), m.mean)
	}
	return out
}
func (m *meanSur) PredictWithUQ(x []float64) (mean, std []float64) {
	return m.Predict(x), make([]float64, len(m.mean))
}

// TestShardedDriftTriggeredRefit pins the adaptive-retrain contract:
// ingesting data the published model still explains leaves the shard
// clean, a residual shift past DriftFactor × the post-publish baseline
// marks it drifted (visible in Status), RefitStale retrains it even
// though RetrainEvery is disabled, and the publish clears the drift
// state. A second drift burst then proves the query path's own refit
// trigger honours the drift flag too.
func TestShardedDriftTriggeredRefit(t *testing.T) {
	oracle := OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		return []float64{-3}, nil
	}}
	w := NewShardedWrapper(oracle, func() Surrogate { return &meanSur{} }, ShardedConfig{
		Router:          HashRouter{Shards: 1},
		MinTrainSamples: 4,
		RetrainEvery:    0,  // drift is the only retrain trigger
		UQThreshold:     -1, // every query falls back to the oracle
		DriftFactor:     2,
	})

	ingest := func(n int, y func(i int) float64) {
		xs := tensor.NewMatrix(n, 2)
		ys := tensor.NewMatrix(n, 1)
		for i := 0; i < n; i++ {
			xs.Set(i, 0, float64(i))
			ys.Set(i, 0, y(i))
		}
		if err := w.Ingest(xs, ys); err != nil {
			t.Fatal(err)
		}
	}

	// Seed and publish the first model (mean ≈ 1).
	ingest(8, func(i int) float64 { return 1 + 0.01*math.Sin(float64(i)) })
	if err := w.TrainAll(); err != nil {
		t.Fatal(err)
	}
	gen0 := w.Status()[0].Generation
	if gen0 < 0 {
		t.Fatal("first model never published")
	}

	// Consistent data: warms the baseline, no drift.
	ingest(24, func(i int) float64 { return 1 + 0.01*math.Sin(float64(i)) })
	if st := w.Status()[0]; st.Drifted {
		t.Fatalf("consistent ingest marked the shard drifted: %+v", st)
	}

	// Shifted data: residual jumps from ~0.006 to ~4.
	ingest(24, func(int) float64 { return 5 })
	st := w.Status()[0]
	if !st.Drifted {
		t.Fatalf("shifted ingest did not mark the shard drifted: %+v", st)
	}
	if st.DriftRatio <= 2 {
		t.Fatalf("drift ratio %.2f, want > DriftFactor 2", st.DriftRatio)
	}

	// RefitStale picks the drifted shard up and the publish clears it.
	if spawned := w.RefitStale(); spawned != 1 {
		t.Fatalf("RefitStale spawned %d refits, want 1", spawned)
	}
	if err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	st = w.Status()[0]
	if st.Drifted || st.Generation <= gen0 {
		t.Fatalf("refit did not clear drift / advance generation: %+v", st)
	}

	// Second drift burst, drained through the query path this time: with
	// RetrainEvery disabled, only the drift flag can make the fallback
	// sample's refit check fire.
	ingest(24, func(int) float64 { return -3 })
	if st := w.Status()[0]; !st.Drifted {
		t.Fatalf("second shift did not re-mark drift: %+v", st)
	}
	gen1 := st.Generation
	if _, src, _, err := w.Query([]float64{0.5, 0.5}); err != nil || src != FromSimulation {
		t.Fatalf("query = (%v, %v), want an oracle fallback", src, err)
	}
	if err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	st = w.Status()[0]
	if st.Drifted || st.Generation <= gen1 {
		t.Fatalf("query-path drift refit never ran: %+v", st)
	}
}

// gatedMeanSur is a meanSur whose Train blocks until released,
// signalling entry — the deterministic stand-in for a slow drift refit.
type gatedMeanSur struct {
	meanSur
	started chan struct{}
	release chan struct{}
}

func (g *gatedMeanSur) Train(x, y *tensor.Matrix) error {
	close(g.started)
	<-g.release
	return g.meanSur.Train(x, y)
}

// TestDriftRaisedMidRefitSurvivesPublish pins the snapshot-coverage
// contract of the drift flag: drift tripped by samples ingested AFTER a
// refit's snapshot was taken must survive that refit's publish (the new
// model never saw those samples) and chain a follow-up refit that does.
func TestDriftRaisedMidRefitSurvivesPublish(t *testing.T) {
	oracle := OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		return []float64{0}, nil
	}}
	gated := &gatedMeanSur{started: make(chan struct{}), release: make(chan struct{})}
	fits := 0
	w := NewShardedWrapper(oracle, func() Surrogate {
		fits++
		if fits == 2 {
			return gated // the drift-triggered refit, held in flight
		}
		return &meanSur{}
	}, ShardedConfig{
		Router:          HashRouter{Shards: 1},
		MinTrainSamples: 4,
		RetrainEvery:    0,
		DriftFactor:     2,
	})

	ingest := func(n int, v float64) {
		xs := tensor.NewMatrix(n, 2)
		ys := tensor.NewMatrix(n, 1)
		for i := 0; i < n; i++ {
			xs.Set(i, 0, float64(i))
			ys.Set(i, 0, v+0.01*math.Sin(float64(i)))
		}
		if err := w.Ingest(xs, ys); err != nil {
			t.Fatal(err)
		}
	}

	ingest(8, 1)
	if err := w.TrainAll(); err != nil { // fit #1: publishes mean≈1
		t.Fatal(err)
	}
	ingest(16, 5) // regime shift: trips drift against model #1
	if !w.Status()[0].Drifted {
		t.Fatal("first shift did not trip drift")
	}
	if spawned := w.RefitStale(); spawned != 1 { // fit #2: gated
		t.Fatalf("RefitStale spawned %d, want 1", spawned)
	}
	<-gated.started
	// While fit #2 trains on its snapshot, a second regime shift arrives:
	// these samples are in no snapshot, and must re-trip drift.
	ingest(16, -4)
	if !w.Status()[0].Drifted {
		t.Fatal("mid-refit shift did not trip drift")
	}
	close(gated.release)
	if err := w.Wait(); err != nil { // drains fit #2 AND the chained fit #3
		t.Fatal(err)
	}
	st := w.Status()[0]
	if st.Drifted {
		t.Fatalf("drift flag not cleared after a covering refit: %+v", st)
	}
	if st.Generation < 2 {
		t.Fatalf("generation %d: the publish of the stale snapshot swallowed the drift flag instead of chaining a follow-up refit", st.Generation)
	}
	if fits < 3 {
		t.Fatalf("%d fits ran; the mid-refit drift never chained its own refit", fits)
	}
}

// constSur is a minimal Surrogate WITHOUT the BatchPredictor capability:
// drift residuals for it must flow through the per-row fallback.
type constSur struct{ trained bool }

func (c *constSur) Train(x, y *tensor.Matrix) error { c.trained = true; return nil }
func (c *constSur) Trained() bool                   { return c.trained }
func (c *constSur) Predict(x []float64) []float64   { return []float64{0} }
func (c *constSur) PredictWithUQ(x []float64) (mean, std []float64) {
	return []float64{0}, []float64{0}
}

// TestDriftResidualFallbackPath checks drift tracking still works for
// surrogates that cannot batch-predict: the per-row residual fallback
// trips the flag just the same.
func TestDriftResidualFallbackPath(t *testing.T) {
	oracle := OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		return []float64{0}, nil
	}}
	w := NewShardedWrapper(oracle, func() Surrogate { return &constSur{} }, ShardedConfig{
		Router:          HashRouter{Shards: 1},
		MinTrainSamples: 2,
		DriftFactor:     2,
	})
	seed := tensor.NewMatrix(4, 2)
	seedY := tensor.NewMatrix(4, 1)
	seedY.Fill(1) // constSur predicts 0 → in-sample baseline 1
	if err := w.Ingest(seed, seedY); err != nil {
		t.Fatal(err)
	}
	if err := w.TrainAll(); err != nil {
		t.Fatal(err)
	}
	shifted := tensor.NewMatrix(16, 2)
	shiftedY := tensor.NewMatrix(16, 1)
	shiftedY.Fill(5) // residual 5 > 2 × baseline 1
	if err := w.Ingest(shifted, shiftedY); err != nil {
		t.Fatal(err)
	}
	if st := w.Status()[0]; !st.Drifted || st.DriftRatio <= 2 {
		t.Fatalf("per-row fallback never tripped drift: %+v", st)
	}
}
