package core

import (
	"math"
	"testing"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// TestKDCutsDeterminismAndBalance pins the auto-tuned kd partition: the
// cuts are a pure function of the sample multiset (identical across
// calls and across row orderings) and routing the very distribution they
// were fit on through a KDRouter lands each shard within a small
// tolerance of the equal-mass share — including for a skewed,
// non-uniform distribution, which is the case static evenly spaced cuts
// get badly wrong.
func TestKDCutsDeterminismAndBalance(t *testing.T) {
	rng := xrand.New(0x4dc)
	const n, shards, dim = 4000, 5, 1
	samples := tensor.NewMatrix(n, 3)
	for i := 0; i < n; i++ {
		samples.Set(i, 0, rng.Range(-1, 1))
		// Skewed: squaring concentrates mass near 0.
		v := rng.Range(0, 1)
		samples.Set(i, dim, v*v)
		samples.Set(i, 2, rng.Range(-1, 1))
	}

	cuts := KDCutsFromSamples(samples, dim, shards)
	if len(cuts) != shards-1 {
		t.Fatalf("got %d cuts for %d shards, want %d", len(cuts), shards, shards-1)
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			t.Fatalf("cuts not strictly increasing: %v", cuts)
		}
	}

	// Determinism: same multiset, different row order, same cuts.
	perm := samples.Clone()
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		for c := 0; c < perm.Cols; c++ {
			vi, vj := perm.At(i, c), perm.At(j, c)
			perm.Set(i, c, vj)
			perm.Set(j, c, vi)
		}
	}
	again := KDCutsFromSamples(perm, dim, shards)
	if len(again) != len(cuts) {
		t.Fatalf("permuted sample set changed cut count: %v vs %v", again, cuts)
	}
	for i := range cuts {
		if cuts[i] != again[i] {
			t.Fatalf("cuts not deterministic under row permutation: %v vs %v", cuts, again)
		}
	}

	// Balance: route the fitted distribution, expect ~n/shards per shard.
	router := KDRouter{Dim: dim, Cuts: cuts}
	if router.NumShards() != shards {
		t.Fatalf("router has %d shards, want %d", router.NumShards(), shards)
	}
	counts := make([]int, shards)
	for i := 0; i < n; i++ {
		counts[router.Route(samples.Row(i))]++
	}
	want := float64(n) / float64(shards)
	for si, c := range counts {
		if math.Abs(float64(c)-want) > 0.02*float64(n) {
			t.Fatalf("shard %d holds %d of %d samples (want ~%.0f): %v", si, c, n, want, counts)
		}
	}
}

// TestKDCutsEdgeCases covers the degenerate inputs: empty samples, a
// single shard, and an all-equal column (where any cut would strand an
// empty shard, so none is produced).
func TestKDCutsEdgeCases(t *testing.T) {
	empty := tensor.NewMatrix(0, 2)
	if cuts := KDCutsFromSamples(empty, 0, 4); cuts != nil {
		t.Fatalf("empty samples produced cuts %v", cuts)
	}
	one := tensor.NewMatrix(10, 2)
	if cuts := KDCutsFromSamples(one, 0, 1); cuts != nil {
		t.Fatalf("single shard produced cuts %v", cuts)
	}
	flat := tensor.NewMatrix(100, 2)
	flat.Fill(3.5)
	if cuts := KDCutsFromSamples(flat, 1, 4); cuts != nil {
		t.Fatalf("all-equal column produced cuts %v (would strand empty shards)", cuts)
	}
	// Two distinct values still yield a usable (possibly shorter) cut list.
	bi := tensor.NewMatrix(100, 1)
	for i := 0; i < 100; i++ {
		if i%2 == 0 {
			bi.Set(i, 0, 1)
		} else {
			bi.Set(i, 0, 2)
		}
	}
	cuts := KDCutsFromSamples(bi, 0, 4)
	if len(cuts) != 1 || cuts[0] != 2 {
		t.Fatalf("bimodal column cuts = %v, want the single separating cut [2]", cuts)
	}
}
