package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/parallel"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// This file implements stall-free serving: the ShardedWrapper partitions
// the input space across shards, gives every shard a double-buffered
// surrogate (train the next model on a snapshot while the current one
// serves, publish with an atomic pointer swap), and fans oracle fallbacks
// out over a bounded worker pool. Query and QueryBatch never block on a
// refit — the MLaroundHPC loop keeps learning from fresh oracle results
// without ever freezing its readers.

// Router assigns input points to shards. Implementations must be
// deterministic pure functions of x — the same point always lands in the
// same shard — and safe for concurrent use.
type Router interface {
	// Route returns the shard index for x, in [0, NumShards()).
	Route(x []float64) int
	// NumShards returns the shard count this router fans across.
	NumShards() int
}

// HashRouter distributes points by an FNV-1a hash of their (optionally
// quantized) coordinates: a stateless, dimension-agnostic partition that
// balances load for any input distribution.
type HashRouter struct {
	Shards int
	// Quantum, when positive, snaps each coordinate onto a grid of this
	// pitch before hashing so near-identical inputs co-locate; zero hashes
	// the raw float bits.
	Quantum float64
}

// NumShards implements Router.
func (r HashRouter) NumShards() int { return r.Shards }

// Route implements Router.
func (r HashRouter) Route(x []float64) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range x {
		if r.Quantum > 0 {
			v = math.Floor(v / r.Quantum)
		}
		b := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			h ^= (b >> s) & 0xff
			h *= prime64
		}
	}
	return int(h % uint64(r.Shards))
}

// KDRouter buckets points along one input dimension by ascending cut
// values — the 1-level kd-partition that keeps spatially local queries on
// the same shard (and its surrogate specialized to that region). Cuts of
// length k produce k+1 shards.
type KDRouter struct {
	Dim  int
	Cuts []float64
}

// NumShards implements Router.
func (r KDRouter) NumShards() int { return len(r.Cuts) + 1 }

// Route implements Router via binary search over the cuts.
func (r KDRouter) Route(x []float64) int {
	lo, hi := 0, len(r.Cuts)
	for lo < hi {
		mid := (lo + hi) / 2
		if x[r.Dim] < r.Cuts[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// BatchPredictor is an optional Surrogate capability: one deterministic
// point-prediction pass amortized over a whole batch (NNSurrogate serves
// it from the compiled batch program). The drift tracker's bulk paths —
// Ingest residuals and the publish-time baseline — prefer it over
// per-row Predict calls.
type BatchPredictor interface {
	// PredictBatch returns per-row point predictions (original units)
	// for every row of x. The returned matrix is caller-owned.
	PredictBatch(x *tensor.Matrix) *tensor.Matrix
}

// batchResiduals computes per-row mean-absolute residuals of sur's
// predictions for the xs rows indexed by idx (nil idx = all rows)
// against their ys counterparts, through one batched pass when sur
// supports it.
func batchResiduals(sur Surrogate, xs, ys *tensor.Matrix, idx []int) []float64 {
	n := len(idx)
	if idx == nil {
		n = xs.Rows
	}
	row := func(k int) int {
		if idx == nil {
			return k
		}
		return idx[k]
	}
	resids := make([]float64, n)
	if bp, ok := sur.(BatchPredictor); ok {
		var sub *tensor.Matrix
		if idx == nil {
			sub = xs
		} else {
			sub = tensor.GatherRowsInto(nil, xs, idx)
		}
		pred := bp.PredictBatch(sub)
		for k := 0; k < n; k++ {
			resids[k] = meanAbsDiff(pred.Row(k), ys.Row(row(k)))
		}
		return resids
	}
	for k := 0; k < n; k++ {
		i := row(k)
		resids[k] = meanAbsDiff(sur.Predict(xs.Row(i)), ys.Row(i))
	}
	return resids
}

// SurrogateFactory builds fresh, untrained surrogates. Every refit
// generation trains a brand-new instance, so a model that is serving is
// never mutated; factories must be safe to call from concurrent background
// refits.
type SurrogateFactory func() Surrogate

// NewNNSurrogateFactory returns a SurrogateFactory producing independently
// seeded NNSurrogates for an in→out mapping, each drawing its own
// deterministic rng stream split off rng. configure (optional) tunes every
// produced instance, e.g. epochs or MC passes.
func NewNNSurrogateFactory(in, out int, hidden []int, dropout float64, rng *xrand.Rand, configure func(*NNSurrogate)) SurrogateFactory {
	var mu sync.Mutex
	return func() Surrogate {
		mu.Lock()
		child := rng.Split()
		mu.Unlock()
		s := NewNNSurrogate(in, out, hidden, dropout, child)
		if configure != nil {
			configure(s)
		}
		return s
	}
}

// ShardedConfig tunes a ShardedWrapper.
type ShardedConfig struct {
	// Shards is the partition width used when Router is nil (default 4).
	Shards int
	// Router overrides the default HashRouter partition.
	Router Router
	// MinTrainSamples is the per-shard sample count before its first fit
	// (default 50).
	MinTrainSamples int
	// RetrainEvery triggers a background refit after this many new oracle
	// results per shard; 0 disables refits after the first fit.
	RetrainEvery int
	// UQThreshold is the maximum acceptable predictive std (target units)
	// for a surrogate answer to be served.
	UQThreshold float64
	// OracleWorkers bounds the fan-out pool QueryBatch uses for oracle
	// fallbacks (default GOMAXPROCS; 1 serializes). Oracles must tolerate
	// concurrent Run calls, the same contract concurrent Wrapper use
	// already requires.
	OracleWorkers int
	// Retention bounds each shard's retained training window (sliding
	// window or reservoir sampling) so background refits stay O(window)
	// on long-running servers. The zero value retains everything. A
	// bounded window is raised to at least MinTrainSamples.
	Retention Retention
	// DriftFactor, when positive, enables drift-triggered refits: each
	// shard tracks an EWMA of its ingested samples' residuals (mean
	// absolute error of the published model's prediction against the
	// sample's true y), compared against the model's own in-sample
	// training residual recorded at publish time. When the EWMA exceeds
	// DriftFactor times that baseline, the shard is marked drifted —
	// making a refit due on the next sample arrival and on every
	// RefitStale / auto-refit tick — so the retrain schedule adapts to
	// the oracle moving instead of waiting out RetrainEvery.
	DriftFactor float64
	// DriftAlpha is the residual-EWMA smoothing factor in (0, 1]
	// (default 0.1).
	DriftAlpha float64
	// Quantized serves every shard from its surrogate's int8 quantized
	// program when available, with the same UQ-gated float fallback and
	// QuantStats counters as WrapperConfig.Quantized. The knob wraps the
	// factory so each produced surrogate (including every
	// recompile-on-publish refit generation) quantizes on Train.
	Quantized bool
}

// driftBaselineRows caps how many snapshot rows the publish-time
// in-sample residual averages over.
const driftBaselineRows = 256

// shard is one partition: its slice of the training set plus the
// double-buffered surrogate. active holds the currently published model;
// refits train a fresh instance on a snapshot and swap the pointer, so
// readers load it lock-free and never observe a half-trained model.
// Snapshots are numbered per shard and publishes are ordered by snapshot
// generation, so a slow refit finishing late can never overwrite a model
// trained on a newer snapshot (e.g. by a concurrent TrainAll).
type shard struct {
	idx    int // position in ShardedWrapper.shards, for publish hooks
	active atomic.Pointer[Surrogate]

	mu            sync.Mutex // everything below
	xs, ys        *tensor.Matrix
	retain        retainer
	newSinceTrain int
	refitting     bool
	nextSnapGen   int // id assigned to the next training snapshot
	publishedGen  int // snapshot id of the published model; -1 = none

	// Drift tracking (ShardedConfig.DriftFactor): residBase is the
	// published model's in-sample training residual (the publish-time
	// baseline); residEWMA smooths fresh ingested residuals against it.
	// The EWMA exceeding DriftFactor × residBase marks the shard drifted,
	// recording in driftGen the snapshot generation that will absorb the
	// samples that raised it — so publishing a model trained on an OLDER
	// snapshot (gen < driftGen) cannot swallow the flag while the
	// drift-raising samples sit in no snapshot at all.
	residBase float64
	residEWMA float64
	drifted   bool
	driftGen  int
}

// snapshotLocked clones the shard's training set as snapshot generation
// gen and resets the retrain credit. Callers hold s.mu.
func (s *shard) snapshotLocked() (snapX, snapY *tensor.Matrix, gen, consumed int) {
	gen = s.nextSnapGen
	s.nextSnapGen++
	consumed = s.newSinceTrain
	s.newSinceTrain = 0
	return s.xs.Clone(), s.ys.Clone(), gen, consumed
}

// publishIfNewer swaps sur in as the served model unless a model from a
// newer snapshot has already been published.
func (s *shard) publishIfNewer(sur Surrogate, gen int, residBase float64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if gen <= s.publishedGen {
		return false
	}
	s.publishedGen = gen
	s.active.Store(&sur)
	// The new model's in-sample fit error is the drift baseline its
	// serving life is judged against. The drift flag is cleared only if
	// this model's snapshot covers the samples that raised it; drift
	// tripped after the snapshot was taken survives the publish, so the
	// refit chain retrains once more instead of serving a model that
	// never saw the drifted regime.
	s.residBase, s.residEWMA = residBase, residBase
	if gen >= s.driftGen {
		s.drifted = false
	}
	return true
}

// observeResidualLocked folds one ingested sample's residual against the
// published model into the shard's drift EWMA and marks the shard
// drifted when it exceeds factor × the publish-time baseline. Callers
// hold s.mu.
func (s *shard) observeResidualLocked(resid, factor, alpha float64) {
	s.residEWMA += alpha * (resid - s.residEWMA)
	if s.residEWMA > factor*flooredBase(s.residBase) {
		s.drifted = true
		// The sample that (re-)raised the flag will be absorbed by the
		// NEXT snapshot; only a model trained on that generation (or
		// newer) may clear it — so drift tripped by samples a refit's
		// already-taken snapshot missed survives that refit's publish.
		s.driftGen = s.nextSnapGen
	}
}

// flooredBase floors the drift baseline so a perfectly fit
// (zero-residual) model still tolerates noise at the float rounding
// scale before tripping — and so the reported drift ratio of such a
// model is finite and consistent with the trip check.
func flooredBase(base float64) float64 {
	if base < 1e-12 {
		return 1e-12
	}
	return base
}

// driftBaselineFor evaluates driftBaseline only when someone consumes
// it — drift tracking is configured or a publish hook (which carries
// the baseline into registry artifacts) is installed; otherwise the
// snapshot sweep is skipped entirely.
func (w *ShardedWrapper) driftBaselineFor(sur Surrogate, snapX, snapY *tensor.Matrix) float64 {
	if w.cfg.DriftFactor <= 0 && w.publishHook.Load() == nil {
		return 0
	}
	return driftBaseline(sur, snapX, snapY)
}

// driftBaseline is the published model's in-sample residual: the mean
// absolute prediction error over (up to driftBaselineRows evenly spaced
// rows of) its own training snapshot, batched when the surrogate
// supports it. Computed once per publish, off the serving path, only
// when drift tracking is enabled.
func driftBaseline(sur Surrogate, snapX, snapY *tensor.Matrix) float64 {
	n := snapX.Rows
	if n == 0 {
		return 0
	}
	var idx []int // nil = every row
	if n > driftBaselineRows {
		step := (n + driftBaselineRows - 1) / driftBaselineRows
		for i := 0; i < n; i += step {
			idx = append(idx, i)
		}
	}
	resids := batchResiduals(sur, snapX, snapY, idx)
	sum := 0.0
	for _, r := range resids {
		sum += r
	}
	return sum / float64(len(resids))
}

// ShardedWrapper is the stall-free MLaroundHPC runtime. It routes every
// query to an input-space shard, serves it from that shard's published
// surrogate when the UQ gate passes, and falls back to the oracle
// otherwise — accumulating fallback results per shard and refitting each
// shard's surrogate in the background on a snapshot of its data. Publishing
// is an atomic pointer swap: Query and QueryBatch never block on a refit.
//
// All methods are safe for concurrent use. Background refit failures are
// reported by Wait (training never takes the serving path down — the
// previous model keeps serving).
type ShardedWrapper struct {
	oracle  Oracle
	factory SurrogateFactory
	router  Router
	cfg     ShardedConfig
	in, out int
	shards  []*shard

	// In-flight refit tracking. A plain WaitGroup would be misuse here:
	// queries call the equivalent of Add(1) from a zero counter
	// concurrently with Wait, which WaitGroup forbids. A counter and
	// condvar under one mutex give the same quiesce semantics safely.
	refitMu   sync.Mutex
	refitDone *sync.Cond // signalled when inflight returns to 0
	inflight  int
	trainErr  error // first background refit failure since the last Wait

	// Timer-driven periodic retrainer (StartAutoRefit / StopAutoRefit).
	autoMu   sync.Mutex
	autoStop chan struct{}
	autoDone chan struct{}

	scratch sync.Pool // *shardScratch for QueryBatchInto

	quantQueries   atomic.Uint64 // lookups served through quantized programs
	quantFallbacks atomic.Uint64 // of those, re-runs on the float program

	// brownout is the current degradation ladder level (BrownoutOff..
	// BrownoutNoUQ), moved by SetBrownoutLevel.
	brownout atomic.Int32

	// publishHook, when set, observes every generation that wins its
	// publish race — the registry-persistence seam.
	publishHook atomic.Pointer[PublishHook]

	ledgerBox
}

// SetPublishHook installs (or, with nil, removes) the publish observer:
// it fires once per shard generation that actually starts serving
// (publishes discarded by the generation-order race are not reported),
// synchronously on the refit goroutine, after the pointer swap. Safe
// for concurrent use with serving and refits.
func (w *ShardedWrapper) SetPublishHook(h PublishHook) {
	if h == nil {
		w.publishHook.Store(nil)
		return
	}
	w.publishHook.Store(&h)
}

// notifyPublish fires the publish hook for a shard generation that just
// started serving.
func (w *ShardedWrapper) notifyPublish(shardIdx int, sur Surrogate, residBase float64) {
	if hp := w.publishHook.Load(); hp != nil {
		(*hp)(shardIdx, sur, residBase)
	}
}

// WarmStart installs a pre-trained surrogate (typically decoded from a
// registry artifact) as shard si's serving model, but only while the
// shard has never published a generation of its own — live training
// always outranks a restored model. residBase seeds the drift tracker
// with the baseline the artifact carried, so drift detection resumes
// where the publisher left off. The shard's Generation stays -1: the
// restored model is generation "before zero", and the first real refit
// replaces it through the ordinary publish race. Returns whether the
// model was installed.
func (w *ShardedWrapper) WarmStart(si int, sur Surrogate, residBase float64) bool {
	s := w.shards[si]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.publishedGen >= 0 || s.active.Load() != nil {
		return false
	}
	applyMCCap(sur, int(w.brownout.Load()))
	s.active.Store(&sur)
	s.residBase, s.residEWMA = residBase, residBase
	return true
}

// Reinstall force-publishes a surrogate on shard si as a fresh snapshot
// generation — the rollback path. Claiming a new generation (rather
// than rewinding to an old one) keeps the publish order monotonic: any
// refit already in flight on an older snapshot loses the publish race
// to the reinstalled model instead of immediately re-serving the model
// being rolled away from. Drift state resets to residBase. The publish
// hook is NOT fired — rollback restores an artifact the registry
// already holds.
func (w *ShardedWrapper) Reinstall(si int, sur Surrogate, residBase float64) {
	s := w.shards[si]
	s.mu.Lock()
	defer s.mu.Unlock()
	gen := s.nextSnapGen
	s.nextSnapGen++
	s.publishedGen = gen
	applyMCCap(sur, int(w.brownout.Load()))
	s.active.Store(&sur)
	s.residBase, s.residEWMA = residBase, residBase
	s.drifted = false
	s.driftGen = gen
}

// SetBrownoutLevel moves every shard to an absolute brownout ladder
// level (BrownoutOff through BrownoutNoUQ, clamped): published
// surrogates pick up the MC pass cap immediately, and refits publish
// their fresh generations already capped. Safe for concurrent use with
// serving and refits.
func (w *ShardedWrapper) SetBrownoutLevel(level int) {
	level = clampBrownout(level)
	w.brownout.Store(int32(level))
	for _, s := range w.shards {
		if surp := s.active.Load(); surp != nil {
			applyMCCap(*surp, level)
		}
	}
}

// BrownoutLevel reports the current brownout ladder level.
func (w *ShardedWrapper) BrownoutLevel() int { return int(w.brownout.Load()) }

// quantPreferred reports whether UQ lookups should try shards' quantized
// programs: configured Quantized, or browned out to BrownoutPreferQuant
// or deeper.
func (w *ShardedWrapper) quantPreferred() bool {
	return w.cfg.Quantized || w.brownout.Load() >= BrownoutPreferQuant
}

// NewShardedWrapper constructs a sharded, double-buffered wrapper around
// oracle. factory supplies a fresh surrogate per shard per refit
// generation.
func NewShardedWrapper(oracle Oracle, factory SurrogateFactory, cfg ShardedConfig) *ShardedWrapper {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Router == nil {
		cfg.Router = HashRouter{Shards: cfg.Shards}
	}
	cfg.Shards = cfg.Router.NumShards()
	if cfg.Shards < 1 {
		panic("core: router with no shards")
	}
	if cfg.MinTrainSamples <= 0 {
		cfg.MinTrainSamples = 50
	}
	if cfg.OracleWorkers <= 0 {
		cfg.OracleWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.DriftAlpha <= 0 || cfg.DriftAlpha > 1 {
		cfg.DriftAlpha = 0.1
	}
	cfg.Retention = clampRetention(cfg.Retention, cfg.MinTrainSamples)
	if cfg.Quantized {
		// Every factory product — including each refit generation a shard
		// publishes — compiles its quantized program on Train, so the
		// published model always serves the int8 form.
		inner := factory
		factory = func() Surrogate {
			s := inner()
			if qc, ok := s.(QuantCapable); ok {
				qc.SetQuantize(true)
			}
			return s
		}
	}
	in, out := oracle.Dims()
	w := &ShardedWrapper{
		oracle: oracle, factory: factory, router: cfg.Router, cfg: cfg,
		in: in, out: out,
	}
	w.refitDone = sync.NewCond(&w.refitMu)
	for i := 0; i < cfg.Shards; i++ {
		w.shards = append(w.shards, &shard{
			idx: i,
			xs:  tensor.NewMatrix(0, in), ys: tensor.NewMatrix(0, out),
			retain:       newRetainer(cfg.Retention, 0x5aa2d+uint64(i)*0x9e3779b9),
			publishedGen: -1,
		})
	}
	return w
}

// NumShards returns the partition width.
func (w *ShardedWrapper) NumShards() int { return len(w.shards) }

// Dims returns the input and output dimensionality served by the wrapper.
func (w *ShardedWrapper) Dims() (in, out int) { return w.in, w.out }

// Route exposes the wrapper's routing decision for x.
func (w *ShardedWrapper) Route(x []float64) int { return w.router.Route(x) }

// TrainingSetSize returns the total accumulated oracle samples across all
// shards.
func (w *ShardedWrapper) TrainingSetSize() int {
	total := 0
	for _, s := range w.shards {
		s.mu.Lock()
		total += s.xs.Rows
		s.mu.Unlock()
	}
	return total
}

// ShardSizes returns the per-shard training-set sizes.
func (w *ShardedWrapper) ShardSizes() []int {
	sizes := make([]int, len(w.shards))
	for i, s := range w.shards {
		s.mu.Lock()
		sizes[i] = s.xs.Rows
		s.mu.Unlock()
	}
	return sizes
}

// Query answers one input point, serving from the routed shard's published
// surrogate when the UQ gate passes and from the oracle otherwise. It
// never blocks on a refit. Safe for concurrent use.
func (w *ShardedWrapper) Query(x []float64) (y []float64, src Source, std []float64, err error) {
	s := w.shards[w.router.Route(x)]
	mean, sd, surp, ok := w.tryLookup(s, x)
	if ok {
		return mean, FromSurrogate, sd, nil
	}
	t0 := time.Now()
	y, err = w.oracle.Run(x)
	dt := time.Since(t0)
	if err != nil {
		w.recordFailedRun(dt)
		return nil, FromSimulation, nil, fmt.Errorf("core: oracle: %w", err)
	}
	w.recordSimulation(dt)
	w.addSamples(s, [][2][]float64{{x, y}})
	if w.cfg.DriftFactor > 0 && surp != nil && mean != nil {
		// The rejected prediction plus the oracle truth is a free drift
		// observation (see observeFallbackResidual for the UQ bias
		// correction).
		w.observeFallbackResidual(s, surp, mean, sd, y)
	}
	return y, FromSimulation, nil, nil
}

// tryLookup serves x from the shard's published surrogate. The load is a
// single atomic pointer read — no lock is taken, so lookups proceed at
// full speed while the shard refits. On a UQ rejection (ok=false with a
// non-nil surp) mean and sd carry the rejected prediction so the oracle
// fallback can fold its residual into the drift tracker without a
// second surrogate pass.
func (w *ShardedWrapper) tryLookup(s *shard, x []float64) (mean, sd []float64, surp *Surrogate, ok bool) {
	surp = s.active.Load()
	if surp == nil {
		return nil, nil, nil, false
	}
	sur := *surp
	if w.quantPreferred() {
		if qs, isQ := sur.(QuantServing); isQ && qs.QuantizedReady() {
			t0 := time.Now()
			mean, sd = quantLookupOne(qs, sur, x, w.cfg.UQThreshold, quantBand(qs, w.brownout.Load()), &w.quantQueries, &w.quantFallbacks)
			dt := time.Since(t0)
			if maxOf(sd) <= w.cfg.UQThreshold {
				w.recordLookup(dt)
				return mean, sd, surp, true
			}
			w.recordRejectedLookup(dt)
			return mean, sd, surp, false
		}
	}
	t0 := time.Now()
	mean, sd = sur.PredictWithUQ(x)
	dt := time.Since(t0)
	if maxOf(sd) <= w.cfg.UQThreshold {
		w.recordLookup(dt)
		return mean, sd, surp, true
	}
	w.recordRejectedLookup(dt)
	return mean, sd, surp, false
}

// QuantStats reports how many lookups across all shards were served through
// quantized programs and how many of those re-ran on the retained float
// program because the UQ gate decision sat inside the quantization error
// band (or the input clipped the int8 envelope).
func (w *ShardedWrapper) QuantStats() (queries, fallbacks uint64) {
	return w.quantQueries.Load(), w.quantFallbacks.Load()
}

// shardScratch pools the per-call working state of one sharded
// QueryBatchInto: the shard partition, the gather buffer, and the
// embedded mean/std staging plus miss list shared with the unsharded
// wrapper's scratch.
type shardScratch struct {
	batchScratch
	byShard [][]int
	sub     *tensor.Matrix
}

func (w *ShardedWrapper) getScratch() *shardScratch {
	if sc, ok := w.scratch.Get().(*shardScratch); ok {
		return sc
	}
	return &shardScratch{byShard: make([][]int, len(w.shards))}
}

// QueryBatch answers every row of xs: rows are partitioned by shard, each
// shard's slice is served in one amortized batched surrogate pass, and the
// UQ-rejected remainder fans out over the bounded oracle worker pool.
// Per-row oracle failures are reported in the row's Err. Background refit
// failures never surface here (see Wait); the returned error is reserved
// for malformed input. The returned results are caller-owned. Safe for
// concurrent use.
func (w *ShardedWrapper) QueryBatch(xs *tensor.Matrix) ([]BatchResult, error) {
	if xs.Rows == 0 {
		return nil, nil
	}
	if xs.Cols != w.in {
		return nil, fmt.Errorf("core: batch has %d cols, oracle wants %d", xs.Cols, w.in)
	}
	res := make([]BatchResult, xs.Rows)
	return res, w.QueryBatchInto(xs, res)
}

// QueryBatchInto is the buffer-reusing form of QueryBatch: surrogate-served
// rows overwrite res[i].Y/Std in place when capacity suffices, so a
// steady-state sweep loop reusing one res slice avoids the per-call result
// allocations (oracle-answered rows still receive oracle-owned slices).
func (w *ShardedWrapper) QueryBatchInto(xs *tensor.Matrix, res []BatchResult) error {
	if xs.Rows == 0 {
		return nil
	}
	if xs.Cols != w.in {
		return fmt.Errorf("core: batch has %d cols, oracle wants %d", xs.Cols, w.in)
	}
	if len(res) != xs.Rows {
		return fmt.Errorf("core: res has %d entries for a %d-row batch", len(res), xs.Rows)
	}
	sc := w.getScratch()

	// Partition rows by shard.
	byShard := sc.byShard
	for si := range byShard {
		byShard[si] = byShard[si][:0]
	}
	for i := 0; i < xs.Rows; i++ {
		si := w.router.Route(xs.Row(i))
		byShard[si] = append(byShard[si], i)
	}

	// Serve each shard's slice from its published surrogate; collect the
	// UQ-rejected rows. The gather and staging buffers are reused across
	// shards (and, through the pool, across calls).
	miss := sc.miss[:0]
	for si, idx := range byShard {
		if len(idx) == 0 {
			continue
		}
		surp := w.shards[si].active.Load()
		if surp == nil {
			miss = append(miss, idx...)
			continue
		}
		sur := *surp
		if w.quantPreferred() {
			if bq, isQ := sur.(BatchQuantServing); isQ && bq.QuantizedReady() {
				sc.sub = tensor.GatherRowsInto(sc.sub, xs, idx)
				mean, std := sc.mats(len(idx), w.out)
				oks := sc.okBuf(len(idx))
				t0 := time.Now()
				bq.PredictBatchWithUQQuantInto(sc.sub, mean, std, oks)
				w.quantQueries.Add(uint64(len(idx)))
				quantGuardBatch(sur, sc.sub, mean, std, oks, w.cfg.UQThreshold, quantBand(bq, w.brownout.Load()), &w.quantFallbacks)
				per := time.Since(t0) / time.Duration(len(idx))
				var served, rejected int
				miss, served, rejected = gateBatchRows(res, miss, idx, mean, std, w.cfg.UQThreshold, true)
				w.recordBatchLookups(per, served, rejected)
				continue
			}
		}
		if bsi, isInto := sur.(BatchSurrogateInto); isInto {
			sc.sub = tensor.GatherRowsInto(sc.sub, xs, idx)
			mean, std := sc.mats(len(idx), w.out)
			t0 := time.Now()
			bsi.PredictBatchWithUQInto(sc.sub, mean, std)
			per := time.Since(t0) / time.Duration(len(idx))
			var served, rejected int
			miss, served, rejected = gateBatchRows(res, miss, idx, mean, std, w.cfg.UQThreshold, true)
			w.recordBatchLookups(per, served, rejected)
			continue
		}
		if bs, isBatch := sur.(BatchSurrogate); isBatch {
			sc.sub = tensor.GatherRowsInto(sc.sub, xs, idx)
			t0 := time.Now()
			mean, std := bs.PredictBatchWithUQ(sc.sub)
			per := time.Since(t0) / time.Duration(len(idx))
			var served, rejected int
			miss, served, rejected = gateBatchRows(res, miss, idx, mean, std, w.cfg.UQThreshold, false)
			w.recordBatchLookups(per, served, rejected)
			continue
		}
		for _, i := range idx {
			t0 := time.Now()
			mean, sd := sur.PredictWithUQ(xs.Row(i))
			dt := time.Since(t0)
			if maxOf(sd) <= w.cfg.UQThreshold {
				res[i] = BatchResult{Y: mean, Src: FromSurrogate, Std: sd}
				w.recordLookup(dt)
			} else {
				miss = append(miss, i)
				w.recordRejectedLookup(dt)
			}
		}
	}
	sc.miss = miss
	if len(miss) == 0 {
		w.scratch.Put(sc)
		return nil
	}

	// Oracle fallback: bounded parallel fan-out instead of a sequential
	// loop. Results land in disjoint res rows.
	oracleFanout(w.oracle, xs, miss, res, w.cfg.OracleWorkers, w.record)

	// Feed successful fallbacks back into their shards' training sets,
	// and (with drift tracking armed) fold their residuals against the
	// published models into the drift EWMAs.
	for si, idx := range byShard {
		var samples [][2][]float64
		for _, i := range idx {
			if res[i].Src == FromSimulation && res[i].Err == nil {
				samples = append(samples, [2][]float64{xs.Row(i), res[i].Y})
			}
		}
		if len(samples) > 0 {
			w.addSamples(w.shards[si], samples)
		}
		if w.cfg.DriftFactor > 0 {
			w.foldFallbackResiduals(w.shards[si], xs, idx, res)
		}
	}
	w.scratch.Put(sc)
	return nil
}

// addSamples appends oracle results to a shard and kicks off a background
// refit when one is due.
func (w *ShardedWrapper) addSamples(s *shard, samples [][2][]float64) {
	s.mu.Lock()
	for _, xy := range samples {
		s.retain.add(s.xs, s.ys, xy[0], xy[1])
		s.newSinceTrain++
	}
	snapX, snapY, gen, consumed := w.refitDueLocked(s)
	s.mu.Unlock()
	if snapX != nil {
		w.spawnRefit(s, snapX, snapY, gen, consumed)
	}
}

// beginRefit registers one in-flight refit; endRefit retires it,
// recording the first failure and waking Wait when the count drains.
func (w *ShardedWrapper) beginRefit() {
	w.refitMu.Lock()
	w.inflight++
	w.refitMu.Unlock()
}

func (w *ShardedWrapper) endRefit(err error) {
	w.refitMu.Lock()
	if err != nil && w.trainErr == nil {
		w.trainErr = err
	}
	w.inflight--
	if w.inflight == 0 {
		w.refitDone.Broadcast()
	}
	w.refitMu.Unlock()
}

// spawnRefit launches one registered background refit.
func (w *ShardedWrapper) spawnRefit(s *shard, snapX, snapY *tensor.Matrix, gen, consumed int) {
	w.beginRefit()
	go w.refit(s, snapX, snapY, gen, consumed)
}

// refitDueLocked decides whether s owes a refit and, if so, snapshots its
// training set and marks the refit in flight. Callers hold s.mu. A non-nil
// snapshot means "spawn a refit"; consumed is the retrain credit the
// snapshot absorbed, restored if the fit fails.
func (w *ShardedWrapper) refitDueLocked(s *shard) (snapX, snapY *tensor.Matrix, gen, consumed int) {
	if s.refitting {
		return nil, nil, 0, 0
	}
	due := false
	if s.active.Load() == nil {
		due = s.xs.Rows >= w.cfg.MinTrainSamples
	} else if w.cfg.RetrainEvery > 0 {
		due = s.newSinceTrain >= w.cfg.RetrainEvery
	}
	// A drifted shard owes a refit regardless of the RetrainEvery
	// schedule (including RetrainEvery == 0, where drift is the only
	// retrain trigger): the published model no longer matches the data.
	if !due && s.drifted {
		due = true
	}
	if !due {
		return nil, nil, 0, 0
	}
	s.refitting = true
	snapX, snapY, gen, consumed = s.snapshotLocked()
	return snapX, snapY, gen, consumed
}

// refit trains a fresh surrogate on the snapshot and publishes it
// generation-ordered: serving is never paused, and a fit that finishes
// after a newer snapshot's model has been published is discarded.
func (w *ShardedWrapper) refit(s *shard, snapX, snapY *tensor.Matrix, gen, consumed int) {
	sur := w.factory()
	t0 := time.Now()
	err := sur.Train(snapX, snapY)
	dt := time.Since(t0)
	if err != nil {
		// Keep serving the previous generation and give back the retrain
		// credit the snapshot absorbed, so the very next sample retries
		// instead of waiting for a whole fresh RetrainEvery window.
		s.mu.Lock()
		s.refitting = false
		s.newSinceTrain += consumed
		s.mu.Unlock()
		w.endRefit(err)
		return
	}
	w.record(func(l *Ledger) { l.RecordTraining(dt, snapX.Rows) })
	// A generation trained mid-brownout publishes already capped, so the
	// swap cannot silently restore full MC cost under overload.
	applyMCCap(sur, int(w.brownout.Load()))
	base := w.driftBaselineFor(sur, snapX, snapY)
	if s.publishIfNewer(sur, gen, base) {
		w.notifyPublish(s.idx, sur, base)
	}
	// Samples may have piled past the retrain threshold while this fit
	// ran; chain one follow-up so a busy shard cannot go stale.
	s.mu.Lock()
	s.refitting = false
	nextX, nextY, nextGen, nextConsumed := w.refitDueLocked(s)
	s.mu.Unlock()
	if nextX != nil {
		w.spawnRefit(s, nextX, nextY, nextGen, nextConsumed)
	}
	w.endRefit(nil)
}

// refitWhere snapshots and spawns a background refit on every shard with
// data that satisfies due (evaluated with the shard lock held; shards
// already refitting are skipped) and returns the number spawned.
func (w *ShardedWrapper) refitWhere(due func(s *shard) bool) int {
	spawned := 0
	for _, s := range w.shards {
		s.mu.Lock()
		var snapX, snapY *tensor.Matrix
		var gen, consumed int
		if !s.refitting && s.xs.Rows > 0 && due(s) {
			s.refitting = true
			snapX, snapY, gen, consumed = s.snapshotLocked()
		}
		s.mu.Unlock()
		if snapX != nil {
			w.spawnRefit(s, snapX, snapY, gen, consumed)
			spawned++
		}
	}
	return spawned
}

// Refit asynchronously retrains every shard that has any data on a
// snapshot of its current training set, regardless of the RetrainEvery
// schedule (shards already refitting are skipped). It returns immediately;
// Wait observes completion.
func (w *ShardedWrapper) Refit() {
	w.refitWhere(func(*shard) bool { return true })
}

// RefitStale asynchronously retrains every shard that is stale: it has
// accumulated samples no training snapshot has absorbed, it has drifted
// past the configured residual factor (see ShardedConfig.DriftFactor),
// or it has reached MinTrainSamples without a published model (the same
// first-fit gate the query path enforces). Fresh shards are left alone,
// so calling it on a timer costs nothing when no new data arrived. It
// returns the number of refits spawned; Wait observes their completion.
func (w *ShardedWrapper) RefitStale() int {
	return w.refitWhere(func(s *shard) bool {
		if s.active.Load() == nil {
			return s.xs.Rows >= w.cfg.MinTrainSamples
		}
		return s.newSinceTrain > 0 || s.drifted
	})
}

// StartAutoRefit launches the timer-driven periodic retrainer: every
// interval it calls RefitStale, so a long-running server keeps its
// published models fresh without any query-path trigger (the ROADMAP's
// periodic-retrain driver). It panics if a driver is already running;
// StopAutoRefit stops it.
func (w *ShardedWrapper) StartAutoRefit(interval time.Duration) {
	if interval <= 0 {
		panic("core: auto-refit interval must be positive")
	}
	w.autoMu.Lock()
	defer w.autoMu.Unlock()
	if w.autoStop != nil {
		panic("core: auto-refit already running")
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	w.autoStop, w.autoDone = stop, done
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				w.RefitStale()
			}
		}
	}()
}

// StopAutoRefit stops the periodic retrainer and waits for the driver
// goroutine to exit (refits it already spawned keep running; use Wait to
// drain them). It is a no-op if no driver is running.
func (w *ShardedWrapper) StopAutoRefit() {
	w.autoMu.Lock()
	stop, done := w.autoStop, w.autoDone
	w.autoStop, w.autoDone = nil, nil
	w.autoMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// ShardStatus is one shard's serving-staleness report.
type ShardStatus struct {
	// Samples is the shard's accumulated training-set size.
	Samples int
	// Stale counts samples no training snapshot has absorbed yet — the
	// per-shard staleness metric the periodic retrainer drains.
	Stale int
	// Generation is the snapshot generation of the published model, or -1
	// while the shard still serves everything from the oracle.
	Generation int
	// Refitting reports whether a background refit is in flight.
	Refitting bool
	// Drifted reports whether the ingested-residual EWMA has exceeded
	// DriftFactor times the post-publish baseline (always false with
	// drift tracking disabled). A drifted shard owes a refit.
	Drifted bool
	// DriftRatio is the current residual EWMA over the post-publish
	// baseline (0 until the baseline warms up) — how far the published
	// model has slid against fresh data.
	DriftRatio float64
}

// Status returns the per-shard staleness metrics.
func (w *ShardedWrapper) Status() []ShardStatus {
	out := make([]ShardStatus, len(w.shards))
	for i, s := range w.shards {
		s.mu.Lock()
		st := ShardStatus{
			Samples:    s.xs.Rows,
			Stale:      s.newSinceTrain,
			Generation: s.publishedGen,
			Refitting:  s.refitting,
			Drifted:    s.drifted,
		}
		if s.residEWMA > 0 {
			st.DriftRatio = s.residEWMA / flooredBase(s.residBase)
		}
		s.mu.Unlock()
		out[i] = st
	}
	return out
}

// Wait blocks until no background refit is in flight and returns the first
// background training failure observed since the previous Wait (clearing
// it). A nil return means every completed refit published successfully.
func (w *ShardedWrapper) Wait() error {
	w.refitMu.Lock()
	defer w.refitMu.Unlock()
	for w.inflight > 0 {
		w.refitDone.Wait()
	}
	err := w.trainErr
	w.trainErr = nil
	return err
}

// Ingest routes precomputed (x, y) sample rows into the shard training
// sets without running the oracle or charging the ledger — the bulk-load
// path for corpora computed elsewhere. Ingested rows count toward shard
// staleness (they are data no published model has seen) but never trigger
// refits themselves; call TrainAll, Refit, or run StartAutoRefit.
//
// With ShardedConfig.DriftFactor set, each ingested sample's residual
// against the shard's published model feeds the drift tracker: a stream
// of fresh data the model no longer explains marks the shard drifted, so
// the next RefitStale / auto-refit tick (or the next query-path sample)
// retrains it without waiting out RetrainEvery.
func (w *ShardedWrapper) Ingest(xs, ys *tensor.Matrix) error {
	if xs.Rows != ys.Rows {
		return fmt.Errorf("core: ingest rows mismatch %d vs %d", xs.Rows, ys.Rows)
	}
	if xs.Cols != w.in || ys.Cols != w.out {
		return fmt.Errorf("core: ingest expects %d→%d, got %d→%d", w.in, w.out, xs.Cols, ys.Cols)
	}
	// Partition rows by shard so the bulk path pays one lock round-trip
	// (and, for drift, one published-model load) per shard instead of
	// per row.
	byShard := make([][]int, len(w.shards))
	for i := 0; i < xs.Rows; i++ {
		si := w.router.Route(xs.Row(i))
		byShard[si] = append(byShard[si], i)
	}
	for si, idx := range byShard {
		if len(idx) == 0 {
			continue
		}
		s := w.shards[si]
		// Residuals against the currently published model, computed
		// outside the shard lock: Predict must already tolerate
		// concurrent readers (the serving path's contract). The model and
		// its generation are captured as a consistent pair so residuals
		// measured against a model that a background refit supersedes
		// mid-computation are discarded, never folded into the new
		// model's fresh EWMA.
		var resids []float64
		residGen := -1
		if w.cfg.DriftFactor > 0 {
			s.mu.Lock()
			surp := s.active.Load()
			residGen = s.publishedGen
			s.mu.Unlock()
			if surp != nil {
				resids = batchResiduals(*surp, xs, ys, idx)
			}
		}
		s.mu.Lock()
		if resids != nil && s.publishedGen != residGen {
			resids = nil // a newer model published mid-computation
		}
		for k, i := range idx {
			s.retain.add(s.xs, s.ys, xs.Row(i), ys.Row(i))
			s.newSinceTrain++
			if resids != nil {
				s.observeResidualLocked(resids[k], w.cfg.DriftFactor, w.cfg.DriftAlpha)
			}
		}
		s.mu.Unlock()
	}
	return nil
}

// meanAbsDiff is the mean absolute elementwise difference — the residual
// metric drift tracking uses.
func meanAbsDiff(a, b []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	sum := 0.0
	for j := range a {
		sum += math.Abs(a[j] - b[j])
	}
	return sum / float64(len(a))
}

// TrainAll synchronously fits every non-empty shard on a snapshot of its
// current data and publishes the results, returning the first training
// failure. Empty shards are skipped (they keep serving from the oracle).
// Shard fits are independent (fresh factory surrogates on cloned
// snapshots), so they run over the bounded worker pool; publishes are
// generation-ordered, so a background refit of an older snapshot
// finishing later can never displace a model trained here.
func (w *ShardedWrapper) TrainAll() error {
	errs := make([]error, len(w.shards))
	parallel.ForEachBounded(len(w.shards), runtime.GOMAXPROCS(0), func(si int) {
		s := w.shards[si]
		s.mu.Lock()
		if s.xs.Rows == 0 {
			s.mu.Unlock()
			return
		}
		snapX, snapY, gen, _ := s.snapshotLocked()
		s.mu.Unlock()
		sur := w.factory()
		t0 := time.Now()
		if err := sur.Train(snapX, snapY); err != nil {
			errs[si] = fmt.Errorf("core: shard %d: %w", si, err)
			return
		}
		dt := time.Since(t0)
		w.record(func(l *Ledger) { l.RecordTraining(dt, snapX.Rows) })
		applyMCCap(sur, int(w.brownout.Load()))
		base := w.driftBaselineFor(sur, snapX, snapY)
		if s.publishIfNewer(sur, gen, base) {
			w.notifyPublish(s.idx, sur, base)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Pretrain runs the oracle over every design point (through the bounded
// worker pool, aborting early on the first failure), routes the results
// into the shards, and fits every non-empty shard synchronously — the
// batch alternative to the online Query path.
func (w *ShardedWrapper) Pretrain(design *tensor.Matrix) error {
	if design.Cols != w.in {
		return fmt.Errorf("core: design has %d cols, oracle wants %d", design.Cols, w.in)
	}
	res, ferr := pretrainFanout(w.oracle, design, w.cfg.OracleWorkers, w.record)
	// Keep every successful sample — "no run is wasted" — even when the
	// campaign aborted on a failure.
	xs := tensor.NewMatrix(0, w.in)
	ys := tensor.NewMatrix(0, w.out)
	for i, r := range res {
		if r.Err == nil && r.Y != nil {
			xs.AppendRow(design.Row(i))
			ys.AppendRow(r.Y)
		}
	}
	if err := w.Ingest(xs, ys); err != nil {
		return err
	}
	if ferr != nil {
		return ferr
	}
	return w.TrainAll()
}

// oracleFanout runs the oracle on the miss rows of xs with at most workers
// concurrent goroutines, writing each answer into its res row and charging
// the ledger through record. Rows are disjoint, so no result locking is
// needed; oracles must tolerate concurrent Run calls (the contract
// concurrent wrapper use already imposes). workers <= 1 runs inline.
func oracleFanout(oracle Oracle, xs *tensor.Matrix, miss []int, res []BatchResult, workers int, record func(func(*Ledger))) {
	parallel.ForEachBounded(len(miss), workers, func(k int) {
		i := miss[k]
		t0 := time.Now()
		y, err := oracle.Run(xs.Row(i))
		dt := time.Since(t0)
		if err != nil {
			record(func(l *Ledger) { l.RecordFailedRun(dt) })
			res[i] = BatchResult{Src: FromSimulation, Err: fmt.Errorf("core: oracle: %w", err)}
			return
		}
		record(func(l *Ledger) { l.RecordSimulation(dt) })
		res[i] = BatchResult{Y: y, Src: FromSimulation}
	})
}

// pretrainFanout runs the oracle over every row of design with at most
// workers goroutines and early abort: once any run fails, rows not yet
// started are skipped (their res entry stays zero: Y nil, Err nil), so a
// design with an early deterministic failure doesn't burn the rest of an
// expensive campaign. The first failing row's error is returned;
// successful rows are usable from res either way.
func pretrainFanout(oracle Oracle, design *tensor.Matrix, workers int, record func(func(*Ledger))) ([]BatchResult, error) {
	res := make([]BatchResult, design.Rows)
	var failed atomic.Bool
	parallel.ForEachBounded(design.Rows, workers, func(i int) {
		if failed.Load() {
			return
		}
		t0 := time.Now()
		y, err := oracle.Run(design.Row(i))
		dt := time.Since(t0)
		if err != nil {
			failed.Store(true)
			record(func(l *Ledger) { l.RecordFailedRun(dt) })
			res[i] = BatchResult{Src: FromSimulation, Err: fmt.Errorf("core: pretrain point %d: %w", i, err)}
			return
		}
		record(func(l *Ledger) { l.RecordSimulation(dt) })
		res[i] = BatchResult{Y: y, Src: FromSimulation}
	})
	for _, r := range res {
		if r.Err != nil {
			return res, r.Err
		}
	}
	return res, nil
}
