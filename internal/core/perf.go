package core

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// EffectiveSpeedup evaluates the paper's §III-D formula
//
//	S = Tseq·(Nlookup + Ntrain) / (Tlookup·Nlookup + (Ttrain + Tlearn)·Ntrain)
//
// where Tseq is the sequential simulation time, Ttrain the per-run time of
// the (possibly parallel) training simulations, Tlearn the per-sample
// network training time, Tlookup the per-inference time, Ntrain the number
// of training simulations and Nlookup the number of surrogate inferences.
// All times are in arbitrary but consistent units.
func EffectiveSpeedup(tseq, ttrain, tlearn, tlookup float64, nlookup, ntrain float64) float64 {
	denom := tlookup*nlookup + (ttrain+tlearn)*ntrain
	if denom <= 0 {
		return math.NaN()
	}
	return tseq * (nlookup + ntrain) / denom
}

// SpeedupNoML is the formula's no-learning limit Tseq/Ttrain: with
// Nlookup = 0 only the (parallel) simulation speedup remains.
func SpeedupNoML(tseq, ttrain float64) float64 { return tseq / ttrain }

// SpeedupInfiniteLookup is the large-Nlookup/Ntrain limit Tseq/Tlookup,
// "which can be huge!" (§III-D).
func SpeedupInfiniteLookup(tseq, tlookup float64) float64 { return tseq / tlookup }

// Ledger accumulates measured times and counts from a Wrapper, yielding
// the empirical counterpart of the effective-speedup formula. The zero
// value is ready to use.
type Ledger struct {
	// Simulation (oracle) executions that produced training data.
	NTrain  int
	SimTime time.Duration
	// Successful surrogate lookups.
	NLookup    int
	LookupTime time.Duration
	// Lookups whose UQ gate failed (charged as overhead, answered by sim).
	NRejected    int
	RejectedTime time.Duration
	// Failed oracle runs (errors). The paper notes "training needs both
	// successful and unsuccessful runs"; failures are counted but carry
	// no training sample here.
	NFailed    int
	FailedTime time.Duration
	// Network training.
	NTrainingRuns int
	LearnTime     time.Duration
	LearnSamples  int
}

// RecordSimulation charges one successful oracle run.
func (l *Ledger) RecordSimulation(d time.Duration) {
	l.NTrain++
	l.SimTime += d
}

// RecordLookup charges one served surrogate inference.
func (l *Ledger) RecordLookup(d time.Duration) {
	l.NLookup++
	l.LookupTime += d
}

// RecordRejectedLookup charges an inference whose UQ gate failed.
func (l *Ledger) RecordRejectedLookup(d time.Duration) {
	l.NRejected++
	l.RejectedTime += d
}

// RecordFailedRun charges an oracle error.
func (l *Ledger) RecordFailedRun(d time.Duration) {
	l.NFailed++
	l.FailedTime += d
}

// RecordTraining charges one surrogate fit over nSamples.
func (l *Ledger) RecordTraining(d time.Duration, nSamples int) {
	l.NTrainingRuns++
	l.LearnTime += d
	l.LearnSamples += nSamples
}

// MeanSimTime returns the mean duration of a successful oracle run.
func (l *Ledger) MeanSimTime() time.Duration {
	if l.NTrain == 0 {
		return 0
	}
	return l.SimTime / time.Duration(l.NTrain)
}

// MeanLookupTime returns the mean duration of a served lookup.
func (l *Ledger) MeanLookupTime() time.Duration {
	if l.NLookup == 0 {
		return 0
	}
	return l.LookupTime / time.Duration(l.NLookup)
}

// MeanLearnTimePerSample returns Tlearn, the per-sample training cost.
func (l *Ledger) MeanLearnTimePerSample() time.Duration {
	if l.LearnSamples == 0 {
		return 0
	}
	return l.LearnTime / time.Duration(l.LearnSamples)
}

// SurrogateFraction returns the fraction of answered queries served by the
// surrogate.
func (l *Ledger) SurrogateFraction() float64 {
	total := l.NLookup + l.NTrain
	if total == 0 {
		return 0
	}
	return float64(l.NLookup) / float64(total)
}

// EffectiveSpeedup evaluates the paper's formula on the measured means,
// taking the measured simulation time as Tseq and Ttrain (the wrapper runs
// simulations sequentially; callers with parallel training farms can pass
// an explicit parallelism factor to scale Ttrain).
func (l *Ledger) EffectiveSpeedup(trainParallelism float64) float64 {
	if l.NLookup == 0 && l.NTrain == 0 {
		return math.NaN()
	}
	if trainParallelism <= 0 {
		trainParallelism = 1
	}
	tseq := l.MeanSimTime().Seconds()
	ttrain := tseq / trainParallelism
	tlearn := l.MeanLearnTimePerSample().Seconds()
	tlookup := l.MeanLookupTime().Seconds()
	return EffectiveSpeedup(tseq, ttrain, tlearn, tlookup, float64(l.NLookup), float64(l.NTrain))
}

// String renders the ledger as a compact report.
func (l Ledger) String() string {
	return fmt.Sprintf(
		"ledger{sim:%d(%.3gs) lookup:%d(%.3gs) rejected:%d failed:%d fits:%d(%.3gs) surrogate-frac:%.1f%%}",
		l.NTrain, l.SimTime.Seconds(),
		l.NLookup, l.LookupTime.Seconds(),
		l.NRejected, l.NFailed,
		l.NTrainingRuns, l.LearnTime.Seconds(),
		100*l.SurrogateFraction(),
	)
}

// ledgerBox is the concurrency shell both serving runtimes embed: a
// Ledger behind its own mutex (always acquired after any wrapper state
// lock). The single-event recorders below are deliberately closure-free —
// the per-query serving path calls them, and a captured-variable closure
// per query is a heap allocation the hot path cannot afford.
type ledgerBox struct {
	ledMu  sync.Mutex
	ledger Ledger
}

// Ledger returns a copy of the effective-performance ledger.
func (b *ledgerBox) Ledger() Ledger {
	b.ledMu.Lock()
	defer b.ledMu.Unlock()
	return b.ledger
}

// record applies one ledger mutation under the ledger lock; batch paths
// use it to fold many events into a single lock acquisition.
func (b *ledgerBox) record(f func(l *Ledger)) {
	b.ledMu.Lock()
	f(&b.ledger)
	b.ledMu.Unlock()
}

func (b *ledgerBox) recordLookup(d time.Duration) {
	b.ledMu.Lock()
	b.ledger.RecordLookup(d)
	b.ledMu.Unlock()
}

func (b *ledgerBox) recordRejectedLookup(d time.Duration) {
	b.ledMu.Lock()
	b.ledger.RecordRejectedLookup(d)
	b.ledMu.Unlock()
}

// recordBatchLookups folds one batched lookup pass — served accepted
// rows and rejected UQ failures, each charged the per-row share of the
// pass — into a single lock acquisition, closure-free so the zero-alloc
// batch serving loop can afford it.
func (b *ledgerBox) recordBatchLookups(per time.Duration, served, rejected int) {
	b.ledMu.Lock()
	for k := 0; k < served; k++ {
		b.ledger.RecordLookup(per)
	}
	for k := 0; k < rejected; k++ {
		b.ledger.RecordRejectedLookup(per)
	}
	b.ledMu.Unlock()
}

func (b *ledgerBox) recordSimulation(d time.Duration) {
	b.ledMu.Lock()
	b.ledger.RecordSimulation(d)
	b.ledMu.Unlock()
}

func (b *ledgerBox) recordFailedRun(d time.Duration) {
	b.ledMu.Lock()
	b.ledger.RecordFailedRun(d)
	b.ledMu.Unlock()
}

// SpeedupCurve sweeps the lookup/train ratio and returns the effective
// speedup at each point: the data behind experiment E1's series. Ratios
// are Nlookup/Ntrain with Ntrain held fixed.
func SpeedupCurve(tseq, ttrain, tlearn, tlookup float64, ntrain float64, ratios []float64) []float64 {
	out := make([]float64, len(ratios))
	for i, r := range ratios {
		out[i] = EffectiveSpeedup(tseq, ttrain, tlearn, tlookup, r*ntrain, ntrain)
	}
	return out
}
