package core

import (
	"math"
	"testing"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// quantWrapper builds a pretrained wrapper serving its quantized program.
// dropout 0 keeps MC passes deterministic so quant answers are exactly
// reproducible and predictive std is exactly zero.
func quantWrapper(t testing.TB, dropout, uqThreshold float64) (*Wrapper, *NNSurrogate) {
	t.Helper()
	rng := xrand.New(0x9a27)
	oracle := OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		return []float64{math.Sin(x[0]) + 0.5*x[1]}, nil
	}}
	sur := NewNNSurrogate(2, 1, []int{16}, dropout, rng)
	sur.Epochs = 50
	sur.MCPasses = 8
	w := NewWrapper(oracle, sur, WrapperConfig{
		MinTrainSamples: 10, UQThreshold: uqThreshold, Quantized: true,
	})
	design := tensor.NewMatrix(40, 2)
	for i := 0; i < design.Rows; i++ {
		design.Set(i, 0, rng.Range(-1, 1))
		design.Set(i, 1, rng.Range(-1, 1))
	}
	if err := w.Pretrain(design); err != nil {
		t.Fatal(err)
	}
	if !sur.QuantizedReady() {
		t.Fatal("Quantized wrapper did not compile a quantized program on Pretrain")
	}
	return w, sur
}

// TestWrapperQuantizedServing checks the headline contract: a Quantized
// wrapper serves lookups through the int8 program, counts them, and the
// answers stay within the compile-time error bound of the float program.
func TestWrapperQuantizedServing(t *testing.T) {
	w, sur := quantWrapper(t, 0, 100) // threshold far above the gate band
	rng := xrand.New(0x51)
	const n = 25
	for k := 0; k < n; k++ {
		x := []float64{rng.Range(-1, 1), rng.Range(-1, 1)}
		y, src, _, err := w.Query(x)
		if err != nil {
			t.Fatal(err)
		}
		if src != FromSurrogate {
			t.Fatalf("query %d not surrogate-served", k)
		}
		want := sur.Predict(x)
		if math.Abs(y[0]-want[0]) > sur.QuantErrorBound()+1e-12 {
			t.Fatalf("query %d: quantized %g vs float %g exceeds bound %g",
				k, y[0], want[0], sur.QuantErrorBound())
		}
	}
	queries, fallbacks := w.QuantStats()
	if queries != n {
		t.Fatalf("quant queries = %d, want %d", queries, n)
	}
	if fallbacks != 0 {
		t.Fatalf("unexpected fallbacks = %d with threshold far outside the gate band", fallbacks)
	}
}

// TestWrapperQuantBoundaryFallback forces the accept/reject decision into
// the quantization error band: with a deterministic surrogate the
// predictive std is exactly 0, so a threshold of ~0 sits within
// QuantGateBound of the measured std and every lookup must re-run on the
// retained float program.
func TestWrapperQuantBoundaryFallback(t *testing.T) {
	w, sur := quantWrapper(t, 0, 1e-9)
	if sur.QuantGateBound() <= 1e-9 {
		t.Fatalf("gate bound %g too small to straddle the test threshold", sur.QuantGateBound())
	}
	rng := xrand.New(0x52)
	const n = 10
	for k := 0; k < n; k++ {
		x := []float64{rng.Range(-1, 1), rng.Range(-1, 1)}
		_, src, _, err := w.Query(x)
		if err != nil {
			t.Fatal(err)
		}
		// std is exactly 0 <= threshold, so the float re-run still serves.
		if src != FromSurrogate {
			t.Fatalf("query %d not surrogate-served after float fallback", k)
		}
	}
	queries, fallbacks := w.QuantStats()
	if queries != n || fallbacks != n {
		t.Fatalf("boundary stats = (%d, %d), want every lookup counted and every lookup falling back (%d, %d)",
			queries, fallbacks, n, n)
	}
}

// TestWrapperQuantClipFallback drives an input far outside the calibration
// envelope: QuantizeVec clips, the quantized pass reports !ok, and the
// lookup silently re-runs on the float program instead of serving a
// saturated int8 answer.
func TestWrapperQuantClipFallback(t *testing.T) {
	w, sur := quantWrapper(t, 0, 100)
	x := []float64{60, -60} // trained on [-1,1]^2: clips after scaling
	y, src, _, err := w.Query(x)
	if err != nil {
		t.Fatal(err)
	}
	if src != FromSurrogate {
		t.Fatal("clipped query not surrogate-served")
	}
	want := sur.Predict(x)
	if math.Abs(y[0]-want[0]) > 1e-12 {
		t.Fatalf("clipped query served %g, want exact float answer %g", y[0], want[0])
	}
	_, fallbacks := w.QuantStats()
	if fallbacks == 0 {
		t.Fatal("clipped input did not count a float fallback")
	}
}

// TestWrapperQuantBatchMatchesSingle checks the batched quantized path
// agrees with single-point quantized queries and counts per-row stats.
func TestWrapperQuantBatchMatchesSingle(t *testing.T) {
	w, _ := quantWrapper(t, 0, 100)
	rng := xrand.New(0x53)
	batch := tensor.NewMatrix(17, 2)
	for i := 0; i < batch.Rows; i++ {
		batch.Set(i, 0, rng.Range(-1, 1))
		batch.Set(i, 1, rng.Range(-1, 1))
	}
	q0, _ := w.QuantStats()
	res, err := w.QueryBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	q1, _ := w.QuantStats()
	if q1-q0 != uint64(batch.Rows) {
		t.Fatalf("batch counted %d quant queries, want %d", q1-q0, batch.Rows)
	}
	for i := range res {
		if res[i].Src != FromSurrogate {
			t.Fatalf("row %d not surrogate-served", i)
		}
		y, _, _, err := w.Query(batch.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res[i].Y[0]-y[0]) > 1e-12 {
			t.Fatalf("row %d: batch %g vs single %g", i, res[i].Y[0], y[0])
		}
	}
}

// TestShardedQuantizedServing checks the sharded plane end to end: the
// wrapped factory quantizes every published generation, both the scalar
// and batched lookup paths serve int8, and the per-wrapper counters move.
func TestShardedQuantizedServing(t *testing.T) {
	rng := xrand.New(0x54)
	oracle := OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		return []float64{x[0] - x[1]}, nil
	}}
	factory := NewNNSurrogateFactory(2, 1, []int{12}, 0, rng, func(s *NNSurrogate) {
		s.Epochs = 30
		s.MCPasses = 4
	})
	w := NewShardedWrapper(oracle, factory, ShardedConfig{
		Shards: 2, MinTrainSamples: 10, UQThreshold: 100, Quantized: true,
	})
	design := tensor.NewMatrix(64, 2)
	for i := 0; i < design.Rows; i++ {
		design.Set(i, 0, rng.Range(-1, 1))
		design.Set(i, 1, rng.Range(-1, 1))
	}
	if err := w.Pretrain(design); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 8; k++ {
		x := []float64{rng.Range(-1, 1), rng.Range(-1, 1)}
		_, src, _, err := w.Query(x)
		if err != nil {
			t.Fatal(err)
		}
		if src != FromSurrogate {
			t.Fatalf("query %d not surrogate-served", k)
		}
	}
	scalarQ, _ := w.QuantStats()
	if scalarQ != 8 {
		t.Fatalf("scalar quant queries = %d, want 8: factory wrap did not quantize the published generation", scalarQ)
	}
	batch := tensor.NewMatrix(30, 2)
	for i := 0; i < batch.Rows; i++ {
		batch.Set(i, 0, rng.Range(-1, 1))
		batch.Set(i, 1, rng.Range(-1, 1))
	}
	res := make([]BatchResult, batch.Rows)
	if err := w.QueryBatchInto(batch, res); err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if res[i].Src != FromSurrogate {
			t.Fatalf("batch row %d not surrogate-served", i)
		}
	}
	batchQ, fallbacks := w.QuantStats()
	if batchQ-scalarQ != uint64(batch.Rows) {
		t.Fatalf("batch counted %d quant queries, want %d", batchQ-scalarQ, batch.Rows)
	}
	if fallbacks != 0 {
		t.Fatalf("unexpected fallbacks = %d with threshold far outside the gate band", fallbacks)
	}
	w.Wait()
}
