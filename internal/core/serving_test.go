package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/raceflag"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// servingTestWrapper builds a pretrained wrapper whose UQ gate always
// passes, so every Query exercises the pure surrogate serving path.
func servingTestWrapper(t *testing.T) *Wrapper {
	t.Helper()
	rng := xrand.New(0xa110c)
	oracle := OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		return []float64{math.Sin(x[0]) + 0.5*x[1]}, nil
	}}
	sur := NewNNSurrogate(2, 1, []int{16}, 0.1, rng)
	sur.Epochs = 50
	sur.MCPasses = 10
	w := NewWrapper(oracle, sur, WrapperConfig{MinTrainSamples: 10, UQThreshold: 100})
	design := tensor.NewMatrix(40, 2)
	for i := 0; i < design.Rows; i++ {
		design.Set(i, 0, rng.Range(-1, 1))
		design.Set(i, 1, rng.Range(-1, 1))
	}
	if err := w.Pretrain(design); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestQueryServingAllocs pins the single-query serving cost: a
// surrogate-served Query runs the compiled kernel through pooled staging
// buffers, leaving only the caller-owned result vector — at most 2
// allocations per query, down from the ~5/query (320 per 64-query loop)
// of the interpreted path.
func TestQueryServingAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("sync.Pool drops items under -race; alloc counts through pooled paths are meaningless")
	}
	w := servingTestWrapper(t)
	x := []float64{0.3, -0.2}
	if _, src, _, err := w.Query(x); err != nil || src != FromSurrogate {
		t.Fatalf("warmup query src=%v err=%v, want surrogate hit", src, err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, _, err := w.Query(x); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("surrogate-served Query allocates %g times, want <= 2", allocs)
	}
}

// TestSurrogateCompiledPathMatchesInterpreted checks the compiled serving
// kernel against the interpreted layer-graph path on the same trained
// surrogate: identical point predictions (up to rounding) and consistent
// UQ behaviour.
func TestSurrogateCompiledPathMatchesInterpreted(t *testing.T) {
	rng := xrand.New(0xc0de)
	sur := NewNNSurrogate(2, 1, []int{12}, 0.1, rng)
	sur.Epochs = 40
	x := tensor.NewMatrix(30, 2)
	y := tensor.NewMatrix(30, 1)
	for i := 0; i < x.Rows; i++ {
		a, b := rng.Range(-1, 1), rng.Range(-1, 1)
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y.Set(i, 0, a*b)
	}
	if err := sur.Train(x, y); err != nil {
		t.Fatal(err)
	}
	if sur.compiled == nil {
		t.Fatal("trained NNSurrogate did not compile its network")
	}
	probe := []float64{0.4, -0.3}
	got := sur.Predict(probe)
	// Interpreted reference: run the layer graph directly.
	want := sur.yScaler.Inverse(sur.net.Predict(sur.xScaler.TransformVec(probe)))
	if math.Abs(got[0]-want[0]) > 1e-12 {
		t.Fatalf("compiled Predict %g vs interpreted %g", got[0], want[0])
	}
	mean, std := sur.PredictWithUQ(probe)
	if len(mean) != 1 || len(std) != 1 {
		t.Fatalf("malformed UQ result %v %v", mean, std)
	}
	if std[0] <= 0 || math.IsNaN(std[0]) {
		t.Fatalf("dropout surrogate UQ std %g, want > 0", std[0])
	}
	if math.Abs(mean[0]-want[0]) > 0.5*math.Abs(want[0])+0.5 {
		t.Fatalf("MC mean %g wildly off the point prediction %g", mean[0], want[0])
	}
}

// TestAutoRefitPublishesAndDrainsStaleness exercises the timer-driven
// periodic retrainer end to end: ingested (never query-triggered) data
// makes shards stale, the driver refits them in the background, the
// staleness counters drain, and the shards come out serving.
func TestAutoRefitPublishesAndDrainsStaleness(t *testing.T) {
	rng := xrand.New(0xaa10)
	oracle := OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		return []float64{x[0] + x[1]}, nil
	}}
	factory := NewNNSurrogateFactory(2, 1, []int{8}, 0.1, rng, func(s *NNSurrogate) {
		s.Epochs = 20
		s.MCPasses = 5
	})
	// RetrainEvery 0: nothing but the auto-refit driver ever trains.
	w := NewShardedWrapper(oracle, factory, ShardedConfig{
		Shards: 2, MinTrainSamples: 4, UQThreshold: 100,
	})
	xs := tensor.NewMatrix(0, 2)
	ys := tensor.NewMatrix(0, 1)
	for i := 0; i < 24; i++ {
		x := []float64{rng.Range(-1, 1), rng.Range(-1, 1)}
		xs.AppendRow(x)
		ys.AppendRow([]float64{x[0] + x[1]})
	}
	if err := w.Ingest(xs, ys); err != nil {
		t.Fatal(err)
	}
	for i, st := range w.Status() {
		if st.Samples > 0 && st.Stale != st.Samples {
			t.Fatalf("shard %d: %d ingested samples but staleness %d", i, st.Samples, st.Stale)
		}
		if st.Generation != -1 {
			t.Fatalf("shard %d published before any training", i)
		}
	}

	w.StartAutoRefit(2 * time.Millisecond)
	defer w.StopAutoRefit()
	deadline := time.After(10 * time.Second)
	for {
		ready := true
		for _, st := range w.Status() {
			if st.Samples > 0 && (st.Generation < 0 || st.Stale > 0) {
				ready = false
			}
		}
		if ready {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("auto-refit never drained staleness: %+v", w.Status())
		case <-time.After(5 * time.Millisecond):
		}
	}
	w.StopAutoRefit()
	if err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	// The refreshed shards must actually serve.
	if _, src, _, err := w.Query([]float64{0.2, 0.3}); err != nil || src != FromSurrogate {
		t.Fatalf("post-auto-refit query src=%v err=%v, want surrogate", src, err)
	}
	// Stopped driver: new staleness stays put.
	if err := w.Ingest(xs.SliceRows(0, 2), ys.SliceRows(0, 2)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	total := 0
	for _, st := range w.Status() {
		total += st.Stale
	}
	if total != 2 {
		t.Fatalf("stopped auto-refit driver still training: staleness %d, want 2", total)
	}
}

// TestAutoRefitLifecycle pins the driver's start/stop contract: double
// start panics, StopAutoRefit is idempotent and safe without a start.
func TestAutoRefitLifecycle(t *testing.T) {
	rng := xrand.New(0xaa11)
	oracle := OracleFunc{In: 1, Out: 1, F: func(x []float64) ([]float64, error) { return x, nil }}
	factory := NewNNSurrogateFactory(1, 1, []int{4}, 0.1, rng, nil)
	w := NewShardedWrapper(oracle, factory, ShardedConfig{Shards: 1})
	w.StopAutoRefit() // no driver: must not block or panic
	w.StartAutoRefit(time.Hour)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("second StartAutoRefit did not panic")
			}
		}()
		w.StartAutoRefit(time.Hour)
	}()
	w.StopAutoRefit()
	w.StopAutoRefit() // idempotent
	// Restart after stop is allowed.
	w.StartAutoRefit(time.Hour)
	w.StopAutoRefit()
}

// TestRefitStaleSkipsFreshShards checks the staleness gate: a shard whose
// published model has absorbed every sample is not retrained.
func TestRefitStaleSkipsFreshShards(t *testing.T) {
	rng := xrand.New(0xaa12)
	oracle := OracleFunc{In: 1, Out: 1, F: func(x []float64) ([]float64, error) { return x, nil }}
	factory := NewNNSurrogateFactory(1, 1, []int{4}, 0.1, rng, func(s *NNSurrogate) {
		s.Epochs = 10
	})
	w := NewShardedWrapper(oracle, factory, ShardedConfig{Shards: 1, MinTrainSamples: 2})
	xs := tensor.NewMatrix(0, 1)
	ys := tensor.NewMatrix(0, 1)
	for i := 0; i < 8; i++ {
		xs.AppendRow([]float64{rng.Range(-1, 1)})
		ys.AppendRow([]float64{rng.Range(-1, 1)})
	}
	if err := w.Ingest(xs, ys); err != nil {
		t.Fatal(err)
	}
	if n := w.RefitStale(); n != 1 {
		t.Fatalf("first RefitStale spawned %d refits, want 1", n)
	}
	if err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	if n := w.RefitStale(); n != 0 {
		t.Fatalf("fresh shard retrained anyway: %d refits", n)
	}
}

// TestRefitStaleRespectsMinTrainSamples checks the first-fit gate: the
// auto-refit driver must not publish a model for a shard that has not
// yet reached MinTrainSamples, matching the query path's threshold.
func TestRefitStaleRespectsMinTrainSamples(t *testing.T) {
	rng := xrand.New(0xaa13)
	oracle := OracleFunc{In: 1, Out: 1, F: func(x []float64) ([]float64, error) { return x, nil }}
	factory := NewNNSurrogateFactory(1, 1, []int{4}, 0.1, rng, func(s *NNSurrogate) {
		s.Epochs = 10
	})
	w := NewShardedWrapper(oracle, factory, ShardedConfig{Shards: 1, MinTrainSamples: 10})
	xs := tensor.NewMatrix(0, 1)
	ys := tensor.NewMatrix(0, 1)
	for i := 0; i < 9; i++ {
		xs.AppendRow([]float64{rng.Range(-1, 1)})
		ys.AppendRow([]float64{rng.Range(-1, 1)})
	}
	if err := w.Ingest(xs, ys); err != nil {
		t.Fatal(err)
	}
	if n := w.RefitStale(); n != 0 {
		t.Fatalf("RefitStale trained below MinTrainSamples: %d refits on 9/10 samples", n)
	}
	// One more sample reaches the threshold.
	if err := w.Ingest(xs.SliceRows(0, 1), ys.SliceRows(0, 1)); err != nil {
		t.Fatal(err)
	}
	if n := w.RefitStale(); n != 1 {
		t.Fatalf("RefitStale spawned %d refits at the threshold, want 1", n)
	}
	if err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	if st := w.Status(); st[0].Generation < 0 {
		t.Fatal("threshold refit never published")
	}
}
