package core

import (
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// brownoutWrapper builds a pretrained stochastic wrapper (dropout > 0 so
// UQ gating is live) over a call-counting oracle, with Quantized off so
// the ladder's prefer-quant rung is observable as a behavior change.
func brownoutWrapper(t testing.TB, uqThreshold float64) (*Wrapper, *NNSurrogate, *atomic.Int64) {
	t.Helper()
	rng := xrand.New(0xB0B0)
	var oracleCalls atomic.Int64
	oracle := OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		oracleCalls.Add(1)
		return []float64{math.Sin(x[0]) + 0.5*x[1]}, nil
	}}
	sur := NewNNSurrogate(2, 1, []int{16}, 0.3, rng)
	sur.Epochs = 50
	sur.MCPasses = 8
	w := NewWrapper(oracle, sur, WrapperConfig{
		MinTrainSamples: 10, UQThreshold: uqThreshold,
	})
	design := tensor.NewMatrix(40, 2)
	for i := 0; i < design.Rows; i++ {
		design.Set(i, 0, rng.Range(-1, 1))
		design.Set(i, 1, rng.Range(-1, 1))
	}
	if err := w.Pretrain(design); err != nil {
		t.Fatal(err)
	}
	oracleCalls.Store(0) // pretraining's oracle sweeps don't count
	return w, sur, &oracleCalls
}

func TestBrownoutLadderMCPassCap(t *testing.T) {
	_, sur, _ := brownoutWrapper(t, 100)
	if got := sur.passes(); got != 8 {
		t.Fatalf("uncapped passes = %d, want MCPasses 8", got)
	}
	sur.SetMCPassCap(brownoutMCPasses)
	if got := sur.passes(); got != brownoutMCPasses {
		t.Fatalf("capped passes = %d, want %d", got, brownoutMCPasses)
	}
	sur.SetMCPassCap(1)
	if got := sur.passes(); got != 1 {
		t.Fatalf("NoUQ passes = %d, want 1", got)
	}
	// A cap above MCPasses must not raise the pass count.
	sur.SetMCPassCap(64)
	if got := sur.passes(); got != 8 {
		t.Fatalf("overwide cap raised passes to %d", got)
	}
	sur.SetMCPassCap(0)
	if got := sur.passes(); got != 8 {
		t.Fatalf("cleared cap: passes = %d, want 8", got)
	}
}

// TestBrownoutNoUQServesEverything is the bottom rung's contract: with a
// threshold so tight every stochastic query falls back to the oracle,
// BrownoutNoUQ (single pass → std identically 0) keeps every answer on
// the surrogate and the oracle cold.
func TestBrownoutNoUQServesEverything(t *testing.T) {
	w, _, oracleCalls := brownoutWrapper(t, 1e-12)
	rng := xrand.New(0x77)
	x := func() []float64 { return []float64{rng.Range(-1, 1), rng.Range(-1, 1)} }

	// Level 0: the tight threshold sends stochastic queries to the oracle.
	for i := 0; i < 8; i++ {
		if _, _, _, err := w.Query(x()); err != nil {
			t.Fatal(err)
		}
	}
	if oracleCalls.Load() == 0 {
		t.Fatal("threshold 1e-12 with dropout 0.3 never reached the oracle; test premise broken")
	}

	w.SetBrownoutLevel(BrownoutNoUQ)
	if w.BrownoutLevel() != BrownoutNoUQ {
		t.Fatalf("level = %d, want %d", w.BrownoutLevel(), BrownoutNoUQ)
	}
	before := oracleCalls.Load()
	for i := 0; i < 32; i++ {
		_, src, _, err := w.Query(x())
		if err != nil {
			t.Fatal(err)
		}
		if src != FromSurrogate {
			t.Fatalf("browned-out query %d served from %v, want surrogate", i, src)
		}
	}
	if got := oracleCalls.Load(); got != before {
		t.Fatalf("oracle called %d times under BrownoutNoUQ, want 0", got-before)
	}

	// Recovery: stepping back to 0 restores the UQ gate and the oracle
	// fallback with it.
	w.SetBrownoutLevel(BrownoutOff)
	before = oracleCalls.Load()
	for i := 0; i < 16; i++ {
		if _, _, _, err := w.Query(x()); err != nil {
			t.Fatal(err)
		}
	}
	if oracleCalls.Load() == before {
		t.Fatal("oracle fallback did not resume after brownout lifted")
	}
}

// TestBrownoutPreferQuant asserts the first rung: a wrapper configured
// with Quantized off but holding a compiled quantized program starts
// serving through it at BrownoutPreferQuant.
func TestBrownoutPreferQuant(t *testing.T) {
	// Deterministic surrogate with a compiled quantized program, but the
	// wrapper prefers the float path (Quantized false).
	rng := xrand.New(0x9a27)
	oracle := OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		return []float64{math.Sin(x[0]) + 0.5*x[1]}, nil
	}}
	sur := NewNNSurrogate(2, 1, []int{16}, 0, rng)
	sur.Epochs = 50
	sur.MCPasses = 8
	sur.Quantize = true // compile the int8 program even though the wrapper prefers float
	w := NewWrapper(oracle, sur, WrapperConfig{MinTrainSamples: 10, UQThreshold: 100})
	design := tensor.NewMatrix(40, 2)
	for i := 0; i < design.Rows; i++ {
		design.Set(i, 0, rng.Range(-1, 1))
		design.Set(i, 1, rng.Range(-1, 1))
	}
	if err := w.Pretrain(design); err != nil {
		t.Fatal(err)
	}
	if !sur.QuantizedReady() {
		t.Fatal("quantized program not compiled on Pretrain")
	}

	x := []float64{0.25, -0.5}
	if _, _, _, err := w.Query(x); err != nil {
		t.Fatal(err)
	}
	if q, _ := w.QuantStats(); q != 0 {
		t.Fatalf("float-preferring wrapper served %d quant queries at level 0", q)
	}
	w.SetBrownoutLevel(BrownoutPreferQuant)
	const n = 16
	for i := 0; i < n; i++ {
		if _, _, _, err := w.Query(x); err != nil {
			t.Fatal(err)
		}
	}
	if q, _ := w.QuantStats(); q != n {
		t.Fatalf("quant queries = %d at BrownoutPreferQuant, want %d", q, n)
	}
}

// TestBrownoutClamps asserts out-of-range levels clamp to the ladder.
func TestBrownoutClamps(t *testing.T) {
	w, sur, _ := brownoutWrapper(t, 100)
	w.SetBrownoutLevel(99)
	if w.BrownoutLevel() != BrownoutNoUQ {
		t.Fatalf("level 99 clamped to %d, want %d", w.BrownoutLevel(), BrownoutNoUQ)
	}
	if got := sur.passes(); got != 1 {
		t.Fatalf("passes at clamped bottom = %d, want 1", got)
	}
	w.SetBrownoutLevel(-5)
	if w.BrownoutLevel() != BrownoutOff {
		t.Fatalf("level -5 clamped to %d, want 0", w.BrownoutLevel())
	}
	if got := sur.passes(); got != 8 {
		t.Fatalf("passes after clearing = %d, want 8", got)
	}
}

// TestShardedBrownoutPropagates asserts the sharded wrapper pushes the
// level into every published shard surrogate, including generations
// published after the brownout began.
func TestShardedBrownoutPropagates(t *testing.T) {
	rng := xrand.New(0x5A)
	oracle := OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		return []float64{x[0] + x[1]}, nil
	}}
	frng := xrand.New(100)
	factory := func() Surrogate {
		s := NewNNSurrogate(2, 1, []int{8}, 0.3, frng.Split())
		s.Epochs = 30
		s.MCPasses = 8
		return s
	}
	sw := NewShardedWrapper(oracle, factory, ShardedConfig{
		Shards: 2, MinTrainSamples: 8, UQThreshold: 100,
	})
	design := tensor.NewMatrix(32, 2)
	for i := 0; i < design.Rows; i++ {
		design.Set(i, 0, rng.Range(-1, 1))
		design.Set(i, 1, rng.Range(-1, 1))
	}
	if err := sw.Pretrain(design); err != nil {
		t.Fatal(err)
	}

	sw.SetBrownoutLevel(BrownoutReducedMC)
	if sw.BrownoutLevel() != BrownoutReducedMC {
		t.Fatalf("level = %d, want %d", sw.BrownoutLevel(), BrownoutReducedMC)
	}
	for i, sh := range sw.shards {
		sur := *sh.active.Load()
		ns, ok := sur.(*NNSurrogate)
		if !ok {
			t.Fatalf("shard %d surrogate is %T", i, sur)
		}
		if got := ns.passes(); got != brownoutMCPasses {
			t.Fatalf("shard %d passes = %d, want %d", i, got, brownoutMCPasses)
		}
	}

	// A retrain that publishes mid-brownout must come out already capped.
	if err := sw.TrainAll(); err != nil {
		t.Fatal(err)
	}
	for i, sh := range sw.shards {
		ns := (*sh.active.Load()).(*NNSurrogate)
		if got := ns.passes(); got != brownoutMCPasses {
			t.Fatalf("shard %d republished uncapped: passes = %d, want %d", i, got, brownoutMCPasses)
		}
	}

	sw.SetBrownoutLevel(BrownoutOff)
	for i, sh := range sw.shards {
		ns := (*sh.active.Load()).(*NNSurrogate)
		if got := ns.passes(); got != 8 {
			t.Fatalf("shard %d still capped after recovery: passes = %d", i, got)
		}
	}
}
