package core

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// uqSur predicts the mean of its training targets with a fixed claimed
// uncertainty — a model whose rejected-lookup stream the drift tests
// can calibrate exactly.
type uqSur struct {
	mean    []float64
	sigma   float64
	trained bool
}

func (m *uqSur) Train(x, y *tensor.Matrix) error {
	m.mean = make([]float64, y.Cols)
	for i := 0; i < y.Rows; i++ {
		for j := 0; j < y.Cols; j++ {
			m.mean[j] += y.At(i, j)
		}
	}
	for j := range m.mean {
		m.mean[j] /= float64(y.Rows)
	}
	m.trained = true
	return nil
}
func (m *uqSur) Trained() bool                 { return m.trained }
func (m *uqSur) Predict(x []float64) []float64 { return append([]float64(nil), m.mean...) }
func (m *uqSur) PredictWithUQ(x []float64) (mean, std []float64) {
	return m.Predict(x), []float64{m.sigma}
}

func TestCorrectedResid(t *testing.T) {
	// A model expecting residuals above the baseline has its observation
	// scaled down by exactly the inflation: a calibrated rejected point
	// (resid == expected) folds in at the baseline.
	base := 0.01
	expAbs := 1.0
	if got := correctedResid(expAbs, expAbs, base); math.Abs(got-base) > 1e-15 {
		t.Errorf("calibrated rejected residual folded to %g, want baseline %g", got, base)
	}
	// Triple the expectation → triple the baseline.
	if got := correctedResid(3*expAbs, expAbs, base); math.Abs(got-3*base) > 1e-12 {
		t.Errorf("3× residual folded to %g, want %g", got, 3*base)
	}
	// Expectation at or below the baseline: no correction.
	if got := correctedResid(0.5, 0.004, base); got != 0.5 {
		t.Errorf("low-uncertainty residual rescaled to %g, want raw 0.5", got)
	}
	// Floored baseline keeps a zero-residual model's corrections finite.
	if got := correctedResid(1, 2, 0); got <= 0 || math.IsInf(got, 0) {
		t.Errorf("zero-baseline correction produced %g", got)
	}
}

// driftQueryWrapper builds a 1-shard wrapper whose every query is
// UQ-rejected (claimed σ above the threshold) so each one falls back to
// the oracle and feeds the drift tracker.
func driftQueryWrapper(oracle Oracle) *ShardedWrapper {
	return NewShardedWrapper(oracle, func() Surrogate { return &uqSur{sigma: 1} }, ShardedConfig{
		Router:          HashRouter{Shards: 1},
		MinTrainSamples: 4,
		RetrainEvery:    0,   // drift is the only retrain trigger
		UQThreshold:     0.5, // σ=1 → every lookup rejected
		DriftFactor:     2,
		DriftAlpha:      1, // observations feed straight through: deterministic
	})
}

func seedDriftWrapper(t *testing.T, w *ShardedWrapper) {
	t.Helper()
	xs := tensor.NewMatrix(8, 2)
	ys := tensor.NewMatrix(8, 1)
	for i := 0; i < 8; i++ {
		xs.Set(i, 0, float64(i))
		ys.Set(i, 0, 1)
	}
	if err := w.Ingest(xs, ys); err != nil {
		t.Fatal(err)
	}
	if err := w.TrainAll(); err != nil {
		t.Fatal(err)
	}
	if g := w.Status()[0].Generation; g < 0 {
		t.Fatal("model never published")
	}
}

// TestQueryFallbackDrift pins the satellite contract: UQ-rejected
// oracle fallbacks on the single-query path feed the drift EWMA, with
// the bias correction keeping a calibrated model clean — residuals the
// model's own uncertainty explains do not trip the flag; residuals far
// beyond it do.
func TestQueryFallbackDrift(t *testing.T) {
	truth := 1 + expectedAbsFactor // exactly the model's expected |resid| for σ=1
	oracle := OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		return []float64{truth}, nil
	}}
	w := driftQueryWrapper(oracle)
	seedDriftWrapper(t, w)

	// Calibrated fallbacks: the model predicted this residual. No trip.
	for i := 0; i < 12; i++ {
		if _, src, _, err := w.Query([]float64{float64(i), 0}); err != nil || src != FromSimulation {
			t.Fatalf("query = (%v, %v), want oracle fallback", src, err)
		}
	}
	if st := w.Status()[0]; st.Drifted {
		t.Fatalf("calibrated fallbacks tripped drift: %+v", st)
	}

	// Drifted oracle: residual ≫ the claimed uncertainty. Trips.
	truth = 10
	if _, src, _, err := w.Query([]float64{100, 0}); err != nil || src != FromSimulation {
		t.Fatalf("query = (%v, %v), want oracle fallback", src, err)
	}
	st := w.Status()[0]
	if !st.Drifted || st.DriftRatio <= 2 {
		t.Fatalf("drifted fallback did not trip: %+v", st)
	}
}

// TestBatchFallbackDrift pins the same contract on the batch path
// (QueryBatchInto → foldFallbackResiduals).
func TestBatchFallbackDrift(t *testing.T) {
	truth := 1 + expectedAbsFactor
	oracle := OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		return []float64{truth}, nil
	}}
	w := driftQueryWrapper(oracle)
	seedDriftWrapper(t, w)

	batch := func(n int, x0 float64) {
		t.Helper()
		xs := tensor.NewMatrix(n, 2)
		for i := 0; i < n; i++ {
			xs.Set(i, 0, x0+float64(i))
		}
		res, err := w.QueryBatch(xs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range res {
			if res[i].Err != nil || res[i].Src != FromSimulation {
				t.Fatalf("row %d = (%v, %v), want oracle fallback", i, res[i].Src, res[i].Err)
			}
		}
	}

	batch(12, 0)
	if st := w.Status()[0]; st.Drifted {
		t.Fatalf("calibrated batch fallbacks tripped drift: %+v", st)
	}

	truth = 10
	batch(4, 100)
	st := w.Status()[0]
	if !st.Drifted || st.DriftRatio <= 2 {
		t.Fatalf("drifted batch fallback did not trip: %+v", st)
	}
}
