package epi

import (
	"fmt"

	"repro/internal/xrand"
)

// State is a disease compartment in the SEIR model of network epidemic
// spread (§II-A, "A popular example of such systems is the SEIR model of
// disease spread in a social network").
type State uint8

// SEIR compartments.
const (
	Susceptible State = iota
	Exposed
	Infectious
	Recovered
)

// DiseaseParams are the epidemiological parameters of one season.
type DiseaseParams struct {
	// Beta is the per-contact per-day transmission probability for a
	// weight-1 (community) edge.
	Beta float64
	// LatentDays is the mean E→I duration (geometric).
	LatentDays float64
	// InfectiousDays is the mean I→R duration (geometric).
	InfectiousDays float64
	// InitialInfections seeds this many random infectious people.
	InitialInfections int
}

// DefaultDiseaseParams is a moderately transmissible seasonal profile.
func DefaultDiseaseParams() DiseaseParams {
	return DiseaseParams{Beta: 0.02, LatentDays: 2, InfectiousDays: 4, InitialInfections: 5}
}

// SeasonResult holds one simulated epidemic season at full resolution.
type SeasonResult struct {
	// WeeklyCounty[w][c] is the number of new infections in county c
	// during week w.
	WeeklyCounty [][]float64
	// WeeklyState[w] is the state-level weekly incidence (sum of counties).
	WeeklyState []float64
	// AttackRate is the final fraction ever infected.
	AttackRate float64
	// PeakWeek is the index of the state-level peak.
	PeakWeek int
}

// Weeks returns the number of simulated weeks.
func (r *SeasonResult) Weeks() int { return len(r.WeeklyState) }

// Simulate runs a discrete-time (daily) stochastic SEIR season over the
// contact network for the given number of weeks and returns weekly
// incidence at county and state resolution.
func Simulate(net *Network, dp DiseaseParams, weeks int, seed uint64) (*SeasonResult, error) {
	n := len(net.People)
	if n == 0 {
		return nil, fmt.Errorf("epi: empty network")
	}
	if dp.Beta < 0 || dp.Beta > 1 {
		return nil, fmt.Errorf("epi: beta %g outside [0,1]", dp.Beta)
	}
	if dp.InitialInfections < 1 || dp.InitialInfections > n {
		return nil, fmt.Errorf("epi: initial infections %d invalid for population %d", dp.InitialInfections, n)
	}
	rng := xrand.New(seed)
	state := make([]State, n)
	// Geometric per-day exit probabilities.
	pEI := 1.0 / dp.LatentDays
	pIR := 1.0 / dp.InfectiousDays

	for _, idx := range rng.SampleWithoutReplacement(n, dp.InitialInfections) {
		state[idx] = Infectious
	}

	res := &SeasonResult{
		WeeklyCounty: make([][]float64, weeks),
		WeeklyState:  make([]float64, weeks),
	}
	everInfected := dp.InitialInfections
	newlyExposed := make([]int, 0, 256)
	for w := 0; w < weeks; w++ {
		res.WeeklyCounty[w] = make([]float64, net.Counties)
		for day := 0; day < 7; day++ {
			newlyExposed = newlyExposed[:0]
			// Transmission from every infectious person.
			for i := 0; i < n; i++ {
				if state[i] != Infectious {
					continue
				}
				adj := net.Adj[i]
				wts := net.Weight[i]
				for e, j := range adj {
					if state[j] != Susceptible {
						continue
					}
					p := dp.Beta * float64(wts[e])
					if p > 1 {
						p = 1
					}
					if rng.Bernoulli(p) {
						newlyExposed = append(newlyExposed, int(j))
					}
				}
			}
			// Progression E→I, I→R.
			for i := 0; i < n; i++ {
				switch state[i] {
				case Exposed:
					if rng.Bernoulli(pEI) {
						state[i] = Infectious
					}
				case Infectious:
					if rng.Bernoulli(pIR) {
						state[i] = Recovered
					}
				}
			}
			// Apply new exposures (a person can appear twice in the list;
			// the state check deduplicates).
			for _, j := range newlyExposed {
				if state[j] == Susceptible {
					state[j] = Exposed
					res.WeeklyCounty[w][net.People[j].County]++
					everInfected++
				}
			}
		}
		for c := 0; c < net.Counties; c++ {
			res.WeeklyState[w] += res.WeeklyCounty[w][c]
		}
	}
	res.AttackRate = float64(everInfected) / float64(n)
	peak := 0
	for w, v := range res.WeeklyState {
		if v > res.WeeklyState[peak] {
			peak = w
		}
		_ = v
	}
	res.PeakWeek = peak
	return res, nil
}

// CompartmentCounts tallies the current S/E/I/R totals of a state slice;
// exposed for the conservation property test S+E+I+R == N.
func CompartmentCounts(states []State) (s, e, i, r int) {
	for _, st := range states {
		switch st {
		case Susceptible:
			s++
		case Exposed:
			e++
		case Infectious:
			i++
		case Recovered:
			r++
		}
	}
	return
}
