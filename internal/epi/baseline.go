package epi

import (
	"errors"
	"fmt"
	"math"
	"runtime"

	"repro/internal/parallel"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// EpiFastLike is the mechanistic comparison method of §II-A: it calibrates
// the SEIR model's transmissibility against the observed state-level
// surveillance prefix by grid search over simulation replicates, then
// forecasts future weeks by rerunning the calibrated model. This is the
// "mechanistic models ... are compute intensive and hard to calibrate"
// baseline the paper says DEFSI outperforms at county resolution.
type EpiFastLike struct {
	Net        *Network
	Weeks      int
	ReportRate float64
	// BetaGrid are the candidate transmissibilities; Replicates averages
	// stochastic runs per candidate.
	BetaGrid   []float64
	Replicates int
	Base       DiseaseParams
	Seed       uint64

	calibrated     bool
	bestBeta       float64
	forecastCounty [][]float64 // mean replicate county curves
	forecastState  []float64
}

// NewEpiFastLike constructs the baseline forecaster.
func NewEpiFastLike(net *Network, base DiseaseParams, weeks int, reportRate float64, seed uint64) *EpiFastLike {
	grid := make([]float64, 0, 9)
	for f := 0.5; f <= 2.01; f += 0.1875 {
		grid = append(grid, base.Beta*f)
	}
	return &EpiFastLike{
		Net: net, Weeks: weeks, ReportRate: reportRate,
		BetaGrid: grid, Replicates: 3, Base: base, Seed: seed,
	}
}

// Calibrate fits beta to the observed surveillance prefix (weeks
// [0, uptoWeek)) and caches the calibrated model's mean forecast curves.
//
// The grid candidates are independent simulation fans, so they evaluate
// concurrently over a bounded worker pool — the same parallel oracle
// fan-out core's wrappers use for rejected batch rows. Replicate seeds are
// pre-drawn in grid order from the calibration rng, so the result is
// bit-identical to a sequential scan regardless of scheduling.
func (e *EpiFastLike) Calibrate(surveillance []float64, uptoWeek int) error {
	if uptoWeek < 2 || uptoWeek > len(surveillance) {
		return fmt.Errorf("epi: calibration prefix %d invalid", uptoWeek)
	}
	rng := xrand.New(e.Seed)
	seeds := make([][]uint64, len(e.BetaGrid))
	for bi := range e.BetaGrid {
		seeds[bi] = make([]uint64, e.Replicates)
		for rep := range seeds[bi] {
			seeds[bi][rep] = rng.Uint64()
		}
	}

	type candidate struct {
		ok         bool
		score      float64
		countyMean [][]float64
		stateMean  []float64
	}
	cands := make([]candidate, len(e.BetaGrid))
	eval := func(bi int) {
		dp := e.Base
		dp.Beta = e.BetaGrid[bi]
		countyMean := make([][]float64, e.Weeks)
		stateMean := make([]float64, e.Weeks)
		for w := range countyMean {
			countyMean[w] = make([]float64, e.Net.Counties)
		}
		for rep := 0; rep < e.Replicates; rep++ {
			res, err := Simulate(e.Net, dp, e.Weeks, seeds[bi][rep])
			if err != nil {
				return
			}
			for w := 0; w < e.Weeks; w++ {
				stateMean[w] += res.WeeklyState[w] / float64(e.Replicates)
				for c := 0; c < e.Net.Counties; c++ {
					countyMean[w][c] += res.WeeklyCounty[w][c] / float64(e.Replicates)
				}
			}
		}
		// Score: RMSE between reported prefix and the model's *reported*
		// prefix (apply the reporting rate to simulated incidence).
		score := 0.0
		for w := 0; w < uptoWeek; w++ {
			d := surveillance[w] - stateMean[w]*e.ReportRate
			score += d * d
		}
		cands[bi] = candidate{ok: true, score: score, countyMean: countyMean, stateMean: stateMean}
	}

	parallel.ForEachBounded(len(e.BetaGrid), runtime.GOMAXPROCS(0), eval)

	bestScore := math.Inf(1)
	for bi, c := range cands {
		if c.ok && c.score < bestScore {
			bestScore = c.score
			e.bestBeta = e.BetaGrid[bi]
			e.forecastCounty = c.countyMean
			e.forecastState = c.stateMean
		}
	}
	if math.IsInf(bestScore, 1) {
		return errors.New("epi: calibration failed for all candidates")
	}
	e.calibrated = true
	return nil
}

// BestBeta returns the calibrated transmissibility.
func (e *EpiFastLike) BestBeta() float64 { return e.bestBeta }

// ForecastCounty returns the calibrated model's county incidence at week t.
func (e *EpiFastLike) ForecastCounty(t int) ([]float64, error) {
	if !e.calibrated {
		return nil, errors.New("epi: EpiFastLike not calibrated")
	}
	if t < 0 || t >= e.Weeks {
		return nil, fmt.Errorf("epi: week %d out of range", t)
	}
	out := make([]float64, e.Net.Counties)
	copy(out, e.forecastCounty[t])
	return out, nil
}

// ForecastState returns the calibrated model's state incidence at week t.
func (e *EpiFastLike) ForecastState(t int) (float64, error) {
	if !e.calibrated {
		return 0, errors.New("epi: EpiFastLike not calibrated")
	}
	if t < 0 || t >= e.Weeks {
		return 0, fmt.Errorf("epi: week %d out of range", t)
	}
	return e.forecastState[t], nil
}

// PersistenceForecast is the naive data-driven baseline: state-level
// incidence next week equals the last surveillance observation scaled back
// by the reporting rate, downscaled to counties by population share. It
// embodies the paper's observation that "completely data driven models
// cannot discover higher resolution details ... from lower resolution
// ground truth data".
type PersistenceForecast struct {
	Net        *Network
	ReportRate float64
	popShare   []float64
}

// NewPersistenceForecast builds the baseline.
func NewPersistenceForecast(net *Network, reportRate float64) *PersistenceForecast {
	pops := net.CountyPopulations()
	total := 0
	for _, p := range pops {
		total += p
	}
	share := make([]float64, len(pops))
	for i, p := range pops {
		share[i] = float64(p) / float64(total)
	}
	return &PersistenceForecast{Net: net, ReportRate: reportRate, popShare: share}
}

// ForecastCounty predicts week-t county incidence from surveillance week
// t-1 by population downscaling.
func (p *PersistenceForecast) ForecastCounty(surveillance []float64, t int) ([]float64, error) {
	if t < 1 || t > len(surveillance) {
		return nil, fmt.Errorf("epi: persistence needs week %d-1 observed", t)
	}
	stateEst := surveillance[t-1] / p.ReportRate
	out := make([]float64, len(p.popShare))
	for c, s := range p.popShare {
		out[c] = stateEst * s
	}
	return out, nil
}

// ForecastState predicts week-t state incidence as last week's
// surveillance scaled by the reporting rate.
func (p *PersistenceForecast) ForecastState(surveillance []float64, t int) (float64, error) {
	if t < 1 || t > len(surveillance) {
		return 0, fmt.Errorf("epi: persistence needs week %d-1 observed", t)
	}
	return surveillance[t-1] / p.ReportRate, nil
}

// ForecastEval collects per-method forecast errors for experiment E4.
type ForecastEval struct {
	Method     string
	StateRMSE  float64
	CountyRMSE float64
	Weeks      int
}

// EvaluateForecasts scores state and county forecasts of the truth season
// over weeks [fromWeek, truth.Weeks()).
func EvaluateForecasts(truth *SeasonResult, fromWeek int,
	stateF func(t int) (float64, error),
	countyF func(t int) ([]float64, error), method string) (*ForecastEval, error) {
	var statePred, stateTrue, countyPred, countyTrue []float64
	for t := fromWeek; t < truth.Weeks(); t++ {
		sp, err := stateF(t)
		if err != nil {
			return nil, err
		}
		statePred = append(statePred, sp)
		stateTrue = append(stateTrue, truth.WeeklyState[t])
		cp, err := countyF(t)
		if err != nil {
			return nil, err
		}
		if len(cp) != len(truth.WeeklyCounty[t]) {
			return nil, fmt.Errorf("epi: county dimension mismatch %d vs %d", len(cp), len(truth.WeeklyCounty[t]))
		}
		countyPred = append(countyPred, cp...)
		countyTrue = append(countyTrue, truth.WeeklyCounty[t]...)
	}
	return &ForecastEval{
		Method:     method,
		StateRMSE:  stats.RMSE(statePred, stateTrue),
		CountyRMSE: stats.RMSE(countyPred, countyTrue),
		Weeks:      truth.Weeks() - fromWeek,
	}, nil
}
