package epi

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

func smallPopulation(t testing.TB) *Network {
	t.Helper()
	cfg := DefaultPopulationConfig()
	cfg.Counties = 4
	cfg.MeanCountyPop = 250
	cfg.Seed = 99
	net, err := GeneratePopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestGeneratePopulationStructure(t *testing.T) {
	net := smallPopulation(t)
	if net.Counties != 4 {
		t.Fatalf("counties %d", net.Counties)
	}
	pops := net.CountyPopulations()
	total := 0
	for c, p := range pops {
		if p < 2 {
			t.Fatalf("county %d population %d too small", c, p)
		}
		total += p
	}
	if total != len(net.People) {
		t.Fatal("county populations do not sum to total")
	}
	if d := net.MeanDegree(); d < 3 || d > 40 {
		t.Fatalf("mean degree %g implausible", d)
	}
}

func TestGeneratePopulationAdjacencySymmetric(t *testing.T) {
	net := smallPopulation(t)
	// Count directed edges both ways; they must match per unordered pair.
	type pair struct{ a, b int32 }
	counts := map[pair]int{}
	for i, adj := range net.Adj {
		for _, j := range adj {
			a, b := int32(i), j
			if a > b {
				a, b = b, a
			}
			counts[pair{a, b}]++
		}
	}
	for p, c := range counts {
		if c%2 != 0 {
			t.Fatalf("edge %v has odd directed count %d", p, c)
		}
	}
}

func TestGeneratePopulationHouseholdsAreCliques(t *testing.T) {
	net := smallPopulation(t)
	byHousehold := map[int][]int{}
	for i, p := range net.People {
		byHousehold[p.Household] = append(byHousehold[p.Household], i)
	}
	checked := 0
	for _, members := range byHousehold {
		if len(members) < 2 {
			continue
		}
		neighbors := map[int32]bool{}
		for _, j := range net.Adj[members[0]] {
			neighbors[j] = true
		}
		for _, m := range members[1:] {
			if !neighbors[int32(m)] {
				t.Fatalf("household member %d not adjacent to %d", m, members[0])
			}
		}
		checked++
		if checked > 30 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no multi-person households generated")
	}
}

func TestGeneratePopulationInvalidConfig(t *testing.T) {
	cfg := DefaultPopulationConfig()
	cfg.Counties = 0
	if _, err := GeneratePopulation(cfg); err == nil {
		t.Fatal("zero counties accepted")
	}
}

func TestSimulateConservation(t *testing.T) {
	// Total infections over the season can never exceed the population,
	// and weekly incidence is non-negative.
	net := smallPopulation(t)
	res, err := Simulate(net, DefaultDiseaseParams(), 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for w, v := range res.WeeklyState {
		if v < 0 {
			t.Fatalf("negative weekly incidence at week %d", w)
		}
		total += v
		// State = sum of counties.
		sum := 0.0
		for _, c := range res.WeeklyCounty[w] {
			if c < 0 {
				t.Fatal("negative county incidence")
			}
			sum += c
		}
		if math.Abs(sum-v) > 1e-9 {
			t.Fatalf("state incidence %g != county sum %g", v, sum)
		}
	}
	if total > float64(len(net.People)) {
		t.Fatalf("total infections %g exceed population %d", total, len(net.People))
	}
	if res.AttackRate < 0 || res.AttackRate > 1 {
		t.Fatalf("attack rate %g outside [0,1]", res.AttackRate)
	}
}

func TestSimulateDeterministicSeed(t *testing.T) {
	net := smallPopulation(t)
	a, err := Simulate(net, DefaultDiseaseParams(), 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(net, DefaultDiseaseParams(), 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	for w := range a.WeeklyState {
		if a.WeeklyState[w] != b.WeeklyState[w] {
			t.Fatal("same-seed simulations diverged")
		}
	}
	c, err := Simulate(net, DefaultDiseaseParams(), 8, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for w := range a.WeeklyState {
		if a.WeeklyState[w] != c.WeeklyState[w] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical seasons")
	}
}

func TestSimulateBetaMonotonicity(t *testing.T) {
	// Higher transmissibility must produce a larger attack rate (averaged
	// over a few replicates).
	net := smallPopulation(t)
	mean := func(beta float64) float64 {
		dp := DefaultDiseaseParams()
		dp.Beta = beta
		s := 0.0
		for rep := 0; rep < 3; rep++ {
			res, err := Simulate(net, dp, 16, uint64(100+rep))
			if err != nil {
				t.Fatal(err)
			}
			s += res.AttackRate
		}
		return s / 3
	}
	low, high := mean(0.005), mean(0.05)
	if high <= low {
		t.Fatalf("attack rate should rise with beta: %g vs %g", low, high)
	}
}

func TestSimulateValidation(t *testing.T) {
	net := smallPopulation(t)
	dp := DefaultDiseaseParams()
	dp.Beta = 2
	if _, err := Simulate(net, dp, 4, 1); err == nil {
		t.Fatal("beta > 1 accepted")
	}
	dp = DefaultDiseaseParams()
	dp.InitialInfections = 0
	if _, err := Simulate(net, dp, 4, 1); err == nil {
		t.Fatal("zero seeds accepted")
	}
	if _, err := Simulate(&Network{}, DefaultDiseaseParams(), 4, 1); err == nil {
		t.Fatal("empty network accepted")
	}
}

func TestCompartmentCounts(t *testing.T) {
	states := []State{Susceptible, Exposed, Infectious, Recovered, Infectious}
	s, e, i, r := CompartmentCounts(states)
	if s != 1 || e != 1 || i != 2 || r != 1 {
		t.Fatalf("counts %d %d %d %d", s, e, i, r)
	}
	if s+e+i+r != len(states) {
		t.Fatal("compartments do not partition population")
	}
}

func TestSurveilProperties(t *testing.T) {
	rng := xrand.New(5)
	truth := []float64{0, 10, 100, 50, 5}
	obs := Surveil(truth, 0.3, 0.05, rng)
	if len(obs) != len(truth) {
		t.Fatal("length changed")
	}
	for i, v := range obs {
		if v < 0 {
			t.Fatalf("negative surveillance at %d", i)
		}
	}
	// Averaged over many draws, surveillance ≈ truth * reportRate.
	const reps = 2000
	sum := 0.0
	for r := 0; r < reps; r++ {
		sum += Surveil(truth, 0.3, 0.05, rng)[2]
	}
	if mean := sum / reps; math.Abs(mean-30) > 1.5 {
		t.Fatalf("surveillance mean %g want ~30", mean)
	}
}

func TestTwoBranchNetLearns(t *testing.T) {
	rng := xrand.New(6)
	// Synthetic task: yc = c-th fraction of sum of branch-A inputs,
	// modulated by branch-B seasonality.
	const inA, inB, out = 4, 2, 3
	const n = 600
	x := make([][]float64, n)
	y := make([][]float64, n)
	fracs := []float64{0.5, 0.3, 0.2}
	for i := 0; i < n; i++ {
		row := make([]float64, inA+inB)
		sum := 0.0
		for j := 0; j < inA; j++ {
			row[j] = rng.Range(0, 10)
			sum += row[j]
		}
		row[inA] = rng.Float64()
		row[inA+1] = rng.Float64()
		season := 1 + 0.5*row[inA]
		x[i] = row
		yr := make([]float64, out)
		for c := 0; c < out; c++ {
			yr[c] = fracs[c] * sum * season
		}
		y[i] = yr
	}
	net := NewTwoBranchNet(inA, inB, 16, 8, 24, out, rng)
	xm := toMatrix(x)
	ym := toMatrix(y)
	if err := net.Fit(xm, ym, 150, 32, 3e-3); err != nil {
		t.Fatal(err)
	}
	// In-sample accuracy check.
	worstRel := 0.0
	for i := 0; i < 20; i++ {
		pred := net.Predict(x[i])
		for c := range pred {
			denom := math.Max(1, y[i][c])
			if rel := math.Abs(pred[c]-y[i][c]) / denom; rel > worstRel {
				worstRel = rel
			}
		}
	}
	if worstRel > 0.35 {
		t.Fatalf("two-branch net worst relative error %g", worstRel)
	}
}

func TestTwoBranchNetErrors(t *testing.T) {
	rng := xrand.New(7)
	net := NewTwoBranchNet(2, 1, 4, 4, 8, 2, rng)
	if err := net.Fit(toMatrix(nil), toMatrix(nil), 1, 8, 1e-3); err == nil {
		t.Fatal("empty fit should error")
	}
	bad := [][]float64{{1, 2}} // wrong width (needs 3)
	if err := net.Fit(toMatrix(bad), toMatrix([][]float64{{1, 2}}), 1, 8, 1e-3); err == nil {
		t.Fatal("wrong feature count should error")
	}
}

func TestTwoBranchPredictPanicsUntrained(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("predict before fit did not panic")
		}
	}()
	NewTwoBranchNet(2, 1, 4, 4, 8, 1, xrand.New(8)).Predict([]float64{1, 2, 3})
}

func TestTrainDEFSIAndForecast(t *testing.T) {
	net := smallPopulation(t)
	cfg := DefaultDEFSIConfig()
	cfg.TrainSeasons = 10
	cfg.Epochs = 30
	const weeks = 10
	d, err := TrainDEFSI(net, []DiseaseParams{DefaultDiseaseParams()}, weeks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Held-out truth season.
	truth, err := Simulate(net, DefaultDiseaseParams(), weeks, 12345)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(77)
	sv := Surveil(truth.WeeklyState, cfg.ReportRate, cfg.NoiseFrac, rng)
	county, err := d.ForecastCounty(sv, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(county) != net.Counties {
		t.Fatalf("county forecast has %d entries want %d", len(county), net.Counties)
	}
	for _, v := range county {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("invalid county forecast %v", county)
		}
	}
	st, err := d.ForecastState(sv, 6)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range county {
		sum += v
	}
	if math.Abs(st-sum) > 1e-9 {
		t.Fatal("state forecast != sum of county forecast")
	}
}

func TestTrainDEFSIValidation(t *testing.T) {
	net := smallPopulation(t)
	cfg := DefaultDEFSIConfig()
	if _, err := TrainDEFSI(net, nil, 10, cfg); err == nil {
		t.Fatal("no priors accepted")
	}
	cfg.Window = 20
	if _, err := TrainDEFSI(net, []DiseaseParams{DefaultDiseaseParams()}, 10, cfg); err == nil {
		t.Fatal("window >= weeks accepted")
	}
}

func TestDEFSIForecastRangeErrors(t *testing.T) {
	net := smallPopulation(t)
	cfg := DefaultDEFSIConfig()
	cfg.TrainSeasons = 4
	cfg.Epochs = 5
	d, err := TrainDEFSI(net, []DiseaseParams{DefaultDiseaseParams()}, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sv := make([]float64, 8)
	if _, err := d.ForecastCounty(sv, 1); err == nil {
		t.Fatal("forecast before window accepted")
	}
	if _, err := d.ForecastCounty(sv, 8); err == nil {
		t.Fatal("forecast past season accepted")
	}
	if _, err := d.ForecastCounty(sv[:2], 6); err == nil {
		t.Fatal("insufficient surveillance accepted")
	}
}

func TestEpiFastLikeCalibration(t *testing.T) {
	net := smallPopulation(t)
	truthParams := DefaultDiseaseParams()
	const weeks = 10
	truth, err := Simulate(net, truthParams, weeks, 555)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(9)
	sv := Surveil(truth.WeeklyState, 0.3, 0.05, rng)
	ef := NewEpiFastLike(net, truthParams, weeks, 0.3, 10)
	if _, err := ef.ForecastState(3); err == nil {
		t.Fatal("forecast before calibration accepted")
	}
	if err := ef.Calibrate(sv, 6); err != nil {
		t.Fatal(err)
	}
	// Calibrated beta should be within the grid around the truth.
	if ef.BestBeta() < truthParams.Beta*0.4 || ef.BestBeta() > truthParams.Beta*2.1 {
		t.Fatalf("calibrated beta %g far from truth %g", ef.BestBeta(), truthParams.Beta)
	}
	got, err := ef.ForecastCounty(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != net.Counties {
		t.Fatal("county forecast dimension wrong")
	}
	if _, err := ef.ForecastState(weeks); err == nil {
		t.Fatal("out-of-range week accepted")
	}
}

func TestPersistenceForecast(t *testing.T) {
	net := smallPopulation(t)
	p := NewPersistenceForecast(net, 0.5)
	sv := []float64{10, 20, 30}
	st, err := p.ForecastState(sv, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st != 40 { // 20 / 0.5
		t.Fatalf("persistence state forecast %g want 40", st)
	}
	county, err := p.ForecastCounty(sv, 2)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range county {
		sum += v
	}
	if math.Abs(sum-40) > 1e-9 {
		t.Fatal("county downscaling does not preserve state total")
	}
	if _, err := p.ForecastState(sv, 0); err == nil {
		t.Fatal("week 0 persistence accepted")
	}
}

func TestEvaluateForecasts(t *testing.T) {
	truth := &SeasonResult{
		WeeklyState:  []float64{10, 20, 30, 40},
		WeeklyCounty: [][]float64{{5, 5}, {10, 10}, {15, 15}, {20, 20}},
	}
	perfState := func(t int) (float64, error) { return truth.WeeklyState[t], nil }
	perfCounty := func(t int) ([]float64, error) { return truth.WeeklyCounty[t], nil }
	ev, err := EvaluateForecasts(truth, 1, perfState, perfCounty, "perfect")
	if err != nil {
		t.Fatal(err)
	}
	if ev.StateRMSE != 0 || ev.CountyRMSE != 0 {
		t.Fatalf("perfect forecast scored %g/%g", ev.StateRMSE, ev.CountyRMSE)
	}
	if ev.Weeks != 3 {
		t.Fatalf("weeks %d want 3", ev.Weeks)
	}
}

// Property: surveillance is always elementwise non-negative and
// (statistically) bounded near reportRate * truth.
func TestSurveilNonNegativeQuick(t *testing.T) {
	rng := xrand.New(11)
	if err := quick.Check(func(vals [8]uint8) bool {
		truth := make([]float64, 8)
		for i, v := range vals {
			truth[i] = float64(v)
		}
		obs := Surveil(truth, 0.3, 0.2, rng)
		for _, v := range obs {
			if v < 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func toMatrix(rows [][]float64) *tensor.Matrix {
	if len(rows) == 0 {
		return tensor.NewMatrix(0, 0)
	}
	return tensor.FromRows(rows)
}
