package epi

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Surveil coarsens a state-level weekly incidence curve into the kind of
// surveillance signal the CDC publishes (§II-A): underreported by
// reportRate, perturbed by multiplicative noise, never negative. The
// county-level truth is NOT observable — recovering it is DEFSI's job.
func Surveil(stateWeekly []float64, reportRate, noiseFrac float64, rng *xrand.Rand) []float64 {
	out := make([]float64, len(stateWeekly))
	for i, v := range stateWeekly {
		obs := v*reportRate + rng.Normal(0, noiseFrac*v*reportRate+1e-9)
		if obs < 0 {
			obs = 0
		}
		out[i] = obs
	}
	return out
}

// TwoBranchNet is the DEFSI architecture (§II-A): "a two-branch deep
// neural network trained on the synthetic training dataset and used to
// make detailed forecasts with coarse surveillance data as inputs". Branch
// A consumes the within-season signal (a window of recent state-level
// surveillance); branch B consumes between-season context (normalized
// season week and the historical seasonal curve); their hidden features
// are concatenated into a head that emits county-resolution incidence.
type TwoBranchNet struct {
	InA, InB, Out    int
	branchA, branchB *nn.Dense
	head, out        *nn.Dense
	xScaler          *nn.Scaler
	yScaler          *nn.Scaler
	trained          bool
	rng              *xrand.Rand

	// Owned forward/backward workspaces, reused across steps so the
	// training loop is allocation-free (the dense layers copy their
	// inputs, so reuse is safe). Not safe for concurrent use.
	xa, xb, concat *tensor.Matrix
	ga, gb         *tensor.Matrix
}

// scratch returns *m reshaped to rows x cols, allocating only on growth.
func scratch(m **tensor.Matrix, rows, cols int) *tensor.Matrix {
	if *m == nil {
		*m = tensor.NewMatrix(rows, cols)
		return *m
	}
	return (*m).Reshape(rows, cols)
}

// NewTwoBranchNet builds the network with the given hidden widths.
func NewTwoBranchNet(inA, inB, hiddenA, hiddenB, hiddenHead, out int, rng *xrand.Rand) *TwoBranchNet {
	return &TwoBranchNet{
		InA: inA, InB: inB, Out: out,
		branchA: nn.NewDense(inA, hiddenA, nn.Tanh, rng),
		branchB: nn.NewDense(inB, hiddenB, nn.Tanh, rng),
		head:    nn.NewDense(hiddenA+hiddenB, hiddenHead, nn.Tanh, rng),
		out:     nn.NewDense(hiddenHead, out, nn.Identity, rng),
		rng:     rng,
	}
}

// forward runs a (scaled) batch through both branches and the head.
func (t *TwoBranchNet) forward(x *tensor.Matrix, training bool) *tensor.Matrix {
	xa := scratch(&t.xa, x.Rows, t.InA)
	xb := scratch(&t.xb, x.Rows, t.InB)
	for i := 0; i < x.Rows; i++ {
		copy(xa.Row(i), x.Row(i)[:t.InA])
		copy(xb.Row(i), x.Row(i)[t.InA:])
	}
	ha := t.branchA.Forward(xa, training, t.rng)
	hb := t.branchB.Forward(xb, training, t.rng)
	concat := scratch(&t.concat, x.Rows, ha.Cols+hb.Cols)
	for i := 0; i < x.Rows; i++ {
		copy(concat.Row(i)[:ha.Cols], ha.Row(i))
		copy(concat.Row(i)[ha.Cols:], hb.Row(i))
	}
	h := t.head.Forward(concat, training, t.rng)
	return t.out.Forward(h, training, t.rng)
}

// backward propagates the loss gradient through head and both branches.
func (t *TwoBranchNet) backward(gradOut *tensor.Matrix) {
	g := t.out.Backward(gradOut)
	gConcat := t.head.Backward(g)
	ga := scratch(&t.ga, gConcat.Rows, t.branchA.Out)
	gb := scratch(&t.gb, gConcat.Rows, t.branchB.Out)
	for i := 0; i < gConcat.Rows; i++ {
		copy(ga.Row(i), gConcat.Row(i)[:t.branchA.Out])
		copy(gb.Row(i), gConcat.Row(i)[t.branchA.Out:])
	}
	t.branchA.Backward(ga)
	t.branchB.Backward(gb)
}

func (t *TwoBranchNet) params() []nn.ParamPair {
	var out []nn.ParamPair
	for _, l := range []*nn.Dense{t.branchA, t.branchB, t.head, t.out} {
		out = append(out, l.Params()...)
	}
	return out
}

// Fit trains on rows of [branchA features ++ branchB features] → targets.
func (t *TwoBranchNet) Fit(x, y *tensor.Matrix, epochs, batchSize int, lr float64) error {
	if x.Rows != y.Rows {
		return fmt.Errorf("epi: x rows %d != y rows %d", x.Rows, y.Rows)
	}
	if x.Rows == 0 {
		return errors.New("epi: empty DEFSI training set")
	}
	if x.Cols != t.InA+t.InB {
		return fmt.Errorf("epi: expected %d features, got %d", t.InA+t.InB, x.Cols)
	}
	t.xScaler = nn.FitScaler(x)
	t.yScaler = nn.FitScaler(y)
	xs := t.xScaler.Transform(x)
	ys := t.yScaler.Transform(y)
	opt := nn.NewAdam(lr)
	loss := nn.MSE{}
	idx := t.rng.Perm(xs.Rows)
	params := t.params()
	maxBatch := batchSize
	if maxBatch > len(idx) {
		maxBatch = len(idx)
	}
	xb := tensor.NewMatrix(maxBatch, xs.Cols)
	yb := tensor.NewMatrix(maxBatch, ys.Cols)
	gb := tensor.NewMatrix(maxBatch, ys.Cols)
	for epoch := 0; epoch < epochs; epoch++ {
		t.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += batchSize {
			end := start + batchSize
			if end > len(idx) {
				end = len(idx)
			}
			bs := end - start
			bx := xb.Reshape(bs, xs.Cols)
			by := yb.Reshape(bs, ys.Cols)
			for bi, id := range idx[start:end] {
				copy(bx.Row(bi), xs.Row(id))
				copy(by.Row(bi), ys.Row(id))
			}
			for _, p := range params {
				p.Grad.Zero()
			}
			pred := t.forward(bx, true)
			if math.IsNaN(loss.Value(pred, by)) {
				return nn.ErrDiverged
			}
			t.backward(loss.Grad(gb.Reshape(bs, ys.Cols), pred, by))
			opt.Step(params)
		}
	}
	t.trained = true
	return nil
}

// Predict returns the county-level forecast for one feature vector.
func (t *TwoBranchNet) Predict(x []float64) []float64 {
	if !t.trained {
		panic("epi: TwoBranchNet used before Fit")
	}
	in := tensor.FromRows([][]float64{t.xScaler.TransformVec(x)})
	out := t.forward(in, false)
	pred := t.yScaler.Inverse(out.Row(0))
	// Incidence cannot be negative.
	for i, v := range pred {
		if v < 0 {
			pred[i] = 0
		}
	}
	return pred
}

// DEFSIConfig parameterizes the full DEFSI pipeline.
type DEFSIConfig struct {
	// Window is the number of trailing surveillance weeks in branch A.
	Window int
	// TrainSeasons is the number of synthetic seasons to simulate for the
	// training corpus (module ii of the DEFSI framework).
	TrainSeasons int
	// ReportRate and NoiseFrac define the surveillance coarsening.
	ReportRate, NoiseFrac float64
	// Epochs/BatchSize/LR train the two-branch net.
	Epochs    int
	BatchSize int
	LR        float64
	// Seed drives the whole pipeline.
	Seed uint64
}

// DefaultDEFSIConfig returns the reproduction-scale pipeline settings.
func DefaultDEFSIConfig() DEFSIConfig {
	return DEFSIConfig{
		Window: 4, TrainSeasons: 30, ReportRate: 0.3, NoiseFrac: 0.1,
		Epochs: 60, BatchSize: 32, LR: 3e-3, Seed: 7,
	}
}

// DEFSI is the trained pipeline: it owns the network plus the historical
// seasonal profile branch B conditions on.
type DEFSI struct {
	Net        *TwoBranchNet
	Cfg        DEFSIConfig
	Counties   int
	Weeks      int
	HistState  []float64 // historical mean surveillance curve by week
	paramsUsed []DiseaseParams
}

// TrainDEFSI executes the three DEFSI modules (§II-A): (i) parameter
// distributions estimated from coarse surveillance of prior seasons, (ii)
// an HPC batch of SEIR simulations generating high-resolution synthetic
// training data, (iii) two-branch network training on that corpus.
func TrainDEFSI(net *Network, priorSeasons []DiseaseParams, weeks int, cfg DEFSIConfig) (*DEFSI, error) {
	if cfg.Window < 1 || weeks <= cfg.Window {
		return nil, fmt.Errorf("epi: window %d incompatible with %d weeks", cfg.Window, weeks)
	}
	if len(priorSeasons) == 0 {
		return nil, errors.New("epi: need at least one prior season parameterization")
	}
	rng := xrand.New(cfg.Seed)
	d := &DEFSI{Cfg: cfg, Counties: net.Counties, Weeks: weeks}

	// Module (i): sample training-season parameters around the priors
	// (the paper estimates a distribution per parameter; we jitter the
	// estimated values).
	type sample struct {
		dp   DiseaseParams
		seed uint64
	}
	var samples []sample
	for i := 0; i < cfg.TrainSeasons; i++ {
		base := priorSeasons[rng.Intn(len(priorSeasons))]
		dp := base
		dp.Beta *= rng.Range(0.8, 1.25)
		dp.InitialInfections = 1 + rng.Poisson(float64(base.InitialInfections))
		samples = append(samples, sample{dp: dp, seed: rng.Uint64()})
	}

	// Module (ii): run the simulations, building surveillance views and
	// the historical profile.
	inA := cfg.Window
	inB := 2 // normalized week + historical curve value
	d.HistState = make([]float64, weeks)
	type seasonData struct {
		surveil []float64
		county  [][]float64
	}
	var seasons []seasonData
	for _, sm := range samples {
		res, err := Simulate(net, sm.dp, weeks, sm.seed)
		if err != nil {
			return nil, err
		}
		sv := Surveil(res.WeeklyState, cfg.ReportRate, cfg.NoiseFrac, rng.Split())
		seasons = append(seasons, seasonData{surveil: sv, county: res.WeeklyCounty})
		for w, v := range sv {
			d.HistState[w] += v / float64(len(samples))
		}
		d.paramsUsed = append(d.paramsUsed, sm.dp)
	}

	// Module (iii): assemble the supervised corpus and train.
	var xRows, yRows [][]float64
	for _, sd := range seasons {
		for t := cfg.Window; t < weeks; t++ {
			feat := make([]float64, inA+inB)
			copy(feat, sd.surveil[t-cfg.Window:t])
			feat[inA] = float64(t) / float64(weeks)
			feat[inA+1] = d.HistState[t]
			xRows = append(xRows, feat)
			yRows = append(yRows, sd.county[t])
		}
	}
	x := tensor.FromRows(xRows)
	y := tensor.FromRows(yRows)
	d.Net = NewTwoBranchNet(inA, inB, 24, 8, 32, net.Counties, rng.Split())
	if err := d.Net.Fit(x, y, cfg.Epochs, cfg.BatchSize, cfg.LR); err != nil {
		return nil, err
	}
	return d, nil
}

// ForecastCounty predicts county-level incidence at week t from the
// surveillance prefix observed so far (needs at least Window weeks).
func (d *DEFSI) ForecastCounty(surveillance []float64, t int) ([]float64, error) {
	if t < d.Cfg.Window || t >= d.Weeks {
		return nil, fmt.Errorf("epi: forecast week %d outside [%d,%d)", t, d.Cfg.Window, d.Weeks)
	}
	if len(surveillance) < t {
		return nil, fmt.Errorf("epi: surveillance has %d weeks, need %d", len(surveillance), t)
	}
	feat := make([]float64, d.Cfg.Window+2)
	copy(feat, surveillance[t-d.Cfg.Window:t])
	feat[d.Cfg.Window] = float64(t) / float64(d.Weeks)
	feat[d.Cfg.Window+1] = d.HistState[t]
	return d.Net.Predict(feat), nil
}

// ForecastState predicts state-level incidence at week t (the sum of the
// county forecast).
func (d *DEFSI) ForecastState(surveillance []float64, t int) (float64, error) {
	county, err := d.ForecastCounty(surveillance, t)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, v := range county {
		total += v
	}
	return total, nil
}
