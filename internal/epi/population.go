// Package epi implements the networked-systems exemplar of §II-A: a
// synthetic hierarchical population, a stochastic SEIR network dynamical
// system, coarse noisy surveillance, the DEFSI-style two-branch deep
// network trained on simulation-generated synthetic data, and an
// EpiFast-like mechanistic calibration baseline. The reproduced claim
// (experiment E4) is that the simulation-trained network forecasts
// comparably at the coarse (state) level and better at the fine (county)
// level than the mechanistic baseline.
package epi

import (
	"fmt"

	"repro/internal/xrand"
)

// Person is one node of the contact network.
type Person struct {
	County    int
	Household int
}

// Network is a static contact network with weighted edges grouped per
// person. Household contacts carry higher transmission weight than
// community contacts, and a commuting fraction adds cross-county edges —
// the "individual level heterogeneity and interactions" that make network
// dynamical systems hard for pure ML (§II-A).
type Network struct {
	People   []Person
	Adj      [][]int32   // neighbor indices per person
	Weight   [][]float32 // per-edge transmission weight multiplier
	Counties int
}

// PopulationConfig controls synthetic population generation.
type PopulationConfig struct {
	// Counties is the number of counties in the synthetic state.
	Counties int
	// MeanCountyPop is the mean county population (counties vary ±50%).
	MeanCountyPop int
	// MeanHousehold is the mean household size (≥1).
	MeanHousehold float64
	// CommunityContacts is the mean number of within-county community
	// contacts per person.
	CommunityContacts float64
	// ContactHeterogeneity spreads per-county contact rates over
	// [1-h, 1+h] times CommunityContacts (urban vs rural mixing). This is
	// the county-level structure a population-share downscaler cannot see
	// but a simulation-trained model can (§II-A: "completely data driven
	// models cannot discover higher resolution details").
	ContactHeterogeneity float64
	// CommuteFrac is the fraction of people with cross-county contacts.
	CommuteFrac float64
	// HouseholdWeight multiplies transmission probability inside
	// households relative to community contacts.
	HouseholdWeight float64
	// Seed drives generation.
	Seed uint64
}

// DefaultPopulationConfig returns a small but structured synthetic state.
func DefaultPopulationConfig() PopulationConfig {
	return PopulationConfig{
		Counties: 6, MeanCountyPop: 500, MeanHousehold: 3,
		CommunityContacts: 8, ContactHeterogeneity: 0.5,
		CommuteFrac: 0.05, HouseholdWeight: 3,
		Seed: 1,
	}
}

// GeneratePopulation builds the synthetic state: households are cliques,
// community contacts form a within-county random graph, and commuters add
// cross-county edges.
func GeneratePopulation(cfg PopulationConfig) (*Network, error) {
	if cfg.Counties < 1 || cfg.MeanCountyPop < 2 {
		return nil, fmt.Errorf("epi: invalid population config %+v", cfg)
	}
	rng := xrand.New(cfg.Seed)
	net := &Network{Counties: cfg.Counties}

	// People and households.
	householdID := 0
	countySizes := make([]int, cfg.Counties)
	for c := 0; c < cfg.Counties; c++ {
		// County sizes vary ±50% around the mean.
		size := int(float64(cfg.MeanCountyPop) * rng.Range(0.5, 1.5))
		if size < 2 {
			size = 2
		}
		countySizes[c] = size
		remaining := size
		for remaining > 0 {
			h := 1 + rng.Poisson(cfg.MeanHousehold-1)
			if h > remaining {
				h = remaining
			}
			for m := 0; m < h; m++ {
				net.People = append(net.People, Person{County: c, Household: householdID})
			}
			householdID++
			remaining -= h
		}
	}
	n := len(net.People)
	net.Adj = make([][]int32, n)
	net.Weight = make([][]float32, n)

	addEdge := func(a, b int, w float32) {
		net.Adj[a] = append(net.Adj[a], int32(b))
		net.Weight[a] = append(net.Weight[a], w)
		net.Adj[b] = append(net.Adj[b], int32(a))
		net.Weight[b] = append(net.Weight[b], w)
	}

	// Household cliques.
	byHousehold := map[int][]int{}
	byCounty := make([][]int, cfg.Counties)
	for i, p := range net.People {
		byHousehold[p.Household] = append(byHousehold[p.Household], i)
		byCounty[p.County] = append(byCounty[p.County], i)
	}
	hw := float32(cfg.HouseholdWeight)
	for _, members := range byHousehold {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				addEdge(members[i], members[j], hw)
			}
		}
	}
	// Community contacts: each person draws ~CommunityContacts/2 partners
	// (each edge adds degree to both ends), scaled by the county's
	// deterministic contact-rate multiplier.
	countyRate := make([]float64, cfg.Counties)
	for c := range countyRate {
		countyRate[c] = 1.0
		if cfg.Counties > 1 && cfg.ContactHeterogeneity > 0 {
			frac := float64(c) / float64(cfg.Counties-1) // 0..1 across counties
			countyRate[c] = 1 - cfg.ContactHeterogeneity + 2*cfg.ContactHeterogeneity*frac
		}
	}
	for i := 0; i < n; i++ {
		county := net.People[i].County
		peers := byCounty[county]
		k := rng.Poisson(cfg.CommunityContacts / 2 * countyRate[county])
		for e := 0; e < k; e++ {
			j := peers[rng.Intn(len(peers))]
			if j != i {
				addEdge(i, j, 1)
			}
		}
	}
	// Commuters: cross-county community contacts.
	if cfg.Counties > 1 {
		for i := 0; i < n; i++ {
			if !rng.Bernoulli(cfg.CommuteFrac) {
				continue
			}
			other := rng.Intn(cfg.Counties - 1)
			if other >= net.People[i].County {
				other++
			}
			peers := byCounty[other]
			for e := 0; e < 2; e++ {
				addEdge(i, peers[rng.Intn(len(peers))], 1)
			}
		}
	}
	return net, nil
}

// CountyPopulations returns the number of people per county.
func (n *Network) CountyPopulations() []int {
	out := make([]int, n.Counties)
	for _, p := range n.People {
		out[p.County]++
	}
	return out
}

// MeanDegree returns the average contact count per person.
func (n *Network) MeanDegree() float64 {
	total := 0
	for _, adj := range n.Adj {
		total += len(adj)
	}
	return float64(total) / float64(len(n.People))
}
