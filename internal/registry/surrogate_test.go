package registry

import (
	"math"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// countingOracle is a deterministic 2→1 oracle that counts Run calls —
// the zero-retraining proof reads the counter.
type countingOracle struct{ runs atomic.Int64 }

func (o *countingOracle) Dims() (int, int) { return 2, 1 }
func (o *countingOracle) Run(x []float64) ([]float64, error) {
	o.runs.Add(1)
	return []float64{math.Sin(3*x[0]) + 0.5*x[1]}, nil
}

func testDesign(n int, seed uint64) *tensor.Matrix {
	rng := xrand.New(seed)
	m := tensor.NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		m.Set(i, 0, rng.Range(-1, 1))
		m.Set(i, 1, rng.Range(-1, 1))
	}
	return m
}

func testFactory(rng *xrand.Rand) core.SurrogateFactory {
	return core.NewNNSurrogateFactory(2, 1, []int{8}, 0.1, rng, func(s *core.NNSurrogate) {
		s.Epochs = 40
		s.MCPasses = 4
		s.Quantize = true
	})
}

// The full persistence loop: a sharded wrapper publishes every trained
// generation through its hook, a second process (fresh wrapper, fresh
// registry handle on the same dir) warm-starts from disk, serves
// bit-identical deterministic predictions, and never touches its oracle
// or trains — the crash-recovery contract end to end.
func TestPublishHookWarmStartBitIdentical(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "reg")
	reg, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	oracle := &countingOracle{}
	w := core.NewShardedWrapper(oracle, testFactory(xrand.New(1)), core.ShardedConfig{
		Router:          core.HashRouter{Shards: 2},
		MinTrainSamples: 8,
		UQThreshold:     1e9,
	})
	// Capture each published model alongside persisting it, so the live
	// in-memory generation is the reference the restored one must match.
	var mu sync.Mutex
	published := map[int]core.Surrogate{}
	persist := Publisher(reg, "tenant-a", func(si int, err error) { t.Errorf("publish shard %d: %v", si, err) })
	w.SetPublishHook(func(si int, sur core.Surrogate, residBase float64) {
		mu.Lock()
		published[si] = sur
		mu.Unlock()
		persist(si, sur, residBase)
	})
	if err := w.Pretrain(testDesign(60, 7)); err != nil {
		t.Fatal(err)
	}
	if len(published) != 2 {
		t.Fatalf("published %d shards, want 2", len(published))
	}
	for si := 0; si < 2; si++ {
		if gen, ok := reg.CurrentGeneration(ShardKey("tenant-a", si)); !ok || gen != 1 {
			t.Fatalf("shard %d: gen %d ok=%v, want 1", si, gen, ok)
		}
	}

	// "Restart": a second registry handle on the same directory and a
	// brand-new wrapper over an untouched oracle.
	reg2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	oracle2 := &countingOracle{}
	w2 := core.NewShardedWrapper(oracle2, testFactory(xrand.New(2)), core.ShardedConfig{
		Router:          core.HashRouter{Shards: 2},
		MinTrainSamples: 8,
		UQThreshold:     1e9,
	})
	rng := xrand.New(99)
	warmed := WarmStartSharded(reg2, "tenant-a", w2, rng, func(si int, err error) {
		t.Errorf("warm-start shard %d: %v", si, err)
	})
	if warmed != 2 {
		t.Fatalf("warmed %d shards, want 2", warmed)
	}
	for si, st := range w2.Status() {
		if st.Generation != -1 {
			t.Fatalf("shard %d generation %d after warm start, want -1", si, st.Generation)
		}
	}

	// Deterministic predictions must be bit-identical to the generation
	// that was encoded — mmap decode, scaler round-trip and all.
	probe := testDesign(40, 13)
	rng2 := xrand.New(99)
	for si := 0; si < 2; si++ {
		restored, _, gen, err := LoadSurrogate(reg2, ShardKey("tenant-a", si), rng2)
		if err != nil {
			t.Fatal(err)
		}
		if gen != 1 {
			t.Fatalf("shard %d loaded gen %d, want 1", si, gen)
		}
		live := published[si].(*core.NNSurrogate)
		for i := 0; i < probe.Rows; i++ {
			x := probe.Row(i)
			got, want := restored.Predict(x), live.Predict(x)
			if got[0] != want[0] {
				t.Fatalf("shard %d row %d: restored %v, live %v", si, i, got, want)
			}
		}
		lb := live.PredictBatch(probe)
		rb := restored.PredictBatch(probe)
		for i := 0; i < probe.Rows; i++ {
			if lb.At(i, 0) != rb.At(i, 0) {
				t.Fatalf("shard %d batch row %d: restored %v, live %v", si, i, rb.At(i, 0), lb.At(i, 0))
			}
		}
		if live.QuantizedReady() != restored.QuantizedReady() {
			t.Fatalf("shard %d quantized readiness diverged", si)
		}
	}

	// Zero retraining: the warm wrapper serves its whole query load from
	// the restored models — no oracle runs, no training samples, no refit.
	for i := 0; i < probe.Rows; i++ {
		_, src, _, err := w2.Query(probe.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		if src != core.FromSurrogate {
			t.Fatalf("row %d served from %v, want surrogate", i, src)
		}
	}
	if n := oracle2.runs.Load(); n != 0 {
		t.Fatalf("warm-started wrapper ran the oracle %d times", n)
	}
	if n := w2.TrainingSetSize(); n != 0 {
		t.Fatalf("warm-started wrapper accumulated %d samples", n)
	}
}

// A wrapper that trained live refuses a warm start, and the unsharded
// Wrapper warm-starts through the same registry path.
func TestWarmStartWrapperAndPrecedence(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "reg")
	reg, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	oracle := &countingOracle{}
	sur := core.NewNNSurrogate(2, 1, []int{8}, 0.1, xrand.New(3))
	sur.Epochs, sur.MCPasses = 40, 4
	w := core.NewWrapper(oracle, sur, core.WrapperConfig{MinTrainSamples: 8, UQThreshold: 1e9})
	w.SetPublishHook(Publisher(reg, "single", func(_ int, err error) { t.Errorf("publish: %v", err) }))
	if err := w.Pretrain(testDesign(30, 5)); err != nil {
		t.Fatal(err)
	}
	if gen, ok := reg.CurrentGeneration(ShardKey("single", 0)); !ok || gen != 1 {
		t.Fatalf("gen %d ok=%v, want 1", gen, ok)
	}

	// Live-trained wrapper: warm start must refuse.
	if ok, err := WarmStartWrapper(reg, "single", w, xrand.New(4)); err != nil || ok {
		t.Fatalf("warm start over a live model: ok=%v err=%v", ok, err)
	}

	// Fresh wrapper: warm start installs and serves oracle-free.
	oracle2 := &countingOracle{}
	sur2 := core.NewNNSurrogate(2, 1, []int{8}, 0.1, xrand.New(6))
	w2 := core.NewWrapper(oracle2, sur2, core.WrapperConfig{MinTrainSamples: 8, UQThreshold: 1e9})
	if ok, err := WarmStartWrapper(reg, "single", w2, xrand.New(4)); err != nil || !ok {
		t.Fatalf("warm start: ok=%v err=%v", ok, err)
	}
	if _, src, _, err := w2.Query([]float64{0.3, -0.2}); err != nil || src != core.FromSurrogate {
		t.Fatalf("src=%v err=%v", src, err)
	}
	if n := oracle2.runs.Load(); n != 0 {
		t.Fatalf("oracle ran %d times after warm start", n)
	}
}

// RollbackShard restores the predecessor generation from disk and
// reinstalls it as a fresh wrapper generation.
func TestRollbackShardReinstalls(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "reg")
	reg, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	oracle := &countingOracle{}
	w := core.NewShardedWrapper(oracle, testFactory(xrand.New(11)), core.ShardedConfig{
		Router:          core.HashRouter{Shards: 1},
		MinTrainSamples: 8,
		UQThreshold:     1e9,
	})
	w.SetPublishHook(Publisher(reg, "ten", func(si int, err error) { t.Errorf("publish: %v", err) }))
	if err := w.Pretrain(testDesign(30, 21)); err != nil {
		t.Fatal(err)
	}
	if err := w.TrainAll(); err != nil {
		t.Fatal(err)
	}
	key := ShardKey("ten", 0)
	if gen, _ := reg.CurrentGeneration(key); gen != 2 {
		t.Fatalf("gen %d, want 2", gen)
	}
	genBefore := w.Status()[0].Generation

	gen, err := RollbackShard(reg, "ten", 0, w, xrand.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("rolled back to gen %d, want 1", gen)
	}
	if g, _ := reg.CurrentGeneration(key); g != 1 {
		t.Fatalf("registry gen %d after rollback, want 1", g)
	}
	st := w.Status()[0]
	if st.Generation <= genBefore {
		t.Fatalf("reinstall generation %d did not outrank %d", st.Generation, genBefore)
	}
	if st.Drifted {
		t.Fatal("reinstall left shard drifted")
	}
	// The reinstalled model serves.
	if _, src, _, err := w.Query([]float64{0.1, 0.4}); err != nil || src != core.FromSurrogate {
		t.Fatalf("src=%v err=%v", src, err)
	}
	if ns := reg.NameStats(key); ns.Publishes != 2 || ns.Rollbacks != 1 {
		t.Fatalf("stats %+v", ns)
	}
}
