package registry

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/xrand"
)

// This file binds the registry to the core serving wrappers: shard-key
// naming, publish hooks that persist every generation a wrapper starts
// serving, warm starts that restore the newest durable generation with
// zero retraining, and the rollback path that reinstalls a predecessor.

// ShardKey names one shard of a tenant's model sequence in the
// registry. The unsharded Wrapper publishes as shard 0.
func ShardKey(tenant string, shard int) string {
	return fmt.Sprintf("%s/shard-%d", tenant, shard)
}

// ParseShardKey inverts ShardKey; ok is false for foreign keys. The
// dispatch tier uses it to recover the tenant an over-the-wire artifact
// push belongs to.
func ParseShardKey(key string) (tenant string, shard int, ok bool) {
	i := strings.LastIndex(key, "/shard-")
	if i < 1 {
		return "", 0, false
	}
	n := 0
	digits := key[i+len("/shard-"):]
	if digits == "" {
		return "", 0, false
	}
	for _, c := range digits {
		if c < '0' || c > '9' || n > 1<<20 {
			return "", 0, false
		}
		n = n*10 + int(c-'0')
	}
	return key[:i], n, true
}

// artifactEncoder is the surrogate capability the publish path needs:
// core.NNSurrogate implements it; other Surrogate implementations are
// simply not persisted.
type artifactEncoder interface {
	EncodeArtifact(residBase float64) ([]byte, error)
}

// PublishSurrogate encodes a trained surrogate into the artifact format
// and commits it as the next generation of key.
func PublishSurrogate(r *Registry, key string, sur core.Surrogate, residBase float64) (uint64, error) {
	enc, ok := sur.(artifactEncoder)
	if !ok {
		return 0, fmt.Errorf("registry: surrogate %T does not encode artifacts", sur)
	}
	data, err := enc.EncodeArtifact(residBase)
	if err != nil {
		return 0, err
	}
	return r.Publish(key, data)
}

// LoadSurrogate opens the newest servable generation of key and decodes
// it into a ready-to-serve surrogate plus the drift baseline it was
// published with.
func LoadSurrogate(r *Registry, key string, rng *xrand.Rand) (sur *core.NNSurrogate, residBase float64, gen uint64, err error) {
	h, err := r.Latest(key)
	if err != nil {
		return nil, 0, 0, err
	}
	sur, residBase, err = core.DecodeNNSurrogate(h.Data, rng)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("registry: decode %s gen %d: %w", key, h.Gen, err)
	}
	return sur, residBase, h.Gen, nil
}

// Publisher returns a core.PublishHook that persists every generation a
// wrapper starts serving under tenant's shard keys. Publish failures
// never disturb serving; they are reported to onError when non-nil.
func Publisher(r *Registry, tenant string, onError func(shard int, err error)) core.PublishHook {
	return func(shard int, sur core.Surrogate, residBase float64) {
		if _, err := PublishSurrogate(r, ShardKey(tenant, shard), sur, residBase); err != nil && onError != nil {
			onError(shard, err)
		}
	}
}

// WarmStartSharded restores each shard of tenant from its newest
// registry generation, installing models only on shards that have not
// published live training (see ShardedWrapper.WarmStart). It returns
// the number of shards warm-started. A shard with no published
// generation is silently skipped; decode failures and dimension
// mismatches are skipped and reported to onError when non-nil.
func WarmStartSharded(r *Registry, tenant string, w *core.ShardedWrapper, rng *xrand.Rand, onError func(shard int, err error)) int {
	wantIn, wantOut := w.Dims()
	warmed := 0
	for si := 0; si < w.NumShards(); si++ {
		sur, base, _, err := LoadSurrogate(r, ShardKey(tenant, si), rng)
		if err != nil {
			if !errors.Is(err, ErrNotFound) && onError != nil {
				onError(si, err)
			}
			continue
		}
		if in, out := sur.Dims(); in != wantIn || out != wantOut {
			if onError != nil {
				onError(si, fmt.Errorf("registry: artifact is %d→%d, wrapper serves %d→%d", in, out, wantIn, wantOut))
			}
			continue
		}
		if w.WarmStart(si, sur, base) {
			warmed++
		}
	}
	return warmed
}

// WarmStartWrapper restores an unsharded Wrapper from the newest
// generation of tenant's shard-0 key. A missing generation is not an
// error — the wrapper just starts cold.
func WarmStartWrapper(r *Registry, tenant string, w *core.Wrapper, rng *xrand.Rand) (bool, error) {
	sur, _, _, err := LoadSurrogate(r, ShardKey(tenant, 0), rng)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return false, nil
		}
		return false, err
	}
	wantIn, wantOut := w.Dims()
	if in, out := sur.Dims(); in != wantIn || out != wantOut {
		return false, fmt.Errorf("registry: artifact is %d→%d, wrapper serves %d→%d", in, out, wantIn, wantOut)
	}
	return w.WarmStart(sur), nil
}

// RollbackShard rolls tenant's shard si back one registry generation
// and reinstalls the restored predecessor into the wrapper as a fresh
// publish generation (see ShardedWrapper.Reinstall), so in-flight
// refits of the rolled-away model lose the publish race. It returns the
// registry generation now serving.
func RollbackShard(r *Registry, tenant string, si int, w *core.ShardedWrapper, rng *xrand.Rand) (uint64, error) {
	key := ShardKey(tenant, si)
	if _, err := r.Rollback(key); err != nil {
		return 0, err
	}
	sur, base, gen, err := LoadSurrogate(r, key, rng)
	if err != nil {
		return 0, err
	}
	w.Reinstall(si, sur, base)
	return gen, nil
}
