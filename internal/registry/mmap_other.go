//go:build !unix

package registry

import "os"

// mmapFile on platforms without the unix mmap surface degrades to a
// plain read: same contract, one copy instead of zero.
func mmapFile(path string) ([]byte, func(), error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() {}, nil
}
