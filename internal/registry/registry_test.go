package registry

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/chaos"
	"repro/internal/nn"
	"repro/internal/xrand"
)

// testArtifact encodes a small (untrained — weights don't matter here)
// network artifact whose Meta tags which generation it represents.
func testArtifact(t *testing.T, tag string) []byte {
	t.Helper()
	net := nn.NewMLP(xrand.New(7), nn.Tanh, 0.1, 2, 6, 1)
	c := net.Compile()
	data, err := nn.EncodeArtifact(&nn.Artifact{Meta: []byte(tag), Net: net, Compiled: c, Quant: c.Quantize(nil)})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func artifactTag(t *testing.T, data []byte) string {
	t.Helper()
	a, err := nn.DecodeArtifact(data, xrand.New(1))
	if err != nil {
		t.Fatalf("served artifact does not decode: %v", err)
	}
	return string(a.Meta)
}

func TestPublishLatestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	a1 := testArtifact(t, "g1")
	a2 := testArtifact(t, "g2")
	if g, err := r.Publish("pot", a1); err != nil || g != 1 {
		t.Fatalf("publish 1: gen=%d err=%v", g, err)
	}
	if g, err := r.Publish("pot", a2); err != nil || g != 2 {
		t.Fatalf("publish 2: gen=%d err=%v", g, err)
	}
	h, err := r.Latest("pot")
	if err != nil {
		t.Fatal(err)
	}
	if h.Gen != 2 || !bytes.Equal(h.Data, a2) {
		t.Fatalf("latest gen=%d bytes-equal=%v", h.Gen, bytes.Equal(h.Data, a2))
	}
	// The mmap'd bytes must decode and serve (zero-copy aliasing over
	// the mapping).
	a, err := nn.DecodeArtifact(h.Data, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	a.Compiled.Predict([]float64{0.1, -0.2}, nil)
	if _, err := r.Latest("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing name: %v", err)
	}
	st := r.Stats()
	if st.Publishes != 2 || st.Opens != 1 || st.Quarantines != 0 {
		t.Fatalf("stats %+v", st)
	}

	// A fresh registry over the same dir recovers state from the manifest.
	r2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if g, ok := r2.CurrentGeneration("pot"); !ok || g != 2 {
		t.Fatalf("recovered gen %d ok=%v", g, ok)
	}
	if g, err := r2.Publish("pot", a1); err != nil || g != 3 {
		t.Fatalf("post-restart publish: gen=%d err=%v", g, err)
	}
}

func TestGCRetention(t *testing.T) {
	r, err := Open(Config{Dir: t.TempDir(), Keep: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 5; i++ {
		if _, err := r.Publish("m", testArtifact(t, "x")); err != nil {
			t.Fatal(err)
		}
	}
	gens, err := r.Generations("m")
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 || gens[0] != 4 || gens[1] != 5 {
		t.Fatalf("retained %v, want [4 5]", gens)
	}
}

// The crash-consistency property: a publish killed at every single
// filesystem operation leaves the store serving either the previous
// generation or — only when the kill landed after the commit — the
// complete new one. Never a corrupt artifact, never nothing.
func TestCrashConsistency(t *testing.T) {
	a1 := testArtifact(t, "g1")
	a2 := testArtifact(t, "g2")

	// Count the ops of one clean gen-2 publish to size the sweep.
	ffs := chaos.NewFaultFS(nil)
	r, err := Open(Config{Dir: t.TempDir(), FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Publish("m", a1); err != nil {
		t.Fatal(err)
	}
	ffs.Disarm()
	if _, err := r.Publish("m", a2); err != nil {
		t.Fatal(err)
	}
	ops := ffs.Ops()
	r.Close()
	if ops < 10 {
		t.Fatalf("publish only took %d fs ops — the protocol lost steps?", ops)
	}

	for k := 1; k <= ops; k++ {
		dir := t.TempDir()
		ffs := chaos.NewFaultFS(nil)
		r1, err := Open(Config{Dir: dir, FS: ffs})
		if err != nil {
			t.Fatal(err)
		}
		if g, err := r1.Publish("m", a1); err != nil || g != 1 {
			t.Fatalf("k=%d: base publish gen=%d err=%v", k, g, err)
		}
		ffs.Arm(k)
		_, pubErr := r1.Publish("m", a2)
		crashed := ffs.Crashed()
		if !crashed && pubErr != nil {
			t.Fatalf("k=%d: clean publish failed: %v", k, pubErr)
		}
		r1.Close()

		// Restart: a fresh registry over the real filesystem, exactly
		// what the process sees after the simulated kill.
		r2, err := Open(Config{Dir: dir})
		if err != nil {
			t.Fatalf("k=%d: reopen: %v", k, err)
		}
		h, err := r2.Latest("m")
		if err != nil {
			t.Fatalf("k=%d: no servable generation after crash: %v", k, err)
		}
		switch h.Gen {
		case 1:
			if !bytes.Equal(h.Data, a1) || artifactTag(t, h.Data) != "g1" {
				t.Fatalf("k=%d: generation 1 served corrupt", k)
			}
			if !crashed {
				t.Fatalf("k=%d: clean publish lost generation 2", k)
			}
		case 2:
			if !bytes.Equal(h.Data, a2) || artifactTag(t, h.Data) != "g2" {
				t.Fatalf("k=%d: generation 2 served corrupt", k)
			}
		default:
			t.Fatalf("k=%d: impossible generation %d", k, h.Gen)
		}
		// A subsequent publish must still work and outrank whatever
		// survived (monotonic generation numbers even across crashes).
		g3, err := r2.Publish("m", testArtifact(t, "g3"))
		if err != nil {
			t.Fatalf("k=%d: post-recovery publish: %v", k, err)
		}
		if g3 <= h.Gen {
			t.Fatalf("k=%d: post-recovery generation %d not above %d", k, g3, h.Gen)
		}
		h3, err := r2.Latest("m")
		if err != nil || h3.Gen != g3 {
			t.Fatalf("k=%d: post-recovery latest: %+v, %v", k, h3, err)
		}
		r2.Close()
	}
}

// A committed artifact corrupted at rest (bit rot, torn overwrite) is
// quarantined on open and the previous generation served instead; the
// quarantine counter increments and the manifest is repointed.
func TestCorruptArtifactQuarantined(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	a1 := testArtifact(t, "g1")
	r.Publish("m", a1)
	r.Publish("m", testArtifact(t, "g2"))
	r.Close()

	// Flip a byte in the committed gen-2 artifact.
	path := filepath.Join(dir, "m", "gen-000000000002.art")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	h, err := r2.Latest("m")
	if err != nil {
		t.Fatal(err)
	}
	if h.Gen != 1 || !bytes.Equal(h.Data, a1) {
		t.Fatalf("served gen %d after corruption, want clean 1", h.Gen)
	}
	if st := r2.Stats(); st.Quarantines != 1 {
		t.Fatalf("quarantines=%d, want 1", st.Quarantines)
	}
	if _, err := os.Stat(filepath.Join(dir, "m", "quarantine", "gen-000000000002.art")); err != nil {
		t.Fatalf("corrupt artifact not quarantined: %v", err)
	}
	// The repointed manifest makes the next open land on gen 1 directly.
	r3, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Close()
	if g, ok := r3.CurrentGeneration("m"); !ok || g != 1 {
		t.Fatalf("manifest not repointed: gen=%d ok=%v", g, ok)
	}
	if st := r3.Stats(); st.Quarantines != 0 {
		t.Fatal("healed store should not quarantine again")
	}
}

// Short reads (torn read of a durable file) are caught by the checksum
// walk and fall back like any other corruption.
func TestShortReadQuarantined(t *testing.T) {
	dir := t.TempDir()
	ffs := chaos.NewFaultFS(nil)
	r, err := Open(Config{Dir: dir, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Publish("m", testArtifact(t, "g1"))
	r.Publish("m", testArtifact(t, "g2"))
	ffs.SetShortRead(0.6)
	// Both generations read short now, so nothing is servable — but the
	// store must degrade with an error, not serve a truncated artifact.
	if _, err := r.Latest("m"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("short reads served something: %v", err)
	}
	if st := r.Stats(); st.Quarantines != 2 {
		t.Fatalf("quarantines=%d, want 2", st.Quarantines)
	}
}

// A corrupt manifest is recovered by directory scan: the newest intact
// artifact wins.
func TestManifestCorruptRecovery(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	a2 := testArtifact(t, "g2")
	r.Publish("m", testArtifact(t, "g1"))
	r.Publish("m", a2)
	r.Close()
	if err := os.WriteFile(filepath.Join(dir, "m", "MANIFEST"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	h, err := r2.Latest("m")
	if err != nil || h.Gen != 2 || !bytes.Equal(h.Data, a2) {
		t.Fatalf("scan recovery: gen=%v err=%v", h, err)
	}
}

func TestRollback(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	a2 := testArtifact(t, "g2")
	r.Publish("m", testArtifact(t, "g1"))
	r.Publish("m", a2)
	r.Publish("m", testArtifact(t, "g3"))

	pred, err := r.Rollback("m")
	if err != nil || pred != 2 {
		t.Fatalf("rollback: %d, %v", pred, err)
	}
	h, err := r.Latest("m")
	if err != nil || h.Gen != 2 || !bytes.Equal(h.Data, a2) {
		t.Fatalf("post-rollback latest: %+v, %v", h, err)
	}
	// The condemned generation is quarantined, not just skipped.
	if _, err := os.Stat(filepath.Join(dir, "m", "quarantine", "gen-000000000003.art")); err != nil {
		t.Fatalf("condemned gen not quarantined: %v", err)
	}
	// Generation numbers stay monotonic across rollback.
	if g, err := r.Publish("m", testArtifact(t, "g4")); err != nil || g != 4 {
		t.Fatalf("post-rollback publish: gen=%d err=%v", g, err)
	}
	if pred, err := r.Rollback("m"); err != nil || pred != 2 {
		t.Fatalf("rollback 2: %d, %v", pred, err)
	}
	if pred, err := r.Rollback("m"); err != nil || pred != 1 {
		t.Fatalf("rollback 3: %d, %v", pred, err)
	}
	if _, err := r.Rollback("m"); !errors.Is(err, ErrNoPredecessor) {
		t.Fatalf("rollback off the bottom: %v", err)
	}
	st := r.NameStats("m")
	if st.Rollbacks != 3 || st.Publishes != 4 {
		t.Fatalf("name stats %+v", st)
	}
}
