//go:build unix

package registry

import (
	"os"
	"syscall"
)

// mmapFile maps path read-only and returns the bytes plus an unmap
// callback. The mapping pins the inode, so the file staying readable
// does not depend on its directory entry surviving later GC or
// quarantine renames. An empty file maps to an empty (unmappable)
// slice, which the artifact verifier rejects like any other truncation.
func mmapFile(path string) ([]byte, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size == 0 {
		return nil, func() {}, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() { syscall.Munmap(data) }, nil
}
