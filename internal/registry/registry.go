// Package registry is a crash-safe on-disk store of versioned surrogate
// artifacts — the durability layer of the serving stack. Each name holds
// a monotonically numbered sequence of generations; Publish is atomic
// and torn-write-proof (write temp → fsync file → rename → fsync dir,
// with a generation-ordered MANIFEST updated last as the commit point),
// and Latest opens the newest durable generation zero-copy via mmap
// after verifying every per-section checksum. A corrupt or truncated
// artifact is quarantined — never served, never fatal — and the open
// falls back to the previous good generation, repointing the manifest.
//
// All mutating I/O flows through a chaos.FS, so the crash-consistency
// tests drive the exact publish protocol through a fault injector that
// kills it at every individual filesystem operation.
package registry

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/chaos"
	"repro/internal/nn"
)

// ErrNotFound reports a name with no servable generation.
var ErrNotFound = errors.New("registry: no servable generation")

// ErrNoPredecessor reports a rollback with nothing to roll back to.
var ErrNoPredecessor = errors.New("registry: no predecessor generation")

const (
	manifestMagic   = 0x4d52484c // "LHRM" little-endian
	manifestVersion = 1
	manifestName    = "MANIFEST"
	quarantineDir   = "quarantine"
	// DefaultKeep is how many generations GC retains per name. The floor
	// is 2 so a rollback always has a predecessor on disk.
	DefaultKeep = 4
)

var manifestCRC = crc64.MakeTable(crc64.ECMA)

// Config configures a Registry.
type Config struct {
	// Dir is the registry root; one subdirectory per published name.
	Dir string
	// Keep bounds generations retained per name (0 = DefaultKeep,
	// floored at 2 so rollback always has somewhere to go).
	Keep int
	// FS overrides the filesystem (fault injection); nil uses the real
	// one. With the real filesystem artifacts open zero-copy via mmap;
	// a custom FS routes artifact reads through FS.ReadFile instead so
	// injected read faults are observable.
	FS chaos.FS
	// Verify validates artifact bytes before they are served or
	// published; nil uses nn.VerifyArtifact (envelope + per-section
	// CRC64 walk, no decoding).
	Verify func([]byte) error
}

// Stats is a snapshot of registry activity counters.
type Stats struct {
	// Publishes counts committed generations.
	Publishes int64
	// Rollbacks counts explicit generation rollbacks.
	Rollbacks int64
	// Quarantines counts corrupt artifacts detected and set aside.
	Quarantines int64
	// Opens counts artifacts served by Latest.
	Opens int64
}

// Handle is an opened artifact generation. Data is a read-only view —
// on unix a live mmap owned by the Registry, valid until Registry.Close.
type Handle struct {
	// Gen is the generation number, monotonically increasing per name.
	Gen uint64
	// Data is the verified artifact bytes.
	Data []byte
}

// nameState is the cached manifest view of one name.
type nameState struct {
	cur  uint64 // newest committed generation, 0 = none
	next uint64 // next generation number to assign (monotonic, survives rollback)
}

// Registry is a crash-safe store of versioned artifacts. All methods
// are safe for concurrent use.
type Registry struct {
	dir    string
	keep   int
	fs     chaos.FS
	useMap bool
	verify func([]byte) error

	mu       sync.Mutex
	state    map[string]*nameState
	counters map[string]*Stats
	unmaps   []func()
	closed   bool
	// latests caches the most recent Handle served per name so the
	// wire-serve path (FetchArtifact polled every mirror tick) does not
	// accumulate one mapping per poll; a cached handle is reused until a
	// newer generation commits.
	latests map[string]*Handle

	global Stats
}

// Open opens (creating if needed) a registry rooted at cfg.Dir.
func Open(cfg Config) (*Registry, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("registry: Dir is required")
	}
	keep := cfg.Keep
	if keep == 0 {
		keep = DefaultKeep
	}
	if keep < 2 {
		keep = 2
	}
	r := &Registry{
		dir:      cfg.Dir,
		keep:     keep,
		fs:       cfg.FS,
		useMap:   cfg.FS == nil,
		verify:   cfg.Verify,
		state:    map[string]*nameState{},
		counters: map[string]*Stats{},
		latests:  map[string]*Handle{},
	}
	if r.fs == nil {
		r.fs = chaos.OSFS{}
	}
	if r.verify == nil {
		r.verify = nn.VerifyArtifact
	}
	if err := r.fs.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	return r, nil
}

// Close releases every mapping handed out through Latest. Data slices
// from previously returned Handles (and programs decoded zero-copy from
// them) must not be used afterwards.
func (r *Registry) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	for _, un := range r.unmaps {
		un()
	}
	r.unmaps = nil
	return nil
}

// Stats snapshots the global activity counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.global
}

// NameStats snapshots one name's activity counters.
func (r *Registry) NameStats(name string) Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[name]; c != nil {
		return *c
	}
	return Stats{}
}

func (r *Registry) countersFor(name string) *Stats {
	c := r.counters[name]
	if c == nil {
		c = &Stats{}
		r.counters[name] = c
	}
	return c
}

// nameDir maps a logical name to its directory; names are path-escaped
// so any string (tenant/shard keys included) is a valid name.
func (r *Registry) nameDir(name string) string {
	return filepath.Join(r.dir, url.PathEscape(name))
}

func genFile(gen uint64) string { return fmt.Sprintf("gen-%012d.art", gen) }

// parseGen inverts genFile; ok is false for foreign filenames.
func parseGen(name string) (uint64, bool) {
	var gen uint64
	if _, err := fmt.Sscanf(name, "gen-%d.art", &gen); err != nil || gen == 0 {
		return 0, false
	}
	if name != genFile(gen) {
		return 0, false
	}
	return gen, true
}

// ---------------------------------------------------------------------------
// manifest

// encodeManifest lays out the 32-byte manifest: magic, version, current
// generation, next generation, CRC64 of the first 24 bytes.
func encodeManifest(cur, next uint64) []byte {
	buf := make([]byte, 32)
	binary.LittleEndian.PutUint32(buf[0:], manifestMagic)
	binary.LittleEndian.PutUint32(buf[4:], manifestVersion)
	binary.LittleEndian.PutUint64(buf[8:], cur)
	binary.LittleEndian.PutUint64(buf[16:], next)
	binary.LittleEndian.PutUint64(buf[24:], crc64.Checksum(buf[:24], manifestCRC))
	return buf
}

func parseManifest(data []byte) (cur, next uint64, ok bool) {
	if len(data) != 32 ||
		binary.LittleEndian.Uint32(data[0:]) != manifestMagic ||
		binary.LittleEndian.Uint32(data[4:]) != manifestVersion ||
		binary.LittleEndian.Uint64(data[24:]) != crc64.Checksum(data[:24], manifestCRC) {
		return 0, 0, false
	}
	cur = binary.LittleEndian.Uint64(data[8:])
	next = binary.LittleEndian.Uint64(data[16:])
	if next <= cur {
		return 0, 0, false
	}
	return cur, next, true
}

// writeFileAtomic runs the torn-write-proof publish step: temp file,
// full write, fsync, rename into place, fsync the directory.
func (r *Registry) writeFileAtomic(dir, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := r.fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := r.fs.Rename(tmp, path); err != nil {
		return err
	}
	return r.fs.SyncDir(dir)
}

func (r *Registry) writeManifestLocked(ndir string, cur, next uint64) error {
	return r.writeFileAtomic(ndir, filepath.Join(ndir, manifestName), encodeManifest(cur, next))
}

// scanGens lists the generations present in ndir, ascending.
func (r *Registry) scanGens(ndir string) ([]uint64, error) {
	names, err := r.fs.ReadDir(ndir)
	if err != nil {
		return nil, err
	}
	var gens []uint64
	for _, n := range names {
		if g, ok := parseGen(n); ok {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// loadStateLocked returns the cached manifest state for name, reading
// the manifest — or recovering by directory scan when the manifest is
// missing or corrupt — on first touch.
func (r *Registry) loadStateLocked(name string) *nameState {
	if st := r.state[name]; st != nil {
		return st
	}
	ndir := r.nameDir(name)
	st := &nameState{next: 1}
	if data, err := r.fs.ReadFile(filepath.Join(ndir, manifestName)); err == nil {
		if cur, next, ok := parseManifest(data); ok {
			st.cur, st.next = cur, next
			r.state[name] = st
			return st
		}
	}
	// Manifest missing or corrupt: recover from the artifacts themselves.
	// Only fully renamed (hence fully written and fsynced) artifacts are
	// visible here; validity is enforced at serve time, where a corrupt
	// candidate is quarantined and the walk falls back a generation.
	if gens, err := r.scanGens(ndir); err == nil && len(gens) > 0 {
		st.cur = gens[len(gens)-1]
		st.next = st.cur + 1
	}
	r.state[name] = st
	return st
}

// ---------------------------------------------------------------------------
// publish / open / rollback

// Publish commits data as the next generation of name and returns its
// generation number. The artifact is validated first (a corrupt payload
// is refused, not persisted), written with the atomic protocol, and the
// manifest — the commit point — is updated last. On any error the
// on-disk state is at worst the previous generation plus inert temp or
// orphan files that the next successful publish overwrites.
func (r *Registry) Publish(name string, data []byte) (uint64, error) {
	if err := r.verify(data); err != nil {
		return 0, fmt.Errorf("registry: refusing to publish %s: %w", name, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, fmt.Errorf("registry: closed")
	}
	ndir := r.nameDir(name)
	if err := r.fs.MkdirAll(ndir, 0o755); err != nil {
		delete(r.state, name)
		return 0, fmt.Errorf("registry: publish %s: %w", name, err)
	}
	st := r.loadStateLocked(name)
	gen := st.next
	if err := r.writeFileAtomic(ndir, filepath.Join(ndir, genFile(gen)), data); err != nil {
		delete(r.state, name)
		return 0, fmt.Errorf("registry: publish %s gen %d: %w", name, gen, err)
	}
	if err := r.writeManifestLocked(ndir, gen, gen+1); err != nil {
		// The artifact is durable but uncommitted: recovery serves the
		// previous generation and the next publish overwrites the orphan.
		delete(r.state, name)
		return 0, fmt.Errorf("registry: publish %s gen %d manifest: %w", name, gen, err)
	}
	st.cur, st.next = gen, gen+1
	r.global.Publishes++
	r.countersFor(name).Publishes++
	r.gcLocked(ndir, gen)
	return gen, nil
}

// gcLocked removes generations older than the retention window.
// Best-effort: a GC failure never fails the publish that triggered it.
func (r *Registry) gcLocked(ndir string, cur uint64) {
	if cur <= uint64(r.keep) {
		return
	}
	gens, err := r.scanGens(ndir)
	if err != nil {
		return
	}
	cut := cur - uint64(r.keep)
	for _, g := range gens {
		if g <= cut {
			r.fs.Remove(filepath.Join(ndir, genFile(g)))
		}
	}
}

// readArtifact opens one artifact file: zero-copy mmap on the real
// filesystem, FS.ReadFile behind an injected one.
func (r *Registry) readArtifact(path string) (data []byte, unmap func(), err error) {
	if r.useMap {
		return mmapFile(path)
	}
	data, err = r.fs.ReadFile(path)
	return data, func() {}, err
}

// Latest opens the newest servable generation of name. Every candidate
// is checksum-verified before being served; a corrupt one is moved to
// the quarantine subdirectory (and counted) and the walk falls back to
// the previous generation, repointing the manifest at whatever it
// settles on. ErrNotFound means no generation survived.
func (r *Registry) Latest(name string) (*Handle, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, fmt.Errorf("registry: closed")
	}
	st := r.loadStateLocked(name)
	if st.cur == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	ndir := r.nameDir(name)
	gens, err := r.scanGens(ndir)
	if err != nil {
		delete(r.state, name)
		return nil, fmt.Errorf("registry: open %s: %w", name, err)
	}
	for i := len(gens) - 1; i >= 0; i-- {
		g := gens[i]
		if g > st.cur {
			continue // uncommitted orphan: the manifest never blessed it
		}
		path := filepath.Join(ndir, genFile(g))
		data, unmap, rerr := r.readArtifact(path)
		if rerr == nil {
			if verr := r.verify(data); verr == nil {
				r.unmaps = append(r.unmaps, unmap)
				r.global.Opens++
				if g != st.cur {
					// Healed past one or more quarantined generations:
					// persist the repoint (best-effort — state self-heals
					// from the scan either way).
					r.writeManifestLocked(ndir, g, st.next)
					st.cur = g
				}
				return &Handle{Gen: g, Data: data}, nil
			}
			unmap()
		}
		r.quarantineLocked(name, ndir, g)
	}
	return nil, fmt.Errorf("%w: %s (all generations quarantined)", ErrNotFound, name)
}

// quarantineLocked sets a corrupt generation aside so it is never
// considered again, and counts the event.
func (r *Registry) quarantineLocked(name, ndir string, gen uint64) {
	r.global.Quarantines++
	r.countersFor(name).Quarantines++
	qdir := filepath.Join(ndir, quarantineDir)
	if err := r.fs.MkdirAll(qdir, 0o755); err == nil {
		r.fs.Rename(filepath.Join(ndir, genFile(gen)), filepath.Join(qdir, genFile(gen)))
	}
}

// Rollback condemns the current generation of name — quarantining it so
// it can never be served again — and repoints the manifest at its
// newest on-disk predecessor, which it returns. Generation numbers stay
// monotonic: the next publish still gets a number above the condemned
// one.
func (r *Registry) Rollback(name string) (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, fmt.Errorf("registry: closed")
	}
	st := r.loadStateLocked(name)
	if st.cur == 0 {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	ndir := r.nameDir(name)
	gens, err := r.scanGens(ndir)
	if err != nil {
		delete(r.state, name)
		return 0, fmt.Errorf("registry: rollback %s: %w", name, err)
	}
	pred := uint64(0)
	for _, g := range gens {
		if g < st.cur && g > pred {
			pred = g
		}
	}
	if pred == 0 {
		return 0, fmt.Errorf("%w: %s gen %d", ErrNoPredecessor, name, st.cur)
	}
	r.quarantineLocked(name, ndir, st.cur)
	// Even if the manifest write fails the condemned artifact is gone
	// from the main directory, so recovery lands on pred regardless.
	if err := r.writeManifestLocked(ndir, pred, st.next); err != nil {
		delete(r.state, name)
	} else {
		st.cur = pred
	}
	r.global.Rollbacks++
	r.countersFor(name).Rollbacks++
	return pred, nil
}

// CurrentGeneration reports the committed generation of name (0, false
// when none exists).
func (r *Registry) CurrentGeneration(name string) (uint64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.loadStateLocked(name)
	return st.cur, st.cur != 0
}

// Generations lists the committed generations of name present on disk,
// ascending.
func (r *Registry) Generations(name string) ([]uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.loadStateLocked(name)
	gens, err := r.scanGens(r.nameDir(name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []uint64
	for _, g := range gens {
		if g <= st.cur {
			out = append(out, g)
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// wire serving: generation-addressed fetch and follower replay

// FetchArtifact serves name's artifact bytes at generation gen (0 =
// newest) for over-the-wire transport; together with StatArtifact it
// satisfies netserve's ArtifactStore. The returned bytes are the
// registry's own zero-copy view (on the real filesystem a live mmap,
// valid until Close). ok=false reports no such name/generation — a
// normal condition for a mirror probing shard keys. The newest handle
// is cached per name, so a polling mirror costs one mapping per
// committed generation, not per poll.
func (r *Registry) FetchArtifact(name string, gen uint64) (data []byte, actual uint64, ok bool, err error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, 0, false, fmt.Errorf("registry: closed")
	}
	st := r.loadStateLocked(name)
	if st.cur == 0 || (gen != 0 && gen > st.cur) {
		r.mu.Unlock()
		return nil, 0, false, nil
	}
	if h := r.latests[name]; h != nil && h.Gen == st.cur && (gen == 0 || gen == st.cur) {
		r.mu.Unlock()
		return h.Data, h.Gen, true, nil
	}
	if gen == 0 || gen == st.cur {
		r.mu.Unlock()
		h, lerr := r.Latest(name)
		if lerr != nil {
			if errors.Is(lerr, ErrNotFound) {
				return nil, 0, false, nil
			}
			return nil, 0, false, lerr
		}
		r.mu.Lock()
		if !r.closed {
			r.latests[name] = h
		}
		r.mu.Unlock()
		return h.Data, h.Gen, true, nil
	}
	// A specific older generation: open and verify it directly. No
	// caching — historical reads are rare (a follower catching up).
	defer r.mu.Unlock()
	path := filepath.Join(r.nameDir(name), genFile(gen))
	bytes, unmap, rerr := r.readArtifact(path)
	if rerr != nil {
		if os.IsNotExist(rerr) {
			return nil, 0, false, nil
		}
		return nil, 0, false, fmt.Errorf("registry: fetch %s gen %d: %w", name, gen, rerr)
	}
	if verr := r.verify(bytes); verr != nil {
		unmap()
		return nil, 0, false, fmt.Errorf("registry: fetch %s gen %d: %w", name, gen, verr)
	}
	r.unmaps = append(r.unmaps, unmap)
	r.global.Opens++
	return bytes, gen, true, nil
}

// StatArtifact reports name's committed generation for the wire control
// plane; it is CurrentGeneration under the ArtifactStore method set.
func (r *Registry) StatArtifact(name string) (uint64, bool) {
	return r.CurrentGeneration(name)
}

// ReplayPublish installs data as generation gen of name — the follower
// half of over-the-wire replication. It runs the same verify → atomic
// write → manifest-commit protocol as Publish but preserves the
// leader's generation number instead of assigning one, and is
// idempotent: a generation at or below the committed one is skipped
// (applied=false, nil error), so a mirror can replay fetched
// generations without tracking what it already has.
func (r *Registry) ReplayPublish(name string, gen uint64, data []byte) (applied bool, err error) {
	if gen == 0 {
		return false, fmt.Errorf("registry: replay %s: generation 0 is not publishable", name)
	}
	if err := r.verify(data); err != nil {
		return false, fmt.Errorf("registry: refusing to replay %s gen %d: %w", name, gen, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false, fmt.Errorf("registry: closed")
	}
	ndir := r.nameDir(name)
	if err := r.fs.MkdirAll(ndir, 0o755); err != nil {
		delete(r.state, name)
		return false, fmt.Errorf("registry: replay %s: %w", name, err)
	}
	st := r.loadStateLocked(name)
	if gen <= st.cur {
		return false, nil
	}
	if err := r.writeFileAtomic(ndir, filepath.Join(ndir, genFile(gen)), data); err != nil {
		delete(r.state, name)
		return false, fmt.Errorf("registry: replay %s gen %d: %w", name, gen, err)
	}
	next := st.next
	if gen+1 > next {
		next = gen + 1
	}
	if err := r.writeManifestLocked(ndir, gen, next); err != nil {
		delete(r.state, name)
		return false, fmt.Errorf("registry: replay %s gen %d manifest: %w", name, gen, err)
	}
	st.cur, st.next = gen, next
	r.global.Publishes++
	r.countersFor(name).Publishes++
	r.gcLocked(ndir, gen)
	return true, nil
}
