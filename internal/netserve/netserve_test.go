package netserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// testBackend is a deterministic serve.Backend: y[j] = sum(x) + j, with
// optional per-call latency, a poison input that errors and one that
// panics, and an atomic call/row counter.
type testBackend struct {
	in, out int
	delay   time.Duration
	calls   atomic.Int64
	rows    atomic.Int64
}

const (
	poisonErr   = 1e9 // x[0] == poisonErr → row error
	poisonPanic = 2e9 // x[0] == poisonPanic → backend panic
)

func (b *testBackend) Dims() (int, int) { return b.in, b.out }

func (b *testBackend) QueryBatch(xs *tensor.Matrix) ([]core.BatchResult, error) {
	res := make([]core.BatchResult, xs.Rows)
	if err := b.QueryBatchInto(xs, res); err != nil {
		return nil, err
	}
	return res, nil
}

func (b *testBackend) QueryBatchInto(xs *tensor.Matrix, res []core.BatchResult) error {
	b.calls.Add(1)
	b.rows.Add(int64(xs.Rows))
	if b.delay > 0 {
		time.Sleep(b.delay)
	}
	for i := 0; i < xs.Rows; i++ {
		row := xs.Row(i)
		res[i].Err = nil
		res[i].Src = core.FromSurrogate
		if row[0] == poisonPanic {
			panic("testBackend: poisoned input")
		}
		if row[0] == poisonErr {
			res[i].Err = errors.New("testBackend: poisoned row")
			res[i].Y = nil
			res[i].Std = nil
			continue
		}
		s := 0.0
		for _, v := range row {
			s += v
		}
		if cap(res[i].Y) < b.out {
			res[i].Y = make([]float64, b.out)
			res[i].Std = make([]float64, b.out)
		}
		res[i].Y = res[i].Y[:b.out]
		res[i].Std = res[i].Std[:b.out]
		for j := 0; j < b.out; j++ {
			res[i].Y[j] = s + float64(j)
			res[i].Std[j] = 0.01
		}
	}
	return nil
}

// newTestServer stands up a fleet + wire server on loopback and returns
// the dial address. Tenants map name → backend.
func newTestServer(t testing.TB, fcfg fleet.Config, scfg Config, tenants map[string]serve.Backend) (*fleet.Fleet, *Server, string) {
	t.Helper()
	fl := fleet.New(fcfg)
	for name, b := range tenants {
		if err := fl.Register(name, b); err != nil {
			t.Fatal(err)
		}
	}
	scfg.Fleet = fl
	srv := NewServer(scfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		fl.Close()
	})
	return fl, srv, ln.Addr().String()
}

func TestWireRoundTrip(t *testing.T) {
	bk := &testBackend{in: 3, out: 2}
	_, _, addr := newTestServer(t, fleet.Config{}, Config{}, map[string]serve.Backend{"m": bk})
	cl, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	y := make([]float64, 2)
	std := make([]float64, 2)
	for i := 0; i < 200; i++ {
		x := []float64{float64(i), 0.5, -0.25}
		res, err := cl.QueryInto("m", x, y, std, time.Time{})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		want := x[0] + x[1] + x[2]
		if len(res.Y) != 2 || math.Abs(res.Y[0]-want) > 1e-12 || math.Abs(res.Y[1]-(want+1)) > 1e-12 {
			t.Fatalf("query %d: got %v want [%v %v]", i, res.Y, want, want+1)
		}
		if res.Src != core.FromSurrogate {
			t.Fatalf("query %d: src = %v", i, res.Src)
		}
		if len(res.Std) != 2 || res.Std[0] != 0.01 {
			t.Fatalf("query %d: std = %v", i, res.Std)
		}
	}
}

func TestWireNoStdFlag(t *testing.T) {
	bk := &testBackend{in: 2, out: 1}
	_, _, addr := newTestServer(t, fleet.Config{}, Config{}, map[string]serve.Backend{"m": bk})
	cl, err := Dial(addr, ClientConfig{Flags: FlagNoStd})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := cl.Query("m", []float64{1, 2}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Std != nil {
		t.Fatalf("FlagNoStd response carried std %v", res.Std)
	}
	if res.Y[0] != 3 {
		t.Fatalf("y = %v", res.Y)
	}
}

func TestWireExpiredDeadlineNeverReachesBackend(t *testing.T) {
	bk := &testBackend{in: 2, out: 1}
	fl, _, addr := newTestServer(t, fleet.Config{}, Config{}, map[string]serve.Backend{"m": bk})
	cl, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// A request whose deadline passed long ago must come back as
	// StatusExpired without the backend ever seeing it.
	expired := time.Now().Add(-time.Second)
	if _, err := cl.Query("m", []float64{1, 2}, expired); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired query returned %v, want ErrExpired", err)
	}
	if n := bk.calls.Load(); n != 0 {
		t.Fatalf("expired query reached the backend (%d calls)", n)
	}
	st, err := fl.TenantStats("m")
	if err != nil {
		t.Fatal(err)
	}
	if st.Expired != 1 {
		t.Fatalf("TenantStats.Expired = %d, want 1", st.Expired)
	}
	// A generous deadline serves normally.
	if _, err := cl.Query("m", []float64{1, 2}, time.Now().Add(time.Minute)); err != nil {
		t.Fatalf("live-deadline query failed: %v", err)
	}
	if bk.calls.Load() == 0 {
		t.Fatal("live-deadline query never reached the backend")
	}
}

func TestWireUnknownTenant(t *testing.T) {
	bk := &testBackend{in: 2, out: 1}
	_, _, addr := newTestServer(t, fleet.Config{}, Config{}, map[string]serve.Backend{"m": bk})
	cl, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Query("nope", []float64{1, 2}, time.Time{}); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("got %v, want ErrUnknownTenant", err)
	}
}

func TestWireOverloadRetryStatus(t *testing.T) {
	// One admission slot, slow backend: concurrent queries must shed with
	// an explicit RETRY status, never hang or vanish.
	bk := &testBackend{in: 2, out: 1, delay: 50 * time.Millisecond}
	_, _, addr := newTestServer(t,
		fleet.Config{MaxInFlight: 1, Coalescer: serve.Config{MaxBatch: 1}},
		Config{}, map[string]serve.Backend{"m": bk})
	cl, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const n = 8
	var ok, retried atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := cl.Query("m", []float64{1, 2}, time.Time{})
			switch {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, ErrRetry):
				retried.Add(1)
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if ok.Load()+retried.Load() != n {
		t.Fatalf("ok=%d retried=%d, want sum %d", ok.Load(), retried.Load(), n)
	}
	if ok.Load() == 0 {
		t.Fatal("every query shed; at least one should have been admitted")
	}
	if retried.Load() == 0 {
		t.Fatal("no query shed; admission bound did not bite")
	}
}

func TestWireRowErrorAndPanicContainment(t *testing.T) {
	bk := &testBackend{in: 2, out: 1}
	_, _, addr := newTestServer(t, fleet.Config{}, Config{}, map[string]serve.Backend{"m": bk})
	cl, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var re *RemoteError
	if _, err := cl.Query("m", []float64{poisonErr, 0}, time.Time{}); !errors.As(err, &re) {
		t.Fatalf("poisoned row returned %v, want *RemoteError", err)
	} else if !strings.Contains(re.Msg, "poisoned row") {
		t.Fatalf("remote error message %q", re.Msg)
	}
	if _, err := cl.Query("m", []float64{poisonPanic, 0}, time.Time{}); !errors.As(err, &re) {
		t.Fatalf("panicking backend returned %v, want *RemoteError", err)
	} else if !strings.Contains(re.Msg, "panicked") {
		t.Fatalf("remote error message %q", re.Msg)
	}
	// The connection survives both: a normal query still round-trips.
	res, err := cl.Query("m", []float64{2, 3}, time.Time{})
	if err != nil || res.Y[0] != 5 {
		t.Fatalf("post-poison query: %v %v", res.Y, err)
	}
}

func TestWireGarbageFramesKillOnlyTheirConnection(t *testing.T) {
	bk := &testBackend{in: 2, out: 1}
	_, srv, addr := newTestServer(t, fleet.Config{}, Config{}, map[string]serve.Backend{"m": bk})

	for _, garbage := range [][]byte{
		{0x00, 0x00, 0x00, 0x00},             // zero-length frame
		{0xff, 0xff, 0xff, 0xff, 0x01},       // oversized declared length
		{0x00, 0x00, 0x00, 0x03, 9, 9, 9},    // bad version
		{0x00, 0x00, 0x00, 0x02, 0x01, 0x07}, // bad type
	} {
		raw, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := raw.Write(garbage); err != nil {
			t.Fatal(err)
		}
		raw.SetReadDeadline(time.Now().Add(2 * time.Second))
		var one [1]byte
		if _, err := raw.Read(one[:]); err == nil {
			t.Fatalf("server answered garbage %v instead of closing", garbage)
		}
		raw.Close()
	}
	if n := srv.Stats().ProtoErrors; n < 4 {
		t.Fatalf("ProtoErrors = %d, want ≥ 4", n)
	}
	// A well-formed client on a fresh connection is unaffected.
	cl, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Query("m", []float64{1, 1}, time.Time{}); err != nil {
		t.Fatalf("post-garbage query failed: %v", err)
	}
}

func TestWireCrossConnectionCoalescing(t *testing.T) {
	// 16 connections, one blocking caller each: the per-tenant coalescer
	// must gather their requests into shared micro-batches even though no
	// two of them ever share a connection — the whole point of feeding
	// the wire into Coalescer.QueryInto. The backend dwell time makes
	// arrivals pile up so gathers have material to work with.
	bk := &testBackend{in: 2, out: 1, delay: 300 * time.Microsecond}
	fl, _, addr := newTestServer(t, fleet.Config{}, Config{}, map[string]serve.Backend{"m": bk})

	const conns = 16
	const perConn = 60
	var wg sync.WaitGroup
	for cI := 0; cI < conns; cI++ {
		cl, err := Dial(addr, ClientConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		wg.Add(1)
		go func(cl *Client, seed int) {
			defer wg.Done()
			y := make([]float64, 1)
			std := make([]float64, 1)
			for i := 0; i < perConn; i++ {
				x := []float64{float64(seed), float64(i)}
				res, err := cl.QueryInto("m", x, y, std, time.Time{})
				if err != nil {
					t.Errorf("conn %d query %d: %v", seed, i, err)
					return
				}
				if want := x[0] + x[1]; math.Abs(res.Y[0]-want) > 1e-12 {
					t.Errorf("conn %d query %d: got %v want %v", seed, i, res.Y[0], want)
					return
				}
			}
		}(cl, cI)
	}
	wg.Wait()

	st, err := fl.TenantStats("m")
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries != conns*perConn {
		t.Fatalf("tenant served %d queries, want %d", st.Queries, conns*perConn)
	}
	if st.MeanBatch < 2 {
		t.Fatalf("mean batch %.2f across %d connections — no cross-connection coalescing", st.MeanBatch, conns)
	}
	t.Logf("mean batch %.1f over %d batches from %d connections", st.MeanBatch, st.Batches, conns)
}

func TestWireServerCloseDrains(t *testing.T) {
	bk := &testBackend{in: 2, out: 1, delay: 2 * time.Millisecond}
	fl := fleet.New(fleet.Config{})
	if err := fl.Register("m", bk); err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	srv := NewServer(Config{Fleet: fl})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	cl, err := Dial(ln.Addr().String(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Keep a stream of queries in flight while the server shuts down:
	// every single one must resolve — answered or failed — never hang.
	const goroutines = 8
	var resolved, served atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			y := make([]float64, 1)
			std := make([]float64, 1)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, err := cl.QueryInto("m", []float64{float64(g), float64(i)}, y, std, time.Time{})
				resolved.Add(1)
				if err == nil {
					served.Add(1)
				}
			}
		}(g)
	}
	time.Sleep(30 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("server Close did not drain within 5s")
	}
	close(stop)
	wg.Wait()
	if served.Load() == 0 {
		t.Fatal("no query served before shutdown")
	}
	t.Logf("resolved %d queries (%d served) across shutdown", resolved.Load(), served.Load())
	// After Close the client fails fast rather than hanging.
	if _, err := cl.Query("m", []float64{1, 1}, time.Time{}); err == nil {
		t.Fatal("query succeeded after server Close")
	}
}

func TestWireSteadyStateAllocs(t *testing.T) {
	// The end-to-end loopback path (client encode+flush, server decode,
	// fleet dispatch, response encode+flush, client decode) must settle
	// to ~zero heap allocations per query once every pool is warm. The
	// benchmark gate enforces exactly 0 on the recorded snapshot; here a
	// small tolerance absorbs GC-emptied sync.Pools refilling mid-run.
	if raceEnabled {
		t.Skip("race runtime drops sync.Pool puts; alloc counts are meaningless")
	}
	bk := &testBackend{in: 2, out: 1}
	_, _, addr := newTestServer(t, fleet.Config{}, Config{}, map[string]serve.Backend{"m": bk})
	cl, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	x := []float64{0.25, -0.5}
	y := make([]float64, 1)
	std := make([]float64, 1)
	for i := 0; i < 512; i++ { // warm every pool
		if _, err := cl.QueryInto("m", x, y, std, time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(2000, func() {
		if _, err := cl.QueryInto("m", x, y, std, time.Time{}); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 1.0 {
		t.Fatalf("steady-state wire query allocates %.2f objects/op, want ≈ 0", avg)
	}
}

func TestHealthEndpoints(t *testing.T) {
	bk := &testBackend{in: 2, out: 1}
	fl, srv, addr := newTestServer(t, fleet.Config{}, Config{}, map[string]serve.Backend{"m": bk})
	cl, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 32; i++ {
		if _, err := cl.Query("m", []float64{1, 2}, time.Time{}); err != nil {
			t.Fatal(err)
		}
	}

	h := &Health{Fleet: fl, Server: srv}
	ts := httptest.NewServer(h)
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, _ := get("/healthz"); code != 200 {
		t.Fatalf("/healthz = %d", code)
	}
	if code, _ := get("/readyz"); code != 200 {
		t.Fatalf("/readyz = %d with a registered tenant", code)
	}
	code, body := get("/statsz")
	if code != 200 {
		t.Fatalf("/statsz = %d", code)
	}
	var parsed struct {
		Tenants map[string]map[string]any `json:"tenants"`
		Server  map[string]any            `json:"_server"`
	}
	if err := json.Unmarshal([]byte(body), &parsed); err != nil {
		t.Fatalf("/statsz not JSON: %v\n%s", err, body)
	}
	m, ok := parsed.Tenants["m"]
	if !ok {
		t.Fatalf("/statsz missing tenant m: %s", body)
	}
	for _, key := range []string{"queries", "qps", "p50_ns", "p99_ns", "staleness", "drifted_shards", "max_drift_ratio", "quant_fallbacks"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("/statsz tenant entry missing %q: %s", key, body)
		}
	}
	if q, _ := m["queries"].(float64); q < 32 {
		t.Fatalf("/statsz queries = %v, want ≥ 32", m["queries"])
	}
	if parsed.Server == nil {
		t.Fatalf("/statsz missing _server block: %s", body)
	}

	// Readiness follows the fleet: with every tenant gone it reports 503.
	if err := fl.Deregister("m"); err != nil {
		t.Fatal(err)
	}
	if code, _ := get("/readyz"); code != 503 {
		t.Fatalf("/readyz = %d with no tenants, want 503", code)
	}
}

func TestHistPercentiles(t *testing.T) {
	var h Hist
	for i := int64(1); i <= 100000; i++ {
		h.Record(i)
	}
	if h.Count() != 100000 {
		t.Fatalf("count %d", h.Count())
	}
	for _, tc := range []struct {
		p    float64
		want int64
	}{{0.5, 50000}, {0.9, 90000}, {0.99, 99000}, {1.0, 100000}} {
		got := int64(h.Percentile(tc.p))
		relErr := math.Abs(float64(got-tc.want)) / float64(tc.want)
		if relErr > 0.05 {
			t.Fatalf("p%.2f = %d, want ≈ %d (rel err %.3f)", tc.p, got, tc.want, relErr)
		}
	}
	var a, b Hist
	for i := int64(0); i < 1000; i++ {
		a.Record(10)
		b.Record(1000)
	}
	a.Merge(&b)
	if a.Count() != 2000 {
		t.Fatalf("merged count %d", a.Count())
	}
	if p := a.Percentile(0.25); p != 10 {
		t.Fatalf("merged p25 = %v", p)
	}
	if p := int64(a.Percentile(0.9)); p < 950 || p > 1050 {
		t.Fatalf("merged p90 = %v", p)
	}
	if a.Max() != 1000 {
		t.Fatalf("merged max = %v", a.Max())
	}
}

func TestRunLoadClosedLoop(t *testing.T) {
	bk := &testBackend{in: 2, out: 1}
	_, _, addr := newTestServer(t, fleet.Config{}, Config{}, map[string]serve.Backend{"m": bk})
	rep, err := RunLoad(LoadConfig{
		Addr:     addr,
		Tenants:  []string{"m"},
		In:       2,
		Duration: 300 * time.Millisecond,
		Conns:    2,
		Workers:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK == 0 || rep.OK != rep.Sent {
		t.Fatalf("closed loop: sent=%d ok=%d errors=%d", rep.Sent, rep.OK, rep.Errors)
	}
	if rep.Latency.Count() != rep.Sent {
		t.Fatalf("histogram holds %d samples for %d requests", rep.Latency.Count(), rep.Sent)
	}
	if rep.AchievedQPS <= 0 {
		t.Fatalf("achieved qps %f", rep.AchievedQPS)
	}
	if s := rep.String(); !strings.Contains(s, "p99") {
		t.Fatalf("report missing percentiles: %s", s)
	}
}

func TestRunLoadOpenLoopPacing(t *testing.T) {
	bk := &testBackend{in: 2, out: 1}
	_, _, addr := newTestServer(t, fleet.Config{}, Config{}, map[string]serve.Backend{"m": bk})
	const target = 2000.0
	rep, err := RunLoad(LoadConfig{
		Addr:     addr,
		Tenants:  []string{"m"},
		In:       2,
		QPS:      target,
		Duration: 500 * time.Millisecond,
		Conns:    2,
		Workers:  16,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Open loop at an easily sustainable rate: the achieved rate should
	// sit near the schedule, far below the closed-loop maximum.
	want := target * 0.5 // generous floor: scheduler jitter on tiny runs
	if rep.AchievedQPS < want {
		t.Fatalf("open loop achieved %.0f q/s against a %.0f target", rep.AchievedQPS, target)
	}
	if rep.OK == 0 {
		t.Fatal("no queries served")
	}
}

func TestWireConcurrentClientsManyTenants(t *testing.T) {
	tenants := map[string]serve.Backend{}
	for i := 0; i < 4; i++ {
		tenants[fmt.Sprintf("t%d", i)] = &testBackend{in: 2, out: 1}
	}
	fl, _, addr := newTestServer(t, fleet.Config{}, Config{}, tenants)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		cl, err := Dial(addr, ClientConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		wg.Add(1)
		go func(cl *Client, c int) {
			defer wg.Done()
			y := make([]float64, 1)
			std := make([]float64, 1)
			name := fmt.Sprintf("t%d", c%4)
			for i := 0; i < 100; i++ {
				if _, err := cl.QueryInto(name, []float64{1, float64(i)}, y, std, time.Time{}); err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
			}
		}(cl, c)
	}
	wg.Wait()
	total := int64(0)
	for _, st := range fl.Stats() {
		total += st.Queries
	}
	if total != 800 {
		t.Fatalf("fleet served %d queries, want 800", total)
	}
}

// BenchmarkWireLoopback is the package-local alloc probe for the wire
// path; the repo-root BenchmarkWireQPS is the recorded headline number.
func BenchmarkWireLoopback(b *testing.B) {
	bk := &testBackend{in: 2, out: 1}
	_, _, addr := newTestServer(b, fleet.Config{}, Config{}, map[string]serve.Backend{"m": bk})
	cl, err := Dial(addr, ClientConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	x := []float64{0.25, -0.5}
	y := make([]float64, 1)
	std := make([]float64, 1)
	for i := 0; i < 512; i++ {
		if _, err := cl.QueryInto("m", x, y, std, time.Time{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.QueryInto("m", x, y, std, time.Time{}); err != nil {
			b.Fatal(err)
		}
	}
}
