package netserve

import (
	"encoding/binary"
	"fmt"
)

// Artifact frames are the control plane of the dispatch tier: a router
// (or any follower) pulls a worker's registry generations over the wire
// with a fetch frame, and pushes artifacts into a freshly chosen worker
// with a push frame so a moved tenant warm-starts instead of retraining.
// They share the connection, id space and response demux with query
// frames but are deliberately off the perf-critical path: keys and
// payloads are copied, not pooled.
//
//	fetch body: ver(1) type(1) flags(1) klen(1) id(8) gen(8) key(klen)
//	data  body: ver(1) type(1) status(1) pad(1) id(8) gen(8) dlen(4) data(dlen)
//	push  body: ver(1) type(1) flags(1) klen(1) id(8) gen(8) dlen(4) key(klen) data(dlen)
//
// A fetch with gen 0 asks for the newest generation; the data frame
// reports the generation actually served. A fetch with FlagArtStat
// answers with the current generation and no payload. A push with
// FlagArtCold carries no payload: it asks the receiver to place the
// key's tenant cold (construct and pretrain) rather than install bytes.
// For StatusError the data payload is the error message; for
// StatusUnknownTenant (no such key/generation) it is empty.
const (
	frameArtFetch = 3 // router → worker: read one registry generation
	frameArtData  = 4 // worker → router: the artifact bytes or a status
	frameArtPush  = 5 // router → worker: install a generation / place cold

	artFetchHeaderLen = 20
	artDataHeaderLen  = 24
	artPushHeaderLen  = 24

	// DefaultMaxArtifactFrame caps artifact frame bodies (64 MiB) — far
	// above any real surrogate artifact, far below a memory-exhaustion
	// write. Applies on connections whose Config enables artifact hooks;
	// clients opt in by raising ClientConfig.MaxFrame.
	DefaultMaxArtifactFrame = 64 << 20
)

// Artifact frame flag bits.
const (
	// FlagArtStat on a fetch asks for the current generation number only
	// (dlen 0 in the answer) — the mirror loop's cheap poll.
	FlagArtStat = 1 << 0
	// FlagArtCold on a push carries no artifact: place the key's tenant
	// cold. gen and payload must be zero/empty.
	FlagArtCold = 1 << 1

	artFetchFlagsKnown = FlagArtStat
	artPushFlagsKnown  = FlagArtCold
)

// artFetch is a decoded artifact-fetch body. key aliases the frame
// buffer — valid only until the next read on the connection.
type artFetch struct {
	id    uint64
	gen   uint64
	flags byte
	key   []byte
}

// parseArtFetch decodes an artifact-fetch body with the same no-panic,
// no-alloc guarantees as parseRequest.
func parseArtFetch(body []byte) (artFetch, error) {
	var a artFetch
	if len(body) < artFetchHeaderLen {
		return a, errTruncated
	}
	if body[0] != ProtoVersion {
		return a, errBadVersion
	}
	if body[1] != frameArtFetch {
		return a, errBadType
	}
	if body[2]&^byte(artFetchFlagsKnown) != 0 {
		return a, errBadFlags
	}
	klen := int(body[3])
	if klen == 0 {
		return a, errBadGeom
	}
	a.flags = body[2]
	a.id = binary.BigEndian.Uint64(body[4:12])
	a.gen = binary.BigEndian.Uint64(body[12:20])
	if len(body) != artFetchHeaderLen+klen {
		if len(body) < artFetchHeaderLen+klen {
			return a, errTruncated
		}
		return a, errTrailing
	}
	a.key = body[artFetchHeaderLen:]
	return a, nil
}

// artData is a decoded artifact-data body. data aliases the frame
// buffer — valid only until the next read on the connection.
type artData struct {
	id     uint64
	gen    uint64
	status byte
	data   []byte
}

// parseArtData decodes an artifact-data body.
func parseArtData(body []byte) (artData, error) {
	var a artData
	if len(body) < artDataHeaderLen {
		return a, errTruncated
	}
	if body[0] != ProtoVersion {
		return a, errBadVersion
	}
	if body[1] != frameArtData {
		return a, errBadType
	}
	a.status = body[2]
	if a.status > StatusError {
		// Only defined statuses are wire-legal; anything else means the
		// stream is corrupt and the connection must die.
		return a, errBadGeom
	}
	a.id = binary.BigEndian.Uint64(body[4:12])
	a.gen = binary.BigEndian.Uint64(body[12:20])
	dlen := int(binary.BigEndian.Uint32(body[20:24]))
	if dlen < 0 {
		return a, errBadGeom
	}
	if len(body) != artDataHeaderLen+dlen {
		if len(body) < artDataHeaderLen+dlen {
			return a, errTruncated
		}
		return a, errTrailing
	}
	a.data = body[artDataHeaderLen:]
	return a, nil
}

// artPush is a decoded artifact-push body. key and data alias the frame
// buffer — valid only until the next read on the connection.
type artPush struct {
	id    uint64
	gen   uint64
	flags byte
	key   []byte
	data  []byte
}

// parseArtPush decodes an artifact-push body.
func parseArtPush(body []byte) (artPush, error) {
	var a artPush
	if len(body) < artPushHeaderLen {
		return a, errTruncated
	}
	if body[0] != ProtoVersion {
		return a, errBadVersion
	}
	if body[1] != frameArtPush {
		return a, errBadType
	}
	if body[2]&^byte(artPushFlagsKnown) != 0 {
		return a, errBadFlags
	}
	klen := int(body[3])
	if klen == 0 {
		return a, errBadGeom
	}
	a.flags = body[2]
	a.id = binary.BigEndian.Uint64(body[4:12])
	a.gen = binary.BigEndian.Uint64(body[12:20])
	dlen := int(binary.BigEndian.Uint32(body[20:24]))
	if dlen < 0 {
		return a, errBadGeom
	}
	if a.flags&FlagArtCold != 0 && (dlen != 0 || a.gen != 0) {
		return a, errBadGeom
	}
	want := artPushHeaderLen + klen + dlen
	if len(body) != want {
		if len(body) < want {
			return a, errTruncated
		}
		return a, errTrailing
	}
	a.key = body[artPushHeaderLen : artPushHeaderLen+klen]
	a.data = body[artPushHeaderLen+klen:]
	return a, nil
}

// appendArtFetch encodes an artifact-fetch frame (length prefix
// included) onto dst.
func appendArtFetch(dst []byte, id, gen uint64, flags byte, key string) ([]byte, error) {
	if len(key) == 0 || len(key) > MaxTenant {
		return dst, fmt.Errorf("netserve: artifact key %d bytes, protocol allows 1..%d", len(key), MaxTenant)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(artFetchHeaderLen+len(key)))
	dst = append(dst, ProtoVersion, frameArtFetch, flags, byte(len(key)))
	dst = binary.BigEndian.AppendUint64(dst, id)
	dst = binary.BigEndian.AppendUint64(dst, gen)
	return append(dst, key...), nil
}

// appendArtDataHeader encodes an artifact-data frame whose length prefix
// covers dlen payload bytes the caller writes separately — the zero-copy
// splice path: the server writes the header from pooled scratch and the
// mmap'd artifact bytes straight after it, copying nothing.
func appendArtDataHeader(dst []byte, id, gen uint64, status byte, dlen int) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(artDataHeaderLen+dlen))
	dst = append(dst, ProtoVersion, frameArtData, status, 0)
	dst = binary.BigEndian.AppendUint64(dst, id)
	dst = binary.BigEndian.AppendUint64(dst, gen)
	return binary.BigEndian.AppendUint32(dst, uint32(dlen))
}

// appendArtData encodes a complete artifact-data frame (payload
// included) onto dst.
func appendArtData(dst []byte, id, gen uint64, status byte, data []byte) []byte {
	dst = appendArtDataHeader(dst, id, gen, status, len(data))
	return append(dst, data...)
}

// appendArtPush encodes an artifact-push frame (length prefix included)
// onto dst.
func appendArtPush(dst []byte, id, gen uint64, flags byte, key string, data []byte) ([]byte, error) {
	if len(key) == 0 || len(key) > MaxTenant {
		return dst, fmt.Errorf("netserve: artifact key %d bytes, protocol allows 1..%d", len(key), MaxTenant)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(artPushHeaderLen+len(key)+len(data)))
	dst = append(dst, ProtoVersion, frameArtPush, flags, byte(len(key)))
	dst = binary.BigEndian.AppendUint64(dst, id)
	dst = binary.BigEndian.AppendUint64(dst, gen)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(data)))
	dst = append(dst, key...)
	return append(dst, data...), nil
}

// ArtifactStore serves artifact-fetch frames; *registry.Registry
// implements it. FetchArtifact returns the bytes and actual generation
// for key at gen (0 = newest); ok=false reports no such key/generation —
// a normal condition, answered on the wire as StatusUnknownTenant.
// Returned data may alias a long-lived mapping owned by the store; the
// server only writes it to the socket and drops the reference.
type ArtifactStore interface {
	FetchArtifact(key string, gen uint64) (data []byte, actual uint64, ok bool, err error)
	StatArtifact(key string) (gen uint64, ok bool)
}

// ArtifactSink accepts artifact-push frames. data is nil for a cold
// placement (FlagArtCold): the sink should create the key's tenant from
// scratch. The sink owns data; it is never reused by the server.
type ArtifactSink interface {
	InstallArtifact(key string, gen uint64, data []byte) error
}

// StatArtifact asks the server for key's current registry generation.
// ok=false means the key has no committed generation.
func (cl *Client) StatArtifact(key string) (gen uint64, ok bool, err error) {
	p, err := cl.artCall(frameArtFetch, key, 0, FlagArtStat, nil)
	if err != nil {
		return 0, false, err
	}
	gen, ok = p.artGen, p.artOK
	cl.putPending(p)
	return gen, ok, nil
}

// FetchArtifact pulls key's artifact at generation gen (0 = newest).
// ok=false means no such key/generation. The returned bytes are
// caller-owned. Fetching real artifacts needs ClientConfig.MaxFrame
// raised to DefaultMaxArtifactFrame (or the server's configured cap).
func (cl *Client) FetchArtifact(key string, gen uint64) (data []byte, actual uint64, ok bool, err error) {
	p, err := cl.artCall(frameArtFetch, key, gen, 0, nil)
	if err != nil {
		return nil, 0, false, err
	}
	data, actual, ok = p.artData, p.artGen, p.artOK
	p.artData = nil
	cl.putPending(p)
	return data, actual, ok, nil
}

// PushArtifact installs data as generation gen of key on the server.
// A nil data with gen 0 is a cold placement request: the server creates
// the key's tenant without an artifact.
func (cl *Client) PushArtifact(key string, gen uint64, data []byte) error {
	var flags byte
	if data == nil {
		flags = FlagArtCold
	}
	p, err := cl.artCall(frameArtPush, key, gen, flags, data)
	if err != nil {
		return err
	}
	cl.putPending(p)
	return nil
}

// artCall runs one artifact request/response exchange over the
// multiplexed connection, sharing the id space and demux with queries.
// On success the caller reads the artifact fields off the returned
// pending and recycles it with putPending.
func (cl *Client) artCall(op byte, key string, gen uint64, flags byte, data []byte) (*pending, error) {
	p, _ := cl.pool.Get().(*pending)
	if p == nil {
		p = &pending{done: make(chan struct{}, 1)}
	}
	p.y, p.std = nil, nil
	p.err = nil
	p.res = WireResult{}
	p.artGen, p.artOK, p.artData = 0, false, nil
	id := cl.id.Add(1)
	var err error
	switch op {
	case frameArtFetch:
		p.buf, err = appendArtFetch(p.buf[:0], id, gen, flags, key)
	case frameArtPush:
		p.buf, err = appendArtPush(p.buf[:0], id, gen, flags, key, data)
	default:
		err = errBadType
	}
	if err != nil {
		cl.pool.Put(p)
		return nil, err
	}

	cl.mu.Lock()
	if cl.broken != nil {
		err = cl.broken
		cl.mu.Unlock()
		cl.pool.Put(p)
		return nil, err
	}
	cl.pend[id] = p
	cl.mu.Unlock()

	select {
	case cl.wq <- p:
	case <-cl.quit:
		if cl.withdraw(p, id) {
			cl.pool.Put(p)
			return nil, ErrClientClosed
		}
	}
	<-p.done
	if p.err != nil {
		err = p.err
		cl.putPending(p)
		return nil, err
	}
	return p, nil
}

// putPending recycles a pending after its artifact fields were consumed.
func (cl *Client) putPending(p *pending) {
	p.artData = nil
	p.y, p.std = nil, nil
	cl.pool.Put(p)
}

// completeArt fills p from a decoded artifact-data response. The payload
// is copied out of the connection's read buffer.
func completeArt(p *pending, ad artData) {
	switch ad.status {
	case StatusOK:
		p.artGen = ad.gen
		p.artOK = true
		if len(ad.data) > 0 {
			p.artData = append([]byte(nil), ad.data...)
		}
	case StatusUnknownTenant:
		p.artOK = false
	case StatusError:
		p.err = &RemoteError{Msg: string(ad.data)}
	case StatusRetry:
		p.err = ErrRetry
	case StatusExpired:
		p.err = ErrExpired
	default:
		p.err = fmt.Errorf("netserve: unknown artifact status %d", ad.status)
	}
}
