package netserve

import (
	"errors"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/fleet"
	"repro/internal/serve"
)

func TestResilientRoundTrip(t *testing.T) {
	bk := &testBackend{in: 3, out: 2}
	_, _, addr := newTestServer(t, fleet.Config{}, Config{}, map[string]serve.Backend{"m": bk})
	rc, err := DialResilient(addr, ResilientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	y, std := make([]float64, 2), make([]float64, 2)
	for i := 0; i < 200; i++ {
		x := []float64{float64(i), 0.5, -0.25}
		res, err := rc.QueryInto("m", x, y, std, time.Time{})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		want := float64(i) + 0.5 - 0.25
		if res.Y[0] != want || res.Y[1] != want+1 {
			t.Fatalf("query %d: got %v, want [%v %v]", i, res.Y, want, want+1)
		}
	}
	st := rc.Stats()
	if st.Live != st.Conns {
		t.Fatalf("healthy pool not fully live: %+v", st)
	}
}

// TestResilientReconnect severs every pooled connection mid-load and
// asserts the client retries onto repaired connections without surfacing
// a transport error to steady callers for long.
func TestResilientReconnect(t *testing.T) {
	inj := chaos.New(3)
	bk := &testBackend{in: 2, out: 1}
	_, _, addr := newTestServer(t, fleet.Config{}, Config{}, map[string]serve.Backend{"m": bk})
	rc, err := DialResilient(addr, ResilientConfig{
		Conns:            2,
		MaxAttempts:      5,
		RetryBackoff:     time.Millisecond,
		ReconnectBackoff: time.Millisecond,
		Client:           ClientConfig{Dialer: inj.Dialer(nil)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	y, std := make([]float64, 1), make([]float64, 1)
	query := func() error {
		_, qerr := rc.QueryInto("m", []float64{1, 2}, y, std, time.Time{})
		return qerr
	}
	if err := query(); err != nil {
		t.Fatalf("healthy query: %v", err)
	}

	inj.KillAll()
	// Every query must still resolve; transient ErrNoConn/ErrConnLost are
	// the only acceptable failures, and success must return within the
	// reconnect bound.
	deadline := time.Now().Add(3 * time.Second)
	for {
		err := query()
		if err == nil {
			break
		}
		if !errors.Is(err, ErrNoConn) && !errors.Is(err, ErrConnLost) {
			t.Fatalf("unexpected error during reconnect: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("no recovery within 3s of KillAll")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := rc.Stats(); st.Reconnects == 0 {
		t.Fatalf("recovered without reconnecting? %+v", st)
	}
}

// TestResilientRetriesOverload drives a 1-in-flight fleet hard enough to
// draw ErrRetry sheds and asserts the retry budget absorbs them.
func TestResilientRetriesOverload(t *testing.T) {
	bk := &testBackend{in: 2, out: 1, delay: 2 * time.Millisecond}
	_, _, addr := newTestServer(t,
		fleet.Config{MaxInFlight: 1, Coalescer: serve.Config{MaxBatch: 1}},
		Config{}, map[string]serve.Backend{"m": bk})
	rc, err := DialResilient(addr, ResilientConfig{
		Conns:        1,
		MaxAttempts:  8,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			y, std := make([]float64, 1), make([]float64, 1)
			var last error
			for j := 0; j < 16; j++ {
				if _, last = rc.QueryInto("m", []float64{1, 2}, y, std, time.Time{}); last != nil {
					break
				}
			}
			done <- last
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil && !errors.Is(err, ErrRetry) {
			t.Fatalf("worker failed: %v", err)
		}
	}
}

// TestResilientBreaker trips a tenant's breaker on a hard-failing tenant,
// asserts shedding, then registers the tenant and asserts the half-open
// probe closes the breaker again.
func TestResilientBreaker(t *testing.T) {
	bk := &testBackend{in: 2, out: 1}
	fl, _, addr := newTestServer(t, fleet.Config{}, Config{}, map[string]serve.Backend{"m": bk})
	rc, err := DialResilient(addr, ResilientConfig{
		Breaker: BreakerConfig{MinSamples: 4, TripRate: 0.5, Cooldown: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	y, std := make([]float64, 1), make([]float64, 1)
	query := func() error {
		_, qerr := rc.QueryInto("ghost", []float64{1, 2}, y, std, time.Time{})
		return qerr
	}
	// Unknown tenant is a definitive failure: the window fills and trips.
	var tripped bool
	for i := 0; i < 64; i++ {
		err := query()
		if errors.Is(err, ErrCircuitOpen) {
			tripped = true
			break
		}
		if !errors.Is(err, ErrUnknownTenant) {
			t.Fatalf("want unknown-tenant, got %v", err)
		}
	}
	if !tripped {
		t.Fatal("breaker never opened on a 100% failing tenant")
	}
	var coe *CircuitOpenError
	if err := query(); !errors.As(err, &coe) || coe.Tenant != "ghost" {
		t.Fatalf("open breaker returned %v, want CircuitOpenError{ghost}", err)
	}
	shed := rc.Stats().BreakerShed
	if shed == 0 {
		t.Fatal("breaker sheds not counted")
	}

	// Heal the tenant; after the cooldown one probe goes through,
	// succeeds, and closes the breaker.
	if err := fl.Register("ghost", &testBackend{in: 2, out: 1}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		if err := query(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never closed after tenant healed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Closed again: consecutive queries flow with no sheds.
	before := rc.Stats().BreakerShed
	for i := 0; i < 32; i++ {
		if err := query(); err != nil {
			t.Fatalf("query after breaker close: %v", err)
		}
	}
	if after := rc.Stats().BreakerShed; after != before {
		t.Fatalf("breaker still shedding after close: %d → %d", before, after)
	}
}

// TestResilientHedge arms hedging against a slow backend and asserts
// duplicates launch and queries still answer exactly once.
func TestResilientHedge(t *testing.T) {
	bk := &testBackend{in: 2, out: 1, delay: 5 * time.Millisecond}
	_, _, addr := newTestServer(t, fleet.Config{}, Config{}, map[string]serve.Backend{"m": bk})
	rc, err := DialResilient(addr, ResilientConfig{
		Conns:      2,
		HedgeDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	y, std := make([]float64, 1), make([]float64, 1)
	for i := 0; i < 32; i++ {
		res, err := rc.QueryInto("m", []float64{1, 2}, y, std, time.Time{})
		if err != nil {
			t.Fatalf("hedged query %d: %v", i, err)
		}
		if res.Y[0] != 3 {
			t.Fatalf("hedged query %d: got %v, want 3", i, res.Y[0])
		}
	}
	if st := rc.Stats(); st.Hedges == 0 {
		t.Fatalf("no hedges launched against a 5ms backend: %+v", st)
	}
}

// TestResilientDeadlineBound asserts the retry loop refuses to sleep past
// the caller's deadline: with every connection down, a short-deadline
// query returns promptly rather than burning the full backoff ladder.
func TestResilientDeadlineBound(t *testing.T) {
	bk := &testBackend{in: 2, out: 1}
	_, _, addr := newTestServer(t, fleet.Config{}, Config{}, map[string]serve.Backend{"m": bk})
	inj := chaos.New(5)
	rc, err := DialResilient(addr, ResilientConfig{
		Conns:            1,
		MaxAttempts:      10,
		RetryBackoff:     100 * time.Millisecond,
		ReconnectBackoff: time.Hour, // keep the slot down for the test
		Client:           ClientConfig{Dialer: inj.Dialer(nil)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	inj.KillAll()
	y, std := make([]float64, 1), make([]float64, 1)
	start := time.Now()
	_, qerr := rc.QueryInto("m", []float64{1, 2}, y, std, time.Now().Add(30*time.Millisecond))
	if qerr == nil {
		t.Fatal("query through a fully-dead pool succeeded")
	}
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Fatalf("deadline-bounded retry took %v, want well under the backoff ladder", el)
	}
}

// TestResilientSteadyStateAllocs mirrors TestWireSteadyStateAllocs for
// the hardened client: the healthy-path overhead is bookkeeping only.
func TestResilientSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime drops sync.Pool puts; alloc counts are meaningless")
	}
	bk := &testBackend{in: 2, out: 1}
	_, _, addr := newTestServer(t, fleet.Config{}, Config{}, map[string]serve.Backend{"m": bk})
	rc, err := DialResilient(addr, ResilientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	x := []float64{0.25, -0.5}
	y, std := make([]float64, 1), make([]float64, 1)
	for i := 0; i < 512; i++ {
		if _, err := rc.QueryInto("m", x, y, std, time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(2000, func() {
		if _, err := rc.QueryInto("m", x, y, std, time.Time{}); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 1.0 {
		t.Fatalf("steady-state resilient query allocates %.2f objects/op, want ≈ 0", avg)
	}
}
