package netserve

import (
	"fmt"
	"math/bits"
	"strings"
	"time"
)

// histSub is the linear sub-bucket count per power-of-two segment: 32
// sub-buckets give ≤ ~3.1% relative quantile error at any magnitude,
// HDR-histogram style, in a fixed 15KB footprint with O(1) recording —
// no per-sample storage, so a loadtest can record millions of latencies
// without perturbing the system it measures.
const (
	histSub     = 32
	histBuckets = (64 - 5) * histSub
)

// Hist is a log-linear (HDR-style) histogram of nanosecond latencies.
// Values bucket by power-of-two magnitude with histSub linear sub-buckets
// per segment. The zero value is ready to use. Not safe for concurrent
// writers: give each worker its own and Merge.
type Hist struct {
	counts [histBuckets]int64
	n      int64
	max    int64
}

// histIndex maps a value to its bucket: segment k−4 (k = bit length − 1)
// with linear sub-bucket (v >> (k−5)) & 31. Values < histSub land in
// segment 0 exactly, and the mapping is continuous at segment borders
// (for v in [32,64) it is v itself).
func histIndex(v int64) int {
	if v < histSub {
		return int(v)
	}
	k := bits.Len64(uint64(v)) - 1 // k ≥ 5
	return (k-4)*histSub + int((v>>(k-5))&(histSub-1))
}

// Record folds one latency (in nanoseconds; negatives clamp to 0) in.
func (h *Hist) Record(ns int64) {
	if ns < 0 {
		ns = 0
	}
	i := histIndex(ns)
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.counts[i]++
	h.n++
	if ns > h.max {
		h.max = ns
	}
}

// RecordSince is Record(now − t0) for a time.Time start.
func (h *Hist) RecordSince(t0 time.Time) { h.Record(time.Since(t0).Nanoseconds()) }

// Merge folds o's samples into h.
func (h *Hist) Merge(o *Hist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	if o.max > h.max {
		h.max = o.max
	}
}

// Count returns the number of recorded samples.
func (h *Hist) Count() int64 { return h.n }

// Max returns the largest recorded sample.
func (h *Hist) Max() time.Duration { return time.Duration(h.max) }

// bucketValue returns the representative (midpoint) value of bucket i.
func bucketValue(i int) int64 {
	seg := i / histSub
	sub := int64(i % histSub)
	if seg == 0 {
		return sub
	}
	step := int64(1) << (seg - 1)
	return (histSub+sub)<<(seg-1) + step/2
}

// Percentile returns the approximate p-quantile (p in [0,1]).
func (h *Hist) Percentile(p float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := int64(p * float64(h.n-1))
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			v := bucketValue(i)
			if int64(time.Duration(v)) > h.max {
				v = h.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

// String formats the standard percentile line.
func (h *Hist) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d", h.n)
	for _, pq := range []struct {
		label string
		p     float64
	}{{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}, {"p99.9", 0.999}} {
		fmt.Fprintf(&b, " %s=%v", pq.label, h.Percentile(pq.p).Round(time.Microsecond))
	}
	fmt.Fprintf(&b, " max=%v", h.Max().Round(time.Microsecond))
	return b.String()
}
