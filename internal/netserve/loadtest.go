package netserve

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/xrand"
)

// LoadConfig drives RunLoad, the closed-loop wire loadtest harness with
// an open-loop arrival schedule: requests are *scheduled* at the target
// rate regardless of completions (so a slowdown shows up as queueing
// latency, not a politely reduced offered load), while a bounded
// in-flight window keeps a stalled server from accumulating unbounded
// waiters — schedule slots that find the window full are counted as
// Overflowed instead of silently skipped, the coordinated-omission guard.
type LoadConfig struct {
	// Addr is the server address to dial.
	Addr string
	// Tenants are the tenant names to spread queries across (required).
	Tenants []string
	// In is the tenants' input dimensionality (required); inputs are
	// uniform in [-1, 1]^In.
	In int
	// QPS is the target aggregate arrival rate; 0 runs closed-loop at
	// maximum throughput (every worker fires as soon as its previous
	// query completes).
	QPS float64
	// Duration is how long to generate load (default 5s).
	Duration time.Duration
	// Conns is how many connections to spread workers over (default 4).
	Conns int
	// Workers bounds the in-flight window (default 64).
	Workers int
	// Deadline, when non-zero, stamps every request with now+Deadline so
	// the server's admission can shed late frames.
	Deadline time.Duration
	// Seed randomizes the inputs (default 1).
	Seed uint64
	// ClientConfig tunes the dialed connections.
	Client ClientConfig
}

func (c *LoadConfig) fill() error {
	if c.Addr == "" {
		return errors.New("netserve: LoadConfig.Addr is required")
	}
	if len(c.Tenants) == 0 {
		return errors.New("netserve: LoadConfig.Tenants is required")
	}
	if c.In <= 0 {
		return errors.New("netserve: LoadConfig.In is required")
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Conns <= 0 {
		c.Conns = 4
	}
	if c.Workers <= 0 {
		c.Workers = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

// LoadReport is RunLoad's outcome.
type LoadReport struct {
	// Sent counts requests issued; OK/Retried/Expired/Unknown/Errors
	// partition their outcomes (Sent = OK+Retried+Expired+Unknown+Errors).
	Sent, OK, Retried, Expired, Unknown, Errors int64
	// Overflowed counts schedule slots shed because the in-flight window
	// was full — offered load the harness could not physically issue.
	Overflowed int64
	// Elapsed is the wall time of the run; AchievedQPS is OK/Elapsed.
	Elapsed     time.Duration
	AchievedQPS float64
	// TargetQPS echoes the configured rate (0 = closed loop).
	TargetQPS float64
	// Latency is the HDR-style histogram of per-request latencies,
	// measured from each request's *scheduled* start (not its actual
	// send) so queueing delay is charged to the server, not hidden.
	Latency Hist
}

// String formats the report as a compact table.
func (r *LoadReport) String() string {
	var b strings.Builder
	mode := "closed-loop"
	if r.TargetQPS > 0 {
		mode = fmt.Sprintf("open-loop %.0f q/s target", r.TargetQPS)
	}
	fmt.Fprintf(&b, "loadtest (%s) over %v:\n", mode, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  sent=%d ok=%d retried=%d expired=%d unknown=%d errors=%d overflowed=%d\n",
		r.Sent, r.OK, r.Retried, r.Expired, r.Unknown, r.Errors, r.Overflowed)
	fmt.Fprintf(&b, "  achieved %.0f q/s\n", r.AchievedQPS)
	fmt.Fprintf(&b, "  latency %s\n", r.Latency.String())
	return b.String()
}

// RunLoad dials cfg.Conns connections and drives the configured load,
// returning the merged report. It is the harness behind the learnhpc
// loadtest subcommand and the wire benchmarks.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	clients := make([]*Client, cfg.Conns)
	for i := range clients {
		cl, err := Dial(cfg.Addr, cfg.Client)
		if err != nil {
			for _, c := range clients[:i] {
				c.Close()
			}
			return nil, err
		}
		clients[i] = cl
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	rep := &LoadReport{TargetQPS: cfg.QPS}
	var sent, ok64, retried, expired, unknown, errs, overflowed atomic.Int64
	var slot atomic.Int64 // open-loop schedule cursor
	hists := make([]Hist, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	stop := start.Add(cfg.Duration)
	interval := 0.0
	if cfg.QPS > 0 {
		interval = float64(time.Second) / cfg.QPS
	}
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := clients[w%len(clients)]
			h := &hists[w]
			rng := xrand.New(cfg.Seed + uint64(w)*0x9e37)
			x := make([]float64, cfg.In)
			y := make([]float64, 256)
			std := make([]float64, 256)
			for {
				var sched time.Time
				if interval > 0 {
					// Open loop: claim the next schedule slot. Slots that
					// have already slipped more than one full window by
					// the time a worker frees up are overflow: the window
					// cannot physically carry the offered rate.
					s := slot.Add(1) - 1
					sched = start.Add(time.Duration(float64(s) * interval))
					if sched.After(stop) {
						return
					}
					now := time.Now()
					if d := sched.Sub(now); d > 0 {
						time.Sleep(d)
					} else if now.Sub(sched) > time.Duration(float64(cfg.Workers)*interval)+10*time.Millisecond {
						overflowed.Add(1)
						continue
					}
				} else {
					sched = time.Now()
					if sched.After(stop) {
						return
					}
				}
				for i := range x {
					x[i] = rng.Range(-1, 1)
				}
				var deadline time.Time
				if cfg.Deadline > 0 {
					deadline = time.Now().Add(cfg.Deadline)
				}
				tenant := cfg.Tenants[int(sent.Add(1)-1)%len(cfg.Tenants)]
				_, err := cl.QueryInto(tenant, x, y, std, deadline)
				h.RecordSince(sched)
				switch {
				case err == nil:
					ok64.Add(1)
				case errors.Is(err, ErrRetry):
					retried.Add(1)
				case errors.Is(err, ErrExpired):
					expired.Add(1)
				case errors.Is(err, ErrUnknownTenant):
					unknown.Add(1)
				default:
					errs.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	rep.Sent = sent.Load()
	rep.OK = ok64.Load()
	rep.Retried = retried.Load()
	rep.Expired = expired.Load()
	rep.Unknown = unknown.Load()
	rep.Errors = errs.Load()
	rep.Overflowed = overflowed.Load()
	for i := range hists {
		rep.Latency.Merge(&hists[i])
	}
	if secs := rep.Elapsed.Seconds(); secs > 0 {
		rep.AchievedQPS = float64(rep.OK) / secs
	}
	if math.IsNaN(rep.AchievedQPS) {
		rep.AchievedQPS = 0
	}
	return rep, nil
}
