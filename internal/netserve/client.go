package netserve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Client-side status errors. Query maps every non-OK response status to
// one of these (sentinels, so the retry/shed paths allocate nothing) or,
// for StatusError, to a *RemoteError carrying the server's message.
var (
	// ErrRetry is a StatusRetry answer: the tenant's admission window was
	// full; back off and retry.
	ErrRetry = errors.New("netserve: tenant overloaded, retry")
	// ErrExpired is a StatusExpired answer: the request's deadline passed
	// before the server admitted it.
	ErrExpired = errors.New("netserve: deadline expired before admission")
	// ErrUnknownTenant is a StatusUnknownTenant answer.
	ErrUnknownTenant = errors.New("netserve: unknown tenant")
	// ErrClientClosed is returned once the client (or its connection) is
	// closed; in-flight queries fail with it too.
	ErrClientClosed = errors.New("netserve: client closed")
	// ErrConnLost is the transport-failure sentinel: the connection died
	// under in-flight queries (read error, peer reset, protocol
	// violation). The concrete error wraps it with the cause; match with
	// errors.Is. Unlike the status errors above, the request's fate is
	// unknown — a ResilientClient retries it on another connection.
	ErrConnLost = errors.New("netserve: connection lost")
	// errShortBuffer reports caller result buffers smaller than the
	// response row.
	errShortBuffer = errors.New("netserve: result buffer smaller than response row")
)

// RemoteError is a StatusError answer: the server-side serving error,
// transported as text.
type RemoteError struct {
	Msg string
}

func (e *RemoteError) Error() string { return "netserve: server error: " + e.Msg }

// WireResult is one wire query's answer.
type WireResult struct {
	// Y aliases the caller's y buffer (QueryInto) or is caller-owned
	// (Query), trimmed to the tenant's output dimensionality.
	Y []float64
	// Std is the per-output predictive uncertainty; nil for oracle
	// answers and for FlagNoStd requests.
	Std []float64
	// Src reports which path answered (surrogate or simulation).
	Src core.Source
	// Batch is reserved (always 0 on the client; batching is a
	// server-side property).
	Batch int
}

// ClientConfig tunes a Client. The zero value selects the defaults.
type ClientConfig struct {
	// MaxFrame caps accepted response-frame bodies (default 64KiB).
	MaxFrame int
	// ReadBuffer / WriteBuffer size the buffered reader/writer (default
	// 32KiB each).
	ReadBuffer, WriteBuffer int
	// Flags is OR-ed into every request (e.g. FlagNoStd).
	Flags byte
	// DialTimeout bounds Dial (default 5s).
	DialTimeout time.Duration
	// FlushSpins is how many scheduler yields the write loop donates after
	// draining the queue before flushing, letting concurrent callers land
	// their requests in the same syscall (default 2; negative disables).
	FlushSpins int
	// DeadlineGrace is how long past a request's deadline QueryInto keeps
	// waiting for the server's answer before giving up client-side with
	// ErrExpired (default 250ms). The server sheds expired requests with
	// an explicit status frame, so the grace normally never fires; it
	// exists so a stalled or blackholed connection cannot hold a
	// deadline-bearing caller forever. Negative disables the client-side
	// bound. Requests without a deadline wait indefinitely either way.
	DeadlineGrace time.Duration
	// Dialer overrides the transport dial — fault-injection harnesses
	// wrap connections here. Nil uses net.DialTimeout("tcp", ...).
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)
}

func (c *ClientConfig) fill() {
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.ReadBuffer <= 0 {
		c.ReadBuffer = 32 << 10
	}
	if c.WriteBuffer <= 0 {
		c.WriteBuffer = 32 << 10
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.FlushSpins == 0 {
		c.FlushSpins = 2
	}
	if c.FlushSpins < 0 {
		c.FlushSpins = 0
	}
	if c.DeadlineGrace == 0 {
		c.DeadlineGrace = 250 * time.Millisecond
	}
	if c.DeadlineGrace < 0 {
		c.DeadlineGrace = 0
	}
}

// pending is one in-flight request's pooled state: the encoded frame, the
// caller's result buffers and the completion signal.
type pending struct {
	buf  []byte        // encoded request frame
	done chan struct{} // cap 1, reused across leases
	y    []float64     // caller buffers; reader copies into them
	std  []float64
	res  WireResult
	err  error
	// Artifact-call results (see artCall): the generation answered, the
	// found/not-found bit, and the payload copied off the read buffer.
	artGen  uint64
	artOK   bool
	artData []byte
}

// Client is one multiplexed wire connection: any number of goroutines may
// Query concurrently, requests are matched to responses by id, and the
// write path coalesces concurrent requests into shared buffered flushes
// (the client-side mirror of the server's batch-aware writer). A
// steady-state caller reusing its buffers through QueryInto performs zero
// heap allocations per query.
type Client struct {
	cfg  ClientConfig
	c    net.Conn
	pool sync.Pool // *pending
	id   atomic.Uint64

	wq   chan *pending
	quit chan struct{}

	mu     sync.Mutex
	pend   map[uint64]*pending
	broken error // set once the reader dies; all queries fail with it

	loops sync.WaitGroup
}

// Dial connects to a netserve server at addr.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	cfg.fill()
	dial := cfg.Dialer
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	c, err := dial(addr, cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	return newClient(c, cfg), nil
}

// newClient wraps an established connection; cfg must already be filled.
func newClient(c net.Conn, cfg ClientConfig) *Client {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	cl := &Client{
		cfg:  cfg,
		c:    c,
		wq:   make(chan *pending, 256),
		quit: make(chan struct{}),
		pend: make(map[uint64]*pending),
	}
	cl.loops.Add(2)
	go cl.writeLoop()
	go cl.readLoop()
	return cl
}

// Close tears the connection down; in-flight queries fail with
// ErrClientClosed (or the read error that got there first). Idempotent.
func (cl *Client) Close() error {
	cl.mu.Lock()
	already := cl.broken != nil
	if !already {
		cl.broken = ErrClientClosed
		close(cl.quit)
	}
	cl.mu.Unlock()
	if !already {
		cl.c.Close()
	}
	cl.loops.Wait()
	return nil
}

// Query submits one row to the named tenant and blocks for its answer,
// returning caller-owned slices. deadline is propagated into the server's
// admission control; the zero time means none.
func (cl *Client) Query(tenant string, x []float64, deadline time.Time) (WireResult, error) {
	y := make([]float64, 256)
	std := make([]float64, 256)
	res, err := cl.QueryInto(tenant, x, y, std, deadline)
	return res, err
}

// QueryInto is the allocation-free form of Query: the answer lands in y
// (and std, when the surrogate produced one), which must hold the
// tenant's output dimensionality. A nil std discards any returned
// uncertainty row (set FlagNoStd in the config to stop the server
// sending it at all). Safe for concurrent use; each concurrent caller
// must pass its own buffers.
func (cl *Client) QueryInto(tenant string, x, y, std []float64, deadline time.Time) (WireResult, error) {
	p, _ := cl.pool.Get().(*pending)
	if p == nil {
		p = &pending{done: make(chan struct{}, 1)}
	}
	p.y, p.std = y, std
	p.err = nil
	p.res = WireResult{}
	var dl int64
	if !deadline.IsZero() {
		dl = deadline.UnixNano()
	}
	id := cl.id.Add(1)
	var err error
	p.buf, err = appendRequest(p.buf[:0], tenant, id, dl, cl.cfg.Flags, x)
	if err != nil {
		cl.pool.Put(p)
		return WireResult{}, err
	}

	cl.mu.Lock()
	if cl.broken != nil {
		err = cl.broken
		cl.mu.Unlock()
		cl.pool.Put(p)
		return WireResult{}, err
	}
	cl.pend[id] = p
	cl.mu.Unlock()

	select {
	case cl.wq <- p:
	case <-cl.quit:
		// The writer is gone; withdraw unless the reader's fail-all
		// already claimed this entry (in which case its completion
		// signal is en route and must be consumed).
		if cl.withdraw(p, id) {
			p.y, p.std = nil, nil
			cl.pool.Put(p)
			return WireResult{}, ErrClientClosed
		}
	}
	if dl != 0 && cl.cfg.DeadlineGrace > 0 {
		wait := time.Until(deadline) + cl.cfg.DeadlineGrace
		if wait < cl.cfg.DeadlineGrace {
			wait = cl.cfg.DeadlineGrace
		}
		tm := time.NewTimer(wait)
		select {
		case <-p.done:
			tm.Stop()
		case <-tm.C:
			// The connection stalled past deadline+grace. Withdraw if the
			// reader has not claimed the entry; the writer may still hold
			// p.buf, so the pending is abandoned to the GC, never pooled.
			if cl.withdraw(p, id) {
				return WireResult{}, ErrExpired
			}
			<-p.done
		}
	} else {
		<-p.done
	}
	res, rerr := p.res, p.err
	p.y, p.std = nil, nil
	cl.pool.Put(p)
	return res, rerr
}

// withdraw removes p from the pending map if the reader has not already
// claimed it; true means the caller owns p again.
func (cl *Client) withdraw(p *pending, id uint64) bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if q, ok := cl.pend[id]; ok && q == p {
		delete(cl.pend, id)
		return true
	}
	return false
}

// writeLoop writes queued request frames, draining greedily and flushing
// once per drained burst — concurrent callers' requests share syscalls.
func (cl *Client) writeLoop() {
	defer cl.loops.Done()
	bw := bufio.NewWriterSize(cl.c, cl.cfg.WriteBuffer)
	var werr error
	write := func(p *pending) {
		if werr == nil {
			_, werr = bw.Write(p.buf)
			if werr != nil {
				cl.c.Close() // wake the reader, which fails all pending
			}
		}
		// On error the pending entry stays in the map; the reader's
		// fail-all completes it.
	}
	for {
		select {
		case <-cl.quit:
			return
		case p := <-cl.wq:
			write(p)
			// Drain greedily, then donate a few scheduler yields before
			// flushing: concurrent callers that just received their
			// previous answers get to enqueue the next round, so one
			// write syscall carries the whole burst.
			spins := cl.cfg.FlushSpins
			for {
				select {
				case p2 := <-cl.wq:
					write(p2)
					continue
				default:
				}
				if spins > 0 {
					spins--
					runtime.Gosched()
					continue
				}
				break
			}
			if werr == nil {
				if werr = bw.Flush(); werr != nil {
					cl.c.Close()
				}
			}
		}
	}
}

// readLoop decodes response frames, completes their waiters, and on any
// read/protocol error fails every pending and future query.
func (cl *Client) readLoop() {
	defer cl.loops.Done()
	br := bufio.NewReaderSize(cl.c, cl.cfg.ReadBuffer)
	buf := make([]byte, 0, 4096)
	var rerr error
	for {
		buf, rerr = readFrame(br, buf, cl.cfg.MaxFrame)
		if rerr != nil {
			break
		}
		var id uint64
		var resp response
		var ad artData
		isArt := len(buf) >= 2 && buf[1] == frameArtData
		if isArt {
			var err error
			if ad, err = parseArtData(buf); err != nil {
				rerr = err
				break
			}
			id = ad.id
		} else {
			var err error
			if resp, err = parseResponse(buf); err != nil {
				rerr = err
				break
			}
			id = resp.id
		}
		cl.mu.Lock()
		p := cl.pend[id]
		if p != nil {
			delete(cl.pend, id)
		}
		cl.mu.Unlock()
		if p == nil {
			// A response nobody is waiting for: the waiter withdrew
			// (client shutdown race) or the server is confused. Either
			// way the stream framing is still intact; drop it.
			continue
		}
		if isArt {
			completeArt(p, ad)
		} else {
			complete(p, resp)
		}
		p.done <- struct{}{}
	}
	// Fail everything pending and mark the client broken for future
	// queries. Close() may have beaten us to the broken flag.
	cl.mu.Lock()
	if cl.broken == nil {
		cl.broken = fmt.Errorf("%w: %v", ErrConnLost, rerr)
		close(cl.quit)
		cl.c.Close()
	}
	failErr := cl.broken
	var ps []*pending
	for id, p := range cl.pend {
		delete(cl.pend, id)
		ps = append(ps, p)
	}
	cl.mu.Unlock()
	for _, p := range ps {
		p.err = failErr
		p.done <- struct{}{}
	}
}

// complete fills p from a decoded response.
func complete(p *pending, resp response) {
	switch resp.status {
	case StatusOK:
		if resp.ny > len(p.y) || (resp.nstd > 0 && p.std != nil && resp.nstd > len(p.std)) {
			p.err = errShortBuffer
			return
		}
		p.res.Y = decodeFloats(p.y[:0], resp.y)
		if resp.nstd > 0 && p.std != nil {
			p.res.Std = decodeFloats(p.std[:0], resp.std)
		}
		p.res.Src = core.Source(resp.src)
	case StatusRetry:
		p.err = ErrRetry
	case StatusExpired:
		p.err = ErrExpired
	case StatusUnknownTenant:
		p.err = ErrUnknownTenant
	case StatusError:
		p.err = &RemoteError{Msg: string(resp.msg)}
	default:
		p.err = fmt.Errorf("netserve: unknown response status %d", resp.status)
	}
}
