package netserve

import (
	"errors"
	"net"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/fleet"
	"repro/internal/serve"
)

func listenLoopback() (net.Listener, error) { return net.Listen("tcp", "127.0.0.1:0") }

func dialLoopback(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }

// TestWriteStallWatchdog wedges the server's write path with an injected
// stall and asserts the WriteTimeout watchdog fires: the stall is
// counted, the connection dies, and the in-flight query resolves instead
// of hanging.
func TestWriteStallWatchdog(t *testing.T) {
	inj := chaos.New(1)
	bk := &testBackend{in: 2, out: 1}
	fl := fleet.New(fleet.Config{})
	if err := fl.Register("m", bk); err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	srv := NewServer(Config{Fleet: fl, WriteTimeout: 100 * time.Millisecond})
	ln, err := listenLoopback()
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(inj.Listener(ln))
	defer srv.Close()

	cl, err := Dial(ln.Addr().String(), ClientConfig{DeadlineGrace: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	y, std := make([]float64, 1), make([]float64, 1)
	if _, err := cl.QueryInto("m", []float64{1, 2}, y, std, time.Time{}); err != nil {
		t.Fatalf("healthy query: %v", err)
	}

	inj.SetStalled(true)
	done := make(chan error, 1)
	go func() {
		_, qerr := cl.QueryInto("m", []float64{1, 2}, y, std, time.Now().Add(time.Second))
		done <- qerr
	}()
	deadline := time.Now().Add(3 * time.Second)
	for srv.Stats().WriteStalls == 0 {
		if time.Now().After(deadline) {
			t.Fatal("write stall never detected")
		}
		time.Sleep(5 * time.Millisecond)
	}
	inj.SetStalled(false)
	select {
	case qerr := <-done:
		if qerr == nil {
			t.Fatal("query through a watchdog-killed connection succeeded")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("in-flight query hung past the watchdog kill")
	}
}

// TestReadTimeoutReapsSilentConn asserts an opted-in ReadTimeout tears
// down a connection that dials and then never speaks.
func TestReadTimeoutReapsSilentConn(t *testing.T) {
	bk := &testBackend{in: 2, out: 1}
	_, srv, addr := newTestServer(t, fleet.Config{},
		Config{ReadTimeout: 50 * time.Millisecond}, map[string]serve.Backend{"m": bk})
	c, err := dialLoopback(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deadline := time.Now().Add(3 * time.Second)
	for srv.Stats().Open != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("silent connection still open after read timeout; open=%d", srv.Stats().Open)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReadyzDrainOrdering asserts the drain contract: BeginDrain flips
// /readyz to 503 while the wire plane still answers, and only Close stops
// service.
func TestReadyzDrainOrdering(t *testing.T) {
	bk := &testBackend{in: 2, out: 1}
	fl, srv, addr := newTestServer(t, fleet.Config{}, Config{}, map[string]serve.Backend{"m": bk})
	cl, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	h := &Health{Fleet: fl, Server: srv}

	probe := func() (int, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
		return rec.Code, rec.Body.String()
	}
	if code, _ := probe(); code != 200 {
		t.Fatalf("ready before drain: got %d", code)
	}

	srv.BeginDrain()
	code, body := probe()
	if code != 503 || !strings.Contains(body, "draining") {
		t.Fatalf("after BeginDrain: got %d %q, want 503 draining", code, body)
	}
	// The wire plane must still answer: not-ready precedes, never
	// replaces, the drain of in-flight work.
	y, std := make([]float64, 1), make([]float64, 1)
	for i := 0; i < 32; i++ {
		if _, err := cl.QueryInto("m", []float64{1, 2}, y, std, time.Time{}); err != nil {
			t.Fatalf("query during drain window: %v", err)
		}
	}
	srv.Close()
	if code, _ := probe(); code != 503 {
		t.Fatalf("after Close: got %d, want 503", code)
	}
}

// waitGoroutines polls until the goroutine count returns to at most base
// plus slack.
func waitGoroutines(t *testing.T, base, slack int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: base %d, now %d\n%s",
				base, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
		runtime.GC()
	}
}

// TestCloseUnderLoadLeaksNothing closes clients and server while queries
// are in flight and asserts every goroutine exits and every pooled buffer
// is recycled.
func TestCloseUnderLoadLeaksNothing(t *testing.T) {
	base := runtime.NumGoroutine()
	bk := &testBackend{in: 2, out: 1, delay: 200 * time.Microsecond}
	fl := fleet.New(fleet.Config{})
	if err := fl.Register("m", bk); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(Config{Fleet: fl})
	ln, err := listenLoopback()
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()

	plain, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := DialResilient(addr, ResilientConfig{Conns: 2})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			y, std := make([]float64, 1), make([]float64, 1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				var qerr error
				if i%2 == 0 {
					_, qerr = plain.QueryInto("m", []float64{1, 2}, y, std, time.Time{})
				} else {
					_, qerr = res.QueryInto("m", []float64{1, 2}, y, std, time.Time{})
				}
				if qerr != nil {
					// Shutdown raced the query: the only acceptable
					// failures are the typed teardown errors.
					if !errors.Is(qerr, ErrClientClosed) && !errors.Is(qerr, ErrConnLost) &&
						!errors.Is(qerr, ErrNoConn) {
						t.Errorf("query failed with untyped error: %v", qerr)
					}
					return
				}
			}
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // let load establish
	plain.Close()
	res.Close()
	close(stop)
	wg.Wait()
	srv.Close()
	fl.Close()

	if reqs, bursts := srv.poolBalance(); reqs != 0 || bursts != 0 {
		t.Fatalf("pooled state leaked: %d request contexts, %d bursts outstanding", reqs, bursts)
	}
	waitGoroutines(t, base, 2)
}
