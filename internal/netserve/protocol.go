// Package netserve puts a wire on the fleet: a TCP server and client
// speaking a length-prefixed binary protocol whose server-side read loop
// decodes straight into pooled row buffers and feeds each request to
// fleet.QueryCtx — so the per-tenant coalescers gather micro-batches
// *across connections*, not just across goroutines of one process.
//
// The protocol is deliberately minimal: one frame type per direction,
// fixed headers, big-endian integers, raw IEEE-754 float64 rows. A frame
// is a uint32 length prefix followed by the body:
//
//	request  body: ver(1) type(1) flags(1) tlen(1) id(8) deadline(8)
//	               xlen(2) tenant(tlen) x(8·xlen)
//	response body: ver(1) type(1) status(1) src(1) id(8)
//	               ylen(2) stdlen(2) y(8·ylen) std(8·stdlen)
//
// deadline is an absolute unix-nanosecond wall-clock instant (0 = none)
// carried from the caller into the server's admission control: a frame
// that spent its budget queueing is shed with StatusExpired, and an
// admission-window shed answers StatusRetry — a request is never silently
// dropped. For a non-OK status the response carries no rows; StatusError
// reuses the ylen field as the byte length of a UTF-8 message payload.
//
// The perf contract of the hot path is zero steady-state heap
// allocations on the server side: frame scratch, row buffers and
// response staging are pooled per request context, tenant names are
// interned per connection, and responses completed by one coalesced
// batch share a writev-style buffered flush.
package netserve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Protocol constants.
const (
	// ProtoVersion is the wire format version; both frame types carry it
	// as their first body byte.
	ProtoVersion = 1

	// Frame types.
	frameQuery  = 1 // client → server: one input row for one tenant
	frameResult = 2 // server → client: the row's answer or a status

	// reqHeaderLen and respHeaderLen are the fixed body-header sizes
	// (excluding the uint32 length prefix and the variable payload).
	reqHeaderLen  = 22
	respHeaderLen = 16

	// lenPrefix is the frame length prefix size.
	lenPrefix = 4
)

// Request flag bits.
const (
	// FlagNoStd asks the server not to return the per-output uncertainty
	// row even when the surrogate produced one (halves response payload
	// for callers that only want point predictions).
	FlagNoStd = 1 << 0

	flagsKnown = FlagNoStd
)

// Response status codes.
const (
	// StatusOK carries the answer rows.
	StatusOK = 0
	// StatusRetry reports an admission shed (fleet.ErrOverloaded): the
	// tenant's bounded in-flight window was full and the caller should
	// back off and retry.
	StatusRetry = 1
	// StatusExpired reports a deadline shed: the request's deadline had
	// already passed when the server was ready to admit it.
	StatusExpired = 2
	// StatusUnknownTenant reports that no registered tenant matched the
	// request's tenant name.
	StatusUnknownTenant = 3
	// StatusError carries a backend/serving error; the response payload
	// is the error message (ylen = message byte length).
	StatusError = 4
)

// Frame-size limits. MaxTenant is a hard protocol bound (tlen is one
// byte); the others are defaults the Config can override.
const (
	MaxTenant       = 255
	DefaultMaxFrame = 64 << 10
	maxRowVals      = 1 << 14 // per-frame float64 cap within any MaxFrame
)

// Codec errors. Any of them on a live connection means the stream can no
// longer be trusted and the connection is torn down.
var (
	errBadVersion = errors.New("netserve: unknown protocol version")
	errBadType    = errors.New("netserve: unexpected frame type")
	errBadFlags   = errors.New("netserve: unknown flag bits set")
	errTruncated  = errors.New("netserve: truncated frame body")
	errTrailing   = errors.New("netserve: trailing bytes after frame payload")
	errOversized  = errors.New("netserve: frame exceeds size limit")
	errEmptyFrame = errors.New("netserve: zero-length frame")
	errBadGeom    = errors.New("netserve: empty or oversized tenant/row field")
)

// request is a decoded query frame. tenant and x alias the frame buffer —
// valid only until the next read on the connection.
type request struct {
	id       uint64
	deadline int64 // unix nanos, 0 = none
	flags    byte
	tenant   []byte
	x        []byte // raw big-endian float64s, 8·nx bytes
	nx       int
}

// parseRequest decodes a query-frame body. It never allocates and never
// panics on adversarial input: every length is validated against the
// actual body size before any slicing.
func parseRequest(body []byte) (request, error) {
	var r request
	if len(body) < reqHeaderLen {
		return r, errTruncated
	}
	if body[0] != ProtoVersion {
		return r, errBadVersion
	}
	if body[1] != frameQuery {
		return r, errBadType
	}
	if body[2]&^byte(flagsKnown) != 0 {
		return r, errBadFlags
	}
	tlen := int(body[3])
	r.flags = body[2]
	r.id = binary.BigEndian.Uint64(body[4:12])
	r.deadline = int64(binary.BigEndian.Uint64(body[12:20]))
	r.nx = int(binary.BigEndian.Uint16(body[20:22]))
	if tlen == 0 || r.nx == 0 || r.nx > maxRowVals {
		return r, errBadGeom
	}
	want := reqHeaderLen + tlen + 8*r.nx
	if len(body) < want {
		return r, errTruncated
	}
	if len(body) > want {
		return r, errTrailing
	}
	r.tenant = body[reqHeaderLen : reqHeaderLen+tlen]
	r.x = body[reqHeaderLen+tlen:]
	return r, nil
}

// response is a decoded result frame. y, std and msg alias the frame
// buffer — valid only until the next read on the connection.
type response struct {
	id     uint64
	status byte
	src    byte
	y      []byte // raw big-endian float64s, 8·ny bytes
	std    []byte
	msg    []byte // StatusError message payload
	ny     int
	nstd   int
}

// parseResponse decodes a result-frame body with the same no-panic,
// no-alloc guarantees as parseRequest.
func parseResponse(body []byte) (response, error) {
	var r response
	if len(body) < respHeaderLen {
		return r, errTruncated
	}
	if body[0] != ProtoVersion {
		return r, errBadVersion
	}
	if body[1] != frameResult {
		return r, errBadType
	}
	r.status = body[2]
	if r.status > StatusError {
		// Only defined statuses are wire-legal; a stray status byte means
		// corruption, and the stream can no longer be trusted.
		return r, errBadGeom
	}
	r.src = body[3]
	r.id = binary.BigEndian.Uint64(body[4:12])
	r.ny = int(binary.BigEndian.Uint16(body[12:14]))
	r.nstd = int(binary.BigEndian.Uint16(body[14:16]))
	if r.status == StatusError {
		// The ylen field is the message byte length; no rows follow.
		want := respHeaderLen + r.ny
		if r.nstd != 0 {
			return r, errTrailing
		}
		if len(body) < want {
			return r, errTruncated
		}
		if len(body) > want {
			return r, errTrailing
		}
		r.msg = body[respHeaderLen:]
		r.ny = 0
		return r, nil
	}
	if r.status != StatusOK && (r.ny != 0 || r.nstd != 0) {
		return r, errTrailing
	}
	if r.ny > maxRowVals || r.nstd > maxRowVals {
		return r, errBadGeom
	}
	want := respHeaderLen + 8*r.ny + 8*r.nstd
	if len(body) < want {
		return r, errTruncated
	}
	if len(body) > want {
		return r, errTrailing
	}
	r.y = body[respHeaderLen : respHeaderLen+8*r.ny]
	r.std = body[respHeaderLen+8*r.ny:]
	return r, nil
}

// appendRequest encodes a query frame (length prefix included) onto dst.
func appendRequest(dst []byte, tenant string, id uint64, deadline int64, flags byte, x []float64) ([]byte, error) {
	if len(tenant) > MaxTenant {
		return dst, fmt.Errorf("netserve: tenant name %d bytes, protocol caps at %d", len(tenant), MaxTenant)
	}
	if len(x) > maxRowVals {
		return dst, fmt.Errorf("netserve: row has %d values, protocol caps at %d", len(x), maxRowVals)
	}
	body := reqHeaderLen + len(tenant) + 8*len(x)
	dst = binary.BigEndian.AppendUint32(dst, uint32(body))
	dst = append(dst, ProtoVersion, frameQuery, flags, byte(len(tenant)))
	dst = binary.BigEndian.AppendUint64(dst, id)
	dst = binary.BigEndian.AppendUint64(dst, uint64(deadline))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(x)))
	dst = append(dst, tenant...)
	return appendFloats(dst, x), nil
}

// appendResponse encodes a result frame (length prefix included) onto
// dst. For StatusError, msg is the payload and y/std must be nil; for the
// other non-OK statuses all three must be empty.
func appendResponse(dst []byte, id uint64, status, src byte, y, std []float64, msg string) []byte {
	ny, nstd := len(y), len(std)
	if status == StatusError {
		ny, nstd = len(msg), 0
	}
	body := respHeaderLen + 8*len(y) + 8*len(std) + len(msg)
	dst = binary.BigEndian.AppendUint32(dst, uint32(body))
	dst = append(dst, ProtoVersion, frameResult, status, src)
	dst = binary.BigEndian.AppendUint64(dst, id)
	dst = binary.BigEndian.AppendUint16(dst, uint16(ny))
	dst = binary.BigEndian.AppendUint16(dst, uint16(nstd))
	dst = appendFloats(dst, y)
	dst = appendFloats(dst, std)
	return append(dst, msg...)
}

// appendFloats encodes xs as big-endian IEEE-754 bit patterns.
func appendFloats(dst []byte, xs []float64) []byte {
	for _, v := range xs {
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// decodeFloats appends the float64s packed in raw (8 bytes each, as
// validated by the frame parsers) onto dst, reusing its capacity.
func decodeFloats(dst []float64, raw []byte) []float64 {
	for ; len(raw) >= 8; raw = raw[8:] {
		dst = append(dst, math.Float64frombits(binary.BigEndian.Uint64(raw)))
	}
	return dst
}

// readFrame reads one length-prefixed frame body into buf (grown as
// needed) and returns the body slice. A frame longer than max kills the
// read with errOversized before any payload is consumed, bounding what a
// malicious or corrupt peer can make the server buffer.
func readFrame(r *bufio.Reader, buf []byte, max int) ([]byte, error) {
	// Peek+Discard instead of io.ReadFull into a local array: the array
	// would escape through the io.Reader interface and cost one heap
	// allocation per frame.
	hdr, err := r.Peek(lenPrefix)
	if err != nil {
		if len(hdr) > 0 && err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return buf, err
	}
	n := int(binary.BigEndian.Uint32(hdr))
	r.Discard(lenPrefix)
	if n == 0 {
		return buf, errEmptyFrame
	}
	if n > max {
		return buf, errOversized
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return buf, err
	}
	return buf, nil
}
