package netserve

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// soakSur is a constant-mean surrogate with zero claimed uncertainty, so
// every trained-shard query serves from the surrogate and drift is purely
// a property of ingested residuals.
type soakSur struct {
	mean    []float64
	trained bool
}

func (m *soakSur) Train(x, y *tensor.Matrix) error {
	out := make([]float64, y.Cols)
	for i := 0; i < y.Rows; i++ {
		for j, v := range y.Row(i) {
			out[j] += v
		}
	}
	for j := range out {
		out[j] /= float64(y.Rows)
	}
	m.mean, m.trained = out, true
	return nil
}
func (m *soakSur) Trained() bool                 { return m.trained }
func (m *soakSur) Predict(x []float64) []float64 { return append([]float64(nil), m.mean...) }
func (m *soakSur) PredictWithUQ(x []float64) (mean, std []float64) {
	return m.Predict(x), make([]float64, len(m.mean))
}

// TestWireSoakChurnAndDrift is the long-haul invariant test: tenants
// register and deregister mid-traffic, one tenant's sharded backend has
// drift injected into it while wire queries flow, and the server is
// finally Closed under load. The contract: every issued query resolves
// (no lost responses), per-tenant stats stay coherent (no torn counters),
// drift becomes visible through the wire-facing stats, and Close drains
// cleanly.
func TestWireSoakChurnAndDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}

	// Drifting tenant: a one-shard wrapper trained on y = 1, whose
	// residual baseline will be shattered by ingesting y = 50.
	oracle := core.OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		return []float64{1}, nil
	}}
	drifter := core.NewShardedWrapper(oracle, func() core.Surrogate { return &soakSur{} },
		core.ShardedConfig{
			Router:          core.HashRouter{Shards: 1},
			MinTrainSamples: 4,
			RetrainEvery:    0,
			UQThreshold:     1, // zero claimed std → always serve surrogate
			DriftFactor:     2,
			DriftAlpha:      0.5,
		})
	seed := tensor.NewMatrix(8, 2)
	rng := xrand.New(7)
	for i := 0; i < 8; i++ {
		row := seed.Row(i)
		row[0], row[1] = rng.Range(-1, 1), rng.Range(-1, 1)
	}
	if err := drifter.Pretrain(seed); err != nil {
		t.Fatal(err)
	}
	if err := drifter.Wait(); err != nil {
		t.Fatal(err)
	}

	fl := fleet.New(fleet.Config{})
	if err := fl.Register("drifty", drifter); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := fl.Register(fmt.Sprintf("stable%d", i), &testBackend{in: 2, out: 1}); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServer(Config{Fleet: fl})
	addr := mustListen(t, srv)
	defer fl.Close()

	const runFor = 1200 * time.Millisecond
	stop := make(chan struct{})
	var churns atomic.Int64

	// Churner: register/deregister throwaway tenants the whole run.
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("churn%d", i%4)
			if err := fl.Register(name, &testBackend{in: 2, out: 1}); err != nil {
				t.Errorf("churn register: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
			if err := fl.Deregister(name); err != nil {
				t.Errorf("churn deregister: %v", err)
				return
			}
			churns.Add(1)
		}
	}()

	// Drift injector: after a clean-baseline warmup, pour in shifted data.
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		ingest := func(val float64) {
			xs := tensor.NewMatrix(8, 2)
			ys := tensor.NewMatrix(8, 1)
			for i := 0; i < 8; i++ {
				row := xs.Row(i)
				row[0], row[1] = rng.Range(-1, 1), rng.Range(-1, 1)
				ys.Row(i)[0] = val
			}
			if err := drifter.Ingest(xs, ys); err != nil {
				t.Errorf("ingest: %v", err)
			}
		}
		for i := 0; i < 6; i++ { // baseline: data the model explains
			ingest(1)
			time.Sleep(5 * time.Millisecond)
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			ingest(50) // residual 49 vs baseline ~0 → drift
			time.Sleep(10 * time.Millisecond)
		}
	}()

	// Traffic: workers across several connections query stable tenants,
	// the drifter, and the churning names. Every query must resolve with
	// a well-defined outcome.
	const conns = 4
	const workersPerConn = 4
	names := []string{"stable0", "stable1", "stable2", "drifty", "churn0", "churn2"}
	var sent, ok64, unknown, failed atomic.Int64
	var trafficWG sync.WaitGroup
	clients := make([]*Client, conns)
	for c := range clients {
		cl, err := Dial(addr, ClientConfig{})
		if err != nil {
			t.Fatal(err)
		}
		clients[c] = cl
		defer cl.Close()
	}
	deadlineT := time.Now().Add(runFor)
	for c := 0; c < conns; c++ {
		for w := 0; w < workersPerConn; w++ {
			trafficWG.Add(1)
			go func(cl *Client, seed uint64) {
				defer trafficWG.Done()
				rng := xrand.New(seed)
				y := make([]float64, 1)
				std := make([]float64, 1)
				x := make([]float64, 2)
				for i := 0; time.Now().Before(deadlineT); i++ {
					x[0], x[1] = rng.Range(-1, 1), rng.Range(-1, 1)
					name := names[i%len(names)]
					sent.Add(1)
					res, err := cl.QueryInto(name, x, y, std, time.Time{})
					switch {
					case err == nil:
						ok64.Add(1)
						if name != "drifty" {
							want := x[0] + x[1]
							if math.Abs(res.Y[0]-want) > 1e-12 {
								t.Errorf("tenant %s answered %v for sum %v", name, res.Y[0], want)
								return
							}
						}
					case errors.Is(err, ErrUnknownTenant):
						unknown.Add(1) // a churned name between register windows
					case errors.Is(err, ErrRetry):
						// admission shed: resolved, explicitly
					case errors.Is(err, ErrClientClosed):
						failed.Add(1) // only legitimate once Close begins
					default:
						t.Errorf("query %s: unexpected %v", name, err)
						return
					}
				}
			}(clients[c], uint64(c*workersPerConn+w+1))
		}
	}

	trafficWG.Wait()
	close(stop)
	churnWG.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d queries failed with a closed client before Close", failed.Load())
	}
	if ok64.Load() == 0 {
		t.Fatal("no query succeeded")
	}
	if churns.Load() < 10 {
		t.Fatalf("only %d churn cycles in %v", churns.Load(), runFor)
	}
	if unknown.Load() == 0 {
		t.Log("note: churn windows never raced a query (timing-dependent)")
	}

	// No torn stats: the fleet's aggregate matches what the server saw.
	var fleetTotal, fleetInFlight int64
	for _, st := range fl.Stats() {
		fleetTotal += st.Queries
		fleetInFlight += st.InFlight
		if st.Queries < 0 || st.Rejected < 0 || st.Expired < 0 {
			t.Fatalf("negative counters in %+v", st)
		}
	}
	if fleetInFlight != 0 {
		t.Fatalf("fleet reports %d in-flight after traffic stopped", fleetInFlight)
	}
	// Churned tenants take their counters with them on Deregister, so the
	// remaining fleet total is a lower bound ending at the server's count.
	if srvReq := srv.Stats().Requests; fleetTotal > srvReq {
		t.Fatalf("fleet total %d exceeds server requests %d", fleetTotal, srvReq)
	}

	// Drift made it through to the wire-facing stats.
	st, err := fl.TenantStats("drifty")
	if err != nil {
		t.Fatal(err)
	}
	if st.DriftedShards == 0 || st.MaxDriftRatio <= 2 {
		t.Fatalf("drift not visible in tenant stats: %+v", st)
	}

	// Clean drain under (residual) load.
	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not drain")
	}
	t.Logf("soak: %d sent, %d ok, %d unknown-tenant, %d churn cycles, drift ratio %.1f",
		sent.Load(), ok64.Load(), unknown.Load(), churns.Load(), st.MaxDriftRatio)
}

// mustListen starts srv on loopback and returns its address.
func mustListen(t *testing.T, srv *Server) string {
	t.Helper()
	ln, err := newLoopback()
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	return ln.Addr().String()
}

// newLoopback opens a 127.0.0.1 TCP listener on an ephemeral port.
func newLoopback() (net.Listener, error) { return net.Listen("tcp", "127.0.0.1:0") }
