package netserve

import (
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/fleet"
)

// Health is the HTTP health/readiness/stats face of a served fleet, the
// surface an orchestrator probes and scrapes:
//
//	GET /healthz — liveness: 200 while the process runs.
//	GET /readyz  — readiness: 200 once at least one tenant is registered
//	               (and Ready, if set, agrees); 503 otherwise.
//	GET /statsz  — JSON per-tenant serving stats straight from
//	               Fleet.Stats() (QPS, mean batch, p50/p99, staleness,
//	               drifted shards, max drift ratio, quantized-serving
//	               fallbacks) plus the wire server's connection/frame
//	               counters under "_server".
//
// Durations are reported in nanoseconds (Go's time.Duration JSON form).
// Health is an http.Handler; mount it on any mux or serve it directly.
type Health struct {
	// Fleet supplies the per-tenant stats (required).
	Fleet *fleet.Fleet
	// Server, when set, adds wire counters to /statsz.
	Server *Server
	// Ready, when set, gates /readyz beyond the has-tenants check (e.g.
	// "every tenant's staleness below a bound").
	Ready func() bool
}

// tenantHealth is the JSON shape of one tenant's /statsz entry.
type tenantHealth struct {
	Queries       int64   `json:"queries"`
	Rejected      int64   `json:"rejected"`
	Expired       int64   `json:"expired"`
	Panics        int64   `json:"panics"`
	InFlight      int64   `json:"in_flight"`
	QPS           float64 `json:"qps"`
	MeanBatch     float64 `json:"mean_batch"`
	P50Ns         int64   `json:"p50_ns"`
	P99Ns         int64   `json:"p99_ns"`
	Staleness     int     `json:"staleness"`
	DriftedShards int     `json:"drifted_shards"`
	MaxDriftRatio float64 `json:"max_drift_ratio"`
	QuantQueries  uint64  `json:"quant_queries"`
	QuantFallback uint64  `json:"quant_fallbacks"`
	BrownoutLevel int     `json:"brownout_level"`
	BrownoutDowns int64   `json:"brownout_downs"`
	BrownoutUps   int64   `json:"brownout_ups"`
	RegGeneration uint64  `json:"registry_generation"`
	RegPublishes  int64   `json:"registry_publishes"`
	RegRollbacks  int64   `json:"registry_rollbacks"`
	RegQuarantine int64   `json:"registry_quarantines"`
	PlaceSource   string  `json:"placement_source,omitempty"`
	PlaceGen      uint64  `json:"placement_generation,omitempty"`
	PlaceWarm     int     `json:"placement_warm_shards,omitempty"`
}

// statsz is the JSON shape of /statsz.
type statsz struct {
	Time    time.Time               `json:"time"`
	Tenants map[string]tenantHealth `json:"tenants"`
	Server  *Stats                  `json:"_server,omitempty"`
}

// ServeHTTP implements http.Handler.
func (h *Health) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/healthz":
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	case "/readyz":
		if h.Server != nil && h.Server.Draining() {
			// Draining flips not-ready before listeners close, so the
			// balancer routes around this replica while in-flight work
			// still completes.
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		ready := h.Fleet != nil && len(h.Fleet.Tenants()) > 0
		if ready && h.Ready != nil {
			ready = h.Ready()
		}
		if !ready {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ready\n"))
	case "/statsz":
		out := statsz{Time: time.Now(), Tenants: map[string]tenantHealth{}}
		if h.Fleet != nil {
			for name, st := range h.Fleet.Stats() {
				out.Tenants[name] = tenantHealth{
					Queries:       st.Queries,
					Rejected:      st.Rejected,
					Expired:       st.Expired,
					Panics:        st.Panics,
					InFlight:      st.InFlight,
					QPS:           st.QPS,
					MeanBatch:     st.MeanBatch,
					P50Ns:         st.P50.Nanoseconds(),
					P99Ns:         st.P99.Nanoseconds(),
					Staleness:     st.Staleness,
					DriftedShards: st.DriftedShards,
					MaxDriftRatio: st.MaxDriftRatio,
					QuantQueries:  st.QuantQueries,
					QuantFallback: st.QuantFallbacks,
					BrownoutLevel: st.BrownoutLevel,
					BrownoutDowns: st.BrownoutDowns,
					BrownoutUps:   st.BrownoutUps,
					RegGeneration: st.RegistryGeneration,
					RegPublishes:  st.RegistryPublishes,
					RegRollbacks:  st.RegistryRollbacks,
					RegQuarantine: st.RegistryQuarantines,
					PlaceSource:   st.PlacementSource,
					PlaceGen:      st.PlacementGeneration,
					PlaceWarm:     st.PlacementWarmShards,
				}
			}
		}
		if h.Server != nil {
			st := h.Server.Stats()
			out.Server = &st
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	default:
		http.NotFound(w, r)
	}
}
