package netserve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
)

// Raw-frame helpers for frame-splicing middleboxes (internal/router):
// read a whole frame with its length prefix intact, validate and patch
// the two words a forwarder touches (tenant is read, ids are rewritten),
// and pass the payload through byte-identical. Nothing here decodes
// rows — that is the point.

// ErrRawFrame reports a frame a forwarder cannot route: truncated,
// wrong version, malformed geometry.
var ErrRawFrame = errors.New("netserve: malformed raw frame")

// ReadRawFrame reads one length-prefixed frame into buf (grown as
// needed) and returns it with the prefix still in place — ready to be
// spliced onto another connection after id patching. Frames longer than
// max fail with an oversize error before any payload is read.
func ReadRawFrame(br *bufio.Reader, buf []byte, max int) ([]byte, error) {
	hdr, err := br.Peek(lenPrefix)
	if err != nil {
		if len(hdr) > 0 && err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return buf, err
	}
	n := int(binary.BigEndian.Uint32(hdr))
	if n == 0 {
		return buf, errEmptyFrame
	}
	if n > max {
		return buf, errOversized
	}
	total := lenPrefix + n
	if cap(buf) < total {
		buf = make([]byte, total)
	}
	buf = buf[:total]
	if _, err := io.ReadFull(br, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return buf, err
	}
	return buf, nil
}

// RawFrameType returns the frame-type byte of a prefixed frame (0 for
// one too short to carry it).
func RawFrameType(frame []byte) byte {
	if len(frame) < lenPrefix+2 {
		return 0
	}
	return frame[lenPrefix+1]
}

// RawQueryMeta validates a prefixed query frame end to end (same checks
// as the server's own parser — a forwarder must not splice a frame the
// worker would kill the connection over) and returns the fields a
// router needs: the tenant bytes (aliasing frame) and the request id.
func RawQueryMeta(frame []byte) (tenant []byte, id uint64, err error) {
	if len(frame) < lenPrefix {
		return nil, 0, ErrRawFrame
	}
	if int(binary.BigEndian.Uint32(frame[:lenPrefix])) != len(frame)-lenPrefix {
		return nil, 0, ErrRawFrame
	}
	req, perr := parseRequest(frame[lenPrefix:])
	if perr != nil {
		return nil, 0, ErrRawFrame
	}
	return req.tenant, req.id, nil
}

// SetRawQueryID rewrites the request id of a validated prefixed query
// frame in place.
func SetRawQueryID(frame []byte, id uint64) {
	binary.BigEndian.PutUint64(frame[lenPrefix+4:lenPrefix+12], id)
}

// RawResponseID returns the id of a prefixed result or artifact-data
// frame; ok is false for frames too short to carry one. Both response
// layouts keep the id at the same offset by design.
func RawResponseID(frame []byte) (uint64, bool) {
	if len(frame) < lenPrefix+12 {
		return 0, false
	}
	return binary.BigEndian.Uint64(frame[lenPrefix+4 : lenPrefix+12]), true
}

// SetRawResponseID rewrites a response frame's id in place.
func SetRawResponseID(frame []byte, id uint64) {
	binary.BigEndian.PutUint64(frame[lenPrefix+4:lenPrefix+12], id)
}

// RawFrameBuffered reports whether a complete frame (of body length at
// most max) is already buffered on br — whether a forwarder can gather
// one more frame into the current burst without blocking.
func RawFrameBuffered(br *bufio.Reader, max int) bool {
	return frameBuffered(br, max)
}

// AppendStatusFrame encodes a rowless result frame carrying status for
// id — the router's explicit Retry/shed answer during placement moves
// and worker outages, upholding the never-silently-dropped contract.
func AppendStatusFrame(dst []byte, id uint64, status byte) []byte {
	return appendResponse(dst, id, status, 0, nil, nil, "")
}

// AppendErrorFrame encodes a StatusError result frame carrying msg.
func AppendErrorFrame(dst []byte, id uint64, msg string) []byte {
	return appendResponse(dst, id, StatusError, 0, nil, nil, msg)
}
