package netserve

// This file implements ResilientClient, the failure-domain-hardened face
// of the wire client: a small pool of multiplexed connections with
// automatic reconnect under jittered exponential backoff, a deadline-aware
// retry budget over the protocol's explicit retry signal and transport
// failures, optional request hedging against tail latency, and a
// per-tenant circuit breaker so a hard-down tenant sheds locally instead
// of burning its callers' retry budgets. The steady state — healthy
// connection, first attempt succeeds — adds only atomic/mutex bookkeeping
// to Client.QueryInto and stays allocation-free.

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/xrand"
)

var (
	// ErrNoConn is returned when every pooled connection is down and
	// reconnecting; the dial loop keeps running in the background.
	ErrNoConn = errors.New("netserve: no live connection")
	// ErrCircuitOpen is the match target for circuit-breaker sheds; the
	// concrete error is a *CircuitOpenError naming the tenant.
	ErrCircuitOpen = errors.New("netserve: circuit open")
)

// CircuitOpenError reports a query shed by an open per-tenant circuit
// breaker. errors.Is(err, ErrCircuitOpen) matches it.
type CircuitOpenError struct{ Tenant string }

func (e *CircuitOpenError) Error() string {
	return "netserve: circuit open for tenant " + e.Tenant
}

func (e *CircuitOpenError) Is(target error) bool { return target == ErrCircuitOpen }

// BreakerConfig tunes the per-tenant circuit breakers. The zero value
// selects the defaults; set Disable to run without breakers.
type BreakerConfig struct {
	// Window is the rolling per-tenant sample window, at most 64 (default
	// 64; the window lives in one uint64 shift register).
	Window int
	// MinSamples is the fewest windowed samples before the breaker may
	// trip (default 16), so one early failure cannot open it.
	MinSamples int
	// TripRate is the windowed failure fraction at which the breaker
	// opens (default 0.5).
	TripRate float64
	// Cooldown is how long an open breaker waits before letting one
	// half-open probe through (default 1s).
	Cooldown time.Duration
	// Disable turns breakers off entirely.
	Disable bool
}

func (c *BreakerConfig) fill() {
	if c.Window <= 0 || c.Window > 64 {
		c.Window = 64
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 16
	}
	if c.MinSamples > c.Window {
		c.MinSamples = c.Window
	}
	if c.TripRate <= 0 {
		c.TripRate = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
}

const (
	bkClosed = iota
	bkOpen
	bkHalfOpen
)

// breaker is one tenant's circuit breaker: a rolling error-rate window in
// a shift register, the classic closed → open → half-open state machine,
// and a preallocated open error so shedding allocates nothing.
type breaker struct {
	cfg     BreakerConfig
	tenant  string
	openErr *CircuitOpenError
	// state is mirrored atomically so the healthy fast path (closed →
	// allow) costs one load instead of a mutex round trip; dirty mirrors
	// "the window holds at least one failure" for the same reason.
	state atomic.Int32
	dirty atomic.Bool

	mu       sync.Mutex
	bits     uint64 // sample ring, bit 0 newest, 1 = failure
	n, fails int
	openedAt time.Time
	probing  bool // half-open: one probe in flight
}

func newBreaker(cfg BreakerConfig, tenant string) *breaker {
	return &breaker{cfg: cfg, tenant: tenant, openErr: &CircuitOpenError{Tenant: tenant}}
}

// allow reports whether a query may proceed, transitioning open →
// half-open once the cooldown elapses (the caller becomes the probe).
func (b *breaker) allow() bool {
	if b.state.Load() == bkClosed {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state.Load() {
	case bkClosed:
		return true
	case bkOpen:
		if time.Since(b.openedAt) >= b.cfg.Cooldown {
			b.state.Store(bkHalfOpen)
			b.probing = true
			return true
		}
		return false
	default: // half-open: one probe at a time
		if !b.probing {
			b.probing = true
			return true
		}
		return false
	}
}

// record feeds one query outcome back. In half-open state the probe's
// outcome decides: success closes the breaker with a fresh window,
// failure reopens it. Stragglers from before a trip are ignored.
//
// The healthy steady state — closed breaker, success, no failures in the
// window — returns without the mutex: successes only matter as dilution
// once a failure is in the window (the `dirty` mirror), so an all-clean
// window need not record them at all.
func (b *breaker) record(fail bool) {
	if !fail && b.state.Load() == bkClosed && !b.dirty.Load() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state.Load() {
	case bkOpen:
		return
	case bkHalfOpen:
		b.probing = false
		if fail {
			b.state.Store(bkOpen)
			b.openedAt = time.Now()
		} else {
			b.state.Store(bkClosed)
			b.reset()
		}
		return
	}
	if b.n == b.cfg.Window {
		if b.bits>>uint(b.cfg.Window-1)&1 == 1 {
			b.fails--
		}
		b.n--
	}
	b.bits <<= 1
	if fail {
		b.bits |= 1
		b.fails++
		b.dirty.Store(true)
	}
	b.n++
	switch {
	case b.n >= b.cfg.MinSamples && float64(b.fails)/float64(b.n) >= b.cfg.TripRate:
		b.state.Store(bkOpen)
		b.openedAt = time.Now()
		b.reset()
	case b.fails == 0:
		// Every failure aged out: drop the window and return the success
		// path to lock-free.
		b.reset()
	}
}

// reset clears the sample window (caller holds mu).
func (b *breaker) reset() {
	b.bits, b.n, b.fails = 0, 0, 0
	b.dirty.Store(false)
}

// ResilientConfig tunes a ResilientClient. The zero value selects the
// defaults.
type ResilientConfig struct {
	// Conns is the connection-pool size (default 2). Queries round-robin
	// across live connections; dead ones repair in the background.
	Conns int
	// Client tunes each pooled connection.
	Client ClientConfig
	// MaxAttempts bounds one query's tries across connections (default
	// 3): the first attempt plus retries after ErrRetry or a transport
	// failure. Definitive answers (OK, expired, unknown tenant, server
	// error) never retry.
	MaxAttempts int
	// RetryBackoff / RetryBackoffMax shape the jittered exponential
	// backoff between attempts (defaults 2ms and 250ms). A backoff that
	// would overshoot the request's deadline returns the last error
	// instead of sleeping into certain expiry.
	RetryBackoff, RetryBackoffMax time.Duration
	// ReconnectBackoff / ReconnectBackoffMax shape the background redial
	// loop for a broken pooled connection (defaults 10ms and 1s).
	ReconnectBackoff, ReconnectBackoffMax time.Duration
	// HedgeDelay, when positive, arms tail-latency hedging: a first
	// attempt still unanswered after this long triggers a duplicate on
	// another connection, first answer wins. Hedged attempts allocate;
	// leave 0 (off) on allocation-sensitive paths.
	HedgeDelay time.Duration
	// ExpireStreak is how many consecutive client-side deadline
	// expirations on one connection condemn it as blackholed and force a
	// reconnect (default 8; negative disables). A stalled-but-open TCP
	// connection never yields a transport error on its own — this streak
	// is the only signal that crosses it.
	ExpireStreak int
	// Breaker tunes the per-tenant circuit breakers.
	Breaker BreakerConfig
	// Seed fixes the jitter stream (default 1).
	Seed uint64
}

func (c *ResilientConfig) fill() {
	if c.Conns <= 0 {
		c.Conns = 2
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	if c.RetryBackoffMax <= 0 {
		c.RetryBackoffMax = 250 * time.Millisecond
	}
	if c.ReconnectBackoff <= 0 {
		c.ReconnectBackoff = 10 * time.Millisecond
	}
	if c.ReconnectBackoffMax <= 0 {
		c.ReconnectBackoffMax = time.Second
	}
	if c.ExpireStreak == 0 {
		c.ExpireStreak = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	c.Breaker.fill()
	// c.Client is filled by Dial on each (re)connect; filling it here too
	// would double-apply the negative-means-disable conversions.
}

// rslot is one pooled connection slot: the live client (nil while down)
// and its repair/blackhole-detection state.
type rslot struct {
	cl        atomic.Pointer[Client]
	repairing atomic.Bool
	expStreak atomic.Int32 // consecutive client-side expirations
}

// ResilientStats snapshots a ResilientClient's failure-handling counters.
type ResilientStats struct {
	// Conns is the pool size; Live is how many connections are currently
	// up.
	Conns, Live int
	// Retries counts extra attempts, Reconnects successful redials,
	// Hedges launched duplicates, HedgeWins hedges that answered first,
	// BreakerShed queries refused by an open breaker.
	Retries, Reconnects, Hedges, HedgeWins, BreakerShed int64
}

// ResilientClient is the failure-hardened wire client: Client's
// multiplexing and zero-allocation steady state, plus reconnection,
// retries, hedging and per-tenant circuit breaking. Safe for concurrent
// use.
type ResilientClient struct {
	cfg  ResilientConfig
	addr string

	slots []*rslot
	next  atomic.Uint64

	bmu      sync.RWMutex
	breakers map[string]*breaker
	lastBk   atomic.Pointer[breaker] // most recently used breaker, skips bmu

	rmu sync.Mutex
	rng *xrand.Rand

	smu     sync.Mutex // guards closed-flag vs. repair spawning
	closed  atomic.Bool
	quit    chan struct{}
	repairs sync.WaitGroup

	retries, reconnects, hedges, hedgeWins, breakerShed atomic.Int64
}

// DialResilient builds the pool. Connections that fail to dial start
// repairing in the background; only if every connection fails is the
// first dial error returned.
func DialResilient(addr string, cfg ResilientConfig) (*ResilientClient, error) {
	cfg.fill()
	rc := &ResilientClient{
		cfg:      cfg,
		addr:     addr,
		slots:    make([]*rslot, cfg.Conns),
		breakers: map[string]*breaker{},
		rng:      xrand.New(cfg.Seed),
		quit:     make(chan struct{}),
	}
	var firstErr error
	live := 0
	for i := range rc.slots {
		sl := &rslot{}
		rc.slots[i] = sl
		cl, err := Dial(addr, cfg.Client)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			rc.spawnRepair(sl)
			continue
		}
		sl.cl.Store(cl)
		live++
	}
	if live == 0 {
		rc.Close()
		return nil, firstErr
	}
	return rc, nil
}

// Close tears the pool down: repair loops stop, every live connection
// closes, in-flight queries fail with ErrClientClosed. Idempotent.
func (rc *ResilientClient) Close() error {
	rc.smu.Lock()
	already := rc.closed.Swap(true)
	if !already {
		close(rc.quit)
	}
	rc.smu.Unlock()
	if !already {
		for _, sl := range rc.slots {
			if cl := sl.cl.Swap(nil); cl != nil {
				cl.Close()
			}
		}
	}
	rc.repairs.Wait()
	return nil
}

// Stats snapshots the failure-handling counters.
func (rc *ResilientClient) Stats() ResilientStats {
	live := 0
	for _, sl := range rc.slots {
		if sl.cl.Load() != nil {
			live++
		}
	}
	return ResilientStats{
		Conns:       len(rc.slots),
		Live:        live,
		Retries:     rc.retries.Load(),
		Reconnects:  rc.reconnects.Load(),
		Hedges:      rc.hedges.Load(),
		HedgeWins:   rc.hedgeWins.Load(),
		BreakerShed: rc.breakerShed.Load(),
	}
}

// Query is the allocating convenience form; see Client.Query.
func (rc *ResilientClient) Query(tenant string, x []float64, deadline time.Time) (WireResult, error) {
	y := make([]float64, 256)
	std := make([]float64, 256)
	return rc.QueryInto(tenant, x, y, std, deadline)
}

// QueryInto submits one row through the pool with retries, hedging and
// circuit breaking; buffer semantics match Client.QueryInto.
func (rc *ResilientClient) QueryInto(tenant string, x, y, std []float64, deadline time.Time) (WireResult, error) {
	if rc.closed.Load() {
		return WireResult{}, ErrClientClosed
	}
	br := rc.breakerFor(tenant)
	if br != nil && !br.allow() {
		rc.breakerShed.Add(1)
		return WireResult{}, br.openErr
	}
	res, err := rc.attempts(tenant, x, y, std, deadline)
	if br != nil {
		br.record(isBreakerFailure(err))
	}
	return res, err
}

// isBreakerFailure classifies outcomes for the breaker window. Overload
// sheds and deadline expiries are load signals, not tenant-health
// signals — the backoff and brownout layers own those — and a too-small
// caller buffer is the caller's bug. Everything else that errs (server
// errors, unknown tenant, exhausted transport retries) counts.
func isBreakerFailure(err error) bool {
	return err != nil && !errors.Is(err, ErrRetry) &&
		!errors.Is(err, ErrExpired) && !errors.Is(err, errShortBuffer)
}

// attempts runs the retry loop: up to MaxAttempts tries across the pool,
// jittered exponential backoff between them, never sleeping past the
// caller's deadline.
func (rc *ResilientClient) attempts(tenant string, x, y, std []float64, deadline time.Time) (WireResult, error) {
	var last error = ErrNoConn
	back := rc.cfg.RetryBackoff
	for attempt := 0; attempt < rc.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			rc.retries.Add(1)
			d := rc.jitter(back)
			if !deadline.IsZero() && time.Now().Add(d).After(deadline) {
				// Sleeping would land past the deadline: the retry is
				// already lost, report the attempt that got furthest.
				return WireResult{}, last
			}
			select {
			case <-rc.quit:
				return WireResult{}, ErrClientClosed
			case <-time.After(d):
			}
			back *= 2
			if back > rc.cfg.RetryBackoffMax {
				back = rc.cfg.RetryBackoffMax
			}
		}
		cl, sl := rc.pick(nil)
		if cl == nil {
			last = ErrNoConn
			continue
		}
		var res WireResult
		var err error
		if attempt == 0 && rc.cfg.HedgeDelay > 0 {
			res, err = rc.hedge(tenant, x, y, std, deadline, cl, sl)
		} else {
			res, err = cl.QueryInto(tenant, x, y, std, deadline)
		}
		if err == nil {
			if sl.expStreak.Load() != 0 {
				sl.expStreak.Store(0)
			}
			return res, nil
		}
		last = err
		switch {
		case isTransport(err):
			// The connection died under this request; its fate is
			// unknown, so condemn the connection and try another.
			rc.markBroken(sl, cl)
		case errors.Is(err, ErrRetry):
			// Explicit server shed: the retry budget exists for this.
		case errors.Is(err, ErrExpired):
			rc.noteExpired(sl, cl)
			return WireResult{}, err
		default:
			// Definitive answer (unknown tenant, server error, short
			// buffer): retrying cannot change it.
			return WireResult{}, err
		}
	}
	return WireResult{}, last
}

// isTransport reports errors that condemn a connection rather than the
// request: the wire died (ErrConnLost) or the pooled client was closed
// under us by a concurrent markBroken.
func isTransport(err error) bool {
	return errors.Is(err, ErrConnLost) || errors.Is(err, ErrClientClosed)
}

// hedgeAnswer carries one hedged attempt's outcome.
type hedgeAnswer struct {
	res WireResult
	err error
	cl  *Client
	sl  *rslot
}

// hedge runs the first attempt with a duplicate launched on another
// connection if no answer lands within HedgeDelay; the first success
// wins. Hedged attempts run through the allocating Query so the two
// in-flight copies cannot share the caller's buffers.
func (rc *ResilientClient) hedge(tenant string, x, y, std []float64, deadline time.Time, cl *Client, sl *rslot) (WireResult, error) {
	ch := make(chan hedgeAnswer, 2)
	launch := func(c *Client, s *rslot) {
		go func() {
			r, e := c.Query(tenant, x, deadline)
			ch <- hedgeAnswer{res: r, err: e, cl: c, sl: s}
		}()
	}
	launch(cl, sl)
	inflight := 1
	hedged := false
	tm := time.NewTimer(rc.cfg.HedgeDelay)
	defer tm.Stop()
	var firstErr error
	for inflight > 0 {
		select {
		case <-tm.C:
			if !hedged {
				hedged = true
				if c2, s2 := rc.pick(sl); c2 != nil {
					rc.hedges.Add(1)
					launch(c2, s2)
					inflight++
				}
			}
		case a := <-ch:
			inflight--
			if a.err == nil {
				if a.cl != cl {
					rc.hedgeWins.Add(1)
				}
				a.sl.expStreak.Store(0)
				return copyHedge(a.res, y, std)
			}
			if isTransport(a.err) {
				rc.markBroken(a.sl, a.cl)
			}
			if firstErr == nil {
				firstErr = a.err
			}
		}
	}
	return WireResult{}, firstErr
}

// copyHedge lands a hedged answer in the caller's buffers, preserving
// QueryInto's aliasing contract.
func copyHedge(res WireResult, y, std []float64) (WireResult, error) {
	if len(res.Y) > len(y) {
		return WireResult{}, errShortBuffer
	}
	copy(y, res.Y)
	res.Y = y[:len(res.Y)]
	if res.Std != nil && std != nil {
		if len(res.Std) > len(std) {
			return WireResult{}, errShortBuffer
		}
		copy(std, res.Std)
		res.Std = std[:len(res.Std)]
	} else {
		res.Std = nil
	}
	return res, nil
}

// pick round-robins over live slots, skipping avoid (nil to allow all).
// A one-connection pool has nothing to rotate, so it skips the counter.
func (rc *ResilientClient) pick(avoid *rslot) (*Client, *rslot) {
	n := len(rc.slots)
	if n == 1 {
		if sl := rc.slots[0]; sl != avoid {
			if cl := sl.cl.Load(); cl != nil {
				return cl, sl
			}
		}
		return nil, nil
	}
	start := int(rc.next.Add(1) % uint64(n))
	for i := 0; i < n; i++ {
		sl := rc.slots[(start+i)%n]
		if sl == avoid {
			continue
		}
		if cl := sl.cl.Load(); cl != nil {
			return cl, sl
		}
	}
	return nil, nil
}

// markBroken swaps a condemned connection out of its slot and starts the
// repair loop. The CAS makes condemnation single-winner: concurrent
// callers seeing the same dead client race to nil it, and only the winner
// closes and repairs.
func (rc *ResilientClient) markBroken(sl *rslot, cl *Client) {
	if !sl.cl.CompareAndSwap(cl, nil) {
		return
	}
	go cl.Close()
	rc.spawnRepair(sl)
}

// noteExpired advances a slot's consecutive-expiry streak; at
// ExpireStreak the connection is condemned as blackholed — an open-but-
// silent connection yields no transport error, so the streak is the only
// crossing signal.
func (rc *ResilientClient) noteExpired(sl *rslot, cl *Client) {
	if rc.cfg.ExpireStreak <= 0 {
		return
	}
	if sl.expStreak.Add(1) >= int32(rc.cfg.ExpireStreak) {
		sl.expStreak.Store(0)
		rc.markBroken(sl, cl)
	}
}

// spawnRepair starts a slot's repair loop unless one is already running
// or the client is closed. The closed check and WaitGroup add share the
// shutdown mutex so a repair can never start after Close began waiting.
func (rc *ResilientClient) spawnRepair(sl *rslot) {
	if !sl.repairing.CompareAndSwap(false, true) {
		return
	}
	rc.smu.Lock()
	if rc.closed.Load() {
		rc.smu.Unlock()
		sl.repairing.Store(false)
		return
	}
	rc.repairs.Add(1)
	rc.smu.Unlock()
	go rc.repair(sl)
}

// repair redials a slot under jittered exponential backoff until it
// succeeds or the client closes. The first dial happens immediately — the
// common failure is a server restart measured in milliseconds.
func (rc *ResilientClient) repair(sl *rslot) {
	defer rc.repairs.Done()
	defer sl.repairing.Store(false)
	back := rc.cfg.ReconnectBackoff
	for {
		if rc.closed.Load() {
			return
		}
		cl, err := Dial(rc.addr, rc.cfg.Client)
		if err == nil {
			sl.expStreak.Store(0)
			sl.cl.Store(cl)
			rc.reconnects.Add(1)
			if rc.closed.Load() {
				// Close ran while we were dialing; don't leak the fresh
				// connection past it.
				if c := sl.cl.Swap(nil); c != nil {
					c.Close()
				}
			}
			return
		}
		select {
		case <-rc.quit:
			return
		case <-time.After(rc.jitter(back)):
		}
		back *= 2
		if back > rc.cfg.ReconnectBackoffMax {
			back = rc.cfg.ReconnectBackoffMax
		}
	}
}

// breakerFor returns (creating on first use) the tenant's breaker, or nil
// when breakers are disabled. A one-entry MRU cache serves the common
// single-tenant-per-client case without touching the map lock.
func (rc *ResilientClient) breakerFor(tenant string) *breaker {
	if rc.cfg.Breaker.Disable {
		return nil
	}
	if b := rc.lastBk.Load(); b != nil && b.tenant == tenant {
		return b
	}
	rc.bmu.RLock()
	b := rc.breakers[tenant]
	rc.bmu.RUnlock()
	if b == nil {
		rc.bmu.Lock()
		if b = rc.breakers[tenant]; b == nil {
			b = newBreaker(rc.cfg.Breaker, tenant)
			rc.breakers[tenant] = b
		}
		rc.bmu.Unlock()
	}
	rc.lastBk.Store(b)
	return b
}

// jitter draws uniformly from [d/2, d).
func (rc *ResilientClient) jitter(d time.Duration) time.Duration {
	rc.rmu.Lock()
	f := rc.rng.Float64()
	rc.rmu.Unlock()
	return d/2 + time.Duration(f*float64(d/2))
}

// ---------------------------------------------------------------------------
// artifact control plane

// artAttempts runs one artifact control-plane call with the same
// retry-across-the-pool ladder as queries: transport failures condemn
// the connection and try another, explicit sheds back off, definitive
// answers return immediately. Artifact ops are idempotent by contract
// (generation-addressed reads, replay-idempotent installs), so retrying
// after an unknown-fate transport failure is safe.
func (rc *ResilientClient) artAttempts(call func(cl *Client) error) error {
	if rc.closed.Load() {
		return ErrClientClosed
	}
	var last error = ErrNoConn
	back := rc.cfg.RetryBackoff
	for attempt := 0; attempt < rc.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			rc.retries.Add(1)
			select {
			case <-rc.quit:
				return ErrClientClosed
			case <-time.After(rc.jitter(back)):
			}
			back *= 2
			if back > rc.cfg.RetryBackoffMax {
				back = rc.cfg.RetryBackoffMax
			}
		}
		cl, sl := rc.pick(nil)
		if cl == nil {
			last = ErrNoConn
			continue
		}
		err := call(cl)
		if err == nil {
			return nil
		}
		last = err
		switch {
		case isTransport(err):
			rc.markBroken(sl, cl)
		case errors.Is(err, ErrRetry):
		default:
			return err
		}
	}
	return last
}

// StatArtifact is Client.StatArtifact through the retry ladder.
func (rc *ResilientClient) StatArtifact(key string) (gen uint64, ok bool, err error) {
	err = rc.artAttempts(func(cl *Client) error {
		var e error
		gen, ok, e = cl.StatArtifact(key)
		return e
	})
	return gen, ok, err
}

// FetchArtifact is Client.FetchArtifact through the retry ladder. The
// pooled connections' MaxFrame must admit artifact-sized responses
// (DefaultMaxArtifactFrame).
func (rc *ResilientClient) FetchArtifact(key string, gen uint64) (data []byte, actual uint64, ok bool, err error) {
	err = rc.artAttempts(func(cl *Client) error {
		var e error
		data, actual, ok, e = cl.FetchArtifact(key, gen)
		return e
	})
	return data, actual, ok, err
}

// PushArtifact is Client.PushArtifact through the retry ladder.
func (rc *ResilientClient) PushArtifact(key string, gen uint64, data []byte) error {
	return rc.artAttempts(func(cl *Client) error {
		return cl.PushArtifact(key, gen, data)
	})
}
