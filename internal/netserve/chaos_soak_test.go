package netserve

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/fleet"
)

// TestChaosSoak phases a live resilient-client load through every fault
// the injector knows — drops, truncated writes, corruption, latency,
// stalls, full partition, blackhole — on both sides of the wire, then
// clears the faults and asserts the three recovery invariants:
//
//  1. No silent drops: every issued query resolved with an answer or a
//     typed error. (The counters must add up; an unexpected error type
//     fails immediately.)
//  2. Bounded recovery: once faults clear, queries succeed again within
//     the reconnect-backoff bound.
//  3. No residue: goroutines return to baseline and every pooled server
//     buffer is recycled after teardown.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	base := runtime.NumGoroutine()

	inj := chaos.New(0xC4A05)
	bk := &testBackend{in: 2, out: 1}
	fl := fleet.New(fleet.Config{})
	if err := fl.Register("m", bk); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(Config{Fleet: fl, WriteTimeout: 200 * time.Millisecond})
	ln, err := listenLoopback()
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(inj.Listener(ln))

	rc, err := DialResilient(ln.Addr().String(), ResilientConfig{
		Conns:            2,
		MaxAttempts:      4,
		RetryBackoff:     time.Millisecond,
		ReconnectBackoff: 5 * time.Millisecond,
		ExpireStreak:     3,
		Breaker:          BreakerConfig{Disable: true}, // the retry path is under test
		Client: ClientConfig{
			Dialer:        inj.Dialer(nil),
			DeadlineGrace: 100 * time.Millisecond,
			DialTimeout:   time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	var issued, okCount, typedErr atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			y, std := make([]float64, 1), make([]float64, 1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				issued.Add(1)
				_, qerr := rc.QueryInto("m", []float64{1, 2}, y, std, time.Now().Add(300*time.Millisecond))
				switch {
				case qerr == nil:
					okCount.Add(1)
				case errors.Is(qerr, ErrRetry), errors.Is(qerr, ErrExpired),
					errors.Is(qerr, ErrConnLost), errors.Is(qerr, ErrNoConn),
					errors.Is(qerr, ErrClientClosed),
					// A corrupted tenant byte in a request that still
					// frame-parses is served as unknown-tenant — typed,
					// not a silent drop.
					errors.Is(qerr, ErrUnknownTenant):
					typedErr.Add(1)
				default:
					var re *RemoteError
					if errors.As(qerr, &re) {
						// Corrupted request bytes that still frame-parse
						// surface as server-side errors; that is the typed
						// contract working, not a silent drop.
						typedErr.Add(1)
						continue
					}
					t.Errorf("untyped query error under chaos: %v", qerr)
					return
				}
			}
		}()
	}

	// Fault phases. Each runs against live load for a slice of real time.
	phase := func(name string, arm func(), d time.Duration) {
		t.Logf("phase %s", name)
		arm()
		time.Sleep(d)
	}
	phase("drop 5%", func() { inj.SetDropRate(0.05) }, 150*time.Millisecond)
	phase("partial writes", func() { inj.Clear(); inj.SetPartialRate(0.05) }, 150*time.Millisecond)
	phase("corruption", func() { inj.Clear(); inj.SetCorruptRate(0.05) }, 150*time.Millisecond)
	phase("latency 2ms", func() { inj.Clear(); inj.SetDelay(2 * time.Millisecond) }, 150*time.Millisecond)
	phase("stall", func() { inj.Clear(); inj.SetStalled(true) }, 150*time.Millisecond)
	phase("partition", func() { inj.SetStalled(false); inj.KillAll() }, 100*time.Millisecond)
	phase("blackhole", func() { inj.SetBlackhole(true) }, 200*time.Millisecond)
	inj.Clear()

	// Invariant 2: bounded recovery. The reconnect ladder caps at 1s, so
	// within 3s of a clean network queries must flow again.
	recovered := false
	recoverBy := time.Now().Add(3 * time.Second)
	y, std := make([]float64, 1), make([]float64, 1)
	for time.Now().Before(recoverBy) {
		if _, qerr := rc.QueryInto("m", []float64{1, 2}, y, std, time.Now().Add(300*time.Millisecond)); qerr == nil {
			recovered = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !recovered {
		t.Errorf("no successful query within 3s of faults clearing; stats %+v, injector %+v",
			rc.Stats(), inj.Stats())
	}

	close(stop)
	wg.Wait()
	rc.Close()
	srv.Close()
	fl.Close()

	// Invariant 1: the books balance — every issued query resolved.
	if got := okCount.Load() + typedErr.Load(); got != issued.Load() {
		t.Errorf("silent drops: issued %d, resolved %d", issued.Load(), got)
	}
	if okCount.Load() == 0 {
		t.Error("no query ever succeeded under chaos")
	}
	t.Logf("issued=%d ok=%d typed-errors=%d client=%+v injector=%+v server=%+v",
		issued.Load(), okCount.Load(), typedErr.Load(), rc.Stats(), inj.Stats(), srv.Stats())

	// Invariant 3: no residue.
	if reqs, bursts := srv.poolBalance(); reqs != 0 || bursts != 0 {
		t.Errorf("pooled state leaked: %d request contexts, %d bursts outstanding", reqs, bursts)
	}
	waitGoroutines(t, base, 2)
}
