package netserve

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"
)

// The frame decoders sit on the network boundary: every byte they see is
// adversarial. The fuzzers assert the two hard guarantees — never panic,
// never allocate past the validated lengths — plus encode/decode
// round-trip fidelity on inputs that do parse.

func FuzzParseRequest(f *testing.F) {
	// Seeds: one valid frame, truncations of it, and header corruptions.
	valid, err := appendRequest(nil, "tenant-a", 42, 123456789, FlagNoStd, []float64{1.5, -2.25, 0})
	if err != nil {
		f.Fatal(err)
	}
	body := valid[lenPrefix:] // parseRequest sees the body, not the prefix
	f.Add(body)
	for cut := 0; cut < len(body); cut += 3 {
		f.Add(body[:cut])
	}
	for _, mut := range []int{0, 1, 2, 3, 4, 12, 20, 21} {
		if mut < len(body) {
			b := bytes.Clone(body)
			b[mut] ^= 0xff
			f.Add(b)
		}
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := parseRequest(data) // must not panic
		if err != nil {
			return
		}
		// Parsed fields must alias the input within bounds — the decoder
		// promises it never reads or retains past the body.
		if len(req.tenant) > MaxTenant || len(req.tenant) == 0 {
			t.Fatalf("tenant length %d out of range", len(req.tenant))
		}
		if req.nx <= 0 || req.nx > maxRowVals || len(req.x) != 8*req.nx {
			t.Fatalf("row geometry nx=%d len(x)=%d", req.nx, len(req.x))
		}
		// Round-trip: re-encoding the parsed request reproduces the body.
		x := decodeFloats(make([]float64, 0, req.nx), req.x)
		re, err := appendRequest(nil, string(req.tenant), req.id, req.deadline, req.flags, x)
		if err != nil {
			t.Fatalf("re-encode of parsed request failed: %v", err)
		}
		if !bytes.Equal(re[lenPrefix:], data) {
			t.Fatalf("round-trip mismatch:\n in  %x\n out %x", data, re[lenPrefix:])
		}
	})
}

func FuzzParseResponse(f *testing.F) {
	ok := appendResponse(nil, 7, StatusOK, 1, []float64{3.5, 4.5}, []float64{0.1, 0.2}, "")
	rerr := appendResponse(nil, 8, StatusError, 0, nil, nil, "backend exploded")
	retry := appendResponse(nil, 9, StatusRetry, 0, nil, nil, "")
	for _, frame := range [][]byte{ok, rerr, retry} {
		body := frame[lenPrefix:]
		f.Add(body)
		for cut := 0; cut < len(body); cut += 2 {
			f.Add(body[:cut])
		}
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x01}, 40))

	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := parseResponse(data) // must not panic
		if err != nil {
			return
		}
		if resp.ny < 0 || resp.ny > maxRowVals || len(resp.y) != 8*resp.ny {
			t.Fatalf("y geometry ny=%d len=%d", resp.ny, len(resp.y))
		}
		if resp.nstd < 0 || resp.nstd > maxRowVals || len(resp.std) != 8*resp.nstd {
			t.Fatalf("std geometry nstd=%d len=%d", resp.nstd, len(resp.std))
		}
		if resp.status == StatusOK {
			y := decodeFloats(make([]float64, 0, resp.ny), resp.y)
			var std []float64
			if resp.nstd > 0 {
				std = decodeFloats(make([]float64, 0, resp.nstd), resp.std)
			}
			re := appendResponse(nil, resp.id, resp.status, resp.src, y, std, "")
			if !bytes.Equal(re[lenPrefix:], data) {
				t.Fatalf("round-trip mismatch:\n in  %x\n out %x", data, re[lenPrefix:])
			}
		}
	})
}

func FuzzReadFrame(f *testing.F) {
	valid, _ := appendRequest(nil, "t", 1, 0, 0, []float64{1})
	f.Add(valid)
	f.Add(valid[:3])                               // truncated prefix
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x00})    // oversized length
	f.Add([]byte{0x00, 0x00, 0x00, 0x00})          // zero length
	f.Add([]byte{0x00, 0x00, 0x00, 0x08, 1, 2, 3}) // body shorter than declared
	f.Add(append(bytes.Clone(valid), valid...))    // two frames back to back

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		buf := make([]byte, 0, 64)
		for i := 0; i < 4; i++ { // drain a few frames, never panic
			out, err := readFrame(r, buf, DefaultMaxFrame)
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF &&
					err != errEmptyFrame && err != errOversized {
					t.Fatalf("unexpected readFrame error class: %v", err)
				}
				return
			}
			if len(out) == 0 || len(out) > DefaultMaxFrame {
				t.Fatalf("readFrame returned %d bytes", len(out))
			}
			if len(data) >= lenPrefix {
				if declared := int(binary.BigEndian.Uint32(data[:lenPrefix])); i == 0 && len(out) != declared {
					t.Fatalf("first frame length %d, declared %d", len(out), declared)
				}
			}
			buf = out
		}
	})
}

// FuzzClientResponse drives the full client read path — framing, parse,
// waiter completion, teardown — with an adversarial server. The
// guarantees: no panic, no hang (the deadline grace bounds every wait),
// and the in-flight query always resolves.
func FuzzClientResponse(f *testing.F) {
	ok := appendResponse(nil, 1, StatusOK, 0, []float64{1, 2}, []float64{0.1, 0.2}, "")
	f.Add(ok)
	f.Add(ok[:len(ok)/2])
	f.Add(appendResponse(nil, 1, StatusError, 0, nil, nil, "boom"))
	f.Add(appendResponse(nil, 99, StatusOK, 0, []float64{3}, nil, "")) // nobody waiting
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // oversized length prefix

	f.Fuzz(func(t *testing.T, data []byte) {
		a, b := netPipe()
		cfg := ClientConfig{DeadlineGrace: 50 * time.Millisecond}
		cfg.fill()
		cfg.DeadlineGrace = 50 * time.Millisecond
		cl := newClient(a, cfg)
		defer cl.Close()
		go func() {
			br := bufio.NewReader(b)
			frame := make([]byte, 0, 256)
			readFrame(br, frame, DefaultMaxFrame) // consume the request
			b.Write(data)
			b.Close()
		}()
		y := make([]float64, 4)
		std := make([]float64, 4)
		// Whatever the server answered — valid, truncated, corrupted or
		// nothing — the query must resolve within the deadline grace.
		cl.QueryInto("m", []float64{1}, y, std, time.Now().Add(50*time.Millisecond))
	})
}

func netPipe() (net.Conn, net.Conn) { return net.Pipe() }

// FuzzArtifactFrames fuzzes the artifact control-plane decoders — the
// frames a router's mirror loop and placement pushes ride on. Beyond
// never panicking, a body that parses must have internally consistent
// geometry (key/data exactly fill the body) and a wire-legal status:
// an undefined status byte must kill the frame, not flow into the
// response demux.
func FuzzArtifactFrames(f *testing.F) {
	af, err := appendArtFetch(nil, 7, 3, FlagArtStat, "tenant/shard-0")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(af[lenPrefix:])
	f.Add(appendArtData(nil, 7, 3, StatusOK, []byte("payload"))[lenPrefix:])
	f.Add(appendArtData(nil, 7, 0, StatusUnknownTenant, nil)[lenPrefix:])
	ap, err := appendArtPush(nil, 7, 3, 0, "tenant/shard-1", []byte("weights"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(ap[lenPrefix:])
	cold, err := appendArtPush(nil, 9, 0, FlagArtCold, "tenant", nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(cold[lenPrefix:])
	for cut := 0; cut < len(ap)-lenPrefix; cut += 5 {
		f.Add(ap[lenPrefix : lenPrefix+cut])
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		if a, err := parseArtFetch(data); err == nil {
			if len(a.key) == 0 || len(a.key) != len(data)-artFetchHeaderLen {
				t.Fatalf("fetch key %d bytes from a %d-byte body", len(a.key), len(data))
			}
		}
		if a, err := parseArtData(data); err == nil {
			if a.status > StatusError {
				t.Fatalf("undefined status %d accepted", a.status)
			}
			if len(a.data) != len(data)-artDataHeaderLen {
				t.Fatalf("data %d bytes from a %d-byte body", len(a.data), len(data))
			}
		}
		if a, err := parseArtPush(data); err == nil {
			if len(a.key) == 0 || artPushHeaderLen+len(a.key)+len(a.data) != len(data) {
				t.Fatalf("push key %d + data %d bytes from a %d-byte body",
					len(a.key), len(a.data), len(data))
			}
			if a.flags&FlagArtCold != 0 && (len(a.data) != 0 || a.gen != 0) {
				t.Fatal("cold push accepted with payload or generation")
			}
		}
	})
}
