package netserve

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fleet"
	"repro/internal/serve"
)

// Config tunes a Server. The zero value is not usable: Fleet is required.
type Config struct {
	// Fleet is the multi-tenant dispatch plane every decoded request is
	// fed into (required).
	Fleet *fleet.Fleet
	// WorkersPerConn is the per-connection dispatch concurrency: how many
	// of one connection's bursts may sit inside coalescer gathers at
	// once (default 32). The bound is per connection by design — a slow
	// tenant saturating its callers' workers stalls only the connections
	// that talk to it; neighbours keep their own workers.
	WorkersPerConn int
	// MaxBurst caps how many contiguous same-tenant frames the reader
	// gathers into one fleet burst (default 64). A burst crosses the
	// fleet as a single multi-row submission — one coalescer waiter, one
	// channel hop and one writer flush for the whole pipeline of a
	// multiplexing client — so this is the server-side mirror of the
	// coalescer's MaxBatch.
	MaxBurst int
	// MaxFrame caps the accepted request-frame body size (default 64KiB);
	// larger frames kill the connection before their payload is read.
	MaxFrame int
	// ReadBuffer / WriteBuffer size each connection's buffered reader and
	// writer (default 32KiB each) — large enough that a coalesced batch's
	// requests arrive in one read syscall and its responses leave in one
	// write.
	ReadBuffer, WriteBuffer int
	// FlushSpins is how many scheduler yields the response writer spends
	// waiting for batch peers before flushing anyway (default 2). It only
	// applies when a just-written burst reports coalesced peers beyond
	// its own rows (Result.Batch > burst size); self-contained bursts
	// always flush immediately.
	FlushSpins int
	// ReadTimeout bounds each frame read: a connection that goes silent
	// mid-frame for longer is torn down. 0 (the default) disables it —
	// idle-but-healthy connections are normal for request/response
	// clients, so this is opt-in.
	ReadTimeout time.Duration
	// WriteTimeout bounds each response write and flush (default 10s).
	// Without it a peer that stops reading stalls this connection's
	// writer forever, pinning its pooled bursts and — through the
	// in-flight bound — eventually its reader. A stall past the deadline
	// counts in Stats.WriteStalls and kills the connection. Negative
	// disables.
	WriteTimeout time.Duration
	// MaxConnInFlight bounds how many decoded-but-unanswered requests one
	// connection may hold (default 1024). At the bound the reader stops
	// decoding until responses drain, so a fast writer cannot run the
	// server out of pooled request state through a slow-reading peer.
	MaxConnInFlight int
	// Artifacts, when set, serves artifact-fetch frames from the store
	// (typically a *registry.Registry) — the over-the-wire pull a router
	// mirror or a freshly placed worker warm-starts from. Nil treats the
	// frame type as a protocol violation.
	Artifacts ArtifactStore
	// Install, when set, accepts artifact-push frames: the sink installs
	// pushed generations (or cold-places a tenant) so a router can move a
	// placement onto this worker without retraining. Nil treats the frame
	// type as a protocol violation.
	Install ArtifactSink
	// MaxArtifactFrame caps artifact frame bodies (default
	// DefaultMaxArtifactFrame). Only consulted when Artifacts or Install
	// is set; query frames stay bounded by MaxFrame either way.
	MaxArtifactFrame int
}

func (c *Config) fill() {
	if c.WorkersPerConn <= 0 {
		c.WorkersPerConn = 32
	}
	if c.MaxBurst <= 0 {
		c.MaxBurst = 64
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.ReadBuffer <= 0 {
		c.ReadBuffer = 32 << 10
	}
	if c.WriteBuffer <= 0 {
		c.WriteBuffer = 32 << 10
	}
	if c.FlushSpins <= 0 {
		c.FlushSpins = 2
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.WriteTimeout < 0 {
		c.WriteTimeout = 0
	}
	if c.MaxConnInFlight <= 0 {
		c.MaxConnInFlight = 1024
	}
	if c.MaxArtifactFrame <= 0 {
		c.MaxArtifactFrame = DefaultMaxArtifactFrame
	}
}

// Stats is a snapshot of server-wide wire counters.
type Stats struct {
	// Conns counts connections accepted since start; Open is the
	// instantaneous open-connection count.
	Conns, Open int64
	// Requests counts request frames decoded; Responses counts response
	// frames written (every decoded request produces exactly one).
	Requests, Responses int64
	// Flushes counts buffered-writer flushes; Responses/Flushes is the
	// write-coalescing factor the batch-aware flush path achieves.
	Flushes int64
	// ProtoErrors counts connections killed by malformed frames.
	ProtoErrors int64
	// WriteStalls counts connections killed by the write-stall watchdog:
	// a response write or flush that sat blocked past WriteTimeout.
	WriteStalls int64
}

// reqCtx is one in-flight request's pooled state: the decoded row and the
// encoded response frame. It is leased by the connection reader, answered
// by a worker through its burst, and recycled by the response writer —
// never shared, never escaping.
type reqCtx struct {
	id    uint64
	flags byte
	x     []float64
	out   []byte // encoded response frame, length prefix included
	// aux is extra response payload written straight after out — the
	// zero-copy splice of an mmap'd artifact whose frame length prefix
	// (in out) already covers it. Nil on the query path.
	aux []byte
}

// burst is a run of contiguous same-tenant requests the reader gathered
// from one connection, submitted to the fleet as a single multi-row
// query. Pooled; its answer callback is a method value minted once per
// burst object so the steady state allocates nothing.
type burst struct {
	name  string // interned tenant name
	reqs  []*reqCtx
	rows  [][]float64 // rows[i] aliases reqs[i].x
	dls   []int64     // unix-nano deadlines, 0 = none
	hasDL bool
	// maxBatch is the largest coalesced batch any of the burst's rows
	// reported — the writer's flush hint: peers beyond this burst mean
	// more responses are imminent on sibling connections.
	maxBatch int
	each     func(i int, res serve.Result, err error)

	// Artifact-op fields: a burst with artOp != 0 carries exactly one
	// artifact request instead of query rows. Key and payload are copied
	// off the read buffer — the control plane buys simplicity with
	// allocations the query path never makes.
	artOp    byte // 0 = query burst, else frameArtFetch / frameArtPush
	artFlags byte
	artGen   uint64
	artKey   string
	artData  []byte
}

func newBurst() *burst {
	bu := &burst{}
	bu.each = bu.answer
	return bu
}

// add appends one decoded request to the burst, taking over rc.
func (bu *burst) add(rc *reqCtx, req request) {
	rc.id = req.id
	rc.flags = req.flags
	rc.x = decodeFloats(rc.x[:0], req.x)
	rc.out = rc.out[:0]
	bu.reqs = append(bu.reqs, rc)
	bu.rows = append(bu.rows, rc.x)
	bu.dls = append(bu.dls, req.deadline)
	if req.deadline != 0 {
		bu.hasDL = true
	}
}

// answer encodes row i's result (or its per-row serving failure) into the
// request's response frame. It runs inside the fleet's delivery callback,
// where res.Y/res.Std alias pooled batch rows — encoding immediately is
// what lets the server skip a staging copy entirely.
func (bu *burst) answer(i int, res serve.Result, err error) {
	rc := bu.reqs[i]
	if res.Batch > bu.maxBatch {
		bu.maxBatch = res.Batch
	}
	switch {
	case err == nil:
		std := res.Std
		if rc.flags&FlagNoStd != 0 {
			std = nil
		}
		rc.out = appendResponse(rc.out[:0], rc.id, StatusOK, byte(res.Src), res.Y, std, "")
	case errors.Is(err, fleet.ErrOverloaded):
		rc.out = appendResponse(rc.out[:0], rc.id, StatusRetry, 0, nil, nil, "")
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		rc.out = appendResponse(rc.out[:0], rc.id, StatusExpired, 0, nil, nil, "")
	case errors.Is(err, fleet.ErrUnknownTenant):
		rc.out = appendResponse(rc.out[:0], rc.id, StatusUnknownTenant, 0, nil, nil, "")
	default:
		rc.out = appendResponse(rc.out[:0], rc.id, StatusError, byte(res.Src), nil, nil, err.Error())
	}
}

// failRemaining answers every not-yet-answered row — with err's status
// mapping when err is non-nil, else with a StatusError carrying msg. The
// backstop for whole-burst failures and escaped panics, upholding the
// never-silently-dropped contract.
func (bu *burst) failRemaining(err error, msg string) {
	for i, rc := range bu.reqs {
		if len(rc.out) != 0 {
			continue
		}
		if err != nil {
			bu.answer(i, serve.Result{}, err)
		} else {
			rc.out = appendResponse(rc.out[:0], rc.id, StatusError, 0, nil, nil, msg)
		}
	}
}

// Server serves a Fleet over TCP. All exported methods are safe for
// concurrent use.
type Server struct {
	cfg Config
	fl  *fleet.Fleet

	pool  sync.Pool // *reqCtx
	bpool sync.Pool // *burst

	mu     sync.Mutex
	lns    map[net.Listener]struct{}
	conns  map[*serverConn]struct{}
	closed bool
	wg     sync.WaitGroup // one per live connection handler

	draining atomic.Bool

	conns64, open, reqs, resps, flushes, protoErrs, stalls atomic.Int64

	// Pool-lease accounting: leased-minus-released must return to zero
	// once every connection drains. The leak tests assert it; a nonzero
	// residue means a teardown path lost pooled state.
	rcLeases, rcReleases, buLeases, buReleases atomic.Int64
}

// NewServer builds a server over cfg.Fleet. It panics on a nil fleet —
// that is a wiring bug, not a runtime condition.
func NewServer(cfg Config) *Server {
	if cfg.Fleet == nil {
		panic("netserve: Config.Fleet is required")
	}
	cfg.fill()
	return &Server{
		cfg:   cfg,
		fl:    cfg.Fleet,
		lns:   make(map[net.Listener]struct{}),
		conns: make(map[*serverConn]struct{}),
	}
}

// Stats returns the server-wide wire counters.
func (s *Server) Stats() Stats {
	return Stats{
		Conns:       s.conns64.Load(),
		Open:        s.open.Load(),
		Requests:    s.reqs.Load(),
		Responses:   s.resps.Load(),
		Flushes:     s.flushes.Load(),
		ProtoErrors: s.protoErrs.Load(),
		WriteStalls: s.stalls.Load(),
	}
}

// poolBalance reports outstanding pooled objects: request contexts and
// bursts leased but not yet recycled. Both are zero once every connection
// has drained.
func (s *Server) poolBalance() (reqs, bursts int64) {
	return s.rcLeases.Load() - s.rcReleases.Load(),
		s.buLeases.Load() - s.buReleases.Load()
}

// lease takes a recycled request context (or mints one).
func (s *Server) lease() *reqCtx {
	s.rcLeases.Add(1)
	rc, _ := s.pool.Get().(*reqCtx)
	if rc == nil {
		rc = &reqCtx{}
	}
	return rc
}

func (s *Server) release(rc *reqCtx) {
	s.rcReleases.Add(1)
	s.pool.Put(rc)
}

// leaseBurst takes a recycled burst (or mints one) reset for gathering.
func (s *Server) leaseBurst() *burst {
	s.buLeases.Add(1)
	bu, _ := s.bpool.Get().(*burst)
	if bu == nil {
		bu = newBurst()
	}
	bu.name = ""
	bu.reqs = bu.reqs[:0]
	bu.rows = bu.rows[:0]
	bu.dls = bu.dls[:0]
	bu.hasDL = false
	bu.maxBatch = 0
	bu.artOp = 0
	bu.artFlags = 0
	bu.artGen = 0
	bu.artKey = ""
	bu.artData = nil
	return bu
}

func (s *Server) releaseBurst(bu *burst) {
	// Drop artifact payload references now, not at next lease — a pooled
	// burst must not pin megabytes of pushed artifact.
	bu.artKey = ""
	bu.artData = nil
	s.buReleases.Add(1)
	s.bpool.Put(bu)
}

// Serve accepts connections on ln until Close (or a listener error) and
// handles each on its own goroutine set. It blocks; run it in a
// goroutine. Multiple Serve calls on different listeners are allowed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			delete(s.lns, ln)
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		if tc, ok := c.(*net.TCPConn); ok {
			// Responses are small frames on a request/response cadence:
			// Nagle would hold them hostage to delayed ACKs.
			tc.SetNoDelay(true)
		}
		s.conns64.Add(1)
		s.open.Add(1)
		cn := &serverConn{
			srv:   s,
			c:     c,
			work:  make(chan *burst, 2*s.cfg.WorkersPerConn),
			wq:    make(chan *burst, 2*s.cfg.WorkersPerConn),
			sem:   make(chan struct{}, s.cfg.MaxConnInFlight),
			names: make(map[string]string),
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			s.open.Add(-1)
			return ErrServerClosed
		}
		s.conns[cn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go cn.handle()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("netserve: server closed")

// BeginDrain marks the server draining, flipping /readyz not-ready before
// any listener closes — the load balancer stops routing new work to this
// replica while it still answers everything in flight. Close calls it
// implicitly; calling it ahead of Close gives the balancer a head start.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain (or Close) has run.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close drains the server: listeners stop accepting, every connection
// stops reading new frames, requests already decoded are served and their
// responses flushed, then the connections close. Idempotent. The fleet is
// not touched — it belongs to the caller.
func (s *Server) Close() error {
	s.draining.Store(true)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	for ln := range s.lns {
		ln.Close()
	}
	for cn := range s.conns {
		cn.closeRead()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// serverConn is one accepted connection: a reader goroutine decoding
// frames into pooled bursts, WorkersPerConn workers feeding the fleet,
// and a writer goroutine performing batch-aware flush coalescing.
type serverConn struct {
	srv  *Server
	c    net.Conn
	work chan *burst // reader → workers
	wq   chan *burst // workers → writer
	// sem holds one token per decoded-but-unanswered request (cap
	// MaxConnInFlight): acquired by the reader before leasing a request
	// context, released by the writer after recycling it.
	sem chan struct{}
	// readDone flips before the read side shuts so the reader's periodic
	// SetReadDeadline(now+ReadTimeout) cannot revive a connection that
	// closeRead already expired via its deadline fallback.
	readDone atomic.Bool
	// names interns tenant-name bytes → string once per connection, so
	// the steady-state lookup (m[string(frameBytes)], which the compiler
	// performs without materializing the string) never allocates.
	names map[string]string

	workers sync.WaitGroup
	writer  sync.WaitGroup
}

// closeRead shuts the connection's read side so the reader goroutine
// unblocks and the drain sequence starts; in-flight requests still get
// their responses written.
func (cn *serverConn) closeRead() {
	cn.readDone.Store(true)
	type readCloser interface{ CloseRead() error }
	if rc, ok := cn.c.(readCloser); ok {
		rc.CloseRead()
		return
	}
	cn.c.SetReadDeadline(time.Now())
}

// handle runs the connection to completion: it is the reader goroutine,
// and it owns the teardown ordering — reader stops, workers drain, writer
// flushes, socket closes. A panic anywhere in this connection's pipeline
// is contained to the connection.
func (cn *serverConn) handle() {
	s := cn.srv
	defer s.wg.Done()
	defer s.open.Add(-1)
	for i := 0; i < s.cfg.WorkersPerConn; i++ {
		cn.workers.Add(1)
		go cn.workLoop()
	}
	cn.writer.Add(1)
	go cn.writeLoop()

	cn.readLoop()

	close(cn.work)
	cn.workers.Wait()
	close(cn.wq)
	cn.writer.Wait()
	cn.c.Close()
	s.mu.Lock()
	delete(s.conns, cn)
	s.mu.Unlock()
}

// readLoop decodes request frames until EOF, a read error, or a protocol
// violation (after which the stream framing can no longer be trusted and
// the connection dies). Contiguous frames for the same tenant — the
// steady shape a multiplexing client's pipelined flush produces — are
// gathered into one burst while complete frames are already buffered, so
// a 16-deep pipeline crosses the fleet as one submission instead of 16.
func (cn *serverConn) readLoop() {
	s := cn.srv
	var bu *burst
	defer func() {
		if pv := recover(); pv != nil {
			s.protoErrs.Add(1)
		}
		if bu != nil {
			// Serve whatever was decoded before the stream died.
			cn.work <- bu
		}
	}()
	br := bufio.NewReaderSize(cn.c, s.cfg.ReadBuffer)
	buf := make([]byte, 0, 4096)
	readMax := s.cfg.MaxFrame
	if (s.cfg.Artifacts != nil || s.cfg.Install != nil) && s.cfg.MaxArtifactFrame > readMax {
		// Artifact frames dwarf query frames; the parsers still hold
		// query bodies to MaxFrame-compatible geometry.
		readMax = s.cfg.MaxArtifactFrame
	}
	for {
		if s.cfg.ReadTimeout > 0 {
			if cn.readDone.Load() {
				return
			}
			cn.c.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		}
		var err error
		buf, err = readFrame(br, buf, readMax)
		if err != nil {
			if err == errOversized || err == errEmptyFrame {
				s.protoErrs.Add(1)
			}
			return
		}
		if len(buf) >= 2 && buf[1] != frameQuery {
			// Control-plane frame: submit the gathered query burst first,
			// then hand the artifact op through the same worker pipeline.
			if bu != nil {
				cn.work <- bu
				bu = nil
			}
			if !cn.readArtFrame(buf) {
				return
			}
			continue
		}
		if len(buf) > s.cfg.MaxFrame {
			// The raised artifact read cap never loosens the query bound.
			s.protoErrs.Add(1)
			return
		}
		req, err := parseRequest(buf)
		if err != nil {
			s.protoErrs.Add(1)
			return
		}
		s.reqs.Add(1)
		name := cn.intern(req.tenant)
		if bu != nil && (bu.name != name || len(bu.reqs) >= s.cfg.MaxBurst) {
			cn.work <- bu
			bu = nil
		}
		select {
		case cn.sem <- struct{}{}:
		default:
			// In-flight bound reached: submit what is gathered so its
			// completions can free tokens, then block for one.
			if bu != nil {
				cn.work <- bu
				bu = nil
			}
			cn.sem <- struct{}{}
		}
		if bu == nil {
			bu = s.leaseBurst()
			bu.name = name
		}
		bu.add(s.lease(), req)
		if !frameBuffered(br, s.cfg.MaxFrame) {
			// Nothing more to gather without blocking: submit now.
			cn.work <- bu
			bu = nil
		}
	}
}

// frameBuffered reports whether a complete frame is already sitting in
// the read buffer — i.e. whether the reader can gather one more request
// without blocking. Malformed prefixes return false so the blocking read
// path surfaces the framing error.
func frameBuffered(br *bufio.Reader, max int) bool {
	n := br.Buffered()
	if n < lenPrefix {
		return false
	}
	hdr, _ := br.Peek(lenPrefix)
	blen := int(binary.BigEndian.Uint32(hdr))
	if blen <= 0 || blen > max {
		return false
	}
	return n >= lenPrefix+blen
}

// readArtFrame decodes one artifact frame and submits it through the
// worker pipeline as a single-request burst. False means the frame was
// malformed or its hook is not configured — the stream dies.
func (cn *serverConn) readArtFrame(buf []byte) bool {
	s := cn.srv
	bu := (*burst)(nil)
	switch buf[1] {
	case frameArtFetch:
		if s.cfg.Artifacts == nil {
			s.protoErrs.Add(1)
			return false
		}
		af, err := parseArtFetch(buf)
		if err != nil {
			s.protoErrs.Add(1)
			return false
		}
		cn.sem <- struct{}{}
		bu = s.leaseBurst()
		bu.artOp = frameArtFetch
		bu.artFlags = af.flags
		bu.artGen = af.gen
		bu.artKey = string(af.key)
		rc := s.lease()
		rc.id = af.id
		rc.flags = 0
		rc.out = rc.out[:0]
		rc.aux = nil
		bu.reqs = append(bu.reqs, rc)
	case frameArtPush:
		if s.cfg.Install == nil {
			s.protoErrs.Add(1)
			return false
		}
		ap, err := parseArtPush(buf)
		if err != nil {
			s.protoErrs.Add(1)
			return false
		}
		cn.sem <- struct{}{}
		bu = s.leaseBurst()
		bu.artOp = frameArtPush
		bu.artFlags = ap.flags
		bu.artGen = ap.gen
		bu.artKey = string(ap.key)
		if ap.flags&FlagArtCold == 0 {
			// Copy off the read buffer; nil stays the cold-place marker.
			bu.artData = append([]byte{}, ap.data...)
		}
		rc := s.lease()
		rc.id = ap.id
		rc.flags = 0
		rc.out = rc.out[:0]
		rc.aux = nil
		bu.reqs = append(bu.reqs, rc)
	default:
		s.protoErrs.Add(1)
		return false
	}
	s.reqs.Add(1)
	cn.work <- bu
	return true
}

// intern maps tenant-name bytes to a stable string, allocating only the
// first time a name is seen on this connection.
func (cn *serverConn) intern(b []byte) string {
	if s, ok := cn.names[string(b)]; ok { // no-alloc map lookup
		return s
	}
	s := string(b)
	cn.names[s] = s
	return s
}

// workLoop serves decoded bursts through the fleet. Each worker blocks
// inside the tenant coalescer's gather with its peers from every other
// connection — this is where cross-connection batching happens.
func (cn *serverConn) workLoop() {
	defer cn.workers.Done()
	for bu := range cn.work {
		cn.serveBurst(bu)
		cn.wq <- bu
	}
}

// serveBurst answers a burst's rows in place. All fleet-level failures
// map to status frames — a request is never dropped without an answer —
// and a panic that escapes the fleet's own containment is caught here,
// poisoning only this burst.
func (cn *serverConn) serveBurst(bu *burst) {
	if bu.artOp != 0 {
		cn.serveArt(bu)
		return
	}
	defer func() {
		if pv := recover(); pv != nil {
			bu.failRemaining(nil, fmt.Sprint(pv))
		}
	}()
	var dls []int64
	if bu.hasDL {
		dls = bu.dls
	}
	if err := cn.srv.fl.QueryRows(bu.name, bu.rows, dls, bu.each); err != nil {
		// Whole-burst rejection (unknown tenant, closed fleet, bad row
		// geometry): every row still gets its status frame.
		bu.failRemaining(err, "")
	}
}

// serveArt answers a burst's single artifact op. A fetch of a committed
// generation stages only the 24-byte header in pooled scratch and hands
// the store's bytes (typically a live registry mmap) to the writer as
// the aux splice — the artifact crosses from page cache to socket
// without an intermediate copy. Hook panics poison only this op.
func (cn *serverConn) serveArt(bu *burst) {
	s := cn.srv
	rc := bu.reqs[0]
	defer func() {
		if pv := recover(); pv != nil {
			rc.aux = nil
			rc.out = appendArtData(rc.out[:0], rc.id, 0, StatusError, []byte(fmt.Sprint(pv)))
		}
	}()
	switch bu.artOp {
	case frameArtFetch:
		if bu.artFlags&FlagArtStat != 0 {
			gen, ok := s.cfg.Artifacts.StatArtifact(bu.artKey)
			if ok {
				rc.out = appendArtData(rc.out[:0], rc.id, gen, StatusOK, nil)
			} else {
				rc.out = appendArtData(rc.out[:0], rc.id, 0, StatusUnknownTenant, nil)
			}
			return
		}
		data, gen, ok, err := s.cfg.Artifacts.FetchArtifact(bu.artKey, bu.artGen)
		switch {
		case err != nil:
			rc.out = appendArtData(rc.out[:0], rc.id, 0, StatusError, []byte(err.Error()))
		case !ok:
			rc.out = appendArtData(rc.out[:0], rc.id, 0, StatusUnknownTenant, nil)
		default:
			rc.out = appendArtDataHeader(rc.out[:0], rc.id, gen, StatusOK, len(data))
			rc.aux = data
		}
	case frameArtPush:
		if err := s.cfg.Install.InstallArtifact(bu.artKey, bu.artGen, bu.artData); err != nil {
			rc.out = appendArtData(rc.out[:0], rc.id, 0, StatusError, []byte(err.Error()))
		} else {
			rc.out = appendArtData(rc.out[:0], rc.id, bu.artGen, StatusOK, nil)
		}
	}
}

// writeLoop writes completed bursts with batch-aware flush coalescing:
// after writing a burst's responses it greedily drains everything already
// queued, and while the just-written rows report coalesced batch peers
// beyond the burst itself it donates up to FlushSpins scheduler yields
// for those peers' workers to enqueue — so the responses of one
// micro-batch leave in one buffered flush instead of one syscall each. A
// write error degrades the loop to a pure drain (requests still recycle;
// the reader is unblocked by closing the socket) so the connection tears
// down without losing pooled state.
func (cn *serverConn) writeLoop() {
	defer cn.writer.Done()
	s := cn.srv
	bw := bufio.NewWriterSize(cn.c, s.cfg.WriteBuffer)
	var werr error
	write := func(bu *burst) bool {
		more := bu.maxBatch > len(bu.reqs)
		if werr == nil && s.cfg.WriteTimeout > 0 {
			cn.c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		}
		for _, rc := range bu.reqs {
			if werr == nil {
				if _, werr = bw.Write(rc.out); werr != nil {
					// The peer is gone (or stalled past the write
					// deadline): stop the reader too.
					cn.noteWriteError(werr)
				}
				if werr == nil && len(rc.aux) > 0 {
					// Artifact splice: a large aux bypasses the bufio
					// copy and goes straight to the socket.
					if _, werr = bw.Write(rc.aux); werr != nil {
						cn.noteWriteError(werr)
					}
				}
				s.resps.Add(1)
			}
			rc.aux = nil
			s.release(rc)
			<-cn.sem
		}
		s.releaseBurst(bu)
		return more
	}
	for bu := range cn.wq {
		expectMore := write(bu)
		spins := 0
	drain:
		for {
			select {
			case bu2, ok := <-cn.wq:
				if !ok {
					break drain
				}
				expectMore = write(bu2) || expectMore
				spins = 0
			default:
				if expectMore && spins < s.cfg.FlushSpins {
					spins++
					runtime.Gosched()
					continue
				}
				break drain
			}
		}
		if werr == nil {
			if s.cfg.WriteTimeout > 0 {
				cn.c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			}
			if werr = bw.Flush(); werr != nil {
				cn.noteWriteError(werr)
			} else {
				s.flushes.Add(1)
			}
		}
	}
	if werr == nil {
		if s.cfg.WriteTimeout > 0 {
			cn.c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		}
		bw.Flush()
	}
}

// noteWriteError classifies a response-path write failure — a deadline
// miss is a write stall, anything else a dead peer — and stops the reader
// so the connection tears down.
func (cn *serverConn) noteWriteError(err error) {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		cn.srv.stalls.Add(1)
	}
	cn.closeRead()
}
