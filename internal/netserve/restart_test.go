package netserve

import (
	"math"
	"net"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/registry"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// restartOracle is a deterministic 2→1 oracle counting Run calls.
type restartOracle struct{ runs atomic.Int64 }

func (o *restartOracle) Dims() (int, int) { return 2, 1 }
func (o *restartOracle) Run(x []float64) ([]float64, error) {
	o.runs.Add(1)
	return []float64{math.Sin(2*x[0]) + 0.4*x[1]}, nil
}

func restartWrapper(oracle core.Oracle, seed uint64) *core.ShardedWrapper {
	fac := core.NewNNSurrogateFactory(2, 1, []int{8}, 0.1, xrand.New(seed), func(s *core.NNSurrogate) {
		s.Epochs = 40
		s.MCPasses = 4
	})
	return core.NewShardedWrapper(oracle, fac, core.ShardedConfig{
		Router:          core.HashRouter{Shards: 2},
		MinTrainSamples: 8,
		UQThreshold:     1e9,
	})
}

// TestRestartRecoverySoak is the crash-recovery drill for the whole
// stack: a wire-served fleet publishes its trained generations into a
// registry; the process "dies" — including SIGKILL-equivalent deaths
// partway through publishing a new generation, emulated by a
// fault-injected filesystem that kills the publish protocol at assorted
// ops; a second incarnation on the same registry directory and wire
// address warm-starts every shard from the last durable generation and
// serves immediately with zero retraining and zero oracle traffic,
// while the resilient client from the first incarnation reconnects on
// its own.
func TestRestartRecoverySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	dir := filepath.Join(t.TempDir(), "reg")

	// ----- incarnation 1: cold start, train, publish, serve -----
	reg1, err := registry.Open(registry.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	oracle1 := &restartOracle{}
	w1 := restartWrapper(oracle1, 1)
	fl1 := fleet.New(fleet.Config{})
	if err := fl1.Register("pot", w1); err != nil {
		t.Fatal(err)
	}
	if _, err := fl1.BindRegistry("pot", fleet.RegistryConfig{
		Registry: reg1,
		OnError:  func(err error) { t.Error(err) },
	}); err != nil {
		t.Fatal(err)
	}
	design := tensor.NewMatrix(60, 2)
	rng := xrand.New(5)
	for i := 0; i < design.Rows; i++ {
		row := design.Row(i)
		row[0], row[1] = rng.Range(-1, 1), rng.Range(-1, 1)
	}
	if err := w1.Pretrain(design); err != nil {
		t.Fatal(err)
	}
	for si := 0; si < 2; si++ {
		if gen, ok := reg1.CurrentGeneration(registry.ShardKey("pot", si)); !ok || gen != 1 {
			t.Fatalf("shard %d published gen %d ok=%v, want 1", si, gen, ok)
		}
	}

	srv1 := NewServer(Config{Fleet: fl1})
	ln1, err := newLoopback()
	if err != nil {
		t.Fatal(err)
	}
	addr := ln1.Addr().String()
	go srv1.Serve(ln1)

	rc, err := DialResilient(addr, ResilientConfig{
		Conns:            2,
		MaxAttempts:      4,
		RetryBackoff:     time.Millisecond,
		ReconnectBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	y, std := make([]float64, 1), make([]float64, 1)
	query := func(i int) error {
		x := []float64{-0.8 + 0.05*float64(i%32), 0.3}
		_, qerr := rc.QueryInto("pot", x, y, std, time.Time{})
		return qerr
	}
	for i := 0; i < 32; i++ {
		if err := query(i); err != nil {
			t.Fatalf("incarnation 1 query %d: %v", i, err)
		}
	}

	// ----- the process dies. The wire goes dark mid-conversation. -----
	srv1.Close()
	fl1.Close()
	reg1.Close()

	// ----- SIGKILL-equivalent deaths mid-publish of generation 2 -----
	// Re-publishing the live model through a filesystem that crashes at
	// op k leaves exactly the on-disk wreckage of a process killed at
	// that point in the protocol: torn temp files, unsynced renames,
	// durable-but-uncommitted orphans.
	regClean, err := registry.Open(registry.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	sur, base, _, err := registry.LoadSurrogate(regClean, registry.ShardKey("pot", 0), xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 3, 6, 8, 11} {
		ffs := chaos.NewFaultFS(nil)
		ffs.Arm(k)
		regF, err := registry.Open(registry.Config{Dir: dir, FS: ffs})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := registry.PublishSurrogate(regF, registry.ShardKey("pot", 0), sur, base); err == nil {
			t.Fatalf("publish survived a crash at op %d", k)
		}
		regF.Close()
	}
	regClean.Close()

	// ----- incarnation 2: same dir, same address, fresh everything -----
	reg2, err := registry.Open(registry.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	oracle2 := &restartOracle{}
	w2 := restartWrapper(oracle2, 2)
	fl2 := fleet.New(fleet.Config{})
	defer fl2.Close()
	if err := fl2.Register("pot", w2); err != nil {
		t.Fatal(err)
	}
	warmed, err := fl2.BindRegistry("pot", fleet.RegistryConfig{
		Registry: reg2,
		OnError:  func(err error) { t.Error(err) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if warmed != 2 {
		t.Fatalf("restart warmed %d shards, want 2", warmed)
	}
	st, _ := fl2.TenantStats("pot")
	if st.RegistryGeneration != 1 {
		t.Fatalf("restart serves registry generation %d, want the last durable 1", st.RegistryGeneration)
	}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(Config{Fleet: fl2})
	go srv2.Serve(ln2)
	defer srv2.Close()

	// The resilient client reconnects on its own; give its repair loop a
	// bounded window to find the reborn server.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := query(0); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("resilient client never reconnected to the restarted server")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 0; i < 64; i++ {
		if err := query(i); err != nil {
			t.Fatalf("post-restart query %d: %v", i, err)
		}
	}

	// Zero retraining, zero oracle traffic: every post-restart answer
	// came from the warm-started generation.
	if n := oracle2.runs.Load(); n != 0 {
		t.Fatalf("restarted process ran the oracle %d times", n)
	}
	for si, sh := range w2.Status() {
		if sh.Generation != -1 {
			t.Fatalf("shard %d generation %d after restart, want -1 (warm)", si, sh.Generation)
		}
	}
	if n := w2.TrainingSetSize(); n != 0 {
		t.Fatalf("restarted process accumulated %d training samples", n)
	}
}
