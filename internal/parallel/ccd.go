package parallel

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/xrand"
)

// MFProblem is low-rank matrix factorization R ≈ U·Vᵀ on observed entries,
// the Cyclic Coordinate Descent kernel of §III-A (the workload behind the
// model-rotation computation pattern of refs [40],[41]).
type MFProblem struct {
	Rows, Cols, Rank int
	// Entries are the observed (i, j, value) ratings.
	Entries []MFEntry
	L2      float64
}

// MFEntry is one observed matrix cell.
type MFEntry struct {
	I, J int
	V    float64
}

// NewRandomMFProblem plants a rank-r factorization plus noise and observes
// a fraction of the cells.
func NewRandomMFProblem(rows, cols, rank int, obsFrac, noise float64, rng *xrand.Rand) *MFProblem {
	u := make([][]float64, rows)
	v := make([][]float64, cols)
	for i := range u {
		u[i] = make([]float64, rank)
		for k := range u[i] {
			u[i][k] = rng.NormFloat64() / math.Sqrt(float64(rank))
		}
	}
	for j := range v {
		v[j] = make([]float64, rank)
		for k := range v[j] {
			v[j][k] = rng.NormFloat64() / math.Sqrt(float64(rank))
		}
	}
	p := &MFProblem{Rows: rows, Cols: cols, Rank: rank, L2: 1e-3}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < obsFrac {
				val := 0.0
				for k := 0; k < rank; k++ {
					val += u[i][k] * v[j][k]
				}
				p.Entries = append(p.Entries, MFEntry{I: i, J: j, V: val + rng.Normal(0, noise)})
			}
		}
	}
	return p
}

// MFModel is the factor state.
type MFModel struct {
	U, V [][]float64
	Rank int
}

// NewMFModel initializes small random factors.
func NewMFModel(p *MFProblem, rng *xrand.Rand) *MFModel {
	m := &MFModel{Rank: p.Rank}
	m.U = make([][]float64, p.Rows)
	for i := range m.U {
		m.U[i] = make([]float64, p.Rank)
		for k := range m.U[i] {
			m.U[i][k] = rng.Normal(0, 0.1)
		}
	}
	m.V = make([][]float64, p.Cols)
	for j := range m.V {
		m.V[j] = make([]float64, p.Rank)
		for k := range m.V[j] {
			m.V[j][k] = rng.Normal(0, 0.1)
		}
	}
	return m
}

// RMSE evaluates the model on the observed entries.
func (p *MFProblem) RMSE(m *MFModel) float64 {
	if len(p.Entries) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, e := range p.Entries {
		pred := 0.0
		for k := 0; k < p.Rank; k++ {
			pred += m.U[e.I][k] * m.V[e.J][k]
		}
		d := pred - e.V
		s += d * d
	}
	return math.Sqrt(s / float64(len(p.Entries)))
}

// ccdUpdateEntry applies one SGD-flavored coordinate update for an entry.
func ccdUpdateEntry(m *MFModel, e MFEntry, lr, l2 float64) {
	pred := 0.0
	for k := 0; k < m.Rank; k++ {
		pred += m.U[e.I][k] * m.V[e.J][k]
	}
	err := pred - e.V
	for k := 0; k < m.Rank; k++ {
		uk, vk := m.U[e.I][k], m.V[e.J][k]
		m.U[e.I][k] = uk - lr*(err*vk+l2*uk)
		m.V[e.J][k] = vk - lr*(err*uk+l2*vk)
	}
}

// RunCCD factorizes under the Rotation model: rows and columns are split
// into P blocks; in sub-epoch t, worker w owns the (w, (w+t) mod P) block
// of the rating matrix, so no two workers ever touch the same U row or V
// column — the lock-free disjointness that model rotation buys (§III-A).
// workers=1 is the serial baseline. Returns the RMSE trace per epoch.
func RunCCD(p *MFProblem, workers, epochs int, lr float64, seed uint64) (*MFModel, []float64, error) {
	if workers < 1 || epochs < 1 {
		return nil, nil, fmt.Errorf("parallel: invalid CCD config workers=%d epochs=%d", workers, epochs)
	}
	rng := xrand.New(seed)
	model := NewMFModel(p, rng)
	// Pre-bucket entries by (rowBlock, colBlock).
	blockOfRow := func(i int) int { return i * workers / p.Rows }
	blockOfCol := func(j int) int { return j * workers / p.Cols }
	buckets := make([][][]MFEntry, workers)
	for a := range buckets {
		buckets[a] = make([][]MFEntry, workers)
	}
	for _, e := range p.Entries {
		a, b := blockOfRow(e.I), blockOfCol(e.J)
		buckets[a][b] = append(buckets[a][b], e)
	}
	barrier := NewBarrier(workers)
	history := make([]float64, 0, epochs)
	var histMu sync.Mutex
	var wg sync.WaitGroup
	for rank := 0; rank < workers; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for ep := 0; ep < epochs; ep++ {
				for t := 0; t < workers; t++ {
					colBlock := (rank + t) % workers
					for _, e := range buckets[rank][colBlock] {
						ccdUpdateEntry(model, e, lr, p.L2)
					}
					barrier.Wait()
				}
				if rank == 0 {
					histMu.Lock()
					history = append(history, p.RMSE(model))
					histMu.Unlock()
				}
				barrier.Wait()
			}
		}(rank)
	}
	wg.Wait()
	return model, history, nil
}
