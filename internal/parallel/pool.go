package parallel

import "sync"

// ForEachBounded runs f(i) for every i in [0, n) using at most workers
// concurrent goroutines — the bounded fan-out idiom shared by the
// wrappers' oracle fallback pools, committee training and calibration
// grid scans. workers is clamped to n; workers <= 1 runs inline on the
// caller's goroutine with no spawns. f must handle its own error
// propagation (e.g. write into an index-owned results slot) and must not
// panic across goroutines. ForEachBounded returns once every f call has.
func ForEachBounded(n, workers int, f func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}
