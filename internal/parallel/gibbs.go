package parallel

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/xrand"
)

// Ising is a 2D periodic Ising model sampled by Gibbs updates: the MCMC
// kernel from the paper's list (§III-A: "Gibbs Sampling ... Markov Chain
// Monte Carlo"). Spins are stored as int32 (+1/-1) and updated atomically
// so the asynchronous (Hogwild) sweep is race-detector clean.
type Ising struct {
	N     int // lattice edge
	Beta  float64
	spins []int32
}

// NewIsing builds an N x N lattice with random spins.
func NewIsing(n int, beta float64, rng *xrand.Rand) *Ising {
	m := &Ising{N: n, Beta: beta, spins: make([]int32, n*n)}
	for i := range m.spins {
		if rng.Bernoulli(0.5) {
			m.spins[i] = 1
		} else {
			m.spins[i] = -1
		}
	}
	return m
}

func (m *Ising) idx(i, j int) int {
	n := m.N
	return ((j%n)+n)%n*n + ((i%n)+n)%n
}

// neighborSum returns the sum of the four neighbor spins (atomic reads).
func (m *Ising) neighborSum(i, j int) int32 {
	return atomic.LoadInt32(&m.spins[m.idx(i+1, j)]) +
		atomic.LoadInt32(&m.spins[m.idx(i-1, j)]) +
		atomic.LoadInt32(&m.spins[m.idx(i, j+1)]) +
		atomic.LoadInt32(&m.spins[m.idx(i, j-1)])
}

// gibbsUpdate resamples spin (i,j) from its conditional distribution.
func (m *Ising) gibbsUpdate(i, j int, rng *xrand.Rand) {
	h := float64(m.neighborSum(i, j))
	pUp := 1 / (1 + math.Exp(-2*m.Beta*h))
	var s int32 = -1
	if rng.Bernoulli(pUp) {
		s = 1
	}
	atomic.StoreInt32(&m.spins[m.idx(i, j)], s)
}

// Magnetization returns the mean spin in [-1, 1].
func (m *Ising) Magnetization() float64 {
	s := int32(0)
	for i := range m.spins {
		s += atomic.LoadInt32(&m.spins[i])
	}
	return float64(s) / float64(len(m.spins))
}

// Energy returns the mean energy per spin, -J * sum s_i s_j over bonds / N².
func (m *Ising) Energy() float64 {
	e := 0.0
	for j := 0; j < m.N; j++ {
		for i := 0; i < m.N; i++ {
			s := float64(m.spins[m.idx(i, j)])
			e -= s * float64(m.spins[m.idx(i+1, j)]+m.spins[m.idx(i, j+1)])
		}
	}
	return e / float64(m.N*m.N)
}

// SweepCheckerboard performs one synchronized two-color sweep: all "red"
// sites update in parallel, then all "black" sites. Because same-color
// sites are conditionally independent given the other color, this is an
// exact parallel Gibbs sampler — the Rotation-style synchronized pattern.
func (m *Ising) SweepCheckerboard(workers int, rngs []*xrand.Rand) {
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for color := 0; color < 2; color++ {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w, color int) {
				defer wg.Done()
				rng := rngs[w]
				jLo := w * m.N / workers
				jHi := (w + 1) * m.N / workers
				for j := jLo; j < jHi; j++ {
					for i := 0; i < m.N; i++ {
						if (i+j)%2 == color {
							m.gibbsUpdate(i, j, rng)
						}
					}
				}
			}(w, color)
		}
		wg.Wait()
	}
}

// SweepAsync performs one Hogwild-style sweep: workers update their row
// stripes without any color synchronization. Neighboring stripe edges race
// benignly (atomics keep it memory-safe); the stationary distribution is
// approximate, which is the Asynchronous model's trade.
func (m *Ising) SweepAsync(workers int, rngs []*xrand.Rand) {
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rngs[w]
			jLo := w * m.N / workers
			jHi := (w + 1) * m.N / workers
			for j := jLo; j < jHi; j++ {
				for i := 0; i < m.N; i++ {
					m.gibbsUpdate(i, j, rng)
				}
			}
		}(w)
	}
	wg.Wait()
}

// IsingRun samples the model for the given sweeps and returns the mean
// |magnetization| over the second half (after burn-in).
func IsingRun(n int, beta float64, sweeps, workers int, async bool, seed uint64) (float64, error) {
	if n < 4 || sweeps < 2 {
		return 0, fmt.Errorf("parallel: ising n=%d sweeps=%d too small", n, sweeps)
	}
	root := xrand.New(seed)
	m := NewIsing(n, beta, root)
	rngs := make([]*xrand.Rand, workers)
	for i := range rngs {
		rngs[i] = root.Split()
	}
	sum, cnt := 0.0, 0
	for s := 0; s < sweeps; s++ {
		if async {
			m.SweepAsync(workers, rngs)
		} else {
			m.SweepCheckerboard(workers, rngs)
		}
		if s >= sweeps/2 {
			sum += math.Abs(m.Magnetization())
			cnt++
		}
	}
	return sum / float64(cnt), nil
}
