package parallel

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// KMeansResult carries the outcome of a clustering run.
type KMeansResult struct {
	Centroids *tensor.Matrix
	// SSEHistory is the within-cluster sum of squared errors per iteration.
	SSEHistory []float64
	Iterations int
}

// KMeans runs Lloyd's algorithm with the Allreduce computation model:
// every worker assigns its shard of points to the nearest centroid and
// accumulates local (sum, count) statistics, the collective sums them, and
// all replicas recompute identical centroids (the EM-category kernel of
// §III-A). workers=1 degenerates to the serial algorithm.
func KMeans(points *tensor.Matrix, k, iters, workers int, useRing bool, seed uint64) (*KMeansResult, error) {
	if k < 1 || k > points.Rows {
		return nil, fmt.Errorf("parallel: k=%d invalid for %d points", k, points.Rows)
	}
	if workers < 1 {
		return nil, fmt.Errorf("parallel: workers=%d", workers)
	}
	dim := points.Cols
	rng := xrand.New(seed)
	// k-means++-style seeding (first centroid uniform, rest by squared
	// distance weighting) for stable convergence.
	centroids := tensor.NewMatrix(k, dim)
	first := rng.Intn(points.Rows)
	copy(centroids.Row(0), points.Row(first))
	minD2 := make([]float64, points.Rows)
	for i := range minD2 {
		minD2[i] = dist2(points.Row(i), centroids.Row(0))
	}
	for c := 1; c < k; c++ {
		idx := rng.Categorical(minD2)
		copy(centroids.Row(c), points.Row(idx))
		for i := range minD2 {
			if d := dist2(points.Row(i), centroids.Row(c)); d < minD2[i] {
				minD2[i] = d
			}
		}
	}

	// stats vector layout: k*(dim+1) floats: per-cluster coordinate sums
	// then per-cluster counts.
	statLen := k * (dim + 1)
	var central *CentralAllreducer
	var ring *RingAllreducer
	if workers > 1 {
		if useRing {
			ring = NewRingAllreducer(workers)
		} else {
			central = NewCentralAllreducer(workers, statLen)
		}
	}
	barrier := NewBarrier(workers)
	res := &KMeansResult{Iterations: iters}
	replicas := make([]*tensor.Matrix, workers)
	for r := range replicas {
		replicas[r] = centroids.Clone()
	}
	sseParts := make([]float64, workers)

	var wg sync.WaitGroup
	for rank := 0; rank < workers; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			lo := rank * points.Rows / workers
			hi := (rank + 1) * points.Rows / workers
			mine := replicas[rank]
			stats := make([]float64, statLen)
			for it := 0; it < iters; it++ {
				for j := range stats {
					stats[j] = 0
				}
				sse := 0.0
				for i := lo; i < hi; i++ {
					row := points.Row(i)
					best, bestD := 0, math.Inf(1)
					for c := 0; c < k; c++ {
						if d := dist2(row, mine.Row(c)); d < bestD {
							best, bestD = c, d
						}
					}
					sse += bestD
					base := best * dim
					for j, v := range row {
						stats[base+j] += v
					}
					stats[k*dim+best]++
				}
				sseParts[rank] = sse
				if workers > 1 {
					if useRing {
						ring.Allreduce(rank, stats)
					} else {
						central.Allreduce(stats)
					}
				}
				for c := 0; c < k; c++ {
					cnt := stats[k*dim+c]
					if cnt == 0 {
						continue // keep the old centroid for empty clusters
					}
					dst := mine.Row(c)
					for j := 0; j < dim; j++ {
						dst[j] = stats[c*dim+j] / cnt
					}
				}
				barrier.Wait()
				if rank == 0 {
					total := 0.0
					for _, s := range sseParts {
						total += s
					}
					res.SSEHistory = append(res.SSEHistory, total)
				}
				barrier.Wait()
			}
		}(rank)
	}
	wg.Wait()
	res.Centroids = replicas[0]
	// Consistency invariant: all replicas converged to identical models.
	for r := 1; r < workers; r++ {
		if !tensor.Equal(replicas[0], replicas[r], 1e-9) {
			return nil, fmt.Errorf("parallel: kmeans replica %d diverged", r)
		}
	}
	return res, nil
}

func dist2(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// GaussianBlobs samples n points from k well-separated Gaussian clusters;
// returns the points and the true centers.
func GaussianBlobs(n, k, dim int, spread float64, rng *xrand.Rand) (*tensor.Matrix, *tensor.Matrix) {
	centers := tensor.NewMatrix(k, dim)
	for c := 0; c < k; c++ {
		for j := 0; j < dim; j++ {
			centers.Set(c, j, rng.Range(-10, 10))
		}
	}
	pts := tensor.NewMatrix(n, dim)
	for i := 0; i < n; i++ {
		c := i % k
		for j := 0; j < dim; j++ {
			pts.Set(i, j, centers.At(c, j)+rng.Normal(0, spread))
		}
	}
	return pts, centers
}
