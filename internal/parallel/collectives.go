// Package parallel implements the parallel machine-learning computation
// models of §III-A. The paper categorizes parallel iterative ML algorithms
// into four synchronization patterns — (a) Locking, (b) Rotation, (c)
// Allreduce, (d) Asynchronous — and reports that optimized collective
// communication improves model update speed and convergence. This package
// provides those four drivers over goroutines and channels, two allreduce
// implementations (a naive lock-based reducer and a ring allreduce), and
// representative kernels from the paper's list: SGD, K-means, Gibbs
// sampling (Ising) and cyclic coordinate descent (matrix factorization).
package parallel

import (
	"fmt"
	"sync"
)

// CentralAllreducer is the naive collective: every rank adds its vector
// into a shared buffer under a mutex and waits on a condition variable for
// the epoch to complete. Semantically an allreduce; the contended lock is
// the cost the optimized ring version removes.
type CentralAllreducer struct {
	P   int
	mu  sync.Mutex
	cv  *sync.Cond
	buf []float64
	cnt int
	gen int
}

// NewCentralAllreducer builds a reducer for p ranks and vectors of the
// given length.
func NewCentralAllreducer(p, length int) *CentralAllreducer {
	a := &CentralAllreducer{P: p, buf: make([]float64, length)}
	a.cv = sync.NewCond(&a.mu)
	return a
}

// Allreduce sums vec across all ranks; on return vec holds the global sum.
// All P ranks must call it once per round.
func (a *CentralAllreducer) Allreduce(vec []float64) {
	a.mu.Lock()
	gen := a.gen
	for i, v := range vec {
		a.buf[i] += v
	}
	a.cnt++
	if a.cnt == a.P {
		a.cnt = 0
		a.gen++
		a.cv.Broadcast()
	} else {
		for gen == a.gen {
			a.cv.Wait()
		}
	}
	copy(vec, a.buf)
	// Last rank to leave the epoch resets the buffer for the next one.
	a.mu.Unlock()
	a.exitBarrier()
}

// exitBarrier ensures the shared buffer is reset exactly once after all
// ranks have copied the result.
func (a *CentralAllreducer) exitBarrier() {
	a.mu.Lock()
	a.cnt++
	if a.cnt == a.P {
		a.cnt = 0
		for i := range a.buf {
			a.buf[i] = 0
		}
		a.gen++
		a.cv.Broadcast()
	} else {
		gen := a.gen
		for gen == a.gen {
			a.cv.Wait()
		}
	}
	a.mu.Unlock()
}

// RingAllreducer is the optimized collective: a reduce-scatter followed by
// an allgather around a ring of channels, the classic bandwidth-optimal
// allreduce. Each rank communicates only with its neighbors and the hot
// path holds no global lock.
type RingAllreducer struct {
	P     int
	chans []chan []float64
	// scratch holds three send buffers per rank (triple buffering): the
	// successful capacity-1 send at step t+2 proves the neighbor dequeued
	// step t+1, which in its sequential loop happens only after it
	// finished processing the step-t buffer — so overwriting that buffer
	// at step t+3 is safe. This removes all per-step allocations from the
	// hot path.
	scratch [][3][]float64
}

// NewRingAllreducer builds the ring for p ranks.
func NewRingAllreducer(p int) *RingAllreducer {
	r := &RingAllreducer{P: p, chans: make([]chan []float64, p), scratch: make([][3][]float64, p)}
	for i := range r.chans {
		r.chans[i] = make(chan []float64, 1)
	}
	return r
}

// Allreduce sums vec across ranks; all P ranks must call concurrently with
// their own rank id. On return vec holds the global sum on every rank.
func (r *RingAllreducer) Allreduce(rank int, vec []float64) {
	p := r.P
	if p == 1 {
		return
	}
	n := len(vec)
	// Segment boundaries.
	bounds := make([]int, p+1)
	for s := 0; s <= p; s++ {
		bounds[s] = s * n / p
	}
	seg := func(s int) []float64 {
		s = ((s % p) + p) % p
		return vec[bounds[s]:bounds[s+1]]
	}
	next := r.chans[(rank+1)%p]
	prev := r.chans[rank]
	// Per-rank double-buffered scratch, sized to the largest segment.
	maxSeg := bounds[1] - bounds[0]
	for s := 1; s < p; s++ {
		if w := bounds[s+1] - bounds[s]; w > maxSeg {
			maxSeg = w
		}
	}
	if len(r.scratch[rank][0]) < maxSeg {
		for b := 0; b < 3; b++ {
			r.scratch[rank][b] = make([]float64, maxSeg)
		}
	}
	send := func(step int, src []float64) {
		buf := r.scratch[rank][step%3][:len(src)]
		copy(buf, src)
		next <- buf
	}
	// Reduce-scatter: after p-1 steps, rank owns the fully reduced segment
	// (rank+1) mod p.
	for step := 0; step < p-1; step++ {
		send(step, seg(rank-step))
		recv := <-prev
		dst := seg(rank - step - 1)
		for i, v := range recv {
			dst[i] += v
		}
	}
	// Allgather: circulate the reduced segments.
	for step := 0; step < p-1; step++ {
		send(p-1+step, seg(rank+1-step))
		recv := <-prev
		dst := seg(rank - step)
		copy(dst, recv)
	}
}

// Barrier is a reusable P-party barrier.
type Barrier struct {
	p   int
	mu  sync.Mutex
	cv  *sync.Cond
	cnt int
	gen int
}

// NewBarrier builds a barrier for p parties.
func NewBarrier(p int) *Barrier {
	b := &Barrier{p: p}
	b.cv = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all p parties have arrived.
func (b *Barrier) Wait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	gen := b.gen
	b.cnt++
	if b.cnt == b.p {
		b.cnt = 0
		b.gen++
		b.cv.Broadcast()
		return
	}
	for gen == b.gen {
		b.cv.Wait()
	}
}

// SyncModel names the paper's four computation models.
type SyncModel int

// The four parallel model-synchronization patterns of §III-A.
const (
	Locking SyncModel = iota
	Rotation
	Allreduce
	Asynchronous
)

// String returns the model name as in the paper.
func (m SyncModel) String() string {
	switch m {
	case Locking:
		return "Locking"
	case Rotation:
		return "Rotation"
	case Allreduce:
		return "Allreduce"
	case Asynchronous:
		return "Asynchronous"
	default:
		return fmt.Sprintf("SyncModel(%d)", int(m))
	}
}

// AllModels lists the four patterns in paper order.
func AllModels() []SyncModel { return []SyncModel{Locking, Rotation, Allreduce, Asynchronous} }
