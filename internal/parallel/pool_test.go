package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForEachBoundedCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		const n = 100
		seen := make([]atomic.Int32, n)
		ForEachBounded(n, workers, func(i int) { seen[i].Add(1) })
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("workers=%d index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachBoundedConcurrencyCap(t *testing.T) {
	var cur, peak atomic.Int32
	ForEachBounded(64, 4, func(i int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		cur.Add(-1)
	})
	if p := peak.Load(); p > 4 {
		t.Fatalf("observed %d concurrent calls, cap is 4", p)
	}
}

func TestForEachBoundedZeroItems(t *testing.T) {
	called := false
	ForEachBounded(0, 8, func(i int) { called = true })
	if called {
		t.Fatal("callback invoked for empty range")
	}
}
