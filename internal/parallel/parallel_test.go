package parallel

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestCentralAllreducerSums(t *testing.T) {
	const p, n = 4, 8
	a := NewCentralAllreducer(p, n)
	results := make([][]float64, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			vec := make([]float64, n)
			for i := range vec {
				vec[i] = float64(r + 1)
			}
			a.Allreduce(vec)
			results[r] = vec
		}(r)
	}
	wg.Wait()
	want := 1.0 + 2 + 3 + 4
	for r := 0; r < p; r++ {
		for i := 0; i < n; i++ {
			if results[r][i] != want {
				t.Fatalf("rank %d elem %d = %g want %g", r, i, results[r][i], want)
			}
		}
	}
}

func TestCentralAllreducerReusable(t *testing.T) {
	const p = 3
	a := NewCentralAllreducer(p, 2)
	for round := 1; round <= 3; round++ {
		var wg sync.WaitGroup
		out := make([][]float64, p)
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				v := []float64{float64(round), float64(r)}
				a.Allreduce(v)
				out[r] = v
			}(r)
		}
		wg.Wait()
		wantFirst := float64(round * p)
		for r := 0; r < p; r++ {
			if out[r][0] != wantFirst {
				t.Fatalf("round %d rank %d got %g want %g", round, r, out[r][0], wantFirst)
			}
		}
	}
}

func TestRingAllreducerMatchesSerialQuick(t *testing.T) {
	rng := xrand.New(1)
	if err := quick.Check(func(pRaw, nRaw uint8) bool {
		p := int(pRaw%6) + 2 // 2..7 ranks
		n := int(nRaw%20) + p
		ring := NewRingAllreducer(p)
		vecs := make([][]float64, p)
		want := make([]float64, n)
		for r := 0; r < p; r++ {
			vecs[r] = make([]float64, n)
			for i := range vecs[r] {
				vecs[r][i] = rng.Range(-5, 5)
				want[i] += vecs[r][i]
			}
		}
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				ring.Allreduce(r, vecs[r])
			}(r)
		}
		wg.Wait()
		for r := 0; r < p; r++ {
			for i := range want {
				if math.Abs(vecs[r][i]-want[i]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRingAllreducerSingleRank(t *testing.T) {
	ring := NewRingAllreducer(1)
	v := []float64{1, 2, 3}
	ring.Allreduce(0, v)
	if v[0] != 1 || v[2] != 3 {
		t.Fatal("single-rank allreduce should be identity")
	}
}

func TestBarrier(t *testing.T) {
	const p = 5
	b := NewBarrier(p)
	var phase [p]int
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for round := 0; round < 10; round++ {
				phase[r] = round
				b.Wait()
				// After the barrier every worker must be in the same round.
				for o := 0; o < p; o++ {
					if phase[o] < round {
						t.Errorf("worker %d behind after barrier", o)
					}
				}
				b.Wait()
			}
		}(r)
	}
	wg.Wait()
}

func TestSyncModelStrings(t *testing.T) {
	want := []string{"Locking", "Rotation", "Allreduce", "Asynchronous"}
	for i, m := range AllModels() {
		if m.String() != want[i] {
			t.Fatalf("model %d name %q want %q", i, m.String(), want[i])
		}
	}
}

func runModel(t *testing.T, model SyncModel, workers int, ring bool) *Trace {
	t.Helper()
	rng := xrand.New(7)
	p, _ := NewRandomSGDProblem(600, 12, 0.01, rng)
	tr, err := RunSGD(p, model, SGDConfig{Workers: workers, Epochs: 80, LR: 0.1, UseRing: ring, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSGDAllModelsConverge(t *testing.T) {
	for _, model := range AllModels() {
		tr := runModel(t, model, 4, false)
		if len(tr.Loss) == 0 {
			t.Fatalf("%v produced no trace", model)
		}
		first, last := tr.Loss[0], tr.Final()
		// The Asynchronous model's first recording races against other
		// workers' updates and may already sit at the noise floor, so the
		// strict first>last check applies only to synchronized models.
		if model != Asynchronous && last >= first {
			t.Fatalf("%v did not reduce loss: %g -> %g", model, first, last)
		}
		if last > 0.1 {
			t.Fatalf("%v final loss %g too high", model, last)
		}
	}
}

func TestSGDAllreduceRingMatchesCentralConvergence(t *testing.T) {
	a := runModel(t, Allreduce, 4, false)
	b := runModel(t, Allreduce, 4, true)
	// Same deterministic gradient math: identical loss sequences.
	if len(a.Loss) != len(b.Loss) {
		t.Fatal("trace lengths differ")
	}
	for i := range a.Loss {
		if math.Abs(a.Loss[i]-b.Loss[i]) > 1e-6*(1+a.Loss[i]) {
			t.Fatalf("epoch %d: central %g vs ring %g", i, a.Loss[i], b.Loss[i])
		}
	}
}

func TestSGDSingleWorkerMatchesAcrossModels(t *testing.T) {
	// With one worker every synchronization model degenerates to serial
	// gradient descent; Locking and Allreduce must agree exactly.
	lock := runModel(t, Locking, 1, false)
	allr := runModel(t, Allreduce, 1, false)
	for i := range lock.Loss {
		if math.Abs(lock.Loss[i]-allr.Loss[i]) > 1e-9 {
			t.Fatalf("serial traces differ at %d: %g vs %g", i, lock.Loss[i], allr.Loss[i])
		}
	}
}

func TestSGDInvalidConfig(t *testing.T) {
	rng := xrand.New(8)
	p, _ := NewRandomSGDProblem(50, 4, 0.01, rng)
	if _, err := RunSGD(p, Locking, SGDConfig{Workers: 0, Epochs: 1}); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := RunSGD(p, SyncModel(42), SGDConfig{Workers: 1, Epochs: 1, LR: 0.1}); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestSGDRecoversPlantedWeights(t *testing.T) {
	rng := xrand.New(9)
	p, truth := NewRandomSGDProblem(800, 6, 0.001, rng)
	_, err := RunSGD(p, Allreduce, SGDConfig{Workers: 4, Epochs: 200, LR: 0.15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Verify via loss at the planted weights: trained loss must approach it.
	tr := runModel(t, Allreduce, 4, false)
	if tr.Final() > 5*p.Loss(truth)+0.05 {
		t.Fatalf("final loss %g far above planted-weight loss %g", tr.Final(), p.Loss(truth))
	}
}

func TestReplicaDivergence(t *testing.T) {
	a := [][]float64{{1, 2}, {1, 2.5}, {1, 2}}
	if d := ReplicaDivergence(a); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("divergence %g want 0.5", d)
	}
	if d := ReplicaDivergence([][]float64{{1}, {1}}); d != 0 {
		t.Fatalf("identical replicas diverge %g", d)
	}
}

func TestKMeansFindsBlobs(t *testing.T) {
	rng := xrand.New(10)
	pts, _ := GaussianBlobs(600, 4, 3, 0.3, rng)
	res, err := KMeans(pts, 4, 15, 4, false, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SSEHistory) != 15 {
		t.Fatalf("history length %d", len(res.SSEHistory))
	}
	// SSE decreases (weakly) and ends near the noise floor.
	for i := 1; i < len(res.SSEHistory); i++ {
		if res.SSEHistory[i] > res.SSEHistory[i-1]+1e-9 {
			t.Fatalf("SSE increased at %d: %g -> %g", i, res.SSEHistory[i-1], res.SSEHistory[i])
		}
	}
	perPoint := res.SSEHistory[len(res.SSEHistory)-1] / 600
	if perPoint > 3*0.3*0.3*3 { // ~3x dim*sigma² tolerance
		t.Fatalf("final per-point SSE %g too large", perPoint)
	}
}

func TestKMeansParallelMatchesSerial(t *testing.T) {
	rng := xrand.New(11)
	pts, _ := GaussianBlobs(300, 3, 2, 0.5, rng)
	serial, err := KMeans(pts, 3, 10, 1, false, 33)
	if err != nil {
		t.Fatal(err)
	}
	par, err := KMeans(pts, 3, 10, 4, false, 33)
	if err != nil {
		t.Fatal(err)
	}
	ringRes, err := KMeans(pts, 3, 10, 4, true, 33)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.SSEHistory {
		if math.Abs(serial.SSEHistory[i]-par.SSEHistory[i]) > 1e-6 {
			t.Fatalf("parallel SSE differs at %d", i)
		}
		if math.Abs(serial.SSEHistory[i]-ringRes.SSEHistory[i]) > 1e-6 {
			t.Fatalf("ring SSE differs at %d", i)
		}
	}
}

func TestKMeansInvalid(t *testing.T) {
	rng := xrand.New(12)
	pts, _ := GaussianBlobs(20, 2, 2, 0.5, rng)
	if _, err := KMeans(pts, 0, 5, 1, false, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KMeans(pts, 30, 5, 1, false, 1); err == nil {
		t.Fatal("k > n accepted")
	}
	if _, err := KMeans(pts, 2, 5, 0, false, 1); err == nil {
		t.Fatal("0 workers accepted")
	}
}

func TestIsingHighTemperatureDisordered(t *testing.T) {
	// beta well below critical (0.4407): |m| ~ 0.
	m, err := IsingRun(24, 0.2, 60, 4, false, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m > 0.25 {
		t.Fatalf("high-T magnetization %g, want near 0", m)
	}
}

func TestIsingLowTemperatureOrdered(t *testing.T) {
	// beta well above critical: |m| ~ 1.
	m, err := IsingRun(24, 0.7, 120, 4, false, 6)
	if err != nil {
		t.Fatal(err)
	}
	if m < 0.7 {
		t.Fatalf("low-T magnetization %g, want near 1", m)
	}
}

func TestIsingAsyncApproximatesSync(t *testing.T) {
	// Hogwild sweeps should land in the same thermodynamic phase at low
	// temperature. Magnetization is a poor comparison observable (striped
	// domain states have |m|≈0 while locally ordered), so compare the mean
	// energy per spin, which is domain-wall-insensitive.
	runEnergy := func(async bool) float64 {
		root := xrand.New(7)
		m := NewIsing(20, 0.7, root)
		rngs := make([]*xrand.Rand, 4)
		for i := range rngs {
			rngs[i] = root.Split()
		}
		for s := 0; s < 150; s++ {
			if async {
				m.SweepAsync(4, rngs)
			} else {
				m.SweepCheckerboard(4, rngs)
			}
		}
		return m.Energy()
	}
	sync1 := runEnergy(false)
	async1 := runEnergy(true)
	// Deep in the ordered phase both should approach -2J per spin.
	if sync1 > -1.4 || async1 > -1.4 {
		t.Fatalf("low-T energies not ordered: sync %g async %g", sync1, async1)
	}
	if math.Abs(sync1-async1) > 0.3 {
		t.Fatalf("async energy %g far from sync %g", async1, sync1)
	}
}

func TestIsingValidation(t *testing.T) {
	if _, err := IsingRun(2, 0.5, 10, 1, false, 1); err == nil {
		t.Fatal("tiny lattice accepted")
	}
	if _, err := IsingRun(8, 0.5, 1, 1, false, 1); err == nil {
		t.Fatal("single sweep accepted")
	}
}

func TestIsingEnergyBounds(t *testing.T) {
	rng := xrand.New(13)
	m := NewIsing(16, 0.5, rng)
	e := m.Energy()
	if e < -2 || e > 2 {
		t.Fatalf("energy per spin %g outside [-2,2]", e)
	}
}

func TestCCDConverges(t *testing.T) {
	rng := xrand.New(14)
	p := NewRandomMFProblem(60, 50, 4, 0.3, 0.01, rng)
	_, hist, err := RunCCD(p, 4, 30, 0.05, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 30 {
		t.Fatalf("history length %d", len(hist))
	}
	if hist[len(hist)-1] >= hist[0] {
		t.Fatalf("CCD did not reduce RMSE: %g -> %g", hist[0], hist[len(hist)-1])
	}
	if hist[len(hist)-1] > 0.2 {
		t.Fatalf("final RMSE %g too high", hist[len(hist)-1])
	}
}

func TestCCDSerialVsParallelQuality(t *testing.T) {
	rng := xrand.New(16)
	p := NewRandomMFProblem(40, 40, 3, 0.35, 0.01, rng)
	_, serial, err := RunCCD(p, 1, 25, 0.05, 17)
	if err != nil {
		t.Fatal(err)
	}
	_, par, err := RunCCD(p, 4, 25, 0.05, 17)
	if err != nil {
		t.Fatal(err)
	}
	sFinal, pFinal := serial[len(serial)-1], par[len(par)-1]
	if math.Abs(sFinal-pFinal) > 0.1+0.5*sFinal {
		t.Fatalf("parallel CCD quality %g far from serial %g", pFinal, sFinal)
	}
}

func TestCCDValidation(t *testing.T) {
	rng := xrand.New(18)
	p := NewRandomMFProblem(10, 10, 2, 0.5, 0.01, rng)
	if _, _, err := RunCCD(p, 0, 5, 0.1, 1); err == nil {
		t.Fatal("zero workers accepted")
	}
}

func BenchmarkRingAllreduce8x1024(b *testing.B) {
	const p, n = 8, 1024
	ring := NewRingAllreducer(p)
	vecs := make([][]float64, p)
	for r := range vecs {
		vecs[r] = make([]float64, n)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				ring.Allreduce(r, vecs[r])
			}(r)
		}
		wg.Wait()
	}
}

func BenchmarkCentralAllreduce8x1024(b *testing.B) {
	const p, n = 8, 1024
	a := NewCentralAllreducer(p, n)
	vecs := make([][]float64, p)
	for r := range vecs {
		vecs[r] = make([]float64, n)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				a.Allreduce(vecs[r])
			}(r)
		}
		wg.Wait()
	}
}
