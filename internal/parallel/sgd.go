package parallel

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Trace records loss versus wall-clock during a parallel optimization run
// — the convergence-per-second series experiment E10 compares across the
// four computation models.
type Trace struct {
	Model   SyncModel
	Workers int
	Seconds []float64
	Loss    []float64
}

// Final returns the last recorded loss.
func (t *Trace) Final() float64 {
	if len(t.Loss) == 0 {
		return math.NaN()
	}
	return t.Loss[len(t.Loss)-1]
}

// SGDProblem is L2-regularized linear least squares: the representative
// gradient-descent kernel (§III-A lists SGD among the fundamental parallel
// ML patterns).
type SGDProblem struct {
	X  *tensor.Matrix
	Y  []float64
	L2 float64
}

// NewRandomSGDProblem generates a synthetic well-conditioned regression
// problem with known planted weights.
func NewRandomSGDProblem(n, dim int, noise float64, rng *xrand.Rand) (*SGDProblem, []float64) {
	x := tensor.NewMatrix(n, dim)
	truth := make([]float64, dim)
	for j := range truth {
		truth[j] = rng.Range(-2, 2)
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		y[i] = tensor.Dot(row, truth) + rng.Normal(0, noise)
	}
	return &SGDProblem{X: x, Y: y, L2: 1e-4}, truth
}

// Loss returns the mean squared error plus L2 penalty at w.
func (p *SGDProblem) Loss(w []float64) float64 {
	n := p.X.Rows
	s := 0.0
	for i := 0; i < n; i++ {
		r := tensor.Dot(p.X.Row(i), w) - p.Y[i]
		s += r * r
	}
	reg := 0.0
	for _, v := range w {
		reg += v * v
	}
	return s/float64(n) + p.L2*reg
}

// gradRange accumulates the gradient of the mean loss over rows [lo,hi)
// into out (scaled by 1/n of the FULL dataset so shard gradients sum to
// the global gradient).
func (p *SGDProblem) gradRange(w []float64, lo, hi int, out []float64) {
	n := float64(p.X.Rows)
	for i := lo; i < hi; i++ {
		row := p.X.Row(i)
		r := tensor.Dot(row, w) - p.Y[i]
		c := 2 * r / n
		for j, v := range row {
			out[j] += c * v
		}
	}
	for j, v := range w {
		out[j] += 2 * p.L2 * v / float64(hi-lo) * float64(hi-lo) / n
	}
}

// SGDConfig controls a parallel SGD run.
type SGDConfig struct {
	Workers int
	Epochs  int
	LR      float64
	// UseRing selects the ring allreduce (vs the naive central reducer)
	// for the Allreduce model.
	UseRing bool
	Seed    uint64
}

// RunSGD optimizes the problem under the chosen synchronization model and
// returns the convergence trace. All four models perform the same number
// of gradient evaluations per epoch; they differ purely in how model
// updates synchronize — which is exactly the comparison §III-A draws.
func RunSGD(p *SGDProblem, model SyncModel, cfg SGDConfig) (*Trace, error) {
	if cfg.Workers < 1 || cfg.Epochs < 1 {
		return nil, fmt.Errorf("parallel: invalid config %+v", cfg)
	}
	dim := p.X.Cols
	tr := &Trace{Model: model, Workers: cfg.Workers}
	start := time.Now()
	record := func(w []float64) {
		tr.Seconds = append(tr.Seconds, time.Since(start).Seconds())
		tr.Loss = append(tr.Loss, p.Loss(w))
	}
	shard := func(rank int) (int, int) {
		lo := rank * p.X.Rows / cfg.Workers
		hi := (rank + 1) * p.X.Rows / cfg.Workers
		return lo, hi
	}

	switch model {
	case Locking:
		w := make([]float64, dim)
		var mu sync.Mutex
		barrier := NewBarrier(cfg.Workers)
		var wg sync.WaitGroup
		for rank := 0; rank < cfg.Workers; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				lo, hi := shard(rank)
				grad := make([]float64, dim)
				local := make([]float64, dim)
				for e := 0; e < cfg.Epochs; e++ {
					mu.Lock()
					copy(local, w)
					mu.Unlock()
					for j := range grad {
						grad[j] = 0
					}
					p.gradRange(local, lo, hi, grad)
					mu.Lock()
					for j := range w {
						w[j] -= cfg.LR * grad[j]
					}
					mu.Unlock()
					barrier.Wait()
					if rank == 0 {
						mu.Lock()
						record(w)
						mu.Unlock()
					}
					barrier.Wait()
				}
			}(rank)
		}
		wg.Wait()

	case Rotation:
		// Model rotation: the parameter vector is split into Workers
		// blocks; in each sub-epoch worker r updates block
		// (r+t) mod Workers using its data shard, then blocks rotate.
		// Disjoint blocks need no locks; a barrier separates rotations.
		w := make([]float64, dim)
		barrier := NewBarrier(cfg.Workers)
		blockOf := func(b int) (int, int) {
			lo := b * dim / cfg.Workers
			hi := (b + 1) * dim / cfg.Workers
			return lo, hi
		}
		var wg sync.WaitGroup
		for rank := 0; rank < cfg.Workers; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				lo, hi := shard(rank)
				grad := make([]float64, dim)
				local := make([]float64, dim)
				for e := 0; e < cfg.Epochs; e++ {
					for t := 0; t < cfg.Workers; t++ {
						// Phase 1: snapshot the model (reads only).
						copy(local, w)
						barrier.Wait()
						// Phase 2: compute on the snapshot, write only the
						// owned block (disjoint across workers).
						bLo, bHi := blockOf((rank + t) % cfg.Workers)
						for j := range grad {
							grad[j] = 0
						}
						p.gradRange(local, lo, hi, grad)
						for j := bLo; j < bHi; j++ {
							w[j] -= cfg.LR * grad[j]
						}
						barrier.Wait()
					}
					if rank == 0 {
						record(w)
					}
					barrier.Wait()
				}
			}(rank)
		}
		wg.Wait()

	case Allreduce:
		// Bulk-synchronous data parallelism: shard gradients are summed by
		// the collective and every worker applies the identical update to
		// its own replica.
		var central *CentralAllreducer
		var ring *RingAllreducer
		if cfg.UseRing {
			ring = NewRingAllreducer(cfg.Workers)
		} else {
			central = NewCentralAllreducer(cfg.Workers, dim)
		}
		barrier := NewBarrier(cfg.Workers)
		replicas := make([][]float64, cfg.Workers)
		for r := range replicas {
			replicas[r] = make([]float64, dim)
		}
		var wg sync.WaitGroup
		for rank := 0; rank < cfg.Workers; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				lo, hi := shard(rank)
				w := replicas[rank]
				grad := make([]float64, dim)
				for e := 0; e < cfg.Epochs; e++ {
					for j := range grad {
						grad[j] = 0
					}
					p.gradRange(w, lo, hi, grad)
					if cfg.UseRing {
						ring.Allreduce(rank, grad)
					} else {
						central.Allreduce(grad)
					}
					for j := range w {
						w[j] -= cfg.LR * grad[j]
					}
					if rank == 0 {
						record(w)
					}
					barrier.Wait()
				}
			}(rank)
		}
		wg.Wait()
		// Invariant: all replicas identical (checked in tests).

	case Asynchronous:
		// Hogwild-style parameter server: atomic lock-free reads and CAS
		// updates; workers never wait for each other. Staleness trades
		// consistency for throughput.
		wBits := make([]uint64, dim)
		load := func(j int) float64 { return math.Float64frombits(atomic.LoadUint64(&wBits[j])) }
		add := func(j int, delta float64) {
			for {
				old := atomic.LoadUint64(&wBits[j])
				nw := math.Float64bits(math.Float64frombits(old) + delta)
				if atomic.CompareAndSwapUint64(&wBits[j], old, nw) {
					return
				}
			}
		}
		snapshot := func() []float64 {
			out := make([]float64, dim)
			for j := range out {
				out[j] = load(j)
			}
			return out
		}
		var done sync.WaitGroup
		for rank := 0; rank < cfg.Workers; rank++ {
			done.Add(1)
			go func(rank int) {
				defer done.Done()
				lo, hi := shard(rank)
				grad := make([]float64, dim)
				local := make([]float64, dim)
				for e := 0; e < cfg.Epochs; e++ {
					for j := range local {
						local[j] = load(j)
						grad[j] = 0
					}
					p.gradRange(local, lo, hi, grad)
					for j := range grad {
						if grad[j] != 0 {
							add(j, -cfg.LR*grad[j])
						}
					}
					if rank == 0 {
						record(snapshot())
					}
				}
			}(rank)
		}
		done.Wait()

	default:
		return nil, fmt.Errorf("parallel: unknown sync model %v", model)
	}
	return tr, nil
}

// ReplicaDivergence measures the maximum pairwise infinity-norm distance
// between worker model replicas; for the Allreduce model this must be ~0.
func ReplicaDivergence(replicas [][]float64) float64 {
	worst := 0.0
	for i := 0; i < len(replicas); i++ {
		for j := i + 1; j < len(replicas); j++ {
			for k := range replicas[i] {
				if d := math.Abs(replicas[i][k] - replicas[j][k]); d > worst {
					worst = d
				}
			}
		}
	}
	return worst
}
