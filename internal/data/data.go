// Package data provides dataset containers and the train/test plumbing the
// paper's exemplars use: the nano-confinement surrogate's 6864-run corpus
// with its 70/30 split (§III-D), k-fold evaluation, and CSV persistence so
// generated simulation corpora can be cached between experiment stages.
package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Dataset pairs a feature matrix X with a target matrix Y, row-aligned.
type Dataset struct {
	X, Y *tensor.Matrix
	// FeatureNames and TargetNames are optional column labels.
	FeatureNames []string
	TargetNames  []string
}

// New constructs a dataset, validating row alignment.
func New(x, y *tensor.Matrix) *Dataset {
	if x.Rows != y.Rows {
		panic(fmt.Sprintf("data: X has %d rows, Y has %d", x.Rows, y.Rows))
	}
	return &Dataset{X: x, Y: y}
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return d.X.Rows }

// Append adds one sample. It reallocates, so batch construction should use
// the matrix constructors directly; Append exists for online accumulation
// in MLaroundHPC wrappers where "no run is wasted" (§II-C1).
func (d *Dataset) Append(x, y []float64) {
	if d.X == nil {
		d.X = tensor.NewMatrix(0, len(x))
		d.Y = tensor.NewMatrix(0, len(y))
	}
	if len(x) != d.X.Cols || len(y) != d.Y.Cols {
		panic("data: append dimension mismatch")
	}
	d.X.Data = append(d.X.Data, x...)
	d.X.Rows++
	d.Y.Data = append(d.Y.Data, y...)
	d.Y.Rows++
}

// Subset returns a new dataset containing the given row indices.
func (d *Dataset) Subset(idx []int) *Dataset {
	x := tensor.NewMatrix(len(idx), d.X.Cols)
	y := tensor.NewMatrix(len(idx), d.Y.Cols)
	for i, id := range idx {
		copy(x.Row(i), d.X.Row(id))
		copy(y.Row(i), d.Y.Row(id))
	}
	return &Dataset{X: x, Y: y, FeatureNames: d.FeatureNames, TargetNames: d.TargetNames}
}

// Split partitions the dataset into train and test subsets with the given
// training fraction, shuffling with rng. The paper's exemplars use
// trainFrac=0.7 ("70% of total 6864 runs with 30% ... used for testing").
func (d *Dataset) Split(trainFrac float64, rng *xrand.Rand) (train, test *Dataset) {
	if trainFrac <= 0 || trainFrac >= 1 {
		panic("data: train fraction must be in (0,1)")
	}
	perm := rng.Perm(d.Len())
	nTrain := int(trainFrac * float64(d.Len()))
	return d.Subset(perm[:nTrain]), d.Subset(perm[nTrain:])
}

// KFold returns k (train, test) index partitions for cross-validation.
func (d *Dataset) KFold(k int, rng *xrand.Rand) [][2][]int {
	if k < 2 || k > d.Len() {
		panic("data: invalid fold count")
	}
	perm := rng.Perm(d.Len())
	folds := make([][2][]int, k)
	for f := 0; f < k; f++ {
		lo := f * d.Len() / k
		hi := (f + 1) * d.Len() / k
		test := append([]int(nil), perm[lo:hi]...)
		train := make([]int, 0, d.Len()-(hi-lo))
		train = append(train, perm[:lo]...)
		train = append(train, perm[hi:]...)
		folds[f] = [2][]int{train, test}
	}
	return folds
}

// TargetColumn extracts target column j as a slice.
func (d *Dataset) TargetColumn(j int) []float64 {
	out := make([]float64, d.Len())
	for i := 0; i < d.Len(); i++ {
		out[i] = d.Y.At(i, j)
	}
	return out
}

// WriteCSV writes the dataset as a CSV with a header row; feature columns
// first, then target columns.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, d.X.Cols+d.Y.Cols)
	for j := 0; j < d.X.Cols; j++ {
		name := fmt.Sprintf("x%d", j)
		if j < len(d.FeatureNames) {
			name = d.FeatureNames[j]
		}
		header = append(header, name)
	}
	for j := 0; j < d.Y.Cols; j++ {
		name := fmt.Sprintf("y%d", j)
		if j < len(d.TargetNames) {
			name = d.TargetNames[j]
		}
		header = append(header, name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for i := 0; i < d.Len(); i++ {
		for j := 0; j < d.X.Cols; j++ {
			rec[j] = strconv.FormatFloat(d.X.At(i, j), 'g', -1, 64)
		}
		for j := 0; j < d.Y.Cols; j++ {
			rec[d.X.Cols+j] = strconv.FormatFloat(d.Y.At(i, j), 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a dataset written by WriteCSV, treating the first nFeatures
// columns as X and the remainder as Y.
func ReadCSV(r io.Reader, nFeatures int) (*Dataset, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("data: read csv: %w", err)
	}
	if len(records) < 1 {
		return nil, fmt.Errorf("data: empty csv")
	}
	header := records[0]
	if nFeatures <= 0 || nFeatures >= len(header) {
		return nil, fmt.Errorf("data: nFeatures %d out of range for %d columns", nFeatures, len(header))
	}
	nTargets := len(header) - nFeatures
	rows := records[1:]
	x := tensor.NewMatrix(len(rows), nFeatures)
	y := tensor.NewMatrix(len(rows), nTargets)
	for i, rec := range rows {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("data: row %d has %d fields, want %d", i, len(rec), len(header))
		}
		for j, field := range rec {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("data: row %d col %d: %w", i, j, err)
			}
			if j < nFeatures {
				x.Set(i, j, v)
			} else {
				y.Set(i, j-nFeatures, v)
			}
		}
	}
	return &Dataset{
		X: x, Y: y,
		FeatureNames: append([]string(nil), header[:nFeatures]...),
		TargetNames:  append([]string(nil), header[nFeatures:]...),
	}, nil
}

// GridSample generates all combinations of the provided per-feature value
// grids (a full factorial design), the sampling plan used to cover the
// experimental control-parameter space of the nano-confinement exemplar.
func GridSample(grids ...[]float64) *tensor.Matrix {
	if len(grids) == 0 {
		return tensor.NewMatrix(0, 0)
	}
	total := 1
	for _, g := range grids {
		if len(g) == 0 {
			return tensor.NewMatrix(0, len(grids))
		}
		total *= len(g)
	}
	out := tensor.NewMatrix(total, len(grids))
	for i := 0; i < total; i++ {
		rem := i
		for j := len(grids) - 1; j >= 0; j-- {
			g := grids[j]
			out.Set(i, j, g[rem%len(g)])
			rem /= len(g)
		}
	}
	return out
}

// LatinHypercube draws n points from the unit hypercube of the given
// dimension with one point per axis stratum, then maps each column k to
// [lo[k], hi[k]]. It is the space-filling design used when a full grid is
// too expensive.
func LatinHypercube(n, dim int, lo, hi []float64, rng *xrand.Rand) *tensor.Matrix {
	if len(lo) != dim || len(hi) != dim {
		panic("data: bounds length mismatch")
	}
	out := tensor.NewMatrix(n, dim)
	for j := 0; j < dim; j++ {
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			u := (float64(perm[i]) + rng.Float64()) / float64(n)
			out.Set(i, j, lo[j]+u*(hi[j]-lo[j]))
		}
	}
	return out
}
