package data

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

func mkDataset(n int, rng *xrand.Rand) *Dataset {
	x := tensor.NewMatrix(n, 2)
	y := tensor.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.Float64())
		x.Set(i, 1, float64(i))
		y.Set(i, 0, float64(i)*10)
	}
	return New(x, y)
}

func TestNewValidatesRows(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched rows did not panic")
		}
	}()
	New(tensor.NewMatrix(2, 1), tensor.NewMatrix(3, 1))
}

func TestAppend(t *testing.T) {
	d := &Dataset{}
	d.Append([]float64{1, 2}, []float64{3})
	d.Append([]float64{4, 5}, []float64{6})
	if d.Len() != 2 {
		t.Fatalf("len %d want 2", d.Len())
	}
	if d.X.At(1, 1) != 5 || d.Y.At(1, 0) != 6 {
		t.Fatal("appended values wrong")
	}
}

func TestAppendDimensionPanic(t *testing.T) {
	d := &Dataset{}
	d.Append([]float64{1, 2}, []float64{3})
	defer func() {
		if recover() == nil {
			t.Fatal("bad append did not panic")
		}
	}()
	d.Append([]float64{1}, []float64{3})
}

func TestSubset(t *testing.T) {
	rng := xrand.New(1)
	d := mkDataset(10, rng)
	s := d.Subset([]int{3, 7})
	if s.Len() != 2 {
		t.Fatalf("subset len %d", s.Len())
	}
	if s.X.At(0, 1) != 3 || s.X.At(1, 1) != 7 {
		t.Fatal("subset picked wrong rows")
	}
	// Mutating the subset must not affect the parent.
	s.X.Set(0, 1, -1)
	if d.X.At(3, 1) != 3 {
		t.Fatal("subset aliases parent")
	}
}

func TestSplitSizesAndPartition(t *testing.T) {
	rng := xrand.New(2)
	d := mkDataset(100, rng)
	train, test := d.Split(0.7, rng)
	if train.Len() != 70 || test.Len() != 30 {
		t.Fatalf("split sizes %d/%d want 70/30", train.Len(), test.Len())
	}
	// Row ids (column 1 of X) must partition 0..99 exactly.
	seen := map[float64]int{}
	for i := 0; i < train.Len(); i++ {
		seen[train.X.At(i, 1)]++
	}
	for i := 0; i < test.Len(); i++ {
		seen[test.X.At(i, 1)]++
	}
	if len(seen) != 100 {
		t.Fatalf("split lost rows: %d distinct", len(seen))
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("row %g appears %d times", id, c)
		}
	}
}

func TestSplitPanicsOnBadFraction(t *testing.T) {
	rng := xrand.New(3)
	d := mkDataset(10, rng)
	for _, f := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Split(%g) did not panic", f)
				}
			}()
			d.Split(f, rng)
		}()
	}
}

func TestKFoldPartitions(t *testing.T) {
	rng := xrand.New(4)
	d := mkDataset(25, rng)
	folds := d.KFold(5, rng)
	if len(folds) != 5 {
		t.Fatalf("%d folds want 5", len(folds))
	}
	testCount := map[int]int{}
	for _, f := range folds {
		train, test := f[0], f[1]
		if len(train)+len(test) != 25 {
			t.Fatalf("fold sizes %d+%d != 25", len(train), len(test))
		}
		inTrain := map[int]bool{}
		for _, i := range train {
			inTrain[i] = true
		}
		for _, i := range test {
			if inTrain[i] {
				t.Fatal("index in both train and test")
			}
			testCount[i]++
		}
	}
	for i := 0; i < 25; i++ {
		if testCount[i] != 1 {
			t.Fatalf("index %d in test %d times, want exactly 1", i, testCount[i])
		}
	}
}

func TestTargetColumn(t *testing.T) {
	rng := xrand.New(5)
	d := mkDataset(4, rng)
	col := d.TargetColumn(0)
	want := []float64{0, 10, 20, 30}
	for i := range want {
		if col[i] != want[i] {
			t.Fatalf("target col %v want %v", col, want)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rng := xrand.New(6)
	d := mkDataset(7, rng)
	d.FeatureNames = []string{"u", "id"}
	d.TargetNames = []string{"out"}
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("round-trip len %d want %d", got.Len(), d.Len())
	}
	if got.FeatureNames[0] != "u" || got.TargetNames[0] != "out" {
		t.Fatal("column names lost")
	}
	for i := 0; i < d.Len(); i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(got.X.At(i, j)-d.X.At(i, j)) > 1e-12 {
				t.Fatal("X changed in round trip")
			}
		}
		if math.Abs(got.Y.At(i, 0)-d.Y.At(i, 0)) > 1e-12 {
			t.Fatal("Y changed in round trip")
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), 1); err == nil {
		t.Fatal("empty csv should error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,notanumber"), 1); err == nil {
		t.Fatal("non-numeric field should error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2"), 5); err == nil {
		t.Fatal("nFeatures out of range should error")
	}
}

func TestGridSample(t *testing.T) {
	g := GridSample([]float64{1, 2}, []float64{10, 20, 30})
	if g.Rows != 6 || g.Cols != 2 {
		t.Fatalf("grid shape %dx%d want 6x2", g.Rows, g.Cols)
	}
	// All combinations present exactly once.
	seen := map[[2]float64]bool{}
	for i := 0; i < g.Rows; i++ {
		seen[[2]float64{g.At(i, 0), g.At(i, 1)}] = true
	}
	if len(seen) != 6 {
		t.Fatalf("grid has %d distinct rows want 6", len(seen))
	}
}

func TestGridSampleEmpty(t *testing.T) {
	if g := GridSample(); g.Rows != 0 {
		t.Fatal("no grids should give empty matrix")
	}
	if g := GridSample([]float64{1}, nil); g.Rows != 0 {
		t.Fatal("empty axis should give zero rows")
	}
}

func TestLatinHypercubeProperties(t *testing.T) {
	rng := xrand.New(7)
	lo := []float64{-1, 0}
	hi := []float64{1, 10}
	n := 50
	m := LatinHypercube(n, 2, lo, hi, rng)
	if m.Rows != n || m.Cols != 2 {
		t.Fatalf("LHS shape %dx%d", m.Rows, m.Cols)
	}
	for j := 0; j < 2; j++ {
		strata := make([]bool, n)
		for i := 0; i < n; i++ {
			v := m.At(i, j)
			if v < lo[j] || v >= hi[j] {
				t.Fatalf("LHS value %g outside [%g,%g)", v, lo[j], hi[j])
			}
			u := (v - lo[j]) / (hi[j] - lo[j])
			s := int(u * float64(n))
			if s == n {
				s = n - 1
			}
			if strata[s] {
				t.Fatalf("stratum %d hit twice in column %d", s, j)
			}
			strata[s] = true
		}
	}
}

func TestLatinHypercubeBoundsMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad bounds did not panic")
		}
	}()
	LatinHypercube(10, 3, []float64{0}, []float64{1}, xrand.New(1))
}

// Property: Split preserves every (x,y) pairing.
func TestSplitPairingPreservedQuick(t *testing.T) {
	rng := xrand.New(8)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%50) + 10
		d := mkDataset(n, rng)
		train, test := d.Split(0.5, rng)
		check := func(s *Dataset) bool {
			for i := 0; i < s.Len(); i++ {
				if s.Y.At(i, 0) != s.X.At(i, 1)*10 {
					return false
				}
			}
			return true
		}
		return check(train) && check(test)
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
