package potential

import "math"

// SymmetryFunctions computes Behler–Parrinello atom-centered descriptors:
// rotation-, translation- and permutation-invariant fingerprints of each
// atom's chemical environment (§II-C2: "appropriate symmetry functions
// that are rotation and translation invariant as well as invariant to
// exchange of atoms").
type SymmetryFunctions struct {
	// Cutoff is the environment radius Rc.
	Cutoff float64
	// RadialEtas and RadialShifts parameterize the G2 radial set; one
	// feature per (eta, shift) pair (paired element-wise).
	RadialEtas   []float64
	RadialShifts []float64
	// AngularZetas and AngularLambdas parameterize the G4 angular set
	// (paired element-wise), all sharing AngularEta.
	AngularZetas   []float64
	AngularLambdas []float64
	AngularEta     float64
}

// DefaultSymmetryFunctions returns a compact descriptor set adequate for
// the small clusters used in the reproduction.
func DefaultSymmetryFunctions() *SymmetryFunctions {
	return &SymmetryFunctions{
		Cutoff:         4.0,
		RadialEtas:     []float64{0.5, 0.5, 1.0, 2.0, 4.0},
		RadialShifts:   []float64{1.0, 2.0, 1.5, 1.2, 1.0},
		AngularZetas:   []float64{1, 2, 4},
		AngularLambdas: []float64{1, -1, 1},
		AngularEta:     0.2,
	}
}

// Dim returns the descriptor length per atom.
func (sf *SymmetryFunctions) Dim() int {
	return len(sf.RadialEtas) + len(sf.AngularZetas)
}

// ipow computes x^zeta cheaply for the small integer zetas used by the
// angular set (math.Pow dominates descriptor cost otherwise).
func ipow(x, zeta float64) float64 {
	switch zeta {
	case 1:
		return x
	case 2:
		return x * x
	case 4:
		x *= x
		return x * x
	default:
		return math.Pow(x, zeta)
	}
}

// cutoffFn is the Behler cosine cutoff: smooth, zero at and beyond Rc.
func (sf *SymmetryFunctions) cutoffFn(r float64) float64 {
	if r >= sf.Cutoff {
		return 0
	}
	return 0.5 * (math.Cos(math.Pi*r/sf.Cutoff) + 1)
}

// Compute returns the NAtoms x Dim descriptor matrix of a configuration
// as a row-per-atom slice.
func (sf *SymmetryFunctions) Compute(c *Configuration) [][]float64 {
	n := c.NAtoms()
	out := make([][]float64, n)
	nr := len(sf.RadialEtas)
	for i := 0; i < n; i++ {
		feat := make([]float64, sf.Dim())
		// G2 radial features.
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			r := c.dist(i, j)
			fc := sf.cutoffFn(r)
			if fc == 0 {
				continue
			}
			for k := range sf.RadialEtas {
				d := r - sf.RadialShifts[k]
				feat[k] += math.Exp(-sf.RadialEtas[k]*d*d) * fc
			}
		}
		// G4 angular features.
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			rij := c.dist(i, j)
			fcij := sf.cutoffFn(rij)
			if fcij == 0 {
				continue
			}
			for k := j + 1; k < n; k++ {
				if k == i {
					continue
				}
				rik := c.dist(i, k)
				fcik := sf.cutoffFn(rik)
				if fcik == 0 {
					continue
				}
				rjk := c.dist(j, k)
				fcjk := sf.cutoffFn(rjk)
				cosTheta := cosAngle(rij, rik, rjk)
				expTerm := math.Exp(-sf.AngularEta * (rij*rij + rik*rik + rjk*rjk))
				for a := range sf.AngularZetas {
					zeta := sf.AngularZetas[a]
					lambda := sf.AngularLambdas[a]
					base := 1 + lambda*cosTheta
					if base < 0 {
						base = 0
					}
					feat[nr+a] += math.Pow(2, 1-zeta) * ipow(base, zeta) * expTerm * fcij * fcik * fcjk
				}
			}
		}
		out[i] = feat
	}
	return out
}
