package potential

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"

	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// NNPotential is a Behler–Parrinello neural network potential: one shared
// atomic network maps each atom's symmetry-function descriptor to an
// atomic energy contribution, and the configuration energy is the sum of
// atomic contributions ("represent the total energy as a sum of atomic
// contributions", §II-C2).
type NNPotential struct {
	SF     *SymmetryFunctions
	Hidden []int
	Epochs int
	LR     float64

	rng       *xrand.Rand
	net       *nn.Network
	pred      *nn.Predictor // reusable inference workspaces for the net
	featBuf   *tensor.Matrix
	featMean  []float64
	featStd   []float64
	eShift    float64 // mean per-atom energy in training data
	eScale    float64 // std of per-atom energies
	trained   bool
	trainSeen int
}

// NewNNPotential constructs an untrained potential.
func NewNNPotential(sf *SymmetryFunctions, hidden []int, rng *xrand.Rand) *NNPotential {
	return &NNPotential{SF: sf, Hidden: hidden, Epochs: 150, LR: 3e-3, rng: rng}
}

// Trained reports whether Fit has succeeded.
func (p *NNPotential) Trained() bool { return p.trained }

// TrainingSetSize returns the number of configurations last fitted.
func (p *NNPotential) TrainingSetSize() int { return p.trainSeen }

// Fit trains the atomic network so that summed atomic energies match the
// provided total energies. Each configuration is one training unit; the
// per-atom gradient is the standard sum-pooled MSE gradient.
func (p *NNPotential) Fit(configs []*Configuration, energies []float64) error {
	if len(configs) == 0 {
		return errors.New("potential: empty training set")
	}
	if len(configs) != len(energies) {
		return fmt.Errorf("potential: %d configs vs %d energies", len(configs), len(energies))
	}
	// Descriptor statistics over all atoms of all configurations.
	dim := p.SF.Dim()
	feats := make([][][]float64, len(configs))
	var wf []stats.Welford
	wf = make([]stats.Welford, dim)
	for ci, c := range configs {
		feats[ci] = p.SF.Compute(c)
		for _, row := range feats[ci] {
			for k, v := range row {
				wf[k].Add(v)
			}
		}
	}
	p.featMean = make([]float64, dim)
	p.featStd = make([]float64, dim)
	for k := range wf {
		p.featMean[k] = wf[k].Mean()
		sd := wf[k].StdDev()
		if math.IsNaN(sd) || sd < 1e-12 {
			sd = 1
		}
		p.featStd[k] = sd
	}
	// Per-atom energy normalization.
	perAtom := make([]float64, len(configs))
	for i, c := range configs {
		perAtom[i] = energies[i] / float64(c.NAtoms())
	}
	p.eShift = stats.Mean(perAtom)
	p.eScale = stats.StdDev(perAtom)
	if math.IsNaN(p.eScale) || p.eScale < 1e-12 {
		p.eScale = 1
	}

	widths := append([]int{dim}, append(append([]int(nil), p.Hidden...), 1)...)
	p.net = nn.NewMLP(p.rng.Split(), nn.Tanh, 0, widths...)
	p.pred = nil // workspaces belong to the previous net
	opt := nn.NewAdam(p.LR)
	params := p.net.Params()
	order := make([]int, len(configs))
	for i := range order {
		order[i] = i
	}
	// Scale every configuration's descriptor matrix once up front; the
	// scaled features are constant across epochs, so the epoch loop below
	// runs allocation-free (one reshaped gradient buffer per step).
	scaled := make([]*tensor.Matrix, len(configs))
	maxAtoms := 0
	for ci := range feats {
		scaled[ci] = p.scaledFeatures(feats[ci])
		if n := len(feats[ci]); n > maxAtoms {
			maxAtoms = n
		}
	}
	grad := tensor.NewMatrix(maxAtoms, 1)
	shuffleRng := p.rng.Split()
	for epoch := 0; epoch < p.Epochs; epoch++ {
		shuffleRng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, ci := range order {
			x := scaled[ci]
			target := (perAtom[ci] - p.eShift) / p.eScale
			for _, pp := range params {
				pp.Grad.Zero()
			}
			out := p.net.Forward(x, true)
			// Predicted normalized per-atom energy is the mean output.
			mean := 0.0
			for i := 0; i < out.Rows; i++ {
				mean += out.At(i, 0)
			}
			mean /= float64(out.Rows)
			if math.IsNaN(mean) || math.IsInf(mean, 0) {
				return nn.ErrDiverged
			}
			gb := grad.Reshape(out.Rows, 1)
			g := 2 * (mean - target) / float64(out.Rows)
			for i := range gb.Data {
				gb.Data[i] = g
			}
			p.net.Backward(gb)
			opt.Step(params)
		}
	}
	p.trained = true
	p.trainSeen = len(configs)
	return nil
}

func (p *NNPotential) scaledFeatures(rows [][]float64) *tensor.Matrix {
	return p.scaledFeaturesInto(tensor.NewMatrix(len(rows), p.SF.Dim()), rows)
}

// scaledFeaturesInto standardizes the per-atom descriptor rows into dst
// (reshaped to fit) — the single home of the feature normalization used
// by both training and inference.
func (p *NNPotential) scaledFeaturesInto(dst *tensor.Matrix, rows [][]float64) *tensor.Matrix {
	dst.Reshape(len(rows), p.SF.Dim())
	for i, row := range rows {
		xr := dst.Row(i)
		for k, v := range row {
			xr[k] = (v - p.featMean[k]) / p.featStd[k]
		}
	}
	return dst
}

// PredictEnergy returns the learned total energy of a configuration. It
// batches all atoms through one network pass using the potential's owned
// inference workspaces, so repeated calls (committee sweeps, active
// learning pool scans) reuse the same buffers. Because those workspaces
// are shared, an NNPotential is NOT safe for concurrent use; parallelize
// across potentials (e.g. one Committee member per goroutine), not
// across calls on one.
func (p *NNPotential) PredictEnergy(c *Configuration) float64 {
	if !p.trained {
		panic("potential: PredictEnergy before Fit")
	}
	if p.featBuf == nil {
		p.featBuf = tensor.NewMatrix(0, p.SF.Dim())
	}
	x := p.scaledFeaturesInto(p.featBuf, p.SF.Compute(c))
	if p.pred == nil {
		p.pred = p.net.NewPredictor()
	}
	out := p.pred.Forward(x)
	mean := 0.0
	for i := 0; i < out.Rows; i++ {
		mean += out.At(i, 0)
	}
	mean /= float64(out.Rows)
	return (mean*p.eScale + p.eShift) * float64(c.NAtoms())
}

// MAE evaluates the potential against reference energies.
func (p *NNPotential) MAE(configs []*Configuration, energies []float64) float64 {
	pred := make([]float64, len(configs))
	for i, c := range configs {
		pred[i] = p.PredictEnergy(c)
	}
	return stats.MAE(pred, energies)
}

// Committee is an ensemble of NN potentials whose disagreement provides
// the uncertainty signal driving active learning (query-by-committee).
type Committee struct {
	Members []*NNPotential
}

// NewCommittee builds size independently seeded potentials.
func NewCommittee(size int, sf *SymmetryFunctions, hidden []int, rng *xrand.Rand) *Committee {
	com := &Committee{}
	for i := 0; i < size; i++ {
		com.Members = append(com.Members, NewNNPotential(sf, hidden, rng.Split()))
	}
	return com
}

// Fit trains every member on the same data. Members are independent
// networks with their own rng streams and workspaces, so their fits run
// concurrently over a bounded worker pool (the same serving-while-training
// fan-out pattern core's sharded wrapper uses); results are identical to a
// sequential fit regardless of scheduling.
func (c *Committee) Fit(configs []*Configuration, energies []float64) error {
	errs := make([]error, len(c.Members))
	parallel.ForEachBounded(len(c.Members), runtime.GOMAXPROCS(0), func(i int) {
		errs[i] = c.Members[i].Fit(configs, energies)
	})
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("potential: committee member %d: %w", i, err)
		}
	}
	return nil
}

// Predict returns the committee mean and standard deviation of the total
// energy.
func (c *Committee) Predict(conf *Configuration) (mean, std float64) {
	var w stats.Welford
	for _, m := range c.Members {
		w.Add(m.PredictEnergy(conf))
	}
	sd := w.StdDev()
	if math.IsNaN(sd) {
		sd = 0
	}
	return w.Mean(), sd
}

// MAE evaluates the committee mean prediction.
func (c *Committee) MAE(configs []*Configuration, energies []float64) float64 {
	pred := make([]float64, len(configs))
	for i, conf := range configs {
		pred[i], _ = c.Predict(conf)
	}
	return stats.MAE(pred, energies)
}

// ALRound is one active-learning iteration record.
type ALRound struct {
	Samples int
	TestMAE float64
}

// ALStrategy selects acquisition behaviour.
type ALStrategy int

// Active-learning strategies.
const (
	ALRandom ALStrategy = iota
	ALCommitteeVariance
)

// String returns the strategy name.
func (s ALStrategy) String() string {
	if s == ALCommitteeVariance {
		return "committee-variance"
	}
	return "random"
}

// ActiveLearnConfig parameterizes ActiveLearn.
type ActiveLearnConfig struct {
	Strategy       ALStrategy
	CommitteeSize  int
	Hidden         []int
	InitialSamples int
	BatchSize      int
	MaxSamples     int
	Seed           uint64
}

// ActiveLearn runs pool-based active learning of the reference oracle,
// returning the learning curve. It reproduces the §II-C2 claim that
// uncertainty-driven acquisition reaches target accuracy with a fraction
// of the data random acquisition needs (experiment E6).
func ActiveLearn(oracle *AbInitio, sf *SymmetryFunctions, pool []*Configuration,
	testConfigs []*Configuration, testEnergies []float64, cfg ActiveLearnConfig) ([]ALRound, error) {
	if cfg.CommitteeSize < 1 {
		cfg.CommitteeSize = 3
	}
	if cfg.InitialSamples < 1 || cfg.InitialSamples > len(pool) {
		return nil, fmt.Errorf("potential: initial samples %d invalid for pool %d", cfg.InitialSamples, len(pool))
	}
	rng := xrand.New(cfg.Seed + 0xA1)
	order := rng.Perm(len(pool))
	var train []*Configuration
	var trainE []float64
	take := func(idx []int) {
		for _, id := range idx {
			train = append(train, pool[id])
			trainE = append(trainE, oracle.Energy(pool[id]))
		}
	}
	take(order[:cfg.InitialSamples])
	available := order[cfg.InitialSamples:]

	var curve []ALRound
	for {
		com := NewCommittee(cfg.CommitteeSize, sf, cfg.Hidden, rng.Split())
		if err := com.Fit(train, trainE); err != nil {
			return curve, err
		}
		curve = append(curve, ALRound{Samples: len(train), TestMAE: com.MAE(testConfigs, testEnergies)})
		if len(train) >= cfg.MaxSamples || len(available) == 0 {
			return curve, nil
		}
		batch := cfg.BatchSize
		if batch <= 0 {
			batch = 10
		}
		if batch > len(available) {
			batch = len(available)
		}
		var chosen []int
		if cfg.Strategy == ALCommitteeVariance {
			type cand struct {
				pos int
				unc float64
			}
			cands := make([]cand, len(available))
			for i, id := range available {
				_, sd := com.Predict(pool[id])
				cands[i] = cand{pos: i, unc: sd}
			}
			sort.Slice(cands, func(i, j int) bool { return cands[i].unc > cands[j].unc })
			taken := map[int]bool{}
			for _, cd := range cands[:batch] {
				chosen = append(chosen, available[cd.pos])
				taken[cd.pos] = true
			}
			var rest []int
			for i, id := range available {
				if !taken[i] {
					rest = append(rest, id)
				}
			}
			available = rest
		} else {
			chosen = append(chosen, available[:batch]...)
			available = available[batch:]
		}
		take(chosen)
	}
}

// SamplesToReachMAE returns the first training-set size achieving the
// target MAE, or -1.
func SamplesToReachMAE(curve []ALRound, target float64) int {
	for _, r := range curve {
		if r.TestMAE <= target {
			return r.Samples
		}
	}
	return -1
}
