package potential

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/xrand"
)

func makeDataset(t testing.TB, oracle *AbInitio, n, atoms int, seed uint64) ([]*Configuration, []float64) {
	t.Helper()
	rng := xrand.New(seed)
	base, err := RandomConfiguration(atoms, 4.0, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	configs := make([]*Configuration, n)
	energies := make([]float64, n)
	for i := 0; i < n; i++ {
		configs[i] = Perturb(base, 0.25, rng)
		energies[i] = oracle.Energy(configs[i])
	}
	return configs, energies
}

func TestRandomConfigurationRespectsMinDist(t *testing.T) {
	rng := xrand.New(1)
	c, err := RandomConfiguration(12, 5.0, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if c.NAtoms() != 12 {
		t.Fatalf("atom count %d", c.NAtoms())
	}
	for i := 0; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			if d := c.dist(i, j); d < 1.0 {
				t.Fatalf("atoms %d,%d at distance %g < minDist", i, j, d)
			}
		}
	}
}

func TestRandomConfigurationImpossiblePacking(t *testing.T) {
	rng := xrand.New(2)
	if _, err := RandomConfiguration(1000, 2.0, 1.5, rng); err == nil {
		t.Fatal("impossible packing should error")
	}
}

func TestAbInitioEnergyFinite(t *testing.T) {
	oracle := NewAbInitio()
	rng := xrand.New(3)
	for i := 0; i < 10; i++ {
		c, err := RandomConfiguration(8, 4.0, 0.9, rng)
		if err != nil {
			t.Fatal(err)
		}
		e := oracle.Energy(c)
		if math.IsNaN(e) || math.IsInf(e, 0) {
			t.Fatalf("non-finite energy %g", e)
		}
	}
}

func TestAbInitioInvariances(t *testing.T) {
	// The reference energy must be translation invariant and
	// permutation invariant (it depends only on distances).
	oracle := NewAbInitio()
	rng := xrand.New(4)
	c, err := RandomConfiguration(6, 4.0, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	e0 := oracle.Energy(c)
	// Translate.
	shifted := &Configuration{Pos: make([]float64, len(c.Pos))}
	for i := 0; i < c.NAtoms(); i++ {
		shifted.Pos[3*i] = c.Pos[3*i] + 10
		shifted.Pos[3*i+1] = c.Pos[3*i+1] - 3
		shifted.Pos[3*i+2] = c.Pos[3*i+2] + 0.5
	}
	if math.Abs(oracle.Energy(shifted)-e0) > 1e-9 {
		t.Fatal("energy not translation invariant")
	}
	// Permute atoms 0 and 3.
	perm := &Configuration{Pos: append([]float64(nil), c.Pos...)}
	for d := 0; d < 3; d++ {
		perm.Pos[d], perm.Pos[9+d] = perm.Pos[9+d], perm.Pos[d]
	}
	if math.Abs(oracle.Energy(perm)-e0) > 1e-9 {
		t.Fatal("energy not permutation invariant")
	}
}

func TestAbInitioRotationInvariantQuick(t *testing.T) {
	oracle := NewAbInitio()
	rng := xrand.New(5)
	c, err := RandomConfiguration(5, 4.0, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	e0 := oracle.Energy(c)
	if err := quick.Check(func(angleRaw uint8) bool {
		theta := 2 * math.Pi * float64(angleRaw) / 256
		cos, sin := math.Cos(theta), math.Sin(theta)
		rot := &Configuration{Pos: make([]float64, len(c.Pos))}
		for i := 0; i < c.NAtoms(); i++ {
			x, y, z := c.Pos[3*i], c.Pos[3*i+1], c.Pos[3*i+2]
			rot.Pos[3*i] = cos*x - sin*y
			rot.Pos[3*i+1] = sin*x + cos*y
			rot.Pos[3*i+2] = z
		}
		return math.Abs(oracle.Energy(rot)-e0) < 1e-8
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSymmetryFunctionInvariances(t *testing.T) {
	sf := DefaultSymmetryFunctions()
	rng := xrand.New(6)
	c, err := RandomConfiguration(6, 3.5, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	f0 := sf.Compute(c)
	// Translation invariance.
	shifted := &Configuration{Pos: make([]float64, len(c.Pos))}
	for i := range c.Pos {
		shifted.Pos[i] = c.Pos[i] + 7.3
	}
	f1 := sf.Compute(shifted)
	for i := range f0 {
		for k := range f0[i] {
			if math.Abs(f0[i][k]-f1[i][k]) > 1e-9 {
				t.Fatal("descriptors not translation invariant")
			}
		}
	}
	// Swapping two NEIGHBOR atoms must not change atom 0's descriptor
	// (exchange invariance).
	perm := &Configuration{Pos: append([]float64(nil), c.Pos...)}
	for d := 0; d < 3; d++ {
		perm.Pos[3+d], perm.Pos[6+d] = perm.Pos[6+d], perm.Pos[3+d]
	}
	f2 := sf.Compute(perm)
	for k := range f0[0] {
		if math.Abs(f0[0][k]-f2[0][k]) > 1e-9 {
			t.Fatal("descriptor of atom 0 changed under neighbor exchange")
		}
	}
}

func TestSymmetryFunctionDim(t *testing.T) {
	sf := DefaultSymmetryFunctions()
	if sf.Dim() != 8 {
		t.Fatalf("dim %d want 8", sf.Dim())
	}
	rng := xrand.New(7)
	c, _ := RandomConfiguration(4, 3.5, 1.0, rng)
	f := sf.Compute(c)
	if len(f) != 4 || len(f[0]) != 8 {
		t.Fatalf("descriptor shape %dx%d", len(f), len(f[0]))
	}
}

func TestCutoffFunction(t *testing.T) {
	sf := DefaultSymmetryFunctions()
	if sf.cutoffFn(0) != 1 {
		t.Fatal("cutoff at r=0 should be 1")
	}
	if sf.cutoffFn(sf.Cutoff) != 0 || sf.cutoffFn(sf.Cutoff+1) != 0 {
		t.Fatal("cutoff beyond Rc should be 0")
	}
	// Monotone decreasing.
	prev := 1.0
	for r := 0.1; r < sf.Cutoff; r += 0.1 {
		v := sf.cutoffFn(r)
		if v > prev+1e-12 {
			t.Fatal("cutoff function not monotone")
		}
		prev = v
	}
}

func TestNNPotentialLearnsOracle(t *testing.T) {
	oracle := NewAbInitio()
	oracle.SCFIters = 5 // cheaper labels for the test
	trainC, trainE := makeDataset(t, oracle, 120, 8, 10)
	testC, testE := makeDataset(t, oracle, 30, 8, 11)
	sf := DefaultSymmetryFunctions()
	p := NewNNPotential(sf, []int{24, 24}, xrand.New(12))
	p.Epochs = 120
	if err := p.Fit(trainC, trainE); err != nil {
		t.Fatal(err)
	}
	if !p.Trained() || p.TrainingSetSize() != 120 {
		t.Fatal("training state wrong")
	}
	mae := p.MAE(testC, testE)
	// Baseline: predicting the mean training energy.
	meanE := stats.Mean(trainE)
	basePred := make([]float64, len(testE))
	for i := range basePred {
		basePred[i] = meanE
	}
	baseMAE := stats.MAE(basePred, testE)
	if mae >= baseMAE {
		t.Fatalf("NN potential MAE %g not better than mean baseline %g", mae, baseMAE)
	}
}

func TestNNPotentialErrors(t *testing.T) {
	sf := DefaultSymmetryFunctions()
	p := NewNNPotential(sf, []int{8}, xrand.New(13))
	if err := p.Fit(nil, nil); err == nil {
		t.Fatal("empty fit should error")
	}
	rng := xrand.New(14)
	c, _ := RandomConfiguration(4, 3.5, 1.0, rng)
	if err := p.Fit([]*Configuration{c}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestNNPotentialPanicsUntrained(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("predict before fit did not panic")
		}
	}()
	sf := DefaultSymmetryFunctions()
	p := NewNNPotential(sf, []int{8}, xrand.New(15))
	c, _ := RandomConfiguration(4, 3.5, 1.0, xrand.New(16))
	p.PredictEnergy(c)
}

func TestCommitteeSpread(t *testing.T) {
	oracle := NewAbInitio()
	oracle.SCFIters = 3
	trainC, trainE := makeDataset(t, oracle, 40, 6, 20)
	sf := DefaultSymmetryFunctions()
	com := NewCommittee(3, sf, []int{12}, xrand.New(21))
	for _, m := range com.Members {
		m.Epochs = 40
	}
	if err := com.Fit(trainC, trainE); err != nil {
		t.Fatal(err)
	}
	// In-distribution point: committee must produce finite mean and some
	// spread (members differ by init).
	mean, std := com.Predict(trainC[0])
	if math.IsNaN(mean) || std < 0 {
		t.Fatalf("committee prediction invalid: %g ± %g", mean, std)
	}
	// Far out-of-distribution: spread should typically exceed
	// in-distribution spread.
	far, _ := RandomConfiguration(6, 12.0, 2.0, xrand.New(22))
	_, stdFar := com.Predict(far)
	if stdFar <= 0 {
		t.Fatal("committee should disagree out of distribution")
	}
}

func TestActiveLearnCurves(t *testing.T) {
	oracle := NewAbInitio()
	oracle.SCFIters = 3
	rng := xrand.New(30)
	base, err := RandomConfiguration(6, 3.5, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	pool := make([]*Configuration, 80)
	for i := range pool {
		pool[i] = Perturb(base, 0.3, rng)
	}
	testC := make([]*Configuration, 20)
	testE := make([]float64, 20)
	for i := range testC {
		testC[i] = Perturb(base, 0.3, rng)
		testE[i] = oracle.Energy(testC[i])
	}
	sf := DefaultSymmetryFunctions()
	cfg := ActiveLearnConfig{
		Strategy: ALCommitteeVariance, CommitteeSize: 2, Hidden: []int{12},
		InitialSamples: 10, BatchSize: 10, MaxSamples: 40, Seed: 31,
	}
	curve, err := ActiveLearn(oracle, sf, pool, testC, testE, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) < 2 {
		t.Fatalf("curve too short: %d", len(curve))
	}
	if curve[len(curve)-1].Samples != 40 {
		t.Fatalf("final samples %d want 40", curve[len(curve)-1].Samples)
	}
	for _, r := range curve {
		if math.IsNaN(r.TestMAE) {
			t.Fatal("NaN in learning curve")
		}
	}
}

func TestActiveLearnBadConfig(t *testing.T) {
	oracle := NewAbInitio()
	sf := DefaultSymmetryFunctions()
	if _, err := ActiveLearn(oracle, sf, nil, nil, nil, ActiveLearnConfig{InitialSamples: 5}); err == nil {
		t.Fatal("empty pool should error")
	}
}

func TestSamplesToReachMAE(t *testing.T) {
	curve := []ALRound{{10, 2.0}, {20, 1.0}, {30, 0.4}}
	if SamplesToReachMAE(curve, 1.0) != 20 {
		t.Fatal("threshold lookup wrong")
	}
	if SamplesToReachMAE(curve, 0.1) != -1 {
		t.Fatal("unreachable threshold should be -1")
	}
}

func TestALStrategyString(t *testing.T) {
	if ALRandom.String() != "random" || ALCommitteeVariance.String() != "committee-variance" {
		t.Fatal("strategy names wrong")
	}
}

func TestPerturbChangesCoordinates(t *testing.T) {
	rng := xrand.New(40)
	c, _ := RandomConfiguration(5, 4.0, 1.0, rng)
	p := Perturb(c, 0.1, rng)
	if p.NAtoms() != c.NAtoms() {
		t.Fatal("atom count changed")
	}
	same := 0
	for i := range c.Pos {
		if p.Pos[i] == c.Pos[i] {
			same++
		}
	}
	if same > 1 {
		t.Fatal("perturbation left coordinates unchanged")
	}
}

func BenchmarkAbInitioEnergy(b *testing.B) {
	oracle := NewAbInitio()
	c, err := RandomConfiguration(16, 4.5, 1.0, xrand.New(50))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oracle.Energy(c)
	}
}

func BenchmarkNNPotentialEnergy(b *testing.B) {
	oracle := NewAbInitio()
	oracle.SCFIters = 3
	trainC, trainE := makeDataset(b, oracle, 30, 16, 51)
	sf := DefaultSymmetryFunctions()
	p := NewNNPotential(sf, []int{24, 24}, xrand.New(52))
	p.Epochs = 20
	if err := p.Fit(trainC, trainE); err != nil {
		b.Fatal(err)
	}
	c := trainC[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.PredictEnergy(c)
	}
}
