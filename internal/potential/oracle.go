// Package potential implements the quantum-surrogate exemplar of §II-C2:
// a Behler–Parrinello-style neural network potential trained against an
// expensive reference oracle, plus the active-learning loop that reaches
// target accuracy with a fraction of the data (Smith et al.'s "less is
// more" result, reproduced as experiment E6).
//
// The paper's reference method is DFT/CCSD(T), which we cannot run; the
// substitution (DESIGN.md §2) is a synthetic "ab initio" oracle with the
// same cost structure: an O(N²) pair term, an O(N³) Axilrod–Teller triple
// term, and an inner self-consistency loop standing in for SCF iterations.
// What matters for the reproduction is the claim shape — the learned
// potential is orders of magnitude cheaper at near-reference accuracy —
// not the chemistry.
package potential

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// Configuration is one atomic configuration: N atoms in free space,
// coordinates packed x,y,z.
type Configuration struct {
	Pos []float64
}

// NAtoms returns the atom count.
func (c *Configuration) NAtoms() int { return len(c.Pos) / 3 }

// dist returns the distance between atoms i and j.
func (c *Configuration) dist(i, j int) float64 {
	dx := c.Pos[3*i] - c.Pos[3*j]
	dy := c.Pos[3*i+1] - c.Pos[3*j+1]
	dz := c.Pos[3*i+2] - c.Pos[3*j+2]
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// AbInitio is the expensive reference oracle. Its Energy method is the
// ground truth the NN potential learns.
type AbInitio struct {
	// PairA, PairRho, PairC6 parameterize the Born–Mayer + dispersion pair
	// term.
	PairA, PairRho, PairC6 float64
	// TripleLambda scales the Axilrod–Teller three-body term.
	TripleLambda float64
	// SCFIters is the iteration count of the synthetic self-consistency
	// loop (the cost knob standing in for DFT SCF cycles).
	SCFIters int
}

// NewAbInitio returns the reference oracle with physically shaped
// defaults.
func NewAbInitio() *AbInitio {
	return &AbInitio{PairA: 20, PairRho: 0.8, PairC6: 1.0, TripleLambda: 0.15, SCFIters: 25}
}

// Energy computes the total reference energy of a configuration.
func (a *AbInitio) Energy(c *Configuration) float64 {
	n := c.NAtoms()
	// Pair term.
	e := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			r := c.dist(i, j)
			e += a.PairA*math.Exp(-r/a.PairRho) - a.PairC6/(r*r*r*r*r*r+0.5)
		}
	}
	// Axilrod–Teller triple-dipole term: O(N^3).
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			rij := c.dist(i, j)
			for k := j + 1; k < n; k++ {
				rik := c.dist(i, k)
				rjk := c.dist(j, k)
				cosI := cosAngle(rij, rik, rjk)
				cosJ := cosAngle(rij, rjk, rik)
				cosK := cosAngle(rik, rjk, rij)
				denom := rij * rik * rjk
				denom = denom * denom * denom
				e += a.TripleLambda * (1 + 3*cosI*cosJ*cosK) / denom
			}
		}
	}
	// Synthetic SCF loop: iterate per-atom "effective charges" to a fixed
	// point; contributes a small density-dependent correction and, more
	// importantly, the iteration cost profile of the reference method.
	q := make([]float64, n)
	for i := range q {
		q[i] = 1
	}
	for it := 0; it < a.SCFIters; it++ {
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				s += q[j] * math.Exp(-c.dist(i, j))
			}
			q[i] = 1 / (1 + 0.3*s)
		}
	}
	corr := 0.0
	for _, qi := range q {
		corr += (qi - 1) * (qi - 1)
	}
	return e + 0.5*corr
}

// cosAngle returns the cosine of the angle opposite side c in a triangle
// with sides a, b, c (law of cosines), clamped to [-1, 1].
func cosAngle(a, b, c float64) float64 {
	v := (a*a + b*b - c*c) / (2 * a * b)
	if v > 1 {
		return 1
	}
	if v < -1 {
		return -1
	}
	return v
}

// RandomConfiguration samples n atoms uniformly in a cube of the given
// edge, rejecting placements closer than minDist (up to a retry budget).
func RandomConfiguration(n int, edge, minDist float64, rng *xrand.Rand) (*Configuration, error) {
	c := &Configuration{Pos: make([]float64, 3*n)}
	const maxTries = 2000
	for i := 0; i < n; i++ {
		placed := false
		for try := 0; try < maxTries; try++ {
			x, y, z := rng.Float64()*edge, rng.Float64()*edge, rng.Float64()*edge
			ok := true
			for j := 0; j < i; j++ {
				dx, dy, dz := x-c.Pos[3*j], y-c.Pos[3*j+1], z-c.Pos[3*j+2]
				if dx*dx+dy*dy+dz*dz < minDist*minDist {
					ok = false
					break
				}
			}
			if ok {
				c.Pos[3*i], c.Pos[3*i+1], c.Pos[3*i+2] = x, y, z
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("potential: could not place atom %d of %d (edge %g, minDist %g)", i, n, edge, minDist)
		}
	}
	return c, nil
}

// Perturb returns a copy of c with Gaussian displacement of the given
// amplitude on every coordinate — the thermal-sampling generator for
// training sets around a base geometry.
func Perturb(c *Configuration, amplitude float64, rng *xrand.Rand) *Configuration {
	out := &Configuration{Pos: make([]float64, len(c.Pos))}
	for i, v := range c.Pos {
		out.Pos[i] = v + rng.Normal(0, amplitude)
	}
	return out
}
