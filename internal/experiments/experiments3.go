package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/parallel"
	"repro/internal/sched"
	"repro/internal/xrand"
)

// E10ModelsResult compares the four synchronization patterns.
type E10ModelsResult struct {
	Workers []int
	// Rows indexed [model][workerIdx].
	FinalLoss [][]float64
	Seconds   [][]float64
	// Collective comparison at max workers (full SGD run).
	RingSeconds    float64
	CentralSeconds float64
	// Pure collective timing per allreduce round at two vector lengths:
	// the optimized ring pays off once the vector is large (model-size
	// dependence, §III-A: "the model size can be huge").
	SmallVecLen, LargeVecLen      int
	RingSmallSec, CentralSmallSec float64
	RingLargeSec, CentralLargeSec float64
}

// E10ParallelModels reproduces §III-A: SGD under Locking / Rotation /
// Allreduce / Asynchronous synchronization at several worker counts, plus
// the optimized-vs-naive collective comparison ("optimized collective
// communication can improve the model update speed, thus allowing the
// model to converge faster").
func E10ParallelModels(scale Scale) (*E10ModelsResult, error) {
	rng := xrand.New(70)
	n := pick(scale, 800, 6000)
	dim := pick(scale, 16, 64)
	epochs := pick(scale, 60, 300)
	prob, _ := parallel.NewRandomSGDProblem(n, dim, 0.01, rng)

	res := &E10ModelsResult{Workers: []int{1, 2, 4, 8}}
	res.FinalLoss = make([][]float64, len(parallel.AllModels()))
	res.Seconds = make([][]float64, len(parallel.AllModels()))
	for mi, model := range parallel.AllModels() {
		for _, w := range res.Workers {
			tr, err := parallel.RunSGD(prob, model, parallel.SGDConfig{
				Workers: w, Epochs: epochs, LR: 0.1, Seed: 71,
			})
			if err != nil {
				return nil, err
			}
			res.FinalLoss[mi] = append(res.FinalLoss[mi], tr.Final())
			res.Seconds[mi] = append(res.Seconds[mi], tr.Seconds[len(tr.Seconds)-1])
		}
	}
	// Collectives head-to-head at 8 workers.
	trRing, err := parallel.RunSGD(prob, parallel.Allreduce, parallel.SGDConfig{
		Workers: 8, Epochs: epochs, LR: 0.1, UseRing: true, Seed: 71,
	})
	if err != nil {
		return nil, err
	}
	trCentral, err := parallel.RunSGD(prob, parallel.Allreduce, parallel.SGDConfig{
		Workers: 8, Epochs: epochs, LR: 0.1, UseRing: false, Seed: 71,
	})
	if err != nil {
		return nil, err
	}
	res.RingSeconds = trRing.Seconds[len(trRing.Seconds)-1]
	res.CentralSeconds = trCentral.Seconds[len(trCentral.Seconds)-1]

	// Pure collective micro-comparison at small and large vector lengths.
	res.SmallVecLen = 1 << 10
	res.LargeVecLen = pick(scale, 1<<18, 1<<20)
	rounds := pick(scale, 20, 50)
	res.RingSmallSec = timeRingAllreduce(8, res.SmallVecLen, rounds)
	res.CentralSmallSec = timeCentralAllreduce(8, res.SmallVecLen, rounds)
	res.RingLargeSec = timeRingAllreduce(8, res.LargeVecLen, rounds)
	res.CentralLargeSec = timeCentralAllreduce(8, res.LargeVecLen, rounds)
	return res, nil
}

func timeRingAllreduce(p, n, rounds int) float64 {
	ring := parallel.NewRingAllreducer(p)
	vecs := make([][]float64, p)
	for r := range vecs {
		vecs[r] = make([]float64, n)
	}
	t0 := time.Now()
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				ring.Allreduce(r, vecs[r])
			}(r)
		}
		wg.Wait()
	}
	return time.Since(t0).Seconds() / float64(rounds)
}

func timeCentralAllreduce(p, n, rounds int) float64 {
	central := parallel.NewCentralAllreducer(p, n)
	vecs := make([][]float64, p)
	for r := range vecs {
		vecs[r] = make([]float64, n)
	}
	t0 := time.Now()
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				central.Allreduce(vecs[r])
			}(r)
		}
		wg.Wait()
	}
	return time.Since(t0).Seconds() / float64(rounds)
}

// String renders the E10 models table.
func (r *E10ModelsResult) String() string {
	var b strings.Builder
	b.WriteString("E10a parallel computation models (SGD, final loss | seconds)\n")
	fmt.Fprintf(&b, "  %-14s", "model")
	for _, w := range r.Workers {
		fmt.Fprintf(&b, " %-19s", fmt.Sprintf("P=%d", w))
	}
	b.WriteString("\n")
	for mi, model := range parallel.AllModels() {
		fmt.Fprintf(&b, "  %-14s", model)
		for wi := range r.Workers {
			fmt.Fprintf(&b, " %-19s", fmt.Sprintf("%.3g | %.3gs", r.FinalLoss[mi][wi], r.Seconds[mi][wi]))
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "  collectives @P=8 (full SGD run): ring=%.3gs  central=%.3gs\n", r.RingSeconds, r.CentralSeconds)
	fmt.Fprintf(&b, "  allreduce/round  len=%-8d ring=%.3gs central=%.3gs\n", r.SmallVecLen, r.RingSmallSec, r.CentralSmallSec)
	fmt.Fprintf(&b, "  allreduce/round  len=%-8d ring=%.3gs central=%.3gs (optimized collective wins at scale)\n", r.LargeVecLen, r.RingLargeSec, r.CentralLargeSec)
	return b.String()
}

// E10SchedResult compares scheduling strategies on the heterogeneous
// MLaroundHPC workload.
type E10SchedResult struct {
	Strategies []string
	Makespan   []float64
	Imbalance  []float64
	Util       []float64
}

// E10Scheduler reproduces research issues 7–8: heterogeneous surrogate +
// simulation task mixes need dynamic load balancing; static placement
// strands workers behind the expensive simulations.
func E10Scheduler(scale Scale) (*E10SchedResult, error) {
	nSim := pick(scale, 8, 24)
	nInfer := pick(scale, 200, 2000)
	simIters := pick(scale, 2_000_000, 20_000_000)
	inferIters := pick(scale, 2_000, 20_000)
	const workers = 4

	res := &E10SchedResult{}
	runs := []struct {
		name string
		fn   func([]sched.Task, int) (*sched.Result, error)
	}{
		{"static", sched.RunStatic},
		{"dynamic", sched.RunDynamic},
		{"split-by-class", sched.RunSplitByClass},
	}
	for _, r := range runs {
		tasks := sched.MixedWorkload(nSim, nInfer, simIters, inferIters)
		out, err := r.fn(tasks, workers)
		if err != nil {
			return nil, err
		}
		res.Strategies = append(res.Strategies, r.name)
		res.Makespan = append(res.Makespan, out.Makespan.Seconds())
		res.Imbalance = append(res.Imbalance, out.Imbalance())
		res.Util = append(res.Util, out.Utilization())
	}
	return res, nil
}

// String renders the E10 scheduler table.
func (r *E10SchedResult) String() string {
	var b strings.Builder
	b.WriteString("E10b heterogeneous scheduling (sim+inference mix, 4 workers)\n")
	fmt.Fprintf(&b, "  %-16s %-12s %-12s %-12s\n", "strategy", "makespan(s)", "imbalance", "utilization")
	for i, s := range r.Strategies {
		fmt.Fprintf(&b, "  %-16s %-12.4g %-12.3f %-12.3f\n", s, r.Makespan[i], r.Imbalance[i], r.Util[i])
	}
	return b.String()
}
