package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/epi"
	"repro/internal/md"
	"repro/internal/nn"
	"repro/internal/potential"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/tissue"
	"repro/internal/xrand"
)

// E4Result compares DEFSI against the mechanistic and naive baselines.
type E4Result struct {
	Methods []string
	State   []float64
	County  []float64
}

// E4DEFSI reproduces §II-A: the simulation-trained two-branch network
// "performs comparably or better ... for state level forecasting; and it
// outperforms the EpiFast method for county level forecasting".
func E4DEFSI(scale Scale) (*E4Result, error) {
	popCfg := epi.DefaultPopulationConfig()
	popCfg.Counties = pick(scale, 4, 8)
	popCfg.MeanCountyPop = pick(scale, 250, 800)
	popCfg.Seed = 100
	net, err := epi.GeneratePopulation(popCfg)
	if err != nil {
		return nil, err
	}
	weeks := pick(scale, 10, 16)
	base := epi.DefaultDiseaseParams()

	cfg := epi.DefaultDEFSIConfig()
	cfg.TrainSeasons = pick(scale, 20, 60)
	cfg.Epochs = pick(scale, 60, 150)
	d, err := epi.TrainDEFSI(net, []epi.DiseaseParams{base}, weeks, cfg)
	if err != nil {
		return nil, err
	}

	// Held-out truth season with slightly shifted transmissibility.
	truthParams := base
	truthParams.Beta *= 1.1
	truth, err := epi.Simulate(net, truthParams, weeks, 987654)
	if err != nil {
		return nil, err
	}
	rng := xrand.New(55)
	sv := epi.Surveil(truth.WeeklyState, cfg.ReportRate, cfg.NoiseFrac, rng)

	fromWeek := cfg.Window
	res := &E4Result{}

	// DEFSI.
	defsiEval, err := epi.EvaluateForecasts(truth, fromWeek,
		func(t int) (float64, error) { return d.ForecastState(sv, t) },
		func(t int) ([]float64, error) { return d.ForecastCounty(sv, t) }, "DEFSI")
	if err != nil {
		return nil, err
	}
	// EpiFast-like calibration.
	ef := epi.NewEpiFastLike(net, base, weeks, cfg.ReportRate, 77)
	if err := ef.Calibrate(sv, fromWeek); err != nil {
		return nil, err
	}
	efEval, err := epi.EvaluateForecasts(truth, fromWeek, ef.ForecastState, ef.ForecastCounty, "EpiFast-like")
	if err != nil {
		return nil, err
	}
	// Persistence.
	pf := epi.NewPersistenceForecast(net, cfg.ReportRate)
	pfEval, err := epi.EvaluateForecasts(truth, fromWeek,
		func(t int) (float64, error) { return pf.ForecastState(sv, t) },
		func(t int) ([]float64, error) { return pf.ForecastCounty(sv, t) }, "persistence")
	if err != nil {
		return nil, err
	}
	for _, ev := range []*epi.ForecastEval{defsiEval, efEval, pfEval} {
		res.Methods = append(res.Methods, ev.Method)
		res.State = append(res.State, ev.StateRMSE)
		res.County = append(res.County, ev.CountyRMSE)
	}
	return res, nil
}

// String renders the E4 table.
func (r *E4Result) String() string {
	var b strings.Builder
	b.WriteString("E4 DEFSI vs baselines (weekly incidence RMSE; lower is better)\n")
	fmt.Fprintf(&b, "  %-14s %-12s %-12s\n", "method", "state", "county")
	for i, m := range r.Methods {
		fmt.Fprintf(&b, "  %-14s %-12.4g %-12.4g\n", m, r.State[i], r.County[i])
	}
	return b.String()
}

// E5Result is the NN-potential speedup/accuracy table.
type E5Result struct {
	TrainConfigs  int
	TestMAE       float64
	MeanBaseline  float64
	OracleSeconds float64
	NNSeconds     float64
	SpeedupFactor float64
}

// E5NNPotential reproduces §II-C2: the learned potential is vastly cheaper
// than the reference method ("the ML model was >1000 faster than the
// traditional evaluation of the underlying quantum mechanical physical
// equations") at near-reference accuracy.
func E5NNPotential(scale Scale) (*E5Result, error) {
	rng := xrand.New(60)
	oracle := potential.NewAbInitio()
	// The oracle's SCF iteration count is the documented cost knob for the
	// DFT stand-in (DESIGN.md §2); the reproduction runs it at a depth
	// where the reference method dominates, as DFT does in the paper.
	oracle.SCFIters = pick(scale, 400, 1000)
	atoms := pick(scale, 16, 32)
	nTrain := pick(scale, 80, 400)
	nTest := pick(scale, 20, 80)

	base, err := potential.RandomConfiguration(atoms, 4.5, 1.0, rng)
	if err != nil {
		return nil, err
	}
	mk := func(n int) ([]*potential.Configuration, []float64) {
		cs := make([]*potential.Configuration, n)
		es := make([]float64, n)
		for i := 0; i < n; i++ {
			cs[i] = potential.Perturb(base, 0.25, rng)
			es[i] = oracle.Energy(cs[i])
		}
		return cs, es
	}
	trainC, trainE := mk(nTrain)
	testC, testE := mk(nTest)

	sf := potential.DefaultSymmetryFunctions()
	p := potential.NewNNPotential(sf, []int{24, 24}, rng.Split())
	p.Epochs = pick(scale, 100, 300)
	if err := p.Fit(trainC, trainE); err != nil {
		return nil, err
	}

	res := &E5Result{TrainConfigs: nTrain, TestMAE: p.MAE(testC, testE)}
	meanPred := make([]float64, nTest)
	m := stats.Mean(trainE)
	for i := range meanPred {
		meanPred[i] = m
	}
	res.MeanBaseline = stats.MAE(meanPred, testE)

	// Timing: oracle vs learned potential on the same configuration.
	reps := pick(scale, 10, 40)
	t0 := time.Now()
	for i := 0; i < reps; i++ {
		oracle.Energy(testC[i%nTest])
	}
	res.OracleSeconds = time.Since(t0).Seconds() / float64(reps)
	t0 = time.Now()
	for i := 0; i < reps*10; i++ {
		p.PredictEnergy(testC[i%nTest])
	}
	res.NNSeconds = time.Since(t0).Seconds() / float64(reps*10)
	res.SpeedupFactor = res.OracleSeconds / res.NNSeconds
	return res, nil
}

// String renders the E5 table.
func (r *E5Result) String() string {
	return fmt.Sprintf(
		"E5 NN potential vs ab-initio stand-in (%d training configs)\n"+
			"  test MAE=%.4g (mean-predictor baseline %.4g)\n"+
			"  T(oracle)=%.3gs T(NN)=%.3gs  speedup=%.4g (paper: >1000x)\n",
		r.TrainConfigs, r.TestMAE, r.MeanBaseline,
		r.OracleSeconds, r.NNSeconds, r.SpeedupFactor)
}

// E6Result compares active-learning acquisition strategies.
type E6Result struct {
	TargetMAE     float64
	RandomCurve   []potential.ALRound
	ALCurve       []potential.ALRound
	RandomSamples int
	ALSamples     int
}

// E6ActiveLearning reproduces the §II-C2 claim that uncertainty-driven
// acquisition reaches target accuracy with a fraction of the data ("The
// AL approach reduced the amount of required training data to 10% of the
// original model").
func E6ActiveLearning(scale Scale) (*E6Result, error) {
	rng := xrand.New(61)
	oracle := potential.NewAbInitio()
	oracle.SCFIters = 5
	atoms := pick(scale, 8, 16)
	base, err := potential.RandomConfiguration(atoms, 4.0, 1.0, rng)
	if err != nil {
		return nil, err
	}
	// The pool is dominated by near-equilibrium geometries; only 20% are
	// the strongly distorted configurations the test set is drawn from.
	// Random acquisition mostly resamples the easy region; committee
	// variance targets "regions of chemical space where the current ML
	// model could not make good predictions" (§II-C2), which is what buys
	// the paper's sample-efficiency factor.
	poolN := pick(scale, 120, 600)
	pool := make([]*potential.Configuration, poolN)
	for i := range pool {
		amp := 0.1
		if i%5 == 0 {
			amp = 0.6
		}
		pool[i] = potential.Perturb(base, amp, rng)
	}
	nTest := pick(scale, 25, 100)
	testC := make([]*potential.Configuration, nTest)
	testE := make([]float64, nTest)
	for i := range testC {
		testC[i] = potential.Perturb(base, 0.6, rng)
		testE[i] = oracle.Energy(testC[i])
	}
	sf := potential.DefaultSymmetryFunctions()
	common := potential.ActiveLearnConfig{
		CommitteeSize:  2,
		Hidden:         []int{16},
		InitialSamples: pick(scale, 10, 30),
		BatchSize:      pick(scale, 10, 30),
		MaxSamples:     pick(scale, 70, 360),
		Seed:           62,
	}
	alCfg := common
	alCfg.Strategy = potential.ALCommitteeVariance
	alCurve, err := potential.ActiveLearn(oracle, sf, pool, testC, testE, alCfg)
	if err != nil {
		return nil, err
	}
	rndCfg := common
	rndCfg.Strategy = potential.ALRandom
	rndCurve, err := potential.ActiveLearn(oracle, sf, pool, testC, testE, rndCfg)
	if err != nil {
		return nil, err
	}
	// Target: 110% of the best accuracy random acquisition achieves
	// anywhere on its curve — "how many samples does each strategy need to
	// match random at its best".
	bestRnd := rndCurve[0].TestMAE
	for _, r := range rndCurve {
		if r.TestMAE < bestRnd {
			bestRnd = r.TestMAE
		}
	}
	target := bestRnd * 1.1
	return &E6Result{
		TargetMAE:     target,
		RandomCurve:   rndCurve,
		ALCurve:       alCurve,
		RandomSamples: potential.SamplesToReachMAE(rndCurve, target),
		ALSamples:     potential.SamplesToReachMAE(alCurve, target),
	}, nil
}

// String renders the E6 table.
func (r *E6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E6 active learning (target MAE=%.4g)\n", r.TargetMAE)
	fmt.Fprintf(&b, "  %-10s %-22s %-22s\n", "samples", "random MAE", "committee-variance MAE")
	n := len(r.RandomCurve)
	if len(r.ALCurve) > n {
		n = len(r.ALCurve)
	}
	for i := 0; i < n; i++ {
		rnd, al := "-", "-"
		samples := 0
		if i < len(r.RandomCurve) {
			rnd = fmt.Sprintf("%.4g", r.RandomCurve[i].TestMAE)
			samples = r.RandomCurve[i].Samples
		}
		if i < len(r.ALCurve) {
			al = fmt.Sprintf("%.4g", r.ALCurve[i].TestMAE)
			samples = r.ALCurve[i].Samples
		}
		fmt.Fprintf(&b, "  %-10d %-22s %-22s\n", samples, rnd, al)
	}
	fmt.Fprintf(&b, "  samples to target: random=%d  AL=%d (paper: AL needs ~10%%)\n", r.RandomSamples, r.ALSamples)
	return b.String()
}

// E7Result is the dropout-UQ calibration table.
type E7Result struct {
	DropoutRates []float64
	Coverage     []float64 // empirical coverage of ±2σ intervals
	MeanWidth    []float64
}

// E7DropoutUQ reproduces §III-B and research issue 10: MC-dropout supplies
// prediction intervals whose quality varies with the dropout rate ("two
// models with different dropout rates can produce different UQ results").
func E7DropoutUQ(scale Scale) (*E7Result, error) {
	rng := xrand.New(63)
	// Cheap analytic oracle so the experiment isolates UQ behaviour.
	f := func(x []float64) float64 {
		return 2*x[0]*x[0] + 0.5*x[1] + 0.3*x[0]*x[1]
	}
	n := pick(scale, 300, 1200)
	x := tensor.NewMatrix(n, 2)
	y := tensor.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.Range(-1, 1))
		x.Set(i, 1, rng.Range(-1, 1))
		y.Set(i, 0, f(x.Row(i))+rng.Normal(0, 0.05))
	}
	nTest := pick(scale, 100, 400)
	res := &E7Result{DropoutRates: []float64{0.05, 0.1, 0.2, 0.35, 0.5}}
	for _, p := range res.DropoutRates {
		net := nn.NewMLP(rng.Split(), nn.Tanh, p, 2, 48, 48, 1)
		if _, err := net.Fit(x, y, nn.TrainConfig{
			Epochs: pick(scale, 120, 400), BatchSize: 32,
			Optimizer: nn.NewAdam(3e-3), Seed: uint64(p * 1000),
		}); err != nil {
			return nil, err
		}
		target := make([]float64, nTest)
		lo := make([]float64, nTest)
		hi := make([]float64, nTest)
		widthSum := 0.0
		for i := 0; i < nTest; i++ {
			in := []float64{rng.Range(-1, 1), rng.Range(-1, 1)}
			target[i] = f(in)
			mean, std := net.PredictMC(in, 40)
			lo[i] = mean[0] - 2*std[0]
			hi[i] = mean[0] + 2*std[0]
			widthSum += hi[i] - lo[i]
		}
		res.Coverage = append(res.Coverage, stats.Coverage(target, lo, hi))
		res.MeanWidth = append(res.MeanWidth, widthSum/float64(nTest))
	}
	return res, nil
}

// String renders the E7 table.
func (r *E7Result) String() string {
	var b strings.Builder
	b.WriteString("E7 MC-dropout UQ calibration (±2σ intervals, nominal ~95%)\n")
	fmt.Fprintf(&b, "  %-10s %-12s %-12s\n", "dropout p", "coverage", "mean width")
	for i, p := range r.DropoutRates {
		fmt.Fprintf(&b, "  %-10g %-12.3f %-12.4g\n", p, r.Coverage[i], r.MeanWidth[i])
	}
	return b.String()
}

// E8Result is the solvent-surrogate speedup table.
type E8Result struct {
	SolventFrac    float64
	ExactSeconds   float64
	SurroSeconds   float64
	Speedup        float64
	DensityL1Error float64 // relative L1 error between ion profiles
}

// E8SolventSurrogate reproduces §II-C2: replacing solvent-solvent
// interactions ("80%-90% of the computational effort") with a learned
// kernel yields large gains at matching accuracy.
func E8SolventSurrogate(scale Scale) (*E8Result, error) {
	p := md.Params{H: 6, Zp: 1, Zn: 1, C: 0.04, D: 1.0}
	cfg := md.DefaultConfig()
	cfg.L = float64(pick(scale, 8, 12))
	cfg.SolventFrac = 0.85
	cfg.Seed = 9
	steps := pick(scale, 200, 1500)
	rc := md.RunConfig{EquilSteps: steps / 4, SampleSteps: steps, SampleEvery: 5, Bins: 20}

	run := func(kernel md.PairKernel) (*md.Result, float64, error) {
		sys, err := md.NewSystem(p, cfg)
		if err != nil {
			return nil, 0, err
		}
		if kernel != nil {
			sys.SetSolventKernel(kernel)
		}
		t0 := time.Now()
		res, err := sys.Run(context.Background(), rc)
		return res, time.Since(t0).Seconds(), err
	}
	exactRes, exactSec, err := run(nil)
	if err != nil {
		return nil, err
	}
	tab := md.NewTabulatedKernel(md.ExactSolventKernel{}, 0.5, 2.5, 4096)
	surRes, surSec, err := run(tab)
	if err != nil {
		return nil, err
	}
	// Relative L1 distance between ion density profiles.
	num, den := 0.0, 0.0
	for i := range exactRes.Profile {
		num += absf(exactRes.Profile[i] - surRes.Profile[i])
		den += absf(exactRes.Profile[i])
	}
	return &E8Result{
		SolventFrac:    cfg.SolventFrac,
		ExactSeconds:   exactSec,
		SurroSeconds:   surSec,
		Speedup:        exactSec / surSec,
		DensityL1Error: num / den,
	}, nil
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// String renders the E8 table.
func (r *E8Result) String() string {
	return fmt.Sprintf(
		"E8 solvent-kernel surrogate (solvent fraction %.0f%%)\n"+
			"  exact kernel run: %.3gs   surrogate kernel run: %.3gs\n"+
			"  speedup=%.2fx  ion-profile rel. L1 error=%.3f\n",
		100*r.SolventFrac, r.ExactSeconds, r.SurroSeconds, r.Speedup, r.DensityL1Error)
}

// E9Result is the tissue short-circuit table.
type E9Result struct {
	K             int
	Jumps         int
	ExplicitSec   float64
	SurrogateSec  float64
	Speedup       float64
	L2Error       float64
	FieldScale    float64
	RelativeL2Err float64
}

// E9TissueShortCircuit reproduces §I/§II-B: the learned coarse-grain
// macro-stepper replaces K fine micro-steps of advection-diffusion per
// sweep ("the elimination of short time scales").
func E9TissueShortCircuit(scale Scale) (*E9Result, error) {
	size := pick(scale, 32, 96)
	fine := tissue.NewField(size, size, 1)
	params := tissue.PDEParams{Diff: 0.4, VX: 0.05, VY: 0, Decay: 0.01, Dt: 0.2}
	fineSolver := tissue.NewSolver(params, fine)
	k := pick(scale, 8, 16)
	ls := tissue.NewLearnedStencil(k, 1, 0, xrand.New(64))
	tc := tissue.DefaultTrainConfig()
	tc.Fields = pick(scale, 10, 25)
	tc.Epochs = pick(scale, 120, 300)
	if err := ls.Train(fine, fineSolver, tc); err != nil {
		return nil, err
	}
	// Fresh test field.
	test := tissue.NewField(size, size, 1)
	test.GaussianBump(float64(size)*0.6, float64(size)*0.35, 3, 1.5)
	test.GaussianBump(float64(size)*0.25, float64(size)*0.7, 4, 0.8)
	jumps := pick(scale, 3, 8)

	explicit := test.Clone()
	t0 := time.Now()
	tissue.NewSolver(params, explicit).Steps(explicit, k*jumps)
	explicitSec := time.Since(t0).Seconds()
	truthCoarse := tissue.Restrict(explicit)

	coarse := tissue.Restrict(test)
	t0 = time.Now()
	ls.Advance(coarse, k*jumps)
	surSec := time.Since(t0).Seconds()

	fieldScale := 0.0
	for _, v := range truthCoarse.U {
		if v > fieldScale {
			fieldScale = v
		}
	}
	l2 := tissue.L2Diff(truthCoarse, coarse)
	return &E9Result{
		K: k, Jumps: jumps,
		ExplicitSec: explicitSec, SurrogateSec: surSec,
		Speedup: explicitSec / surSec,
		L2Error: l2, FieldScale: fieldScale, RelativeL2Err: l2 / fieldScale,
	}, nil
}

// String renders the E9 table.
func (r *E9Result) String() string {
	return fmt.Sprintf(
		"E9 tissue transport short-circuit (K=%d micro-steps/jump, %d jumps, 2x coarse grid)\n"+
			"  explicit fine solve: %.3gs   learned coarse stepper: %.3gs  speedup=%.2fx\n"+
			"  L2 field error=%.4g (peak %.3g, relative %.3f)\n",
		r.K, r.Jumps, r.ExplicitSec, r.SurrogateSec, r.Speedup,
		r.L2Error, r.FieldScale, r.RelativeL2Err)
}
