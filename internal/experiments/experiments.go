// Package experiments implements the E1–E10 reproduction harness mapped in
// DESIGN.md §4: one entry point per quantitative claim of the paper, each
// returning a printable result table. The cmd/learnhpc binary and the
// top-level benchmarks both drive these functions; EXPERIMENTS.md records
// paper-vs-measured for each.
package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/md"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Scale selects experiment sizing. Small keeps everything under a few
// seconds for tests/benches; Full is the documented reproduction scale.
type Scale int

// Experiment scales.
const (
	Small Scale = iota
	Full
)

func pick(s Scale, small, full int) int {
	if s == Full {
		return full
	}
	return small
}

// mdRunConfig returns the production schedule per scale.
func mdRunConfig(s Scale) md.RunConfig {
	if s == Full {
		return md.RunConfig{EquilSteps: 800, SampleSteps: 2400, SampleEvery: 10, Bins: 40}
	}
	return md.RunConfig{EquilSteps: 120, SampleSteps: 300, SampleEvery: 6, Bins: 24}
}

// E1Result is the effective-speedup sweep (the paper's §III-D formula).
type E1Result struct {
	Tseq, Ttrain, Tlearn, Tlookup float64 // measured seconds
	Ratios                        []float64
	Speedups                      []float64
	LimitNoML                     float64
	LimitInfinite                 float64
}

// E1EffectiveSpeedup measures Tseq/Tlookup/Tlearn on the real MD surrogate
// pipeline and sweeps the formula over Nlookup/Ntrain ratios.
func E1EffectiveSpeedup(scale Scale) (*E1Result, error) {
	rng := xrand.New(41)
	cfg := md.DefaultConfig()
	cfg.L = 8
	oracle := md.NewOracle(cfg, mdRunConfig(scale))

	// Measure Tseq: one simulation.
	x := []float64{6, 1, 1, 0.05, 1.0}
	t0 := time.Now()
	if _, err := oracle.Run(x); err != nil {
		return nil, err
	}
	tseq := time.Since(t0).Seconds()

	// Train a small surrogate on a few runs to measure Tlearn and Tlookup.
	nTrain := pick(scale, 24, 120)
	lo := []float64{4, 1, 1, 0.02, 0.8}
	hi := []float64{10, 3, 3, 0.12, 1.2}
	design := data.LatinHypercube(nTrain, 5, lo, hi, rng)
	quantizeValencies(design)
	xs := tensor.NewMatrix(0, 5)
	ys := tensor.NewMatrix(0, 3)
	for i := 0; i < design.Rows; i++ {
		y, err := oracle.Run(design.Row(i))
		if err != nil {
			return nil, err
		}
		xs.Data = append(xs.Data, design.Row(i)...)
		xs.Rows++
		ys.Data = append(ys.Data, y...)
		ys.Rows++
	}
	sur := core.NewNNSurrogate(5, 3, []int{30, 48}, 0.1, rng)
	sur.Epochs = pick(scale, 80, 300)
	t0 = time.Now()
	if err := sur.Train(xs, ys); err != nil {
		return nil, err
	}
	tlearn := time.Since(t0).Seconds() / float64(nTrain)

	// Measure Tlookup over many inferences.
	const lookups = 200
	t0 = time.Now()
	for i := 0; i < lookups; i++ {
		sur.Predict(x)
	}
	tlookup := time.Since(t0).Seconds() / lookups

	res := &E1Result{
		Tseq: tseq, Ttrain: tseq, Tlearn: tlearn, Tlookup: tlookup,
		Ratios:        []float64{0, 0.1, 1, 10, 100, 1e3, 1e4, 1e5, 1e6},
		LimitNoML:     core.SpeedupNoML(tseq, tseq),
		LimitInfinite: core.SpeedupInfiniteLookup(tseq, tlookup),
	}
	res.Speedups = core.SpeedupCurve(tseq, tseq, tlearn, tlookup, float64(nTrain), res.Ratios)
	return res, nil
}

// String renders the E1 table.
func (r *E1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E1 effective speedup (measured Tseq=%.3gs Tlearn=%.3gs/sample Tlookup=%.3gs)\n", r.Tseq, r.Tlearn, r.Tlookup)
	fmt.Fprintf(&b, "  limits: no-ML=%.3g  infinite-lookup=%.4g (Tseq/Tlookup)\n", r.LimitNoML, r.LimitInfinite)
	fmt.Fprintf(&b, "  %-12s %-12s\n", "Nlk/Ntr", "speedup S")
	for i, ratio := range r.Ratios {
		fmt.Fprintf(&b, "  %-12g %-12.4g\n", ratio, r.Speedups[i])
	}
	return b.String()
}

// quantizeValencies snaps columns 1 and 2 (z+, z−) to integers in [1,3].
func quantizeValencies(m *tensor.Matrix) {
	for i := 0; i < m.Rows; i++ {
		for _, j := range []int{1, 2} {
			v := math.Round(m.At(i, j))
			if v < 1 {
				v = 1
			}
			if v > 3 {
				v = 3
			}
			m.Set(i, j, v)
		}
	}
}

// E2Result is the nano-confinement surrogate accuracy table.
type E2Result struct {
	Runs, TrainN, TestN int
	Targets             []string
	MAE, RMSE, R2       []float64
	MeanSimSeconds      float64
	MeanLookupSeconds   float64
	SpeedupFactor       float64
	// Sharded-serving stage: the same corpus served through the
	// stall-free ShardedWrapper (per-shard double-buffered surrogates).
	Shards              int
	ShardSizes          []int
	ShardedServedFrac   float64 // fraction of test rows served by surrogates
	ShardedLookupSecond float64 // mean per-row latency through QueryBatch
}

// E2NanoSurrogate reproduces the paper's flagship exemplar: D=5 features
// (h, z+, z−, c, d), 70/30 split, MLP surrogate predicting contact, mid
// and peak ionic densities, with the lookup/simulate wall-clock ratio.
// The paper used 6864 runs on BigRed2; the reproduction default is a
// smaller Latin-hypercube corpus with the same pipeline (EXPERIMENTS.md
// documents the substitution).
func E2NanoSurrogate(scale Scale) (*E2Result, error) {
	rng := xrand.New(42)
	cfg := md.DefaultConfig()
	cfg.L = 8
	oracle := md.NewOracle(cfg, mdRunConfig(scale))
	runs := pick(scale, 60, 686)

	lo := []float64{4, 1, 1, 0.02, 0.8}
	hi := []float64{10, 3, 3, 0.12, 1.2}
	design := data.LatinHypercube(runs, 5, lo, hi, rng)
	quantizeValencies(design)

	ds := &data.Dataset{FeatureNames: md.FeatureNames(), TargetNames: md.TargetNames()}
	simTime := time.Duration(0)
	for i := 0; i < design.Rows; i++ {
		t0 := time.Now()
		y, err := oracle.Run(design.Row(i))
		if err != nil {
			return nil, err
		}
		simTime += time.Since(t0)
		ds.Append(design.Row(i), y)
	}
	train, test := ds.Split(0.7, rng)

	sur := core.NewNNSurrogate(5, 3, []int{30, 48}, 0.1, rng)
	sur.Epochs = pick(scale, 150, 400)
	if err := sur.Train(train.X, train.Y); err != nil {
		return nil, err
	}

	res := &E2Result{
		Runs: runs, TrainN: train.Len(), TestN: test.Len(),
		Targets:        md.TargetNames(),
		MeanSimSeconds: simTime.Seconds() / float64(runs),
	}
	// Per-target metrics. The whole test set is served in one batched
	// surrogate pass — the serving path heavy traffic takes through
	// Wrapper.QueryBatch.
	t0 := time.Now()
	preds := sur.PredictBatch(test.X)
	res.MeanLookupSeconds = time.Since(t0).Seconds() / float64(test.Len())
	for j := range res.Targets {
		p := make([]float64, test.Len())
		y := make([]float64, test.Len())
		for i := 0; i < test.Len(); i++ {
			p[i] = preds.At(i, j)
			y[i] = test.Y.At(i, j)
		}
		res.MAE = append(res.MAE, stats.MAE(p, y))
		res.RMSE = append(res.RMSE, stats.RMSE(p, y))
		res.R2 = append(res.R2, stats.R2(p, y))
	}
	res.SpeedupFactor = res.MeanSimSeconds / res.MeanLookupSeconds

	// Sharded serving stage: load the training corpus into a stall-free
	// ShardedWrapper (hash-partitioned, double-buffered per shard) and
	// serve the whole test set through the partitioned batch path — the
	// production route heavy query traffic takes. The generous UQ gate
	// keeps the already-simulated test rows from re-running MD here.
	shards := pick(scale, 2, 4)
	factory := core.NewNNSurrogateFactory(5, 3, []int{30, 48}, 0.1, rng.Split(), func(s *core.NNSurrogate) {
		s.Epochs = pick(scale, 150, 400)
		s.MCPasses = 10
	})
	sw := core.NewShardedWrapper(oracle, factory, core.ShardedConfig{
		Shards: shards, UQThreshold: 1e6, MinTrainSamples: 1,
	})
	if err := sw.Ingest(train.X, train.Y); err != nil {
		return nil, err
	}
	if err := sw.TrainAll(); err != nil {
		return nil, err
	}
	t0 = time.Now()
	served, err := sw.QueryBatch(test.X)
	if err != nil {
		return nil, err
	}
	res.ShardedLookupSecond = time.Since(t0).Seconds() / float64(test.Len())
	hits := 0
	for _, r := range served {
		if r.Err != nil {
			return nil, r.Err
		}
		if r.Src == core.FromSurrogate {
			hits++
		}
	}
	res.Shards = sw.NumShards()
	res.ShardSizes = sw.ShardSizes()
	res.ShardedServedFrac = float64(hits) / float64(test.Len())
	if err := sw.Wait(); err != nil {
		return nil, err
	}
	return res, nil
}

// String renders the E2 table.
func (r *E2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E2 nano-confinement surrogate (%d runs, %d train / %d test)\n", r.Runs, r.TrainN, r.TestN)
	fmt.Fprintf(&b, "  %-10s %-10s %-10s %-8s\n", "target", "MAE", "RMSE", "R2")
	for j, name := range r.Targets {
		fmt.Fprintf(&b, "  %-10s %-10.4g %-10.4g %-8.4f\n", name, r.MAE[j], r.RMSE[j], r.R2[j])
	}
	fmt.Fprintf(&b, "  Tseq=%.4gs Tlookup=%.3gs  speedup(Tseq/Tlookup)=%.4g (paper: ~1e5)\n",
		r.MeanSimSeconds, r.MeanLookupSeconds, r.SpeedupFactor)
	fmt.Fprintf(&b, "  sharded serving: %d shards %v  surrogate-served=%.0f%%  Tlookup=%.3gs/row\n",
		r.Shards, r.ShardSizes, 100*r.ShardedServedFrac, r.ShardedLookupSecond)
	return b.String()
}

// E3Result is the MLautotuning table.
type E3Result struct {
	Samples      int
	TestPoints   int
	MeanChosenDt float64
	MeanBestDt   float64
	AcceptRate   float64 // fraction of tunings whose chosen dt is stable
	DtEfficiency float64 // chosen/best dt ratio averaged over test points
}

// E3Autotune reproduces the MLautotuning exemplar (§III-D, ref [9]): learn
// the quality of (system params, dt) pairs from short probe simulations,
// then pick the largest dt predicted to keep the run accurate. D=6
// features (5 system + dt), 3 outputs (temperature error, escape flag,
// profile drift), as in the paper's 6→30→48→3 network.
func E3Autotune(scale Scale) (*E3Result, error) {
	rng := xrand.New(43)
	cfg := md.DefaultConfig()
	cfg.L = 7
	probeSteps := pick(scale, 300, 1200)

	// Quality probe: run `probeSteps` at dt and report
	// (temperature error, escape/blowup flag, mid-density drift vs ref).
	quality := func(p md.Params, dt float64, seed uint64) ([]float64, error) {
		c := cfg
		c.Dt = dt
		c.Seed = seed
		sys, err := md.NewSystem(p, c)
		if err != nil {
			return nil, err
		}
		res, err := sys.Run(context.Background(), md.RunConfig{
			EquilSteps: probeSteps / 3, SampleSteps: probeSteps, SampleEvery: 5, Bins: 20,
		})
		if err != nil {
			return nil, err
		}
		tempErr := math.Abs(res.MeanTemperature - 1)
		blowup := 0.0
		if math.IsNaN(res.MeanTemperature) || tempErr > 3 {
			blowup = 1
			tempErr = 3
		}
		return []float64{tempErr, blowup, res.MidDensity}, nil
	}

	dtGrid := []float64{0.002, 0.005, 0.01, 0.02, 0.035, 0.05, 0.07, 0.09}
	nParams := pick(scale, 10, 60)
	lo := []float64{4, 1, 1, 0.03, 0.8}
	hi := []float64{8, 2, 2, 0.10, 1.2}
	design := data.LatinHypercube(nParams, 5, lo, hi, rng)
	quantizeValencies(design)

	x := tensor.NewMatrix(0, 6)
	y := tensor.NewMatrix(0, 3)
	for i := 0; i < design.Rows; i++ {
		p := md.Params{H: design.At(i, 0), Zp: int(design.At(i, 1)), Zn: int(design.At(i, 2)), C: design.At(i, 3), D: design.At(i, 4)}
		for _, dt := range dtGrid {
			q, err := quality(p, dt, rng.Uint64())
			if err != nil {
				return nil, err
			}
			x.Data = append(x.Data, append(append([]float64(nil), design.Row(i)...), dt)...)
			x.Rows++
			y.Data = append(y.Data, q...)
			y.Rows++
		}
	}
	sur := core.NewNNSurrogate(6, 3, []int{30, 48}, 0, rng)
	sur.Epochs = pick(scale, 200, 500)
	tuner := core.NewAutotuner(sur, 5, 1)
	if err := tuner.Fit(x, y); err != nil {
		return nil, err
	}

	// Evaluate on fresh parameter points: compare tuned dt against the
	// measured largest stable dt.
	const tempTol = 0.12
	nTest := pick(scale, 4, 15)
	testDesign := data.LatinHypercube(nTest, 5, lo, hi, rng)
	quantizeValencies(testDesign)
	cands := tensor.NewMatrix(len(dtGrid), 1)
	for i, dt := range dtGrid {
		cands.Set(i, 0, dt)
	}
	res := &E3Result{Samples: x.Rows, TestPoints: nTest}
	accepted := 0
	effSum, chosenSum, bestSum := 0.0, 0.0, 0.0
	for i := 0; i < nTest; i++ {
		simP := testDesign.Row(i)
		ctl, err := tuner.Tune(simP, cands,
			func(q []float64) bool { return q[0] < tempTol && q[1] < 0.5 },
			func(c []float64) float64 { return c[0] })
		if err != nil {
			// No candidate passes: count as rejection with smallest dt.
			ctl = []float64{dtGrid[0]}
		}
		chosen := ctl[0]
		// Ground truth: scan the grid with real probes.
		p := md.Params{H: simP[0], Zp: int(simP[1]), Zn: int(simP[2]), C: simP[3], D: simP[4]}
		best := dtGrid[0]
		var chosenStable bool
		for _, dt := range dtGrid {
			q, err := quality(p, dt, rng.Uint64())
			if err != nil {
				return nil, err
			}
			stable := q[0] < tempTol && q[1] < 0.5
			if stable && dt > best {
				best = dt
			}
			if dt == chosen {
				chosenStable = stable
			}
		}
		if chosenStable {
			accepted++
		}
		chosenSum += chosen
		bestSum += best
		effSum += chosen / best
	}
	res.AcceptRate = float64(accepted) / float64(nTest)
	res.MeanChosenDt = chosenSum / float64(nTest)
	res.MeanBestDt = bestSum / float64(nTest)
	res.DtEfficiency = effSum / float64(nTest)
	return res, nil
}

// String renders the E3 table.
func (r *E3Result) String() string {
	return fmt.Sprintf(
		"E3 MLautotuning (%d training samples, %d test points)\n"+
			"  mean chosen dt=%.4g  mean best stable dt=%.4g\n"+
			"  stable-choice rate=%.0f%%  dt efficiency (chosen/best)=%.2f\n",
		r.Samples, r.TestPoints, r.MeanChosenDt, r.MeanBestDt,
		100*r.AcceptRate, r.DtEfficiency)
}
