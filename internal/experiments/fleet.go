package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// E11 exercises the multi-tenant serving fleet: the paper's "learning
// everywhere" claim realized as one process serving a surrogate for every
// layer of the workload — a potential-energy model, a tissue-transport
// stencil and an epidemic calibrator — behind one dispatch plane. Each
// tenant is a pretrained UQ-gated wrapper; concurrent per-tenant client
// pools drive independent single-point queries through the fleet, and the
// result records per-tenant throughput, coalescing width, latency
// percentiles and the fairness ratio (min/max per-tenant QPS, which a
// starvation-prone front-end would collapse toward 0).

// E11Result is the fleet serving report.
type E11Result struct {
	Tenants   []string
	QPS       []float64
	MeanBatch []float64
	P99       []time.Duration
	SurFrac   []float64 // per-tenant surrogate-served fraction
	Fairness  float64   // min/max per-tenant QPS
	TotalQPS  float64
}

// String renders the per-tenant table.
func (r *E11Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "   multi-tenant fleet: %d tenants, one dispatch plane\n", len(r.Tenants))
	fmt.Fprintf(&b, "   %-10s %12s %10s %12s %10s\n", "tenant", "queries/s", "batch", "p99", "sur-frac")
	for i, name := range r.Tenants {
		fmt.Fprintf(&b, "   %-10s %12.0f %10.1f %12v %9.1f%%\n",
			name, r.QPS[i], r.MeanBatch[i], r.P99[i].Round(time.Microsecond), 100*r.SurFrac[i])
	}
	fmt.Fprintf(&b, "   total %.0f queries/s, fairness (min/max per-tenant QPS) %.2f\n", r.TotalQPS, r.Fairness)
	return b.String()
}

// e11Tenant builds one pretrained UQ-gated wrapper over an analytic
// oracle stand-in.
func e11Tenant(rng *xrand.Rand, scale Scale, f func(x []float64) []float64) (*core.Wrapper, error) {
	oracle := core.OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		return f(x), nil
	}}
	sur := core.NewNNSurrogate(2, 1, []int{pick(scale, 16, 32)}, 0.1, rng.Split())
	sur.Epochs = pick(scale, 60, 200)
	sur.MCPasses = 8
	w := core.NewWrapper(oracle, sur, core.WrapperConfig{
		MinTrainSamples: 10,
		UQThreshold:     10, // wide open: the experiment measures dispatch, not gating
	})
	design := tensor.NewMatrix(pick(scale, 80, 240), 2)
	for i := 0; i < design.Rows; i++ {
		design.Set(i, 0, rng.Range(-1, 1))
		design.Set(i, 1, rng.Range(-1, 1))
	}
	if err := w.Pretrain(design); err != nil {
		return nil, err
	}
	return w, nil
}

// E11FleetServing drives the three-tenant fleet under concurrent load.
func E11FleetServing(scale Scale) (*E11Result, error) {
	rng := xrand.New(0xf1ee7)
	tenants := []struct {
		name string
		f    func(x []float64) []float64
	}{
		// Analytic stand-ins with the response shapes of the three
		// workloads: a pair-potential energy surface, a diffusive decay
		// and an epidemic peak response.
		{"potential", func(x []float64) []float64 {
			r := 0.6 + 0.5*(x[0]+1)
			ir6 := math.Pow(r, -6)
			return []float64{ir6*ir6 - ir6 + 0.1*x[1]}
		}},
		{"tissue", func(x []float64) []float64 {
			return []float64{math.Exp(-2*math.Abs(x[0])) * math.Cos(3*x[1])}
		}},
		{"epi", func(x []float64) []float64 {
			r0 := 1 + 1.5*(x[0]+1)
			return []float64{math.Tanh(r0-1) * (0.5 + 0.4*x[1])}
		}},
	}

	fl := fleet.New(fleet.Config{Coalescer: serve.Config{MaxBatch: 32}})
	defer fl.Close()
	wrappers := make([]*core.Wrapper, len(tenants))
	for i, tn := range tenants {
		w, err := e11Tenant(rng, scale, tn.f)
		if err != nil {
			return nil, fmt.Errorf("tenant %s: %w", tn.name, err)
		}
		wrappers[i] = w
		if err := fl.Register(tn.name, w); err != nil {
			return nil, err
		}
	}

	// Fairness is measured, not assumed: every client free-runs against a
	// shared wall-clock deadline and the per-tenant completion counts are
	// compared afterwards. A dispatch plane that starved one tenant would
	// show up directly as that tenant finishing fewer queries in the
	// window (a fixed per-client query count would instead force the
	// ratio to 1.0 by construction).
	clients := pick(scale, 4, 8)
	window := time.Duration(pick(scale, 150, 1000)) * time.Millisecond
	deadline := time.Now().Add(window)
	var wg sync.WaitGroup
	errs := make(chan error, len(tenants)*clients)
	t0 := time.Now()
	for ti, tn := range tenants {
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(name string, seed uint64) {
				defer wg.Done()
				crng := xrand.New(seed)
				x := make([]float64, 2)
				y := make([]float64, 1)
				std := make([]float64, 1)
				// Check the clock every few queries, not every query.
				for time.Now().Before(deadline) {
					for i := 0; i < 64; i++ {
						x[0] = crng.Range(-1, 1)
						x[1] = crng.Range(-1, 1)
						if _, err := fl.QueryInto(name, x, y, std); err != nil {
							errs <- err
							return
						}
					}
				}
			}(tn.name, uint64(0xe11*(ti+1)+c))
		}
	}
	wg.Wait()
	elapsed := time.Since(t0).Seconds()
	close(errs)
	for err := range errs {
		return nil, err
	}

	res := &E11Result{}
	stats := fl.Stats()
	names := make([]string, 0, len(stats))
	for name := range stats {
		names = append(names, name)
	}
	sort.Strings(names)
	minQ, maxQ := math.Inf(1), 0.0
	for _, name := range names {
		st := stats[name]
		var wi int
		for i, tn := range tenants {
			if tn.name == name {
				wi = i
			}
		}
		led := wrappers[wi].Ledger()
		qps := float64(st.Queries) / elapsed
		res.Tenants = append(res.Tenants, name)
		res.QPS = append(res.QPS, qps)
		res.MeanBatch = append(res.MeanBatch, st.MeanBatch)
		res.P99 = append(res.P99, st.P99)
		res.SurFrac = append(res.SurFrac, led.SurrogateFraction())
		res.TotalQPS += qps
		minQ = math.Min(minQ, qps)
		maxQ = math.Max(maxQ, qps)
	}
	if maxQ > 0 {
		res.Fairness = minQ / maxQ
	}
	return res, nil
}
