package experiments

import (
	"strings"
	"testing"
)

// The experiment functions are integration tests of the whole stack; each
// smoke test asserts the paper's qualitative claim shape at Small scale.

func TestE1(t *testing.T) {
	r, err := E1EffectiveSpeedup(Small)
	if err != nil {
		t.Fatal(err)
	}
	if r.LimitInfinite < 10 {
		t.Fatalf("Tseq/Tlookup = %g; surrogate lookups should dominate simulation by orders of magnitude", r.LimitInfinite)
	}
	// The sweep must be monotone and approach the limit.
	last := r.Speedups[len(r.Speedups)-1]
	if last < 0.5*r.LimitInfinite {
		t.Fatalf("large-ratio speedup %g not approaching limit %g", last, r.LimitInfinite)
	}
	if !strings.Contains(r.String(), "effective speedup") {
		t.Fatal("table missing header")
	}
}

func TestE2(t *testing.T) {
	r, err := E2NanoSurrogate(Small)
	if err != nil {
		t.Fatal(err)
	}
	if r.TrainN+r.TestN != r.Runs {
		t.Fatal("split does not partition runs")
	}
	// Peak density is the easiest target; require a real fit.
	if r.R2[2] < 0.5 {
		t.Fatalf("peak-density R2 %g too low for a trained surrogate", r.R2[2])
	}
	if r.SpeedupFactor < 100 {
		t.Fatalf("lookup speedup %g; paper claims ~1e5 at full simulation length", r.SpeedupFactor)
	}
	if !strings.Contains(r.String(), "contact") {
		t.Fatal("table missing target rows")
	}
}

func TestE4(t *testing.T) {
	r, err := E4DEFSI(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Methods) != 3 {
		t.Fatalf("%d methods want 3", len(r.Methods))
	}
	for i, m := range r.Methods {
		if r.State[i] < 0 || r.County[i] < 0 {
			t.Fatalf("%s produced negative RMSE", m)
		}
	}
	// The paper's claim: DEFSI beats the naive data-driven baseline at
	// county level (persistence cannot downscale).
	if r.County[0] >= r.County[2] {
		t.Fatalf("DEFSI county RMSE %g not better than persistence %g", r.County[0], r.County[2])
	}
	if !strings.Contains(r.String(), "DEFSI") {
		t.Fatal("table missing method rows")
	}
}

func TestE5(t *testing.T) {
	r, err := E5NNPotential(Small)
	if err != nil {
		t.Fatal(err)
	}
	if r.TestMAE >= r.MeanBaseline {
		t.Fatalf("NN potential MAE %g no better than mean baseline %g", r.TestMAE, r.MeanBaseline)
	}
	if r.SpeedupFactor < 10 {
		t.Fatalf("oracle/NN speedup %g; expected orders of magnitude", r.SpeedupFactor)
	}
}

func TestE7(t *testing.T) {
	r, err := E7DropoutUQ(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Coverage) != len(r.DropoutRates) {
		t.Fatal("coverage rows missing")
	}
	for i, c := range r.Coverage {
		if c < 0 || c > 1 {
			t.Fatalf("coverage[%d]=%g outside [0,1]", i, c)
		}
	}
	// In the moderate regime, interval width grows with dropout rate; at
	// extreme rates the model (and its UQ) degrades — which is exactly the
	// paper's research issue 10 ("two models with different dropout rates
	// can produce different UQ results"). Assert only the moderate-regime
	// ordering.
	if r.MeanWidth[2] <= r.MeanWidth[0] {
		t.Fatalf("interval width should grow from p=0.05 to p=0.2: %v", r.MeanWidth)
	}
}

func TestE8(t *testing.T) {
	r, err := E8SolventSurrogate(Small)
	if err != nil {
		t.Fatal(err)
	}
	if r.Speedup <= 1 {
		t.Fatalf("surrogate kernel speedup %g; must beat the exact kernel", r.Speedup)
	}
	if r.DensityL1Error > 0.6 {
		t.Fatalf("profile error %g too large; surrogate kernel should preserve structure", r.DensityL1Error)
	}
}

func TestE9(t *testing.T) {
	r, err := E9TissueShortCircuit(Small)
	if err != nil {
		t.Fatal(err)
	}
	if r.Speedup <= 1 {
		t.Fatalf("short-circuit speedup %g; learned stepper must beat explicit", r.Speedup)
	}
	if r.RelativeL2Err > 0.25 {
		t.Fatalf("relative field error %g too large", r.RelativeL2Err)
	}
}

func TestE10Models(t *testing.T) {
	r, err := E10ParallelModels(Small)
	if err != nil {
		t.Fatal(err)
	}
	// Every model at every worker count must actually optimize.
	for mi := range r.FinalLoss {
		for wi, loss := range r.FinalLoss[mi] {
			if loss > 1 {
				t.Fatalf("model %d workers idx %d final loss %g", mi, wi, loss)
			}
		}
	}
	if !strings.Contains(r.String(), "Allreduce") {
		t.Fatal("table missing model rows")
	}
}

func TestE10Sched(t *testing.T) {
	r, err := E10Scheduler(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Strategies) != 3 {
		t.Fatalf("%d strategies want 3", len(r.Strategies))
	}
	// Dynamic must balance at least as well as static (with margin for
	// timing noise).
	if r.Imbalance[1] > r.Imbalance[0]+0.15 {
		t.Fatalf("dynamic imbalance %g worse than static %g", r.Imbalance[1], r.Imbalance[0])
	}
}

func TestE3(t *testing.T) {
	if testing.Short() {
		t.Skip("E3 probes many MD runs; skipped in -short")
	}
	r, err := E3Autotune(Small)
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanChosenDt <= 0 {
		t.Fatal("autotuner chose non-positive dt")
	}
	// The tuned dt should be a usable fraction of the best stable dt.
	if r.DtEfficiency < 0.2 || r.DtEfficiency > 2.5 {
		t.Fatalf("dt efficiency %g implausible", r.DtEfficiency)
	}
	if !strings.Contains(r.String(), "MLautotuning") {
		t.Fatal("table missing header")
	}
}

func TestE6(t *testing.T) {
	if testing.Short() {
		t.Skip("E6 trains many committees; skipped in -short")
	}
	r, err := E6ActiveLearning(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ALCurve) < 2 || len(r.RandomCurve) < 2 {
		t.Fatal("learning curves too short")
	}
	// Random reaches its own final accuracy by construction.
	if r.RandomSamples < 0 {
		t.Fatal("random curve never reaches its own final MAE")
	}
	if !strings.Contains(r.String(), "active learning") {
		t.Fatal("table missing header")
	}
}

func TestE11(t *testing.T) {
	r, err := E11FleetServing(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tenants) != 3 {
		t.Fatalf("fleet served %d tenants, want 3", len(r.Tenants))
	}
	// A starvation-prone front-end collapses the min/max per-tenant QPS
	// ratio toward 0; equal offered load through one dispatch plane must
	// stay near parity.
	if r.Fairness < 0.5 {
		t.Fatalf("fairness %g; one tenant is starving the rest", r.Fairness)
	}
	for i, name := range r.Tenants {
		if r.SurFrac[i] < 0.5 {
			t.Fatalf("tenant %s served only %.0f%% from its surrogate under a wide-open gate", name, 100*r.SurFrac[i])
		}
		if r.QPS[i] <= 0 {
			t.Fatalf("tenant %s reports zero throughput", name)
		}
	}
	if !strings.Contains(r.String(), "fairness") {
		t.Fatal("table missing fairness line")
	}
}
