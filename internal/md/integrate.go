package md

import (
	"context"
	"fmt"
	"math"
)

// Step advances the system one Langevin velocity-Verlet timestep (the
// Grønbech-Jensen/Farago-style splitting: deterministic half-kicks plus an
// Ornstein–Uhlenbeck velocity update keeps kT=1 on average).
func (s *System) Step() {
	dt := s.Cfg.Dt
	half := 0.5 * dt
	// First half-kick + drift.
	for i := 0; i < s.N; i++ {
		for d := 0; d < 3; d++ {
			s.Vel[3*i+d] += half * s.Force[3*i+d]
		}
		s.Pos[3*i] = wrap(s.Pos[3*i]+dt*s.Vel[3*i], s.Cfg.L)
		s.Pos[3*i+1] = wrap(s.Pos[3*i+1]+dt*s.Vel[3*i+1], s.Cfg.L)
		s.Pos[3*i+2] += dt * s.Vel[3*i+2]
	}
	s.clampToSlit()
	s.ComputeForces()
	// Second half-kick.
	for i := range s.Vel {
		s.Vel[i] += half * s.Force[i]
	}
	// Ornstein–Uhlenbeck thermostat (exact for the velocity process).
	c1 := math.Exp(-s.Cfg.Gamma * dt)
	c2 := math.Sqrt(1 - c1*c1)
	for i := range s.Vel {
		s.Vel[i] = c1*s.Vel[i] + c2*s.rng.NormFloat64()
	}
	s.stepNum++
}

// clampToSlit reflects any particle that integrated past a wall back into
// the slit (a rare event under the repulsive walls, but it guarantees the
// cell list's z-range invariant).
func (s *System) clampToSlit() {
	zMax := s.P.H/2 - 1e-6
	for i := 0; i < s.N; i++ {
		z := s.Pos[3*i+2]
		if math.IsNaN(z) || math.IsInf(z, 0) {
			// Defensive reset; with force capping this should not occur,
			// but a non-finite coordinate must never reach the cell list.
			s.Pos[3*i+2] = 0
			s.Vel[3*i+2] = 0
			continue
		}
		if z > zMax {
			s.Pos[3*i+2] = 2*zMax - z
			if s.Pos[3*i+2] < -zMax {
				s.Pos[3*i+2] = 0
			}
			s.Vel[3*i+2] = -s.Vel[3*i+2]
		} else if z < -zMax {
			s.Pos[3*i+2] = -2*zMax - z
			if s.Pos[3*i+2] > zMax {
				s.Pos[3*i+2] = 0
			}
			s.Vel[3*i+2] = -s.Vel[3*i+2]
		}
	}
}

// Steps runs n timesteps.
func (s *System) Steps(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// RunConfig controls a production run.
type RunConfig struct {
	// EquilSteps are discarded before sampling begins.
	EquilSteps int
	// SampleSteps is the production length.
	SampleSteps int
	// SampleEvery accumulates the density profile every this many steps.
	// The paper's blocking discussion (§III-D) requires this to exceed the
	// autocorrelation time d_c (≈3–5 dt in the nano example).
	SampleEvery int
	// Bins is the number of z-bins for the density profile.
	Bins int
}

// DefaultRunConfig is a short but adequate production schedule for the
// laptop-scale reproduction.
func DefaultRunConfig() RunConfig {
	return RunConfig{EquilSteps: 400, SampleSteps: 1200, SampleEvery: 10, Bins: 40}
}

// Result carries the observables of one production run: the paper's three
// surrogate targets plus the full profile and diagnostics.
type Result struct {
	// ContactDensity is the ion density in the bins adjacent to the walls
	// (averaged over both walls).
	ContactDensity float64
	// MidDensity is the ion density at the slit mid-plane.
	MidDensity float64
	// PeakDensity is the maximum of the ionic density profile.
	PeakDensity float64
	// Profile is the full symmetrized ion density profile over z.
	Profile []float64
	// BinCenters are the z positions of the profile bins.
	BinCenters []float64
	// MeanTemperature is the run-averaged kinetic temperature (should be
	// ~1 under the thermostat).
	MeanTemperature float64
	// Samples is the number of profile accumulations.
	Samples int
}

// Run executes equilibration plus sampling and returns the measured
// observables. ctx aborts long runs between steps.
func (s *System) Run(ctx context.Context, rc RunConfig) (*Result, error) {
	if rc.SampleEvery <= 0 {
		rc.SampleEvery = 10
	}
	if rc.Bins <= 0 {
		rc.Bins = 40
	}
	for i := 0; i < rc.EquilSteps; i++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("md: equilibration aborted: %w", err)
		}
		s.Step()
	}
	prof := NewProfile(s.P.H, rc.Bins)
	tempSum := 0.0
	tempN := 0
	for i := 0; i < rc.SampleSteps; i++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("md: sampling aborted: %w", err)
		}
		s.Step()
		if i%rc.SampleEvery == 0 {
			prof.Accumulate(s)
			tempSum += s.KineticTemperature()
			tempN++
		}
	}
	if tempN == 0 {
		return nil, fmt.Errorf("md: no samples collected (SampleSteps=%d, SampleEvery=%d)", rc.SampleSteps, rc.SampleEvery)
	}
	res := prof.Result(s)
	res.MeanTemperature = tempSum / float64(tempN)
	return res, nil
}
