package md

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func testParams() Params {
	return Params{H: 6, Zp: 1, Zn: 1, C: 0.05, D: 1.0}
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.L = 8
	cfg.Seed = 42
	return cfg
}

func TestParamsValidate(t *testing.T) {
	if err := testParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{H: 1, Zp: 1, Zn: 1, C: 0.05, D: 1},
		{H: 6, Zp: 0, Zn: 1, C: 0.05, D: 1},
		{H: 6, Zp: 1, Zn: 4, C: 0.05, D: 1},
		{H: 6, Zp: 1, Zn: 1, C: 0, D: 1},
		{H: 6, Zp: 1, Zn: 1, C: 0.05, D: 3},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad params %d validated: %+v", i, p)
		}
	}
}

func TestNewSystemElectroneutral(t *testing.T) {
	for _, p := range []Params{
		{H: 6, Zp: 1, Zn: 1, C: 0.05, D: 1},
		{H: 8, Zp: 2, Zn: 1, C: 0.08, D: 1},
		{H: 6, Zp: 3, Zn: 2, C: 0.05, D: 0.9},
	} {
		s, err := NewSystem(p, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		q := 0.0
		for _, c := range s.Charge {
			q += c
		}
		if math.Abs(q) > 1e-12 {
			t.Fatalf("net charge %g for %+v", q, p)
		}
		if s.N < 4 {
			t.Fatalf("suspiciously few particles: %d", s.N)
		}
	}
}

func TestNewSystemParticlesInsideSlit(t *testing.T) {
	s, err := NewSystem(testParams(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.N; i++ {
		z := s.Pos[3*i+2]
		if z <= -s.P.H/2 || z >= s.P.H/2 {
			t.Fatalf("particle %d at z=%g outside slit ±%g", i, z, s.P.H/2)
		}
		x, y := s.Pos[3*i], s.Pos[3*i+1]
		if x < 0 || x >= s.Cfg.L || y < 0 || y >= s.Cfg.L {
			t.Fatalf("particle %d at (%g,%g) outside box", i, x, y)
		}
	}
}

func TestNewSystemRejectsBadConfig(t *testing.T) {
	cfg := testConfig()
	cfg.Dt = 0
	if _, err := NewSystem(testParams(), cfg); err == nil {
		t.Fatal("zero dt accepted")
	}
	cfg = testConfig()
	cfg.SolventFrac = 1.0
	if _, err := NewSystem(testParams(), cfg); err == nil {
		t.Fatal("solvent fraction 1.0 accepted")
	}
}

func TestSolventFraction(t *testing.T) {
	cfg := testConfig()
	cfg.SolventFrac = 0.8
	s, err := NewSystem(testParams(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	nSolvent := 0
	for _, k := range s.Kind {
		if k == Solvent {
			nSolvent++
		}
	}
	frac := float64(nSolvent) / float64(s.N)
	if math.Abs(frac-0.8) > 0.05 {
		t.Fatalf("solvent fraction %g want ~0.8", frac)
	}
}

func TestDeterministicTrajectories(t *testing.T) {
	run := func() []float64 {
		s, err := NewSystem(testParams(), testConfig())
		if err != nil {
			t.Fatal(err)
		}
		s.Steps(50)
		out := make([]float64, len(s.Pos))
		copy(out, s.Pos)
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trajectories diverged at coordinate %d", i)
		}
	}
}

func TestThermostatMaintainsTemperature(t *testing.T) {
	s, err := NewSystem(testParams(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Steps(300) // equilibrate
	var w stats.Welford
	for i := 0; i < 500; i++ {
		s.Step()
		if i%5 == 0 {
			w.Add(s.KineticTemperature())
		}
	}
	if math.Abs(w.Mean()-1) > 0.15 {
		t.Fatalf("mean kinetic temperature %g want ~1", w.Mean())
	}
}

func TestParticlesStayConfined(t *testing.T) {
	s, err := NewSystem(testParams(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 400; step++ {
		s.Step()
		for i := 0; i < s.N; i++ {
			z := s.Pos[3*i+2]
			if z < -s.P.H/2 || z > s.P.H/2 {
				t.Fatalf("step %d: particle %d escaped to z=%g", step, i, z)
			}
			if math.IsNaN(z) {
				t.Fatalf("step %d: NaN position", step)
			}
		}
	}
}

func TestForcesFiniteAndNewtonish(t *testing.T) {
	s, err := NewSystem(testParams(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Steps(100)
	s.ComputeForces()
	// All forces finite.
	for i, f := range s.Force {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			t.Fatalf("non-finite force at %d", i)
		}
	}
	// Pair forces obey Newton's third law, so the total force minus the
	// wall contribution must vanish in x and y (walls act only in z).
	var fx, fy float64
	for i := 0; i < s.N; i++ {
		fx += s.Force[3*i]
		fy += s.Force[3*i+1]
	}
	if math.Abs(fx) > 1e-6*float64(s.N) || math.Abs(fy) > 1e-6*float64(s.N) {
		t.Fatalf("lateral net force (%g,%g) should vanish", fx, fy)
	}
}

func TestParallelForcesMatchSerial(t *testing.T) {
	mk := func(workers int) []float64 {
		cfg := testConfig()
		cfg.Workers = workers
		s, err := NewSystem(testParams(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Steps(20)
		s.ComputeForces()
		out := make([]float64, len(s.Force))
		copy(out, s.Force)
		return out
	}
	serial := mk(1)
	parallel := mk(4)
	for i := range serial {
		if math.Abs(serial[i]-parallel[i]) > 1e-9 {
			t.Fatalf("worker-count dependent force at %d: %g vs %g", i, serial[i], parallel[i])
		}
	}
}

func TestCellListMatchesBruteForce(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	s, err := NewSystem(testParams(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Steps(30)
	s.ComputeForces()
	got := make([]float64, len(s.Force))
	copy(got, s.Force)

	// Brute-force recomputation with the same physics.
	cut2 := cfg.Cutoff * cfg.Cutoff
	d2 := s.P.D * s.P.D
	want := make([]float64, len(s.Force))
	for i := 0; i < s.N; i++ {
		for j := 0; j < s.N; j++ {
			if i == j {
				continue
			}
			dx := s.Pos[3*i] - s.Pos[3*j]
			dy := s.Pos[3*i+1] - s.Pos[3*j+1]
			dz := s.Pos[3*i+2] - s.Pos[3*j+2]
			dx, dy = s.minimumImage(dx, dy)
			r2 := dx*dx + dy*dy + dz*dz
			if r2 >= cut2 || r2 == 0 {
				continue
			}
			var fOverR float64
			wcaCut := 1.2599210498948732 * d2
			if r2 < wcaCut {
				inv2 := d2 / r2
				inv6 := inv2 * inv2 * inv2
				fOverR += 24 * (2*inv6*inv6 - inv6) / r2
			}
			if s.Charge[i] != 0 && s.Charge[j] != 0 {
				r := math.Sqrt(r2)
				fOverR += s.Cfg.Bjerrum * s.Charge[i] * s.Charge[j] * math.Exp(-s.Kappa*r) * (1 + s.Kappa*r) / (r2 * r)
			}
			want[3*i] += fOverR * dx
			want[3*i+1] += fOverR * dy
			want[3*i+2] += fOverR * dz
		}
		want[3*i+2] += s.wallForce(s.Pos[3*i+2])
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("cell-list force mismatch at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestWallForceRepulsive(t *testing.T) {
	s, err := NewSystem(testParams(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Near lower wall: force must push up (+z).
	if f := s.wallForce(-s.P.H/2 + 0.1); f <= 0 {
		t.Fatalf("lower wall force %g should be positive", f)
	}
	// Near upper wall: force must push down (-z).
	if f := s.wallForce(s.P.H/2 - 0.1); f >= 0 {
		t.Fatalf("upper wall force %g should be negative", f)
	}
	// Mid-slit: negligible.
	if f := s.wallForce(0); f != 0 {
		t.Fatalf("mid-slit wall force %g should be 0", f)
	}
}

func TestExactKernelRepulsiveCore(t *testing.T) {
	k := ExactSolventKernel{}
	if k.ForceOverR(0.25) <= 0 { // r=0.5 deep in the core
		t.Fatal("core should be strongly repulsive")
	}
	if k.ForceOverR(100) != 0 {
		t.Fatal("kernel should vanish beyond cutoff")
	}
	if k.ForceOverR(0) != 0 {
		t.Fatal("zero distance should return 0 (guard)")
	}
}

func TestTabulatedKernelApproximatesExact(t *testing.T) {
	// The exact kernel is C0 but not C1 at the WCA cutoff, so linear
	// interpolation carries an O(slope-jump * cell width) error in the one
	// table cell straddling the kink (~2e-2 at 4096 entries); elsewhere
	// the table is accurate to ~1e-3.
	exact := ExactSolventKernel{}
	tab := NewTabulatedKernel(exact, 0.5, 2.5, 4096)
	kink := math.Pow(2, 1.0/3)
	if err := quick.Check(func(raw uint16) bool {
		r := 0.6 + 1.8*float64(raw)/65535
		r2 := r * r
		e := exact.ForceOverR(r2)
		g := tab.ForceOverR(r2)
		tol := 1e-3 * (1 + math.Abs(e))
		if math.Abs(r2-kink) < 2*tab.dr2 {
			tol = 3e-2 * (1 + math.Abs(e))
		}
		return math.Abs(e-g) <= tol
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTabulatedKernelPanicsTinyTable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size-1 table did not panic")
		}
	}()
	NewTabulatedKernel(ExactSolventKernel{}, 0.5, 2.5, 1)
}

func TestRunProducesPhysicalProfile(t *testing.T) {
	s, err := NewSystem(testParams(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background(), RunConfig{EquilSteps: 200, SampleSteps: 600, SampleEvery: 5, Bins: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 120 {
		t.Fatalf("samples %d want 120", res.Samples)
	}
	if res.PeakDensity < res.MidDensity-1e-12 {
		t.Fatalf("peak %g below mid %g", res.PeakDensity, res.MidDensity)
	}
	if res.PeakDensity <= 0 {
		t.Fatal("peak density should be positive")
	}
	if math.Abs(res.MeanTemperature-1) > 0.2 {
		t.Fatalf("mean temperature %g", res.MeanTemperature)
	}
	// Profile integrates to the ion count per volume: sum(rho*binVol) = Nions.
	dz := s.P.H / float64(len(res.Profile))
	total := 0.0
	for _, rho := range res.Profile {
		total += rho * s.Cfg.L * s.Cfg.L * dz
	}
	if math.Abs(total-float64(s.N)) > 0.5 {
		t.Fatalf("profile integrates to %g particles, system has %d", total, s.N)
	}
	// Symmetrized: first and last bins equal.
	if res.Profile[0] != res.Profile[len(res.Profile)-1] {
		t.Fatal("profile not symmetrized")
	}
}

func TestRunContextCancellation(t *testing.T) {
	s, err := NewSystem(testParams(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Run(ctx, DefaultRunConfig()); err == nil {
		t.Fatal("cancelled run should error")
	}
}

func TestDensityIncreasesWithConcentration(t *testing.T) {
	run := func(c float64) float64 {
		p := testParams()
		p.C = c
		s, err := NewSystem(p, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(context.Background(), RunConfig{EquilSteps: 150, SampleSteps: 400, SampleEvery: 5, Bins: 24})
		if err != nil {
			t.Fatal(err)
		}
		return res.PeakDensity
	}
	low, high := run(0.02), run(0.12)
	if high <= low {
		t.Fatalf("peak density should grow with concentration: %g vs %g", low, high)
	}
}

func TestOracleDims(t *testing.T) {
	o := NewOracle(testConfig(), RunConfig{EquilSteps: 50, SampleSteps: 100, SampleEvery: 5, Bins: 20})
	in, out := o.Dims()
	if in != 5 || out != 3 {
		t.Fatalf("oracle dims %d,%d want 5,3", in, out)
	}
}

func TestOracleRun(t *testing.T) {
	o := NewOracle(testConfig(), RunConfig{EquilSteps: 100, SampleSteps: 200, SampleEvery: 5, Bins: 20})
	y, err := o.Run([]float64{6, 1, 1, 0.05, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != 3 {
		t.Fatalf("oracle returned %d outputs", len(y))
	}
	for i, v := range y {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("output %d = %g invalid", i, v)
		}
	}
	if y[2] < y[1] {
		t.Fatalf("peak %g below mid %g", y[2], y[1])
	}
}

func TestOracleRejectsBadInput(t *testing.T) {
	o := NewOracle(testConfig(), DefaultRunConfig())
	if _, err := o.Run([]float64{6, 1, 1}); err == nil {
		t.Fatal("short input accepted")
	}
	if _, err := o.Run([]float64{0.1, 1, 1, 0.05, 1}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestOracleDistinctSeedsPerRun(t *testing.T) {
	o := NewOracle(testConfig(), RunConfig{EquilSteps: 50, SampleSteps: 150, SampleEvery: 5, Bins: 20})
	x := []float64{6, 1, 1, 0.05, 1.0}
	a, err := o.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	b, err := o.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("repeated oracle runs should use fresh seeds (stochastic replicas)")
	}
}

func TestFeatureTargetNames(t *testing.T) {
	if len(FeatureNames()) != 5 || len(TargetNames()) != 3 {
		t.Fatal("name lists wrong length")
	}
}

func TestBlockingBeyondAutocorrelationTime(t *testing.T) {
	// The paper requires blocking "at a timescale that is at least greater
	// than the autocorrelation time d_c" (§III-D). Under the Langevin
	// thermostat (gamma=1) velocities decorrelate on ~1/gamma; sampling
	// every 50 steps (0.25 time units) should give tau of a handful of
	// samples, validating the default profile stride.
	s, err := NewSystem(testParams(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Steps(200)
	series := make([]float64, 400)
	for i := range series {
		s.Steps(50)
		series[i] = s.Vel[0] // x-velocity of particle 0
	}
	tau := stats.IntegratedAutocorrTime(series)
	if tau > 25 {
		t.Fatalf("velocity autocorrelation time %g samples at 50-step stride", tau)
	}
}

func BenchmarkStep(b *testing.B) {
	s, err := NewSystem(testParams(), testConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkStepSolvent(b *testing.B) {
	cfg := testConfig()
	cfg.SolventFrac = 0.85
	s, err := NewSystem(testParams(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkStepSolventSurrogate(b *testing.B) {
	cfg := testConfig()
	cfg.SolventFrac = 0.85
	s, err := NewSystem(testParams(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	s.SetSolventKernel(NewTabulatedKernel(ExactSolventKernel{}, 0.5, 2.5, 4096))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
