package md

import (
	"math"
	"runtime"
	"sync"
)

// PairKernel computes the scalar radial force magnitude divided by r
// (f(r)/r, so the Cartesian force is the return value times the separation
// vector) for a solvent-solvent pair at squared distance r2. Returning 0
// means no interaction. The exact kernel below is deliberately expensive —
// it stands in for the polarizable many-term force fields the paper notes
// cost 3-10x (§II-C2) — which is what makes the learned surrogate kernel
// of experiment E8 profitable.
type PairKernel interface {
	ForceOverR(r2 float64) float64
	Name() string
}

// ExactSolventKernel is the reference solvent-solvent interaction: a WCA
// core plus a short-range oscillatory tail evaluated with transcendental
// functions (the stand-in for expensive polarization terms).
type ExactSolventKernel struct{}

// Name implements PairKernel.
func (ExactSolventKernel) Name() string { return "exact" }

// ForceOverR implements PairKernel.
func (ExactSolventKernel) ForceOverR(r2 float64) float64 {
	const sigma2 = 1.0
	const cut2 = 6.25 // 2.5^2
	if r2 >= cut2 || r2 == 0 {
		return 0
	}
	// WCA-like repulsive core.
	inv2 := sigma2 / r2
	inv6 := inv2 * inv2 * inv2
	f := 24 * (2*inv6*inv6 - inv6) / r2
	if f < 0 {
		f = 0
	}
	// Expensive oscillatory "polarization" tail: several transcendental
	// evaluations per pair, as in multi-term classical polarizable FFs.
	r := math.Sqrt(r2)
	tail := 0.0
	for k := 1; k <= 4; k++ {
		fk := float64(k)
		tail += math.Exp(-fk*r/2) * math.Cos(fk*math.Pi*r) / fk
	}
	return f + 0.5*tail/r
}

// TabulatedKernel is a learned/tabulated radial kernel: the surrogate that
// replaces the exact solvent kernel in E8. Lookup is a linear
// interpolation into a precomputed table — orders of magnitude cheaper
// than the transcendental tail.
type TabulatedKernel struct {
	RMin, RMax float64
	Table      []float64 // f(r)/r at uniform r^2 spacing
	dr2        float64
}

// Name implements PairKernel.
func (t *TabulatedKernel) Name() string { return "surrogate" }

// NewTabulatedKernel samples src on a uniform r^2 grid of the given size.
// In the full experiment the table entries come from an NN fit of sampled
// (r, force) pairs; tabulation is the deployment form of that surrogate.
func NewTabulatedKernel(src PairKernel, rMin, rMax float64, size int) *TabulatedKernel {
	if size < 2 {
		panic("md: kernel table needs at least 2 entries")
	}
	t := &TabulatedKernel{RMin: rMin, RMax: rMax, Table: make([]float64, size)}
	lo, hi := rMin*rMin, rMax*rMax
	t.dr2 = (hi - lo) / float64(size-1)
	for i := range t.Table {
		r2 := lo + float64(i)*t.dr2
		t.Table[i] = src.ForceOverR(r2)
	}
	return t
}

// ForceOverR implements PairKernel.
func (t *TabulatedKernel) ForceOverR(r2 float64) float64 {
	lo := t.RMin * t.RMin
	hi := t.RMax * t.RMax
	if r2 >= hi || r2 == 0 {
		return 0
	}
	if r2 < lo {
		r2 = lo
	}
	pos := (r2 - lo) / t.dr2
	i := int(pos)
	if i >= len(t.Table)-1 {
		return t.Table[len(t.Table)-1]
	}
	frac := pos - float64(i)
	return t.Table[i]*(1-frac) + t.Table[i+1]*frac
}

// cellList is a 3D uniform-grid neighbor structure, periodic in x,y.
type cellList struct {
	nx, ny, nz int
	cx, cy, cz float64
	L, H       float64
	heads      []int
	next       []int
}

func newCellList(L, H, cutoff float64) *cellList {
	nx := int(L / cutoff)
	if nx < 1 {
		nx = 1
	}
	nz := int(H / cutoff)
	if nz < 1 {
		nz = 1
	}
	return &cellList{
		nx: nx, ny: nx, nz: nz,
		cx: L / float64(nx), cy: L / float64(nx), cz: H / float64(nz),
		L: L, H: H,
	}
}

// build assigns particles to cells.
func (c *cellList) build(pos []float64, n int) {
	total := c.nx * c.ny * c.nz
	if len(c.heads) != total {
		c.heads = make([]int, total)
	}
	if len(c.next) != n {
		c.next = make([]int, n)
	}
	for i := range c.heads {
		c.heads[i] = -1
	}
	for i := 0; i < n; i++ {
		idx := c.cellIndex(pos[3*i], pos[3*i+1], pos[3*i+2])
		c.next[i] = c.heads[idx]
		c.heads[idx] = i
	}
}

func (c *cellList) cellIndex(x, y, z float64) int {
	ix := int(wrap(x, c.L) / c.cx)
	iy := int(wrap(y, c.L) / c.cy)
	iz := int((z + c.H/2) / c.cz)
	if ix >= c.nx {
		ix = c.nx - 1
	}
	if iy >= c.ny {
		iy = c.ny - 1
	}
	if iz < 0 {
		iz = 0
	}
	if iz >= c.nz {
		iz = c.nz - 1
	}
	return (iz*c.ny+iy)*c.nx + ix
}

// neighborsOf calls visit for every particle in the 27 cells around the
// given position (including the particle's own cell).
func (c *cellList) neighborsOf(x, y, z float64, visit func(j int)) {
	ix := int(wrap(x, c.L) / c.cx)
	iy := int(wrap(y, c.L) / c.cy)
	iz := int((z + c.H/2) / c.cz)
	if ix >= c.nx {
		ix = c.nx - 1
	}
	if iy >= c.ny {
		iy = c.ny - 1
	}
	if iz < 0 {
		iz = 0
	}
	if iz >= c.nz {
		iz = c.nz - 1
	}
	// With fewer than 3 cells along a periodic axis the ±1 neighbors wrap
	// onto the same cell; deduplicate the wrapped indices so pairs are
	// visited exactly once.
	xs := periodicNeighbors(ix, c.nx)
	ys := periodicNeighbors(iy, c.ny)
	for dz := -1; dz <= 1; dz++ {
		jz := iz + dz
		if jz < 0 || jz >= c.nz {
			continue
		}
		for _, jy := range ys {
			for _, jx := range xs {
				for j := c.heads[(jz*c.ny+jy)*c.nx+jx]; j >= 0; j = c.next[j] {
					visit(j)
				}
			}
		}
	}
}

// periodicNeighbors returns the distinct wrapped cell indices {i-1, i, i+1}
// along a periodic axis of n cells.
func periodicNeighbors(i, n int) []int {
	if n >= 3 {
		return []int{(i - 1 + n) % n, i, (i + 1) % n}
	}
	if n == 2 {
		return []int{i, 1 - i}
	}
	return []int{0}
}

// ComputeForces fills s.Force with the total force on every particle:
// WCA + screened Coulomb for ion pairs, the active solvent kernel for
// solvent-solvent pairs, WCA for ion-solvent pairs, and the wall
// potential. The loop is parallelized over particles; each worker computes
// the full force on its own particles (pairs are evaluated twice, which
// doubles FLOPs but needs no synchronization — the standard shared-memory
// trade the paper's heterogeneity discussion motivates measuring).
func (s *System) ComputeForces() {
	s.cells.build(s.Pos, s.N)
	for i := range s.Force {
		s.Force[i] = 0
	}
	workers := s.Cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > s.N {
		workers = s.N
	}
	if workers <= 1 {
		s.forceRange(0, s.N)
		return
	}
	var wg sync.WaitGroup
	chunk := (s.N + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > s.N {
			hi = s.N
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			s.forceRange(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func (s *System) forceRange(lo, hi int) {
	// Pair forces are capped at ±fCap (in f/r form): the standard guard
	// against integration catastrophe in stiff strongly-coupled systems
	// (LAMMPS-style soft capping). Overheating from an over-large dt then
	// shows up as a kinetic-temperature excursion — which is exactly the
	// observable the MLautotuning experiment (E3) learns — instead of a
	// numeric blowup.
	const fCap = 1e4
	cut2 := s.Cfg.Cutoff * s.Cfg.Cutoff
	d2 := s.P.D * s.P.D
	lB := s.Cfg.Bjerrum
	kappa := s.Kappa
	for i := lo; i < hi; i++ {
		xi, yi, zi := s.Pos[3*i], s.Pos[3*i+1], s.Pos[3*i+2]
		qi := s.Charge[i]
		ki := s.Kind[i]
		var fx, fy, fz float64
		s.cells.neighborsOf(xi, yi, zi, func(j int) {
			if j == i {
				return
			}
			dx := xi - s.Pos[3*j]
			dy := yi - s.Pos[3*j+1]
			dz := zi - s.Pos[3*j+2]
			dx, dy = s.minimumImage(dx, dy)
			r2 := dx*dx + dy*dy + dz*dz
			if r2 >= cut2 || r2 == 0 {
				return
			}
			var fOverR float64
			if ki == Solvent && s.Kind[j] == Solvent {
				fOverR = s.kernel.ForceOverR(r2)
			} else {
				// WCA with ion diameter D: purely repulsive core.
				wcaCut := 1.2599210498948732 * d2 // 2^(1/3) * D^2
				if r2 < wcaCut {
					inv2 := d2 / r2
					inv6 := inv2 * inv2 * inv2
					fOverR += 24 * (2*inv6*inv6 - inv6) / r2
				}
				// Screened Coulomb for charged pairs.
				qj := s.Charge[j]
				if qi != 0 && qj != 0 {
					r := math.Sqrt(r2)
					// U = lB*qi*qj*exp(-kappa r)/r
					// f/r = lB*qi*qj*exp(-kappa r)*(1+kappa r)/r^3
					fOverR += lB * qi * qj * math.Exp(-kappa*r) * (1 + kappa*r) / (r2 * r)
				}
			}
			if fOverR > fCap {
				fOverR = fCap
			} else if fOverR < -fCap {
				fOverR = -fCap
			}
			fx += fOverR * dx
			fy += fOverR * dy
			fz += fOverR * dz
		})
		// Walls at z = ±H/2: purely repulsive 12-6 on the wall distance.
		fz += s.wallForce(zi)
		s.Force[3*i] = fx
		s.Force[3*i+1] = fy
		s.Force[3*i+2] = fz
	}
}

// wallForce returns the z-force from both walls on a particle at height z.
// Each wall exerts a WCA-style repulsion on the normal distance, with the
// contact offset of half an ion diameter.
func (s *System) wallForce(z float64) float64 {
	sigma := s.P.D / 2
	wcaCut := sigma * math.Pow(2, 1.0/6)
	f := 0.0
	// Lower wall at -H/2.
	if dzLo := z + s.P.H/2; dzLo < wcaCut {
		f += wallRepulsion(dzLo, sigma)
	}
	// Upper wall at +H/2.
	if dzHi := s.P.H/2 - z; dzHi < wcaCut {
		f -= wallRepulsion(dzHi, sigma)
	}
	return f
}

// wallRepulsion is the magnitude of the repulsive 12-6 force at normal
// distance dz (pushes away from the wall). Clamped at small distances for
// numerical safety.
func wallRepulsion(dz, sigma float64) float64 {
	const minDz = 1e-3
	if dz < minDz {
		dz = minDz
	}
	inv := sigma / dz
	inv2 := inv * inv
	inv6 := inv2 * inv2 * inv2
	f := 24 * (2*inv6*inv6 - inv6) / dz
	if f < 0 {
		return 0
	}
	const maxF = 1e4
	if f > maxF {
		return maxF
	}
	return f
}

// PotentialEnergy computes the total pair + wall potential energy by brute
// force; used in tests and diagnostics, not in the integration hot path.
func (s *System) PotentialEnergy() float64 {
	cut2 := s.Cfg.Cutoff * s.Cfg.Cutoff
	d2 := s.P.D * s.P.D
	u := 0.0
	for i := 0; i < s.N; i++ {
		for j := i + 1; j < s.N; j++ {
			dx := s.Pos[3*i] - s.Pos[3*j]
			dy := s.Pos[3*i+1] - s.Pos[3*j+1]
			dz := s.Pos[3*i+2] - s.Pos[3*j+2]
			dx, dy = s.minimumImage(dx, dy)
			r2 := dx*dx + dy*dy + dz*dz
			if r2 >= cut2 || r2 == 0 {
				continue
			}
			if s.Kind[i] == Solvent && s.Kind[j] == Solvent {
				continue // kernel energy not tracked
			}
			wcaCut := 1.2599210498948732 * d2
			if r2 < wcaCut {
				inv2 := d2 / r2
				inv6 := inv2 * inv2 * inv2
				u += 4*(inv6*inv6-inv6) + 1
			}
			if s.Charge[i] != 0 && s.Charge[j] != 0 {
				r := math.Sqrt(r2)
				u += s.Cfg.Bjerrum * s.Charge[i] * s.Charge[j] * math.Exp(-s.Kappa*r) / r
			}
		}
	}
	return u
}
