// Package md implements the nanoscale molecular-dynamics substrate of the
// paper's flagship MLaroundHPC exemplar (§II-C1, §III-D): ions confined
// between two planar surfaces nanometers apart. The five control
// parameters match the paper's D=5 feature set — confinement length h,
// positive valency z+, negative valency z−, salt concentration c and ion
// diameter d — and the observables are the contact, mid-plane (center) and
// peak densities of the ionic profile.
//
// The simulation is self-contained: Langevin dynamics with velocity-Verlet
// integration, WCA excluded volume, screened-Coulomb (Yukawa)
// electrostatics, purely repulsive 12-6 walls, cell-list neighbor search
// and a goroutine-parallel force loop. Reduced units are used throughout:
// the unit length is the reference ion diameter, the unit energy is kT,
// and the unit mass is the ion mass.
package md

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// Params are the physical control parameters of one confined-electrolyte
// simulation — exactly the paper's five surrogate input features.
type Params struct {
	// H is the confinement length (wall separation) in reduced units.
	H float64
	// Zp and Zn are the positive and negative ion valencies.
	Zp, Zn int
	// C is the reduced salt concentration (ion-pair number density).
	C float64
	// D is the ion diameter in reduced units.
	D float64
}

// Validate checks the parameters against the supported ranges.
func (p Params) Validate() error {
	switch {
	case p.H < 2 || p.H > 100:
		return fmt.Errorf("md: confinement length %g outside [2,100]", p.H)
	case p.Zp < 1 || p.Zp > 3 || p.Zn < 1 || p.Zn > 3:
		return fmt.Errorf("md: valencies (%d,%d) outside [1,3]", p.Zp, p.Zn)
	case p.C <= 0 || p.C > 0.5:
		return fmt.Errorf("md: concentration %g outside (0,0.5]", p.C)
	case p.D < 0.5 || p.D > 2:
		return fmt.Errorf("md: ion diameter %g outside [0.5,2]", p.D)
	}
	return nil
}

// Species tags a particle type.
type Species int

// Particle species.
const (
	Cation Species = iota
	Anion
	Solvent
)

// String returns the species name.
func (s Species) String() string {
	switch s {
	case Cation:
		return "cation"
	case Anion:
		return "anion"
	default:
		return "solvent"
	}
}

// Config controls the numerical setup of a simulation.
type Config struct {
	// L is the lateral box edge (x and y, periodic).
	L float64
	// Dt is the integration timestep.
	Dt float64
	// Gamma is the Langevin friction coefficient.
	Gamma float64
	// Bjerrum is the Bjerrum length setting electrostatic strength.
	Bjerrum float64
	// Cutoff is the pair-interaction cutoff radius.
	Cutoff float64
	// SolventFrac adds neutral solvent particles as this fraction of the
	// total particle count (0 disables; used by the solvent-surrogate
	// experiment E8).
	SolventFrac float64
	// Workers bounds force-loop parallelism (0 = GOMAXPROCS).
	Workers int
	// Seed drives all stochastic elements.
	Seed uint64
}

// DefaultConfig returns a numerically safe configuration.
func DefaultConfig() Config {
	return Config{
		L: 10, Dt: 0.005, Gamma: 1.0, Bjerrum: 2.0, Cutoff: 3.5,
		SolventFrac: 0, Workers: 0, Seed: 1,
	}
}

// System is the state of one confined-electrolyte simulation.
type System struct {
	P   Params
	Cfg Config

	N       int       // total particles
	Pos     []float64 // 3N packed x,y,z
	Vel     []float64
	Force   []float64
	Charge  []float64
	Kind    []Species
	Kappa   float64 // inverse screening length
	rng     *xrand.Rand
	cells   *cellList
	kernel  PairKernel // solvent-solvent kernel (exact or surrogate)
	stepNum int
}

// NewSystem builds an electroneutral system of ions (plus optional neutral
// solvent) placed on a jittered lattice inside the slit.
func NewSystem(p Params, cfg Config) (*System, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cfg.L <= 0 || cfg.Dt <= 0 || cfg.Cutoff <= 0 {
		return nil, fmt.Errorf("md: invalid config %+v", cfg)
	}
	// Electroneutrality: nPlus*Zp == nMinus*Zn. Choose k "formula units".
	volume := cfg.L * cfg.L * p.H
	k := int(math.Max(1, math.Round(p.C*volume/float64(p.Zp+p.Zn))))
	nPlus := k * p.Zn
	nMinus := k * p.Zp
	nIons := nPlus + nMinus
	nSolvent := 0
	if cfg.SolventFrac > 0 {
		if cfg.SolventFrac >= 1 {
			return nil, fmt.Errorf("md: solvent fraction %g must be < 1", cfg.SolventFrac)
		}
		nSolvent = int(float64(nIons) * cfg.SolventFrac / (1 - cfg.SolventFrac))
	}
	n := nIons + nSolvent

	s := &System{
		P: p, Cfg: cfg, N: n,
		Pos:    make([]float64, 3*n),
		Vel:    make([]float64, 3*n),
		Force:  make([]float64, 3*n),
		Charge: make([]float64, n),
		Kind:   make([]Species, n),
		rng:    xrand.New(cfg.Seed),
		kernel: ExactSolventKernel{},
	}
	for i := 0; i < nPlus; i++ {
		s.Charge[i] = float64(p.Zp)
		s.Kind[i] = Cation
	}
	for i := nPlus; i < nIons; i++ {
		s.Charge[i] = -float64(p.Zn)
		s.Kind[i] = Anion
	}
	for i := nIons; i < n; i++ {
		s.Kind[i] = Solvent
	}
	// Debye screening from ionic strength: kappa^2 = 4*pi*lB*sum(ci*zi^2).
	ionDensity := float64(nIons) / volume
	sumZ2 := (float64(nPlus)*float64(p.Zp*p.Zp) + float64(nMinus)*float64(p.Zn*p.Zn)) / float64(nIons)
	s.Kappa = math.Sqrt(4 * math.Pi * cfg.Bjerrum * ionDensity * sumZ2)

	s.placeOnLattice()
	s.initVelocities()
	s.cells = newCellList(cfg.L, p.H, cfg.Cutoff)
	s.ComputeForces()
	return s, nil
}

// placeOnLattice arranges particles on a cubic lattice inside the slit with
// small random jitter, avoiding initial overlaps.
func (s *System) placeOnLattice() {
	// Lattice spacing from particle count.
	perSide := int(math.Ceil(math.Cbrt(float64(s.N))))
	dx := s.Cfg.L / float64(perSide)
	// Keep a wall offset of one radius so the wall potential is finite.
	zLo := -s.P.H/2 + s.P.D*0.6
	zHi := s.P.H/2 - s.P.D*0.6
	dz := (zHi - zLo) / float64(perSide)
	idx := 0
	for ix := 0; ix < perSide && idx < s.N; ix++ {
		for iy := 0; iy < perSide && idx < s.N; iy++ {
			for iz := 0; iz < perSide && idx < s.N; iz++ {
				jit := 0.05 * dx
				s.Pos[3*idx] = (float64(ix)+0.5)*dx + s.rng.Range(-jit, jit)
				s.Pos[3*idx+1] = (float64(iy)+0.5)*dx + s.rng.Range(-jit, jit)
				s.Pos[3*idx+2] = zLo + (float64(iz)+0.5)*dz + s.rng.Range(-jit, jit)
				idx++
			}
		}
	}
	// Shuffle positions across species so ions and solvent mix.
	perm := s.rng.Perm(s.N)
	pos := make([]float64, len(s.Pos))
	copy(pos, s.Pos)
	for i, p := range perm {
		s.Pos[3*i] = pos[3*p]
		s.Pos[3*i+1] = pos[3*p+1]
		s.Pos[3*i+2] = pos[3*p+2]
	}
}

// initVelocities draws Maxwell–Boltzmann velocities at kT=1 and removes
// the center-of-mass drift.
func (s *System) initVelocities() {
	var cm [3]float64
	for i := 0; i < s.N; i++ {
		for d := 0; d < 3; d++ {
			v := s.rng.NormFloat64()
			s.Vel[3*i+d] = v
			cm[d] += v
		}
	}
	for d := 0; d < 3; d++ {
		cm[d] /= float64(s.N)
	}
	for i := 0; i < s.N; i++ {
		for d := 0; d < 3; d++ {
			s.Vel[3*i+d] -= cm[d]
		}
	}
}

// SetSolventKernel swaps the solvent-solvent pair kernel (exact vs
// learned surrogate, experiment E8).
func (s *System) SetSolventKernel(k PairKernel) { s.kernel = k }

// KineticTemperature returns the instantaneous kinetic temperature
// 2*KE/(3N) in units of kT.
func (s *System) KineticTemperature() float64 {
	ke := 0.0
	for _, v := range s.Vel {
		ke += v * v
	}
	return ke / float64(3*s.N)
}

// minimumImage applies the periodic minimum-image convention laterally;
// z is not periodic (walls).
func (s *System) minimumImage(dx, dy float64) (float64, float64) {
	L := s.Cfg.L
	if dx > L/2 {
		dx -= L
	} else if dx < -L/2 {
		dx += L
	}
	if dy > L/2 {
		dy -= L
	} else if dy < -L/2 {
		dy += L
	}
	return dx, dy
}

// wrap applies lateral periodic wrapping to a coordinate in O(1) time
// (math.Mod rather than repeated shifts, so a blown-up coordinate cannot
// stall the step loop). Non-finite input maps to 0 — downstream
// diagnostics (kinetic temperature) expose the blowup.
func wrap(x, L float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	x = math.Mod(x, L)
	if x < 0 {
		x += L
	}
	return x
}
