package md

import (
	"context"
	"fmt"

	"repro/internal/core"
)

// Profile accumulates the z-resolved ion number density across samples.
type Profile struct {
	H      float64
	Bins   int
	counts []float64
	n      int
}

// NewProfile allocates a profile accumulator over the slit [-H/2, H/2].
func NewProfile(h float64, bins int) *Profile {
	return &Profile{H: h, Bins: bins, counts: make([]float64, bins)}
}

// Accumulate folds the current ion positions (solvent excluded) into the
// histogram.
func (p *Profile) Accumulate(s *System) {
	dz := p.H / float64(p.Bins)
	for i := 0; i < s.N; i++ {
		if s.Kind[i] == Solvent {
			continue
		}
		z := s.Pos[3*i+2] + p.H/2
		b := int(z / dz)
		if b < 0 {
			b = 0
		}
		if b >= p.Bins {
			b = p.Bins - 1
		}
		p.counts[b]++
	}
	p.n++
}

// Result converts accumulated counts to number densities and extracts the
// paper's three target features. The profile is symmetrized about the
// mid-plane (the Hamiltonian is z-symmetric, so averaging the halves
// halves the sampling noise).
func (p *Profile) Result(s *System) *Result {
	res := &Result{
		Profile:    make([]float64, p.Bins),
		BinCenters: make([]float64, p.Bins),
		Samples:    p.n,
	}
	dz := p.H / float64(p.Bins)
	binVol := s.Cfg.L * s.Cfg.L * dz
	for b := 0; b < p.Bins; b++ {
		res.BinCenters[b] = -p.H/2 + (float64(b)+0.5)*dz
		if p.n > 0 {
			res.Profile[b] = p.counts[b] / (float64(p.n) * binVol)
		}
	}
	// Symmetrize.
	for b := 0; b < p.Bins/2; b++ {
		m := (res.Profile[b] + res.Profile[p.Bins-1-b]) / 2
		res.Profile[b] = m
		res.Profile[p.Bins-1-b] = m
	}
	// Contact density: innermost bin the ions can actually reach (the wall
	// excludes centers within ~D/2, so the geometric first bin can be
	// empty); use the first bin at or beyond the contact distance.
	contactBin := int((s.P.D / 2) / dz)
	if contactBin >= p.Bins/2 {
		contactBin = 0
	}
	res.ContactDensity = (res.Profile[contactBin] + res.Profile[p.Bins-1-contactBin]) / 2
	// Mid-plane density.
	res.MidDensity = (res.Profile[p.Bins/2] + res.Profile[(p.Bins-1)/2]) / 2
	// Peak density.
	for _, v := range res.Profile {
		if v > res.PeakDensity {
			res.PeakDensity = v
		}
	}
	return res
}

// Oracle adapts the MD simulation to the core.Oracle interface: inputs are
// the paper's five features (h, z+, z−, c, d) and outputs the three
// density observables (contact, mid, peak). Every Run executes a full
// simulation — this is the expensive ground truth the MLaroundHPC wrapper
// learns to bypass (experiment E2).
type Oracle struct {
	Cfg Config
	RC  RunConfig
	// seedCounter differentiates repeated runs at identical parameters.
	seedCounter uint64
}

// NewOracle builds an MD oracle with the given numerical setup.
func NewOracle(cfg Config, rc RunConfig) *Oracle {
	return &Oracle{Cfg: cfg, RC: rc}
}

// Dims implements core.Oracle: 5 inputs → 3 outputs.
func (o *Oracle) Dims() (int, int) { return 5, 3 }

// Run implements core.Oracle.
func (o *Oracle) Run(x []float64) ([]float64, error) {
	if len(x) != 5 {
		return nil, fmt.Errorf("md: oracle expects 5 features, got %d", len(x))
	}
	p := Params{H: x[0], Zp: int(x[1] + 0.5), Zn: int(x[2] + 0.5), C: x[3], D: x[4]}
	cfg := o.Cfg
	o.seedCounter++
	cfg.Seed = o.Cfg.Seed + o.seedCounter*0x9e3779b9
	sys, err := NewSystem(p, cfg)
	if err != nil {
		return nil, err
	}
	res, err := sys.Run(context.Background(), o.RC)
	if err != nil {
		return nil, err
	}
	return []float64{res.ContactDensity, res.MidDensity, res.PeakDensity}, nil
}

var _ core.Oracle = (*Oracle)(nil)

// FeatureNames are the paper's five input features in order.
func FeatureNames() []string { return []string{"h", "zp", "zn", "c", "d"} }

// TargetNames are the three predicted density observables in order.
func TargetNames() []string { return []string{"contact", "mid", "peak"} }
