package router

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/netserve"
)

// buildQueryFrame hand-assembles a prefixed query frame — the fuzz seeds
// must not depend on the client encoder under test.
func buildQueryFrame(tenant string, id uint64, xs []float64) []byte {
	body := make([]byte, 0, 22+len(tenant)+8*len(xs))
	body = append(body, 1, 1, 0, byte(len(tenant)))
	body = binary.BigEndian.AppendUint64(body, id)
	body = binary.BigEndian.AppendUint64(body, 0) // deadline
	body = binary.BigEndian.AppendUint16(body, uint16(len(xs)))
	body = append(body, tenant...)
	for _, v := range xs {
		body = binary.BigEndian.AppendUint64(body, math.Float64bits(v))
	}
	frame := binary.BigEndian.AppendUint32(nil, uint32(len(body)))
	return append(frame, body...)
}

// FuzzRouteFrame fuzzes the forwarder's raw-frame path: framing,
// validation, and the two in-place id patches. The invariants are the
// router's splice contract — a frame RawQueryMeta accepts must survive an
// id patch byte-identically outside the id word (still parse, same
// tenant, same payload), response ids must round-trip the same way, and
// no input may panic or over-read.
func FuzzRouteFrame(f *testing.F) {
	f.Add(buildQueryFrame("alpha", 7, []float64{0.5, -1}), uint64(99))
	f.Add(buildQueryFrame("t", 0, nil), uint64(0))
	// Two requests sharing an id: the forwarder must be able to patch the
	// collision apart.
	f.Add(buildQueryFrame("beta", 42, []float64{1}), uint64(42))
	f.Add(buildQueryFrame("beta", 42, []float64{2}), ^uint64(0))
	full := buildQueryFrame("gamma", 1, []float64{3, 4})
	f.Add(full[:len(full)-5], uint64(3))                    // truncated payload
	f.Add(append(full[:len(full):len(full)], 0), uint64(3)) // trailing byte
	bad := append([]byte(nil), full...)
	bad[4] = 9 // unknown version
	f.Add(bad, uint64(3))

	f.Fuzz(func(t *testing.T, data []byte, newID uint64) {
		frame := append([]byte(nil), data...)
		if tenant, id, err := netserve.RawQueryMeta(frame); err == nil {
			if len(tenant) == 0 || len(tenant) > netserve.MaxTenant {
				t.Fatalf("accepted tenant of %d bytes", len(tenant))
			}
			before := append([]byte(nil), frame...)
			netserve.SetRawQueryID(frame, newID)
			tenant2, id2, err2 := netserve.RawQueryMeta(frame)
			if err2 != nil {
				t.Fatalf("id patch broke a routable frame: %v", err2)
			}
			if id2 != newID {
				t.Fatalf("patched id reads back %d, want %d", id2, newID)
			}
			if !bytes.Equal(tenant2, tenant) {
				t.Fatalf("id patch moved the tenant: %q → %q", tenant, tenant2)
			}
			// Patching back restores the frame byte-for-byte: the splice
			// touched nothing but the id word.
			netserve.SetRawQueryID(frame, id)
			if !bytes.Equal(frame, before) {
				t.Fatal("id patch altered bytes outside the id word")
			}
		}
		// Response demux patch: ids at the same offset in both layouts.
		if rid, ok := netserve.RawResponseID(frame); ok {
			netserve.SetRawResponseID(frame, newID)
			if got, _ := netserve.RawResponseID(frame); got != newID {
				t.Fatalf("response id patch reads back %d, want %d", got, newID)
			}
			netserve.SetRawResponseID(frame, rid)
		}
		// Framing: whatever the bytes, ReadRawFrame must not panic,
		// over-read, or hand back a frame inconsistent with its prefix.
		br := bufio.NewReader(bytes.NewReader(data))
		out, err := netserve.ReadRawFrame(br, nil, 1<<16)
		if err == nil {
			if len(out) < 4 || len(out) > 4+(1<<16) {
				t.Fatalf("framed %d bytes under a %d cap", len(out), 1<<16)
			}
			if int(binary.BigEndian.Uint32(out[:4])) != len(out)-4 {
				t.Fatal("frame length prefix disagrees with frame size")
			}
		}
	})
}
