package router

import (
	"net"
	"path/filepath"
	"testing"
	"time"
)

// TestRoutedSteadyStateAllocs pins the forwarder's perf contract: once
// placements settle and every pool is warm, a routed query — client
// encode, frontend raw read + id patch + splice, worker round trip,
// response demux + splice back, client decode — settles to ~zero heap
// allocations. The benchmark gate enforces exactly 0 on the recorded
// snapshot; the tolerance here absorbs GC-emptied sync.Pools refilling.
func TestRoutedSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime drops sync.Pool puts; alloc counts are meaningless")
	}
	if testing.Short() {
		t.Skip("spawns a worker stack")
	}
	dir := t.TempDir()
	w := startWorker(t, filepath.Join(dir, "w"), 1)
	defer w.kill()

	// No mirror registry: the mirror loop's periodic stat calls would
	// show up as background allocations mid-measurement.
	rt, err := New(Config{Workers: []string{w.addr}, Tenants: []string{"m"}, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rt.Serve(ln)
	rc := dialRouter(t, ln.Addr().String())
	defer rc.Close()

	x := []float64{0.25, -0.5}
	y, std := make([]float64, 1), make([]float64, 1)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, qerr := rc.QueryInto("m", x, y, std, time.Now().Add(time.Second)); qerr == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Zero deadline, like the wire-path allocation tests: a deadline arms
	// a fresh time.Timer inside the client, which is caller-side cost, not
	// the forwarder's.
	for i := 0; i < 512; i++ { // warm every pool on both hops
		if _, err := rc.QueryInto("m", x, y, std, time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(2000, func() {
		if _, err := rc.QueryInto("m", x, y, std, time.Time{}); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 1.0 {
		t.Fatalf("steady-state routed query allocates %.2f objects/op, want ≈ 0", avg)
	}
	t.Logf("routed steady-state allocs/op: %.3f", avg)
}
