// Package router is the multi-process dispatch tier: a wire-protocol
// frontend whose backends are N worker processes, each a netserve
// Server over its own fleet. Tenants are placed on workers by
// consistent hashing over the live worker ring, and the forwarder
// never decodes rows — it validates the frame header, patches the
// request-id word in the already-framed bytes, and splices the payload
// through to the owning worker's connection, gathering contiguous
// same-worker runs into one buffered write exactly as netserve's
// readLoop Peek-gathers same-tenant runs. Responses demux back through
// pooled per-connection id-remap tables, so the routed hot path keeps
// the serving plane's zero-allocation steady state.
//
// Failure semantics uphold the stack's never-silently-dropped
// contract: a worker death fails that worker's in-flight requests with
// explicit Retry frames, removes it from the ring, and moves its
// placements to the surviving owners — warm-started from the router's
// artifact mirror over the wire (push of the tenant's latest registry
// generations), so the new owner serves the tenant's learned state
// with zero oracle retraining. While a placement moves, the router
// itself answers Retry. A worker that comes back rejoins the ring and
// its tenants rehash home the same way.
package router

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netserve"
	"repro/internal/registry"
)

// Config tunes a Router. Workers is required.
type Config struct {
	// Workers lists the backend worker addresses. Placement hashes over
	// the live subset; workers that are down at start repair in the
	// background and join the ring when they come up.
	Workers []string
	// Registry, when set, is the router's local artifact mirror: a
	// follower registry the mirror loop replays worker generations into,
	// and the source of the warm-start pushes that move placements
	// without retraining. Nil disables mirroring; moves place cold.
	Registry *registry.Registry
	// Tenants are placed (and pushed to their owners) at start. Tenants
	// not listed are routed on demand to their ring owner without a
	// provisioning push.
	Tenants []string
	// Replicas is the virtual-node count per worker on the hash ring
	// (default 64).
	Replicas int
	// MaxBurst caps how many contiguous same-worker frames one frontend
	// connection splices under a single backend write lock (default 64).
	MaxBurst int
	// MaxFrame caps request frames (default netserve.DefaultMaxFrame).
	MaxFrame int
	// ReadBuffer / WriteBuffer size each connection's buffered reader
	// and writer (default 32KiB each).
	ReadBuffer, WriteBuffer int
	// MaxConnInFlight bounds forwarded-but-unanswered requests per
	// frontend connection; beyond it the router answers Retry (default
	// 1024).
	MaxConnInFlight int
	// MaxWorkerInFlight bounds outstanding requests per worker; beyond
	// it the router answers Retry (default 4096).
	MaxWorkerInFlight int
	// MirrorInterval is the artifact-mirror poll cadence (default
	// 500ms). Only meaningful with Registry set.
	MirrorInterval time.Duration
	// StallTimeout condemns a worker connection that holds in-flight
	// requests but delivers no response bytes for this long — the
	// blackhole analog of the resilient client's ExpireStreak (default
	// 10s; negative disables).
	StallTimeout time.Duration
	// WriteTimeout bounds each backend/frontend write and flush
	// (default 10s). A stall past it condemns the connection.
	WriteTimeout time.Duration
	// DialTimeout bounds each backend dial (default 2s).
	DialTimeout time.Duration
	// ReconnectBackoff / ReconnectBackoffMax shape the backend redial
	// ladder (defaults 25ms and 1s).
	ReconnectBackoff, ReconnectBackoffMax time.Duration
	// Control tunes the per-worker resilient control-plane client pool
	// (artifact stat/fetch/push). Conns defaults to 1 and the client
	// MaxFrame is raised to admit artifact frames.
	Control netserve.ResilientConfig
	// Dialer overrides the backend transport dial — fault-injection
	// harnesses wrap connections here. Nil uses net.DialTimeout("tcp").
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)
	// Logf observes placement and failover events; nil discards them.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.Replicas <= 0 {
		c.Replicas = 64
	}
	if c.MaxBurst <= 0 {
		c.MaxBurst = 64
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = netserve.DefaultMaxFrame
	}
	if c.ReadBuffer <= 0 {
		c.ReadBuffer = 32 << 10
	}
	if c.WriteBuffer <= 0 {
		c.WriteBuffer = 32 << 10
	}
	if c.MaxConnInFlight <= 0 {
		c.MaxConnInFlight = 1024
	}
	if c.MaxWorkerInFlight <= 0 {
		c.MaxWorkerInFlight = 4096
	}
	if c.MirrorInterval <= 0 {
		c.MirrorInterval = 500 * time.Millisecond
	}
	if c.StallTimeout == 0 {
		c.StallTimeout = 10 * time.Second
	}
	if c.StallTimeout < 0 {
		c.StallTimeout = 0
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.WriteTimeout < 0 {
		c.WriteTimeout = 0
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.ReconnectBackoff <= 0 {
		c.ReconnectBackoff = 25 * time.Millisecond
	}
	if c.ReconnectBackoffMax <= 0 {
		c.ReconnectBackoffMax = time.Second
	}
}

// Stats is a snapshot of router-wide counters.
type Stats struct {
	// Conns counts frontend connections accepted; Open is the current
	// open count.
	Conns, Open int64
	// Frames counts query frames forwarded to workers; Bursts counts
	// the backend write runs they were coalesced into.
	Frames, Bursts int64
	// Retries counts Retry frames the router answered itself (placement
	// moving or down, in-flight bounds, dead backend).
	Retries int64
	// Rehashes counts ring membership changes; Moves completed
	// placement moves; WarmStarts moves that pushed mirrored artifacts;
	// ColdStarts moves placed without any.
	Rehashes, Moves, WarmStarts, ColdStarts int64
	// Drops counts responses whose frontend connection was already gone
	// (the caller's client failed them locally; nothing is owed).
	Drops int64
	// MirrorGens counts registry generations the mirror replayed.
	MirrorGens int64
	// WorkersLive is the current live worker count.
	WorkersLive int64
	// ProtoErrors counts frontend connections killed by malformed
	// frames.
	ProtoErrors int64
}

// Placement states.
const (
	placeReady int32 = iota
	placeMoving
	placeDown
)

// placement is one tenant's routing entry. The struct is created once
// per tenant and never replaced, so frontend connections cache the
// pointer; owner and state are atomics read on every frame.
type placement struct {
	tenant string
	wk     atomic.Pointer[worker] // serving owner; nil until first ready
	state  atomic.Int32

	// Move bookkeeping, guarded by Router.pmu: the destination of the
	// in-flight move and a sequence number that fences stale movers.
	want    *worker
	moveSeq uint64
}

// route returns the owner to forward to; ok is false when the router
// must answer Retry itself (moving, down, owner connection dead).
func (p *placement) route() (*backendConn, bool) {
	if p.state.Load() != placeReady {
		return nil, false
	}
	wk := p.wk.Load()
	if wk == nil {
		return nil, false
	}
	bc := wk.hot.Load()
	if bc == nil {
		return nil, false
	}
	return bc, true
}

// Router is the dispatch tier. All exported methods are safe for
// concurrent use.
type Router struct {
	cfg Config
	reg *registry.Registry

	workers []*worker

	// pmu guards placements, the ring and move bookkeeping.
	pmu        sync.RWMutex
	placements map[string]*placement
	ring       atomic.Pointer[hashRing]

	mu     sync.Mutex
	lns    map[net.Listener]struct{}
	conns  map[*clientConn]struct{}
	closed bool

	quit chan struct{}
	bg   sync.WaitGroup // mirror loop, movers, repair loops
	wg   sync.WaitGroup // frontend connection handlers

	conns64, open, frames, bursts, retries       atomic.Int64
	rehashes, moves, warmStarts, coldStarts      atomic.Int64
	drops, mirrorGens, protoErrs                 atomic.Int64
	remapLeases, remapReleases, unexpectedFrames atomic.Int64
}

// New builds a router over cfg.Workers, dials each worker (down ones
// repair in the background) and schedules the initial placement of
// cfg.Tenants.
func New(cfg Config) (*Router, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("router: Config.Workers is required")
	}
	cfg.fill()
	rt := &Router{
		cfg:        cfg,
		reg:        cfg.Registry,
		placements: map[string]*placement{},
		lns:        map[net.Listener]struct{}{},
		conns:      map[*clientConn]struct{}{},
		quit:       make(chan struct{}),
	}
	for i, addr := range cfg.Workers {
		wk := &worker{rt: rt, addr: addr, idx: i}
		rt.workers = append(rt.workers, wk)
	}
	rt.ring.Store(&hashRing{})
	for _, wk := range rt.workers {
		if err := wk.connect(); err != nil {
			rt.logf("router: worker %s down at start: %v", wk.addr, err)
			wk.spawnRepair()
		}
	}
	rt.pmu.Lock()
	for _, name := range cfg.Tenants {
		p := &placement{tenant: name}
		p.state.Store(placeMoving) // provisioned by the initial move
		rt.placements[name] = p
	}
	rt.rebalanceLocked()
	rt.pmu.Unlock()
	if rt.reg != nil {
		rt.bg.Add(1)
		go rt.mirrorLoop()
	}
	return rt, nil
}

func (rt *Router) logf(format string, args ...any) {
	if rt.cfg.Logf != nil {
		rt.cfg.Logf(format, args...)
	}
}

// Stats snapshots the router counters.
func (rt *Router) Stats() Stats {
	live := int64(0)
	for _, wk := range rt.workers {
		if wk.live() {
			live++
		}
	}
	return Stats{
		Conns:       rt.conns64.Load(),
		Open:        rt.open.Load(),
		Frames:      rt.frames.Load(),
		Bursts:      rt.bursts.Load(),
		Retries:     rt.retries.Load(),
		Rehashes:    rt.rehashes.Load(),
		Moves:       rt.moves.Load(),
		WarmStarts:  rt.warmStarts.Load(),
		ColdStarts:  rt.coldStarts.Load(),
		Drops:       rt.drops.Load(),
		MirrorGens:  rt.mirrorGens.Load(),
		WorkersLive: live,
		ProtoErrors: rt.protoErrs.Load(),
	}
}

// poolBalance reports outstanding pooled remap entries — zero once
// every connection and worker has drained. The leak tests assert it.
func (rt *Router) poolBalance() int64 {
	return rt.remapLeases.Load() - rt.remapReleases.Load()
}

// Placements snapshots tenant → worker-address routing (empty address
// while a placement is moving or down).
func (rt *Router) Placements() map[string]string {
	rt.pmu.RLock()
	defer rt.pmu.RUnlock()
	out := make(map[string]string, len(rt.placements))
	for name, p := range rt.placements {
		addr := ""
		if p.state.Load() == placeReady {
			if wk := p.wk.Load(); wk != nil {
				addr = wk.addr
			}
		}
		out[name] = addr
	}
	return out
}

// AddTenant places a new tenant on its ring owner, pushing mirrored
// artifacts (or a cold placement) before traffic routes to it.
func (rt *Router) AddTenant(name string) {
	rt.pmu.Lock()
	defer rt.pmu.Unlock()
	if _, ok := rt.placements[name]; ok {
		return
	}
	p := &placement{tenant: name}
	p.state.Store(placeMoving)
	rt.placements[name] = p
	rt.rebalanceLocked()
}

// ErrRouterClosed is returned by Serve after Close.
var ErrRouterClosed = errors.New("router: closed")

// Serve accepts frontend connections on ln until Close. It blocks; run
// it in a goroutine.
func (rt *Router) Serve(ln net.Listener) error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		ln.Close()
		return ErrRouterClosed
	}
	rt.lns[ln] = struct{}{}
	rt.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			rt.mu.Lock()
			delete(rt.lns, ln)
			closed := rt.closed
			rt.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		cc := &clientConn{rt: rt, c: c}
		cc.bw = bufio.NewWriterSize(c, rt.cfg.WriteBuffer)
		rt.mu.Lock()
		if rt.closed {
			rt.mu.Unlock()
			c.Close()
			return ErrRouterClosed
		}
		rt.conns[cc] = struct{}{}
		rt.conns64.Add(1)
		rt.open.Add(1)
		rt.wg.Add(1)
		rt.mu.Unlock()
		go cc.handle()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (rt *Router) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return rt.Serve(ln)
}

// Close tears the router down: listeners close, frontend connections
// close (their callers see connection loss, which the resilient client
// maps to typed errors), backend connections fail their in-flight
// remaps, and every background loop exits.
func (rt *Router) Close() error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		rt.bg.Wait()
		rt.wg.Wait()
		return nil
	}
	rt.closed = true
	close(rt.quit)
	for ln := range rt.lns {
		ln.Close()
	}
	conns := make([]*clientConn, 0, len(rt.conns))
	for cc := range rt.conns {
		conns = append(conns, cc)
	}
	rt.mu.Unlock()
	for _, cc := range conns {
		cc.shutdown()
	}
	for _, wk := range rt.workers {
		wk.close()
	}
	rt.bg.Wait()
	rt.wg.Wait()
	return nil
}

// ---------------------------------------------------------------------------
// frontend connections

// clientConn is one accepted frontend connection: a reader goroutine
// that validates, patches and splices frames to backend connections,
// and a write side (shared with every backend read loop delivering
// responses) guarded by wmu.
type clientConn struct {
	rt *Router
	c  net.Conn

	wmu     sync.Mutex
	bw      *bufio.Writer
	werr    error  // sticky write error
	sbuf    []byte // status-frame scratch, guarded by wmu
	pending bool   // buffered bytes awaiting flush, guarded by wmu

	closed   atomic.Bool
	inflight atomic.Int64 // forwarded-but-unanswered frames
}

// shutdown closes the connection; in-flight responses arriving later
// are dropped (the caller's client has already failed them locally).
func (cc *clientConn) shutdown() {
	if cc.closed.CompareAndSwap(false, true) {
		cc.c.Close()
	}
}

// handle runs the connection's read loop to completion and tears down.
func (cc *clientConn) handle() {
	rt := cc.rt
	defer rt.wg.Done()
	defer rt.open.Add(-1)
	cc.readLoop()
	cc.shutdown()
	rt.mu.Lock()
	delete(rt.conns, cc)
	rt.mu.Unlock()
}

// readLoop is the forwarder: it reads raw frames, resolves each
// tenant's placement through the per-connection cache, and splices
// contiguous same-worker runs under a single backend write lock — the
// cross-connection coalescing contract: a pipelined client burst
// arrives at the worker as one TCP chunk, which its server read loop
// Peek-gathers into one fleet burst.
func (cc *clientConn) readLoop() {
	rt := cc.rt
	br := bufio.NewReaderSize(cc.c, rt.cfg.ReadBuffer)
	buf := make([]byte, 0, 4096)
	cache := make(map[string]*placement)

	var run *backendConn // write-locked run target
	runLen := 0
	endRun := func() {
		if run != nil {
			run.flushLocked()
			run.wmu.Unlock()
			rt.bursts.Add(1)
			run = nil
			runLen = 0
		}
	}
	defer endRun()

	for {
		if !netserve.RawFrameBuffered(br, rt.cfg.MaxFrame) {
			// About to block: release the backend run and flush any
			// Retry frames owed to this caller.
			endRun()
			cc.flush()
		}
		var err error
		buf, err = netserve.ReadRawFrame(br, buf, rt.cfg.MaxFrame)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				rt.protoErrs.Add(1)
			}
			return
		}
		tenant, id, err := netserve.RawQueryMeta(buf)
		if err != nil {
			rt.protoErrs.Add(1)
			return
		}
		rt.frames.Add(1)
		p := cache[string(tenant)] // no-alloc lookup
		if p == nil {
			p = rt.getPlacement(tenant)
			cache[p.tenant] = p
		}
		bc, ok := p.route()
		if !ok || cc.inflight.Load() >= int64(rt.cfg.MaxConnInFlight) {
			endRun()
			cc.writeStatus(id, netserve.StatusRetry)
			rt.retries.Add(1)
			continue
		}
		if run != nil && (bc != run || runLen >= rt.cfg.MaxBurst) {
			endRun()
		}
		if run == nil {
			if bc.wk.inflight.Load() >= int64(rt.cfg.MaxWorkerInFlight) {
				cc.writeStatus(id, netserve.StatusRetry)
				rt.retries.Add(1)
				continue
			}
			bc.wmu.Lock()
			run = bc
		}
		if !bc.spliceLocked(cc, id, buf) {
			// The backend died mid-run: answer this frame Retry; its
			// teardown fails the rest of the run's in-flight the same
			// way.
			run.wmu.Unlock()
			run = nil
			runLen = 0
			cc.writeStatus(id, netserve.StatusRetry)
			rt.retries.Add(1)
			continue
		}
		runLen++
	}
}

// getPlacement resolves (or creates) the global placement for a tenant
// seen on the wire. Unprovisioned tenants route straight to their ring
// owner — a worker that does not know them answers UnknownTenant,
// which passes through to the caller untouched.
func (rt *Router) getPlacement(tenant []byte) *placement {
	rt.pmu.RLock()
	p := rt.placements[string(tenant)] // no-alloc lookup
	rt.pmu.RUnlock()
	if p != nil {
		return p
	}
	rt.pmu.Lock()
	defer rt.pmu.Unlock()
	if p = rt.placements[string(tenant)]; p != nil {
		return p
	}
	p = &placement{tenant: string(tenant)}
	if wk := rt.ring.Load().owner(tenant); wk != nil {
		p.wk.Store(wk)
		p.state.Store(placeReady)
	} else {
		p.state.Store(placeDown)
	}
	rt.placements[p.tenant] = p
	return p
}

// writeStatus answers a frame from the router itself with a rowless
// status frame (the explicit Retry of the move/outage path). Buffered;
// flushed when the reader is about to block, or by a response burst.
func (cc *clientConn) writeStatus(id uint64, status byte) {
	cc.wmu.Lock()
	if cc.werr == nil && !cc.closed.Load() {
		cc.sbuf = netserve.AppendStatusFrame(cc.sbuf[:0], id, status)
		if _, err := cc.bw.Write(cc.sbuf); err != nil {
			cc.werr = err
		} else {
			cc.pending = true
		}
	}
	cc.wmu.Unlock()
}

// writeRaw splices a response frame to the caller. False means the
// connection is gone and the frame was dropped.
func (cc *clientConn) writeRaw(frame []byte) bool {
	cc.wmu.Lock()
	if cc.werr != nil || cc.closed.Load() {
		cc.wmu.Unlock()
		return false
	}
	// Deadline only on a buffer spill; the common append is syscall-free.
	if cc.bw.Available() < len(frame) && cc.rt.cfg.WriteTimeout > 0 {
		cc.c.SetWriteDeadline(time.Now().Add(cc.rt.cfg.WriteTimeout))
	}
	if _, err := cc.bw.Write(frame); err != nil {
		cc.werr = err
		cc.wmu.Unlock()
		cc.shutdown()
		return false
	}
	cc.pending = true
	cc.wmu.Unlock()
	return true
}

// flush pushes buffered response/status bytes to the caller.
func (cc *clientConn) flush() {
	cc.wmu.Lock()
	if cc.pending && cc.werr == nil && !cc.closed.Load() {
		if cc.rt.cfg.WriteTimeout > 0 {
			cc.c.SetWriteDeadline(time.Now().Add(cc.rt.cfg.WriteTimeout))
		}
		if err := cc.bw.Flush(); err != nil {
			cc.werr = err
			cc.wmu.Unlock()
			cc.shutdown()
			return
		}
		cc.pending = false
	}
	cc.wmu.Unlock()
}

// unanswered releases one in-flight slot without a response write —
// the caller's connection is gone.
func (cc *clientConn) unanswered() {
	cc.inflight.Add(-1)
}
