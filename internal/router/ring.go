package router

import "sort"

// hashRing is a consistent-hash ring over the live workers: each worker
// contributes Replicas virtual nodes at FNV-1a points on the uint64
// circle, and a tenant is owned by the first virtual node clockwise of
// its hash. Membership changes rebuild the ring (it is tiny — workers ×
// replicas entries) and move only the ~1/N keyspace adjacent to the
// changed worker, which is the whole reason for hashing instead of
// modulo placement: a worker death rehashes its tenants and nobody
// else's.
//
// The ring is immutable after build and swapped atomically, so the hot
// path reads it lock-free; owner() is allocation-free.
type hashRing struct {
	points  []uint64
	holders []*worker
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnv1a hashes b without allocating (hash/fnv's interface forces a
// write call; the hot path cannot afford it).
func fnv1a(b []byte) uint64 {
	h := uint64(fnvOffset)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// fnv1aSeed extends h with b — used to derive virtual-node points from
// a worker address without building the "addr#i" string.
func fnv1aSeed(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// mix64 is a murmur-style finalizer. Raw FNV-1a barely avalanches its
// final bytes — keys differing only in a trailing digit land within
// ~2^48 of each other, clustering a whole tenant family onto one arc of
// the ring — so every hash is finalized before it becomes a circle
// position.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// buildRing constructs a ring over the live subset of workers.
func buildRing(workers []*worker, replicas int) *hashRing {
	r := &hashRing{}
	for _, wk := range workers {
		if !wk.live() {
			continue
		}
		base := fnv1a([]byte(wk.addr))
		for i := 0; i < replicas; i++ {
			var vb [8]byte
			v := uint64(i)
			for j := 0; j < 8; j++ {
				vb[j] = byte(v >> (8 * j))
			}
			r.points = append(r.points, mix64(fnv1aSeed(base, vb[:])))
			r.holders = append(r.holders, wk)
		}
	}
	if len(r.points) == 0 {
		return r
	}
	// Sort points and holders together.
	idx := make([]int, len(r.points))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return r.points[idx[a]] < r.points[idx[b]] })
	pts := make([]uint64, len(idx))
	hds := make([]*worker, len(idx))
	for i, j := range idx {
		pts[i], hds[i] = r.points[j], r.holders[j]
	}
	r.points, r.holders = pts, hds
	return r
}

// owner returns the worker owning tenant, nil when the ring is empty.
// Allocation-free: binary search over the sorted point slice.
func (r *hashRing) owner(tenant []byte) *worker {
	if len(r.points) == 0 {
		return nil
	}
	h := mix64(fnv1a(tenant))
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.points[mid] < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		lo = 0 // wrap: first point clockwise of the top of the circle
	}
	return r.holders[lo]
}
