package router

import (
	"time"

	"repro/internal/registry"
)

// rebalanceLocked rebuilds the ring from the live workers and
// reconciles every placement against its new owner. Caller holds pmu.
//
// A placement whose owner changed enters the moving state — the
// frontend answers Retry for its traffic — and a background mover
// pushes the tenant's mirrored artifacts to the new owner before
// committing the switch, so the first routed query after a move hits a
// warm-started model, never a retraining stall.
func (rt *Router) rebalanceLocked() {
	ring := buildRing(rt.workers, rt.cfg.Replicas)
	rt.ring.Store(ring)
	rt.rehashes.Add(1)
	for _, p := range rt.placements {
		newWant := ring.owner([]byte(p.tenant))
		if newWant == nil {
			// No live workers at all: park the placement.
			p.want = nil
			p.moveSeq++
			p.wk.Store(nil)
			p.state.Store(placeDown)
			continue
		}
		cur := p.wk.Load()
		if p.state.Load() == placeReady && cur == newWant {
			continue // already home
		}
		if p.state.Load() == placeMoving && p.want == newWant {
			continue // a mover is already heading there
		}
		p.want = newWant
		p.moveSeq++
		p.state.Store(placeMoving)
		rt.bg.Add(1)
		go rt.move(p, newWant, p.moveSeq)
	}
}

// move pushes tenant state to target and commits the placement once the
// worker has acknowledged the install. seq fences stale movers: a later
// rebalance bumps moveSeq and this mover abandons silently.
func (rt *Router) move(p *placement, target *worker, seq uint64) {
	defer rt.bg.Done()
	backoff := 25 * time.Millisecond
	for {
		select {
		case <-rt.quit:
			return
		default:
		}
		rt.pmu.RLock()
		stale := p.moveSeq != seq
		rt.pmu.RUnlock()
		if stale {
			return
		}
		if !target.live() {
			// The destination died before we arrived; the teardown's
			// rebalance will bump seq and retarget us. Wait it out.
			select {
			case <-rt.quit:
				return
			case <-time.After(backoff):
			}
			continue
		}
		warm, err := rt.pushTenant(p.tenant, target)
		if err != nil {
			rt.logf("router: push %s to %s: %v (retrying)", p.tenant, target.addr, err)
			select {
			case <-rt.quit:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			continue
		}
		rt.pmu.Lock()
		if p.moveSeq != seq {
			rt.pmu.Unlock()
			return
		}
		p.wk.Store(target)
		p.state.Store(placeReady)
		p.want = nil
		rt.pmu.Unlock()
		rt.moves.Add(1)
		if warm {
			rt.warmStarts.Add(1)
			rt.logf("router: %s warm-started on %s", p.tenant, target.addr)
		} else {
			rt.coldStarts.Add(1)
			rt.logf("router: %s placed cold on %s", p.tenant, target.addr)
		}
		return
	}
}

// maxShards bounds the dense shard-key probe. Fleet tenants shard far
// below this; the cap only bounds work against a corrupt mirror.
const maxShards = 64

// pushTenant ships the tenant's newest mirrored registry generations to
// target over the wire (warm=true), or asks it to place the tenant cold
// when the mirror has nothing. Shard keys are dense from 0, so the
// probe stops at the first missing shard.
func (rt *Router) pushTenant(tenant string, target *worker) (warm bool, err error) {
	ctl, err := target.control()
	if err != nil {
		return false, err
	}
	pushed := 0
	if rt.reg != nil {
		for si := 0; si < maxShards; si++ {
			key := registry.ShardKey(tenant, si)
			data, gen, ok, ferr := rt.reg.FetchArtifact(key, 0)
			if ferr != nil {
				return false, ferr
			}
			if !ok {
				break
			}
			if perr := ctl.PushArtifact(key, gen, data); perr != nil {
				return false, perr
			}
			pushed++
		}
	}
	if pushed == 0 {
		// Nothing mirrored: cold placement (the worker constructs and
		// pretrains the tenant itself).
		if perr := ctl.PushArtifact(tenant, 0, nil); perr != nil {
			return false, perr
		}
		return false, nil
	}
	return true, nil
}

// mirrorLoop keeps the router's follower registry current: it polls
// each ready placement's owner for new generations (cheap stat frames)
// and replays fresh artifacts through the registry's atomic publish
// path. The mirror is what makes failover warm: when a worker dies, the
// surviving owner is pushed the generations mirrored here.
func (rt *Router) mirrorLoop() {
	defer rt.bg.Done()
	tick := time.NewTicker(rt.cfg.MirrorInterval)
	defer tick.Stop()
	for {
		select {
		case <-rt.quit:
			return
		case <-tick.C:
		}
		rt.mirrorOnce()
	}
}

// mirrorOnce runs one poll cycle over the ready placements.
func (rt *Router) mirrorOnce() {
	type target struct {
		tenant string
		wk     *worker
	}
	rt.pmu.RLock()
	targets := make([]target, 0, len(rt.placements))
	for _, p := range rt.placements {
		if p.state.Load() != placeReady {
			continue
		}
		if wk := p.wk.Load(); wk != nil && wk.live() {
			targets = append(targets, target{p.tenant, wk})
		}
	}
	rt.pmu.RUnlock()
	for _, tg := range targets {
		ctl, err := tg.wk.control()
		if err != nil {
			continue
		}
		for si := 0; si < maxShards; si++ {
			key := registry.ShardKey(tg.tenant, si)
			gen, ok, err := ctl.StatArtifact(key)
			if err != nil || !ok {
				break // dense shard keys: first miss ends the tenant
			}
			if cur, ok := rt.reg.CurrentGeneration(key); ok && gen <= cur {
				continue
			}
			data, actual, ok, err := ctl.FetchArtifact(key, 0)
			if err != nil || !ok {
				continue
			}
			applied, err := rt.reg.ReplayPublish(key, actual, data)
			if err != nil {
				rt.logf("router: mirror replay %s gen %d: %v", key, actual, err)
				continue
			}
			if applied {
				rt.mirrorGens.Add(1)
			}
		}
	}
}
