package router

import (
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/netserve"
	"repro/internal/registry"
)

// TestChaosPartitionFailover partitions the router from the worker that
// owns a tenant, mid-load, and pins the outage contract:
//
//   - every request issued during the partition answers ok or with a
//     typed error (ok + typed == issued — nothing silently dropped);
//   - the tenant rehashes onto the surviving worker and warm-starts from
//     the router's mirrored artifacts (zero oracle runs on the survivor);
//   - after the storm, remap pools balance and goroutines return to
//     baseline.
func TestChaosPartitionFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker stacks under fault injection")
	}
	base := runtime.NumGoroutine()
	dir := t.TempDir()
	w1 := startWorker(t, filepath.Join(dir, "w1"), 1)
	w2 := startWorker(t, filepath.Join(dir, "w2"), 2)
	workers := map[string]*testWorker{w1.addr: w1, w2.addr: w2}

	// Partitionable transport: router→worker dials and live connections
	// to the victim address fail while the partition holds.
	inj := chaos.New(7)
	var parted atomic.Value
	parted.Store("")
	dialer := func(addr string, timeout time.Duration) (net.Conn, error) {
		if parted.Load().(string) == addr {
			return nil, fmt.Errorf("chaos: %s unreachable", addr)
		}
		c, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		return inj.Wrap(c), nil
	}

	mirror, err := registry.Open(registry.Config{Dir: filepath.Join(dir, "mirror")})
	if err != nil {
		t.Fatal(err)
	}
	defer mirror.Close()
	rt, err := New(Config{
		Workers:          []string{w1.addr, w2.addr},
		Registry:         mirror,
		Tenants:          []string{"pot"},
		MirrorInterval:   10 * time.Millisecond,
		ReconnectBackoff: 5 * time.Millisecond,
		Dialer:           dialer,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rt.Serve(ln)
	rc := dialRouter(t, ln.Addr().String())
	defer rc.Close()

	// Steady state first: tenant serving, mirror holding its model — the
	// failover must have an artifact to warm-start from.
	y, std := make([]float64, 1), make([]float64, 1)
	waitServe := func() {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if _, qerr := rc.QueryInto("pot", []float64{0.1, 0.1}, y, std, time.Now().Add(time.Second)); qerr == nil {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("tenant pot never served; router %+v", rt.Stats())
	}
	waitServe()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if g, ok := mirror.CurrentGeneration(registry.ShardKey("pot", 0)); ok && g >= 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if g, ok := mirror.CurrentGeneration(registry.ShardKey("pot", 0)); !ok || g < 1 {
		t.Fatalf("mirror never replayed pot (gen %d ok=%v)", g, ok)
	}

	owner := rt.Placements()["pot"]
	victim, survivor := workers[owner], w1
	if victim == nil {
		t.Fatalf("tenant pot placed at unknown address %q", owner)
	}
	if victim == w1 {
		survivor = w2
	}
	survivorRunsBefore := survivor.oracle.runs.Load()

	// Load through the partition. The client↔router link stays healthy,
	// so every answer is a frame: ok or a typed status.
	var issued, okCount, typedErr atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			yy, ss := make([]float64, 1), make([]float64, 1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				issued.Add(1)
				_, qerr := rc.QueryInto("pot", []float64{0.2, -0.1}, yy, ss, time.Now().Add(300*time.Millisecond))
				switch {
				case qerr == nil:
					okCount.Add(1)
				case errors.Is(qerr, netserve.ErrRetry), errors.Is(qerr, netserve.ErrExpired),
					errors.Is(qerr, netserve.ErrConnLost), errors.Is(qerr, netserve.ErrNoConn),
					errors.Is(qerr, netserve.ErrClientClosed), errors.Is(qerr, netserve.ErrUnknownTenant):
					typedErr.Add(1)
				default:
					var re *netserve.RemoteError
					if errors.As(qerr, &re) {
						typedErr.Add(1)
						continue
					}
					t.Errorf("untyped query error under partition: %v", qerr)
					return
				}
			}
		}()
	}

	time.Sleep(50 * time.Millisecond) // load flowing against the victim
	parted.Store(victim.addr)
	inj.KillAll() // sever live router↔victim connections: the partition is total
	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Failover completed while partitioned: survivor owns the tenant,
	// serving its mirrored generation without one oracle run.
	waitServe()
	if got := rt.Placements()["pot"]; got != survivor.addr {
		t.Fatalf("after partition pot placed at %q, want survivor %q", got, survivor.addr)
	}
	if runs := survivor.oracle.runs.Load() - survivorRunsBefore; runs != 0 {
		t.Errorf("survivor ran the oracle %d times — failover was not a warm start", runs)
	}
	st := rt.Stats()
	if st.WarmStarts == 0 {
		t.Errorf("no warm-start recorded: %+v", st)
	}
	if st.Drops != 0 {
		t.Errorf("%d responses silently dropped", st.Drops)
	}
	if got := okCount.Load() + typedErr.Load(); got != issued.Load() {
		t.Errorf("accounting hole: ok %d + typed %d != issued %d",
			okCount.Load(), typedErr.Load(), issued.Load())
	}
	if okCount.Load() == 0 {
		t.Error("no request succeeded across the partition window")
	}
	t.Logf("issued=%d ok=%d typed=%d router=%+v injector=%+v",
		issued.Load(), okCount.Load(), typedErr.Load(), st, inj.Stats())

	// Heal, then drain: pools and goroutines return to baseline.
	parted.Store("")
	rc.Close()
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if bal := rt.poolBalance(); bal != 0 {
		t.Errorf("remap pool leaked %d entries", bal)
	}
	mirror.Close()
	w1.kill()
	w2.kill()
	waitGoroutines(t, base, 3)
}
