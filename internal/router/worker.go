package router

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/registry"
	"repro/internal/xrand"
)

// WorkerHooks is the worker-process side of the dispatch tier: it plugs
// into netserve.Config as both the ArtifactStore (serving the router's
// mirror fetches straight from the local registry's mmap) and the
// ArtifactSink (accepting placement pushes). A pushed artifact replays
// through the registry's atomic publish path and installs into the
// live wrapper, so a tenant moved here by a failover serves its last
// learned generation with zero retraining; a cold push constructs and
// pretrains the tenant from scratch.
type WorkerHooks struct {
	// Fleet is the worker's serving fleet. Required.
	Fleet *fleet.Fleet
	// Registry is the worker's local artifact registry. Required.
	Registry *registry.Registry
	// Make constructs a serving wrapper for a newly placed tenant.
	// Required for placement pushes; a worker without it answers install
	// errors (its tenant set is fixed at boot).
	Make func(tenant string) (*core.ShardedWrapper, error)
	// Pretrain seeds a cold-placed tenant with oracle data before it
	// registers. Nil skips pretraining (the wrapper trains online).
	Pretrain func(tenant string, w *core.ShardedWrapper) error
	// Bind templates each placed tenant's registry binding; Registry is
	// filled in from the field above.
	Bind fleet.RegistryConfig
	// Seed seeds surrogate decode rngs (default fixed).
	Seed uint64
	// Logf observes placements; nil discards.
	Logf func(format string, args ...any)

	mu   sync.Mutex
	have map[string]bool
}

func (h *WorkerHooks) logf(format string, args ...any) {
	if h.Logf != nil {
		h.Logf(format, args...)
	}
}

func (h *WorkerHooks) rng() *xrand.Rand {
	seed := h.Seed
	if seed == 0 {
		seed = 0x90a7e4
	}
	return xrand.New(seed)
}

// FetchArtifact implements netserve.ArtifactStore against the local
// registry (zero-copy: the returned bytes alias the registry's mmap,
// which the server splices to the socket without copying).
func (h *WorkerHooks) FetchArtifact(key string, gen uint64) ([]byte, uint64, bool, error) {
	return h.Registry.FetchArtifact(key, gen)
}

// StatArtifact implements netserve.ArtifactStore.
func (h *WorkerHooks) StatArtifact(key string) (uint64, bool) {
	return h.Registry.StatArtifact(key)
}

// InstallArtifact implements netserve.ArtifactSink. A nil data is a
// cold placement of the tenant named by key; otherwise key is a shard
// key whose bytes are replayed into the local registry and installed
// into the tenant's live wrapper.
func (h *WorkerHooks) InstallArtifact(key string, gen uint64, data []byte) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.have == nil {
		h.have = make(map[string]bool)
		for _, name := range h.Fleet.Tenants() {
			h.have[name] = true
		}
	}
	if data == nil {
		return h.placeColdLocked(key)
	}
	tenant, si, ok := registry.ParseShardKey(key)
	if !ok {
		return fmt.Errorf("router: artifact key %q is not a shard key", key)
	}
	applied, err := h.Registry.ReplayPublish(key, gen, data)
	if err != nil {
		return fmt.Errorf("router: replay %s gen %d: %w", key, gen, err)
	}
	if !h.have[tenant] {
		// First shard of a warm placement: construct the wrapper and bind
		// it — BindRegistry warm-starts every shard from the generations
		// just replayed (and any earlier push). No pretraining.
		if err := h.placeWarmLocked(tenant); err != nil {
			return err
		}
		return nil
	}
	if !applied {
		return nil // stale generation; the live model is already newer
	}
	// The tenant is already serving here: install the fresh generation
	// directly. WarmStart wins only on a shard with no live training;
	// Reinstall force-publishes over one that has (without re-firing the
	// publish hook — the registry already holds this generation).
	return h.installShardLocked(tenant, si, data)
}

func (h *WorkerHooks) placeColdLocked(tenant string) error {
	if h.have[tenant] {
		return nil // idempotent: a retried push finds the tenant serving
	}
	if h.Make == nil {
		return fmt.Errorf("router: worker cannot place tenant %q (no constructor)", tenant)
	}
	w, err := h.Make(tenant)
	if err != nil {
		return fmt.Errorf("router: make %q: %w", tenant, err)
	}
	// Bind before pretraining so the generations pretraining publishes
	// land in the local registry (the publish hook is part of the bind).
	if _, err := h.bindLocked(tenant, w); err != nil {
		return err
	}
	if h.Pretrain != nil {
		if err := h.Pretrain(tenant, w); err != nil {
			h.Fleet.Deregister(tenant)
			delete(h.have, tenant)
			return fmt.Errorf("router: pretrain %q: %w", tenant, err)
		}
	}
	h.Fleet.SetPlacement(tenant, fleet.Placement{Source: "cold"})
	h.logf("router: worker placed %q cold", tenant)
	return nil
}

func (h *WorkerHooks) placeWarmLocked(tenant string) error {
	if h.Make == nil {
		return fmt.Errorf("router: worker cannot place tenant %q (no constructor)", tenant)
	}
	w, err := h.Make(tenant)
	if err != nil {
		return fmt.Errorf("router: make %q: %w", tenant, err)
	}
	warmed, err := h.bindLocked(tenant, w)
	if err != nil {
		return err
	}
	gen, _ := h.Registry.CurrentGeneration(registry.ShardKey(tenant, 0))
	h.Fleet.SetPlacement(tenant, fleet.Placement{Source: "warm", Generation: gen, WarmShards: warmed})
	h.logf("router: worker placed %q warm (%d shards) from pushed artifacts", tenant, warmed)
	return nil
}

func (h *WorkerHooks) bindLocked(tenant string, w *core.ShardedWrapper) (warmed int, err error) {
	if err := h.Fleet.Register(tenant, w); err != nil {
		return 0, fmt.Errorf("router: register %q: %w", tenant, err)
	}
	cfg := h.Bind
	cfg.Registry = h.Registry
	warmed, err = h.Fleet.BindRegistry(tenant, cfg)
	if err != nil {
		h.Fleet.Deregister(tenant)
		return 0, fmt.Errorf("router: bind %q: %w", tenant, err)
	}
	h.have[tenant] = true
	return warmed, nil
}

// installShardLocked decodes a freshly replayed artifact and installs
// it on the live wrapper's shard.
func (h *WorkerHooks) installShardLocked(tenant string, si int, data []byte) error {
	w, ok := h.wrapper(tenant)
	if !ok {
		return nil // tenant serves a non-sharded backend; registry replay alone suffices
	}
	if si < 0 || si >= w.NumShards() {
		return fmt.Errorf("router: shard %d out of range for tenant %q", si, tenant)
	}
	sur, base, err := core.DecodeNNSurrogate(data, h.rng())
	if err != nil {
		return fmt.Errorf("router: decode pushed artifact for %s/%d: %w", tenant, si, err)
	}
	wantIn, wantOut := w.Dims()
	if in, out := sur.Dims(); in != wantIn || out != wantOut {
		return fmt.Errorf("router: pushed artifact is %d→%d, tenant %q serves %d→%d", in, out, tenant, wantIn, wantOut)
	}
	if !w.WarmStart(si, sur, base) {
		w.Reinstall(si, sur, base)
	}
	return nil
}

// wrapper digs the tenant's sharded wrapper out of the fleet.
func (h *WorkerHooks) wrapper(tenant string) (*core.ShardedWrapper, bool) {
	b, err := h.Fleet.Backend(tenant)
	if err != nil {
		return nil, false
	}
	w, ok := b.(*core.ShardedWrapper)
	return w, ok
}
