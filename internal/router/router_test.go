package router

import (
	"fmt"
	"math"
	"net"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/netserve"
	"repro/internal/registry"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// ---------------------------------------------------------------------------
// harness

// testOracle is a deterministic 2→1 oracle counting Run calls.
type testOracle struct{ runs atomic.Int64 }

func (o *testOracle) Dims() (int, int) { return 2, 1 }
func (o *testOracle) Run(x []float64) ([]float64, error) {
	o.runs.Add(1)
	return []float64{math.Cos(2*x[0]) - 0.3*x[1]}, nil
}

func testDesign(n int, seed uint64) *tensor.Matrix {
	rng := xrand.New(seed)
	m := tensor.NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		m.Set(i, 0, rng.Range(-1, 1))
		m.Set(i, 1, rng.Range(-1, 1))
	}
	return m
}

func testWrapper(oracle core.Oracle, seed uint64) *core.ShardedWrapper {
	fac := core.NewNNSurrogateFactory(2, 1, []int{8}, 0.1, xrand.New(seed), func(s *core.NNSurrogate) {
		s.Epochs = 30
		s.MCPasses = 4
	})
	return core.NewShardedWrapper(oracle, fac, core.ShardedConfig{
		Router:          core.HashRouter{Shards: 1},
		MinTrainSamples: 8,
		UQThreshold:     1e9, // always trust the surrogate once trained
	})
}

// testWorker is one worker process in miniature: fleet + registry +
// netserve server with the router's artifact hooks installed.
type testWorker struct {
	addr   string
	fl     *fleet.Fleet
	reg    *registry.Registry
	srv    *netserve.Server
	ln     net.Listener
	oracle *testOracle
	hooks  *WorkerHooks
}

func startWorker(t *testing.T, dir string, seed uint64) *testWorker {
	t.Helper()
	reg, err := registry.Open(registry.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	w := &testWorker{
		fl:     fleet.New(fleet.Config{}),
		reg:    reg,
		oracle: &testOracle{},
	}
	w.hooks = &WorkerHooks{
		Fleet:    w.fl,
		Registry: reg,
		Seed:     seed,
		Make: func(tenant string) (*core.ShardedWrapper, error) {
			return testWrapper(w.oracle, seed), nil
		},
		Pretrain: func(tenant string, sw *core.ShardedWrapper) error {
			return sw.Pretrain(testDesign(30, seed))
		},
	}
	w.srv = netserve.NewServer(netserve.Config{
		Fleet:     w.fl,
		Artifacts: w.hooks,
		Install:   w.hooks,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w.ln = ln
	w.addr = ln.Addr().String()
	go w.srv.Serve(ln)
	return w
}

func (w *testWorker) kill() {
	w.srv.Close()
	w.fl.Close()
	w.reg.Close()
}

func dialRouter(t *testing.T, addr string) *netserve.ResilientClient {
	t.Helper()
	rc, err := netserve.DialResilient(addr, netserve.ResilientConfig{
		Conns:            2,
		MaxAttempts:      6,
		RetryBackoff:     2 * time.Millisecond,
		ReconnectBackoff: 5 * time.Millisecond,
		Breaker:          netserve.BreakerConfig{Disable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rc
}

func waitGoroutines(t *testing.T, base, slack int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+slack {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d, baseline %d (+%d slack)", runtime.NumGoroutine(), base, slack)
}

// ---------------------------------------------------------------------------
// ring

func TestRingPlacement(t *testing.T) {
	mk := func(addrs ...string) []*worker {
		ws := make([]*worker, len(addrs))
		for i, a := range addrs {
			ws[i] = &worker{addr: a}
			ws[i].alive.Store(true)
		}
		return ws
	}
	ws := mk("a:1", "b:1", "c:1")
	r1 := buildRing(ws, 64)
	r2 := buildRing(ws, 64)
	moved, total := 0, 500
	// Determinism + bounded movement when one worker dies.
	dead := buildRing(ws[:2], 64)
	for i := 0; i < total; i++ {
		tn := []byte(fmt.Sprintf("tenant-%d", i))
		w1, w2 := r1.owner(tn), r2.owner(tn)
		if w1 != w2 {
			t.Fatalf("ring not deterministic for %s", tn)
		}
		if dw := dead.owner(tn); dw != w1 {
			if w1 != ws[2] {
				moved++ // a tenant not on the dead worker moved anyway
			}
		} else if w1 == ws[2] {
			t.Fatalf("tenant %s still owned by dead worker", tn)
		}
	}
	if moved > 0 {
		t.Errorf("%d/%d tenants not on the dead worker moved on its death", moved, total)
	}
	// Rough balance: each live worker owns a nontrivial share.
	counts := map[*worker]int{}
	for i := 0; i < total; i++ {
		counts[r1.owner([]byte(fmt.Sprintf("tenant-%d", i)))]++
	}
	for _, wk := range ws {
		if counts[wk] < total/10 {
			t.Errorf("worker %s owns %d/%d tenants — ring badly imbalanced", wk.addr, counts[wk], total)
		}
	}
	if empty := buildRing(nil, 64); empty.owner([]byte("x")) != nil {
		t.Error("empty ring returned an owner")
	}
}

// ---------------------------------------------------------------------------
// end-to-end routing

// Two workers behind a router: provisioned tenants place (cold,
// pretraining on their owner), queries route through and answer from
// surrogates, and unknown tenants pass through as typed errors.
func TestRoutedQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker stacks")
	}
	base := runtime.NumGoroutine()
	dir := t.TempDir()
	w1 := startWorker(t, filepath.Join(dir, "w1"), 1)
	w2 := startWorker(t, filepath.Join(dir, "w2"), 2)

	mirror, err := registry.Open(registry.Config{Dir: filepath.Join(dir, "mirror")})
	if err != nil {
		t.Fatal(err)
	}
	tenants := []string{"alpha", "beta", "gamma", "delta"}
	rt, err := New(Config{
		Workers:        []string{w1.addr, w2.addr},
		Registry:       mirror,
		Tenants:        tenants,
		MirrorInterval: 20 * time.Millisecond,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rt.Serve(ln)
	rc := dialRouter(t, ln.Addr().String())

	y, std := make([]float64, 1), make([]float64, 1)
	for _, tn := range tenants {
		var res netserve.WireResult
		var qerr error
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			res, qerr = rc.QueryInto(tn, []float64{0.3, -0.2}, y, std, time.Now().Add(time.Second))
			if qerr == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if qerr != nil {
			t.Fatalf("tenant %s never served: %v (router %+v)", tn, qerr, rt.Stats())
		}
		if res.Src != core.FromSurrogate {
			t.Errorf("tenant %s served from src %d, want surrogate", tn, res.Src)
		}
		want := math.Cos(2*0.3) - 0.3*-0.2
		if math.Abs(y[0]-want) > 0.5 {
			t.Errorf("tenant %s answer %.3f, oracle truth %.3f — not a trained model", tn, y[0], want)
		}
	}

	// Placement is consistent and covers both workers' address space.
	pl := rt.Placements()
	for _, tn := range tenants {
		if pl[tn] != w1.addr && pl[tn] != w2.addr {
			t.Errorf("tenant %s placed at %q", tn, pl[tn])
		}
	}

	// An unprovisioned tenant routes through and comes back typed.
	if _, qerr := rc.QueryInto("ghost", []float64{0, 0}, y, std, time.Now().Add(time.Second)); qerr == nil {
		t.Error("unknown tenant served")
	}

	// Mirror caught up with the workers' pretrain generations.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		n := 0
		for _, tn := range tenants {
			if g, ok := mirror.CurrentGeneration(registry.ShardKey(tn, 0)); ok && g >= 1 {
				n++
			}
		}
		if n == len(tenants) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, tn := range tenants {
		if g, ok := mirror.CurrentGeneration(registry.ShardKey(tn, 0)); !ok || g < 1 {
			t.Errorf("mirror never replayed %s (gen %d ok=%v)", tn, g, ok)
		}
	}

	rc.Close()
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if bal := rt.poolBalance(); bal != 0 {
		t.Errorf("remap pool leaked %d entries", bal)
	}
	mirror.Close()
	w1.kill()
	w2.kill()
	waitGoroutines(t, base, 3)
}

// Killing the worker that owns a tenant rehashes it onto the survivor,
// which warm-starts from the router's mirrored artifacts: the tenant
// serves again from a surrogate with zero oracle runs on the survivor.
func TestFailoverWarmStart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker stacks")
	}
	dir := t.TempDir()
	w1 := startWorker(t, filepath.Join(dir, "w1"), 1)
	w2 := startWorker(t, filepath.Join(dir, "w2"), 2)
	workers := map[string]*testWorker{w1.addr: w1, w2.addr: w2}

	mirror, err := registry.Open(registry.Config{Dir: filepath.Join(dir, "mirror")})
	if err != nil {
		t.Fatal(err)
	}
	defer mirror.Close()
	rt, err := New(Config{
		Workers:        []string{w1.addr, w2.addr},
		Registry:       mirror,
		Tenants:        []string{"pot"},
		MirrorInterval: 10 * time.Millisecond,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rt.Serve(ln)
	rc := dialRouter(t, ln.Addr().String())
	defer rc.Close()

	// Wait for the tenant to serve and the mirror to hold its model.
	y, std := make([]float64, 1), make([]float64, 1)
	waitServe := func() {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if _, qerr := rc.QueryInto("pot", []float64{0.1, 0.1}, y, std, time.Now().Add(time.Second)); qerr == nil {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("tenant pot never served; router %+v", rt.Stats())
	}
	waitServe()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if g, ok := mirror.CurrentGeneration(registry.ShardKey("pot", 0)); ok && g >= 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if g, ok := mirror.CurrentGeneration(registry.ShardKey("pot", 0)); !ok || g < 1 {
		t.Fatalf("mirror never replayed pot (gen %d ok=%v)", g, ok)
	}

	owner := rt.Placements()["pot"]
	victim, survivor := workers[owner], w1
	if victim == nil {
		t.Fatalf("tenant pot placed at unknown address %q", owner)
	}
	if victim == w1 {
		survivor = w2
	}
	survivorRunsBefore := survivor.oracle.runs.Load()

	victim.kill()
	waitServe() // rehash + warm-started failover

	if got := rt.Placements()["pot"]; got != survivor.addr {
		t.Fatalf("after failover pot placed at %q, want survivor %q", got, survivor.addr)
	}
	res, qerr := rc.QueryInto("pot", []float64{0.3, -0.2}, y, std, time.Now().Add(time.Second))
	if qerr != nil {
		t.Fatal(qerr)
	}
	if res.Src != core.FromSurrogate {
		t.Errorf("failed-over tenant served from src %d, want surrogate", res.Src)
	}
	if runs := survivor.oracle.runs.Load() - survivorRunsBefore; runs != 0 {
		t.Errorf("survivor ran the oracle %d times — failover was not a warm start", runs)
	}
	st := rt.Stats()
	if st.WarmStarts == 0 {
		t.Errorf("no warm-start recorded: %+v", st)
	}
	fst, err := survivor.fl.TenantStats("pot")
	if err != nil {
		t.Fatal(err)
	}
	if fst.PlacementSource != "warm" || fst.PlacementWarmShards == 0 {
		t.Errorf("survivor placement metadata %q/%d shards, want warm/≥1",
			fst.PlacementSource, fst.PlacementWarmShards)
	}
	survivor.kill()
}
