package router

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netserve"
)

// worker is one backend process: a hot data-plane connection frames are
// spliced onto, and a resilient control-plane client pool for artifact
// stat/fetch/push. The hot connection is intentionally NOT resilient —
// when it dies, the router must fail its in-flight requests with Retry
// frames and rehash, not transparently redial: callers hold the
// never-silently-dropped contract against the router, and a placement
// may no longer belong here after the outage.
type worker struct {
	rt   *Router
	addr string
	idx  int

	alive atomic.Bool
	hot   atomic.Pointer[backendConn]

	ctlMu sync.Mutex
	ctl   *netserve.ResilientClient

	repairing atomic.Bool
	inflight  atomic.Int64 // in-flight across hot-connection generations
	closed    atomic.Bool
}

func (wk *worker) live() bool { return wk.alive.Load() }

// control returns the worker's control-plane client, dialing it
// lazily. Artifact frames need the raised MaxFrame.
func (wk *worker) control() (*netserve.ResilientClient, error) {
	wk.ctlMu.Lock()
	defer wk.ctlMu.Unlock()
	if wk.ctl != nil {
		return wk.ctl, nil
	}
	cfg := wk.rt.cfg.Control
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	if cfg.Client.MaxFrame < netserve.DefaultMaxArtifactFrame {
		cfg.Client.MaxFrame = netserve.DefaultMaxArtifactFrame
	}
	if cfg.Client.Dialer == nil && wk.rt.cfg.Dialer != nil {
		dial := wk.rt.cfg.Dialer
		cfg.Client.Dialer = func(addr string, timeout time.Duration) (net.Conn, error) {
			return dial(addr, timeout)
		}
	}
	rc, err := netserve.DialResilient(wk.addr, cfg)
	if err != nil {
		return nil, err
	}
	wk.ctl = rc
	return rc, nil
}

// connect dials the hot connection and marks the worker live. Called at
// start and from the repair loop.
func (wk *worker) connect() error {
	rt := wk.rt
	dial := rt.cfg.Dialer
	var (
		c   net.Conn
		err error
	)
	if dial != nil {
		c, err = dial(wk.addr, rt.cfg.DialTimeout)
	} else {
		c, err = net.DialTimeout("tcp", wk.addr, rt.cfg.DialTimeout)
	}
	if err != nil {
		return err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	bc := newBackendConn(wk, c)
	wk.hot.Store(bc)
	wk.alive.Store(true)
	rt.bg.Add(1)
	go bc.readLoop()
	if rt.cfg.StallTimeout > 0 {
		rt.bg.Add(1)
		go bc.stallWatch()
	}
	return nil
}

// spawnRepair starts (at most one) background redial loop for the
// worker. On success the worker rejoins the ring.
func (wk *worker) spawnRepair() {
	if wk.closed.Load() || !wk.repairing.CompareAndSwap(false, true) {
		return
	}
	rt := wk.rt
	rt.bg.Add(1)
	go func() {
		defer rt.bg.Done()
		defer wk.repairing.Store(false)
		backoff := rt.cfg.ReconnectBackoff
		for {
			select {
			case <-rt.quit:
				return
			case <-time.After(backoff):
			}
			if wk.closed.Load() {
				return
			}
			if err := wk.connect(); err == nil {
				rt.logf("router: worker %s reconnected", wk.addr)
				rt.pmu.Lock()
				rt.rebalanceLocked()
				rt.pmu.Unlock()
				return
			}
			backoff *= 2
			if backoff > rt.cfg.ReconnectBackoffMax {
				backoff = rt.cfg.ReconnectBackoffMax
			}
		}
	}()
}

// close shuts the worker down for good (router Close).
func (wk *worker) close() {
	wk.closed.Store(true)
	wk.alive.Store(false)
	if bc := wk.hot.Load(); bc != nil {
		bc.teardown(nil)
	}
	wk.ctlMu.Lock()
	if wk.ctl != nil {
		wk.ctl.Close()
		wk.ctl = nil
	}
	wk.ctlMu.Unlock()
}

// rentry maps one spliced frame's rewritten id back to its origin: the
// caller's original id and connection. Entries are pooled per backend
// connection on a freelist — the hot path never allocates one.
type rentry struct {
	orig uint64
	cc   *clientConn
}

// backendConn is one generation of a worker's hot connection. Its write
// side is locked by frontend readers for the duration of a same-worker
// run (splice + splice + … + flush under one lock hold); its read side
// is a single demux goroutine patching ids back and fanning responses
// out to caller connections.
type backendConn struct {
	wk *worker
	c  net.Conn

	wmu      sync.Mutex
	bw       *bufio.Writer
	werr     error
	nextID   uint64
	pendingW bool

	rmu   sync.Mutex
	remap map[uint64]*rentry
	free  []*rentry
	dead  bool

	tearing  atomic.Bool
	lastRead atomic.Int64 // unix nanos of the last response byte
}

func newBackendConn(wk *worker, c net.Conn) *backendConn {
	bc := &backendConn{
		wk:    wk,
		c:     c,
		bw:    bufio.NewWriterSize(c, wk.rt.cfg.WriteBuffer),
		remap: make(map[uint64]*rentry, 256),
	}
	bc.lastRead.Store(time.Now().UnixNano())
	return bc
}

// spliceLocked patches one validated query frame's id and writes it
// onto the backend connection. Caller holds bc.wmu. False means the
// connection is dead (sticky write error or torn down) — the caller
// answers Retry itself.
func (bc *backendConn) spliceLocked(cc *clientConn, origID uint64, frame []byte) bool {
	if bc.werr != nil {
		return false
	}
	bc.rmu.Lock()
	if bc.dead {
		bc.rmu.Unlock()
		return false
	}
	var e *rentry
	if n := len(bc.free); n > 0 {
		e = bc.free[n-1]
		bc.free = bc.free[:n-1]
	} else {
		e = &rentry{}
	}
	e.orig, e.cc = origID, cc
	bc.nextID++
	id := bc.nextID
	bc.remap[id] = e
	bc.rmu.Unlock()
	bc.wk.rt.remapLeases.Add(1)

	netserve.SetRawQueryID(frame, id)
	// Arm the write deadline only when this frame will spill the buffer
	// to the socket — the common buffered append costs no syscall.
	if bc.bw.Available() < len(frame) && bc.wk.rt.cfg.WriteTimeout > 0 {
		bc.c.SetWriteDeadline(time.Now().Add(bc.wk.rt.cfg.WriteTimeout))
	}
	if _, err := bc.bw.Write(frame); err != nil {
		bc.werr = err
		// The remap entry was already published; teardown fails it with a
		// Retry like the rest of the in-flight set.
		go bc.teardown(err)
		return false
	}
	bc.pendingW = true
	cc.inflight.Add(1)
	bc.wk.inflight.Add(1)
	return true
}

// flushLocked pushes the gathered run to the worker. Caller holds wmu.
func (bc *backendConn) flushLocked() {
	if bc.werr != nil || !bc.pendingW {
		return
	}
	if bc.wk.rt.cfg.WriteTimeout > 0 {
		bc.c.SetWriteDeadline(time.Now().Add(bc.wk.rt.cfg.WriteTimeout))
	}
	if err := bc.bw.Flush(); err != nil {
		bc.werr = err
		go bc.teardown(err)
		return
	}
	bc.pendingW = false
}

// takeRemap claims the remap entry for a worker response id. The entry
// is recycled onto the freelist; its fields are returned by value.
func (bc *backendConn) takeRemap(id uint64) (orig uint64, cc *clientConn, ok bool) {
	bc.rmu.Lock()
	e := bc.remap[id]
	if e == nil {
		bc.rmu.Unlock()
		return 0, nil, false
	}
	delete(bc.remap, id)
	orig, cc = e.orig, e.cc
	e.cc = nil
	bc.free = append(bc.free, e)
	bc.rmu.Unlock()
	bc.wk.rt.remapReleases.Add(1)
	return orig, cc, true
}

// readLoop demuxes worker responses: restore the caller's id in place,
// splice the frame to the caller's connection, and batch-flush the set
// of callers touched since the last blocking read.
func (bc *backendConn) readLoop() {
	rt := bc.wk.rt
	defer rt.bg.Done()
	br := bufio.NewReaderSize(bc.c, rt.cfg.ReadBuffer)
	buf := make([]byte, 0, 4096)
	var touched []*clientConn
	for {
		if !netserve.RawFrameBuffered(br, rt.cfg.MaxFrame) {
			// About to block: deliver the batch.
			for _, cc := range touched {
				cc.flush()
			}
			touched = touched[:0]
		}
		var err error
		buf, err = netserve.ReadRawFrame(br, buf, rt.cfg.MaxFrame)
		if err != nil {
			for _, cc := range touched {
				cc.flush()
			}
			bc.teardown(err)
			return
		}
		bc.lastRead.Store(time.Now().UnixNano())
		id, ok := netserve.RawResponseID(buf)
		if !ok {
			bc.teardown(netserve.ErrRawFrame)
			return
		}
		orig, cc, ok := bc.takeRemap(id)
		if !ok {
			// A response for an id we no longer track — the remap was
			// drained by a teardown race. Nothing is owed; count it.
			rt.unexpectedFrames.Add(1)
			continue
		}
		netserve.SetRawResponseID(buf, orig)
		if cc.writeRaw(buf) {
			seen := false
			for _, t := range touched {
				if t == cc {
					seen = true
					break
				}
			}
			if !seen {
				touched = append(touched, cc)
			}
		} else {
			rt.drops.Add(1)
		}
		cc.inflight.Add(-1)
		bc.wk.inflight.Add(-1)
	}
}

// stallWatch condemns the connection when it holds in-flight requests
// but has delivered no bytes for StallTimeout — the router-side analog
// of the resilient client's expire-streak blackhole detection.
func (bc *backendConn) stallWatch() {
	rt := bc.wk.rt
	defer rt.bg.Done()
	tick := time.NewTicker(rt.cfg.StallTimeout / 4)
	defer tick.Stop()
	for {
		select {
		case <-rt.quit:
			return
		case <-tick.C:
		}
		if bc.tearing.Load() {
			return
		}
		bc.rmu.Lock()
		inflight := len(bc.remap)
		bc.rmu.Unlock()
		if inflight == 0 {
			continue
		}
		idle := time.Duration(time.Now().UnixNano() - bc.lastRead.Load())
		if idle >= rt.cfg.StallTimeout {
			rt.logf("router: worker %s stalled %v with %d in flight; condemning", bc.wk.addr, idle, inflight)
			bc.teardown(errStalled)
			return
		}
	}
}

var errStalled = &net.OpError{Op: "read", Err: errStallTimeout{}}

type errStallTimeout struct{}

func (errStallTimeout) Error() string { return "router: backend stall timeout" }
func (errStallTimeout) Timeout() bool { return true }

// teardown retires the connection: mark the worker down, fail every
// in-flight request with an explicit Retry frame to its caller (never a
// silent drop), rehash the placements, and start the repair loop.
func (bc *backendConn) teardown(cause error) {
	if !bc.tearing.CompareAndSwap(false, true) {
		return
	}
	wk := bc.wk
	rt := wk.rt
	wk.hot.CompareAndSwap(bc, nil)
	wk.alive.Store(false)
	bc.c.Close()
	if cause != nil {
		rt.logf("router: worker %s connection lost: %v", wk.addr, cause)
	}

	bc.rmu.Lock()
	bc.dead = true
	entries := make([]*rentry, 0, len(bc.remap))
	for id, e := range bc.remap {
		entries = append(entries, e)
		delete(bc.remap, id)
	}
	bc.rmu.Unlock()
	for _, e := range entries {
		cc := e.cc
		e.cc = nil
		rt.remapReleases.Add(1)
		cc.writeStatus(e.orig, netserve.StatusRetry)
		cc.flush()
		rt.retries.Add(1)
		cc.inflight.Add(-1)
		wk.inflight.Add(-1)
	}

	if !wk.closed.Load() {
		rt.pmu.Lock()
		rt.rebalanceLocked()
		rt.pmu.Unlock()
		wk.spawnRepair()
	}
}
