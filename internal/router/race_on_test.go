//go:build race

package router

// raceEnabled reports whether the race detector is active; the runtime
// deliberately drops sync.Pool puts under race, so allocation-count
// assertions are skipped.
const raceEnabled = true
