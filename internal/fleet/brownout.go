package fleet

// This file implements the fleet-level brownout controller: graceful
// degradation as the third leg of overload defense, after admission
// shedding (ErrOverloaded) and deadline shedding (expired-at-admission).
// Shedding throws queries away; a brownout keeps answering every query
// and pays for it with fidelity instead — stepping an overloaded
// tenant's backend down the core.Brownout* ladder (prefer the int8
// quantized program → cap MC-dropout passes → single-pass UQ-off) and
// back up once the tenant holds healthy. Every transition is counted in
// TenantStats, so an operator watching /statsz sees exactly when and how
// far a tenant's answers were degraded.

import (
	"time"

	"repro/internal/core"
)

// BrownoutConfig tunes the fleet's brownout controller. The controller
// is enabled by setting at least one SLO signal (P99SLO or MaxShedRate);
// it evaluates every tenant each Interval and acts only on backends that
// expose SetBrownoutLevel/BrownoutLevel (core.Wrapper and
// core.ShardedWrapper do); other backends are left alone.
type BrownoutConfig struct {
	// P99SLO is the tenant latency objective: a measured p99 (over the
	// tenant's recent-latency ring) above it is a breach. 0 disables the
	// latency signal.
	P99SLO time.Duration
	// MaxShedRate is the tolerated fraction of admission-shed queries
	// per evaluation interval, in (0, 1): rejected/(completed+rejected)
	// above it is a breach. 0 disables the shed signal.
	MaxShedRate float64
	// Interval is the evaluation cadence (default 250ms).
	Interval time.Duration
	// StepDownAfter / StepUpAfter are how many consecutive breaching /
	// healthy intervals trigger one ladder transition (defaults 2 and 8:
	// quick to give up fidelity under pressure, deliberately slow to
	// spend it again — recovery oscillation is worse than a few extra
	// intervals of cheap answers).
	StepDownAfter, StepUpAfter int
	// MinSamples is the fewest admission attempts in an interval for the
	// shed-rate signal to count (default 16), so an idle tenant's
	// occasional rejection cannot brown it out.
	MinSamples int
	// MaxLevel caps how far down the ladder the controller steps
	// (default core.BrownoutNoUQ, the bottom).
	MaxLevel int
}

func (c BrownoutConfig) enabled() bool { return c.P99SLO > 0 || c.MaxShedRate > 0 }

func (c *BrownoutConfig) fill() {
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.StepDownAfter <= 0 {
		c.StepDownAfter = 2
	}
	if c.StepUpAfter <= 0 {
		c.StepUpAfter = 8
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 16
	}
	if c.MaxLevel <= 0 || c.MaxLevel > core.BrownoutNoUQ {
		c.MaxLevel = core.BrownoutNoUQ
	}
}

// degradable is the backend face the controller drives. It is matched
// structurally so any backend — not just the core wrappers — can opt in.
type degradable interface {
	SetBrownoutLevel(level int)
	BrownoutLevel() int
}

// brownoutWindow is the controller's per-tenant delta state between
// evaluations.
type brownoutWindow struct {
	lastQ, lastR    int64
	breach, healthy int
}

// brownoutLoop is the controller goroutine: started by New when the
// config enables a signal, stopped by Close.
func (f *Fleet) brownoutLoop() {
	defer close(f.bdone)
	cfg := f.cfg.Brownout
	cfg.fill()
	tick := time.NewTicker(cfg.Interval)
	defer tick.Stop()
	wins := make(map[*tenant]*brownoutWindow)
	for {
		select {
		case <-f.bstop:
			return
		case <-tick.C:
		}
		f.mu.RLock()
		ts := make([]*tenant, 0, len(f.tenants))
		for _, t := range f.tenants {
			ts = append(ts, t)
		}
		f.mu.RUnlock()
		live := make(map[*tenant]bool, len(ts))
		for _, t := range ts {
			live[t] = true
			d, ok := t.backend.(degradable)
			if !ok {
				continue
			}
			w := wins[t]
			if w == nil {
				// First sighting: record the baseline and start evaluating
				// next interval — the since-registration totals are not an
				// interval's worth of signal.
				wins[t] = &brownoutWindow{lastQ: t.queries.Load(), lastR: t.rejected.Load()}
				continue
			}
			q, r := t.queries.Load(), t.rejected.Load()
			dq, dr := q-w.lastQ, r-w.lastR
			w.lastQ, w.lastR = q, r
			breach := false
			if cfg.MaxShedRate > 0 && dq+dr >= int64(cfg.MinSamples) {
				if float64(dr)/float64(dq+dr) > cfg.MaxShedRate {
					breach = true
				}
			}
			if cfg.P99SLO > 0 && dq > 0 {
				if _, p99 := t.latPercentiles(); p99 > cfg.P99SLO {
					breach = true
				}
			}
			if breach {
				w.breach++
				w.healthy = 0
			} else {
				w.healthy++
				w.breach = 0
			}
			lvl := int(t.brownout.Load())
			switch {
			case w.breach >= cfg.StepDownAfter && lvl < cfg.MaxLevel:
				t.setBrownout(d, lvl+1)
				w.breach = 0
			case w.healthy >= cfg.StepUpAfter && lvl > 0:
				t.setBrownout(d, lvl-1)
				w.healthy = 0
			}
		}
		for t := range wins {
			if !live[t] {
				delete(wins, t)
			}
		}
	}
}

// setBrownout moves the tenant's backend to level and counts the
// transition's direction.
func (t *tenant) setBrownout(d degradable, level int) {
	old := int(t.brownout.Swap(int32(level)))
	d.SetBrownoutLevel(level)
	if level > old {
		t.bdowns.Add(1)
	} else if level < old {
		t.bups.Add(1)
	}
}
