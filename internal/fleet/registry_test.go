package fleet

import (
	"math"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// regOracle is a deterministic 2→1 oracle counting Run calls.
type regOracle struct{ runs atomic.Int64 }

func (o *regOracle) Dims() (int, int) { return 2, 1 }
func (o *regOracle) Run(x []float64) ([]float64, error) {
	o.runs.Add(1)
	return []float64{math.Cos(2*x[0]) - 0.3*x[1]}, nil
}

func regDesign(n int, seed uint64) *tensor.Matrix {
	rng := xrand.New(seed)
	m := tensor.NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		m.Set(i, 0, rng.Range(-1, 1))
		m.Set(i, 1, rng.Range(-1, 1))
	}
	return m
}

func regWrapper(oracle core.Oracle, seed uint64, driftFactor float64) *core.ShardedWrapper {
	fac := core.NewNNSurrogateFactory(2, 1, []int{8}, 0.1, xrand.New(seed), func(s *core.NNSurrogate) {
		s.Epochs = 40
		s.MCPasses = 4
	})
	return core.NewShardedWrapper(oracle, fac, core.ShardedConfig{
		Router:          core.HashRouter{Shards: 1},
		MinTrainSamples: 8,
		UQThreshold:     1e9,
		DriftFactor:     driftFactor,
		DriftAlpha:      1, // residual jumps feed straight through: deterministic trip
	})
}

// A bound tenant publishes every generation, surfaces registry counters
// in TenantStats, and a second fleet warm-starts the tenant from disk
// with zero oracle traffic.
func TestBindRegistryPublishAndWarmStart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "reg")
	reg, err := registry.Open(registry.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	f := New(Config{})
	defer f.Close()
	oracle := &regOracle{}
	w := regWrapper(oracle, 1, 0)
	if err := f.Register("pot", w); err != nil {
		t.Fatal(err)
	}
	warmed, err := f.BindRegistry("pot", RegistryConfig{Registry: reg, OnError: func(err error) { t.Error(err) }})
	if err != nil {
		t.Fatal(err)
	}
	if warmed != 0 {
		t.Fatalf("warmed %d shards from an empty registry", warmed)
	}
	if _, err := f.BindRegistry("pot", RegistryConfig{Registry: reg}); err == nil {
		t.Fatal("double bind accepted")
	}
	if err := w.Pretrain(regDesign(30, 3)); err != nil {
		t.Fatal(err)
	}
	st, err := f.TenantStats("pot")
	if err != nil {
		t.Fatal(err)
	}
	if st.RegistryGeneration != 1 || st.RegistryPublishes != 1 {
		t.Fatalf("stats gen=%d pubs=%d, want 1/1", st.RegistryGeneration, st.RegistryPublishes)
	}

	// Second process: fresh fleet + wrapper, same registry dir.
	reg2, err := registry.Open(registry.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	f2 := New(Config{})
	defer f2.Close()
	oracle2 := &regOracle{}
	w2 := regWrapper(oracle2, 2, 0)
	if err := f2.Register("pot", w2); err != nil {
		t.Fatal(err)
	}
	warmed, err = f2.BindRegistry("pot", RegistryConfig{Registry: reg2, OnError: func(err error) { t.Error(err) }})
	if err != nil {
		t.Fatal(err)
	}
	if warmed != 1 {
		t.Fatalf("warmed %d shards, want 1", warmed)
	}
	for i := 0; i < 10; i++ {
		res, err := f2.Query("pot", []float64{-0.4 + 0.08*float64(i), 0.2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Src != core.FromSurrogate {
			t.Fatalf("query %d served from %v", i, res.Src)
		}
	}
	if n := oracle2.runs.Load(); n != 0 {
		t.Fatalf("warm-started tenant ran the oracle %d times", n)
	}
}

// The drift watch rolls a regressed generation back to its predecessor:
// after fresh data the published model no longer explains trips the
// drift ratio past RollbackFactor, the binding reinstalls the previous
// registry generation and the rollback shows up in TenantStats.
func TestBindRegistryDriftAutoRollback(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "reg")
	reg, err := registry.Open(registry.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	f := New(Config{})
	defer f.Close()
	oracle := &regOracle{}
	w := regWrapper(oracle, 5, 2)
	if err := f.Register("epi", w); err != nil {
		t.Fatal(err)
	}
	if _, err := f.BindRegistry("epi", RegistryConfig{
		Registry:       reg,
		RollbackFactor: 3,
		Interval:       5 * time.Millisecond,
		OnError:        func(err error) { t.Error(err) },
	}); err != nil {
		t.Fatal(err)
	}
	// Two generations on disk so the rollback has a predecessor.
	if err := w.Pretrain(regDesign(30, 9)); err != nil {
		t.Fatal(err)
	}
	if err := w.TrainAll(); err != nil {
		t.Fatal(err)
	}
	st, _ := f.TenantStats("epi")
	if st.RegistryGeneration != 2 || st.RegistryPublishes != 2 {
		t.Fatalf("stats gen=%d pubs=%d, want 2/2", st.RegistryGeneration, st.RegistryPublishes)
	}

	// Fresh data the published model is badly wrong about: residuals jump
	// orders of magnitude past the in-sample baseline.
	xs := regDesign(16, 31)
	ys := tensor.NewMatrix(16, 1)
	for i := 0; i < 16; i++ {
		ys.Set(i, 0, 100)
	}
	if err := w.Ingest(xs, ys); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		st, _ = f.TenantStats("epi")
		if st.RegistryRollbacks >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drift watch never rolled back: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.RegistryGeneration != 1 {
		t.Fatalf("registry generation %d after rollback, want 1", st.RegistryGeneration)
	}
	shard := w.Status()[0]
	if shard.Drifted {
		t.Fatal("shard still drifted after reinstall")
	}
	// The reinstalled predecessor serves.
	if res, err := f.Query("epi", []float64{0.1, -0.3}); err != nil || res.Src != core.FromSurrogate {
		t.Fatalf("post-rollback query: src=%v err=%v", res.Src, err)
	}
}
