// Package fleet implements the multi-tenant serving front-end: one
// dispatch plane for every surrogate in the process. The paper's
// "learning everywhere" thesis puts an ML surrogate at every layer of an
// HPC workload — potentials, tissue stencils, epidemic calibrators — and
// each of those models wants the same serving machinery: micro-batch
// coalescing, UQ-gated fallback, background refits. A Fleet serves many
// named tenants (each a serve.Backend) behind per-tenant coalescers that
// share one recycled batch pool, with a single lifecycle
// (Register/Deregister/Close with graceful per-tenant drain), per-tenant
// admission control (a bounded in-flight count, so one hot model's
// traffic spike cannot starve the rest), fault containment (a panicking
// tenant backend surfaces as that tenant's error, never a process crash)
// and per-tenant serving stats (QPS, mean batch width, latency
// percentiles, refit staleness).
//
// The steady-state query path — tenant lookup, admission, coalesced
// dispatch through the backend's QueryBatchInto, latency recording — is
// allocation-free via QueryInto, so consolidating N per-workload
// pipelines into one fleet costs nothing per query over fronting a
// single model.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

// Fleet lifecycle and admission errors.
var (
	// ErrClosed is returned by Register and the query paths after Close.
	ErrClosed = errors.New("fleet: closed")
	// ErrUnknownTenant is returned when no tenant has the given name —
	// including tenants deregistered while the query was in flight.
	ErrUnknownTenant = errors.New("fleet: unknown tenant")
	// ErrDuplicateTenant is returned by Register for a name already served.
	ErrDuplicateTenant = errors.New("fleet: tenant already registered")
	// ErrOverloaded is returned when a tenant's bounded in-flight
	// admission window is full; the caller should back off (the bound is
	// what keeps one hot tenant from monopolizing the process). The
	// concrete error is an *OverloadedError naming the shedding tenant;
	// match with errors.Is(err, ErrOverloaded).
	ErrOverloaded = errors.New("fleet: tenant over its in-flight bound")
)

// OverloadedError is the concrete admission-shed error: it names the
// tenant whose in-flight window was full, so a multi-tenant front-end
// (the wire layer) can report which tenant shed without string parsing.
// It matches the ErrOverloaded sentinel through errors.Is, keeping every
// pre-existing errors.Is(err, ErrOverloaded) check working.
type OverloadedError struct {
	Tenant string
}

func (e *OverloadedError) Error() string {
	return "fleet: tenant " + strconv.Quote(e.Tenant) + " over its in-flight bound"
}

// Is reports sentinel equivalence with ErrOverloaded.
func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// Config tunes a Fleet. The zero value selects the defaults.
type Config struct {
	// Coalescer is the per-tenant coalescer configuration (zero value =
	// serve defaults). Its Pool field is ignored: every tenant draws from
	// the fleet's shared batch pool.
	Coalescer serve.Config
	// MaxInFlight bounds each tenant's concurrently admitted queries
	// (default 4× the coalescer MaxBatch). Queries beyond the bound fail
	// fast with ErrOverloaded instead of queueing without limit.
	MaxInFlight int
	// LatencyWindow is how many recent per-query latencies each tenant
	// retains for the percentile stats (default 1024, rounded up to a
	// power of two).
	LatencyWindow int
	// Brownout, when enabled (a positive P99SLO or MaxShedRate), starts
	// the fleet-level brownout controller: a background loop that steps
	// overloaded tenants' backends down a degradation ladder and back up
	// on recovery. See BrownoutConfig.
	Brownout BrownoutConfig
}

func (c *Config) fill() {
	if c.MaxInFlight <= 0 {
		mb := c.Coalescer.MaxBatch
		if mb <= 0 {
			mb = 64
		}
		c.MaxInFlight = 4 * mb
	}
	if c.LatencyWindow <= 0 {
		c.LatencyWindow = 1024
	}
	w := 1
	for w < c.LatencyWindow {
		w <<= 1
	}
	c.LatencyWindow = w
}

// tenant is one registered backend: its coalescer plus admission and
// stats state. All counters are atomics so the query path takes no
// tenant lock.
type tenant struct {
	name    string
	backend serve.Backend
	co      *serve.Coalescer
	limit   int64
	// overErr is the tenant's preallocated admission-shed error, so the
	// shed path (which a saturated caller hits in a hot retry loop) stays
	// allocation-free.
	overErr *OverloadedError

	inflight atomic.Int64
	rejected atomic.Int64
	expired  atomic.Int64
	queries  atomic.Int64
	panics   atomic.Int64

	// Brownout controller state: the current ladder level plus step-down
	// / step-up transition counts (all zero when the backend does not
	// degrade or the controller is off).
	brownout atomic.Int32
	bdowns   atomic.Int64
	bups     atomic.Int64

	// binding is the tenant's live registry attachment (nil when
	// unbound); see BindRegistry.
	binding atomic.Pointer[registryBinding]

	// placement is how the tenant landed on this process (nil until a
	// dispatch tier records one); see SetPlacement.
	placement atomic.Pointer[Placement]

	// lats is a power-of-two ring of recent query latencies (ns),
	// written with atomic stores so Stats can read concurrently.
	lats   []int64
	latPos atomic.Uint64

	// QPS sampling window (Stats-call to Stats-call).
	statsMu sync.Mutex
	lastAt  time.Time
	lastQ   int64
}

// observe folds one completed query into the tenant's stats. The
// latency store lands before the query-count increment (and is clamped
// to ≥1ns) so a percentile reader sizing its sample by the counter and
// skipping zero slots never mistakes an unwritten slot for a datum.
func (t *tenant) observe(d time.Duration) {
	if d <= 0 {
		d = 1
	}
	i := (t.latPos.Add(1) - 1) & uint64(len(t.lats)-1)
	atomic.StoreInt64(&t.lats[i], int64(d))
	t.queries.Add(1)
}

// observeN counts n completed queries against one shared latency sample —
// the burst path's accounting: per-row clock reads would cost more than
// the dispatch they measure, and a burst's rows genuinely share their
// batch's latency.
func (t *tenant) observeN(d time.Duration, n int64) {
	if d <= 0 {
		d = 1
	}
	i := (t.latPos.Add(1) - 1) & uint64(len(t.lats)-1)
	atomic.StoreInt64(&t.lats[i], int64(d))
	t.queries.Add(n)
}

// Fleet is the multi-tenant serving registry. All methods are safe for
// concurrent use; Query/QueryInto are safe to call concurrently with
// Register, Deregister and Close (a query racing a Deregister of its own
// tenant completes or fails with ErrUnknownTenant — never hangs).
type Fleet struct {
	cfg  Config
	pool *serve.BatchPool

	mu      sync.RWMutex
	tenants map[string]*tenant
	closed  bool

	// Brownout controller lifecycle (nil when disabled).
	bstop chan struct{}
	bdone chan struct{}
}

// New builds an empty fleet.
func New(cfg Config) *Fleet {
	cfg.fill()
	f := &Fleet{
		cfg:     cfg,
		pool:    serve.NewBatchPool(),
		tenants: make(map[string]*tenant),
	}
	if cfg.Brownout.enabled() {
		f.bstop = make(chan struct{})
		f.bdone = make(chan struct{})
		go f.brownoutLoop()
	}
	return f
}

// Register adds a named tenant served by backend behind a fresh coalescer
// drawing on the fleet's shared batch pool, with the fleet's default
// coalescer configuration.
func (f *Fleet) Register(name string, backend serve.Backend) error {
	return f.RegisterWithConfig(name, backend, f.cfg.Coalescer)
}

// Backend returns the named tenant's registered backend — the hook a
// dispatch-tier worker uses to install pushed artifacts into the live
// wrapper.
func (f *Fleet) Backend(name string) (serve.Backend, error) {
	t := f.lookup(name)
	if t == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	return t.backend, nil
}

// Placement records how a tenant landed on this process: provisioned at
// boot, placed cold by a dispatch tier, or warm-started from artifacts
// pushed over the wire.
type Placement struct {
	// Source is the placement origin: "boot", "cold", "warm" — or any
	// label the placing tier chooses.
	Source string
	// Generation is the newest registry generation installed at
	// placement time (zero for cold placements).
	Generation uint64
	// WarmShards counts shards that warm-started from an artifact.
	WarmShards int
	// At is the placement instant.
	At time.Time
}

// SetPlacement records the tenant's placement metadata, surfaced
// through TenantStats (and from there /statsz).
func (f *Fleet) SetPlacement(name string, p Placement) error {
	t := f.lookup(name)
	if t == nil {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	if p.At.IsZero() {
		p.At = time.Now()
	}
	t.placement.Store(&p)
	return nil
}

// RegisterWithConfig is Register with a per-tenant coalescer
// configuration (a latency-sensitive tenant can run a smaller MaxBatch
// than its batch-hungry neighbours). The configuration's Pool field is
// overridden with the fleet's shared pool.
func (f *Fleet) RegisterWithConfig(name string, backend serve.Backend, cfg serve.Config) error {
	if backend == nil {
		return errors.New("fleet: nil backend")
	}
	cfg.Pool = f.pool
	t := &tenant{
		name:    name,
		backend: backend,
		co:      serve.NewCoalescer(backend, cfg),
		limit:   int64(f.cfg.MaxInFlight),
		overErr: &OverloadedError{Tenant: name},
		lats:    make([]int64, f.cfg.LatencyWindow),
		lastAt:  time.Now(),
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if _, dup := f.tenants[name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateTenant, name)
	}
	f.tenants[name] = t
	return nil
}

// Deregister removes a tenant and drains it gracefully: queries already
// admitted (including those mid-gather in its coalescer) are served to
// completion before Deregister returns; concurrent queries that lose the
// race fail with ErrUnknownTenant. The backend itself is not touched —
// it belongs to the caller.
func (f *Fleet) Deregister(name string) error {
	f.mu.Lock()
	t := f.tenants[name]
	if t == nil {
		closed := f.closed
		f.mu.Unlock()
		if closed {
			return ErrClosed
		}
		return fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	delete(f.tenants, name)
	f.mu.Unlock()
	err := t.co.Close()
	if b := t.binding.Swap(nil); b != nil {
		b.close()
	}
	return err
}

// Close deregisters every tenant, draining each coalescer, and marks the
// fleet closed: subsequent Register and query calls fail. Idempotent.
func (f *Fleet) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	ts := make([]*tenant, 0, len(f.tenants))
	for _, t := range f.tenants {
		ts = append(ts, t)
	}
	f.tenants = make(map[string]*tenant)
	f.mu.Unlock()
	if f.bstop != nil {
		close(f.bstop)
		<-f.bdone
	}
	for _, t := range ts {
		t.co.Close()
		if b := t.binding.Swap(nil); b != nil {
			b.close()
		}
	}
	return nil
}

// Tenants returns the sorted names of the registered tenants.
func (f *Fleet) Tenants() []string {
	f.mu.RLock()
	names := make([]string, 0, len(f.tenants))
	for name := range f.tenants {
		names = append(names, name)
	}
	f.mu.RUnlock()
	sort.Strings(names)
	return names
}

// lookup resolves a tenant name; nil means unknown (or closed).
func (f *Fleet) lookup(name string) *tenant {
	f.mu.RLock()
	t := f.tenants[name]
	f.mu.RUnlock()
	return t
}

// Query submits one input point to the named tenant and blocks until its
// micro-batch has been served. The returned Y/Std slices are
// caller-owned. A panicking tenant backend is contained: the panic
// surfaces as this tenant's error, not a process crash.
func (f *Fleet) Query(name string, x []float64) (serve.Result, error) {
	return f.query(nil, name, x, nil, nil)
}

// QueryInto is the allocation-free form of Query: the answer is copied
// into y (and, for surrogate answers, std), which must each hold the
// tenant's output dimensionality. A steady-state caller reusing its
// buffers performs zero heap allocations per query.
func (f *Fleet) QueryInto(name string, x, y, std []float64) (serve.Result, error) {
	return f.query(nil, name, x, y, std)
}

// QueryCtx is QueryInto with deadline/cancellation propagation into
// admission: a request whose context is already expired (or cancelled) is
// shed immediately — before it is admitted or enqueued into the tenant's
// coalescer — returning the context's error. This is the shed path a wire
// front-end relies on: a frame that spent its deadline in a kernel buffer
// must never occupy a coalescer slot just to produce an answer nobody is
// waiting for. A nil ctx behaves exactly like QueryInto. The ctx is only
// sampled at admission; an expiry mid-gather does not abandon the query
// (its micro-batch is already paid for).
func (f *Fleet) QueryCtx(ctx context.Context, name string, x, y, std []float64) (serve.Result, error) {
	return f.query(ctx, name, x, y, std)
}

// query is the shared dispatch path: tenant lookup, deadline check,
// admission, coalesced dispatch, stats. nil y selects caller-owned result
// copies.
func (f *Fleet) query(ctx context.Context, name string, x, y, std []float64) (res serve.Result, err error) {
	t := f.lookup(name)
	if t == nil {
		f.mu.RLock()
		closed := f.closed
		f.mu.RUnlock()
		if closed {
			return serve.Result{}, ErrClosed
		}
		return serve.Result{}, ErrUnknownTenant
	}
	// Deadline shed: an already-expired (or cancelled) request never
	// reaches the coalescer — it is refused here, before admission, so
	// the batch gather is never diluted by answers nobody will read.
	if ctx != nil {
		if cerr := ctx.Err(); cerr != nil {
			t.expired.Add(1)
			return serve.Result{}, cerr
		}
	}
	// Admission: a bounded in-flight window per tenant. One hot tenant
	// saturating its window sheds load fast instead of parking an
	// unbounded caller pile-up on the shared machinery.
	if t.inflight.Add(1) > t.limit {
		t.inflight.Add(-1)
		t.rejected.Add(1)
		return serve.Result{}, t.overErr
	}
	t0 := time.Now()
	defer func() {
		if pv := recover(); pv != nil {
			// Tenant fault containment: the coalescer re-throws a backend
			// panic in exactly the affected batch's callers; the fleet
			// converts it to this tenant's error so one broken model
			// cannot take down its neighbours' callers.
			t.panics.Add(1)
			res = serve.Result{}
			err = fmt.Errorf("fleet: tenant %q backend panicked: %v", t.name, pv)
		}
		t.observe(time.Since(t0))
		t.inflight.Add(-1)
	}()
	if y == nil {
		res, err = t.co.Query(x)
	} else {
		res, err = t.co.QueryInto(x, y, std)
	}
	if errors.Is(err, serve.ErrClosed) {
		// The tenant's coalescer closed under this query: either the
		// whole fleet shut down (ErrClosed) or just this tenant was
		// deregistered — in which case, from the caller's view, the
		// tenant no longer exists.
		f.mu.RLock()
		closed := f.closed
		f.mu.RUnlock()
		if closed {
			err = ErrClosed
		} else {
			err = ErrUnknownTenant
		}
	}
	return res, err
}

// QueryRows is the burst dispatch path: a contiguous run of rows for one
// tenant — a wire read that drained several frames, a worker with a
// backlog — submitted with a single tenant lookup, a single admission
// round and one coalescer waiter instead of per-row machinery. deadlines
// carries each row's absolute unix-nano deadline (0 = none); rows already
// expired at admission are shed individually through the callback with
// context.DeadlineExceeded, rows beyond the tenant's in-flight window are
// shed with the tenant's *OverloadedError, and the survivors are enqueued
// together. The callback runs once per row, in row order; its Result
// slices alias pooled batch storage and are valid only inside the call. A
// backend panic is contained exactly like Query: undelivered rows receive
// the tenant's panic error.
func (f *Fleet) QueryRows(name string, rows [][]float64, deadlines []int64, each func(i int, res serve.Result, err error)) error {
	n := len(rows)
	if n == 0 {
		return nil
	}
	if deadlines != nil && len(deadlines) != n {
		return fmt.Errorf("fleet: %d deadlines for %d rows", len(deadlines), n)
	}
	t := f.lookup(name)
	if t == nil {
		f.mu.RLock()
		closed := f.closed
		f.mu.RUnlock()
		if closed {
			return ErrClosed
		}
		return ErrUnknownTenant
	}
	// Deadline shed — one clock read for the whole burst.
	live := rows
	if deadlines != nil {
		now := time.Now().UnixNano()
		expired := 0
		for _, dl := range deadlines {
			if dl != 0 && dl <= now {
				expired++
			}
		}
		if expired > 0 {
			t.expired.Add(int64(expired))
			live = make([][]float64, 0, n-expired)
			// Shed expired rows via the callback, keep the rest in order.
			kept := make([]int, 0, n-expired)
			for i, dl := range deadlines {
				if dl != 0 && dl <= now {
					each(i, serve.Result{}, context.DeadlineExceeded)
					continue
				}
				live = append(live, rows[i])
				kept = append(kept, i)
			}
			if len(live) == 0 {
				return nil
			}
			inner := each
			each = func(i int, res serve.Result, err error) { inner(kept[i], res, err) }
		}
	}
	// Admission: the burst claims as many in-flight slots as it has live
	// rows; overflow rows shed individually from the tail.
	admit := int64(len(live))
	if got := t.inflight.Add(admit); got > t.limit {
		over := got - t.limit
		if over > admit {
			over = admit
		}
		t.inflight.Add(-over)
		t.rejected.Add(over)
		keep := int(admit - over)
		for i := keep; i < len(live); i++ {
			each(i, serve.Result{}, t.overErr)
		}
		if keep == 0 {
			return nil
		}
		live = live[:keep]
		admit = int64(keep)
	}
	t0 := time.Now()
	delivered := 0
	err := func() (err error) {
		defer func() {
			if pv := recover(); pv != nil {
				t.panics.Add(1)
				perr := fmt.Errorf("fleet: tenant %q backend panicked: %v", t.name, pv)
				for i := delivered; i < len(live); i++ {
					each(i, serve.Result{}, perr)
				}
			}
			t.observeN(time.Since(t0), admit)
			t.inflight.Add(-admit)
		}()
		return t.co.QueryRows(live, func(i int, res serve.Result, err error) {
			delivered = i + 1
			each(i, res, err)
		})
	}()
	if errors.Is(err, serve.ErrClosed) {
		f.mu.RLock()
		closed := f.closed
		f.mu.RUnlock()
		if closed {
			return ErrClosed
		}
		return ErrUnknownTenant
	}
	return err
}

// TenantStats is one tenant's serving snapshot.
type TenantStats struct {
	// Queries is the number of completed queries (admitted and served,
	// successfully or not) since registration.
	Queries int64
	// Rejected counts queries shed by the in-flight admission bound.
	Rejected int64
	// Expired counts queries shed at admission because their QueryCtx
	// deadline had already passed (or their context was cancelled).
	Expired int64
	// Panics counts contained backend panics.
	Panics int64
	// InFlight is the instantaneous admitted-query count.
	InFlight int64
	// QPS is the query completion rate measured over the interval since
	// the previous Stats/TenantStats call for this tenant.
	QPS float64
	// Batches and MeanBatch report the tenant's coalescing effectiveness.
	Batches   int64
	MeanBatch float64
	// P50 and P99 are latency percentiles over the tenant's recent
	// latency window (zero until the first query completes).
	P50, P99 time.Duration
	// Staleness is the total count of training samples no published model
	// has absorbed, summed across the backend's shards, for backends that
	// report per-shard status (core.ShardedWrapper); -1 otherwise.
	Staleness int
	// DriftedShards counts the backend's shards whose ingested-residual
	// EWMA has tripped the drift threshold (they owe a refit), and
	// MaxDriftRatio is the worst shard's residual-over-baseline ratio —
	// the signals a health endpoint surfaces so an orchestrator can see a
	// tenant sliding before its accuracy does. Both stay zero for
	// backends without per-shard status.
	DriftedShards int
	MaxDriftRatio float64
	// QuantQueries counts lookups the backend served through int8
	// quantized programs, and QuantFallbacks the subset re-run on the
	// retained float program because the UQ decision sat inside the
	// quantization error band (or the input clipped the int8 envelope).
	// Both stay zero for backends without quantized serving.
	QuantQueries, QuantFallbacks uint64
	// BrownoutLevel is the tenant's current degradation ladder level (0 =
	// full fidelity; see core.Brownout* for the ladder), and
	// BrownoutDowns / BrownoutUps count the controller's step-down /
	// step-up transitions since registration. All zero while the brownout
	// controller is disabled or the backend cannot degrade.
	BrownoutLevel              int
	BrownoutDowns, BrownoutUps int64
	// RegistryGeneration is the newest artifact generation committed
	// across the tenant's registry shard keys, and RegistryPublishes /
	// RegistryRollbacks / RegistryQuarantines the registry's durability
	// counters summed over them. All zero while the tenant is not bound
	// to a registry (see BindRegistry).
	RegistryGeneration  uint64
	RegistryPublishes   int64
	RegistryRollbacks   int64
	RegistryQuarantines int64
	// PlacementSource / PlacementGeneration / PlacementWarmShards echo
	// the tenant's recorded Placement — how a dispatch tier landed it on
	// this process (empty/zero until SetPlacement).
	PlacementSource     string
	PlacementGeneration uint64
	PlacementWarmShards int
}

// statuser is the optional backend face that exposes per-shard refit
// staleness (core.ShardedWrapper implements it).
type statuser interface {
	Status() []core.ShardStatus
}

// quantStatser is the optional backend face that exposes quantized-serving
// counters (core.Wrapper and core.ShardedWrapper implement it).
type quantStatser interface {
	QuantStats() (queries, fallbacks uint64)
}

// snapshot assembles the tenant's stats.
func (t *tenant) snapshot() TenantStats {
	cs := t.co.Stats()
	st := TenantStats{
		Queries:   t.queries.Load(),
		Rejected:  t.rejected.Load(),
		Expired:   t.expired.Load(),
		Panics:    t.panics.Load(),
		InFlight:  t.inflight.Load(),
		Batches:   cs.Batches,
		MeanBatch: cs.MeanBatch(),
		Staleness: -1,
	}
	if s, ok := t.backend.(statuser); ok {
		st.Staleness = 0
		for _, sh := range s.Status() {
			st.Staleness += sh.Stale
			if sh.Drifted {
				st.DriftedShards++
			}
			if sh.DriftRatio > st.MaxDriftRatio {
				st.MaxDriftRatio = sh.DriftRatio
			}
		}
	}
	if q, ok := t.backend.(quantStatser); ok {
		st.QuantQueries, st.QuantFallbacks = q.QuantStats()
	}
	st.BrownoutLevel = int(t.brownout.Load())
	st.BrownoutDowns = t.bdowns.Load()
	st.BrownoutUps = t.bups.Load()
	if b := t.binding.Load(); b != nil {
		gen, rs := b.stats()
		st.RegistryGeneration = gen
		st.RegistryPublishes = rs.Publishes
		st.RegistryRollbacks = rs.Rollbacks
		st.RegistryQuarantines = rs.Quarantines
	}
	if p := t.placement.Load(); p != nil {
		st.PlacementSource = p.Source
		st.PlacementGeneration = p.Generation
		st.PlacementWarmShards = p.WarmShards
	}
	// QPS over the window since the previous snapshot.
	t.statsMu.Lock()
	now := time.Now()
	if dt := now.Sub(t.lastAt).Seconds(); dt > 0 {
		st.QPS = float64(st.Queries-t.lastQ) / dt
	}
	t.lastAt, t.lastQ = now, st.Queries
	t.statsMu.Unlock()
	st.P50, st.P99 = t.latPercentiles()
	return st
}

// latPercentiles reads the tenant's latency ring and returns its p50/p99
// (zero until the first query completes). Slots still zero — claimed by
// an in-flight observe whose store hasn't landed, or never written — are
// skipped rather than read as 0ns latencies (observe clamps real
// durations to ≥1ns). Unlike snapshot, this mutates no sampling state,
// so the brownout controller can poll it without corrupting the
// user-visible QPS window.
func (t *tenant) latPercentiles() (p50, p99 time.Duration) {
	n := int64(len(t.lats))
	if q := t.queries.Load(); q < n {
		n = q
	}
	if n <= 0 {
		return 0, 0
	}
	lats := make([]int64, 0, n)
	for i := int64(0); i < n; i++ {
		if v := atomic.LoadInt64(&t.lats[i]); v > 0 {
			lats = append(lats, v)
		}
	}
	if len(lats) == 0 {
		return 0, 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return time.Duration(lats[len(lats)/2]), time.Duration(lats[len(lats)*99/100])
}

// TenantStats returns one tenant's serving snapshot.
func (f *Fleet) TenantStats(name string) (TenantStats, error) {
	t := f.lookup(name)
	if t == nil {
		return TenantStats{}, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	return t.snapshot(), nil
}

// Stats returns every tenant's serving snapshot, keyed by name.
func (f *Fleet) Stats() map[string]TenantStats {
	f.mu.RLock()
	ts := make([]*tenant, 0, len(f.tenants))
	for _, t := range f.tenants {
		ts = append(ts, t)
	}
	f.mu.RUnlock()
	out := make(map[string]TenantStats, len(ts))
	for _, t := range ts {
		out[t.name] = t.snapshot()
	}
	return out
}
