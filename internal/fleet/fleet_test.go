package fleet

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/raceflag"
	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// fakeBackend is a deterministic serve.Backend: y = scale*x0 + 2*x1,
// with optional panic trigger, fixed delay and a block channel to hold
// batches in flight. Its QueryBatchInto reuses row capacities, so warmed
// dispatches are allocation-free.
type fakeBackend struct {
	scale   float64
	delay   time.Duration
	panicAt float64
	block   chan struct{}
	blockOn atomic.Bool
	batches atomic.Int64
}

func (f *fakeBackend) Dims() (int, int) { return 2, 1 }

func (f *fakeBackend) QueryBatch(xs *tensor.Matrix) ([]core.BatchResult, error) {
	res := make([]core.BatchResult, xs.Rows)
	return res, f.QueryBatchInto(xs, res)
}

func (f *fakeBackend) QueryBatchInto(xs *tensor.Matrix, res []core.BatchResult) error {
	f.batches.Add(1)
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	if f.blockOn.Load() {
		<-f.block
	}
	for i := 0; i < xs.Rows; i++ {
		row := xs.Row(i)
		if f.panicAt != 0 && row[0] == f.panicAt {
			panic("tenant model exploded")
		}
		res[i].Y = append(res[i].Y[:0], f.scale*row[0]+2*row[1])
		res[i].Std = append(res[i].Std[:0], 0.01)
		res[i].Src = core.FromSurrogate
		res[i].Err = nil
	}
	return nil
}

// TestFleetRoutesTenants checks queries land on the named tenant's
// backend and lifecycle basics hold.
func TestFleetRoutesTenants(t *testing.T) {
	f := New(Config{})
	defer f.Close()
	if err := f.Register("pot", &fakeBackend{scale: 1}); err != nil {
		t.Fatal(err)
	}
	if err := f.Register("epi", &fakeBackend{scale: -3}); err != nil {
		t.Fatal(err)
	}
	if err := f.Register("pot", &fakeBackend{scale: 9}); !errors.Is(err, ErrDuplicateTenant) {
		t.Fatalf("duplicate Register returned %v, want ErrDuplicateTenant", err)
	}
	if got := f.Tenants(); len(got) != 2 || got[0] != "epi" || got[1] != "pot" {
		t.Fatalf("Tenants() = %v, want [epi pot]", got)
	}
	x := []float64{0.5, 0.25}
	r, err := f.Query("pot", x)
	if err != nil || math.Abs(r.Y[0]-1.0) > 1e-15 {
		t.Fatalf("pot answered (%v, %v), want 1.0", r.Y, err)
	}
	r, err = f.Query("epi", x)
	if err != nil || math.Abs(r.Y[0]-(-1.0)) > 1e-15 {
		t.Fatalf("epi answered (%v, %v), want -1.0", r.Y, err)
	}
	if _, err := f.Query("ghost", x); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant returned %v, want ErrUnknownTenant", err)
	}
	st, err := f.TenantStats("pot")
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries != 1 || st.Batches != 1 || st.Staleness != -1 {
		t.Fatalf("pot stats = %+v, want 1 query, 1 batch, staleness -1", st)
	}
}

// TestFleetAdmissionBound checks the bounded in-flight window sheds load
// with ErrOverloaded while admitted queries still complete.
func TestFleetAdmissionBound(t *testing.T) {
	fb := &fakeBackend{scale: 1, block: make(chan struct{})}
	fb.blockOn.Store(true)
	f := New(Config{MaxInFlight: 2})
	defer f.Close()
	if err := f.Register("hot", fb); err != nil {
		t.Fatal(err)
	}

	results := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(i int) {
			_, err := f.Query("hot", []float64{float64(i), 0})
			results <- err
		}(g)
	}
	// Wait until the window is saturated and the overflow has been shed.
	deadline := time.After(10 * time.Second)
	var shed, admitted int
	for shed+admitted < 6 {
		select {
		case err := <-results:
			if errors.Is(err, ErrOverloaded) {
				shed++
			} else {
				t.Fatalf("pre-unblock completion: %v", err)
			}
		case <-deadline:
			t.Fatalf("admission never shed load: shed=%d", shed)
		}
	}
	fb.blockOn.Store(false)
	close(fb.block)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("admitted query failed: %v", err)
		}
		admitted++
	}
	st, _ := f.TenantStats("hot")
	if st.Rejected != int64(shed) || shed == 0 {
		t.Fatalf("stats counted %d rejections, want %d > 0", st.Rejected, shed)
	}
}

// TestFleetPanicIsolation checks one tenant's panicking backend surfaces
// as that tenant's error while its neighbours (and the tenant itself, on
// healthy inputs) keep serving.
func TestFleetPanicIsolation(t *testing.T) {
	f := New(Config{})
	defer f.Close()
	if err := f.Register("bad", &fakeBackend{scale: 1, panicAt: 9}); err != nil {
		t.Fatal(err)
	}
	if err := f.Register("good", &fakeBackend{scale: 2}); err != nil {
		t.Fatal(err)
	}
	_, err := f.Query("bad", []float64{9, 0})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("poisoned query returned %v, want contained panic error", err)
	}
	for i := 0; i < 10; i++ {
		if _, err := f.Query("good", []float64{1, 1}); err != nil {
			t.Fatalf("neighbour tenant failed after panic: %v", err)
		}
		if _, err := f.Query("bad", []float64{1, 1}); err != nil {
			t.Fatalf("panicking tenant failed on healthy input: %v", err)
		}
	}
	st, _ := f.TenantStats("bad")
	if st.Panics != 1 {
		t.Fatalf("stats counted %d panics, want 1", st.Panics)
	}
}

// TestFleetStallIsolation checks a stalled tenant backend holds only its
// own callers: the other tenants' queries flow freely meanwhile.
func TestFleetStallIsolation(t *testing.T) {
	stuck := &fakeBackend{scale: 1, block: make(chan struct{})}
	stuck.blockOn.Store(true)
	f := New(Config{})
	defer f.Close()
	if err := f.Register("stuck", stuck); err != nil {
		t.Fatal(err)
	}
	if err := f.Register("live", &fakeBackend{scale: 2}); err != nil {
		t.Fatal(err)
	}
	stuckDone := make(chan error, 1)
	go func() {
		_, err := f.Query("stuck", []float64{1, 1})
		stuckDone <- err
	}()
	for stuck.batches.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 200; i++ {
		if _, err := f.Query("live", []float64{1, 1}); err != nil {
			t.Fatalf("live tenant blocked behind stuck tenant: %v", err)
		}
	}
	stuck.blockOn.Store(false)
	close(stuck.block)
	if err := <-stuckDone; err != nil {
		t.Fatalf("stalled query failed after unblock: %v", err)
	}
}

// TestFleetConcurrentDeregisterQuery is the close-path race test: client
// goroutines hammer three tenants while one tenant is concurrently
// deregistered, re-registered and finally the whole fleet is closed (run
// with -race). Queries must only ever succeed or fail with a lifecycle
// error — never hang, corrupt a result, or observe a foreign tenant's
// answer.
func TestFleetConcurrentDeregisterQuery(t *testing.T) {
	f := New(Config{})
	scales := map[string]float64{"a": 1, "b": -1, "c": 3}
	for name, s := range scales {
		if err := f.Register(name, &fakeBackend{scale: s, delay: 5 * time.Microsecond}); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := xrand.New(seed)
			names := []string{"a", "b", "c"}
			for {
				select {
				case <-stop:
					return
				default:
				}
				name := names[rng.Intn(len(names))]
				x := []float64{rng.Range(-1, 1), rng.Range(-1, 1)}
				r, err := f.Query(name, x)
				switch {
				case err == nil:
					want := scales[name]*x[0] + 2*x[1]
					if math.Abs(r.Y[0]-want) > 1e-15 {
						t.Errorf("tenant %s: got %g want %g (cross-tenant corruption?)", name, r.Y[0], want)
						return
					}
				case errors.Is(err, ErrUnknownTenant) || errors.Is(err, ErrClosed):
					// Lost a race against Deregister/Close: acceptable.
				default:
					t.Errorf("tenant %s: unexpected error %v", name, err)
					return
				}
			}
		}(uint64(0xf1ee7 + g))
	}
	// Churn tenant "b" while the clients run.
	for i := 0; i < 20; i++ {
		if err := f.Deregister("b"); err != nil {
			t.Errorf("deregister: %v", err)
		}
		time.Sleep(time.Millisecond)
		if err := f.Register("b", &fakeBackend{scale: -1, delay: 5 * time.Microsecond}); err != nil {
			t.Errorf("re-register: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	f.Close()
	close(stop)
	wg.Wait()
	if err := f.Register("late", &fakeBackend{scale: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close Register returned %v, want ErrClosed", err)
	}
	if _, err := f.Query("a", []float64{0, 0}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close Query returned %v, want ErrClosed", err)
	}
}

// TestFleetQueryIntoZeroAlloc pins the acceptance bar for the fleet
// dispatch plane: the steady-state per-tenant query path — lookup,
// admission, coalesced QueryBatchInto dispatch, latency recording —
// performs zero heap allocations.
func TestFleetQueryIntoZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("sync.Pool drops Puts under -race; alloc counts are meaningless")
	}
	f := New(Config{})
	defer f.Close()
	if err := f.Register("t0", &fakeBackend{scale: 1}); err != nil {
		t.Fatal(err)
	}
	if err := f.Register("t1", &fakeBackend{scale: 2}); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.25, 0.5}
	y := make([]float64, 1)
	std := make([]float64, 1)
	for i := 0; i < 256; i++ { // warm pools, EWMA and row capacities
		if _, err := f.QueryInto("t0", x, y, std); err != nil {
			t.Fatal(err)
		}
		if _, err := f.QueryInto("t1", x, y, std); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(512, func() {
		if _, err := f.QueryInto("t0", x, y, std); err != nil {
			t.Fatal(err)
		}
		if _, err := f.QueryInto("t1", x, y, std); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state fleet QueryInto allocates %.2f per 2 queries, want 0", allocs)
	}
}

// stalenessBackend wraps fakeBackend with a canned per-shard status.
type stalenessBackend struct {
	fakeBackend
	stale []core.ShardStatus
}

func (s *stalenessBackend) Status() []core.ShardStatus { return s.stale }

// TestFleetStats checks the derived stats: QPS over the sampling window,
// mean batch width, latency percentiles and summed shard staleness.
func TestFleetStats(t *testing.T) {
	sb := &stalenessBackend{
		fakeBackend: fakeBackend{scale: 1},
		stale: []core.ShardStatus{
			{Samples: 100, Stale: 7}, {Samples: 50, Stale: 5},
		},
	}
	f := New(Config{LatencyWindow: 100}) // rounds up to 128
	defer f.Close()
	if err := f.Register("s", sb); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := f.Query("s", []float64{1, 1}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := f.TenantStats("s")
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries != 50 {
		t.Fatalf("counted %d queries, want 50", st.Queries)
	}
	if st.QPS <= 0 {
		t.Fatalf("QPS = %g, want > 0 over the first sampling window", st.QPS)
	}
	if st.MeanBatch <= 0 {
		t.Fatalf("mean batch %g, want > 0", st.MeanBatch)
	}
	if st.P50 <= 0 || st.P99 < st.P50 {
		t.Fatalf("percentiles p50=%v p99=%v, want 0 < p50 <= p99", st.P50, st.P99)
	}
	if st.Staleness != 12 {
		t.Fatalf("staleness %d, want 12 (7+5 across shards)", st.Staleness)
	}
	all := f.Stats()
	if len(all) != 1 || all["s"].Queries != 50 {
		t.Fatalf("Stats() = %v, want the one tenant with 50 queries", all)
	}
}

// TestFleetAgainstWrapper serves a real UQ-gated core.Wrapper tenant end
// to end through the fleet: coalesced answers must match the backend's
// own predictions.
func TestFleetAgainstWrapper(t *testing.T) {
	rng := xrand.New(0xf1e31)
	oracle := core.OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		return []float64{x[0]*x[0] - x[1]}, nil
	}}
	sur := core.NewNNSurrogate(2, 1, []int{16}, 0, rng)
	sur.Epochs = 40
	sur.MCPasses = 4
	w := core.NewWrapper(oracle, sur, core.WrapperConfig{MinTrainSamples: 10, UQThreshold: 100})
	design := tensor.NewMatrix(40, 2)
	for i := 0; i < design.Rows; i++ {
		design.Set(i, 0, rng.Range(-1, 1))
		design.Set(i, 1, rng.Range(-1, 1))
	}
	if err := w.Pretrain(design); err != nil {
		t.Fatal(err)
	}
	f := New(Config{})
	defer f.Close()
	if err := f.Register("w", w); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			crng := xrand.New(seed)
			for i := 0; i < 50; i++ {
				x := []float64{crng.Range(-1, 1), crng.Range(-1, 1)}
				r, err := f.Query("w", x)
				if err != nil {
					t.Error(err)
					return
				}
				if r.Src != core.FromSurrogate {
					t.Error("fell back to simulation under a wide-open UQ gate")
					return
				}
				want := sur.Predict(x)
				if math.Abs(r.Y[0]-want[0]) > 1e-12 {
					t.Errorf("fleet answer %g differs from direct prediction %g", r.Y[0], want[0])
					return
				}
			}
		}(uint64(7000 + g))
	}
	wg.Wait()
}

// TestFleetQuantStats checks a quantized-serving backend's counters
// surface in the tenant snapshot, and that plain backends report zero.
func TestFleetQuantStats(t *testing.T) {
	rng := xrand.New(0xf1e32)
	oracle := core.OracleFunc{In: 2, Out: 1, F: func(x []float64) ([]float64, error) {
		return []float64{x[0]*x[0] - x[1]}, nil
	}}
	sur := core.NewNNSurrogate(2, 1, []int{16}, 0, rng)
	sur.Epochs = 40
	sur.MCPasses = 4
	w := core.NewWrapper(oracle, sur, core.WrapperConfig{
		MinTrainSamples: 10, UQThreshold: 100, Quantized: true,
	})
	design := tensor.NewMatrix(40, 2)
	for i := 0; i < design.Rows; i++ {
		design.Set(i, 0, rng.Range(-1, 1))
		design.Set(i, 1, rng.Range(-1, 1))
	}
	if err := w.Pretrain(design); err != nil {
		t.Fatal(err)
	}
	f := New(Config{})
	defer f.Close()
	if err := f.Register("q", w); err != nil {
		t.Fatal(err)
	}
	if err := f.Register("plain", &fakeBackend{scale: 1}); err != nil {
		t.Fatal(err)
	}
	const n = 12
	for i := 0; i < n; i++ {
		x := []float64{rng.Range(-1, 1), rng.Range(-1, 1)}
		if _, err := f.Query("q", x); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Query("plain", x); err != nil {
			t.Fatal(err)
		}
	}
	st, err := f.TenantStats("q")
	if err != nil {
		t.Fatal(err)
	}
	if st.QuantQueries != n {
		t.Fatalf("tenant q quant queries = %d, want %d", st.QuantQueries, n)
	}
	if st.QuantFallbacks != 0 {
		t.Fatalf("tenant q quant fallbacks = %d, want 0 under a wide-open gate", st.QuantFallbacks)
	}
	ps, err := f.TenantStats("plain")
	if err != nil {
		t.Fatal(err)
	}
	if ps.QuantQueries != 0 || ps.QuantFallbacks != 0 {
		t.Fatalf("plain tenant reported quant stats (%d, %d), want zeros", ps.QuantQueries, ps.QuantFallbacks)
	}
}

// TestFleetQueryCtxExpiredShedsBeforeBackend pins the deadline-admission
// contract: a request arriving with an already-dead context is shed
// before it is enqueued — the backend never sees it, the Expired counter
// moves, and the error is the context's own.
func TestFleetQueryCtxExpiredShedsBeforeBackend(t *testing.T) {
	bk := &fakeBackend{scale: 3}
	f := New(Config{})
	defer f.Close()
	if err := f.Register("m", bk); err != nil {
		t.Fatal(err)
	}

	y := make([]float64, 1)
	std := make([]float64, 1)

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := f.QueryCtx(ctx, "m", []float64{1, 1}, y, std); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired context returned %v, want DeadlineExceeded", err)
	}
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	if _, err := f.QueryCtx(cctx, "m", []float64{1, 1}, y, std); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled context returned %v, want Canceled", err)
	}
	if n := bk.batches.Load(); n != 0 {
		t.Fatalf("dead-context queries reached the backend (%d batches)", n)
	}
	st, err := f.TenantStats("m")
	if err != nil {
		t.Fatal(err)
	}
	if st.Expired != 2 {
		t.Fatalf("Expired = %d, want 2", st.Expired)
	}
	if st.Queries != 0 {
		t.Fatalf("shed queries counted as served: %d", st.Queries)
	}

	// A live context serves normally through the same path.
	res, err := f.QueryCtx(context.Background(), "m", []float64{1, 1}, y, std)
	if err != nil || math.Abs(res.Y[0]-5) > 1e-12 {
		t.Fatalf("live QueryCtx: %v %v", res.Y, err)
	}
}

// TestFleetOverloadedError pins the typed-shed contract: the admission
// bound rejects with a *OverloadedError naming the tenant, and the value
// stays wrapping-compatible with the ErrOverloaded sentinel.
func TestFleetOverloadedError(t *testing.T) {
	bk := &fakeBackend{scale: 1, block: make(chan struct{})}
	bk.blockOn.Store(true)
	f := New(Config{MaxInFlight: 1, Coalescer: serve.Config{MaxBatch: 1}})
	defer f.Close()
	if err := f.Register("busy", bk); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() { // occupy the single admission slot
		defer close(done)
		f.Query("busy", []float64{1, 1})
	}()
	// Wait until the occupier is admitted so the probe below cannot win
	// the slot itself and block in the backend.
	for start := time.Now(); ; {
		st, err := f.TenantStats("busy")
		if err != nil {
			t.Fatal(err)
		}
		if st.InFlight == 1 {
			break
		}
		if time.Since(start) > 2*time.Second {
			t.Fatal("occupier never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	_, shedErr := f.Query("busy", []float64{1, 1})
	bk.blockOn.Store(false)
	close(bk.block)
	<-done
	if shedErr == nil {
		t.Fatal("probe query was admitted past a full window")
	}

	if !errors.Is(shedErr, ErrOverloaded) {
		t.Fatalf("errors.Is(%v, ErrOverloaded) = false", shedErr)
	}
	var oe *OverloadedError
	if !errors.As(shedErr, &oe) {
		t.Fatalf("errors.As(%v, *OverloadedError) = false", shedErr)
	}
	if oe.Tenant != "busy" {
		t.Fatalf("OverloadedError.Tenant = %q", oe.Tenant)
	}
	if !strings.Contains(oe.Error(), `"busy"`) {
		t.Fatalf("error text %q does not name the tenant", oe.Error())
	}
}

// driftStubBackend exposes a canned shard status, standing in for a
// ShardedWrapper with drifted shards.
type driftStubBackend struct {
	fakeBackend
	status []core.ShardStatus
}

func (d *driftStubBackend) Status() []core.ShardStatus { return d.status }

// TestFleetDriftStats pins the stats plumbing: TenantStats aggregates
// Drifted/DriftRatio from the backend's shard status so the serving plane
// can expose drift without touching core.
func TestFleetDriftStats(t *testing.T) {
	bk := &driftStubBackend{
		fakeBackend: fakeBackend{scale: 1},
		status: []core.ShardStatus{
			{Stale: 1, Drifted: false, DriftRatio: 0.4},
			{Stale: 2, Drifted: true, DriftRatio: 3.5},
			{Stale: 0, Drifted: true, DriftRatio: 2.1},
		},
	}
	f := New(Config{})
	defer f.Close()
	if err := f.Register("m", bk); err != nil {
		t.Fatal(err)
	}
	st, err := f.TenantStats("m")
	if err != nil {
		t.Fatal(err)
	}
	if st.DriftedShards != 2 {
		t.Fatalf("DriftedShards = %d, want 2", st.DriftedShards)
	}
	if st.MaxDriftRatio != 3.5 {
		t.Fatalf("MaxDriftRatio = %v, want 3.5", st.MaxDriftRatio)
	}
	if st.Staleness != 3 {
		t.Fatalf("Staleness = %d, want 3", st.Staleness)
	}
}
