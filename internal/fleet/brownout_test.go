package fleet

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/tensor"
)

// degradableBackend is a serve.Backend that also implements the
// degradable face: slow while at level 0, fast once browned out — the
// shape of a backend whose ladder rungs genuinely cost less.
type degradableBackend struct {
	level atomic.Int32
}

func (b *degradableBackend) Dims() (int, int) { return 2, 1 }

func (b *degradableBackend) SetBrownoutLevel(level int) { b.level.Store(int32(level)) }

func (b *degradableBackend) BrownoutLevel() int { return int(b.level.Load()) }

func (b *degradableBackend) QueryBatch(xs *tensor.Matrix) ([]core.BatchResult, error) {
	res := make([]core.BatchResult, xs.Rows)
	if err := b.QueryBatchInto(xs, res); err != nil {
		return nil, err
	}
	return res, nil
}

func (b *degradableBackend) QueryBatchInto(xs *tensor.Matrix, res []core.BatchResult) error {
	if b.level.Load() == 0 {
		time.Sleep(5 * time.Millisecond) // breaches the 1ms SLO
	}
	for i := 0; i < xs.Rows; i++ {
		res[i] = core.BatchResult{Y: []float64{1}, Src: core.FromSurrogate}
	}
	return nil
}

// TestBrownoutControllerStepsDownAndRecovers drives a latency-SLO breach
// through the controller and asserts the full arc: step down under
// sustained breach, stats exposing level and transition counters, and
// step back up once the tenant holds healthy.
func TestBrownoutControllerStepsDownAndRecovers(t *testing.T) {
	bk := &degradableBackend{}
	f := New(Config{
		LatencyWindow: 16, // small ring so recovery flushes slow samples fast
		Brownout: BrownoutConfig{
			P99SLO:        time.Millisecond,
			Interval:      10 * time.Millisecond,
			StepDownAfter: 2,
			StepUpAfter:   2,
			MinSamples:    1,
		},
	})
	defer f.Close()
	if err := f.Register("m", bk); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			f.Query("m", []float64{1, 2})
		}
	}()
	defer func() { close(stop); wg.Wait() }()

	waitFor := func(cond func(TenantStats) bool, what string) TenantStats {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			st, ok := f.Stats()["m"]
			if ok && cond(st) {
				return st
			}
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s; last stats %+v", what, st)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Sustained 5ms p99 against a 1ms SLO: the controller must step down.
	st := waitFor(func(st TenantStats) bool { return st.BrownoutLevel >= 1 }, "step down")
	if st.BrownoutDowns == 0 {
		t.Fatalf("level %d with zero down-transitions counted: %+v", st.BrownoutLevel, st)
	}
	if bk.BrownoutLevel() == 0 {
		t.Fatal("controller stepped down without driving the backend")
	}

	// Browned out, the backend is fast again; once the slow samples age
	// out of the latency ring the controller must walk back to level 0.
	st = waitFor(func(st TenantStats) bool { return st.BrownoutLevel == 0 && st.BrownoutUps > 0 }, "recovery")
	if st.BrownoutUps == 0 {
		t.Fatalf("recovered with zero up-transitions counted: %+v", st)
	}
	if bk.BrownoutLevel() != 0 {
		t.Fatalf("backend still at level %d after recovery", bk.BrownoutLevel())
	}
}

// TestBrownoutShedSignal breaches via shed rate instead of latency: a
// one-query admission window under concurrent load rejects most arrivals,
// and the controller steps the tenant down on the rejection fraction
// alone (no latency SLO configured).
func TestBrownoutShedSignal(t *testing.T) {
	bk := &degradableBackend{}
	f := New(Config{
		MaxInFlight: 1,
		Brownout: BrownoutConfig{
			MaxShedRate:   0.25,
			Interval:      10 * time.Millisecond,
			StepDownAfter: 2,
			MinSamples:    4,
		},
	})
	defer f.Close()
	if err := f.Register("m", bk); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				f.Query("m", []float64{1, 2}) // most are shed at the window
			}
		}()
	}
	defer func() { close(stop); wg.Wait() }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		st := f.Stats()["m"]
		if st.BrownoutLevel >= 1 && st.Rejected > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shed-rate signal never stepped the tenant down; stats %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBrownoutIgnoresNonDegradable asserts the controller leaves backends
// that don't expose the ladder untouched rather than erroring or leaking
// window state.
func TestBrownoutIgnoresNonDegradable(t *testing.T) {
	f := New(Config{
		Brownout: BrownoutConfig{
			P99SLO:        time.Microsecond,
			Interval:      5 * time.Millisecond,
			StepDownAfter: 1,
			MinSamples:    1,
		},
	})
	defer f.Close()
	bk := &plainBackend{}
	if err := f.Register("m", bk); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := f.Query("m", []float64{1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	if st := f.Stats()["m"]; st.BrownoutLevel != 0 || st.BrownoutDowns != 0 {
		t.Fatalf("non-degradable backend browned out: %+v", st)
	}
}

// plainBackend is a minimal serve.Backend without the degradable face.
type plainBackend struct{}

func (b *plainBackend) Dims() (int, int) { return 2, 1 }

func (b *plainBackend) QueryBatch(xs *tensor.Matrix) ([]core.BatchResult, error) {
	res := make([]core.BatchResult, xs.Rows)
	if err := b.QueryBatchInto(xs, res); err != nil {
		return nil, err
	}
	return res, nil
}

func (b *plainBackend) QueryBatchInto(xs *tensor.Matrix, res []core.BatchResult) error {
	time.Sleep(100 * time.Microsecond) // far over the 1µs SLO
	for i := 0; i < xs.Rows; i++ {
		res[i] = core.BatchResult{Y: []float64{1}, Src: core.FromSurrogate}
	}
	return nil
}
