package fleet

// This file binds tenants to the crash-safe artifact registry: a bound
// tenant warm-starts from its newest durable generation (serving
// immediately, zero retraining), persists every generation its wrapper
// publishes, and — when a rollback factor is armed — runs a post-publish
// drift watch that automatically rolls back a generation whose drift
// ratio regresses past the factor, reinstalling the predecessor from
// disk. Registry generation and publish/rollback/quarantine counters
// surface through TenantStats (and from there /statsz).

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/xrand"
)

// RegistryConfig binds one tenant to an artifact registry.
type RegistryConfig struct {
	// Registry is the open registry to bind against. Required.
	Registry *registry.Registry
	// Key is the tenant's registry namespace (default: its fleet name).
	Key string
	// RollbackFactor, when positive, arms the post-publish drift watch:
	// a shard whose drift ratio (residual EWMA over publish-time
	// baseline, see core.ShardedConfig.DriftFactor) reaches this factor
	// is rolled back to its previous registry generation. Set it above
	// the wrapper's own DriftFactor so a refit is the first response and
	// rollback the defense against a generation that made things worse.
	// Only sharded backends are watched.
	RollbackFactor float64
	// Interval is the drift-watch cadence (default 250ms).
	Interval time.Duration
	// Seed seeds the rng restored surrogates draw their MC-dropout
	// streams from (default fixed).
	Seed uint64
	// OnError observes background publish / warm-start / rollback
	// failures. Failures never disturb serving; nil discards them.
	OnError func(err error)
}

// registryBinding is one tenant's live registry attachment.
type registryBinding struct {
	reg    *registry.Registry
	key    string
	shards int
	unhook func()
	stop   chan struct{}
	done   chan struct{}
}

// close stops the drift watch (if armed) and detaches the publish hook.
func (b *registryBinding) close() {
	if b.stop != nil {
		close(b.stop)
		<-b.done
	}
	b.unhook()
}

// stats sums the binding's registry counters over its shard keys and
// reports the newest committed generation across them.
func (b *registryBinding) stats() (gen uint64, s registry.Stats) {
	for si := 0; si < b.shards; si++ {
		key := registry.ShardKey(b.key, si)
		if g, ok := b.reg.CurrentGeneration(key); ok && g > gen {
			gen = g
		}
		ns := b.reg.NameStats(key)
		s.Publishes += ns.Publishes
		s.Rollbacks += ns.Rollbacks
		s.Quarantines += ns.Quarantines
		s.Opens += ns.Opens
	}
	return gen, s
}

// BindRegistry attaches the named tenant to a registry: its backend
// warm-starts from the newest durable generations (the returned count is
// how many shards restored a model), every generation it publishes from
// then on is persisted, and, with RollbackFactor set on a sharded
// backend, the drift watch auto-rolls-back regressions. The backend must
// be a *core.Wrapper or *core.ShardedWrapper. The binding lives until
// the tenant is deregistered or the fleet closes.
func (f *Fleet) BindRegistry(name string, cfg RegistryConfig) (warmed int, err error) {
	if cfg.Registry == nil {
		return 0, errors.New("fleet: RegistryConfig.Registry is required")
	}
	t := f.lookup(name)
	if t == nil {
		f.mu.RLock()
		closed := f.closed
		f.mu.RUnlock()
		if closed {
			return 0, ErrClosed
		}
		return 0, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	if t.binding.Load() != nil {
		return 0, fmt.Errorf("fleet: tenant %q is already bound to a registry", name)
	}
	key := cfg.Key
	if key == "" {
		key = name
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 250 * time.Millisecond
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x1e57a9
	}
	onErr := func(what string, err error) {
		if cfg.OnError != nil {
			cfg.OnError(fmt.Errorf("fleet: tenant %q registry %s: %w", name, what, err))
		}
	}
	rng := xrand.New(seed)
	b := &registryBinding{reg: cfg.Registry, key: key}
	switch w := t.backend.(type) {
	case *core.ShardedWrapper:
		b.shards = w.NumShards()
		warmed = registry.WarmStartSharded(cfg.Registry, key, w, rng, func(si int, err error) {
			onErr(fmt.Sprintf("warm-start shard %d", si), err)
		})
		w.SetPublishHook(registry.Publisher(cfg.Registry, key, func(si int, err error) {
			onErr(fmt.Sprintf("publish shard %d", si), err)
		}))
		b.unhook = func() { w.SetPublishHook(nil) }
		if cfg.RollbackFactor > 0 {
			b.stop = make(chan struct{})
			b.done = make(chan struct{})
			go b.driftWatch(w, cfg, rng, onErr)
		}
	case *core.Wrapper:
		b.shards = 1
		ok, werr := registry.WarmStartWrapper(cfg.Registry, key, w, rng)
		if werr != nil {
			onErr("warm-start", werr)
		}
		if ok {
			warmed = 1
		}
		w.SetPublishHook(registry.Publisher(cfg.Registry, key, func(_ int, err error) {
			onErr("publish", err)
		}))
		b.unhook = func() { w.SetPublishHook(nil) }
	default:
		return 0, fmt.Errorf("fleet: tenant %q backend %T cannot bind a registry", name, t.backend)
	}
	t.binding.Store(b)
	return warmed, nil
}

// driftWatch is the binding's background loop: each tick it scans the
// wrapper's shard status and rolls back any shard whose drift ratio has
// regressed past the configured factor — once per observed wrapper
// generation, so a shard that keeps drifting after its rollback is
// rolled back again only when a newer (still-bad) generation publishes
// or the reinstalled model itself regresses.
func (b *registryBinding) driftWatch(w *core.ShardedWrapper, cfg RegistryConfig, rng *xrand.Rand, onErr func(string, error)) {
	defer close(b.done)
	tick := time.NewTicker(cfg.Interval)
	defer tick.Stop()
	rolled := make([]int, w.NumShards())
	for i := range rolled {
		rolled[i] = -2 // below any real generation (-1 = warm-started)
	}
	for {
		select {
		case <-b.stop:
			return
		case <-tick.C:
		}
		for si, st := range w.Status() {
			if !st.Drifted || st.DriftRatio < cfg.RollbackFactor || st.Generation == rolled[si] {
				continue
			}
			rolled[si] = st.Generation
			if _, err := registry.RollbackShard(b.reg, b.key, si, w, rng); err != nil {
				// Nothing to roll back to is a normal condition (first
				// generation, or every predecessor GC'd), not a failure.
				if !errors.Is(err, registry.ErrNoPredecessor) && !errors.Is(err, registry.ErrNotFound) {
					onErr(fmt.Sprintf("rollback shard %d", si), err)
				}
			}
		}
	}
}
