package fleet

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestFleetQueryRowsDeadlineShed checks per-row deadlines inside one
// burst: expired rows are shed with context.DeadlineExceeded before the
// backend sees them, live rows are served, and the tenant's Expired
// counter moves.
func TestFleetQueryRowsDeadlineShed(t *testing.T) {
	f := New(Config{})
	defer f.Close()
	bk := &fakeBackend{scale: 1}
	if err := f.Register("a", bk); err != nil {
		t.Fatal(err)
	}

	rows := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	dls := []int64{
		0,                                       // none
		time.Now().Add(-time.Second).UnixNano(), // long expired
		time.Now().Add(time.Minute).UnixNano(),  // comfortably live
	}
	errs := make([]error, 3)
	ys := make([]float64, 3)
	if err := f.QueryRows("a", rows, dls, func(i int, res serve.Result, err error) {
		errs[i] = err
		if err == nil {
			ys[i] = res.Y[0]
		}
	}); err != nil {
		t.Fatal(err)
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("live rows failed: %v / %v", errs[0], errs[2])
	}
	if !errors.Is(errs[1], context.DeadlineExceeded) {
		t.Fatalf("expired row got %v", errs[1])
	}
	if ys[0] != 3 || ys[2] != 9 {
		t.Fatalf("live answers: %v %v", ys[0], ys[2])
	}
	st, err := f.TenantStats("a")
	if err != nil {
		t.Fatal(err)
	}
	if st.Expired != 1 {
		t.Fatalf("Expired = %d, want 1", st.Expired)
	}
	if st.Queries != 2 {
		t.Fatalf("Queries = %d, want 2 (shed row must not count)", st.Queries)
	}
}

// TestFleetQueryRowsAdmissionShed checks a burst larger than the tenant's
// in-flight window sheds exactly the overflow tail with OverloadedError —
// deterministically, with no concurrent occupier needed.
func TestFleetQueryRowsAdmissionShed(t *testing.T) {
	f := New(Config{MaxInFlight: 2})
	defer f.Close()
	if err := f.Register("a", &fakeBackend{scale: 1}); err != nil {
		t.Fatal(err)
	}

	rows := [][]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	errs := make([]error, 4)
	if err := f.QueryRows("a", rows, nil, func(i int, res serve.Result, err error) {
		errs[i] = err
	}); err != nil {
		t.Fatal(err)
	}
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("admitted rows failed: %v / %v", errs[0], errs[1])
	}
	for i := 2; i < 4; i++ {
		if !errors.Is(errs[i], ErrOverloaded) {
			t.Fatalf("overflow row %d got %v", i, errs[i])
		}
		var oe *OverloadedError
		if !errors.As(errs[i], &oe) || oe.Tenant != "a" {
			t.Fatalf("overflow row %d lacks typed tenant: %v", i, errs[i])
		}
	}
	st, _ := f.TenantStats("a")
	if st.Rejected != 2 {
		t.Fatalf("Rejected = %d, want 2", st.Rejected)
	}
	if st.InFlight != 0 {
		t.Fatalf("InFlight = %d after burst, want 0", st.InFlight)
	}
}

// TestFleetQueryRowsPanicContainment checks a backend panic mid-burst is
// converted into per-row errors for every undelivered row, the panic
// counter moves, and the tenant keeps serving.
func TestFleetQueryRowsPanicContainment(t *testing.T) {
	f := New(Config{})
	defer f.Close()
	bk := &fakeBackend{scale: 1, panicAt: 7}
	if err := f.Register("a", bk); err != nil {
		t.Fatal(err)
	}

	rows := [][]float64{{7, 0}, {1, 1}}
	errs := make([]error, 2)
	if err := f.QueryRows("a", rows, nil, func(i int, res serve.Result, err error) {
		errs[i] = err
	}); err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e == nil {
			t.Fatalf("row %d of panicked burst succeeded", i)
		}
	}
	st, _ := f.TenantStats("a")
	if st.Panics != 1 {
		t.Fatalf("Panics = %d, want 1", st.Panics)
	}
	if st.InFlight != 0 {
		t.Fatalf("InFlight = %d after panic, want 0", st.InFlight)
	}
	// Still serving.
	if r, err := f.Query("a", []float64{1, 1}); err != nil || r.Y[0] != 3 {
		t.Fatalf("post-panic query: %v %v", r, err)
	}
}

// TestFleetQueryRowsErrors checks whole-burst rejections: unknown
// tenants, closed fleets and malformed deadline slices.
func TestFleetQueryRowsErrors(t *testing.T) {
	f := New(Config{})
	boom := func(int, serve.Result, error) { t.Error("callback ran") }
	if err := f.QueryRows("nope", [][]float64{{1, 2}}, nil, boom); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant: %v", err)
	}
	if err := f.Register("a", &fakeBackend{scale: 1}); err != nil {
		t.Fatal(err)
	}
	if err := f.QueryRows("a", [][]float64{{1, 2}}, []int64{1, 2}, boom); err == nil {
		t.Fatal("mismatched deadline slice accepted")
	}
	f.Close()
	if err := f.QueryRows("a", [][]float64{{1, 2}}, nil, boom); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed fleet: %v", err)
	}
}
