package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds coincided %d/100 times", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero-seeded stream produced only %d distinct values", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling splits coincided %d/1000 times", same)
	}
}

func TestSplitReproducible(t *testing.T) {
	mk := func() []uint64 {
		p := New(9)
		a := p.Split()
		b := p.Split()
		return []uint64{a.Uint64(), a.Uint64(), b.Uint64(), b.Uint64()}
	}
	x, y := mk(), mk()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("split tree not reproducible at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	if err := quick.Check(func(steps uint8) bool {
		for i := 0; i < int(steps); i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %.4f, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(11)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(13)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %f", i, c, want)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(17)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Normal(3, 2)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Fatalf("normal mean %.4f, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.2 {
		t.Fatalf("normal variance %.4f, want ~4", variance)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(19)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.Exponential(2)
		if x < 0 {
			t.Fatal("negative exponential variate")
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("exponential(2) mean %.4f, want ~0.5", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(23)
	for _, mean := range []float64{0.5, 4, 50} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			k := r.Poisson(mean)
			if k < 0 {
				t.Fatal("negative Poisson variate")
			}
			sum += k
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > 4*math.Sqrt(mean/float64(n))+0.05 {
			t.Fatalf("Poisson(%g) mean %.4f", mean, got)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	if got := New(1).Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(29)
	for _, tc := range []struct {
		n int
		p float64
	}{{20, 0.3}, {500, 0.1}, {1000, 0.9}} {
		const trials = 20000
		sum := 0
		for i := 0; i < trials; i++ {
			k := r.Binomial(tc.n, tc.p)
			if k < 0 || k > tc.n {
				t.Fatalf("Binomial(%d,%g)=%d out of range", tc.n, tc.p, k)
			}
			sum += k
		}
		mean := float64(sum) / trials
		want := float64(tc.n) * tc.p
		if math.Abs(mean-want) > 0.05*want+0.5 {
			t.Fatalf("Binomial(%d,%g) mean %.3f want %.3f", tc.n, tc.p, mean, want)
		}
	}
}

func TestBinomialEdges(t *testing.T) {
	r := New(31)
	if r.Binomial(10, 0) != 0 {
		t.Fatal("Binomial(n,0) != 0")
	}
	if r.Binomial(10, 1) != 10 {
		t.Fatal("Binomial(n,1) != n")
	}
	if r.Binomial(0, 0.5) != 0 {
		t.Fatal("Binomial(0,p) != 0")
	}
}

func TestGammaMoments(t *testing.T) {
	r := New(37)
	for _, tc := range []struct{ shape, scale float64 }{{0.5, 1}, {2, 3}, {9, 0.5}} {
		const n = 100000
		sum := 0.0
		for i := 0; i < n; i++ {
			x := r.Gamma(tc.shape, tc.scale)
			if x < 0 {
				t.Fatal("negative gamma variate")
			}
			sum += x
		}
		mean := sum / n
		want := tc.shape * tc.scale
		if math.Abs(mean-want) > 0.05*want+0.02 {
			t.Fatalf("Gamma(%g,%g) mean %.4f want %.4f", tc.shape, tc.scale, mean, want)
		}
	}
}

func TestBetaRange(t *testing.T) {
	r := New(41)
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		x := r.Beta(2, 5)
		if x < 0 || x > 1 {
			t.Fatalf("Beta variate %g out of [0,1]", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-2.0/7.0) > 0.01 {
		t.Fatalf("Beta(2,5) mean %.4f want %.4f", mean, 2.0/7.0)
	}
}

func TestCategorical(t *testing.T) {
	r := New(43)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[r.Categorical(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight category drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.3 {
		t.Fatalf("category ratio %.3f, want ~3", ratio)
	}
}

func TestCategoricalPanics(t *testing.T) {
	for _, w := range [][]float64{nil, {}, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Categorical(%v) did not panic", w)
				}
			}()
			New(1).Categorical(w)
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(47)
	if err := quick.Check(func(raw uint8) bool {
		n := int(raw%64) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := New(53)
	s := r.SampleWithoutReplacement(10, 5)
	if len(s) != 5 {
		t.Fatalf("sample size %d, want 5", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid or duplicate sample %d", v)
		}
		seen[v] = true
	}
	if got := r.SampleWithoutReplacement(4, 0); got != nil {
		t.Fatalf("k=0 sample should be nil, got %v", got)
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized sample did not panic")
		}
	}()
	New(1).SampleWithoutReplacement(3, 4)
}

func TestRange(t *testing.T) {
	r := New(59)
	for i := 0; i < 1000; i++ {
		v := r.Range(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Range value %g out of [-2,5)", v)
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(61)
	xs := []int{1, 2, 2, 3, 5, 8, 13}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset sum %d -> %d", sum, got)
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(67)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.25) {
			hits++
		}
	}
	if f := float64(hits) / n; math.Abs(f-0.25) > 0.01 {
		t.Fatalf("Bernoulli(0.25) frequency %.4f", f)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.NormFloat64()
	}
	_ = sink
}
