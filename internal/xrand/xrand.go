// Package xrand provides deterministic, splittable pseudo-random number
// generation for reproducible parallel simulations.
//
// The paper's exemplars (MD sampling, stochastic SEIR dynamics, dropout
// masks, Gibbs sweeps) all require reproducibility across worker counts.
// xrand offers xoshiro256** streams seeded through SplitMix64, plus a
// Split operation that derives statistically independent substreams so
// each goroutine owns its own generator.
package xrand

import (
	"math"
	"math/bits"
)

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used only for seeding and splitting.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** generator. It is NOT safe for concurrent use;
// use Split to hand a derived stream to each goroutine.
type Rand struct {
	s [4]uint64
	// cached second normal variate from the polar method
	hasGauss bool
	gauss    float64
}

// New returns a generator seeded from the given seed via SplitMix64,
// guaranteeing a well-mixed non-zero internal state for any seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro requires not-all-zero state; SplitMix64 cannot produce four
	// zeros from any seed, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives a new generator whose stream is statistically independent
// of the receiver's. The receiver is advanced, so successive Splits give
// distinct children; a parent seed therefore fans out into a reproducible
// tree of streams regardless of scheduling.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

// Int63 returns a non-negative 63-bit integer.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0,1) with 53 random bits.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0,n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0,n) using Lemire's method with a
// rejection step to remove modulo bias.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	threshold := -n % n
	for {
		hi, lo := bits.Mul64(r.Uint64(), n)
		if lo >= threshold {
			return hi
		}
	}
}

// Range returns a uniform float64 in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method,
// caching the paired variate).
func (r *Rand) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.gauss = v * f
		r.hasGauss = true
		return u * f
	}
}

// Normal returns a normal variate with the given mean and standard deviation.
func (r *Rand) Normal(mean, std float64) float64 {
	return mean + std*r.NormFloat64()
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Exponential returns an exponential variate with the given rate.
func (r *Rand) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("xrand: Exponential with non-positive rate")
	}
	return r.ExpFloat64() / rate
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Poisson returns a Poisson variate with the given mean. Knuth's method for
// small means, normal approximation with rejection-free rounding for large
// means (mean > 30), which is adequate for simulation workloads.
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		// PTRS-lite: normal approximation with continuity correction.
		for {
			k := math.Floor(r.Normal(mean, math.Sqrt(mean)) + 0.5)
			if k >= 0 {
				return int(k)
			}
		}
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Binomial returns a Binomial(n, p) variate. Direct summation for small n,
// otherwise a normal approximation clamped to [0, n].
func (r *Rand) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	std := math.Sqrt(mean * (1 - p))
	k := int(math.Floor(r.Normal(mean, std) + 0.5))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// Gamma returns a Gamma(shape, scale) variate using the Marsaglia–Tsang
// method, with the Ahrens–Dieter boost for shape < 1.
func (r *Rand) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("xrand: Gamma with non-positive parameter")
	}
	if shape < 1 {
		// boost: Gamma(a) = Gamma(a+1) * U^{1/a}
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Beta returns a Beta(a, b) variate via two Gamma draws.
func (r *Rand) Beta(a, b float64) float64 {
	x := r.Gamma(a, 1)
	y := r.Gamma(b, 1)
	return x / (x + y)
}

// Categorical returns an index drawn with probability proportional to
// weights[i]. It panics if weights is empty or sums to a non-positive value.
func (r *Rand) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("xrand: negative categorical weight")
		}
		total += w
	}
	if len(weights) == 0 || total <= 0 {
		panic("xrand: categorical weights must have positive sum")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle performs a Fisher–Yates shuffle of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// SampleWithoutReplacement draws k distinct indices from [0, n) uniformly.
// It panics if k > n.
func (r *Rand) SampleWithoutReplacement(n, k int) []int {
	if k > n {
		panic("xrand: sample size exceeds population")
	}
	if k <= 0 {
		return nil
	}
	// Partial Fisher–Yates over an index array.
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		p[i], p[j] = p[j], p[i]
	}
	out := make([]int, k)
	copy(out, p[:k])
	return out
}
