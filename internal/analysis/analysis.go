// Package analysis implements MLafterHPC (paper §I): "ML analyzing
// results of HPC as in trajectory analysis and structure identification in
// biomolecular simulations". It featurizes MD trajectory frames, clusters
// them into structural states with the parallel K-means kernel, and
// extracts the state populations and transition statistics that
// biomolecular workflows report.
package analysis

import (
	"fmt"
	"math"

	"repro/internal/md"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// FrameFeaturizer converts one simulation snapshot into a fixed-length
// feature vector.
type FrameFeaturizer interface {
	Dim() int
	Featurize(s *md.System) []float64
}

// DensityFeaturizer fingerprints a frame by its normalized z-density
// histogram of ions — a collective variable that distinguishes
// wall-adsorbed from mid-channel structures.
type DensityFeaturizer struct {
	Bins int
}

// Dim implements FrameFeaturizer.
func (d DensityFeaturizer) Dim() int { return d.Bins }

// Featurize implements FrameFeaturizer.
func (d DensityFeaturizer) Featurize(s *md.System) []float64 {
	out := make([]float64, d.Bins)
	h := s.P.H
	ions := 0
	for i := 0; i < s.N; i++ {
		if s.Kind[i] == md.Solvent {
			continue
		}
		z := s.Pos[3*i+2] + h/2
		b := int(z / h * float64(d.Bins))
		if b < 0 {
			b = 0
		}
		if b >= d.Bins {
			b = d.Bins - 1
		}
		out[b]++
		ions++
	}
	if ions > 0 {
		for i := range out {
			out[i] /= float64(ions)
		}
	}
	return out
}

// Trajectory is a time-ordered collection of featurized frames.
type Trajectory struct {
	Frames *tensor.Matrix
}

// Collect samples a trajectory from a live system: every stride steps, the
// current frame is featurized and appended. It is the MLafterHPC data
// pipeline ("trajectory analysis" happens after the HPC run, so Collect
// can equally be fed from stored frames).
func Collect(s *md.System, f FrameFeaturizer, frames, stride int) (*Trajectory, error) {
	if frames < 1 || stride < 1 {
		return nil, fmt.Errorf("analysis: invalid plan frames=%d stride=%d", frames, stride)
	}
	out := tensor.NewMatrix(frames, f.Dim())
	for i := 0; i < frames; i++ {
		s.Steps(stride)
		copy(out.Row(i), f.Featurize(s))
	}
	return &Trajectory{Frames: out}, nil
}

// States is the result of structure identification.
type States struct {
	K           int
	Labels      []int
	Populations []float64
	// Transitions[a][b] counts a→b transitions between consecutive frames.
	Transitions [][]int
	Centroids   *tensor.Matrix
}

// IdentifyStates clusters the trajectory into k structural states using
// the parallel K-means kernel and derives populations and the transition
// matrix.
func IdentifyStates(tr *Trajectory, k, workers int, seed uint64) (*States, error) {
	res, err := parallel.KMeans(tr.Frames, k, 25, workers, false, seed)
	if err != nil {
		return nil, err
	}
	st := &States{K: k, Centroids: res.Centroids}
	st.Labels = make([]int, tr.Frames.Rows)
	st.Populations = make([]float64, k)
	st.Transitions = make([][]int, k)
	for a := range st.Transitions {
		st.Transitions[a] = make([]int, k)
	}
	for i := 0; i < tr.Frames.Rows; i++ {
		st.Labels[i] = nearestCentroid(tr.Frames.Row(i), res.Centroids)
		st.Populations[st.Labels[i]]++
	}
	for i := range st.Populations {
		st.Populations[i] /= float64(tr.Frames.Rows)
	}
	for i := 1; i < len(st.Labels); i++ {
		st.Transitions[st.Labels[i-1]][st.Labels[i]]++
	}
	return st, nil
}

func nearestCentroid(x []float64, centroids *tensor.Matrix) int {
	best, bestD := 0, math.Inf(1)
	for c := 0; c < centroids.Rows; c++ {
		d := 0.0
		row := centroids.Row(c)
		for j := range x {
			diff := x[j] - row[j]
			d += diff * diff
		}
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Silhouette returns the mean silhouette coefficient of the clustering in
// [-1, 1]; higher means better-separated structural states. O(n²) — meant
// for trajectory-scale (not dataset-scale) use.
func Silhouette(tr *Trajectory, labels []int, k int) float64 {
	n := tr.Frames.Rows
	if n != len(labels) || n < 2 {
		return math.NaN()
	}
	dist := func(a, b int) float64 {
		ra, rb := tr.Frames.Row(a), tr.Frames.Row(b)
		s := 0.0
		for j := range ra {
			d := ra[j] - rb[j]
			s += d * d
		}
		return math.Sqrt(s)
	}
	total, counted := 0.0, 0
	for i := 0; i < n; i++ {
		// Mean distance to own cluster (a) and nearest other cluster (b).
		sums := make([]float64, k)
		counts := make([]int, k)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			sums[labels[j]] += dist(i, j)
			counts[labels[j]]++
		}
		own := labels[i]
		if counts[own] == 0 {
			continue
		}
		a := sums[own] / float64(counts[own])
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == own || counts[c] == 0 {
				continue
			}
			if m := sums[c] / float64(counts[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
			counted++
		}
	}
	if counted == 0 {
		return math.NaN()
	}
	return total / float64(counted)
}
