package analysis

import (
	"math"
	"testing"

	"repro/internal/md"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

func testSystem(t testing.TB) *md.System {
	t.Helper()
	cfg := md.DefaultConfig()
	cfg.L = 8
	cfg.Seed = 5
	s, err := md.NewSystem(md.Params{H: 6, Zp: 1, Zn: 1, C: 0.05, D: 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDensityFeaturizerNormalized(t *testing.T) {
	s := testSystem(t)
	f := DensityFeaturizer{Bins: 12}
	if f.Dim() != 12 {
		t.Fatalf("dim %d", f.Dim())
	}
	feat := f.Featurize(s)
	sum := 0.0
	for _, v := range feat {
		if v < 0 {
			t.Fatal("negative histogram entry")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("histogram sums to %g want 1", sum)
	}
}

func TestCollectShapes(t *testing.T) {
	s := testSystem(t)
	tr, err := Collect(s, DensityFeaturizer{Bins: 10}, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Frames.Rows != 20 || tr.Frames.Cols != 10 {
		t.Fatalf("trajectory shape %dx%d", tr.Frames.Rows, tr.Frames.Cols)
	}
}

func TestCollectValidation(t *testing.T) {
	s := testSystem(t)
	if _, err := Collect(s, DensityFeaturizer{Bins: 4}, 0, 5); err == nil {
		t.Fatal("zero frames accepted")
	}
	if _, err := Collect(s, DensityFeaturizer{Bins: 4}, 5, 0); err == nil {
		t.Fatal("zero stride accepted")
	}
}

// syntheticTrajectory builds a two-state trajectory with a known switch
// point, so structure identification has unambiguous ground truth.
func syntheticTrajectory(n, dim int, rng *xrand.Rand) (*Trajectory, []int) {
	frames := tensor.NewMatrix(n, dim)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		state := 0
		if i >= n/2 {
			state = 1
		}
		truth[i] = state
		for j := 0; j < dim; j++ {
			center := 0.0
			if state == 1 {
				center = 5
			}
			frames.Set(i, j, center+rng.Normal(0, 0.2))
		}
	}
	return &Trajectory{Frames: frames}, truth
}

func TestIdentifyStatesTwoState(t *testing.T) {
	rng := xrand.New(7)
	tr, truth := syntheticTrajectory(60, 4, rng)
	st, err := IdentifyStates(tr, 2, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Populations ~50/50.
	if math.Abs(st.Populations[0]-0.5) > 0.1 {
		t.Fatalf("populations %v, want ~[0.5 0.5]", st.Populations)
	}
	// Exactly one transition between the two states in either direction.
	cross := st.Transitions[0][1] + st.Transitions[1][0]
	if cross != 1 {
		t.Fatalf("%d cross-state transitions, want 1", cross)
	}
	// Labels must be consistent with the truth up to permutation.
	agree := 0
	for i := range truth {
		if st.Labels[i] == truth[i] {
			agree++
		}
	}
	frac := float64(agree) / float64(len(truth))
	if frac > 0.1 && frac < 0.9 {
		t.Fatalf("label agreement %g: clustering failed", frac)
	}
}

func TestSilhouetteWellSeparated(t *testing.T) {
	rng := xrand.New(8)
	tr, truth := syntheticTrajectory(40, 3, rng)
	s := Silhouette(tr, truth, 2)
	if s < 0.8 {
		t.Fatalf("silhouette %g for well-separated states, want ~1", s)
	}
	// Random labels must score much worse.
	randLabels := make([]int, 40)
	for i := range randLabels {
		randLabels[i] = rng.Intn(2)
	}
	if r := Silhouette(tr, randLabels, 2); r >= s {
		t.Fatalf("random labels silhouette %g >= truth %g", r, s)
	}
}

func TestSilhouetteDegenerate(t *testing.T) {
	tr := &Trajectory{Frames: tensor.NewMatrix(1, 2)}
	if !math.IsNaN(Silhouette(tr, []int{0}, 1)) {
		t.Fatal("single-frame silhouette should be NaN")
	}
}

func TestEndToEndTrajectoryAnalysis(t *testing.T) {
	// Full MLafterHPC pipeline on a real MD trajectory: collect, cluster,
	// report. Assertions are structural (this is an integration test).
	s := testSystem(t)
	s.Steps(100)
	tr, err := Collect(s, DensityFeaturizer{Bins: 8}, 30, 10)
	if err != nil {
		t.Fatal(err)
	}
	st, err := IdentifyStates(tr, 3, 2, 13)
	if err != nil {
		t.Fatal(err)
	}
	popSum := 0.0
	for _, p := range st.Populations {
		popSum += p
	}
	if math.Abs(popSum-1) > 1e-9 {
		t.Fatalf("populations sum to %g", popSum)
	}
	trans := 0
	for a := range st.Transitions {
		for b := range st.Transitions[a] {
			trans += st.Transitions[a][b]
		}
	}
	if trans != tr.Frames.Rows-1 {
		t.Fatalf("%d transitions recorded for %d frames", trans, tr.Frames.Rows)
	}
}
