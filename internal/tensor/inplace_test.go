package tensor

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// naiveMatMul is the reference triple loop the in-place kernels are
// property-tested against.
func naiveMatMul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func randKernelMatrix(rng *xrand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Range(-2, 2)
	}
	return m
}

// randomShapes sweeps odd/even/tiny/large-ish shapes so the unrolled
// panel kernels exercise both their main loops and remainders.
var kernelShapes = []struct{ n, m, p int }{
	{1, 1, 1}, {1, 5, 3}, {2, 3, 4}, {3, 7, 5}, {4, 4, 4},
	{5, 9, 2}, {7, 8, 9}, {8, 16, 8}, {13, 11, 17}, {33, 34, 35},
	{64, 8, 64},
}

func TestMatMulIntoMatchesNaive(t *testing.T) {
	rng := xrand.New(1001)
	for _, s := range kernelShapes {
		a := randKernelMatrix(rng, s.n, s.m)
		b := randKernelMatrix(rng, s.m, s.p)
		want := naiveMatMul(a, b)
		dst := randKernelMatrix(rng, s.n, s.p) // stale contents must be overwritten
		got := MatMulInto(dst, a, b)
		if got != dst {
			t.Fatal("MatMulInto did not return dst")
		}
		if !Equal(got, want, 1e-10) {
			t.Fatalf("MatMulInto %dx%d*%dx%d mismatch", s.n, s.m, s.m, s.p)
		}
	}
}

func TestMatMulATBIntoMatchesNaive(t *testing.T) {
	rng := xrand.New(1002)
	for _, s := range kernelShapes {
		a := randKernelMatrix(rng, s.n, s.m) // aᵀ is m x n
		b := randKernelMatrix(rng, s.n, s.p)
		want := naiveMatMul(a.T(), b)
		dst := randKernelMatrix(rng, s.m, s.p)
		got := MatMulATBInto(dst, a, b)
		if !Equal(got, want, 1e-10) {
			t.Fatalf("MatMulATBInto %dx%dᵀ*%dx%d mismatch", s.n, s.m, s.n, s.p)
		}
	}
}

func TestMatMulABTIntoMatchesNaive(t *testing.T) {
	rng := xrand.New(1003)
	for _, s := range kernelShapes {
		a := randKernelMatrix(rng, s.n, s.m)
		b := randKernelMatrix(rng, s.p, s.m) // bᵀ is m x p
		want := naiveMatMul(a, b.T())
		dst := randKernelMatrix(rng, s.n, s.p)
		got := MatMulABTInto(dst, a, b)
		if !Equal(got, want, 1e-10) {
			t.Fatalf("MatMulABTInto %dx%d*%dx%dᵀ mismatch", s.n, s.m, s.p, s.m)
		}
	}
}

func TestMatMulIntoShapePanics(t *testing.T) {
	for _, f := range []func(){
		func() { MatMulInto(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(4, 2)) },
		func() { MatMulInto(NewMatrix(3, 2), NewMatrix(2, 3), NewMatrix(3, 2)) },
		func() { MatMulATBInto(NewMatrix(3, 2), NewMatrix(2, 3), NewMatrix(4, 2)) },
		func() { MatMulABTInto(NewMatrix(2, 4), NewMatrix(2, 3), NewMatrix(4, 5)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("shape mismatch did not panic")
				}
			}()
			f()
		}()
	}
}

func TestReshapeReusesBacking(t *testing.T) {
	m := NewMatrix(8, 4)
	data := &m.Data[0]
	m.Reshape(4, 4)
	if m.Rows != 4 || m.Cols != 4 || len(m.Data) != 16 {
		t.Fatalf("reshape to 4x4 got %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	if &m.Data[0] != data {
		t.Fatal("shrinking reshape reallocated")
	}
	m.Reshape(10, 5) // growth must reallocate
	if m.Rows != 10 || m.Cols != 5 || len(m.Data) != 50 {
		t.Fatal("growing reshape wrong shape")
	}
}

func TestSliceRowsIsView(t *testing.T) {
	m := NewMatrix(4, 3)
	for i := range m.Data {
		m.Data[i] = float64(i)
	}
	v := m.SliceRows(1, 3)
	if v.Rows != 2 || v.Cols != 3 {
		t.Fatalf("view shape %dx%d", v.Rows, v.Cols)
	}
	v.Set(0, 0, -1)
	if m.At(1, 0) != -1 {
		t.Fatal("view mutation not visible in parent")
	}
}

func TestMatMulIntoZeroesStaleDst(t *testing.T) {
	// A dst full of garbage (including NaN) must be fully overwritten.
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{1, 0}, {0, 1}})
	dst := NewMatrix(2, 2)
	dst.Fill(math.NaN())
	MatMulInto(dst, a, b)
	if HasNaN(dst) {
		t.Fatal("stale dst contents leaked through MatMulInto")
	}
}
