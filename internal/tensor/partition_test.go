package tensor

import (
	"testing"
)

func TestAppendRow(t *testing.T) {
	m := NewMatrix(0, 3)
	m.AppendRow([]float64{1, 2, 3})
	m.AppendRow([]float64{4, 5, 6})
	if m.Rows != 2 || m.At(1, 2) != 6 {
		t.Fatalf("append built %dx%d with %v", m.Rows, m.Cols, m.Data)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ragged AppendRow did not panic")
		}
	}()
	m.AppendRow([]float64{7})
}

func TestGatherRowsInto(t *testing.T) {
	src := FromRows([][]float64{{0, 1}, {10, 11}, {20, 21}, {30, 31}})
	got := GatherRowsInto(nil, src, []int{3, 1})
	want := FromRows([][]float64{{30, 31}, {10, 11}})
	if !Equal(got, want, 0) {
		t.Fatalf("gather got %v", got.Data)
	}
	// Reuse path: a larger previous buffer must reshape, not reallocate.
	buf := NewMatrix(4, 2)
	data := &buf.Data[0]
	out := GatherRowsInto(buf, src, []int{0})
	if out.Rows != 1 || out.At(0, 1) != 1 {
		t.Fatalf("reused gather wrong: %v", out.Data)
	}
	if &out.Data[0] != data {
		t.Fatal("gather into smaller shape reallocated")
	}
	// Empty index set yields a 0-row matrix.
	if e := GatherRowsInto(nil, src, nil); e.Rows != 0 || e.Cols != 2 {
		t.Fatalf("empty gather %dx%d", e.Rows, e.Cols)
	}
}

// TestParallelTuningVars locks in that the fan-out heuristic derives from
// the settable package vars and that kernel results do not depend on the
// fan-out decision.
func TestParallelTuningVars(t *testing.T) {
	oldW, oldT := ParallelWorkers, ParallelFlopThreshold
	defer func() { ParallelWorkers, ParallelFlopThreshold = oldW, oldT }()

	ParallelWorkers = 1
	if useParallel(1024, 1<<30) {
		t.Fatal("single worker must never fan out")
	}
	ParallelWorkers = 8
	ParallelFlopThreshold = 100
	if !useParallel(64, 101) {
		t.Fatal("work above threshold with workers available should fan out")
	}
	if useParallel(1, 101) {
		t.Fatal("single-row kernels cannot shard")
	}

	// Same product computed inline and fanned out must agree exactly
	// (identical per-row arithmetic, only the scheduling differs).
	a := NewMatrix(16, 12)
	b := NewMatrix(12, 8)
	for i := range a.Data {
		a.Data[i] = float64(i%7) - 3
	}
	for i := range b.Data {
		b.Data[i] = float64(i%5) - 2
	}
	ParallelFlopThreshold = 1 << 60 // force inline
	inline := MatMul(a, b)
	ParallelFlopThreshold = 1 // force fan-out
	fanned := MatMul(a, b)
	if !Equal(inline, fanned, 0) {
		t.Fatal("fan-out changed matmul result")
	}
}

func TestDefaultFlopThreshold(t *testing.T) {
	if got := defaultFlopThreshold(1); got != 32*32*32 {
		t.Fatalf("1-core threshold %d want %d", got, 32*32*32)
	}
	if got := defaultFlopThreshold(16); got != 8192*16 {
		t.Fatalf("16-core threshold %d want %d", got, 8192*16)
	}
}
