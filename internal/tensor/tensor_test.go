package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func randomMatrix(rng *xrand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("new matrix not zeroed")
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7.5)
	if m.At(1, 2) != 7.5 {
		t.Fatal("At/Set round trip failed")
	}
	if m.At(0, 0) != 0 {
		t.Fatal("unexpected element changed")
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range At did not panic")
		}
	}()
	NewMatrix(2, 2).At(2, 0)
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 {
		t.Fatal("FromRows content wrong")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestRowIsView(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(1)
	r[0] = 99
	if m.At(1, 0) != 99 {
		t.Fatal("Row should be a view")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone not independent")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatal("transpose content wrong")
			}
		}
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := MatMul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !Equal(c, want, 1e-12) {
		t.Fatalf("matmul got %v", c.Data)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := xrand.New(1)
	a := randomMatrix(rng, 7, 7)
	id := NewMatrix(7, 7)
	for i := 0; i < 7; i++ {
		id.Set(i, i, 1)
	}
	if !Equal(MatMul(a, id), a, 1e-12) || !Equal(MatMul(id, a), a, 1e-12) {
		t.Fatal("identity multiply changed matrix")
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched matmul did not panic")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(2, 3))
}

// Property: parallel blocked matmul agrees with naive triple loop.
func TestMatMulMatchesNaiveQuick(t *testing.T) {
	rng := xrand.New(2)
	if err := quick.Check(func(mr, nr, pr uint8) bool {
		m := int(mr%40) + 1
		n := int(nr%40) + 1
		p := int(pr%40) + 1
		a := randomMatrix(rng, m, n)
		b := randomMatrix(rng, n, p)
		got := MatMul(a, b)
		want := NewMatrix(m, p)
		for i := 0; i < m; i++ {
			for j := 0; j < p; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += a.At(i, k) * b.At(k, j)
				}
				want.Set(i, j, s)
			}
		}
		return Equal(got, want, 1e-9)
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: (AB)^T == B^T A^T.
func TestTransposeProductIdentityQuick(t *testing.T) {
	rng := xrand.New(3)
	if err := quick.Check(func(mr, nr, pr uint8) bool {
		m := int(mr%20) + 1
		n := int(nr%20) + 1
		p := int(pr%20) + 1
		a := randomMatrix(rng, m, n)
		b := randomMatrix(rng, n, p)
		left := MatMul(a, b).T()
		right := MatMul(b.T(), a.T())
		return Equal(left, right, 1e-9)
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulLargeParallel(t *testing.T) {
	rng := xrand.New(4)
	a := randomMatrix(rng, 97, 53)
	b := randomMatrix(rng, 53, 61)
	got := MatMul(a, b)
	want := NewMatrix(97, 61)
	matMulRange(want, a, b, 0, 97)
	if !Equal(got, want, 1e-9) {
		t.Fatal("parallel matmul differs from serial")
	}
}

func TestAddSubHadamardScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	if got := Add(nil, a, b); !Equal(got, FromRows([][]float64{{11, 22}, {33, 44}}), 0) {
		t.Fatal("Add wrong")
	}
	if got := Sub(nil, b, a); !Equal(got, FromRows([][]float64{{9, 18}, {27, 36}}), 0) {
		t.Fatal("Sub wrong")
	}
	if got := Hadamard(nil, a, b); !Equal(got, FromRows([][]float64{{10, 40}, {90, 160}}), 0) {
		t.Fatal("Hadamard wrong")
	}
	if got := Scale(nil, 2, a); !Equal(got, FromRows([][]float64{{2, 4}, {6, 8}}), 0) {
		t.Fatal("Scale wrong")
	}
}

func TestAddAliasingDst(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{3, 4}})
	Add(a, a, b) // dst aliases a
	if !Equal(a, FromRows([][]float64{{4, 6}}), 0) {
		t.Fatal("aliased Add wrong")
	}
}

func TestApply(t *testing.T) {
	a := FromRows([][]float64{{1, 4}, {9, 16}})
	got := Apply(nil, a, math.Sqrt)
	if !Equal(got, FromRows([][]float64{{1, 2}, {3, 4}}), 1e-12) {
		t.Fatal("Apply wrong")
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := MulVec(a, []float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec got %v", got)
	}
}

func TestDotAxpyNorms(t *testing.T) {
	x := []float64{1, 2, 2}
	y := []float64{3, 0, 4}
	if Dot(x, y) != 11 {
		t.Fatalf("Dot = %g", Dot(x, y))
	}
	if Norm2(x) != 3 {
		t.Fatalf("Norm2 = %g", Norm2(x))
	}
	if NormInf(y) != 4 {
		t.Fatalf("NormInf = %g", NormInf(y))
	}
	z := []float64{1, 1, 1}
	Axpy(2, x, z)
	if z[0] != 3 || z[1] != 5 || z[2] != 5 {
		t.Fatalf("Axpy got %v", z)
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := FromRows([][]float64{{3, 0}, {0, 4}})
	if FrobeniusNorm(m) != 5 {
		t.Fatalf("Frobenius = %g", FrobeniusNorm(m))
	}
}

func TestHasNaN(t *testing.T) {
	m := NewMatrix(2, 2)
	if HasNaN(m) {
		t.Fatal("zero matrix flagged as NaN")
	}
	m.Set(1, 1, math.NaN())
	if !HasNaN(m) {
		t.Fatal("NaN not detected")
	}
	m.Set(1, 1, math.Inf(1))
	if !HasNaN(m) {
		t.Fatal("Inf not detected")
	}
}

func TestZeroFill(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	m.Fill(7)
	if m.At(0, 0) != 7 || m.At(0, 1) != 7 {
		t.Fatal("Fill failed")
	}
	m.Zero()
	if m.At(0, 0) != 0 || m.At(0, 1) != 0 {
		t.Fatal("Zero failed")
	}
}

func TestEqualShapes(t *testing.T) {
	if Equal(NewMatrix(1, 2), NewMatrix(2, 1), 1) {
		t.Fatal("different shapes reported equal")
	}
}

func BenchmarkMatMul64(b *testing.B) {
	rng := xrand.New(5)
	x := randomMatrix(rng, 64, 64)
	y := randomMatrix(rng, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMul256(b *testing.B) {
	rng := xrand.New(6)
	x := randomMatrix(rng, 256, 256)
	y := randomMatrix(rng, 256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}
