// Package tensor implements the dense linear algebra needed by the neural
// network surrogates: row-major matrices, BLAS-1 vector kernels, and a
// cache-blocked, goroutine-parallel matrix multiply. It is deliberately
// small — the paper's surrogate networks are MLPs with tens of hidden
// units — but the matmul parallelism mirrors the HPCforML kernels the
// paper discusses in §III-A.
package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("tensor: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic("tensor: ragged rows")
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("tensor: index (%d,%d) out of %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic("tensor: row index out of range")
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets all elements to zero in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets all elements to v in place.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Add stores a+b into dst (all same shape) and returns dst. dst may alias
// a or b. If dst is nil a new matrix is allocated.
func Add(dst, a, b *Matrix) *Matrix {
	sameShape(a, b)
	dst = ensure(dst, a.Rows, a.Cols)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
	return dst
}

// Sub stores a-b into dst and returns dst.
func Sub(dst, a, b *Matrix) *Matrix {
	sameShape(a, b)
	dst = ensure(dst, a.Rows, a.Cols)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
	return dst
}

// Hadamard stores the element-wise product a*b into dst and returns dst.
func Hadamard(dst, a, b *Matrix) *Matrix {
	sameShape(a, b)
	dst = ensure(dst, a.Rows, a.Cols)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
	return dst
}

// Scale stores s*a into dst and returns dst.
func Scale(dst *Matrix, s float64, a *Matrix) *Matrix {
	dst = ensure(dst, a.Rows, a.Cols)
	for i := range a.Data {
		dst.Data[i] = s * a.Data[i]
	}
	return dst
}

// Apply stores f(a[i]) into dst element-wise and returns dst.
func Apply(dst, a *Matrix, f func(float64) float64) *Matrix {
	dst = ensure(dst, a.Rows, a.Cols)
	for i := range a.Data {
		dst.Data[i] = f(a.Data[i])
	}
	return dst
}

// MatMul returns a*b using a cache-blocked ikj kernel. For matrices with
// enough rows it shards row blocks across GOMAXPROCS goroutines.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	workers := runtime.GOMAXPROCS(0)
	// Parallelism only pays off for non-trivial row counts.
	if workers > a.Rows {
		workers = a.Rows
	}
	if a.Rows*a.Cols*b.Cols < 32*32*32 || workers <= 1 {
		matMulRange(out, a, b, 0, a.Rows)
		return out
	}
	var wg sync.WaitGroup
	chunk := (a.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > a.Rows {
			hi = a.Rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulRange(out, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// matMulRange computes rows [lo,hi) of out = a*b with an ikj loop order
// that streams b rows sequentially for cache friendliness.
func matMulRange(out, a, b *Matrix, lo, hi int) {
	n, p := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		outRow := out.Data[i*p : (i+1)*p]
		aRow := a.Data[i*n : (i+1)*n]
		for k := 0; k < n; k++ {
			aik := aRow[k]
			if aik == 0 {
				continue
			}
			bRow := b.Data[k*p : (k+1)*p]
			for j, bv := range bRow {
				outRow[j] += aik * bv
			}
		}
	}
}

// MulVec returns a * x for a column vector x (len == a.Cols).
func MulVec(a *Matrix, x []float64) []float64 {
	if len(x) != a.Cols {
		panic("tensor: mulvec shape mismatch")
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("tensor: dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("tensor: axpy length mismatch")
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// NormInf returns the maximum absolute element of x.
func NormInf(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// FrobeniusNorm returns the Frobenius norm of m.
func FrobeniusNorm(m *Matrix) float64 { return Norm2(m.Data) }

// Equal reports whether two matrices have the same shape and all elements
// within tol of each other.
func Equal(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// HasNaN reports whether the matrix contains any NaN or Inf element; used
// as a guard in training loops (failure injection surfaces here).
func HasNaN(m *Matrix) bool {
	for _, v := range m.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

func sameShape(a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

func ensure(dst *Matrix, rows, cols int) *Matrix {
	if dst == nil {
		return NewMatrix(rows, cols)
	}
	if dst.Rows != rows || dst.Cols != cols {
		panic("tensor: destination shape mismatch")
	}
	return dst
}
