// Package tensor implements the dense linear algebra needed by the neural
// network surrogates: row-major matrices, BLAS-1 vector kernels, and a
// cache-blocked, goroutine-parallel matrix multiply. It is deliberately
// small — the paper's surrogate networks are MLPs with tens of hidden
// units — but the matmul parallelism mirrors the HPCforML kernels the
// paper discusses in §III-A.
package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("tensor: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic("tensor: ragged rows")
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("tensor: index (%d,%d) out of %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic("tensor: row index out of range")
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets all elements to zero in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets all elements to v in place.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Reshape resizes m to rows x cols in place, reusing the backing slice
// when its capacity suffices and reallocating otherwise. Element values
// after a Reshape are unspecified; callers are expected to overwrite them.
// It returns m for chaining.
func (m *Matrix) Reshape(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("tensor: negative dimension")
	}
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	}
	m.Data = m.Data[:n]
	m.Rows, m.Cols = rows, cols
	return m
}

// AppendRow appends one row (len == Cols) to m, growing the backing slice
// amortized-geometrically. Views previously taken with SliceRows remain
// valid but may stop aliasing m after a growth reallocation. Appending to
// a SliceRows view itself is safe for the parent — the view's capacity is
// clamped to its own rows, so the append reallocates instead of growing
// into the parent's data.
func (m *Matrix) AppendRow(row []float64) {
	if len(row) != m.Cols {
		panic(fmt.Sprintf("tensor: append row of len %d to %d-col matrix", len(row), m.Cols))
	}
	m.Data = append(m.Data, row...)
	m.Rows++
}

// GatherRowsInto copies the rows of src indexed by idx into dst, reshaping
// dst to len(idx) x src.Cols, and returns dst. A nil dst allocates. This is
// the row-partition kernel sharded serving uses to assemble per-shard
// batches without per-row allocations.
func GatherRowsInto(dst, src *Matrix, idx []int) *Matrix {
	if dst == nil {
		dst = NewMatrix(len(idx), src.Cols)
	} else {
		dst.Reshape(len(idx), src.Cols)
	}
	for k, i := range idx {
		copy(dst.Row(k), src.Row(i))
	}
	return dst
}

// ScaleColumns stores x with each column j scaled by scale[j] into dst
// (same shape as x, len(scale) == x.Cols) and returns dst. dst may alias
// x for in-place scaling; a nil dst allocates. This is the column-mask
// kernel batched MC dropout uses: one mask element per unit, applied to
// every row of the batch in a single streaming pass.
func ScaleColumns(dst, x *Matrix, scale []float64) *Matrix {
	if len(scale) != x.Cols {
		panic(fmt.Sprintf("tensor: scale of len %d for %d-col matrix", len(scale), x.Cols))
	}
	dst = ensure(dst, x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		src := x.Data[i*x.Cols : (i+1)*x.Cols]
		out := dst.Data[i*x.Cols : (i+1)*x.Cols]
		for j, v := range src {
			out[j] = v * scale[j]
		}
	}
	return dst
}

// ScaleColumnsBlocks scales x block-wise into dst and returns dst: the
// rows are grouped into consecutive blocks of block rows each, and every
// row of block t has its columns scaled by scales[t*Cols:(t+1)*Cols].
// x.Rows must be a multiple of block and len(scales) must cover one mask
// row per block. dst may alias x for in-place scaling; a nil dst
// allocates. This is the pass-stacked MC-dropout kernel: each pass's
// block of the tall panel carries that pass's column-shared mask.
func ScaleColumnsBlocks(dst, x *Matrix, scales []float64, block int) *Matrix {
	if block <= 0 || x.Rows%block != 0 {
		panic(fmt.Sprintf("tensor: block of %d rows does not tile %d rows", block, x.Rows))
	}
	blocks := x.Rows / block
	if len(scales) != blocks*x.Cols {
		panic(fmt.Sprintf("tensor: scales of len %d for %d blocks of %d cols", len(scales), blocks, x.Cols))
	}
	dst = ensure(dst, x.Rows, x.Cols)
	cols := x.Cols
	for t := 0; t < blocks; t++ {
		mask := scales[t*cols : (t+1)*cols]
		for i := t * block; i < (t+1)*block; i++ {
			src := x.Data[i*cols : (i+1)*cols]
			out := dst.Data[i*cols : (i+1)*cols]
			for j, v := range src {
				out[j] = v * mask[j]
			}
		}
	}
	return dst
}

// RepeatRowsInto tiles src vertically times times into dst, reshaping dst
// to times*src.Rows x src.Cols, and returns dst. A nil dst allocates.
// This assembles the tall panel pass-stacked MC evaluation runs all
// passes through at once.
func RepeatRowsInto(dst, src *Matrix, times int) *Matrix {
	if times < 0 {
		panic("tensor: negative repeat count")
	}
	if dst == nil {
		dst = NewMatrix(times*src.Rows, src.Cols)
	} else {
		dst.Reshape(times*src.Rows, src.Cols)
	}
	n := src.Rows * src.Cols
	for t := 0; t < times; t++ {
		copy(dst.Data[t*n:(t+1)*n], src.Data)
	}
	return dst
}

// SliceRows returns a view of rows [lo,hi) sharing m's backing array.
// Mutations through the view are visible in m and vice versa.
func (m *Matrix) SliceRows(lo, hi int) *Matrix {
	if lo < 0 || hi < lo || hi > m.Rows {
		panic(fmt.Sprintf("tensor: row slice [%d,%d) out of %d rows", lo, hi, m.Rows))
	}
	// Full slice expression clamps capacity so a later Reshape/append on
	// the view cannot silently grow into the parent's remaining rows.
	return &Matrix{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols : hi*m.Cols]}
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Add stores a+b into dst (all same shape) and returns dst. dst may alias
// a or b. If dst is nil a new matrix is allocated.
func Add(dst, a, b *Matrix) *Matrix {
	sameShape(a, b)
	dst = ensure(dst, a.Rows, a.Cols)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
	return dst
}

// Sub stores a-b into dst and returns dst.
func Sub(dst, a, b *Matrix) *Matrix {
	sameShape(a, b)
	dst = ensure(dst, a.Rows, a.Cols)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
	return dst
}

// Hadamard stores the element-wise product a*b into dst and returns dst.
func Hadamard(dst, a, b *Matrix) *Matrix {
	sameShape(a, b)
	dst = ensure(dst, a.Rows, a.Cols)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
	return dst
}

// Scale stores s*a into dst and returns dst.
func Scale(dst *Matrix, s float64, a *Matrix) *Matrix {
	dst = ensure(dst, a.Rows, a.Cols)
	for i := range a.Data {
		dst.Data[i] = s * a.Data[i]
	}
	return dst
}

// Apply stores f(a[i]) into dst element-wise and returns dst.
func Apply(dst, a *Matrix, f func(float64) float64) *Matrix {
	dst = ensure(dst, a.Rows, a.Cols)
	for i := range a.Data {
		dst.Data[i] = f(a.Data[i])
	}
	return dst
}

// MatMul returns a*b using a cache-blocked ikj kernel. For matrices with
// enough rows it shards row blocks across GOMAXPROCS goroutines.
func MatMul(a, b *Matrix) *Matrix {
	return MatMulInto(NewMatrix(a.Rows, b.Cols), a, b)
}

// MatMulInto stores a*b into dst and returns dst. dst must be a.Rows x
// b.Cols and must not alias a or b; its prior contents are overwritten.
// The kernel is the same parallel cache-blocked ikj loop as MatMul but
// performs no allocation, so hot loops can reuse one dst across steps.
func MatMulInto(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	dst = ensure(dst, a.Rows, b.Cols)
	if !useParallel(a.Rows, a.Rows*a.Cols*b.Cols) {
		matMulRange(dst, a, b, 0, a.Rows)
		return dst
	}
	parallelRanges(a.Rows, func(lo, hi int) {
		matMulRange(dst, a, b, lo, hi)
	})
	return dst
}

// MatMulBiasInto stores a*b + bias into dst (bias broadcast over rows,
// len(bias) == b.Cols) and returns dst. Each destination row is seeded
// with the bias before the panel-axpy accumulation streams through — no
// separate zeroing or bias pass — which makes it the batch analogue of
// the fused single-query dense step: one sweep per output row. dst must
// not alias a or b; shapes follow MatMulInto.
func MatMulBiasInto(dst, a, b *Matrix, bias []float64) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if len(bias) != b.Cols {
		panic(fmt.Sprintf("tensor: bias of len %d for %d-col product", len(bias), b.Cols))
	}
	dst = ensure(dst, a.Rows, b.Cols)
	if !useParallel(a.Rows, a.Rows*a.Cols*b.Cols) {
		matMulBiasRange(dst, a, b, bias, 0, a.Rows)
		return dst
	}
	parallelRanges(a.Rows, func(lo, hi int) {
		matMulBiasRange(dst, a, b, bias, lo, hi)
	})
	return dst
}

// matMulBiasRange computes rows [lo,hi) of out = a*b + bias with the same
// ikj panel kernel as matMulRange, seeding each row with the bias instead
// of zero.
func matMulBiasRange(out, a, b *Matrix, bias []float64, lo, hi int) {
	n, p := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		outRow := out.Data[i*p : (i+1)*p]
		copy(outRow, bias)
		aRow := a.Data[i*n : (i+1)*n]
		k := 0
		for ; k+4 <= n; k += 4 {
			axpyPanel4(aRow[k], aRow[k+1], aRow[k+2], aRow[k+3],
				b.Data[k*p:(k+1)*p], b.Data[(k+1)*p:(k+2)*p],
				b.Data[(k+2)*p:(k+3)*p], b.Data[(k+3)*p:(k+4)*p], outRow)
		}
		for ; k < n; k++ {
			if aik := aRow[k]; aik != 0 {
				axpy4(aik, b.Data[k*p:(k+1)*p], outRow)
			}
		}
	}
}

// MatMulATBInto stores aᵀ*b into dst and returns dst, without ever
// materializing the transpose: for a (n x m) and b (n x p), dst (m x p)
// accumulates dst[j,:] += a[i,j]*b[i,:] streaming b rows sequentially.
// dst must not alias a or b. This is the gradient kernel GW = xᵀ·delta.
func MatMulATBInto(dst, a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: matmul-ATB shape mismatch %dx%dᵀ * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	dst = ensure(dst, a.Cols, b.Cols)
	n, m, p := a.Rows, a.Cols, b.Cols
	// Parallelize over dst rows (columns of a): each worker owns an
	// exclusive dst row range and streams all of a and b once.
	if !useParallel(m, n*m*p) {
		matMulATBRange(dst, a, b, 0, m)
		return dst
	}
	parallelRanges(m, func(lo, hi int) {
		matMulATBRange(dst, a, b, lo, hi)
	})
	return dst
}

// matMulATBRange computes dst rows [lo,hi) of dst = aᵀ*b.
func matMulATBRange(dst, a, b *Matrix, lo, hi int) {
	n, m, p := a.Rows, a.Cols, b.Cols
	for j := lo; j < hi; j++ {
		dstRow := dst.Data[j*p : (j+1)*p]
		for i := range dstRow {
			dstRow[i] = 0
		}
		i := 0
		for ; i+4 <= n; i += 4 {
			axpyPanel4(a.Data[i*m+j], a.Data[(i+1)*m+j], a.Data[(i+2)*m+j], a.Data[(i+3)*m+j],
				b.Data[i*p:(i+1)*p], b.Data[(i+1)*p:(i+2)*p],
				b.Data[(i+2)*p:(i+3)*p], b.Data[(i+3)*p:(i+4)*p], dstRow)
		}
		for ; i < n; i++ {
			if aij := a.Data[i*m+j]; aij != 0 {
				axpy4(aij, b.Data[i*p:(i+1)*p], dstRow)
			}
		}
	}
}

// MatMulABTInto stores a*bᵀ into dst and returns dst, without
// materializing the transpose: for a (n x k) and b (m x k), dst[i,j] is
// the dot product of row i of a with row j of b — both contiguous. dst
// must not alias a or b. This is the backprop kernel dX = delta·Wᵀ.
func MatMulABTInto(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul-ABT shape mismatch %dx%d * %dx%dᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	dst = ensure(dst, a.Rows, b.Rows)
	if !useParallel(a.Rows, a.Rows*a.Cols*b.Rows) {
		matMulABTRange(dst, a, b, 0, a.Rows)
		return dst
	}
	parallelRanges(a.Rows, func(lo, hi int) {
		matMulABTRange(dst, a, b, lo, hi)
	})
	return dst
}

// matMulABTRange computes dst rows [lo,hi) of dst = a*bᵀ.
func matMulABTRange(dst, a, b *Matrix, lo, hi int) {
	k, m := a.Cols, b.Rows
	for i := lo; i < hi; i++ {
		aRow := a.Data[i*k : (i+1)*k]
		dstRow := dst.Data[i*m : (i+1)*m]
		for j := 0; j < m; j++ {
			dstRow[j] = dot4(aRow, b.Data[j*k:(j+1)*k])
		}
	}
}

// Matmul fan-out tuning. The original 32³-flop threshold was calibrated on
// a 1-core container where fan-out never pays; on real multi-core boxes the
// break-even point scales with how many goroutines a kernel spawns, since
// each spawn costs on the order of a microsecond. Both knobs are plain
// package vars so deployments (and tests) can retune without recompiling;
// they are read at kernel entry, so set them before issuing work, not
// concurrently with it.
var (
	// ParallelWorkers is the fan-out width for row-sharded kernels.
	// Defaults to GOMAXPROCS at init.
	ParallelWorkers = runtime.GOMAXPROCS(0)
	// ParallelFlopThreshold is the minimum multiply-accumulate count at
	// which a kernel fans out instead of running inline. Defaults to
	// ~8Ki flops per potential worker, floored at the classic 32³.
	ParallelFlopThreshold = defaultFlopThreshold(runtime.GOMAXPROCS(0))
)

// defaultFlopThreshold derives the fan-out break-even point from the worker
// count: more workers mean more spawn overhead per call, so demand
// proportionally more total work before paying it.
func defaultFlopThreshold(workers int) int {
	if t := 8192 * workers; t > 32*32*32 {
		return t
	}
	return 32 * 32 * 32
}

// useParallel reports whether a row-sharded kernel should fan out: the
// fan-out (goroutine spawns plus one closure allocation) only pays for
// itself on multi-core machines with enough flops per call. Below the
// threshold kernels run inline and allocation-free.
func useParallel(rows, work int) bool {
	return work >= ParallelFlopThreshold && rows > 1 && ParallelWorkers > 1
}

// parallelRanges splits [0,rows) across up to ParallelWorkers goroutines.
func parallelRanges(rows int, f func(lo, hi int)) {
	workers := ParallelWorkers
	if workers > rows {
		workers = rows
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// matMulRange computes rows [lo,hi) of out = a*b with an ikj loop order
// that streams b rows sequentially for cache friendliness. The out rows
// are zeroed first so a reused destination never leaks stale values.
func matMulRange(out, a, b *Matrix, lo, hi int) {
	n, p := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		outRow := out.Data[i*p : (i+1)*p]
		for j := range outRow {
			outRow[j] = 0
		}
		aRow := a.Data[i*n : (i+1)*n]
		k := 0
		for ; k+4 <= n; k += 4 {
			axpyPanel4(aRow[k], aRow[k+1], aRow[k+2], aRow[k+3],
				b.Data[k*p:(k+1)*p], b.Data[(k+1)*p:(k+2)*p],
				b.Data[(k+2)*p:(k+3)*p], b.Data[(k+3)*p:(k+4)*p], outRow)
		}
		for ; k < n; k++ {
			if aik := aRow[k]; aik != 0 {
				axpy4(aik, b.Data[k*p:(k+1)*p], outRow)
			}
		}
	}
}

// MulVec returns a * x for a column vector x (len == a.Cols).
func MulVec(a *Matrix, x []float64) []float64 {
	if len(x) != a.Cols {
		panic("tensor: mulvec shape mismatch")
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("tensor: dot length mismatch")
	}
	return dot4(a, b)
}

// dot4 is the unchecked dot kernel: four independent accumulators break
// the floating-point add dependency chain, which otherwise serializes
// the loop at FP-add latency.
func dot4(a, b []float64) float64 {
	b = b[:len(a)] // bounds-check elimination hint
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		a4, b4 := a[i:i+4:i+4], b[i:i+4:i+4]
		s0 += a4[0] * b4[0]
		s1 += a4[1] * b4[1]
		s2 += a4[2] * b4[2]
		s3 += a4[3] * b4[3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// AxpyPanels accumulates dst += Σᵢ x[i]·a[i·w:(i+1)·w] where w = len(dst)
// — the single-row matmul kernel y += xᵀA for a row-major A (len(a) ==
// len(x)·len(dst)), streaming A exactly once with four source rows fused
// per pass. The fused inference engine's dense step is built on it.
func AxpyPanels(dst, x, a []float64) {
	w := len(dst)
	if len(a) != len(x)*w {
		panic(fmt.Sprintf("tensor: axpy-panels %d x %d panel block of len %d", len(x), w, len(a)))
	}
	i := 0
	for ; i+4 <= len(x); i += 4 {
		axpyPanel4(x[i], x[i+1], x[i+2], x[i+3],
			a[i*w:(i+1)*w], a[(i+1)*w:(i+2)*w],
			a[(i+2)*w:(i+3)*w], a[(i+3)*w:(i+4)*w], dst)
	}
	for ; i < len(x); i++ {
		if xi := x[i]; xi != 0 {
			axpy4(xi, a[i*w:(i+1)*w], dst)
		}
	}
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("tensor: axpy length mismatch")
	}
	axpy4(alpha, x, y)
}

// axpyPanel4 computes y += a0*b0 + a1*b1 + a2*b2 + a3*b3 in one sweep.
// Fusing four source rows per pass quarters the load/store traffic on
// the accumulator row y, which is what bounds a plain axpy.
func axpyPanel4(a0, a1, a2, a3 float64, b0, b1, b2, b3, y []float64) {
	b0 = b0[:len(y)] // bounds-check elimination hints
	b1 = b1[:len(y)]
	b2 = b2[:len(y)]
	b3 = b3[:len(y)]
	for j := range y {
		y[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
	}
}

// axpy4 is the unchecked y += alpha*x kernel, 4-way unrolled to cut loop
// overhead and keep independent stores in flight.
func axpy4(alpha float64, x, y []float64) {
	y = y[:len(x)] // bounds-check elimination hint
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x4, y4 := x[i:i+4:i+4], y[i:i+4:i+4]
		y4[0] += alpha * x4[0]
		y4[1] += alpha * x4[1]
		y4[2] += alpha * x4[2]
		y4[3] += alpha * x4[3]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// NormInf returns the maximum absolute element of x.
func NormInf(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// FrobeniusNorm returns the Frobenius norm of m.
func FrobeniusNorm(m *Matrix) float64 { return Norm2(m.Data) }

// Equal reports whether two matrices have the same shape and all elements
// within tol of each other.
func Equal(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// HasNaN reports whether the matrix contains any NaN or Inf element; used
// as a guard in training loops (failure injection surfaces here).
func HasNaN(m *Matrix) bool {
	for _, v := range m.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

func sameShape(a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

func ensure(dst *Matrix, rows, cols int) *Matrix {
	if dst == nil {
		return NewMatrix(rows, cols)
	}
	if dst.Rows != rows || dst.Cols != cols {
		panic("tensor: destination shape mismatch")
	}
	return dst
}
