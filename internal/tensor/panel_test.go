package tensor

import (
	"testing"

	"repro/internal/xrand"
)

// TestMatMulBiasIntoMatchesComposition checks the fused bias-seeded
// matmul against MatMul followed by an explicit bias broadcast, across
// shapes that exercise the 4-wide panel kernel remainders.
func TestMatMulBiasIntoMatchesComposition(t *testing.T) {
	rng := xrand.New(41)
	for _, shape := range [][3]int{{1, 1, 1}, {3, 5, 2}, {8, 4, 7}, {13, 9, 6}} {
		n, k, p := shape[0], shape[1], shape[2]
		a := NewMatrix(n, k)
		b := NewMatrix(k, p)
		bias := make([]float64, p)
		for i := range a.Data {
			a.Data[i] = rng.Range(-1, 1)
		}
		for i := range b.Data {
			b.Data[i] = rng.Range(-1, 1)
		}
		for i := range bias {
			bias[i] = rng.Range(-1, 1)
		}
		want := MatMul(a, b)
		for i := 0; i < n; i++ {
			row := want.Row(i)
			for j := range row {
				row[j] += bias[j]
			}
		}
		got := MatMulBiasInto(NewMatrix(n, p), a, b, bias)
		if !Equal(got, want, 1e-13) {
			t.Fatalf("MatMulBiasInto (%dx%d)*(%dx%d) differs from matmul+bias", n, k, k, p)
		}
	}
}

// TestMatMulBiasIntoParallelMatchesSerial forces the fan-out path and
// checks it against the inline kernel.
func TestMatMulBiasIntoParallelMatchesSerial(t *testing.T) {
	oldW, oldT := ParallelWorkers, ParallelFlopThreshold
	defer func() { ParallelWorkers, ParallelFlopThreshold = oldW, oldT }()
	rng := xrand.New(42)
	a := NewMatrix(24, 10)
	b := NewMatrix(10, 6)
	bias := make([]float64, 6)
	for i := range a.Data {
		a.Data[i] = rng.Range(-1, 1)
	}
	for i := range b.Data {
		b.Data[i] = rng.Range(-1, 1)
	}
	for i := range bias {
		bias[i] = rng.Range(-1, 1)
	}
	ParallelWorkers, ParallelFlopThreshold = 1, 1 << 60
	serial := MatMulBiasInto(NewMatrix(24, 6), a, b, bias)
	ParallelWorkers, ParallelFlopThreshold = 4, 1
	par := MatMulBiasInto(NewMatrix(24, 6), a, b, bias)
	if !Equal(par, serial, 0) {
		t.Fatal("parallel MatMulBiasInto differs from serial")
	}
}

// TestScaleColumnsBlocks checks per-block column scaling, including the
// in-place aliasing contract and agreement with per-block ScaleColumns.
func TestScaleColumnsBlocks(t *testing.T) {
	rng := xrand.New(43)
	const block, blocks, cols = 3, 4, 5
	x := NewMatrix(block*blocks, cols)
	for i := range x.Data {
		x.Data[i] = rng.Range(-1, 1)
	}
	scales := make([]float64, blocks*cols)
	for i := range scales {
		scales[i] = rng.Range(0, 2)
	}
	want := NewMatrix(x.Rows, cols)
	for t2 := 0; t2 < blocks; t2++ {
		ScaleColumns(want.SliceRows(t2*block, (t2+1)*block),
			x.SliceRows(t2*block, (t2+1)*block), scales[t2*cols:(t2+1)*cols])
	}
	got := ScaleColumnsBlocks(NewMatrix(x.Rows, cols), x, scales, block)
	if !Equal(got, want, 0) {
		t.Fatal("ScaleColumnsBlocks differs from per-block ScaleColumns")
	}
	inPlace := x.Clone()
	ScaleColumnsBlocks(inPlace, inPlace, scales, block)
	if !Equal(inPlace, want, 0) {
		t.Fatal("in-place ScaleColumnsBlocks differs from out-of-place")
	}
}

// TestRepeatRowsInto checks vertical tiling and dst reuse.
func TestRepeatRowsInto(t *testing.T) {
	src := FromRows([][]float64{{1, 2}, {3, 4}})
	dst := RepeatRowsInto(nil, src, 3)
	if dst.Rows != 6 || dst.Cols != 2 {
		t.Fatalf("tiled shape %dx%d, want 6x2", dst.Rows, dst.Cols)
	}
	for t2 := 0; t2 < 3; t2++ {
		for i := 0; i < src.Rows; i++ {
			for j := 0; j < src.Cols; j++ {
				if dst.At(t2*src.Rows+i, j) != src.At(i, j) {
					t.Fatalf("tile %d row %d col %d mismatch", t2, i, j)
				}
			}
		}
	}
	// Reuse must reshape (and not allocate once capacity suffices).
	reused := RepeatRowsInto(dst, src, 2)
	if reused.Rows != 4 || reused != dst {
		t.Fatal("RepeatRowsInto did not reuse dst")
	}
}
