package tensor

// Int8 quantized panel kernels for the compiled inference hot path.
//
// The grid is symmetric 7-bit: quantized values live in [-QuantMax,
// QuantMax] = [-63, 63]. Seven bits instead of eight buys the SWAR
// trick below: biasing a value by +64 maps it into [1, 127], so the
// product of two biased values is at most 127*127 = 16129 and FOUR such
// row products fit in a 16-bit lane (4*16129 = 64516 < 65536) before
// any lane splitting is needed. A weight panel therefore packs four
// output channels per uint64 word (16-bit lanes, group-major: all `in`
// words of a column group are contiguous), and the sweep runs the whole
// dense step as plain 64-bit integer multiply-adds — no SIMD intrinsics,
// no per-element sign handling — splitting lanes into 32-bit
// accumulators only once every four input rows.
//
// Bias arithmetic: with u = x+64 and v = w+64,
//
//	sum_i x_i*w_ij = sum_i u_i*v_ij - 64*sum_i w_ij - 64*sum_i x_i - 4096*in
//
// The weight column sums are folded into ColCorr at pack time; the
// input sum is recomputed by every sweep (so callers may zero entries
// of x — MC-dropout masking — without invalidating anything).

const (
	// QuantMax is the magnitude of the symmetric int8 quantization
	// grid: quantized weights and activations live in [-63, 63], and a
	// per-channel scale maps grid steps back to real units.
	QuantMax = 63

	quantBias = 64 // biased representation offset: [-63,63] -> [1,127]
	laneMask  = 0x0000FFFF0000FFFF
)

// QuantPanel is an int8 weight panel packed for the SWAR sweep: four
// output channels per uint64 word in 16-bit lanes, column groups
// stored group-major so each group's `In` words stream contiguously.
type QuantPanel struct {
	In, Out int
	// Words holds Groups()*In packed words; word g*In+i carries
	// channels 4g..4g+3 of input row i, each biased by +64.
	Words []uint64
	// ColCorr[j] = -64 * sum_i q[i][j], the compile-time half of the
	// bias-correction identity above.
	ColCorr []int32
}

// Groups reports the number of 4-channel column groups in the panel.
func (p *QuantPanel) Groups() int { return (p.Out + 3) / 4 }

// PackQuantPanel packs a row-major in×out int8 weight panel (values in
// [-QuantMax, QuantMax]) into the group-major biased-word layout the
// sweep consumes. Packing is deterministic: equal int8 panels produce
// bit-identical Words/ColCorr.
func PackQuantPanel(q []int8, in, out int) QuantPanel {
	if len(q) != in*out {
		panic("tensor: PackQuantPanel: len(q) != in*out")
	}
	outW := (out + 3) / 4
	p := QuantPanel{
		In: in, Out: out,
		Words:   make([]uint64, outW*in),
		ColCorr: make([]int32, out),
	}
	for i := 0; i < in; i++ {
		for j := 0; j < out; j++ {
			v := uint64(int32(q[i*out+j]) + quantBias)
			p.Words[(j/4)*in+i] |= v << (16 * uint(j%4))
		}
	}
	for j := 0; j < out; j++ {
		s := int32(0)
		for i := 0; i < in; i++ {
			s += int32(q[i*out+j])
		}
		p.ColCorr[j] = -quantBias * s
	}
	return p
}

// Sweep computes dst[j] = sum_i x[i]*q[i][j] exactly in int32 for
// x values in [-QuantMax, QuantMax]. ux is caller scratch of len >=
// p.In (pooled by compiled programs so the hot path stays 0 alloc).
// dst must have len p.Out. Entries of x may be zeroed between sweeps
// (dropout masking): the input-sum correction is recomputed here.
func (p *QuantPanel) Sweep(dst []int32, x []int8, ux []uint64) {
	in := p.In
	x = x[:in]
	sumX := int32(0)
	for i, v := range x {
		sumX += int32(v)
		ux[i] = uint64(int32(v) + quantBias)
	}
	qcorr := -quantBias*sumX - quantBias*quantBias*int32(in)
	ux = ux[:in]
	words, colCorr := p.Words, p.ColCorr
	outW := (p.Out + 3) / 4
	g := 0
	// Two column groups per pass with register accumulators and an
	// 8-row unroll (two independent 4-row lane sums per group) keeps
	// the multiply ports busy; measured ~5% over the 1-group variant.
	for ; g+2 <= outW; g += 2 {
		c0 := words[g*in : (g+1)*in]
		c0 = c0[:in]
		c1 := words[(g+1)*in : (g+2)*in]
		c1 = c1[:in]
		var ae0, ao0, ae1, ao1 uint64
		i := 0
		for ; i+8 <= in; i += 8 {
			u0, u1, u2, u3 := ux[i], ux[i+1], ux[i+2], ux[i+3]
			u4, u5, u6, u7 := ux[i+4], ux[i+5], ux[i+6], ux[i+7]
			qa := u0*c0[i] + u1*c0[i+1] + u2*c0[i+2] + u3*c0[i+3]
			qb := u4*c0[i+4] + u5*c0[i+5] + u6*c0[i+6] + u7*c0[i+7]
			ae0 += (qa & laneMask) + (qb & laneMask)
			ao0 += ((qa >> 16) & laneMask) + ((qb >> 16) & laneMask)
			qa = u0*c1[i] + u1*c1[i+1] + u2*c1[i+2] + u3*c1[i+3]
			qb = u4*c1[i+4] + u5*c1[i+5] + u6*c1[i+6] + u7*c1[i+7]
			ae1 += (qa & laneMask) + (qb & laneMask)
			ao1 += ((qa >> 16) & laneMask) + ((qb >> 16) & laneMask)
		}
		for ; i+4 <= in; i += 4 {
			u0, u1, u2, u3 := ux[i], ux[i+1], ux[i+2], ux[i+3]
			q0 := u0*c0[i] + u1*c0[i+1] + u2*c0[i+2] + u3*c0[i+3]
			q1 := u0*c1[i] + u1*c1[i+1] + u2*c1[i+2] + u3*c1[i+3]
			ae0 += q0 & laneMask
			ao0 += (q0 >> 16) & laneMask
			ae1 += q1 & laneMask
			ao1 += (q1 >> 16) & laneMask
		}
		for ; i < in; i++ {
			u := ux[i]
			q0 := u * c0[i]
			q1 := u * c1[i]
			ae0 += q0 & laneMask
			ao0 += (q0 >> 16) & laneMask
			ae1 += q1 & laneMask
			ao1 += (q1 >> 16) & laneMask
		}
		emit4(dst, colCorr, g*4, qcorr, ae0, ao0)
		emit4(dst, colCorr, g*4+4, qcorr, ae1, ao1)
	}
	for ; g < outW; g++ {
		col := words[g*in : (g+1)*in]
		col = col[:in]
		var ae, ao uint64
		i := 0
		for ; i+4 <= in; i += 4 {
			q := ux[i]*col[i] + ux[i+1]*col[i+1] + ux[i+2]*col[i+2] + ux[i+3]*col[i+3]
			ae += q & laneMask
			ao += (q >> 16) & laneMask
		}
		for ; i < in; i++ {
			q := ux[i] * col[i]
			ae += q & laneMask
			ao += (q >> 16) & laneMask
		}
		emit4(dst, colCorr, g*4, qcorr, ae, ao)
	}
}

// emit4 unpacks one column group's even/odd lane accumulators into up
// to four corrected int32 dot products. Lane layout after the split:
// channel base+0 in ae's low 32 bits, base+1 in ao's low, base+2 in
// ae's high, base+3 in ao's high.
func emit4(dst, colCorr []int32, base int, qcorr int32, ae, ao uint64) {
	n := len(dst) - base
	s0 := int32(ae&0xFFFFFFFF) + qcorr
	s1 := int32(ao&0xFFFFFFFF) + qcorr
	s2 := int32(ae>>32) + qcorr
	s3 := int32(ao>>32) + qcorr
	switch {
	case n >= 4:
		dst[base] = s0 + colCorr[base]
		dst[base+1] = s1 + colCorr[base+1]
		dst[base+2] = s2 + colCorr[base+2]
		dst[base+3] = s3 + colCorr[base+3]
	case n == 3:
		dst[base] = s0 + colCorr[base]
		dst[base+1] = s1 + colCorr[base+1]
		dst[base+2] = s2 + colCorr[base+2]
	case n == 2:
		dst[base] = s0 + colCorr[base]
		dst[base+1] = s1 + colCorr[base+1]
	case n == 1:
		dst[base] = s0 + colCorr[base]
	}
}

// ---- fused dequant + activation + requant epilogue ----

const (
	// QuantLUTKnots is the number of interpolation intervals in a
	// QuantLUT; the fixed-point activation index runs over
	// [0, QuantLUTKnots << quantIdxBits].
	QuantLUTKnots = 128
	quantIdxBits  = 14
	quantIdxScale = 1 << quantIdxBits
	quantIdxMax   = QuantLUTKnots << quantIdxBits
)

// QuantLUT tabulates an activation on a uniform grid in 2.14
// fixed-point output units of the quantization grid: knot i holds
// round(16384 * QuantMax * act(lo + i*(hi-lo)/QuantLUTKnots)). The
// extra guard knot lets the interpolator read i+1 at the top clamp.
type QuantLUT [QuantLUTKnots + 2]int32

// BuildQuantLUT samples act over [lo, hi] into a fused
// dequant+activation+requant table. Outside [lo, hi] the epilogue
// clamps to the endpoint values, so [lo, hi] must cover the region
// where act is still moving at the resolution of the 1/QuantMax grid
// (e.g. [-4, 4] for tanh, [-8, 8] for sigmoid).
func BuildQuantLUT(act func(float64) float64, lo, hi float64) *QuantLUT {
	var lut QuantLUT
	step := (hi - lo) / QuantLUTKnots
	for i := 0; i <= QuantLUTKnots; i++ {
		v := act(lo + float64(i)*step)
		lut[i] = int32(roundHalfEven(quantIdxScale * QuantMax * v))
	}
	lut[QuantLUTKnots+1] = lut[QuantLUTKnots] // guard knot
	return &lut
}

// QuantEpilogue fuses dequantization, bias, activation and
// requantization into one integer pass: for each channel j it maps the
// raw int32 accumulator through the affine index transform
// idx = acc*aF[j] + cF[j] (aF/cF precomputed so that idx linearly spans
// the LUT domain as acc*scale+bias spans [lo, hi]), clamps, and
// linearly interpolates the 2.14 fixed-point table — producing the
// next layer's int8 activation with no float activation call and no
// division. Max observed error vs exact float act is ~0.52 steps of
// the 1/QuantMax grid.
func QuantEpilogue(qy []int8, acc []int32, aF, cF []float64, lut *QuantLUT) {
	acc = acc[:len(qy)]
	aF = aF[:len(qy)]
	cF = cF[:len(qy)]
	for j, a := range acc {
		idx := int32(float64(a)*aF[j] + cF[j])
		if uint32(idx) >= quantIdxMax {
			if idx < 0 {
				idx = 0
			} else {
				idx = quantIdxMax
			}
		}
		i := idx >> quantIdxBits
		fr := int64(idx & (quantIdxScale - 1))
		lo := lut[i]
		v := int64(lo) + (int64(lut[i+1]-lo)*fr)>>quantIdxBits
		qy[j] = int8((v + quantIdxScale/2) >> quantIdxBits)
	}
}

// QuantIndexCoeffs converts a channel's real-valued pre-activation
// affine map acc -> acc*scale + bias into the LUT index coefficients
// QuantEpilogue consumes for a table built over [lo, hi].
func QuantIndexCoeffs(scale, bias, lo, hi float64) (aF, cF float64) {
	perUnit := QuantLUTKnots * quantIdxScale / (hi - lo)
	return scale * perUnit, (bias - lo) * perUnit
}

// QuantizeVec quantizes a float vector onto the int8 grid with a fixed
// inverse scale (inv = QuantMax / envelope): dst[i] =
// round(x[i]*inv), clamped to [-QuantMax, QuantMax]. It reports
// whether any element clipped — the signal that the input left the
// calibrated envelope and the compile-time error bound no longer
// holds. Rounding is half-up via the +64 bias trick (the shifted value
// is always positive, so truncation is a floor), branch-light and
// deterministic.
func QuantizeVec(dst []int8, x []float64, inv float64) (clipped bool) {
	x = x[:len(dst)]
	for i, v := range x {
		f := v * inv
		if f > QuantMax {
			f = QuantMax
			clipped = true
		} else if f < -QuantMax {
			f = -QuantMax
			clipped = true
		}
		dst[i] = int8(int32(f+quantBias+0.5) - quantBias)
	}
	return clipped
}

func roundHalfEven(v float64) float64 {
	f := int64(v)
	d := v - float64(f)
	switch {
	case d > 0.5 || (d == 0.5 && f%2 != 0):
		return float64(f + 1)
	case d < -0.5 || (d == -0.5 && f%2 != 0):
		return float64(f - 1)
	}
	return float64(f)
}
